/**
 * @file
 * Code generation and validation demo: pipeline a stencil loop under a
 * tight register budget, emit the rotating-register kernel listing with
 * prologue/epilogue, emit the modulo-variable-expansion form, execute
 * the schedule cycle by cycle on the VLIW simulator, and compare the
 * architectural results with sequential execution.
 *
 * Usage: codegen_sim [registers] [iterations]
 */

#include <cstdlib>
#include <iostream>

#include "codegen/kernel.hh"
#include "ir/builder.hh"
#include "pipeliner/pipeliner.hh"
#include "sim/vliw.hh"
#include "support/strutil.hh"

int
main(int argc, char **argv)
{
    using namespace swp;

    int registers = 12;
    if (argc > 1 && !parseIntInRange(argv[1], 1, 1 << 20, registers)) {
        std::cerr << "codegen_sim: bad register budget '" << argv[1]
                  << "' (want a positive integer)\n";
        return 2;
    }
    long long iterations = 50;
    if (argc > 2 &&
        !parseInt64InRange(argv[2], 1, 1000000000000LL, iterations)) {
        std::cerr << "codegen_sim: bad iteration count '" << argv[2]
                  << "' (want a positive integer)\n";
        return 2;
    }

    // A 1D stencil with reuse across iterations:
    //   t(i) = (x(i) + x(i-1)) * w     -- w loop invariant
    //   y(i) = t(i) + t(i-2)
    DdgBuilder b("stencil");
    const NodeId ldx = b.load("ld_x");
    const NodeId sum = b.add("x+x1");
    b.flow(ldx, sum);
    b.flow(ldx, sum, 1);  // x(i-1)
    const NodeId t = b.mul("t");
    b.flow(sum, t);
    b.invariant("w", {t});
    const NodeId y = b.add("y");
    b.flow(t, y);
    b.flow(t, y, 2);      // t(i-2)
    const NodeId st = b.store("st_y");
    b.flow(y, st);
    const Ddg g = b.take();

    const Machine m = Machine::p2l6();
    PipelinerOptions opts;
    opts.registers = registers;
    opts.multiSelect = true;
    opts.reuseLastIi = true;
    const PipelineResult r = pipelineLoop(g, m, Strategy::Spill, opts);
    std::cout << "pipelined '" << g.name() << "' on " << m.name()
              << ": II=" << r.ii() << ", " << r.alloc.regsRequired
              << " registers (budget " << registers << "), "
              << r.spilledLifetimes << " spills\n\n";

    // Rotating-register kernel with prologue and epilogue.
    std::cout << formatKernelListing(r.graph(), m, r.sched,
                                     r.alloc.rotAlloc);

    // Modulo variable expansion: software-only renaming.
    const LifetimeInfo info = analyzeLifetimes(r.graph(), r.sched);
    std::cout << "\n" << formatMveKernel(r.graph(), r.sched, info);

    // Cycle-accurate execution.
    SimConfig cfg;
    cfg.iterations = long(iterations);
    const SimResult sim = simulatePipelined(r.graph(), m, r.sched,
                                            r.alloc.rotAlloc, cfg);
    if (!sim.ok) {
        std::cout << "\nsimulation FAILED: " << sim.error << "\n";
        return 1;
    }
    std::cout << "\nsimulated " << iterations << " iterations in "
              << sim.cycles << " cycles (" << sim.memoryOps
              << " memory ops); asymptotic rate = II = " << r.ii()
              << " cycles/iteration\n";

    std::string why;
    if (!equivalentToSequential(g, r.graph(), m, r.sched, r.alloc.rotAlloc,
                                long(iterations), &why)) {
        std::cout << "MISMATCH vs sequential reference: " << why << "\n";
        return 1;
    }
    std::cout << "all stored values match the sequential reference\n";
    return 0;
}
