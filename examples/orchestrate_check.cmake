# CTest script: prove the orchestrator end to end, including the
# acceptance property — `swpipe_cli --suite 120 --orchestrate 4` stdout
# is byte-identical to the 1-process run, also when a worker is killed
# via the fault hook and retried. Also checks resume (a second run
# reuses every published shard file), retry exhaustion (nonzero exit
# naming the failed shard), and the hardened --merge-shards rejections
# (duplicate file, mismatched machine).
#
# Invoked as:
#   cmake -DCLI=<swpipe_cli> -DWORK=<scratch dir> -P orchestrate_check.cmake

if(NOT CLI OR NOT WORK)
    message(FATAL_ERROR "usage: cmake -DCLI=... -DWORK=... -P orchestrate_check.cmake")
endif()

set(args --suite 120)

function(run_cli outvar errvar expect_rc)
    execute_process(COMMAND ${CLI} ${ARGN}
        RESULT_VARIABLE rc
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err)
    if(NOT rc EQUAL ${expect_rc})
        message(FATAL_ERROR "swpipe_cli ${ARGN} exited ${rc} (wanted ${expect_rc}): ${err}")
    endif()
    set(${outvar} "${out}" PARENT_SCOPE)
    set(${errvar} "${err}" PARENT_SCOPE)
endfunction()

file(REMOVE_RECURSE ${WORK}/orch_a ${WORK}/orch_b ${WORK}/orch_c)

run_cli(baseline ignored 0 ${args})

# Acceptance: 4 orchestrated shard workers, stdout byte-identical.
run_cli(orch orcherr 0 ${args} --orchestrate 4 --orch-dir ${WORK}/orch_a)
if(NOT orch STREQUAL baseline)
    message(FATAL_ERROR "orchestrated output differs from the serial run")
endif()

# Resume: the second run over the same directory launches nothing.
run_cli(orch2 orch2err 0 ${args} --orchestrate 4 --orch-dir ${WORK}/orch_a)
if(NOT orch2 STREQUAL baseline)
    message(FATAL_ERROR "resumed orchestrated output differs from the serial run")
endif()
if(NOT orch2err MATCHES "4 shards complete \\(0 launched, 4 reused")
    message(FATAL_ERROR "resume did not reuse the published shard files: ${orch2err}")
endif()

# Acceptance under failure: worker 2's first attempt is killed by the
# fault hook; the retry must still produce byte-identical output.
run_cli(faulted faultederr 0 ${args} --orchestrate 4
    --orch-dir ${WORK}/orch_b --orch-backoff 10 --inject-fail 2:1:crash)
if(NOT faulted STREQUAL baseline)
    message(FATAL_ERROR "output after an injected worker crash differs from the serial run")
endif()
if(NOT faultederr MATCHES "1 retried")
    message(FATAL_ERROR "injected crash was not retried: ${faultederr}")
endif()

# Retry exhaustion: every attempt of shard 0 crashes; the orchestrator
# must exit nonzero naming the shard that failed.
run_cli(ignored exhausterr 2 ${args} --orchestrate 2
    --orch-dir ${WORK}/orch_c --orch-retries 1 --orch-backoff 10
    --inject-fail "0:1:crash,0:2:crash")
if(NOT exhausterr MATCHES "shard 0/2 failed after 2 attempts")
    message(FATAL_ERROR "exhausted retries did not name the failed shard: ${exhausterr}")
endif()

# Hardened merge: the same shard file twice is a duplicate, not a merge.
run_cli(ignored duperr 2 --merge-shards
    ${WORK}/orch_a/shard-0.json ${WORK}/orch_a/shard-0.json)
if(NOT duperr MATCHES "twice")
    message(FATAL_ERROR "duplicate shard file was not refused: ${duperr}")
endif()

# Hardened merge: shards produced under different --machine configs
# must be refused with a configuration diagnostic.
run_cli(ignored m0err 0 --suite 6 --machine p2l4
    --shard 0/2 --shard-out ${WORK}/swp_mm_0.json)
run_cli(ignored m1err 0 --suite 6 --machine p1l4
    --shard 1/2 --shard-out ${WORK}/swp_mm_1.json)
run_cli(ignored mmerr 2 --merge-shards
    ${WORK}/swp_mm_0.json ${WORK}/swp_mm_1.json)
if(NOT mmerr MATCHES "configuration")
    message(FATAL_ERROR "mismatched-machine shards were not refused: ${mmerr}")
endif()

message(STATUS "orchestrated runs are byte-identical to the serial run")
