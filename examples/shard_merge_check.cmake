# CTest script: prove the sharded CLI workflow end to end.
#
# Runs `swpipe_cli --suite` unsharded, then as three shard processes
# with deliberately different --threads/--chunk/--memo/--memo-cap
# settings, merges the shard files with --merge-shards, and fails
# unless the merged stdout is byte-identical to the unsharded run.
# Also checks that the merge refuses an incomplete shard set.
#
# Invoked as:
#   cmake -DCLI=<swpipe_cli> -DWORK=<scratch dir> -P shard_merge_check.cmake

if(NOT CLI OR NOT WORK)
    message(FATAL_ERROR "usage: cmake -DCLI=... -DWORK=... -P shard_merge_check.cmake")
endif()

set(args --suite 12 --csv --registers 24 --simulate 8)

function(run_cli outvar expect_rc)
    execute_process(COMMAND ${CLI} ${ARGN}
        RESULT_VARIABLE rc
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err)
    if(NOT rc EQUAL ${expect_rc})
        message(FATAL_ERROR "swpipe_cli ${ARGN} exited ${rc} (wanted ${expect_rc}): ${err}")
    endif()
    set(${outvar} "${out}" PARENT_SCOPE)
endfunction()

run_cli(baseline 0 ${args} --threads 2)

# Each shard runs under a different execution configuration on purpose:
# the merge must be byte-identical regardless.
run_cli(s0 0 ${args} --shard 0/3 --shard-out ${WORK}/swp_s0.json
    --threads 4 --chunk fixed)
run_cli(s1 0 ${args} --shard 1/3 --shard-out ${WORK}/swp_s1.json
    --chunk auto --memo-cap 32)
run_cli(s2 0 ${args} --shard 2/3 --shard-out ${WORK}/swp_s2.json
    --memo 0)

run_cli(merged 0 --merge-shards
    ${WORK}/swp_s0.json ${WORK}/swp_s1.json ${WORK}/swp_s2.json)

if(NOT merged STREQUAL baseline)
    message(FATAL_ERROR "merged shard output differs from the unsharded run")
endif()

# An incomplete set must be refused (exit 2), not silently merged.
run_cli(ignored 2 --merge-shards ${WORK}/swp_s0.json ${WORK}/swp_s1.json)

message(STATUS "sharded run merges byte-identical to the unsharded run")
