/**
 * @file
 * Quickstart: build a loop, pipeline it under a register budget, and
 * inspect the result.
 *
 * The loop is a dot-product-with-offset kernel:
 *
 *   s(i) = s(i-1) + x(i) * y(i)      -- a true recurrence
 *   z(i) = x(i) * c                  -- c is loop invariant
 *
 * Usage: quickstart [registers]
 */

#include <cstdlib>
#include <iostream>

#include "ir/builder.hh"
#include "pipeliner/pipeliner.hh"
#include "sched/mii.hh"
#include "sim/vliw.hh"
#include "support/strutil.hh"

int
main(int argc, char **argv)
{
    using namespace swp;

    int registers = 8;
    if (argc > 1 && !parseIntInRange(argv[1], 1, 1 << 20, registers)) {
        std::cerr << "quickstart: bad register budget '" << argv[1]
                  << "' (want a positive integer)\n";
        return 2;
    }

    // 1. Describe the loop as a dependence graph.
    DdgBuilder b("dotacc");
    const NodeId ldx = b.load("ld_x");
    const NodeId ldy = b.load("ld_y");
    const NodeId prod = b.mul("x*y");
    b.flow(ldx, prod);
    b.flow(ldy, prod);
    const NodeId acc = b.add("s");
    b.flow(prod, acc);
    b.flow(acc, acc, 1);  // s(i) depends on s(i-1).
    const NodeId sts = b.store("st_s");
    b.flow(acc, sts);
    const NodeId scale = b.mul("x*c");
    b.flow(ldx, scale);
    b.invariant("c", {scale});
    const NodeId stz = b.store("st_z");
    b.flow(scale, stz);
    const Ddg g = b.take();

    // 2. Pick a machine and pipeline under the register budget.
    const Machine m = Machine::p2l4();
    std::cout << "machine: " << m.describe() << "\n";
    std::cout << "loop '" << g.name() << "': " << g.numNodes()
              << " ops, MII=" << mii(g, m) << ", budget " << registers
              << " registers\n\n";

    PipelinerOptions opts;
    opts.registers = registers;
    opts.multiSelect = true;
    opts.reuseLastIi = true;
    const PipelineResult r =
        pipelineLoop(g, m, Strategy::BestOfAll, opts);

    std::cout << "strategy " << r.strategy << ": "
              << (r.success ? "fits" : "DOES NOT FIT") << " in "
              << r.alloc.regsRequired << " registers (II=" << r.ii()
              << ", " << r.spilledLifetimes << " lifetimes spilled)\n\n";
    std::cout << formatSchedule(r.graph(), m, r.sched) << "\n";

    // 3. Execute the pipelined loop and check it against sequential
    //    semantics.
    std::string why;
    if (equivalentToSequential(g, r.graph(), m, r.sched, r.alloc.rotAlloc,
                               64, &why)) {
        std::cout << "simulation: 64 iterations match the sequential "
                     "reference\n";
    } else {
        std::cout << "simulation MISMATCH: " << why << "\n";
        return 1;
    }
    return 0;
}
