/**
 * @file
 * Explore the register/throughput trade-off of a loop: for a range of
 * register budgets, run all three strategies and print the II, actual
 * register use, spill count and memory traffic of each.
 *
 * Usage:
 *   spill_explorer                     # the APSI 47 analogue on P2L4
 *   spill_explorer file.ddg [config]   # loops from a .ddg file
 *
 * config is a machine spec: a preset name (p1l4, p2l4 (default), p2l6,
 * universal) or the path of a machine-description file.
 */

#include <iostream>

#include "machine/machdesc.hh"
#include "pipeliner/pipeliner.hh"
#include "sched/mii.hh"
#include "support/diag.hh"
#include "support/table.hh"
#include "workload/ddgio.hh"
#include "workload/paper_loops.hh"

namespace
{

using namespace swp;

void
explore(const Ddg &g, const Machine &m)
{
    std::cout << "loop '" << g.name() << "': " << g.numNodes()
              << " ops, " << g.numMemOps() << " memory ops, "
              << g.numLiveInvariants() << " invariants, MII="
              << mii(g, m) << " on " << m.name() << "\n";

    const PipelineResult ideal = pipelineIdeal(g, m);
    std::cout << "unlimited registers: II=" << ideal.ii() << " using "
              << ideal.alloc.regsRequired << " registers\n";

    Table table({"budget", "strategy", "fits", "II", "regs", "spills",
                 "memops/iter", "attempts"});
    for (int budget = 64; budget >= 8; budget /= 2) {
        for (Strategy s :
             {Strategy::IncreaseII, Strategy::Spill,
              Strategy::BestOfAll}) {
            PipelinerOptions opts;
            opts.registers = budget;
            opts.multiSelect = true;
            opts.reuseLastIi = true;
            const PipelineResult r = pipelineLoop(g, m, s, opts);
            table.row()
                .add(budget)
                .add(strategyName(s))
                .add(r.success ? (r.usedFallback ? "fallback" : "yes")
                               : "NO")
                .add(r.ii())
                .add(r.alloc.regsRequired)
                .add(r.spilledLifetimes)
                .add(r.memOpsPerIteration())
                .add(r.attempts);
        }
    }
    table.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace swp;

    const Machine m = machineFromSpec(argc > 2 ? argv[2] : "p2l4");
    if (argc > 1) {
        for (const SuiteLoop &loop : parseDdgFile(argv[1]))
            explore(loop.graph, m);
    } else {
        explore(buildApsi47Analogue(), m);
        explore(buildApsi50Analogue(), m);
    }
    return 0;
}
