/**
 * @file
 * Walkthrough of the paper's worked example (Figures 2, 3, 5 and 6):
 *
 *   DO i: x(i) = y(i)*a + y(i-3)
 *
 * on a machine with 4 universal fully-pipelined units of latency 2.
 * Reproduces the paper's numbers exactly:
 *
 *  - Figure 2: II=1 schedule, MaxLive 11 (LTSch(V1)=4, LTDist(V1)=3);
 *  - Figure 3: II=2 schedule, MaxLive 7 (distance component doubles);
 *  - Figures 5/6: spilling V1 (re-loads, no store since the producer is
 *    a load), complex-operation fusion, II=2 with only 5 registers.
 */

#include <iostream>

#include "codegen/visualize.hh"
#include "ir/builder.hh"
#include "liferange/lifetimes.hh"
#include "pipeliner/pipeliner.hh"
#include "sched/hrms.hh"
#include "support/table.hh"

namespace
{

using namespace swp;

void
report(const char *title, const Ddg &g, const Schedule &s)
{
    const LifetimeInfo info = analyzeLifetimes(g, s);
    std::cout << "=== " << title << " ===\n";
    std::cout << formatSchedule(g, Machine::universal("fig2", 4, 2), s);

    Table table({"value", "start", "end", "LT", "LTSch", "LTDist"});
    for (NodeId n = 0; n < g.numNodes(); ++n) {
        const Lifetime &lt = info.of(n);
        if (!lt.live)
            continue;
        table.row()
            .add(g.node(n).name)
            .add(lt.start)
            .add(lt.end)
            .add(lt.length())
            .add(lt.schedComponent)
            .add(lt.distComponent);
    }
    table.print(std::cout);
    std::cout << "MaxLive = " << info.maxLive << " loop variants + "
              << info.invariantCount << " invariant(s)\n";
    std::cout << formatLifetimeChart(g, s, 3);      // Figure 2d.
    std::cout << formatPressureChart(g, s) << "\n"; // Figure 2f.
}

} // namespace

int
main()
{
    using namespace swp;

    const Ddg g = buildPaperExampleLoop();
    const Machine m = Machine::universal("fig2", 4, 2);
    HrmsScheduler hrms;

    std::cout << "loop: x(i) = y(i)*a + y(i-3)  (Figure 2a)\n";
    std::cout << "machine: " << m.describe() << "\n\n";

    // Figure 2: the throughput-optimal schedule at II=1.
    report("Figure 2: II=1, 11 registers", g, *hrms.scheduleAt(g, m, 1));

    // Figure 3: increasing the II to 2 cuts the scheduling component's
    // pressure but doubles the distance component's length.
    report("Figure 3: II=2, 7 registers", g, *hrms.scheduleAt(g, m, 2));

    // Figures 5/6: spill V1 instead. Its producer is a load, so the
    // value is re-loaded where needed (no store), the reloads are fused
    // to their consumers, and the distance component disappears.
    PipelinerOptions opts;
    opts.registers = 6;  // 5 variants + invariant 'a'.
    opts.heuristic = SpillHeuristic::MaxLT;
    const PipelineResult r = pipelineLoop(g, m, Strategy::Spill, opts);
    std::cout << "spilled " << r.spilledLifetimes
              << " lifetime(s); new graph:\n" << r.graph().dump() << "\n";
    report("Figure 6: spilled, II=2, 5 registers", r.graph(), r.sched);

    std::cout << "paper: increasing the II to fit 6 registers would "
                 "need II=3; spilling achieves II=" << r.ii() << " with "
              << r.alloc.regsRequired << " registers.\n";
    return 0;
}
