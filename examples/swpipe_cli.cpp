/**
 * @file
 * swpipe_cli: command-line driver for the register-constrained
 * pipeliner. Reads loops from .ddg files (or uses built-in loops),
 * schedules them under a register budget with the selected strategy,
 * and optionally emits the kernel listing, the MVE form, a simulation
 * check, or machine-readable CSV.
 *
 * Usage:
 *   swpipe_cli [options] [file.ddg ...]
 *
 * Options:
 *   --machine SPEC                machine configuration: a preset name
 *                                 (p1l4, p2l4, p2l6, universal) or the
 *                                 path of a machine-description file
 *                                 (machine/machdesc format; see
 *                                 examples/machines/). Default p2l4.
 *   --registers N                 register budget (default 32)
 *   --strategy ideal|increase-ii|spill|best   (default best)
 *   --scheduler hrms|ims          core scheduler (default hrms)
 *   --heuristic lt|lttraf         spill selection (default lttraf)
 *   --single                      one lifetime per round (no 4.5 accel)
 *   --uses                        use-granularity spilling (Section 6)
 *   --no-fusion                   ablation: no complex-op fusion
 *   --kernel                      print the kernel listing
 *   --mve                         print the MVE form
 *   --simulate N                  execute N iterations and verify
 *   --verify                      check every result with the
 *                                 independent legality verifier
 *                                 (src/verify); any violation aborts
 *                                 with a diagnostic on stderr and exit
 *                                 code 2. Stdout bytes are unchanged.
 *   --certify                     generate an optimality certificate
 *                                 (II/register lower bounds with
 *                                 explicit witnesses) for every result,
 *                                 validate it with the independent
 *                                 checker, and cross-check it against
 *                                 the achieved II/register count; a
 *                                 rejected certificate or contradiction
 *                                 aborts with exit code 2. Prints the
 *                                 suite-wide optimality-gap report to
 *                                 stderr; stdout bytes are unchanged.
 *   --certify-out FILE            also write one JSON line per job
 *                                 (ascending job index; only owned jobs
 *                                 under --shard) with the certificate
 *                                 summary. Byte-stable across thread
 *                                 counts, and shard files merge into
 *                                 exactly the unsharded bytes when
 *                                 re-ordered by job. Implies --certify.
 *   --csv                         one CSV row per loop
 *   --example                     use the paper's Figure 2 loop
 *   --apsi                        use the APSI 47/50 analogues
 *   --suite N                     use the first N generated suite loops
 *   --seed S                      suite generator seed (default: the
 *                                 pinned kDefaultSuiteSeed)
 *   --threads N|auto              evaluation worker threads (default 1;
 *                                 0 or "auto" = all hardware threads).
 *                                 Output is byte-identical at any
 *                                 thread count.
 *   --memo 0|1                    schedule memoization (default 1);
 *                                 output is byte-identical either way
 *   --memo-cap N                  LRU size cap on the schedule memo
 *                                 and the MII/RecMII bounds memo
 *                                 (default 0 = unbounded); output is
 *                                 byte-identical at any cap
 *   --chunk auto|fixed            job ordering/chunking policy (default
 *                                 auto = heaviest loops first); output
 *                                 is byte-identical either way
 *   --shard i/N                   evaluate only shard i of N (0-based;
 *                                 job j belongs to shard j mod N) and
 *                                 write a shard file instead of stdout
 *                                 output; requires --shard-out
 *   --shard-out FILE              where the shard file is written
 *   --merge-shards F1 F2 ...      recombine a complete set of shard
 *                                 files; stdout and the exit code are
 *                                 byte-identical to the unsharded run.
 *                                 Refuses duplicate, overlapping,
 *                                 missing, or mismatched (config/seed/
 *                                 machine) shards.
 *   --orchestrate N               run the grid as N shard worker
 *                                 processes of this binary (fork/exec),
 *                                 monitor them with a per-shard timeout
 *                                 and bounded retry/backoff, re-run only
 *                                 failed/missing/invalid shards, reuse
 *                                 valid pre-existing shard files of the
 *                                 same configuration (resume), and merge:
 *                                 stdout and the exit code are
 *                                 byte-identical to the 1-process run.
 *   --orch-dir DIR                shard file/log directory for
 *                                 --orchestrate (default swp_orch)
 *   --orch-timeout S              per-attempt worker timeout in seconds
 *                                 (default 600; 0 disables)
 *   --orch-retries K              relaunches after a shard's first
 *                                 failed attempt (default 2)
 *   --orch-backoff MS             initial retry backoff in milliseconds,
 *                                 doubling per attempt (default 100)
 *   --no-resume                   recompute every shard even when a
 *                                 valid shard file already exists
 *   --inject-fail S:A:M[,...]     deterministically fault attempt A
 *                                 (1-based) of shard S with mode M
 *                                 (crash|hang|corrupt) — exercises the
 *                                 retry machinery in tests and drills
 */

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "codegen/kernel.hh"
#include "driver/orchestrate.hh"
#include "driver/shard_merge.hh"
#include "driver/suite_runner.hh"
#include "ir/builder.hh"
#include "machine/machdesc.hh"
#include "pipeliner/pipeliner.hh"
#include "sched/fingerprint.hh"
#include "sched/mii.hh"
#include "sim/vliw.hh"
#include "support/diag.hh"
#include "support/strutil.hh"
#include "verify/legality.hh"
#include "workload/ddgio.hh"
#include "workload/paper_loops.hh"
#include "workload/suitegen.hh"

namespace
{

using namespace swp;

struct CliOptions
{
    Machine machine = Machine::p2l4();
    Strategy strategy = Strategy::BestOfAll;
    PipelinerOptions pipeline;
    bool ideal = false;
    bool kernel = false;
    bool mve = false;
    long simulate = 0;
    bool verify = false;
    bool certify = false;
    std::string certifyOut;
    bool csv = false;
    int threads = 1;
    bool memo = true;
    int memoCap = 0;
    ChunkPolicy chunk = ChunkPolicy::Auto;
    ShardSpec shard;
    /** --shard was given (0/1 is a legitimate single-shard spec). */
    bool shardMode = false;
    std::string shardOut;
    bool mergeMode = false;
    std::vector<std::string> mergeFiles;
    /** --orchestrate N: run the grid as N shard worker processes. */
    int orchestrate = 0;
    std::string orchDir = "swp_orch";
    int orchTimeout = 600;
    int orchRetries = 2;
    int orchBackoffMs = 100;
    bool orchResume = true;
    std::vector<FaultInjection> inject;
    /** Every argument except the orchestration flags, verbatim — what
        each shard worker is launched with (plus --shard/--shard-out). */
    std::vector<std::string> workerArgs;
    /** Suite provenance for shard-file metadata. */
    std::uint64_t suiteSeed = kDefaultSuiteSeed;
    int suiteCount = 0;
    std::vector<SuiteLoop> loops;
};

[[noreturn]] void
usageError(const std::string &msg)
{
    std::cerr << "swpipe_cli: " << msg
              << " (see the file header for usage)\n";
    std::exit(2);
}

const char *
nextArg(int argc, char **argv, int &i, const char *flag)
{
    if (++i >= argc)
        usageError(std::string("missing argument for ") + flag);
    return argv[i];
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions opts;
    opts.pipeline.multiSelect = true;
    opts.pipeline.reuseLastIi = true;
    SuiteParams suiteParams;
    int suiteCount = 0;
    bool seedSet = false;
    bool orchKnobSeen = false;
    std::vector<std::string> positional;

    for (int i = 1; i < argc; ++i) {
        const int argStart = i;
        bool orchOnly = false;
        const char *arg = argv[i];
        if (!std::strcmp(arg, "--machine")) {
            opts.machine = machineFromSpec(nextArg(argc, argv, i, arg));
        } else if (!std::strcmp(arg, "--registers")) {
            const char *text = nextArg(argc, argv, i, arg);
            if (!parseIntInRange(text, 1, 1 << 20,
                                 opts.pipeline.registers))
                usageError(std::string("bad --registers count ") + text +
                           " (want a positive integer)");
        } else if (!std::strcmp(arg, "--strategy")) {
            const char *name = nextArg(argc, argv, i, arg);
            if (!std::strcmp(name, "ideal"))
                opts.ideal = true;
            else if (!std::strcmp(name, "increase-ii"))
                opts.strategy = Strategy::IncreaseII;
            else if (!std::strcmp(name, "spill"))
                opts.strategy = Strategy::Spill;
            else if (!std::strcmp(name, "best"))
                opts.strategy = Strategy::BestOfAll;
            else
                usageError(std::string("unknown strategy ") + name);
        } else if (!std::strcmp(arg, "--scheduler")) {
            const char *name = nextArg(argc, argv, i, arg);
            if (!std::strcmp(name, "hrms"))
                opts.pipeline.scheduler = SchedulerKind::Hrms;
            else if (!std::strcmp(name, "ims"))
                opts.pipeline.scheduler = SchedulerKind::Ims;
            else
                usageError(std::string("unknown scheduler ") + name);
        } else if (!std::strcmp(arg, "--heuristic")) {
            const char *name = nextArg(argc, argv, i, arg);
            if (!std::strcmp(name, "lt"))
                opts.pipeline.heuristic = SpillHeuristic::MaxLT;
            else if (!std::strcmp(name, "lttraf"))
                opts.pipeline.heuristic = SpillHeuristic::MaxLTOverTraf;
            else
                usageError(std::string("unknown heuristic ") + name);
        } else if (!std::strcmp(arg, "--single")) {
            opts.pipeline.multiSelect = false;
            opts.pipeline.reuseLastIi = false;
        } else if (!std::strcmp(arg, "--uses")) {
            opts.pipeline.spillUses = true;
        } else if (!std::strcmp(arg, "--no-fusion")) {
            opts.pipeline.fuseSpillOps = false;
        } else if (!std::strcmp(arg, "--kernel")) {
            opts.kernel = true;
        } else if (!std::strcmp(arg, "--mve")) {
            opts.mve = true;
        } else if (!std::strcmp(arg, "--simulate")) {
            const char *text = nextArg(argc, argv, i, arg);
            long long iterations = 0;
            if (!parseInt64InRange(text, 1, 1000000000000LL, iterations))
                usageError(std::string("bad --simulate count ") + text +
                           " (want a positive iteration count)");
            opts.simulate = long(iterations);
        } else if (!std::strcmp(arg, "--verify")) {
            opts.verify = true;
        } else if (!std::strcmp(arg, "--certify")) {
            opts.certify = true;
        } else if (!std::strcmp(arg, "--certify-out")) {
            opts.certifyOut = nextArg(argc, argv, i, arg);
            opts.certify = true;
        } else if (!std::strcmp(arg, "--csv")) {
            opts.csv = true;
        } else if (!std::strcmp(arg, "--example")) {
            opts.loops.push_back({buildPaperExampleLoop(), 100});
        } else if (!std::strcmp(arg, "--apsi")) {
            opts.loops.push_back({buildApsi47Analogue(), 1000});
            opts.loops.push_back({buildApsi50Analogue(), 1000});
        } else if (!std::strcmp(arg, "--suite")) {
            const char *text = nextArg(argc, argv, i, arg);
            if (!parseIntInRange(text, 1, 1000000, suiteCount))
                usageError(std::string("bad --suite count ") + text);
        } else if (!std::strcmp(arg, "--seed")) {
            const char *text = nextArg(argc, argv, i, arg);
            if (!parseUint64(text, suiteParams.seed))
                usageError(std::string("bad --seed value ") + text);
            seedSet = true;
        } else if (!std::strcmp(arg, "--threads")) {
            const char *text = nextArg(argc, argv, i, arg);
            if (!parseThreadsArg(text, opts.threads))
                usageError(std::string("bad --threads count ") + text);
        } else if (!std::strcmp(arg, "--memo")) {
            const char *text = nextArg(argc, argv, i, arg);
            int memo = 1;
            if (!parseIntInRange(text, 0, 1, memo))
                usageError(std::string("bad --memo value ") + text);
            opts.memo = memo != 0;
        } else if (!std::strcmp(arg, "--memo-cap")) {
            const char *text = nextArg(argc, argv, i, arg);
            if (!parseIntInRange(text, 0, 1 << 30, opts.memoCap))
                usageError(std::string("bad --memo-cap value ") + text);
        } else if (!std::strcmp(arg, "--chunk")) {
            const char *text = nextArg(argc, argv, i, arg);
            if (!parseChunkPolicy(text, opts.chunk))
                usageError(std::string("bad --chunk policy ") + text);
        } else if (!std::strcmp(arg, "--shard")) {
            const char *text = nextArg(argc, argv, i, arg);
            if (!parseShardSpec(text, opts.shard))
                usageError(std::string("bad --shard spec ") + text +
                           " (want i/N with 0 <= i < N)");
            opts.shardMode = true;
        } else if (!std::strcmp(arg, "--shard-out")) {
            opts.shardOut = nextArg(argc, argv, i, arg);
        } else if (!std::strcmp(arg, "--merge-shards")) {
            opts.mergeMode = true;
        } else if (!std::strcmp(arg, "--orchestrate")) {
            orchOnly = true;
            const char *text = nextArg(argc, argv, i, arg);
            if (!parseIntInRange(text, 1, 4096, opts.orchestrate))
                usageError(std::string("bad --orchestrate count ") + text);
        } else if (!std::strcmp(arg, "--orch-dir")) {
            orchOnly = true;
            orchKnobSeen = true;
            opts.orchDir = nextArg(argc, argv, i, arg);
            if (opts.orchDir.empty())
                usageError("--orch-dir needs a directory");
        } else if (!std::strcmp(arg, "--orch-timeout")) {
            orchOnly = true;
            orchKnobSeen = true;
            const char *text = nextArg(argc, argv, i, arg);
            if (!parseIntInRange(text, 0, 1000000, opts.orchTimeout))
                usageError(std::string("bad --orch-timeout seconds ") +
                           text);
        } else if (!std::strcmp(arg, "--orch-retries")) {
            orchOnly = true;
            orchKnobSeen = true;
            const char *text = nextArg(argc, argv, i, arg);
            if (!parseIntInRange(text, 0, 1000, opts.orchRetries))
                usageError(std::string("bad --orch-retries count ") +
                           text);
        } else if (!std::strcmp(arg, "--orch-backoff")) {
            orchOnly = true;
            orchKnobSeen = true;
            const char *text = nextArg(argc, argv, i, arg);
            if (!parseIntInRange(text, 0, 600000, opts.orchBackoffMs))
                usageError(std::string("bad --orch-backoff ms ") + text);
        } else if (!std::strcmp(arg, "--no-resume")) {
            orchOnly = true;
            orchKnobSeen = true;
            opts.orchResume = false;
        } else if (!std::strcmp(arg, "--inject-fail")) {
            orchOnly = true;
            orchKnobSeen = true;
            const char *text = nextArg(argc, argv, i, arg);
            if (!parseInjectSpec(text, opts.inject))
                usageError(std::string("bad --inject-fail spec ") + text +
                           " (want shard:attempt:crash|hang|corrupt"
                           "[,...])");
        } else if (arg[0] == '-') {
            usageError(std::string("unknown option ") + arg);
        } else {
            // Routed below, once all flags are seen: a positional is a
            // shard file under --merge-shards (wherever the flag sits
            // on the line) and a .ddg input otherwise.
            positional.push_back(arg);
        }
        // Everything except the orchestration flags is forwarded
        // verbatim to shard workers, so a worker reproduces exactly
        // this invocation plus its --shard assignment.
        if (!orchOnly) {
            for (int k = argStart; k <= i && k < argc; ++k)
                opts.workerArgs.push_back(argv[k]);
        }
    }
    if (opts.orchestrate > 0) {
        if (opts.mergeMode)
            usageError("--orchestrate cannot be combined with "
                       "--merge-shards");
        if (opts.shardMode || !opts.shardOut.empty())
            usageError("--orchestrate cannot be combined with --shard "
                       "(the orchestrator launches the shard workers "
                       "itself)");
        if (!opts.certifyOut.empty())
            usageError("--certify-out does not apply to --orchestrate "
                       "runs (collect certificates from the shard "
                       "workers instead)");
    } else if (orchKnobSeen) {
        usageError("--orch-*/--no-resume/--inject-fail only apply to "
                   "--orchestrate runs");
    }
    if (opts.mergeMode) {
        opts.mergeFiles = std::move(positional);
        if (opts.shardMode || !opts.shardOut.empty())
            usageError("--merge-shards cannot be combined with --shard");
        if (opts.certify)
            usageError("--certify does not apply to --merge-shards "
                       "(certify the evaluating runs instead)");
        if (opts.mergeFiles.empty())
            usageError("--merge-shards needs at least one shard file");
        // The merge itself also refuses overlapping shard *contents*;
        // catching a repeated path here gives the clearest diagnostic.
        for (std::size_t a = 0; a < opts.mergeFiles.size(); ++a) {
            for (std::size_t b = 0; b < a; ++b) {
                if (opts.mergeFiles[a] == opts.mergeFiles[b])
                    usageError("shard file " + opts.mergeFiles[a] +
                               " given twice");
            }
        }
        return opts;
    }
    if (opts.shardMode && opts.shardOut.empty())
        usageError("--shard requires --shard-out FILE");
    if (!opts.shardOut.empty() && !opts.shardMode)
        usageError("--shard-out only applies to --shard runs");
    if (seedSet && suiteCount == 0)
        usageError("--seed only applies to --suite loops");
    for (const std::string &path : positional) {
        for (SuiteLoop &loop : parseDdgFile(path))
            opts.loops.push_back(std::move(loop));
    }
    for (int i = 0; i < suiteCount; ++i)
        opts.loops.push_back(generateSuiteLoop(suiteParams, i));
    opts.suiteSeed = suiteParams.seed;
    opts.suiteCount = suiteCount;
    if (opts.loops.empty())
        opts.loops.push_back({buildPaperExampleLoop(), 100});
    return opts;
}

/** The text emitted once before any per-loop report. */
std::string
outputPrologue(const CliOptions &opts)
{
    return opts.csv ? "loop,machine,strategy,budget,fits,mii,ii,"
                      "regs,spills,memops,attempts\n"
                    : "";
}

/**
 * Render one loop's report into `out` — exactly the bytes an unsharded
 * run writes to stdout for it, so sharded runs can store the text in a
 * shard record and the merge can reproduce the run by concatenation.
 * Diagnostics (the simulation-mismatch note) go to stderr, not `out`;
 * they reach the merged run through the returned rc instead.
 */
int
reportLoop(const CliOptions &opts, const SuiteLoop &loop,
           const PipelineResult &r, std::ostream &out)
{
    const Ddg &g = loop.graph;
    const Machine &m = opts.machine;

    if (opts.csv) {
        out << g.name() << "," << m.name() << ","
            << (opts.ideal ? "ideal" : strategyName(opts.strategy))
            << "," << opts.pipeline.registers << ","
            << (r.success ? 1 : 0) << "," << mii(g, m) << ","
            << r.ii() << "," << r.alloc.regsRequired << ","
            << r.spilledLifetimes << ","
            << r.memOpsPerIteration() << "," << r.attempts
            << "\n";
    } else {
        out << "loop '" << g.name() << "' on " << m.name()
            << ": " << (r.success ? "fits" : "DOES NOT FIT")
            << " budget " << opts.pipeline.registers << " — II="
            << r.ii() << " (MII " << mii(g, m) << "), "
            << r.alloc.regsRequired << " regs, "
            << r.spilledLifetimes << " spills, "
            << r.memOpsPerIteration() << " mem ops/iter\n";
    }

    if (opts.kernel) {
        out << formatKernelListing(r.graph(), m, r.sched,
                                   r.alloc.rotAlloc);
    }
    if (opts.mve) {
        const LifetimeInfo info = analyzeLifetimes(r.graph(), r.sched);
        out << formatMveKernel(r.graph(), r.sched, info);
        if (opts.verify) {
            // The MVE layer lives outside PipelineResult, so the
            // per-job verification cannot see it; check it here, where
            // the allocation is actually produced and printed.
            const VerifyReport mv = verifyMveAllocation(
                r.graph(), r.sched, allocateMve(info));
            if (!mv.ok()) {
                SWP_FATAL("loop '", g.name(),
                          "': illegal MVE allocation:\n", mv.describe());
            }
        }
    }
    if (opts.simulate > 0) {
        std::string why;
        if (!equivalentToSequential(g, r.graph(), m, r.sched,
                                    r.alloc.rotAlloc, opts.simulate,
                                    &why)) {
            std::cerr << "simulation MISMATCH on '" << g.name()
                      << "': " << why << "\n";
            return 1;
        }
        if (!opts.csv) {
            out << "  simulation: " << opts.simulate
                << " iterations match the sequential reference\n";
        }
    }
    return 0;
}

/**
 * Fingerprint of everything the rendered output depends on: the build,
 * every output-relevant option, the machine, and each input loop's
 * structural fingerprint and trip count. Two shard runs merge only if
 * these match, so shards of different seeds, .ddg inputs, budgets, or
 * binaries are refused instead of silently concatenated.
 */
std::string
configFingerprint(const CliOptions &opts)
{
    Fingerprint fp;
    fp.mix(std::string(__VERSION__));
#ifdef NDEBUG
    fp.mix(std::uint64_t(1));
#else
    fp.mix(std::uint64_t(0));
#endif
    fp.mix(machineFingerprint(opts.machine));
    fp.mix(opts.machine.name());
    fp.mix(std::uint64_t(opts.ideal));
    fp.mix(std::uint64_t(int(opts.strategy)));
    fp.mix(std::uint64_t(int(opts.pipeline.scheduler)));
    fp.mix(std::uint64_t(opts.pipeline.registers));
    fp.mix(std::uint64_t(int(opts.pipeline.heuristic)));
    fp.mix(std::uint64_t(opts.pipeline.multiSelect));
    fp.mix(std::uint64_t(opts.pipeline.spillUses));
    fp.mix(std::uint64_t(opts.pipeline.reuseLastIi));
    fp.mix(std::uint64_t(int(opts.pipeline.fit)));
    fp.mix(std::uint64_t(opts.pipeline.maxSpillRounds));
    fp.mix(std::uint64_t(opts.pipeline.fuseSpillOps));
    fp.mix(std::uint64_t(opts.kernel));
    fp.mix(std::uint64_t(opts.mve));
    fp.mix(std::uint64_t(opts.simulate));
    fp.mix(std::uint64_t(opts.csv));
    for (const SuiteLoop &loop : opts.loops) {
        fp.mix(graphFingerprint(loop.graph));
        fp.mix(loop.graph.name());
        fp.mix(std::uint64_t(loop.iterations));
    }
    return strprintf("%016llx",
                     static_cast<unsigned long long>(fp.value()));
}

std::string
configSummary(const CliOptions &opts)
{
    std::ostringstream os;
    os << "machine=" << opts.machine.name() << " strategy="
       << (opts.ideal ? "ideal" : strategyName(opts.strategy))
       << " registers=" << opts.pipeline.registers << " loops="
       << opts.loops.size();
    if (opts.suiteCount > 0)
        os << " suite-seed=" << opts.suiteSeed;
    os << " csv=" << int(opts.csv) << " kernel=" << int(opts.kernel)
       << " mve=" << int(opts.mve) << " simulate=" << opts.simulate;
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        const CliOptions opts = parseArgs(argc, argv);

        if (opts.mergeMode) {
            std::vector<ShardDoc> docs;
            docs.reserve(opts.mergeFiles.size());
            for (const std::string &path : opts.mergeFiles)
                docs.push_back(readShardFile(path));
            const MergeOutput merged = mergeShards(docs);
            std::cout << merged.text;
            return merged.rc;
        }

        if (opts.orchestrate > 0) {
            // Run the grid as a fleet of shard workers of this very
            // binary; the parent evaluates nothing itself. Merging the
            // validated shard files reproduces the 1-process run's
            // stdout and exit code byte-for-byte.
            OrchestrateOptions orch;
            orch.shards = opts.orchestrate;
            orch.dir = opts.orchDir;
            orch.maxAttempts = opts.orchRetries + 1;
            orch.timeoutSeconds = opts.orchTimeout;
            orch.backoffSeconds = opts.orchBackoffMs / 1000.0;
            orch.resume = opts.orchResume;
            orch.inject = opts.inject;
            orch.expectTool = "swpipe_cli";
            orch.expectConfig = configFingerprint(opts);
            const OrchestrateResult fleet = orchestrateShards(
                selfExecutablePath(argv[0]), opts.workerArgs, orch);
            const MergeOutput merged = mergeShards(fleet.docs);
            std::cout << merged.text;
            return merged.rc;
        }

        // Evaluate all loops as one batch on the worker pool, then
        // report serially in input order — the output is byte-identical
        // at any --threads count, --chunk policy, --memo setting,
        // --memo-cap, and shard split.
        SuiteRunner runner(opts.threads, opts.memo,
                           std::size_t(opts.memoCap));
        std::vector<BatchJob> jobs(opts.loops.size());
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            jobs[i].loop = int(i);
            jobs[i].ideal = opts.ideal;
            jobs[i].strategy = opts.strategy;
            jobs[i].options = opts.pipeline;
        }
        RunOptions ropts;
        ropts.shard = opts.shard;
        ropts.chunk = opts.chunk;
        ropts.verify = opts.verify;
        ropts.certify = opts.certify;
        std::vector<CertSummary> certs;
        if (opts.certify)
            ropts.certificates = &certs;
        const std::vector<swp::PipelineResult> results =
            runner.run(opts.loops, opts.machine, jobs, ropts);
        if (opts.certify) {
            // run() threw on any rejected certificate or contradiction,
            // so every summary here is checker-approved. All output is
            // stderr or the JSON file: --certify must never change the
            // fingerprinted stdout bytes.
            if (!opts.certifyOut.empty()) {
                std::ofstream out(opts.certifyOut,
                                  std::ios::out | std::ios::trunc);
                if (!out) {
                    SWP_FATAL("cannot write certificate file ",
                              opts.certifyOut);
                }
                for (std::size_t i = 0; i < certs.size(); ++i) {
                    if (opts.shard.owns(i))
                        out << certSummaryJson(int(i), certs[i]) << "\n";
                }
            }
            std::cerr << describeGapReport(summarizeGaps(certs)) << "\n";
        }
        if (opts.verify) {
            // run() threw on any violation, so reaching here means the
            // whole batch is legal. Stderr only: --verify must never
            // change the fingerprinted stdout bytes.
            std::size_t verified = 0;
            for (std::size_t i = 0; i < jobs.size(); ++i)
                verified += opts.shard.owns(i);
            std::cerr << "verify: " << verified << " of " << jobs.size()
                      << " results legal, 0 violations\n";
        }

        if (opts.shardMode) {
            // Render only this shard's jobs, into a shard file rather
            // than stdout; --merge-shards later reassembles the run.
            ShardDoc doc;
            doc.tool = "swpipe_cli";
            doc.config = configFingerprint(opts);
            doc.configSummary = configSummary(opts);
            if (opts.suiteCount > 0) {
                doc.suiteSeed = std::to_string(opts.suiteSeed);
                doc.suiteLoops = opts.suiteCount;
            }
            doc.totalJobs = jobs.size();
            doc.shard = opts.shard;
            doc.prologue = outputPrologue(opts);
            int rc = 0;
            for (std::size_t i = 0; i < opts.loops.size(); ++i) {
                if (!opts.shard.owns(i))
                    continue;
                std::ostringstream text;
                ShardRecord rec;
                rec.job = i;
                rec.rc = reportLoop(opts, opts.loops[i], results[i],
                                    text);
                rec.text = text.str();
                rc |= rec.rc;
                doc.records.push_back(std::move(rec));
            }
            // Fault hook for orchestrator tests: "crash"/"hang" never
            // return, "corrupt" replaces our write with garbage.
            if (maybeInjectFault(opts.shardOut))
                return rc;
            writeShardFile(opts.shardOut, doc);
            std::cerr << "shard " << formatShardSpec(opts.shard) << ": "
                      << doc.records.size() << " of " << doc.totalJobs
                      << " jobs written to " << opts.shardOut << "\n";
            return rc;
        }

        std::cout << outputPrologue(opts);
        int rc = 0;
        for (std::size_t i = 0; i < opts.loops.size(); ++i)
            rc |= reportLoop(opts, opts.loops[i], results[i], std::cout);
        return rc;
    } catch (const swp::FatalError &e) {
        std::cerr << e.what() << "\n";
        return 2;
    } catch (const std::exception &e) {
        // E.g. allocation failure on a corrupt shard file: still a
        // clean refusal, not std::terminate.
        std::cerr << "swpipe_cli: " << e.what() << "\n";
        return 2;
    }
}
