/**
 * @file
 * swpipe_cli: command-line driver for the register-constrained
 * pipeliner. Reads loops from .ddg files (or uses built-in loops),
 * schedules them under a register budget with the selected strategy,
 * and optionally emits the kernel listing, the MVE form, a simulation
 * check, or machine-readable CSV.
 *
 * Usage:
 *   swpipe_cli [options] [file.ddg ...]
 *
 * Options:
 *   --machine p1l4|p2l4|p2l6      machine configuration (default p2l4)
 *   --registers N                 register budget (default 32)
 *   --strategy ideal|increase-ii|spill|best   (default best)
 *   --scheduler hrms|ims          core scheduler (default hrms)
 *   --heuristic lt|lttraf         spill selection (default lttraf)
 *   --single                      one lifetime per round (no 4.5 accel)
 *   --uses                        use-granularity spilling (Section 6)
 *   --no-fusion                   ablation: no complex-op fusion
 *   --kernel                      print the kernel listing
 *   --mve                         print the MVE form
 *   --simulate N                  execute N iterations and verify
 *   --csv                         one CSV row per loop
 *   --example                     use the paper's Figure 2 loop
 *   --apsi                        use the APSI 47/50 analogues
 *   --suite N                     use the first N generated suite loops
 *   --seed S                      suite generator seed (default: the
 *                                 pinned kDefaultSuiteSeed)
 *   --threads N                   evaluation worker threads (default 1;
 *                                 0 = all hardware threads). Output is
 *                                 byte-identical at any thread count.
 *   --memo 0|1                    schedule memoization (default 1);
 *                                 output is byte-identical either way
 */

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <vector>

#include "codegen/kernel.hh"
#include "driver/suite_runner.hh"
#include "ir/builder.hh"
#include "pipeliner/pipeliner.hh"
#include "sched/mii.hh"
#include "sim/vliw.hh"
#include "support/diag.hh"
#include "support/strutil.hh"
#include "workload/ddgio.hh"
#include "workload/paper_loops.hh"
#include "workload/suitegen.hh"

namespace
{

using namespace swp;

struct CliOptions
{
    Machine machine = Machine::p2l4();
    Strategy strategy = Strategy::BestOfAll;
    PipelinerOptions pipeline;
    bool ideal = false;
    bool kernel = false;
    bool mve = false;
    long simulate = 0;
    bool csv = false;
    int threads = 1;
    bool memo = true;
    std::vector<SuiteLoop> loops;
};

[[noreturn]] void
usageError(const std::string &msg)
{
    std::cerr << "swpipe_cli: " << msg
              << " (see the file header for usage)\n";
    std::exit(2);
}

const char *
nextArg(int argc, char **argv, int &i, const char *flag)
{
    if (++i >= argc)
        usageError(std::string("missing argument for ") + flag);
    return argv[i];
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions opts;
    opts.pipeline.multiSelect = true;
    opts.pipeline.reuseLastIi = true;
    SuiteParams suiteParams;
    int suiteCount = 0;
    bool seedSet = false;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (!std::strcmp(arg, "--machine")) {
            const char *name = nextArg(argc, argv, i, arg);
            if (!std::strcmp(name, "p1l4"))
                opts.machine = Machine::p1l4();
            else if (!std::strcmp(name, "p2l4"))
                opts.machine = Machine::p2l4();
            else if (!std::strcmp(name, "p2l6"))
                opts.machine = Machine::p2l6();
            else
                usageError(std::string("unknown machine ") + name);
        } else if (!std::strcmp(arg, "--registers")) {
            opts.pipeline.registers =
                std::atoi(nextArg(argc, argv, i, arg));
            if (opts.pipeline.registers < 1)
                usageError("registers must be positive");
        } else if (!std::strcmp(arg, "--strategy")) {
            const char *name = nextArg(argc, argv, i, arg);
            if (!std::strcmp(name, "ideal"))
                opts.ideal = true;
            else if (!std::strcmp(name, "increase-ii"))
                opts.strategy = Strategy::IncreaseII;
            else if (!std::strcmp(name, "spill"))
                opts.strategy = Strategy::Spill;
            else if (!std::strcmp(name, "best"))
                opts.strategy = Strategy::BestOfAll;
            else
                usageError(std::string("unknown strategy ") + name);
        } else if (!std::strcmp(arg, "--scheduler")) {
            const char *name = nextArg(argc, argv, i, arg);
            if (!std::strcmp(name, "hrms"))
                opts.pipeline.scheduler = SchedulerKind::Hrms;
            else if (!std::strcmp(name, "ims"))
                opts.pipeline.scheduler = SchedulerKind::Ims;
            else
                usageError(std::string("unknown scheduler ") + name);
        } else if (!std::strcmp(arg, "--heuristic")) {
            const char *name = nextArg(argc, argv, i, arg);
            if (!std::strcmp(name, "lt"))
                opts.pipeline.heuristic = SpillHeuristic::MaxLT;
            else if (!std::strcmp(name, "lttraf"))
                opts.pipeline.heuristic = SpillHeuristic::MaxLTOverTraf;
            else
                usageError(std::string("unknown heuristic ") + name);
        } else if (!std::strcmp(arg, "--single")) {
            opts.pipeline.multiSelect = false;
            opts.pipeline.reuseLastIi = false;
        } else if (!std::strcmp(arg, "--uses")) {
            opts.pipeline.spillUses = true;
        } else if (!std::strcmp(arg, "--no-fusion")) {
            opts.pipeline.fuseSpillOps = false;
        } else if (!std::strcmp(arg, "--kernel")) {
            opts.kernel = true;
        } else if (!std::strcmp(arg, "--mve")) {
            opts.mve = true;
        } else if (!std::strcmp(arg, "--simulate")) {
            opts.simulate = std::atol(nextArg(argc, argv, i, arg));
        } else if (!std::strcmp(arg, "--csv")) {
            opts.csv = true;
        } else if (!std::strcmp(arg, "--example")) {
            opts.loops.push_back({buildPaperExampleLoop(), 100});
        } else if (!std::strcmp(arg, "--apsi")) {
            opts.loops.push_back({buildApsi47Analogue(), 1000});
            opts.loops.push_back({buildApsi50Analogue(), 1000});
        } else if (!std::strcmp(arg, "--suite")) {
            const char *text = nextArg(argc, argv, i, arg);
            if (!parseIntInRange(text, 1, 1000000, suiteCount))
                usageError(std::string("bad --suite count ") + text);
        } else if (!std::strcmp(arg, "--seed")) {
            const char *text = nextArg(argc, argv, i, arg);
            if (!parseUint64(text, suiteParams.seed))
                usageError(std::string("bad --seed value ") + text);
            seedSet = true;
        } else if (!std::strcmp(arg, "--threads")) {
            const char *text = nextArg(argc, argv, i, arg);
            if (!parseIntInRange(text, 0, 4096, opts.threads))
                usageError(std::string("bad --threads count ") + text);
        } else if (!std::strcmp(arg, "--memo")) {
            const char *text = nextArg(argc, argv, i, arg);
            int memo = 1;
            if (!parseIntInRange(text, 0, 1, memo))
                usageError(std::string("bad --memo value ") + text);
            opts.memo = memo != 0;
        } else if (arg[0] == '-') {
            usageError(std::string("unknown option ") + arg);
        } else {
            for (SuiteLoop &loop : parseDdgFile(arg))
                opts.loops.push_back(std::move(loop));
        }
    }
    if (seedSet && suiteCount == 0)
        usageError("--seed only applies to --suite loops");
    for (int i = 0; i < suiteCount; ++i)
        opts.loops.push_back(generateSuiteLoop(suiteParams, i));
    if (opts.loops.empty())
        opts.loops.push_back({buildPaperExampleLoop(), 100});
    return opts;
}

int
reportLoop(const CliOptions &opts, const SuiteLoop &loop,
           const PipelineResult &r)
{
    const Ddg &g = loop.graph;
    const Machine &m = opts.machine;

    if (opts.csv) {
        std::cout << g.name() << "," << m.name() << ","
                  << (opts.ideal ? "ideal" : strategyName(opts.strategy))
                  << "," << opts.pipeline.registers << ","
                  << (r.success ? 1 : 0) << "," << mii(g, m) << ","
                  << r.ii() << "," << r.alloc.regsRequired << ","
                  << r.spilledLifetimes << ","
                  << r.memOpsPerIteration() << "," << r.attempts
                  << "\n";
    } else {
        std::cout << "loop '" << g.name() << "' on " << m.name()
                  << ": " << (r.success ? "fits" : "DOES NOT FIT")
                  << " budget " << opts.pipeline.registers << " — II="
                  << r.ii() << " (MII " << mii(g, m) << "), "
                  << r.alloc.regsRequired << " regs, "
                  << r.spilledLifetimes << " spills, "
                  << r.memOpsPerIteration() << " mem ops/iter\n";
    }

    if (opts.kernel) {
        std::cout << formatKernelListing(r.graph(), m, r.sched,
                                         r.alloc.rotAlloc);
    }
    if (opts.mve) {
        const LifetimeInfo info = analyzeLifetimes(r.graph(), r.sched);
        std::cout << formatMveKernel(r.graph(), r.sched, info);
    }
    if (opts.simulate > 0) {
        std::string why;
        if (!equivalentToSequential(g, r.graph(), m, r.sched,
                                    r.alloc.rotAlloc, opts.simulate,
                                    &why)) {
            std::cerr << "simulation MISMATCH on '" << g.name()
                      << "': " << why << "\n";
            return 1;
        }
        if (!opts.csv) {
            std::cout << "  simulation: " << opts.simulate
                      << " iterations match the sequential reference\n";
        }
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        const CliOptions opts = parseArgs(argc, argv);
        if (opts.csv) {
            std::cout << "loop,machine,strategy,budget,fits,mii,ii,"
                         "regs,spills,memops,attempts\n";
        }

        // Evaluate all loops as one batch on the worker pool, then
        // report serially in input order — the output is byte-identical
        // at any --threads count.
        SuiteRunner runner(opts.threads, opts.memo);
        std::vector<BatchJob> jobs(opts.loops.size());
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            jobs[i].loop = int(i);
            jobs[i].ideal = opts.ideal;
            jobs[i].strategy = opts.strategy;
            jobs[i].options = opts.pipeline;
        }
        const std::vector<swp::PipelineResult> results =
            runner.run(opts.loops, opts.machine, jobs);

        int rc = 0;
        for (std::size_t i = 0; i < opts.loops.size(); ++i)
            rc |= reportLoop(opts, opts.loops[i], results[i]);
        return rc;
    } catch (const swp::FatalError &e) {
        std::cerr << e.what() << "\n";
        return 2;
    }
}
