/**
 * @file
 * IF-conversion demo: a loop with a data-dependent conditional is
 * converted to a single basic block (control dependence becomes a
 * select), then software pipelined under a register budget and
 * executed.
 *
 * The source loop (a conditional accumulator / clipping kernel):
 *
 *   DO i
 *     x = a[i]
 *     c = b[i]
 *     if (c) {
 *       t = x * gain          -- gain loop-invariant
 *       s = s(i-1) + t        -- conditional accumulation
 *     } else {
 *       s = s(i-1)
 *     }
 *     out[i] = s
 *   END
 */

#include <iostream>

#include "ir/cfg.hh"
#include "pipeliner/pipeliner.hh"
#include "sched/mii.hh"
#include "sim/vliw.hh"

int
main()
{
    using namespace swp;

    CfgLoop loop;
    loop.name = "cond_acc";
    loop.invariants = {"gain"};
    loop.body.push_back(CfgStmt::makeOp(Opcode::Load, "x", {}));
    loop.body.push_back(CfgStmt::makeOp(Opcode::Load, "c", {}));
    loop.body.push_back(CfgStmt::makeIf(
        CfgOperand::value("c"),
        {
            CfgStmt::makeOp(Opcode::Mul, "t",
                            {CfgOperand::value("x"),
                             CfgOperand::inv("gain")}),
            CfgStmt::makeOp(Opcode::Add, "s",
                            {CfgOperand::value("s", 1),
                             CfgOperand::value("t")}),
        },
        {
            CfgStmt::makeOp(Opcode::Copy, "s",
                            {CfgOperand::value("s", 1)}),
        }));
    loop.body.push_back(
        CfgStmt::makeOp(Opcode::Store, "", {CfgOperand::value("s")}));

    std::cout << "IF-conversion inserts " << countSelects(loop)
              << " select(s).\n";
    const Ddg g = ifConvert(loop);
    std::cout << g.dump() << "\n";

    const Machine m = Machine::p2l4();
    std::cout << "machine: " << m.describe() << "\n";
    std::cout << "MII=" << mii(g, m)
              << " (the select closes a recurrence through the "
                 "conditional accumulation)\n\n";

    PipelinerOptions opts;
    opts.registers = 10;
    opts.multiSelect = true;
    opts.reuseLastIi = true;
    const PipelineResult r = pipelineLoop(g, m, Strategy::BestOfAll,
                                          opts);
    std::cout << "pipelined: " << (r.success ? "fits" : "DOES NOT FIT")
              << " in " << r.alloc.regsRequired << " registers, II="
              << r.ii() << "\n";
    std::cout << formatSchedule(r.graph(), m, r.sched) << "\n";

    std::string why;
    if (!equivalentToSequential(g, r.graph(), m, r.sched, r.alloc.rotAlloc,
                                50, &why)) {
        std::cout << "simulation MISMATCH: " << why << "\n";
        return 1;
    }
    std::cout << "simulation: 50 iterations match the sequential "
                 "reference\n";
    return 0;
}
