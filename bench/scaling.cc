/**
 * @file
 * Thread-scaling benchmark of the batch evaluator: the same memo-hot
 * grid is dispatched at 1, 2, 4, ... worker threads and the headline
 * is jobs/sec per thread count (BM_ScalingJobsPerSec — the perf-diff
 * gate watches it), starting the repo's thread-scaling trajectory in
 * BENCH_scaling.json.
 *
 * The grid is deliberately memo-*hot*: every benchmark iteration
 * re-runs the identical jobs against a pre-warmed runner, so almost
 * every scheduling probe is a memo hit and the measurement stresses
 * exactly the between-worker paths this perf work targets — striped
 * memo lookups, work-stealing claims, and per-worker arenas — rather
 * than raw scheduling throughput (micro_components covers that).
 *
 * Each thread count also reports the per-worker counter breakdown:
 * schedule_s / memo_wait_s / steal_s totals as benchmark counters, and
 * a per-worker table on stderr. Counters are observability only —
 * results stay byte-identical at every thread count.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common.hh"
#include "driver/suite_runner.hh"

namespace
{

using namespace swp;

/** Every suite loop x {ideal, spill@24, spill@48, best-of-all@32}:
    a spread of strategies whose probes overlap heavily, so a warmed
    memo serves nearly everything. */
std::vector<BatchJob>
scalingGrid(std::size_t loops)
{
    std::vector<BatchJob> jobs;
    jobs.reserve(loops * 4);
    for (std::size_t i = 0; i < loops; ++i) {
        const int loop = int(i);
        jobs.push_back(benchutil::variantJob(loop, benchutil::Variant::Ideal,
                                             32));
        jobs.push_back(benchutil::variantJob(
            loop, benchutil::Variant::MaxLtTrafMultiLastIi, 24));
        jobs.push_back(benchutil::variantJob(
            loop, benchutil::Variant::MaxLtTrafMultiLastIi, 48));
        jobs.push_back(benchutil::variantJob(
            loop, benchutil::Variant::BestOfAll, 32));
    }
    return jobs;
}

void
runScaling(benchmark::State &state, int threads)
{
    const std::vector<SuiteLoop> &suite = benchutil::evaluationSuite();
    const Machine m = benchutil::benchMachine();
    const std::vector<BatchJob> jobs = scalingGrid(suite.size());
    const RunOptions ropts = benchutil::benchChunkOptions();

    SuiteRunner runner(threads, benchutil::benchOptions().memo,
                       benchutil::benchOptions().memoCap);
    runner.run(suite, m, jobs, ropts); // Warm the memos once, untimed.
    runner.resetWorkerPerf();

    for (auto _ : state)
        benchmark::DoNotOptimize(runner.run(suite, m, jobs, ropts));

    state.SetItemsProcessed(state.iterations() * int64_t(jobs.size()));
    state.counters["jobs_per_sec"] = benchmark::Counter(
        double(state.iterations()) * double(jobs.size()),
        benchmark::Counter::kIsRate);

    const std::vector<WorkerPerf> perf = runner.workerPerf();
    double schedule = 0, memoWait = 0, steal = 0;
    long steals = 0;
    std::size_t arenaHw = 0;
    for (const WorkerPerf &w : perf) {
        schedule += w.scheduleSeconds;
        memoWait += w.memoWaitSeconds;
        steal += w.stealSeconds;
        steals += w.steals;
        arenaHw = std::max(arenaHw, w.arenaHighWaterBytes);
    }
    state.counters["schedule_s"] = schedule;
    state.counters["memo_wait_s"] = memoWait;
    state.counters["steal_s"] = steal;
    state.counters["steals"] = double(steals);
    state.counters["arena_hw_bytes"] = double(arenaHw);

    std::fprintf(stderr,
                 "[scaling] threads=%d jobs=%zu: per-worker "
                 "schedule/memo-wait/steal seconds\n",
                 threads, jobs.size());
    for (std::size_t w = 0; w < perf.size(); ++w) {
        if (perf[w].jobs == 0 && perf[w].claims == 0)
            continue;
        std::fprintf(stderr,
                     "[scaling]   w%zu: sched=%.4fs wait=%.4fs "
                     "steal=%.4fs jobs=%ld claims=%ld steals=%ld "
                     "arena=%zuB\n",
                     w, perf[w].scheduleSeconds, perf[w].memoWaitSeconds,
                     perf[w].stealSeconds, perf[w].jobs, perf[w].claims,
                     perf[w].steals, perf[w].arenaHighWaterBytes);
    }
}

/** Sweep 1, 2, 4, ... up to hardware_concurrency — and always through
    8 so the scaling acceptance row exists even on smaller CI hosts
    (oversubscribed rows still exercise stealing under preemption). */
int
registerScaling()
{
    const unsigned hwRaw = std::thread::hardware_concurrency();
    const int hw = hwRaw ? int(hwRaw) : 1;
    std::vector<int> counts;
    for (int t = 1; t <= std::max(hw, 8); t *= 2)
        counts.push_back(t);
    if (std::find(counts.begin(), counts.end(), hw) == counts.end()) {
        counts.push_back(hw);
        std::sort(counts.begin(), counts.end());
    }
    for (const int t : counts) {
        benchmark::RegisterBenchmark(
            ("BM_ScalingJobsPerSec/threads:" + std::to_string(t)).c_str(),
            [t](benchmark::State &s) { runScaling(s, t); })
            ->UseRealTime()
            ->Unit(benchmark::kMillisecond);
    }
    return int(counts.size());
}

[[maybe_unused]] const int kRegistered = registerScaling();

} // namespace

SWP_BENCH_MAIN_NATIVE_JSON("scaling")
