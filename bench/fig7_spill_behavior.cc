/**
 * @file
 * Figure 7: evolution of the register requirement, MII, II and memory
 * bus utilization as lifetimes are spilled one at a time with the
 * Max(LT) heuristic (APSI 47/50 analogues, P2L4).
 *
 * Expected shape: registers fall as lifetimes are spilled (with
 * occasional non-monotone bumps when the rescheduled graph packs
 * differently); the II rises faster than the MII because the fused
 * "complex operations" constrain the scheduler; bus utilization grows
 * with the added loads/stores but never reaches 100%.
 */

#include <benchmark/benchmark.h>

#include <iostream>
#include <sstream>
#include <vector>

#include "common.hh"
#include "support/table.hh"
#include "workload/paper_loops.hh"

namespace
{

using namespace swp;

/** One trace's output: its table rows plus the summary line. */
struct TraceOutput
{
    std::vector<std::vector<std::string>> rows;
    std::string summary;
};

TraceOutput
traceSpilling(const Ddg &g, const Machine &m, int registers)
{
    PipelinerOptions opts;
    opts.registers = registers;
    opts.heuristic = SpillHeuristic::MaxLT;  // The figure's heuristic.
    opts.multiSelect = false;                // One lifetime per round.

    TraceOutput out;
    Table table({"loop", "budget", "spilled", "regs", "MII", "II",
                 "bus%"});
    const int memUnits = m.unitsFor(FuClass::Mem);
    const PipelineResult r = spillStrategy(
        g, m, opts, [&](const SpillRoundInfo &info) {
            const double busUse = 100.0 * double(info.memOps) /
                                  (double(info.ii) * double(memUnits));
            table.row()
                .add(g.name())
                .add(registers)
                .add(info.spilledSoFar)
                .add(info.regsRequired)
                .add(info.mii)
                .add(info.ii)
                .add(busUse, 1);
        });
    out.rows = table.rows();
    std::ostringstream os;
    os << g.name() << " to " << registers << " regs: "
       << (r.success ? "converged" : "FAILED") << " after "
       << r.spilledLifetimes << " spilled lifetimes, final II="
       << r.ii() << " (MII=" << r.mii << "), "
       << r.memOpsPerIteration() << " mem ops/iter\n";
    out.summary = os.str();
    return out;
}

void
runFig7(benchmark::State &state)
{
    const Machine m = benchutil::benchMachine();
    for (auto _ : state) {
        std::cout << "\nFigure 7: spilling one lifetime per round, "
                     "Max(LT), P2L4" << benchutil::shardSuffix()
                  << "\n";
        const struct
        {
            const char *loop;
            int budget;
        } cases[] = {{"apsi47", 32}, {"apsi47", 16},
                     {"apsi50", 32}, {"apsi50", 16}};
        std::vector<TraceOutput> outputs(4);

        // The four traces are independent; each collects its own rows,
        // which are then stitched together in fixed order so the table
        // is identical at any thread count. The traces are this
        // figure's grid: a sharded run traces only the (loop, budget)
        // cases it owns, whose outputs stay empty otherwise.
        benchutil::suiteRunner().parallelFor(4, [&](std::size_t k) {
            if (!benchutil::ownsJob(k))
                return;
            const Ddg g = std::string(cases[k].loop) == "apsi47"
                              ? buildApsi47Analogue()
                              : buildApsi50Analogue();
            outputs[k] = traceSpilling(g, m, cases[k].budget);
        });

        Table table({"loop", "budget", "spilled", "regs", "MII", "II",
                     "bus%"});
        for (const TraceOutput &out : outputs) {
            for (const auto &row : out.rows) {
                auto &r = table.row();
                for (const std::string &cell : row)
                    r.add(cell);
            }
            std::cout << out.summary;
        }
        table.print(std::cout);
        benchutil::recordTable("spill_rounds", table);
    }
}

BENCHMARK(runFig7)->Unit(benchmark::kMillisecond)->Iterations(1);

} // namespace

SWP_BENCH_MAIN("fig7_spill_behavior");
