/**
 * @file
 * Figure 7: evolution of the register requirement, MII, II and memory
 * bus utilization as lifetimes are spilled one at a time with the
 * Max(LT) heuristic (APSI 47/50 analogues, P2L4).
 *
 * Expected shape: registers fall as lifetimes are spilled (with
 * occasional non-monotone bumps when the rescheduled graph packs
 * differently); the II rises faster than the MII because the fused
 * "complex operations" constrain the scheduler; bus utilization grows
 * with the added loads/stores but never reaches 100%.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "common.hh"
#include "support/table.hh"
#include "workload/paper_loops.hh"

namespace
{

using namespace swp;

void
traceSpilling(const Ddg &g, const Machine &m, int registers, Table &table)
{
    PipelinerOptions opts;
    opts.registers = registers;
    opts.heuristic = SpillHeuristic::MaxLT;  // The figure's heuristic.
    opts.multiSelect = false;                // One lifetime per round.

    const int memUnits = m.unitsFor(FuClass::Mem);
    const PipelineResult r = spillStrategy(
        g, m, opts, [&](const SpillRoundInfo &info) {
            const double busUse = 100.0 * double(info.memOps) /
                                  (double(info.ii) * double(memUnits));
            table.row()
                .add(g.name())
                .add(registers)
                .add(info.spilledSoFar)
                .add(info.regsRequired)
                .add(info.mii)
                .add(info.ii)
                .add(busUse, 1);
        });
    std::cout << g.name() << " to " << registers << " regs: "
              << (r.success ? "converged" : "FAILED") << " after "
              << r.spilledLifetimes << " spilled lifetimes, final II="
              << r.ii() << " (MII=" << r.mii << "), "
              << r.memOpsPerIteration() << " mem ops/iter\n";
}

void
runFig7(benchmark::State &state)
{
    const Machine m = Machine::p2l4();
    for (auto _ : state) {
        std::cout << "\nFigure 7: spilling one lifetime per round, "
                     "Max(LT), P2L4\n";
        Table table({"loop", "budget", "spilled", "regs", "MII", "II",
                     "bus%"});
        traceSpilling(buildApsi47Analogue(), m, 32, table);
        traceSpilling(buildApsi47Analogue(), m, 16, table);
        traceSpilling(buildApsi50Analogue(), m, 32, table);
        traceSpilling(buildApsi50Analogue(), m, 16, table);
        table.print(std::cout);
        benchutil::recordTable("spill_rounds", table);
    }
}

BENCHMARK(runFig7)->Unit(benchmark::kMillisecond)->Iterations(1);

} // namespace

SWP_BENCH_MAIN("fig7_spill_behavior");
