#include "common.hh"

#include "support/diag.hh"
#include "support/stats.hh"

namespace swp::benchutil
{

const char *
variantName(Variant v)
{
    switch (v) {
      case Variant::Ideal: return "ideal (infinite registers)";
      case Variant::MaxLt: return "Max(LT)";
      case Variant::MaxLtTraf: return "Max(LT/Traf)";
      case Variant::MaxLtTrafMulti: return "Max(LT/Traf)+multiple";
      case Variant::MaxLtTrafMultiLastIi:
        return "Max(LT/Traf)+multiple+lastII";
      case Variant::IncreaseIi: return "increase-II";
      case Variant::BestOfAll: return "best-of-all";
    }
    SWP_PANIC("unknown variant ", int(v));
}

PipelineResult
runVariant(const Ddg &g, const Machine &m, int registers, Variant v)
{
    PipelinerOptions opts;
    opts.registers = registers;
    switch (v) {
      case Variant::Ideal:
        return pipelineIdeal(g, m);
      case Variant::MaxLt:
        opts.heuristic = SpillHeuristic::MaxLT;
        return pipelineLoop(g, m, Strategy::Spill, opts);
      case Variant::MaxLtTraf:
        opts.heuristic = SpillHeuristic::MaxLTOverTraf;
        return pipelineLoop(g, m, Strategy::Spill, opts);
      case Variant::MaxLtTrafMulti:
        opts.heuristic = SpillHeuristic::MaxLTOverTraf;
        opts.multiSelect = true;
        return pipelineLoop(g, m, Strategy::Spill, opts);
      case Variant::MaxLtTrafMultiLastIi:
        opts.heuristic = SpillHeuristic::MaxLTOverTraf;
        opts.multiSelect = true;
        opts.reuseLastIi = true;
        return pipelineLoop(g, m, Strategy::Spill, opts);
      case Variant::IncreaseIi:
        return pipelineLoop(g, m, Strategy::IncreaseII, opts);
      case Variant::BestOfAll:
        opts.heuristic = SpillHeuristic::MaxLTOverTraf;
        opts.multiSelect = true;
        opts.reuseLastIi = true;
        return pipelineLoop(g, m, Strategy::BestOfAll, opts);
    }
    SWP_PANIC("unknown variant ", int(v));
}

SuiteTotals
runSuite(const std::vector<SuiteLoop> &suite, const Machine &m,
         int registers, Variant v)
{
    SuiteTotals totals;
    Stopwatch sw;
    for (const SuiteLoop &loop : suite) {
        const PipelineResult r =
            runVariant(loop.graph, m, registers, v);
        totals.cycles += double(r.ii()) * double(loop.iterations);
        totals.memRefs += double(r.memOpsPerIteration()) *
                          double(loop.iterations);
        totals.attempts += r.attempts;
        totals.unfit += !r.success;
        totals.fallbacks += r.usedFallback;
        totals.spills += r.spilledLifetimes;
    }
    totals.seconds = sw.seconds();
    return totals;
}

std::vector<Machine>
evaluationMachines()
{
    return {Machine::p1l4(), Machine::p2l4(), Machine::p2l6()};
}

const std::vector<SuiteLoop> &
evaluationSuite()
{
    static const std::vector<SuiteLoop> suite = generateSuite();
    return suite;
}

} // namespace swp::benchutil
