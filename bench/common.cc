#include "common.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>

#include "machine/machdesc.hh"
#include "support/diag.hh"
#include "support/stats.hh"
#include "support/strutil.hh"

namespace swp::benchutil
{

namespace
{

struct RecordedTable
{
    std::string name;
    Table table;
};

struct RecordedMetric
{
    std::string name;
    double value;
};

std::vector<RecordedTable> &
recordedTables()
{
    static std::vector<RecordedTable> tables;
    return tables;
}

std::vector<RecordedMetric> &
recordedMetrics()
{
    static std::vector<RecordedMetric> metrics;
    return metrics;
}

/** Whether the harness actually used the generated suite — gates the
    JSON "suite" provenance stanza. */
bool &
suiteConsumed()
{
    static bool consumed = false;
    return consumed;
}

[[noreturn]] void
flagError(const std::string &msg)
{
    std::cerr << "bench: " << msg << "\n";
    std::exit(2);
}

/** Strict JSON number grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
    — strtod is laxer (hex, leading zeros/plus, trailing dot) and would
    emit cells that are not valid JSON. */
bool
isJsonNumber(const std::string &s)
{
    std::size_t i = 0;
    const auto digit = [&](std::size_t k) {
        return k < s.size() &&
               std::isdigit(static_cast<unsigned char>(s[k]));
    };
    if (i < s.size() && s[i] == '-')
        ++i;
    if (!digit(i))
        return false;
    if (s[i] == '0')
        ++i;
    else
        while (digit(i))
            ++i;
    if (i < s.size() && s[i] == '.') {
        if (!digit(++i))
            return false;
        while (digit(i))
            ++i;
    }
    if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
        ++i;
        if (i < s.size() && (s[i] == '+' || s[i] == '-'))
            ++i;
        if (!digit(i))
            return false;
        while (digit(i))
            ++i;
    }
    return i == s.size();
}

/** Emit a table cell: as a bare number when it is one. */
std::string
jsonCell(const std::string &cell)
{
    return isJsonNumber(cell) ? cell : jsonQuote(cell);
}

} // namespace

const char *
variantName(Variant v)
{
    switch (v) {
      case Variant::Ideal: return "ideal (infinite registers)";
      case Variant::MaxLt: return "Max(LT)";
      case Variant::MaxLtTraf: return "Max(LT/Traf)";
      case Variant::MaxLtTrafMulti: return "Max(LT/Traf)+multiple";
      case Variant::MaxLtTrafMultiLastIi:
        return "Max(LT/Traf)+multiple+lastII";
      case Variant::IncreaseIi: return "increase-II";
      case Variant::BestOfAll: return "best-of-all";
    }
    SWP_PANIC("unknown variant ", int(v));
}

BatchJob
variantJob(int loopIndex, Variant v, int registers)
{
    BatchJob job;
    job.loop = loopIndex;
    job.options.registers = registers;
    switch (v) {
      case Variant::Ideal:
        job.ideal = true;
        return job;
      case Variant::MaxLt:
        job.strategy = Strategy::Spill;
        job.options.heuristic = SpillHeuristic::MaxLT;
        return job;
      case Variant::MaxLtTraf:
        job.strategy = Strategy::Spill;
        job.options.heuristic = SpillHeuristic::MaxLTOverTraf;
        return job;
      case Variant::MaxLtTrafMulti:
        job.strategy = Strategy::Spill;
        job.options.heuristic = SpillHeuristic::MaxLTOverTraf;
        job.options.multiSelect = true;
        return job;
      case Variant::MaxLtTrafMultiLastIi:
        job.strategy = Strategy::Spill;
        job.options.heuristic = SpillHeuristic::MaxLTOverTraf;
        job.options.multiSelect = true;
        job.options.reuseLastIi = true;
        return job;
      case Variant::IncreaseIi:
        job.strategy = Strategy::IncreaseII;
        return job;
      case Variant::BestOfAll:
        job.strategy = Strategy::BestOfAll;
        job.options.heuristic = SpillHeuristic::MaxLTOverTraf;
        job.options.multiSelect = true;
        job.options.reuseLastIi = true;
        return job;
    }
    SWP_PANIC("unknown variant ", int(v));
}

PipelineResult
runVariant(const Ddg &g, const Machine &m, int registers, Variant v)
{
    const BatchJob job = variantJob(0, v, registers);
    return job.ideal
               ? pipelineIdeal(g, m, job.options.scheduler)
               : pipelineLoop(g, m, job.strategy, job.options);
}

std::vector<BatchJob>
protoJobs(std::size_t n, const BatchJob &proto)
{
    std::vector<BatchJob> jobs(n, proto);
    for (std::size_t i = 0; i < n; ++i)
        jobs[i].loop = int(i);
    return jobs;
}

SuiteRunner &
suiteRunner()
{
    static SuiteRunner runner(benchOptions().threads,
                              benchOptions().memo,
                              std::size_t(benchOptions().memoCap));
    return runner;
}

const ShardSpec &
benchShard()
{
    return benchOptions().shard;
}

bool
ownsJob(std::size_t i)
{
    return benchShard().owns(i);
}

RunOptions
benchRunOptions()
{
    RunOptions opts;
    opts.shard = benchOptions().shard;
    opts.chunk = benchOptions().chunk;
    opts.verify = benchOptions().verify;
    opts.certify = benchOptions().certify;
    return opts;
}

RunOptions
benchChunkOptions()
{
    RunOptions opts;
    opts.chunk = benchOptions().chunk;
    opts.verify = benchOptions().verify;
    opts.certify = benchOptions().certify;
    return opts;
}

std::string
shardSuffix()
{
    return benchShard().active()
               ? " [shard " + formatShardSpec(benchShard()) + "]"
               : "";
}

SuiteTotals
runSuite(const std::vector<SuiteLoop> &suite, const Machine &m,
         int registers, Variant v)
{
    std::vector<BatchJob> jobs;
    jobs.reserve(suite.size());
    for (std::size_t i = 0; i < suite.size(); ++i)
        jobs.push_back(variantJob(int(i), v, registers));

    SuiteTotals totals;
    Stopwatch sw;
    const std::vector<PipelineResult> results =
        suiteRunner().run(suite, m, jobs, benchRunOptions());
    totals.seconds = sw.seconds();

    // Serial accumulation in loop order keeps the floating-point sums
    // (and thus the emitted JSON) bit-identical at any thread count.
    // Sharded runs accumulate only the jobs this shard evaluated.
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (!ownsJob(i))
            continue;
        const PipelineResult &r = results[i];
        totals.cycles += double(r.ii()) * double(suite[i].iterations);
        totals.memRefs += double(r.memOpsPerIteration()) *
                          double(suite[i].iterations);
        totals.attempts += r.attempts;
        totals.unfit += !r.success;
        totals.fallbacks += r.usedFallback;
        totals.spills += r.spilledLifetimes;
    }
    return totals;
}

std::vector<Machine>
evaluationMachines()
{
    if (!benchOptions().machineSpec.empty())
        return {machineFromSpec(benchOptions().machineSpec)};
    return {Machine::p1l4(), Machine::p2l4(), Machine::p2l6()};
}

Machine
benchMachine(const Machine &fallback)
{
    if (!benchOptions().machineSpec.empty())
        return machineFromSpec(benchOptions().machineSpec);
    return fallback;
}

const std::vector<SuiteLoop> &
evaluationSuite()
{
    suiteConsumed() = true;
    static const std::vector<SuiteLoop> suite =
        generateSuite(benchOptions().suite);
    return suite;
}

BenchOptions &
benchOptions()
{
    static BenchOptions options;
    return options;
}

void
initBenchArgs(int *argc, char ***argv, bool nativeJson)
{
    BenchOptions &opts = benchOptions();
    opts.nativeJson = nativeJson;

    // Rebuilt argv storage must outlive main's use of it.
    static std::vector<std::string> forwarded;
    static std::vector<char *> keep;

    keep.push_back((*argv)[0]);
    const auto next = [&](int &i, const char *flag) -> const char * {
        if (++i >= *argc)
            flagError(std::string("missing argument for ") + flag);
        return (*argv)[i];
    };
    for (int i = 1; i < *argc; ++i) {
        char *arg = (*argv)[i];
        if (!std::strcmp(arg, "--json")) {
            opts.jsonPath = next(i, arg);
        } else if (!std::strcmp(arg, "--seed")) {
            const char *text = next(i, arg);
            if (!parseUint64(text, opts.suite.seed))
                flagError(std::string("bad --seed value ") + text);
        } else if (!std::strcmp(arg, "--loops")) {
            const char *text = next(i, arg);
            if (!parseIntInRange(text, 1, 1000000, opts.suite.numLoops))
                flagError(std::string("bad --loops count ") + text);
        } else if (!std::strcmp(arg, "--threads")) {
            const char *text = next(i, arg);
            if (!parseIntInRange(text, 0, 4096, opts.threads))
                flagError(std::string("bad --threads count ") + text);
        } else if (!std::strcmp(arg, "--memo")) {
            const char *text = next(i, arg);
            int memo = 1;
            if (!parseIntInRange(text, 0, 1, memo))
                flagError(std::string("bad --memo value ") + text);
            opts.memo = memo != 0;
        } else if (!std::strcmp(arg, "--memo-cap")) {
            const char *text = next(i, arg);
            if (!parseIntInRange(text, 0, 1 << 30, opts.memoCap))
                flagError(std::string("bad --memo-cap value ") + text);
        } else if (!std::strcmp(arg, "--chunk")) {
            const char *text = next(i, arg);
            if (!parseChunkPolicy(text, opts.chunk))
                flagError(std::string("bad --chunk policy ") + text);
        } else if (!std::strcmp(arg, "--shard")) {
            const char *text = next(i, arg);
            if (!parseShardSpec(text, opts.shard))
                flagError(std::string("bad --shard spec ") + text +
                          " (want i/N with 0 <= i < N)");
        } else if (!std::strcmp(arg, "--verify")) {
            opts.verify = true;
        } else if (!std::strcmp(arg, "--certify")) {
            opts.certify = true;
        } else if (!std::strcmp(arg, "--machine")) {
            opts.machineSpec = next(i, arg);
        } else {
            keep.push_back(arg);
        }
    }
    // Fail before the (potentially long) run, not after it; append mode
    // probes writability without clobbering a previous results file, and
    // a probe-created empty file is removed so an interrupted run leaves
    // no unparsable zero-byte output behind.
    if (!opts.jsonPath.empty()) {
        const bool existed =
            static_cast<bool>(std::ifstream(opts.jsonPath));
        if (!std::ofstream(opts.jsonPath, std::ios::app))
            flagError("cannot write " + opts.jsonPath);
        if (!existed)
            std::remove(opts.jsonPath.c_str());
    }
    if (nativeJson && !opts.jsonPath.empty()) {
        forwarded.push_back("--benchmark_out=" + opts.jsonPath);
        forwarded.push_back("--benchmark_out_format=json");
        for (std::string &flag : forwarded)
            keep.push_back(flag.data());
    }
    keep.push_back(nullptr);
    *argc = int(keep.size()) - 1;
    *argv = keep.data();
}

void
recordTable(const std::string &name, const Table &table)
{
    // Replace by name so --benchmark_repetitions reruns overwrite
    // instead of duplicating.
    for (RecordedTable &prev : recordedTables()) {
        if (prev.name == name) {
            prev.table = table;
            return;
        }
    }
    recordedTables().push_back({name, table});
}

void
recordMetric(const std::string &name, double value)
{
    for (RecordedMetric &prev : recordedMetrics()) {
        if (prev.name == name) {
            prev.value = value;
            return;
        }
    }
    recordedMetrics().push_back({name, value});
}

void
writeBenchJson(const std::string &benchName)
{
    const BenchOptions &opts = benchOptions();
    if (opts.jsonPath.empty() || opts.nativeJson)
        return;
    if (recordedTables().empty() && recordedMetrics().empty()) {
        // Nothing ran (e.g. --benchmark_list_tests or a non-matching
        // filter): keep any previous results file intact.
        std::cerr << "no results recorded; not writing " << opts.jsonPath
                  << "\n";
        return;
    }

    std::ofstream out(opts.jsonPath);
    if (!out)
        flagError("cannot write " + opts.jsonPath);
    out.precision(std::numeric_limits<double>::max_digits10);

    out << "{\n";
    out << "  \"bench\": " << jsonQuote(benchName) << ",\n";
    if (suiteConsumed()) {
        out << "  \"suite\": {\"seed\": \"" << opts.suite.seed
            << "\", \"loops\": " << opts.suite.numLoops << "},\n";
    }
    // The shard/memo stanzas appear only when their flags are active,
    // so default runs stay byte-comparable across thread counts and
    // memo on/off (the CI determinism diffs rely on that). The memo
    // stanza itself is observability, not results: with >1 thread its
    // counters depend on worker interleaving (which probes hit before
    // eviction), so it is excluded from the byte-identity guarantee,
    // like the wall-clock columns.
    if (opts.shard.active()) {
        out << "  \"shard\": {\"index\": " << opts.shard.index
            << ", \"count\": " << opts.shard.count << "},\n";
    }
    if (opts.memoCap > 0) {
        const SuiteRunner::MemoStats ms = suiteRunner().memoStats();
        const SingleFlightStats &s = ms.schedule;
        const SingleFlightStats &b = ms.bounds;
        out << "  \"memo\": {\"cap\": " << opts.memoCap
            << ", \"shard\": " << jsonQuote(formatShardSpec(opts.shard))
            << ", \"requests\": " << s.requests << ", \"computes\": "
            << s.computes << ", \"entries\": " << s.entries
            << ", \"evictions\": " << s.evictions
            << ",\n           \"bounds\": {\"requests\": " << b.requests
            << ", \"computes\": " << b.computes << ", \"entries\": "
            << b.entries << ", \"evictions\": " << b.evictions
            << "}},\n";
    }

    out << "  \"metrics\": {";
    const auto &metrics = recordedMetrics();
    for (std::size_t i = 0; i < metrics.size(); ++i) {
        out << (i ? ", " : "") << jsonQuote(metrics[i].name) << ": "
            << metrics[i].value;
    }
    out << "},\n";

    out << "  \"tables\": [";
    const auto &tables = recordedTables();
    for (std::size_t t = 0; t < tables.size(); ++t) {
        const Table &table = tables[t].table;
        out << (t ? ",\n" : "\n") << "    {\"name\": "
            << jsonQuote(tables[t].name) << ",\n     \"header\": [";
        const auto &header = table.header();
        for (std::size_t c = 0; c < header.size(); ++c)
            out << (c ? ", " : "") << jsonQuote(header[c]);
        out << "],\n     \"rows\": [";
        const auto &rows = table.rows();
        for (std::size_t r = 0; r < rows.size(); ++r) {
            out << (r ? ",\n              " : "") << "[";
            for (std::size_t c = 0; c < rows[r].size(); ++c)
                out << (c ? ", " : "") << jsonCell(rows[r][c]);
            out << "]";
        }
        out << "]}";
    }
    out << "\n  ]\n}\n";

    std::cout << "results written to " << opts.jsonPath << "\n";
}

} // namespace swp::benchutil
