#include "common.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>

#include "machine/machdesc.hh"
#include "sched/fingerprint.hh"
#include "support/diag.hh"
#include "support/stats.hh"
#include "support/strutil.hh"

namespace swp::benchutil
{

namespace
{

struct RecordedTable
{
    std::string name;
    Table table;
};

struct RecordedMetric
{
    std::string name;
    double value;
};

std::vector<RecordedTable> &
recordedTables()
{
    static std::vector<RecordedTable> tables;
    return tables;
}

std::vector<RecordedMetric> &
recordedMetrics()
{
    static std::vector<RecordedMetric> metrics;
    return metrics;
}

/** Whether the harness actually used the generated suite — gates the
    JSON "suite" provenance stanza. */
bool &
suiteConsumed()
{
    static bool consumed = false;
    return consumed;
}

[[noreturn]] void
flagError(const std::string &msg)
{
    std::cerr << "bench: " << msg << "\n";
    std::exit(2);
}

/** Strict JSON number grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
    — strtod is laxer (hex, leading zeros/plus, trailing dot) and would
    emit cells that are not valid JSON. */
bool
isJsonNumber(const std::string &s)
{
    std::size_t i = 0;
    const auto digit = [&](std::size_t k) {
        return k < s.size() &&
               std::isdigit(static_cast<unsigned char>(s[k]));
    };
    if (i < s.size() && s[i] == '-')
        ++i;
    if (!digit(i))
        return false;
    if (s[i] == '0')
        ++i;
    else
        while (digit(i))
            ++i;
    if (i < s.size() && s[i] == '.') {
        if (!digit(++i))
            return false;
        while (digit(i))
            ++i;
    }
    if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
        ++i;
        if (i < s.size() && (s[i] == '+' || s[i] == '-'))
            ++i;
        if (!digit(i))
            return false;
        while (digit(i))
            ++i;
    }
    return i == s.size();
}

/** Emit a table cell: as a bare number when it is one. */
std::string
jsonCell(const std::string &cell)
{
    return isJsonNumber(cell) ? cell : jsonQuote(cell);
}

/** Record/replay store for --orch-record / --orchestrate. */
struct OrchState
{
    /** Parent mode: replay benchEvaluate from byKey, never evaluate. */
    bool replay = false;

    /** Merged fleet records, keyed for replay lookups. */
    std::map<std::string, BenchJobRecord> byKey;

    /** Worker mode: jobs recorded so far, in first-evaluation order. */
    std::vector<BenchJobRecord> recorded;
    std::map<std::string, std::size_t> recordedIndex;
};

OrchState &
orchState()
{
    static OrchState state;
    return state;
}

/**
 * Everything a per-job record's validity depends on that is not in the
 * job key itself: the build, the harness, the suite, and the machine
 * selection. Fleet shard files must agree on this to merge.
 */
std::string
benchConfigFingerprint()
{
    const BenchOptions &opts = benchOptions();
    Fingerprint fp;
    fp.mix(std::string(__VERSION__));
#ifdef NDEBUG
    fp.mix(std::uint64_t(1));
#else
    fp.mix(std::uint64_t(0));
#endif
    fp.mix(opts.benchName);
    fp.mix(opts.suite.seed);
    fp.mix(std::uint64_t(opts.suite.numLoops));
    fp.mix(opts.machineSpec);
    return strprintf("%016llx",
                     static_cast<unsigned long long>(fp.value()));
}

std::string
benchConfigSummary()
{
    const BenchOptions &opts = benchOptions();
    return "bench=" + opts.benchName + " seed=" +
           std::to_string(opts.suite.seed) + " loops=" +
           std::to_string(opts.suite.numLoops) + " machine=" +
           (opts.machineSpec.empty() ? "(default)" : opts.machineSpec);
}

/**
 * Content key of one grid job: pipeline results are pure functions of
 * (graph, machine, job options), so this key identifies a job across
 * processes regardless of grid shape or job index.
 */
std::string
jobKey(const Ddg &g, const Machine &m, const BatchJob &job)
{
    Fingerprint fp;
    fp.mix(graphFingerprint(g));
    fp.mix(machineFingerprint(m));
    fp.mix(std::uint64_t(job.ideal));
    fp.mix(std::uint64_t(int(job.strategy)));
    fp.mix(std::uint64_t(int(job.options.scheduler)));
    fp.mix(std::uint64_t(job.options.registers));
    fp.mix(std::uint64_t(int(job.options.heuristic)));
    fp.mix(std::uint64_t(job.options.multiSelect));
    fp.mix(std::uint64_t(job.options.spillUses));
    fp.mix(std::uint64_t(job.options.reuseLastIi));
    fp.mix(std::uint64_t(int(job.options.fit)));
    fp.mix(std::uint64_t(job.options.maxSpillRounds));
    fp.mix(std::uint64_t(job.options.fuseSpillOps));
    return strprintf("%016llx",
                     static_cast<unsigned long long>(fp.value()));
}

void
recordBenchJob(const std::string &key, const JobSummary &s)
{
    OrchState &state = orchState();
    if (state.recordedIndex.count(key))
        return; // Pure job re-evaluated (e.g. a timing rerun).
    BenchJobRecord rec;
    rec.key = key;
    rec.success = s.success;
    rec.usedFallback = s.usedFallback;
    rec.ii = s.ii;
    rec.regs = s.regs;
    rec.spills = s.spills;
    rec.rounds = s.rounds;
    rec.attempts = s.attempts;
    rec.memOps = s.memOps;
    state.recordedIndex.emplace(key, state.recorded.size());
    state.recorded.push_back(std::move(rec));
}

} // namespace

const char *
variantName(Variant v)
{
    switch (v) {
      case Variant::Ideal: return "ideal (infinite registers)";
      case Variant::MaxLt: return "Max(LT)";
      case Variant::MaxLtTraf: return "Max(LT/Traf)";
      case Variant::MaxLtTrafMulti: return "Max(LT/Traf)+multiple";
      case Variant::MaxLtTrafMultiLastIi:
        return "Max(LT/Traf)+multiple+lastII";
      case Variant::IncreaseIi: return "increase-II";
      case Variant::BestOfAll: return "best-of-all";
    }
    SWP_PANIC("unknown variant ", int(v));
}

BatchJob
variantJob(int loopIndex, Variant v, int registers)
{
    BatchJob job;
    job.loop = loopIndex;
    job.options.registers = registers;
    switch (v) {
      case Variant::Ideal:
        job.ideal = true;
        return job;
      case Variant::MaxLt:
        job.strategy = Strategy::Spill;
        job.options.heuristic = SpillHeuristic::MaxLT;
        return job;
      case Variant::MaxLtTraf:
        job.strategy = Strategy::Spill;
        job.options.heuristic = SpillHeuristic::MaxLTOverTraf;
        return job;
      case Variant::MaxLtTrafMulti:
        job.strategy = Strategy::Spill;
        job.options.heuristic = SpillHeuristic::MaxLTOverTraf;
        job.options.multiSelect = true;
        return job;
      case Variant::MaxLtTrafMultiLastIi:
        job.strategy = Strategy::Spill;
        job.options.heuristic = SpillHeuristic::MaxLTOverTraf;
        job.options.multiSelect = true;
        job.options.reuseLastIi = true;
        return job;
      case Variant::IncreaseIi:
        job.strategy = Strategy::IncreaseII;
        return job;
      case Variant::BestOfAll:
        job.strategy = Strategy::BestOfAll;
        job.options.heuristic = SpillHeuristic::MaxLTOverTraf;
        job.options.multiSelect = true;
        job.options.reuseLastIi = true;
        return job;
    }
    SWP_PANIC("unknown variant ", int(v));
}

PipelineResult
runVariant(const Ddg &g, const Machine &m, int registers, Variant v)
{
    const BatchJob job = variantJob(0, v, registers);
    return job.ideal
               ? pipelineIdeal(g, m, job.options.scheduler)
               : pipelineLoop(g, m, job.strategy, job.options);
}

std::vector<BatchJob>
protoJobs(std::size_t n, const BatchJob &proto)
{
    std::vector<BatchJob> jobs(n, proto);
    for (std::size_t i = 0; i < n; ++i)
        jobs[i].loop = int(i);
    return jobs;
}

SuiteRunner &
suiteRunner()
{
    static SuiteRunner runner(benchOptions().threads,
                              benchOptions().memo,
                              std::size_t(benchOptions().memoCap));
    return runner;
}

const ShardSpec &
benchShard()
{
    return benchOptions().shard;
}

bool
ownsJob(std::size_t i)
{
    return benchShard().owns(i);
}

RunOptions
benchRunOptions()
{
    RunOptions opts;
    opts.shard = benchOptions().shard;
    opts.chunk = benchOptions().chunk;
    opts.verify = benchOptions().verify;
    opts.certify = benchOptions().certify;
    return opts;
}

RunOptions
benchChunkOptions()
{
    RunOptions opts;
    opts.chunk = benchOptions().chunk;
    opts.verify = benchOptions().verify;
    opts.certify = benchOptions().certify;
    return opts;
}

std::string
shardSuffix()
{
    return benchShard().active()
               ? " [shard " + formatShardSpec(benchShard()) + "]"
               : "";
}

std::vector<JobSummary>
benchEvaluate(const std::vector<SuiteLoop> &suite, const Machine &m,
              const std::vector<BatchJob> &jobs, const RunOptions &opts)
{
    std::vector<JobSummary> out(jobs.size());
    OrchState &state = orchState();

    if (state.replay) {
        // Orchestrated parent: every job was evaluated by the shard
        // fleet; look its summary up by content key. Jobs are pure
        // functions of the key, so this reproduces evaluation exactly.
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            if (!opts.shard.owns(i))
                continue;
            const Ddg &g = suite[std::size_t(jobs[i].loop)].graph;
            const std::string key = jobKey(g, m, jobs[i]);
            const auto it = state.byKey.find(key);
            if (it == state.byKey.end()) {
                SWP_FATAL("orchestrate: no recorded result for job key ",
                          key, " (loop ", jobs[i].loop, " '", g.name(),
                          "' on ", m.name(), "); the shard fleet and "
                          "this process do not run the same grids");
            }
            const BenchJobRecord &rec = it->second;
            JobSummary &s = out[i];
            s.evaluated = true;
            s.success = rec.success;
            s.usedFallback = rec.usedFallback;
            s.ii = rec.ii;
            s.regs = rec.regs;
            s.spills = rec.spills;
            s.rounds = rec.rounds;
            s.attempts = rec.attempts;
            s.memOps = rec.memOps;
        }
        return out;
    }

    const std::vector<PipelineResult> results =
        suiteRunner().run(suite, m, jobs, opts);
    const bool record = !benchOptions().orchRecordPath.empty();
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (!opts.shard.owns(i))
            continue;
        const PipelineResult &r = results[i];
        JobSummary &s = out[i];
        s.evaluated = true;
        s.success = r.success;
        s.usedFallback = r.usedFallback;
        s.ii = r.ii();
        s.regs = r.alloc.regsRequired;
        s.spills = r.spilledLifetimes;
        s.rounds = r.rounds;
        s.attempts = r.attempts;
        s.memOps = r.memOpsPerIteration();
        if (record) {
            recordBenchJob(
                jobKey(suite[std::size_t(jobs[i].loop)].graph, m,
                       jobs[i]),
                s);
        }
    }
    return out;
}

void
writeOrchRecord()
{
    const BenchOptions &opts = benchOptions();
    if (opts.orchRecordPath.empty())
        return;
    ShardDoc doc;
    doc.tool = "bench:" + opts.benchName;
    doc.config = benchConfigFingerprint();
    doc.configSummary = benchConfigSummary();
    if (suiteConsumed()) {
        doc.suiteSeed = std::to_string(opts.suite.seed);
        doc.suiteLoops = opts.suite.numLoops;
    }
    doc.shard = opts.shard;
    doc.benchJobs = orchState().recorded;
    // Fault hook for orchestrator tests, as in swpipe_cli's shard mode.
    if (maybeInjectFault(opts.orchRecordPath))
        return;
    writeShardFile(opts.orchRecordPath, doc);
    std::cerr << "orch record: " << doc.benchJobs.size()
              << " job records written to " << opts.orchRecordPath
              << "\n";
}

SuiteTotals
runSuite(const std::vector<SuiteLoop> &suite, const Machine &m,
         int registers, Variant v)
{
    std::vector<BatchJob> jobs;
    jobs.reserve(suite.size());
    for (std::size_t i = 0; i < suite.size(); ++i)
        jobs.push_back(variantJob(int(i), v, registers));

    SuiteTotals totals;
    Stopwatch sw;
    const std::vector<JobSummary> results =
        benchEvaluate(suite, m, jobs, benchRunOptions());
    totals.seconds = sw.seconds();

    // Serial accumulation in loop order keeps the floating-point sums
    // (and thus the emitted JSON) bit-identical at any thread count.
    // Sharded runs accumulate only the jobs this shard evaluated.
    for (std::size_t i = 0; i < results.size(); ++i) {
        const JobSummary &r = results[i];
        if (!r.evaluated)
            continue;
        totals.cycles += double(r.ii) * double(suite[i].iterations);
        totals.memRefs += double(r.memOps) * double(suite[i].iterations);
        totals.attempts += r.attempts;
        totals.unfit += !r.success;
        totals.fallbacks += r.usedFallback;
        totals.spills += r.spills;
    }
    return totals;
}

std::vector<Machine>
evaluationMachines()
{
    if (!benchOptions().machineSpec.empty())
        return {machineFromSpec(benchOptions().machineSpec)};
    return {Machine::p1l4(), Machine::p2l4(), Machine::p2l6()};
}

Machine
benchMachine(const Machine &fallback)
{
    if (!benchOptions().machineSpec.empty())
        return machineFromSpec(benchOptions().machineSpec);
    return fallback;
}

const std::vector<SuiteLoop> &
evaluationSuite()
{
    suiteConsumed() = true;
    static const std::vector<SuiteLoop> suite =
        generateSuite(benchOptions().suite);
    return suite;
}

BenchOptions &
benchOptions()
{
    static BenchOptions options;
    return options;
}

void
initBenchArgs(int *argc, char ***argv, const std::string &benchName,
              bool nativeJson)
{
    BenchOptions &opts = benchOptions();
    opts.nativeJson = nativeJson;
    opts.benchName = benchName;

    // Rebuilt argv storage must outlive main's use of it.
    static std::vector<std::string> forwarded;
    static std::vector<char *> keep;

    bool shardSeen = false;
    std::vector<std::string> workerArgs;

    keep.push_back((*argv)[0]);
    const auto next = [&](int &i, const char *flag) -> const char * {
        if (++i >= *argc)
            flagError(std::string("missing argument for ") + flag);
        return (*argv)[i];
    };
    for (int i = 1; i < *argc; ++i) {
        const int argStart = i;
        // Orchestration flags and --json stay with this process;
        // everything else is forwarded verbatim to shard workers.
        bool forward = true;
        char *arg = (*argv)[i];
        if (!std::strcmp(arg, "--json")) {
            forward = false;
            opts.jsonPath = next(i, arg);
        } else if (!std::strcmp(arg, "--seed")) {
            const char *text = next(i, arg);
            if (!parseUint64(text, opts.suite.seed))
                flagError(std::string("bad --seed value ") + text);
        } else if (!std::strcmp(arg, "--loops")) {
            const char *text = next(i, arg);
            if (!parseIntInRange(text, 1, 1000000, opts.suite.numLoops))
                flagError(std::string("bad --loops count ") + text);
        } else if (!std::strcmp(arg, "--threads")) {
            const char *text = next(i, arg);
            if (!parseThreadsArg(text, opts.threads))
                flagError(std::string("bad --threads count ") + text);
        } else if (!std::strcmp(arg, "--memo")) {
            const char *text = next(i, arg);
            int memo = 1;
            if (!parseIntInRange(text, 0, 1, memo))
                flagError(std::string("bad --memo value ") + text);
            opts.memo = memo != 0;
        } else if (!std::strcmp(arg, "--memo-cap")) {
            const char *text = next(i, arg);
            if (!parseIntInRange(text, 0, 1 << 30, opts.memoCap))
                flagError(std::string("bad --memo-cap value ") + text);
        } else if (!std::strcmp(arg, "--chunk")) {
            const char *text = next(i, arg);
            if (!parseChunkPolicy(text, opts.chunk))
                flagError(std::string("bad --chunk policy ") + text);
        } else if (!std::strcmp(arg, "--shard")) {
            const char *text = next(i, arg);
            if (!parseShardSpec(text, opts.shard))
                flagError(std::string("bad --shard spec ") + text +
                          " (want i/N with 0 <= i < N)");
            shardSeen = true;
        } else if (!std::strcmp(arg, "--verify")) {
            opts.verify = true;
        } else if (!std::strcmp(arg, "--certify")) {
            opts.certify = true;
        } else if (!std::strcmp(arg, "--machine")) {
            opts.machineSpec = next(i, arg);
        } else if (!std::strcmp(arg, "--orchestrate")) {
            forward = false;
            const char *text = next(i, arg);
            if (!parseIntInRange(text, 1, 4096, opts.orchestrate))
                flagError(std::string("bad --orchestrate count ") + text);
        } else if (!std::strcmp(arg, "--orch-dir")) {
            forward = false;
            opts.orchDir = next(i, arg);
            if (opts.orchDir.empty())
                flagError("--orch-dir needs a directory");
        } else if (!std::strcmp(arg, "--orch-timeout")) {
            forward = false;
            const char *text = next(i, arg);
            if (!parseIntInRange(text, 0, 1000000, opts.orchTimeout))
                flagError(std::string("bad --orch-timeout seconds ") +
                          text);
        } else if (!std::strcmp(arg, "--orch-retries")) {
            forward = false;
            const char *text = next(i, arg);
            if (!parseIntInRange(text, 0, 1000, opts.orchRetries))
                flagError(std::string("bad --orch-retries count ") + text);
        } else if (!std::strcmp(arg, "--orch-backoff")) {
            forward = false;
            const char *text = next(i, arg);
            if (!parseIntInRange(text, 0, 600000, opts.orchBackoffMs))
                flagError(std::string("bad --orch-backoff ms ") + text);
        } else if (!std::strcmp(arg, "--no-resume")) {
            forward = false;
            opts.orchResume = false;
        } else if (!std::strcmp(arg, "--inject-fail")) {
            forward = false;
            const char *text = next(i, arg);
            if (!parseInjectSpec(text, opts.inject))
                flagError(std::string("bad --inject-fail spec ") + text +
                          " (want shard:attempt:crash|hang|corrupt"
                          "[,...])");
        } else if (!std::strcmp(arg, "--orch-record")) {
            forward = false;
            opts.orchRecordPath = next(i, arg);
        } else {
            keep.push_back(arg);
        }
        if (forward) {
            for (int k = argStart; k <= i && k < *argc; ++k)
                workerArgs.push_back((*argv)[k]);
        }
    }
    if (opts.orchestrate > 0) {
        if (shardSeen) {
            flagError("--orchestrate cannot be combined with --shard "
                      "(the orchestrator launches the shard workers "
                      "itself)");
        }
        if (!opts.orchRecordPath.empty())
            flagError("--orchestrate cannot be combined with "
                      "--orch-record");
        // Run the worker fleet now, before any benchmark executes, and
        // load the merged per-job records: every benchEvaluate() below
        // replays from them instead of evaluating.
        OrchestrateOptions orch;
        orch.shards = opts.orchestrate;
        orch.dir = opts.orchDir.empty() ? "swp_orch_" + benchName
                                        : opts.orchDir;
        orch.shardOutFlag = "--orch-record";
        orch.maxAttempts = opts.orchRetries + 1;
        orch.timeoutSeconds = opts.orchTimeout;
        orch.backoffSeconds = opts.orchBackoffMs / 1000.0;
        orch.resume = opts.orchResume;
        orch.inject = opts.inject;
        orch.expectTool = "bench:" + benchName;
        orch.expectConfig = benchConfigFingerprint();
        try {
            const OrchestrateResult fleet = orchestrateShards(
                selfExecutablePath((*argv)[0]), workerArgs, orch);
            OrchState &state = orchState();
            for (BenchJobRecord &rec : mergeBenchRecords(fleet.docs)) {
                const std::string key = rec.key;
                state.byKey.emplace(key, std::move(rec));
            }
            state.replay = true;
            std::cerr << "orchestrate: replaying " << state.byKey.size()
                      << " recorded jobs from " << orch.dir << "\n";
        } catch (const FatalError &err) {
            std::cerr << err.what() << "\n";
            std::exit(2);
        }
    }
    // Fail before the (potentially long) run, not after it; append mode
    // probes writability without clobbering a previous results file, and
    // a probe-created empty file is removed so an interrupted run leaves
    // no unparsable zero-byte output behind.
    if (!opts.jsonPath.empty()) {
        const bool existed =
            static_cast<bool>(std::ifstream(opts.jsonPath));
        if (!std::ofstream(opts.jsonPath, std::ios::app))
            flagError("cannot write " + opts.jsonPath);
        if (!existed)
            std::remove(opts.jsonPath.c_str());
    }
    if (nativeJson && !opts.jsonPath.empty()) {
        forwarded.push_back("--benchmark_out=" + opts.jsonPath);
        forwarded.push_back("--benchmark_out_format=json");
        for (std::string &flag : forwarded)
            keep.push_back(flag.data());
    }
    keep.push_back(nullptr);
    *argc = int(keep.size()) - 1;
    *argv = keep.data();
}

void
recordTable(const std::string &name, const Table &table)
{
    // Replace by name so --benchmark_repetitions reruns overwrite
    // instead of duplicating.
    for (RecordedTable &prev : recordedTables()) {
        if (prev.name == name) {
            prev.table = table;
            return;
        }
    }
    recordedTables().push_back({name, table});
}

void
recordMetric(const std::string &name, double value)
{
    for (RecordedMetric &prev : recordedMetrics()) {
        if (prev.name == name) {
            prev.value = value;
            return;
        }
    }
    recordedMetrics().push_back({name, value});
}

void
writeBenchJson(const std::string &benchName)
{
    const BenchOptions &opts = benchOptions();
    if (opts.jsonPath.empty() || opts.nativeJson)
        return;
    if (recordedTables().empty() && recordedMetrics().empty()) {
        // Nothing ran (e.g. --benchmark_list_tests or a non-matching
        // filter): keep any previous results file intact.
        std::cerr << "no results recorded; not writing " << opts.jsonPath
                  << "\n";
        return;
    }

    std::ofstream out(opts.jsonPath);
    if (!out)
        flagError("cannot write " + opts.jsonPath);
    out.precision(std::numeric_limits<double>::max_digits10);

    out << "{\n";
    out << "  \"bench\": " << jsonQuote(benchName) << ",\n";
    if (suiteConsumed()) {
        out << "  \"suite\": {\"seed\": \"" << opts.suite.seed
            << "\", \"loops\": " << opts.suite.numLoops << "},\n";
    }
    // The shard/memo stanzas appear only when their flags are active,
    // so default runs stay byte-comparable across thread counts and
    // memo on/off (the CI determinism diffs rely on that). The memo
    // stanza itself is observability, not results: with >1 thread its
    // counters depend on worker interleaving (which probes hit before
    // eviction), so it is excluded from the byte-identity guarantee,
    // like the wall-clock columns.
    if (opts.shard.active()) {
        out << "  \"shard\": {\"index\": " << opts.shard.index
            << ", \"count\": " << opts.shard.count << "},\n";
    }
    if (opts.memoCap > 0) {
        const SuiteRunner::MemoStats ms = suiteRunner().memoStats();
        const SingleFlightStats &s = ms.schedule;
        const SingleFlightStats &b = ms.bounds;
        out << "  \"memo\": {\"cap\": " << opts.memoCap
            << ", \"shard\": " << jsonQuote(formatShardSpec(opts.shard))
            << ", \"stripes\": " << suiteRunner().scheduleMemo().stripeCount()
            << ", \"requests\": " << s.requests << ", \"computes\": "
            << s.computes << ", \"entries\": " << s.entries
            << ", \"evictions\": " << s.evictions
            << ",\n           \"bounds\": {\"stripes\": "
            << suiteRunner().boundsStripeCount()
            << ", \"requests\": " << b.requests
            << ", \"computes\": " << b.computes << ", \"entries\": "
            << b.entries << ", \"evictions\": " << b.evictions
            << "}},\n";
    }

    out << "  \"metrics\": {";
    const auto &metrics = recordedMetrics();
    for (std::size_t i = 0; i < metrics.size(); ++i) {
        out << (i ? ", " : "") << jsonQuote(metrics[i].name) << ": "
            << metrics[i].value;
    }
    out << "},\n";

    out << "  \"tables\": [";
    const auto &tables = recordedTables();
    for (std::size_t t = 0; t < tables.size(); ++t) {
        const Table &table = tables[t].table;
        out << (t ? ",\n" : "\n") << "    {\"name\": "
            << jsonQuote(tables[t].name) << ",\n     \"header\": [";
        const auto &header = table.header();
        for (std::size_t c = 0; c < header.size(); ++c)
            out << (c ? ", " : "") << jsonQuote(header[c]);
        out << "],\n     \"rows\": [";
        const auto &rows = table.rows();
        for (std::size_t r = 0; r < rows.size(); ++r) {
            out << (r ? ",\n              " : "") << "[";
            for (std::size_t c = 0; c < rows[r].size(); ++c)
                out << (c ? ", " : "") << jsonCell(rows[r][c]);
            out << "]";
        }
        out << "]}";
    }
    out << "\n  ]\n}\n";

    std::cout << "results written to " << opts.jsonPath << "\n";
}

} // namespace swp::benchutil
