/**
 * @file
 * Figure 9: increase-II versus spilling versus their combination, on
 * the subset of loops that (1) need a register reduction and (2)
 * converge under increase-II. Total execution cycles per configuration
 * for 64 and 32 registers.
 *
 * Expected shape: spilling wins on average; "best of all" (the Section
 * 5 combination) is never worse than spilling alone and recovers the
 * few loops where increase-II happens to be the better choice.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "common.hh"
#include "support/table.hh"

namespace
{

using namespace swp;
using namespace swp::benchutil;

void
runFig9(benchmark::State &state)
{
    const auto &suite = evaluationSuite();

    for (auto _ : state) {
        Table table({"config", "regs", "subset", "increase-II(1e9)",
                     "spill(1e9)", "best-of-all(1e9)",
                     "spill-wins", "incII-wins"});
        for (const int registers : {64, 32}) {
            for (const Machine &m : evaluationMachines()) {
                // Stage 1: increase-II over the whole suite; the subset
                // is the loops that needed a reduction (rounds > 1
                // means the first II failed the budget) and converged.
                std::vector<BatchJob> incrJobs;
                for (std::size_t i = 0; i < suite.size(); ++i)
                    incrJobs.push_back(variantJob(
                        int(i), Variant::IncreaseIi, registers));
                const auto incr =
                    benchEvaluate(suite, m, incrJobs, benchRunOptions());

                // A sharded run draws its candidates from the loops it
                // owns; the later stages' grids are already
                // shard-filtered through them (chunk policy only).
                std::vector<int> candidates;
                for (std::size_t i = 0; i < suite.size(); ++i) {
                    if (!incr[i].evaluated)
                        continue;
                    const JobSummary &r = incr[i];
                    if (!r.usedFallback && r.success && r.rounds > 1)
                        candidates.push_back(int(i));
                }

                // Stage 2: spilling on the candidate subset.
                std::vector<BatchJob> spillJobs;
                for (const int i : candidates)
                    spillJobs.push_back(variantJob(
                        i, Variant::MaxLtTrafMultiLastIi, registers));
                const auto spills =
                    benchEvaluate(suite, m, spillJobs,
                                  benchChunkOptions());

                // Stage 3: best-of-all where spilling also converged.
                std::vector<int> members;
                std::vector<BatchJob> bestJobs;
                for (std::size_t k = 0; k < candidates.size(); ++k) {
                    if (!spills[k].success)
                        continue;
                    members.push_back(int(k));
                    bestJobs.push_back(variantJob(
                        candidates[k], Variant::BestOfAll, registers));
                }
                const auto bests =
                    benchEvaluate(suite, m, bestJobs,
                                  benchChunkOptions());

                double cyclesIi = 0, cyclesSpill = 0, cyclesBest = 0;
                int subset = 0, spillWins = 0, iiWins = 0;
                for (std::size_t j = 0; j < members.size(); ++j) {
                    const int k = members[j];
                    const int loopIdx = candidates[std::size_t(k)];
                    const JobSummary &ri = incr[std::size_t(loopIdx)];
                    const JobSummary &rs = spills[std::size_t(k)];
                    const JobSummary &rb = bests[j];
                    ++subset;
                    const double w =
                        double(suite[std::size_t(loopIdx)].iterations);
                    cyclesIi += double(ri.ii) * w;
                    cyclesSpill += double(rs.ii) * w;
                    cyclesBest += double(rb.ii) * w;
                    spillWins += rs.ii < ri.ii;
                    iiWins += ri.ii < rs.ii;
                }
                table.row()
                    .add(m.name())
                    .add(registers)
                    .add(subset)
                    .add(cyclesIi / 1e9, 4)
                    .add(cyclesSpill / 1e9, 4)
                    .add(cyclesBest / 1e9, 4)
                    .add(spillWins)
                    .add(iiWins);
            }
        }
        std::cout << "\nFigure 9: increase-II vs spill vs best-of-all "
                     "(converging subset only" << shardSuffix()
                  << ")\n";
        table.print(std::cout);
        recordTable("strategies", table);
    }
}

BENCHMARK(runFig9)->Unit(benchmark::kMillisecond)->Iterations(1);

} // namespace

SWP_BENCH_MAIN("fig9_ii_vs_spill");
