/**
 * @file
 * Figure 9: increase-II versus spilling versus their combination, on
 * the subset of loops that (1) need a register reduction and (2)
 * converge under increase-II. Total execution cycles per configuration
 * for 64 and 32 registers.
 *
 * Expected shape: spilling wins on average; "best of all" (the Section
 * 5 combination) is never worse than spilling alone and recovers the
 * few loops where increase-II happens to be the better choice.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "common.hh"
#include "support/table.hh"

namespace
{

using namespace swp;
using namespace swp::benchutil;

void
runFig9(benchmark::State &state)
{
    const auto &suite = evaluationSuite();

    for (auto _ : state) {
        Table table({"config", "regs", "subset", "increase-II(1e9)",
                     "spill(1e9)", "best-of-all(1e9)",
                     "spill-wins", "incII-wins"});
        for (const int registers : {64, 32}) {
            for (const Machine &m : evaluationMachines()) {
                double cyclesIi = 0, cyclesSpill = 0, cyclesBest = 0;
                int subset = 0, spillWins = 0, iiWins = 0;
                for (const SuiteLoop &loop : suite) {
                    const PipelineResult incr = runVariant(
                        loop.graph, m, registers, Variant::IncreaseIi);
                    // Subset: needed a reduction (rounds > 1 means the
                    // first II failed the budget) and converged.
                    if (incr.usedFallback || !incr.success ||
                        incr.rounds <= 1) {
                        continue;
                    }
                    const PipelineResult spill = runVariant(
                        loop.graph, m, registers,
                        Variant::MaxLtTrafMultiLastIi);
                    if (!spill.success)
                        continue;
                    const PipelineResult best = runVariant(
                        loop.graph, m, registers, Variant::BestOfAll);
                    ++subset;
                    const double w = double(loop.iterations);
                    cyclesIi += double(incr.ii()) * w;
                    cyclesSpill += double(spill.ii()) * w;
                    cyclesBest += double(best.ii()) * w;
                    spillWins += spill.ii() < incr.ii();
                    iiWins += incr.ii() < spill.ii();
                }
                table.row()
                    .add(m.name())
                    .add(registers)
                    .add(subset)
                    .add(cyclesIi / 1e9, 4)
                    .add(cyclesSpill / 1e9, 4)
                    .add(cyclesBest / 1e9, 4)
                    .add(spillWins)
                    .add(iiWins);
            }
        }
        std::cout << "\nFigure 9: increase-II vs spill vs best-of-all "
                     "(converging subset only)\n";
        table.print(std::cout);
        recordTable("strategies", table);
    }
}

BENCHMARK(runFig9)->Unit(benchmark::kMillisecond)->Iterations(1);

} // namespace

SWP_BENCH_MAIN("fig9_ii_vs_spill");
