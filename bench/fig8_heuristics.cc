/**
 * @file
 * Figure 8: whole-suite evaluation of the spilling heuristics for the
 * three machine configurations with 64 and 32 registers.
 *
 *  (a) execution cycles of all loops (ideal = infinite registers,
 *      Max(LT), Max(LT/Traf), +multiple lifetimes, +last II tried);
 *  (b) dynamic memory references;
 *  (c) time to construct all schedules (wall clock here, plus the
 *      machine-independent attempt count).
 *
 * Expected shape: Max(LT/Traf) dominates Max(LT) in cycles and clearly
 * in traffic; with 64 registers the degradation vs ideal is marginal;
 * the two accelerators cut scheduling time by roughly an order of
 * magnitude at 32 registers with only slight quality loss.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "common.hh"
#include "support/table.hh"

namespace
{

using namespace swp;
using namespace swp::benchutil;

void
runFig8(benchmark::State &state)
{
    const auto &suite = evaluationSuite();
    const Variant variants[] = {
        Variant::Ideal, Variant::MaxLt, Variant::MaxLtTraf,
        Variant::MaxLtTrafMulti, Variant::MaxLtTrafMultiLastIi};

    for (auto _ : state) {
        Table table({"config", "regs", "variant", "cycles(1e9)",
                     "memrefs(1e9)", "sched-time(s)", "attempts",
                     "spills", "unfit"});
        for (const int registers : {64, 32}) {
            for (const Machine &m : evaluationMachines()) {
                for (const Variant v : variants) {
                    const SuiteTotals t =
                        runSuite(suite, m, registers, v);
                    table.row()
                        .add(m.name())
                        .add(registers)
                        .add(variantName(v))
                        .add(t.cycles / 1e9, 4)
                        .add(t.memRefs / 1e9, 4)
                        .add(t.seconds, 2)
                        .add(t.attempts)
                        .add(t.spills)
                        .add(t.unfit);
                }
            }
        }
        // Sharding flows through runSuite: each cell's totals cover
        // this shard's loops only.
        std::cout << "\nFigure 8: spilling heuristics over the "
                  << suite.size() << "-loop suite" << shardSuffix()
                  << "\n";
        table.print(std::cout);
        recordTable("heuristics", table);
    }
}

BENCHMARK(runFig8)->Unit(benchmark::kMillisecond)->Iterations(1);

} // namespace

SWP_BENCH_MAIN("fig8_heuristics");
