/**
 * @file
 * Extension sweep: unrolling before software pipelining.
 *
 * Unrolling by U executes U original iterations per kernel iteration,
 * so the figure of merit is II/U (cycles per *original* iteration).
 * Unrolling can recover fractional resource bounds but multiplies the
 * body and the register pressure; under a fixed register budget the
 * constrained pipeliner must spill the excess away, and the net effect
 * flips from gain to loss as U grows — which this sweep measures on a
 * suite subset and on the APSI analogues.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>

#include "common.hh"
#include "ir/unroll.hh"
#include "sched/mii.hh"
#include "support/strutil.hh"
#include "support/table.hh"
#include "workload/paper_loops.hh"

namespace
{

using namespace swp;
using namespace swp::benchutil;

void
sweepLoop(const Ddg &g, const Machine &m, int registers, Table &table)
{
    const int factors[] = {1, 2, 3, 4};

    // One suite entry per unroll factor, evaluated as one batch.
    std::vector<SuiteLoop> unrolled;
    for (const int factor : factors)
        unrolled.push_back({unrollLoop(g, factor), 1});

    BatchJob proto;
    proto.strategy = Strategy::Spill;
    proto.options.registers = registers;
    proto.options.multiSelect = true;
    proto.options.reuseLastIi = true;
    // The unroll factors are this sweep's grid: a sharded run
    // evaluates and prints only the factors it owns.
    const auto results = benchEvaluate(
        unrolled, m, protoJobs(unrolled.size(), proto),
        benchRunOptions());

    for (std::size_t i = 0; i < unrolled.size(); ++i) {
        if (!results[i].evaluated)
            continue;
        const int factor = factors[i];
        const JobSummary &r = results[i];
        table.row()
            .add(g.name())
            .add(factor)
            .add(mii(unrolled[i].graph, m))
            .add(r.success ? (r.usedFallback ? "fallback" : "yes")
                           : "NO")
            .add(r.ii)
            .add(double(r.ii) / factor, 2)
            .add(r.regs)
            .add(r.spills);
    }
}

void
runSweep(benchmark::State &state)
{
    const Machine m = benchMachine();
    const auto &full = evaluationSuite();

    for (auto _ : state) {
        Table table({"loop", "unroll", "MII", "fits", "II",
                     "II/original-iter", "regs", "spills"});
        sweepLoop(buildApsi47Analogue(), m, 32, table);
        sweepLoop(buildApsi50Analogue(), m, 32, table);
        std::cout << "\nUnroll sweep on the case-study loops "
                     "(P2L4, 32 registers" << shardSuffix() << ")\n";
        table.print(std::cout);
        recordTable("case_study", table);

        // Aggregate over a suite subset.
        const std::size_t subset = std::min<std::size_t>(200, full.size());
        Table agg({"unroll", "cycles/orig-iter (sum)", "spills",
                   "unfit"});
        for (const int factor : {1, 2, 3}) {
            // Unroll (and evaluate) only the loops this shard owns.
            std::vector<SuiteLoop> unrolled(subset);
            benchutil::suiteRunner().parallelFor(
                subset, [&](std::size_t i) {
                    if (!benchutil::ownsJob(i))
                        return;
                    unrolled[i] = {unrollLoop(full[i].graph, factor),
                                   full[i].iterations};
                });

            BatchJob proto;
            proto.strategy = Strategy::Spill;
            proto.options.registers = 32;
            proto.options.multiSelect = true;
            proto.options.reuseLastIi = true;
            const auto results = benchEvaluate(
                unrolled, m, benchutil::protoJobs(subset, proto),
                benchutil::benchRunOptions());

            double perIter = 0;
            long spills = 0;
            int unfit = 0;
            for (std::size_t i = 0; i < subset; ++i) {
                if (!results[i].evaluated)
                    continue;
                const JobSummary &r = results[i];
                perIter += double(r.ii) / factor;
                spills += r.spills;
                unfit += !r.success;
            }
            agg.row()
                .add(factor)
                .add(perIter, 1)
                .add(spills)
                .add(unfit);
        }
        std::cout << "\nUnroll sweep over " << subset
                  << " suite loops (P2L4, 32 registers"
                  << shardSuffix() << ")\n";
        agg.print(std::cout);
        recordTable("suite_subset", agg);
    }
}

BENCHMARK(runSweep)->Unit(benchmark::kMillisecond)->Iterations(1);

} // namespace

SWP_BENCH_MAIN("sweep_unroll");
