/**
 * @file
 * Shared helpers for the benchmark harnesses that regenerate the
 * paper's tables and figures: strategy variants, whole-suite execution
 * totals, and cycle/traffic accounting.
 *
 * Accounting follows the paper:
 *  - execution cycles of a loop = final II x trip count (the paper's
 *    figures are in units of 1e9 cycles over all 1258 loops);
 *  - dynamic memory references = memory ops per iteration x trip count;
 *  - scheduling time is wall clock, plus the machine-independent count
 *    of (II, schedule) attempts.
 */

#ifndef SWP_BENCH_COMMON_HH
#define SWP_BENCH_COMMON_HH

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "driver/orchestrate.hh"
#include "driver/suite_runner.hh"
#include "machine/machine.hh"
#include "pipeliner/pipeliner.hh"
#include "support/table.hh"
#include "workload/suitegen.hh"

namespace swp::benchutil
{

/**
 * Harness-level options, parsed from argv before google-benchmark sees
 * it. Every harness accepts:
 *
 *   --json <path>    write machine-readable results to <path>
 *   --seed <n>       override the suite generator seed (default pinned
 *                    to kDefaultSuiteSeed for reproducibility)
 *   --loops <n>      generate an <n>-loop suite (default 1258)
 *   --threads <n>    evaluation worker threads (default 1; 0 or "auto"
 *                    = all hardware threads). Results are deterministic:
 *                    output is byte-identical at any thread count.
 *   --memo <0|1>     schedule memoization (default 1). Results are
 *                    byte-identical either way; 0 re-schedules every
 *                    (graph, machine, II) probe, for measuring the
 *                    memo's effect and for CI's determinism diff.
 *   --memo-cap <n>   LRU size cap on the schedule memo and on the
 *                    MII/RecMII bounds memo (default 0 = unbounded),
 *                    so no memo in the process is unbounded. Results
 *                    are byte-identical at any cap; capped runs report
 *                    both memos' eviction stats in the --json output
 *                    (the stats stanza itself is observability: its
 *                    counters depend on worker interleaving at >1
 *                    thread, like the wall-clock columns, and is no
 *                    part of the byte-identity guarantee).
 *   --chunk <auto|fixed>  job ordering/chunking policy (default auto
 *                    = heaviest loops first). Results are
 *                    byte-identical either way.
 *   --shard <i/N>    evaluate only shard i of N of every grid
 *                    (0-based; grid job j belongs to shard j mod N).
 *                    Each shard's tables and totals cover its own
 *                    jobs, so N shard processes split a grid across
 *                    machines; the per-shard JSON says which shard it
 *                    is. (Byte-exact cross-process merging is the
 *                    CLI's --shard/--merge-shards workflow, whose
 *                    shard files carry rendered per-job records.)
 *   --verify         check every evaluated result with the independent
 *                    legality verifier (src/verify); any violation
 *                    aborts the harness with a diagnostic naming the
 *                    violated edge/slot/range. Results and recorded
 *                    numbers are unchanged by the flag.
 *   --certify        generate and independently check an optimality
 *                    certificate (verify/certify: critical-cycle,
 *                    pigeonhole, and register-floor lower bounds) for
 *                    every evaluated result, and cross-check it against
 *                    the achieved II/register count; a rejected
 *                    certificate or a contradiction aborts the harness.
 *                    Results and recorded numbers are unchanged by the
 *                    flag.
 *   --machine <spec> evaluate on one machine instead of the harness's
 *                    defaults: a preset name (p1l4, p2l4, p2l6,
 *                    universal) or the path of a machine-description
 *                    file (machine/machdesc format). Grids that sweep
 *                    the Section 5 configurations collapse to the one
 *                    specified machine.
 *   --orchestrate <n>  run the harness's pipeline-evaluation grids as
 *                    n shard worker processes of this binary (the
 *                    orchestrator in src/driver/orchestrate, with
 *                    timeout/retry/resume), then replay the tables from
 *                    the merged per-job records — the written tables
 *                    match the serial run (wall-clock columns aside).
 *                    Grids that consume full schedules (lifetime
 *                    analyses, kernel validation, micro-timing) still
 *                    evaluate in-process.
 *   --orch-dir/--orch-timeout/--orch-retries/--orch-backoff/
 *   --no-resume/--inject-fail   as in swpipe_cli --orchestrate.
 *   --orch-record <path>  (worker-internal; appended by the
 *                    orchestrator) record every evaluated job into a
 *                    swp-shard-v1 file at <path> instead of expecting
 *                    to be a standalone run.
 */
struct BenchOptions
{
    SuiteParams suite;
    std::string jsonPath;
    int threads = 1;
    bool memo = true;
    int memoCap = 0;
    ChunkPolicy chunk = ChunkPolicy::Auto;
    ShardSpec shard;
    bool verify = false;
    bool certify = false;
    /** --machine spec (preset name or description file); empty = the
        harness's default machine(s). */
    std::string machineSpec;

    /** google-benchmark's own JSON reporter writes jsonPath itself
        (adaptive micro-benchmarks) instead of the table recorder. */
    bool nativeJson = false;

    /** --orchestrate n: run the grids as n shard worker processes. */
    int orchestrate = 0;
    std::string orchDir;
    int orchTimeout = 600;
    int orchRetries = 2;
    int orchBackoffMs = 100;
    bool orchResume = true;
    std::vector<FaultInjection> inject;

    /** --orch-record: write evaluated jobs to this shard file (worker
        mode; appended to workers by the orchestrator). */
    std::string orchRecordPath;

    /** Harness name (set by initBenchArgs; labels shard files). */
    std::string benchName;
};

/** The process-wide options (mutated once by initBenchArgs). */
BenchOptions &benchOptions();

/**
 * Strip the swp flags from argv. Call before benchmark::Initialize;
 * with nativeJson, --json is forwarded as google-benchmark's
 * --benchmark_out so the adaptive timing results land in the file.
 * Under --orchestrate this is also where the worker fleet runs: the
 * call returns with the merged per-job record store loaded, and every
 * subsequent benchEvaluate() replays from it instead of evaluating.
 */
void initBenchArgs(int *argc, char ***argv, const std::string &benchName,
                   bool nativeJson = false);

/**
 * Scalar outcome of one grid job — everything the converted bench
 * tables are computed from, reproducible from a shard fleet's records.
 */
struct JobSummary
{
    /** False for jobs outside this process's shard (slot untouched). */
    bool evaluated = false;
    bool success = false;
    bool usedFallback = false;
    int ii = 0;       ///< Achieved initiation interval.
    int regs = 0;     ///< Registers required by the allocation.
    int spills = 0;   ///< Spilled lifetimes.
    int rounds = 0;   ///< Spill rounds taken.
    int attempts = 0; ///< Scheduling attempts.
    int memOps = 0;   ///< Memory operations per iteration.
};

/**
 * Evaluate a job grid and summarize each owned job. Normally runs the
 * grid on suiteRunner(); under --orch-record it additionally records
 * every evaluated job keyed by (machine, graph, options); under
 * --orchestrate it replays the summaries from the merged fleet records
 * without evaluating (a missing key is fatal — the fleet and this
 * process must run the same grids). Jobs are pure functions of their
 * key, so replayed summaries equal evaluated ones exactly.
 */
std::vector<JobSummary> benchEvaluate(const std::vector<SuiteLoop> &suite,
                                      const Machine &m,
                                      const std::vector<BatchJob> &jobs,
                                      const RunOptions &opts);

/** Write the --orch-record shard file (no-op outside worker mode). */
void writeOrchRecord();

/** Queue a finished table for --json emission. */
void recordTable(const std::string &name, const Table &table);

/** Queue a scalar result for --json emission. */
void recordMetric(const std::string &name, double value);

/** Write everything recorded to --json <path> (no-op without --json). */
void writeBenchJson(const std::string &benchName);

/** The evaluation variants of Figure 8 plus the Section 3/5 baselines. */
enum class Variant
{
    Ideal,                 ///< Unlimited registers.
    MaxLt,                 ///< Spill, Max(LT), one lifetime per round.
    MaxLtTraf,             ///< Spill, Max(LT/Traf), one per round.
    MaxLtTrafMulti,        ///< + multiple lifetimes per round.
    MaxLtTrafMultiLastIi,  ///< + II search starts at the last II tried.
    IncreaseIi,            ///< Section 3 strategy.
    BestOfAll,             ///< Section 5 combination.
};

const char *variantName(Variant v);

/** Run one variant on one loop. */
PipelineResult runVariant(const Ddg &g, const Machine &m, int registers,
                          Variant v);

/** The grid job evaluating one variant on one suite loop. */
BatchJob variantJob(int loopIndex, Variant v, int registers);

/** n copies of a prototype job, targeting loops 0..n-1 in order. */
std::vector<BatchJob> protoJobs(std::size_t n, const BatchJob &proto);

/**
 * The process-wide batch runner, built from --threads/--memo/--memo-cap
 * on first use. All harness grids funnel through it so the whole
 * experiment shares one evaluation path (and one MII/RecMII memo).
 */
SuiteRunner &suiteRunner();

/** The process-wide shard spec (inactive by default). */
const ShardSpec &benchShard();

/**
 * Whether grid index i belongs to this process's shard. Every harness
 * guards its result accumulation with this so a sharded run reports
 * exactly the jobs it evaluated.
 */
bool ownsJob(std::size_t i);

/** Run options carrying the process-wide shard spec + chunk policy. */
RunOptions benchRunOptions();

/**
 * Chunk policy only — for grids whose jobs were already filtered to
 * this shard (e.g. a stage-2 subset built from stage-1's owned
 * results); sharding such a grid again would drop jobs.
 */
RunOptions benchChunkOptions();

/** " [shard i/N]" when sharded, "" otherwise — for report headlines. */
std::string shardSuffix();

/** Whole-suite totals for one (machine, registers, variant) cell. */
struct SuiteTotals
{
    double cycles = 0;    ///< Sum of II x iterations.
    double memRefs = 0;   ///< Sum of memory ops x iterations.
    long attempts = 0;    ///< (II, schedule) attempts.
    double seconds = 0;   ///< Wall-clock scheduling time.
    int unfit = 0;        ///< Loops left over budget.
    int fallbacks = 0;    ///< Loops that fell back to local scheduling.
    int spills = 0;       ///< Total lifetimes spilled.
};

SuiteTotals runSuite(const std::vector<SuiteLoop> &suite, const Machine &m,
                     int registers, Variant v);

/** The --machine override when given, else the three Section 5
    machine configurations. */
std::vector<Machine> evaluationMachines();

/** The --machine override when given, else `fallback` — for harnesses
    that evaluate a single fixed machine. */
Machine benchMachine(const Machine &fallback = Machine::p2l4());

/** The evaluation suite (cached across calls within one process). */
const std::vector<SuiteLoop> &evaluationSuite();

} // namespace swp::benchutil

/**
 * Harness entry point: BENCHMARK_MAIN plus the swp flag layer and the
 * --json emission. benchName labels the output document.
 */
#define SWP_BENCH_MAIN_IMPL(benchName, nativeJson)                      \
    int main(int argc, char **argv)                                     \
    {                                                                   \
        swp::benchutil::initBenchArgs(&argc, &argv, benchName,          \
                                      nativeJson);                      \
        ::benchmark::Initialize(&argc, argv);                           \
        if (::benchmark::ReportUnrecognizedArguments(argc, argv))       \
            return 1;                                                   \
        ::benchmark::RunSpecifiedBenchmarks();                          \
        ::benchmark::Shutdown();                                        \
        swp::benchutil::writeBenchJson(benchName);                      \
        swp::benchutil::writeOrchRecord();                              \
        return 0;                                                       \
    }

#define SWP_BENCH_MAIN(benchName) SWP_BENCH_MAIN_IMPL(benchName, false)

/** For harnesses whose results come from google-benchmark's adaptive
    timing rather than recorded tables. */
#define SWP_BENCH_MAIN_NATIVE_JSON(benchName)                           \
    SWP_BENCH_MAIN_IMPL(benchName, true)

#endif // SWP_BENCH_COMMON_HH
