/**
 * @file
 * Shared helpers for the benchmark harnesses that regenerate the
 * paper's tables and figures: strategy variants, whole-suite execution
 * totals, and cycle/traffic accounting.
 *
 * Accounting follows the paper:
 *  - execution cycles of a loop = final II x trip count (the paper's
 *    figures are in units of 1e9 cycles over all 1258 loops);
 *  - dynamic memory references = memory ops per iteration x trip count;
 *  - scheduling time is wall clock, plus the machine-independent count
 *    of (II, schedule) attempts.
 */

#ifndef SWP_BENCH_COMMON_HH
#define SWP_BENCH_COMMON_HH

#include <string>
#include <vector>

#include "machine/machine.hh"
#include "pipeliner/pipeliner.hh"
#include "workload/suitegen.hh"

namespace swp::benchutil
{

/** The evaluation variants of Figure 8 plus the Section 3/5 baselines. */
enum class Variant
{
    Ideal,                 ///< Unlimited registers.
    MaxLt,                 ///< Spill, Max(LT), one lifetime per round.
    MaxLtTraf,             ///< Spill, Max(LT/Traf), one per round.
    MaxLtTrafMulti,        ///< + multiple lifetimes per round.
    MaxLtTrafMultiLastIi,  ///< + II search starts at the last II tried.
    IncreaseIi,            ///< Section 3 strategy.
    BestOfAll,             ///< Section 5 combination.
};

const char *variantName(Variant v);

/** Run one variant on one loop. */
PipelineResult runVariant(const Ddg &g, const Machine &m, int registers,
                          Variant v);

/** Whole-suite totals for one (machine, registers, variant) cell. */
struct SuiteTotals
{
    double cycles = 0;    ///< Sum of II x iterations.
    double memRefs = 0;   ///< Sum of memory ops x iterations.
    long attempts = 0;    ///< (II, schedule) attempts.
    double seconds = 0;   ///< Wall-clock scheduling time.
    int unfit = 0;        ///< Loops left over budget.
    int fallbacks = 0;    ///< Loops that fell back to local scheduling.
    int spills = 0;       ///< Total lifetimes spilled.
};

SuiteTotals runSuite(const std::vector<SuiteLoop> &suite, const Machine &m,
                     int registers, Variant v);

/** The three Section 5 machine configurations. */
std::vector<Machine> evaluationMachines();

/** The evaluation suite (cached across calls within one process). */
const std::vector<SuiteLoop> &evaluationSuite();

} // namespace swp::benchutil

#endif // SWP_BENCH_COMMON_HH
