/**
 * @file
 * Statistical micro-benchmarks of the library's hot components,
 * parameterized by loop size: MII computation, HRMS and IMS scheduling
 * at MII, rotating register allocation, one full constrained-pipeline
 * run, and the cycle-accurate simulator. These time individual layers
 * (google-benchmark's adaptive iteration applies), complementing the
 * figure-level harnesses that report one-shot experiment output.
 */

#include <benchmark/benchmark.h>

#include "common.hh"
#include "liferange/lifetimes.hh"
#include "pipeliner/pipeliner.hh"
#include "regalloc/rotalloc.hh"
#include "sched/hrms.hh"
#include "sched/ims.hh"
#include "sched/mii.hh"
#include "sim/vliw.hh"
#include "support/singleflight.hh"
#include "workload/suitegen.hh"

#include <cstdint>

namespace
{

using namespace swp;

/** A deterministic loop of roughly the requested size. */
const SuiteLoop &
loopOfSize(int target)
{
    const std::vector<SuiteLoop> &suite = benchutil::evaluationSuite();
    static std::map<int, const SuiteLoop *> cache;
    const auto it = cache.find(target);
    if (it != cache.end())
        return *it->second;
    const SuiteLoop *best = &suite[0];
    for (const SuiteLoop &loop : suite) {
        if (std::abs(loop.graph.numNodes() - target) <
            std::abs(best->graph.numNodes() - target)) {
            best = &loop;
        }
    }
    cache[target] = best;
    return *best;
}

void
BM_Mii(benchmark::State &state)
{
    const SuiteLoop &loop = loopOfSize(int(state.range(0)));
    const Machine m = benchutil::benchMachine();
    for (auto _ : state)
        benchmark::DoNotOptimize(mii(loop.graph, m));
    state.SetLabel(loop.graph.name() + "/" +
                   std::to_string(loop.graph.numNodes()) + " nodes");
}
BENCHMARK(BM_Mii)->Arg(8)->Arg(24)->Arg(48)->Arg(80);

void
BM_HrmsAtMii(benchmark::State &state)
{
    const SuiteLoop &loop = loopOfSize(int(state.range(0)));
    const Machine m = benchutil::benchMachine();
    const int lower = mii(loop.graph, m);
    HrmsScheduler hrms;
    for (auto _ : state)
        benchmark::DoNotOptimize(hrms.scheduleAt(loop.graph, m, lower));
}
BENCHMARK(BM_HrmsAtMii)->Arg(8)->Arg(24)->Arg(48)->Arg(80);

void
BM_ImsAtMii(benchmark::State &state)
{
    const SuiteLoop &loop = loopOfSize(int(state.range(0)));
    const Machine m = benchutil::benchMachine();
    const int lower = mii(loop.graph, m);
    ImsScheduler ims;
    for (auto _ : state)
        benchmark::DoNotOptimize(ims.scheduleAt(loop.graph, m, lower));
}
BENCHMARK(BM_ImsAtMii)->Arg(8)->Arg(24)->Arg(48)->Arg(80);

void
BM_HrmsIiSweep(benchmark::State &state)
{
    // Eight consecutive scheduleAt probes of one loop against one
    // scheduler object — the shape of a spill driver's II search. This
    // is the scheduleAt-dominated workload the reusable workspace and
    // the recurrence-decomposition cache target: every probe after the
    // first reuses the scratch buffers and the cached cyclic SCCs.
    const SuiteLoop &loop = loopOfSize(int(state.range(0)));
    const Machine m = benchutil::benchMachine();
    const int lower = mii(loop.graph, m);
    HrmsScheduler hrms;
    for (auto _ : state) {
        for (int ii = lower; ii < lower + 8; ++ii)
            benchmark::DoNotOptimize(hrms.scheduleAt(loop.graph, m, ii));
    }
    state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_HrmsIiSweep)->Arg(8)->Arg(24)->Arg(48)->Arg(80);

void
BM_ImsIiSweep(benchmark::State &state)
{
    const SuiteLoop &loop = loopOfSize(int(state.range(0)));
    const Machine m = benchutil::benchMachine();
    const int lower = mii(loop.graph, m);
    ImsScheduler ims;
    for (auto _ : state) {
        for (int ii = lower; ii < lower + 8; ++ii)
            benchmark::DoNotOptimize(ims.scheduleAt(loop.graph, m, ii));
    }
    state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_ImsIiSweep)->Arg(8)->Arg(24)->Arg(48)->Arg(80);

void
BM_RotatingAllocation(benchmark::State &state)
{
    const SuiteLoop &loop = loopOfSize(int(state.range(0)));
    const Machine m = benchutil::benchMachine();
    const PipelineResult r = pipelineIdeal(loop.graph, m);
    const LifetimeInfo info = analyzeLifetimes(loop.graph, r.sched);
    for (auto _ : state)
        benchmark::DoNotOptimize(minRotatingRegs(info));
}
BENCHMARK(BM_RotatingAllocation)->Arg(8)->Arg(24)->Arg(48)->Arg(80);

void
BM_ConstrainedPipeline(benchmark::State &state)
{
    const SuiteLoop &loop = loopOfSize(int(state.range(0)));
    const Machine m = benchutil::benchMachine();
    PipelinerOptions opts;
    opts.registers = 32;
    opts.multiSelect = true;
    opts.reuseLastIi = true;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            pipelineLoop(loop.graph, m, Strategy::Spill, opts));
    }
}
BENCHMARK(BM_ConstrainedPipeline)->Arg(8)->Arg(24)->Arg(48)->Arg(80);

void
BM_SuiteRunnerBatch(benchmark::State &state)
{
    // Whole-suite constrained pipelining through the shared batch
    // driver; honours --threads, so this benchmark doubles as the
    // wall-clock measurement of the worker-pool speedup.
    const std::vector<SuiteLoop> &suite = benchutil::evaluationSuite();
    const Machine m = benchutil::benchMachine();
    SuiteRunner &runner = benchutil::suiteRunner();
    std::vector<BatchJob> jobs;
    for (std::size_t i = 0; i < suite.size(); ++i) {
        jobs.push_back(benchutil::variantJob(
            int(i), benchutil::Variant::MaxLtTrafMultiLastIi, 32));
    }
    // Honours --shard/--chunk too, so a sharded process times exactly
    // the slice of the grid it would evaluate in a cluster run.
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            runner.run(suite, m, jobs, benchutil::benchRunOptions()));
    }
    std::size_t owned = 0;
    for (std::size_t i = 0; i < jobs.size(); ++i)
        owned += benchutil::ownsJob(i);
    state.SetItemsProcessed(state.iterations() * long(owned));
    state.SetLabel(std::to_string(runner.threads()) + " thread(s)" +
                   benchutil::shardSuffix());
}
BENCHMARK(BM_SuiteRunnerBatch)->Unit(benchmark::kMillisecond)->Iterations(1);

void
BM_Simulator(benchmark::State &state)
{
    const SuiteLoop &loop = loopOfSize(24);
    const Machine m = benchutil::benchMachine();
    const PipelineResult r = pipelineIdeal(loop.graph, m);
    SimConfig cfg;
    cfg.iterations = state.range(0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(simulatePipelined(
            r.graph(), m, r.sched, r.alloc.rotAlloc, cfg));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Simulator)->Arg(16)->Arg(64)->Arg(256);

// ---- Memo contention: flat vs striped single-flight hit path -------
//
// Every thread hammers the same already-computed key, the worst
// contention case a memo-hot grid produces. The flat cache serializes
// hits on one mutex (plus an LRU splice); the striped cache's uncapped
// stripes serve hits under a shared lock, so threads proceed in
// parallel. The two single-thread rows should be comparable; at 8
// threads the striped cache should sustain at least ~2x the flat
// one's item rate — compare the items_per_second of the
// /threads:8 rows of this pair to see the stripe win in isolation
// from scheduling work (bench/scaling measures the end-to-end effect).

constexpr std::uint64_t kHotKey = 42;

std::uint64_t
hotCompute()
{
    return kHotKey * kHotKey;
}

void
BM_MemoContentionUnstriped(benchmark::State &state)
{
    static SingleFlightCache<std::uint64_t, std::uint64_t> cache;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        sink += cache.getOrCompute(kHotKey, hotCompute,
                                   [](const std::uint64_t &) {});
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemoContentionUnstriped)
    ->Threads(1)
    ->Threads(8)
    ->UseRealTime();

void
BM_MemoContentionStriped(benchmark::State &state)
{
    static StripedSingleFlightCache<std::uint64_t, std::uint64_t> cache(
        /*capacity=*/0, /*threadsHint=*/8);
    std::uint64_t sink = 0;
    for (auto _ : state) {
        sink += cache.getOrCompute(kHotKey, hotCompute,
                                   [](const std::uint64_t &) {});
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemoContentionStriped)
    ->Threads(1)
    ->Threads(8)
    ->UseRealTime();

} // namespace

SWP_BENCH_MAIN_NATIVE_JSON("micro_components");
