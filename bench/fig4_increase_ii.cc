/**
 * @file
 * Figure 4: register requirements as the initiation interval grows, for
 * a loop that converges (APSI 47 analogue) and one that never does
 * (APSI 50 analogue), on configuration P2L4.
 *
 * Expected shape: the converging loop's requirement decays roughly as
 * 1/II (scheduling components spread over more cycles) and crosses 32
 * and then 16 registers; the non-converging loop flattens onto a
 * plateau above 32 set by its distance components plus invariants.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "common.hh"
#include "pipeliner/increase_ii.hh"
#include "sched/mii.hh"
#include "support/table.hh"
#include "workload/paper_loops.hh"

namespace
{

using namespace swp;

void
sweep(const Ddg &g, const Machine &m, int max_extra, Table &table)
{
    PipelinerOptions opts;
    const int lower = benchutil::suiteRunner().bounds(g, m).mii;

    // Every II point is independent; sweep them across the pool and
    // emit the rows serially so the table is thread-count invariant.
    // The II points are this figure's grid, so a sharded run sweeps
    // only the points it owns (unowned ones keep the "no schedule"
    // sentinel and are skipped below).
    std::vector<int> regsAt(std::size_t(max_extra) + 1, -1);
    benchutil::suiteRunner().parallelFor(
        regsAt.size(), [&](std::size_t k) {
            if (!benchutil::ownsJob(k))
                return;
            regsAt[k] = registersAtIi(g, m, lower + int(k), opts);
        });

    int reached32 = -1, reached16 = -1, plateau = -1;
    for (int ii = lower; ii <= lower + max_extra; ++ii) {
        const int regs = regsAt[std::size_t(ii - lower)];
        if (regs < 0)
            continue;
        table.row().add(g.name()).add(ii).add(regs);
        if (reached32 < 0 && regs <= 32)
            reached32 = ii;
        if (reached16 < 0 && regs <= 16)
            reached16 = ii;
        plateau = regs;
    }
    std::cout << g.name() << ": MII=" << lower << ", reaches 32 regs at "
              << (reached32 < 0 ? std::string("(never)")
                                : "II=" + std::to_string(reached32))
              << ", 16 regs at "
              << (reached16 < 0 ? std::string("(never)")
                                : "II=" + std::to_string(reached16))
              << ", final level " << plateau << " regs\n";
}

void
runFig4(benchmark::State &state)
{
    const Machine m = benchutil::benchMachine();
    for (auto _ : state) {
        std::cout << "\nFigure 4: register requirement vs II (P2L4"
                  << benchutil::shardSuffix() << ")\n";
        Table table({"loop", "II", "registers"});
        sweep(buildApsi47Analogue(), m, 60, table);
        sweep(buildApsi50Analogue(), m, 60, table);
        table.print(std::cout);
        benchutil::recordTable("registers_vs_ii", table);
    }
}

BENCHMARK(runFig4)->Unit(benchmark::kMillisecond)->Iterations(1);

} // namespace

SWP_BENCH_MAIN("fig4_increase_ii");
