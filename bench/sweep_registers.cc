/**
 * @file
 * Extension sweep: whole-suite performance as a function of register
 * file size (8..128), for the best heuristic combination and for
 * increase-II. A natural extrapolation of Figure 8's two budgets: it
 * locates the knee where spilling stops costing anything and shows
 * increase-II's divergence tax growing as the file shrinks.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "common.hh"
#include "support/strutil.hh"
#include "support/table.hh"

namespace
{

using namespace swp;
using namespace swp::benchutil;

void
runSweep(benchmark::State &state)
{
    const auto &suite = evaluationSuite();
    const Machine m = benchMachine();

    for (auto _ : state) {
        const SuiteTotals ideal =
            runSuite(suite, m, 1 << 20, Variant::Ideal);

        Table table({"regs", "spill cycles(1e9)", "vs ideal",
                     "memrefs(1e9)", "spills", "incII cycles(1e9)",
                     "incII diverged"});
        for (const int registers : {128, 96, 64, 48, 32, 24, 16, 8}) {
            const SuiteTotals spill = runSuite(
                suite, m, registers, Variant::MaxLtTrafMultiLastIi);
            const SuiteTotals incr =
                runSuite(suite, m, registers, Variant::IncreaseIi);
            table.row()
                .add(registers)
                .add(spill.cycles / 1e9, 4)
                // ideal.cycles is 0 when this shard owns no loops;
                // report +0.0% rather than a 0/0 NaN cell.
                .add(strprintf(
                    "%+.1f%%",
                    ideal.cycles > 0
                        ? 100.0 * (spill.cycles - ideal.cycles) /
                              ideal.cycles
                        : 0.0))
                .add(spill.memRefs / 1e9, 4)
                .add(spill.spills)
                .add(incr.cycles / 1e9, 4)
                .add(incr.fallbacks);
        }
        // Sharding flows through runSuite: every row covers this
        // shard's loops only (including the ideal normalization).
        std::cout << "\nRegister-file sweep (P2L4, ideal = "
                  << ideal.cycles / 1e9 << "e9 cycles"
                  << shardSuffix() << ")\n";
        table.print(std::cout);
        recordTable("register_sweep", table);
        recordMetric("ideal_cycles", ideal.cycles);
    }
}

BENCHMARK(runSweep)->Unit(benchmark::kMillisecond)->Iterations(1);

} // namespace

SWP_BENCH_MAIN("sweep_registers");
