/**
 * @file
 * Ablation: complex-operation fusion (Section 4.3).
 *
 * The paper argues that without forcing spill loads/stores to be
 * scheduled as one "complex operation" with their consumers/producers,
 * a register-insensitive scheduler can place the reload far from its
 * use, re-growing the lifetime that was just spilled — so the iterative
 * process may fail to converge. This bench runs the spilling driver
 * with fusion on and off, under both HRMS (register sensitive) and IMS
 * (register insensitive), and reports convergence and quality.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>

#include "common.hh"
#include "support/strutil.hh"
#include "support/table.hh"

namespace
{

using namespace swp;
using namespace swp::benchutil;

struct Cell
{
    int converged = 0;
    double cycles = 0;
    long rounds = 0;
    long spills = 0;
};

Cell
run(const std::vector<SuiteLoop> &suite, const Machine &m,
    SchedulerKind kind, bool fuse, int registers)
{
    BatchJob proto;
    proto.strategy = Strategy::Spill;
    proto.options.registers = registers;
    proto.options.scheduler = kind;
    proto.options.multiSelect = true;
    proto.options.reuseLastIi = true;
    proto.options.fuseSpillOps = fuse;
    proto.options.maxSpillRounds = 48;  // Bound the divergent cases.

    const auto results = benchEvaluate(
        suite, m, protoJobs(suite.size(), proto), benchRunOptions());

    // Sharded runs tally only their own loops' cells.
    Cell cell;
    for (std::size_t i = 0; i < suite.size(); ++i) {
        if (!results[i].evaluated)
            continue;
        const JobSummary &r = results[i];
        cell.converged += r.success && !r.usedFallback;
        cell.cycles += double(r.ii) * double(suite[i].iterations);
        cell.rounds += r.rounds;
        cell.spills += r.spills;
    }
    return cell;
}

void
runAblation(benchmark::State &state)
{
    // A subset keeps the no-fusion (pathological) cells affordable.
    const auto &full = evaluationSuite();
    const std::vector<SuiteLoop> suite(
        full.begin(),
        full.begin() + std::min<std::ptrdiff_t>(400, full.size()));
    const Machine m = benchMachine();

    for (auto _ : state) {
        Table table({"scheduler", "fusion", "converged", "cycles(1e9)",
                     "rounds", "spills"});
        for (const SchedulerKind kind :
             {SchedulerKind::Hrms, SchedulerKind::Ims}) {
            for (const bool fuse : {true, false}) {
                const Cell cell = run(suite, m, kind, fuse, 32);
                table.row()
                    .add(schedulerKindName(kind))
                    .add(fuse ? "on" : "off")
                    .add(strprintf("%d/%zu", cell.converged,
                                   suite.size()))
                    .add(cell.cycles / 1e9, 4)
                    .add(cell.rounds)
                    .add(cell.spills);
            }
        }
        std::cout << "\nAblation: complex-operation fusion "
                     "(P2L4, 32 registers, " << suite.size()
                  << "-loop subset" << shardSuffix() << ")\n";
        table.print(std::cout);
        std::cout << "expected: without fusion, convergence drops and "
                     "rounds/spills inflate, especially under the "
                     "register-insensitive scheduler (IMS).\n";
        recordTable("fusion", table);
    }
}

BENCHMARK(runAblation)->Unit(benchmark::kMillisecond)->Iterations(1);

} // namespace

SWP_BENCH_MAIN("ablation_fusion");
