/**
 * @file
 * Ablation: register sensitivity of the core scheduler.
 *
 * The paper uses HRMS precisely because it is register sensitive. This
 * bench quantifies that choice: over the unconstrained suite, compare
 * HRMS and IMS on achieved II and on MaxLive, show how much of the gap
 * the stage-scheduling post-pass ([13]) recovers for IMS, and compare
 * the end-to-end register-constrained results under both schedulers.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "common.hh"
#include "liferange/stagesched.hh"
#include "sched/ii_search.hh"
#include "sched/mii.hh"
#include "support/table.hh"

namespace
{

using namespace swp;
using namespace swp::benchutil;

void
runAblation(benchmark::State &state)
{
    const auto &suite = evaluationSuite();
    const Machine m = benchMachine();

    for (auto _ : state) {
        SuiteRunner &runner = suiteRunner();

        // Per-loop raw scheduler comparison, evaluated across the pool
        // into per-index slots and reduced serially below.
        struct Record
        {
            bool counted = false;
            int iiHrms = 0, iiIms = 0;
            bool hrmsAtMii = false, imsAtMii = false;
            int mlHrms = 0, mlIms = 0, mlImsStaged = 0;
        };
        // Sharded runs schedule (and tally) only the loops they own;
        // unowned records keep counted == false.
        std::vector<Record> records(suite.size());
        runner.parallelFor(suite.size(), [&](std::size_t i) {
            if (!ownsJob(i))
                return;
            const SuiteLoop &loop = suite[i];
            const int lower = runner.bounds(loop.graph, m).mii;
            auto hrms = makeScheduler(SchedulerKind::Hrms);
            auto ims = makeScheduler(SchedulerKind::Ims);
            const IiSearchResult rh =
                searchIi(*hrms, loop.graph, m, lower);
            const IiSearchResult ri =
                searchIi(*ims, loop.graph, m, lower);
            if (!rh.sched || !ri.sched)
                return;
            Record &rec = records[i];
            rec.counted = true;
            rec.iiHrms = rh.sched->ii();
            rec.iiIms = ri.sched->ii();
            rec.hrmsAtMii = rh.sched->ii() == lower;
            rec.imsAtMii = ri.sched->ii() == lower;
            rec.mlHrms = analyzeLifetimes(loop.graph, *rh.sched).maxLive;
            rec.mlIms = analyzeLifetimes(loop.graph, *ri.sched).maxLive;
            rec.mlImsStaged =
                stageSchedule(loop.graph, m, *ri.sched).maxLiveAfter;
        });

        long iiHrms = 0, iiIms = 0, atMiiHrms = 0, atMiiIms = 0;
        long mlHrms = 0, mlIms = 0, mlImsStaged = 0;
        int counted = 0;
        for (const Record &rec : records) {
            if (!rec.counted)
                continue;
            ++counted;
            iiHrms += rec.iiHrms;
            iiIms += rec.iiIms;
            atMiiHrms += rec.hrmsAtMii;
            atMiiIms += rec.imsAtMii;
            mlHrms += rec.mlHrms;
            mlIms += rec.mlIms;
            mlImsStaged += rec.mlImsStaged;
        }

        Table table({"metric", "HRMS", "IMS", "IMS+stage-sched"});
        table.row()
            .add("loops scheduled at MII")
            .add(atMiiHrms)
            .add(atMiiIms)
            .add("-");
        table.row()
            .add("total II")
            .add(iiHrms)
            .add(iiIms)
            .add("-");
        table.row()
            .add("total MaxLive")
            .add(mlHrms)
            .add(mlIms)
            .add(mlImsStaged);

        std::cout << "\nAblation: scheduler register sensitivity ("
                  << counted << " loops, P2L4, unconstrained"
                  << shardSuffix() << ")\n";
        table.print(std::cout);
        recordTable("register_sensitivity", table);

        // End-to-end: constrained pipelining under each scheduler.
        Table end({"scheduler", "regs", "cycles(1e9)", "spills",
                   "unfit"});
        for (const SchedulerKind kind :
             {SchedulerKind::Hrms, SchedulerKind::Ims}) {
            for (const int registers : {64, 32}) {
                BatchJob proto;
                proto.strategy = Strategy::Spill;
                proto.options.registers = registers;
                proto.options.scheduler = kind;
                proto.options.multiSelect = true;
                proto.options.reuseLastIi = true;
                const auto results = benchEvaluate(
                    suite, m, protoJobs(suite.size(), proto),
                    benchRunOptions());

                double cycles = 0;
                long spills = 0;
                int unfit = 0;
                for (std::size_t i = 0; i < suite.size(); ++i) {
                    if (!results[i].evaluated)
                        continue;
                    const JobSummary &r = results[i];
                    cycles += double(r.ii) * double(suite[i].iterations);
                    spills += r.spills;
                    unfit += !r.success;
                }
                end.row()
                    .add(schedulerKindName(kind))
                    .add(registers)
                    .add(cycles / 1e9, 4)
                    .add(spills)
                    .add(unfit);
            }
        }
        std::cout << "\nEnd-to-end register-constrained spilling per "
                     "scheduler:\n";
        end.print(std::cout);
        std::cout << "expected: IMS needs more spills (its lifetimes "
                     "are longer), confirming why the paper builds on "
                     "a register-sensitive scheduler.\n";
        recordTable("end_to_end", end);
    }
}

BENCHMARK(runAblation)->Unit(benchmark::kMillisecond)->Iterations(1);

} // namespace

SWP_BENCH_MAIN("ablation_scheduler");
