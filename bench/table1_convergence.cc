/**
 * @file
 * Table 1: loops that never converge to a given number of registers
 * under the increase-II strategy, and the percentage of execution
 * cycles they represent.
 *
 * The paper reports (for 1258 Perfect Club loops) that only a handful
 * of loops never converge, but that they account for roughly 20% of all
 * cycles at 64 registers and 30% at 32 registers, and that the failing
 * set is essentially configuration-independent (topology decides).
 */

#include <benchmark/benchmark.h>

#include <iostream>
#include <set>

#include "common.hh"
#include "support/table.hh"

namespace
{

using namespace swp;
using namespace swp::benchutil;

void
runTable1(benchmark::State &state)
{
    const auto &suite = evaluationSuite();

    for (auto _ : state) {
        Table table({"config", "registers", "never-converge",
                     "% of loops", "% of cycles"});
        std::set<int> failing32, failing64;

        for (const Machine &m : evaluationMachines()) {
            // Cycle weights under infinite registers (the paper's
            // normalization for the % column).
            std::vector<BatchJob> idealJobs;
            for (std::size_t i = 0; i < suite.size(); ++i)
                idealJobs.push_back(
                    variantJob(int(i), Variant::Ideal, 0));
            const auto ideal =
                benchEvaluate(suite, m, idealJobs, benchRunOptions());

            // Sharded runs normalize by their own jobs' cycles: the %
            // columns are per-shard views of per-shard counts.
            std::vector<double> idealCycles(suite.size(), 0.0);
            double totalCycles = 0;
            std::size_t ownedLoops = 0;
            for (std::size_t i = 0; i < suite.size(); ++i) {
                if (!ideal[i].evaluated)
                    continue;
                const double c = double(ideal[i].ii) *
                                 double(suite[i].iterations);
                idealCycles[i] = c;
                totalCycles += c;
                ++ownedLoops;
            }

            for (const int registers : {64, 32}) {
                std::vector<BatchJob> jobs;
                for (std::size_t i = 0; i < suite.size(); ++i)
                    jobs.push_back(variantJob(
                        int(i), Variant::IncreaseIi, registers));
                const auto results =
                    benchEvaluate(suite, m, jobs, benchRunOptions());

                int diverged = 0;
                double divergedCycles = 0;
                for (std::size_t i = 0; i < suite.size(); ++i) {
                    if (!results[i].evaluated)
                        continue;
                    if (results[i].usedFallback) {
                        ++diverged;
                        divergedCycles += idealCycles[i];
                        (registers == 32 ? failing32 : failing64)
                            .insert(int(i));
                    }
                }
                // A shard can own zero loops (more shards than
                // loops); report 0% rather than 0/0 = NaN cells.
                table.row()
                    .add(m.name())
                    .add(registers)
                    .add(diverged)
                    .add(ownedLoops
                             ? 100.0 * diverged / double(ownedLoops)
                             : 0.0,
                         2)
                    .add(totalCycles > 0
                             ? 100.0 * divergedCycles / totalCycles
                             : 0.0,
                         1);
            }
        }

        std::cout << "\nTable 1: loops that never converge under "
                     "increase-II (" << suite.size() << " loops"
                  << shardSuffix() << ")\n";
        table.print(std::cout);
        std::cout << "distinct failing loops @32 across configs: "
                  << failing32.size() << ", @64: " << failing64.size()
                  << " (paper: the same loops fail regardless of "
                     "configuration)\n";
        recordTable("convergence", table);
        recordMetric("distinct_failing_loops_32",
                     double(failing32.size()));
        recordMetric("distinct_failing_loops_64",
                     double(failing64.size()));
    }
}

BENCHMARK(runTable1)->Unit(benchmark::kMillisecond)->Iterations(1);

} // namespace

SWP_BENCH_MAIN("table1_convergence");
