/**
 * @file
 * Machine-family sweep: run the evaluation suite across a family of
 * machine descriptions — the paper's Section 5 presets plus the
 * examples/machines/ description files — and differentially execute
 * every produced kernel on the cycle-accurate VLIW simulator against
 * the sequential dataflow interpretation of the source loop.
 *
 * Two benchmark groups:
 *  - BM_MachineSweepSchedule/<i>: adaptive timing of constrained
 *    pipelining on family member i (bench_diff watches these);
 *  - BM_MachineFamilyValidation: one pass of the whole suite on every
 *    family member through the shared batch runner (so --verify /
 *    --certify apply), with a vliw-vs-dataflow differential execution
 *    of every allocated kernel. Any divergence aborts the harness.
 *
 * --machine <spec> collapses the family to the one given machine.
 */

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "common.hh"
#include "machine/machdesc.hh"
#include "pipeliner/pipeliner.hh"
#include "sim/vliw.hh"
#include "support/diag.hh"
#include "workload/suitegen.hh"

namespace
{

using namespace swp;

/** Iterations of pipelined-vs-sequential differential execution. */
constexpr long kSimIterations = 32;

/** The machine family under test: the Section 5 presets plus every
    description file shipped in examples/machines/ (or just the
    --machine override). Built once; descriptions are parsed through
    the same machdesc path the CLI uses. */
const std::vector<Machine> &
machineFamily()
{
    static const std::vector<Machine> family = [] {
        if (!benchutil::benchOptions().machineSpec.empty())
            return std::vector<Machine>{
                machineFromSpec(benchutil::benchOptions().machineSpec)};
        std::vector<Machine> f = {Machine::p1l4(), Machine::p2l4(),
                                  Machine::p2l6()};
        for (const char *file :
             {"scalar.mach", "two_wide.mach", "vliw8.mach",
              "longdiv.mach"}) {
            f.push_back(machineFromSpec(std::string(SWP_MACHINES_DIR) +
                                        "/" + file));
        }
        return f;
    }();
    return family;
}

/** Constrained pipelining (best-of-all, 32 registers) of a small
    deterministic loop sample on one family member. */
void
BM_MachineSweepSchedule(benchmark::State &state)
{
    const std::vector<Machine> &family = machineFamily();
    const Machine &m =
        family[std::size_t(state.range(0)) % family.size()];
    const std::vector<SuiteLoop> &suite = benchutil::evaluationSuite();
    const std::size_t stride = std::max<std::size_t>(suite.size() / 8, 1);

    PipelinerOptions opts;
    opts.registers = 32;
    opts.multiSelect = true;
    opts.reuseLastIi = true;
    for (auto _ : state) {
        for (std::size_t i = 0; i < suite.size(); i += stride) {
            benchmark::DoNotOptimize(pipelineLoop(
                suite[i].graph, m, Strategy::BestOfAll, opts));
        }
    }
    state.SetLabel(m.name());
    state.SetItemsProcessed(state.iterations() *
                            long((suite.size() + stride - 1) / stride));
}
BENCHMARK(BM_MachineSweepSchedule)->DenseRange(0, 6);

/** Whole-suite run on every family member through the shared batch
    runner (honouring --threads/--verify/--certify), then differential
    execution of every allocated kernel against the dataflow semantics
    of its source loop. */
void
BM_MachineFamilyValidation(benchmark::State &state)
{
    const std::vector<SuiteLoop> &suite = benchutil::evaluationSuite();
    SuiteRunner &runner = benchutil::suiteRunner();
    long simulated = 0;

    for (auto _ : state) {
        simulated = 0;
        for (const Machine &m : machineFamily()) {
            std::vector<BatchJob> jobs = benchutil::protoJobs(
                suite.size(), benchutil::variantJob(
                                  0, benchutil::Variant::BestOfAll, 32));
            const std::vector<PipelineResult> results = runner.run(
                suite, m, jobs, benchutil::benchRunOptions());
            for (std::size_t i = 0; i < results.size(); ++i) {
                if (!benchutil::ownsJob(i))
                    continue;
                const PipelineResult &r = results[i];
                if (!r.alloc.rotAlloc.ok)
                    continue;  // No allocation to execute under.
                std::string why;
                if (!equivalentToSequential(suite[i].graph, r.graph(),
                                            m, r.sched,
                                            r.alloc.rotAlloc,
                                            kSimIterations, &why)) {
                    SWP_FATAL("machine sweep: kernel of loop '",
                              suite[i].graph.name(), "' on machine '",
                              m.name(),
                              "' diverges from sequential execution: ",
                              why);
                }
                ++simulated;
            }
        }
    }
    state.SetLabel(std::to_string(machineFamily().size()) +
                   " machines, " + std::to_string(simulated) +
                   " kernels executed" + benchutil::shardSuffix());
    state.SetItemsProcessed(long(machineFamily().size()) *
                            long(suite.size()));
}
BENCHMARK(BM_MachineFamilyValidation)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

} // namespace

SWP_BENCH_MAIN_NATIVE_JSON("sweep_machines");
