/**
 * @file
 * Ablation: register allocation strategy.
 *
 * Two questions:
 *  (1) How close do the circular-packing strategies (end-fit,
 *      first-fit, best-fit x adjacency/length orderings) come to the
 *      MaxLive lower bound? Rau et al. (PLDI 1992) report end-fit with
 *      adjacency ordering within MaxLive+1 almost always — the paper's
 *      stated basis for approximating registers by MaxLive.
 *  (2) What does the rotating register file buy over software-only
 *      renaming (modulo variable expansion)?
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "common.hh"
#include "regalloc/mvealloc.hh"
#include "sched/mii.hh"
#include "support/strutil.hh"
#include "support/table.hh"

namespace
{

using namespace swp;
using namespace swp::benchutil;

void
runAblation(benchmark::State &state)
{
    const auto &suite = evaluationSuite();
    const Machine m = benchMachine();

    for (auto _ : state) {
        // Schedule everything once (unconstrained) and collect
        // lifetimes.
        SuiteRunner &runner = suiteRunner();
        std::vector<BatchJob> jobs;
        for (std::size_t i = 0; i < suite.size(); ++i)
            jobs.push_back(variantJob(int(i), Variant::Ideal, 0));
        const auto results =
            runner.run(suite, m, jobs, benchRunOptions());

        // Sharded runs analyze (and below, count) only their own
        // loops' lifetimes.
        std::vector<LifetimeInfo> infos(suite.size());
        runner.parallelFor(suite.size(), [&](std::size_t i) {
            if (!ownsJob(i))
                return;
            infos[i] = analyzeLifetimes(suite[i].graph, results[i].sched);
        });

        Table strat({"strategy", "ordering", "= MaxLive", "+1", "+2",
                     ">+2", "total extra regs"});
        for (const FitStrategy fit :
             {FitStrategy::EndFit, FitStrategy::FirstFit,
              FitStrategy::BestFit}) {
            for (const AllocOrder order :
                 {AllocOrder::Adjacency, AllocOrder::DescendingLength}) {
                int exact = 0, plus1 = 0, plus2 = 0, more = 0;
                long extra = 0;
                for (std::size_t i = 0; i < infos.size(); ++i) {
                    if (!ownsJob(i))
                        continue;
                    const LifetimeInfo &info = infos[i];
                    const int regs = minRotatingRegs(info, fit, order);
                    const int gap = regs - info.maxLive;
                    exact += gap == 0;
                    plus1 += gap == 1;
                    plus2 += gap == 2;
                    more += gap > 2;
                    extra += gap;
                }
                strat.row()
                    .add(fitStrategyName(fit))
                    .add(order == AllocOrder::Adjacency ? "adjacency"
                                                        : "length")
                    .add(exact)
                    .add(plus1)
                    .add(plus2)
                    .add(more)
                    .add(extra);
            }
        }
        std::cout << "\nAblation (1): rotating allocation vs the "
                     "MaxLive bound over " << suite.size()
                  << " unconstrained schedules (P2L4"
                  << shardSuffix() << ")\n";
        strat.print(std::cout);
        recordTable("packing_vs_maxlive", strat);

        // MVE vs rotating.
        long rotTotal = 0, mveTotal = 0, mveWorse = 0;
        int maxGap = 0;
        for (std::size_t i = 0; i < infos.size(); ++i) {
            if (!ownsJob(i))
                continue;
            const LifetimeInfo &info = infos[i];
            const int rot = minRotatingRegs(info);
            const int mve = allocateMve(info).registers;
            rotTotal += rot;
            mveTotal += mve;
            mveWorse += mve > rot;
            maxGap = std::max(maxGap, mve - rot);
        }
        std::cout << "\nAblation (2): rotating file vs modulo variable "
                     "expansion\n";
        // rotTotal is 0 when this shard owns no loops; print +0.0%
        // rather than a 0/0 NaN.
        std::cout << strprintf(
            "total rotating regs: %ld, total MVE regs: %ld (+%.1f%%); "
            "MVE needs more on %ld loops (worst gap %d regs)\n",
            rotTotal, mveTotal,
            rotTotal ? 100.0 * double(mveTotal - rotTotal) /
                           double(rotTotal)
                     : 0.0,
            mveWorse, maxGap);
        recordMetric("rotating_regs_total", double(rotTotal));
        recordMetric("mve_regs_total", double(mveTotal));
        recordMetric("mve_worse_loops", double(mveWorse));
        recordMetric("mve_worst_gap", double(maxGap));
    }
}

BENCHMARK(runAblation)->Unit(benchmark::kMillisecond)->Iterations(1);

} // namespace

SWP_BENCH_MAIN("ablation_allocator");
