/**
 * @file
 * Ablation: spill whole values vs single uses (Section 6 future work).
 *
 * The paper predicts little improvement from use-granularity spilling
 * "since most of the variables are used only once". This bench runs
 * the constrained pipeline with and without use-granularity candidates
 * and reports cycles, traffic and spill counts, quantifying that
 * prediction on the evaluation suite.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "common.hh"
#include "support/table.hh"

namespace
{

using namespace swp;
using namespace swp::benchutil;

void
runAblation(benchmark::State &state)
{
    const auto &suite = evaluationSuite();

    for (auto _ : state) {
        // How many values even have several uses? (Per-shard counts
        // when sharded, matching the evaluated subset below.)
        long values = 0, multiUse = 0;
        for (std::size_t li = 0; li < suite.size(); ++li) {
            if (!ownsJob(li))
                continue;
            const SuiteLoop &loop = suite[li];
            for (NodeId n = 0; n < loop.graph.numNodes(); ++n) {
                if (!producesValue(loop.graph.node(n).op))
                    continue;
                const int uses = loop.graph.numValueUses(n);
                values += uses > 0;
                multiUse += uses > 1;
            }
        }
        std::cout << "\nAblation: use-granularity spilling"
                  << shardSuffix() << "\n";
        // values can be 0 when this shard owns no loops; print 0%
        // rather than a 0/0 NaN.
        std::cout << "suite values with >1 use: " << multiUse << " of "
                  << values << " ("
                  << (values ? 100.0 * double(multiUse) / double(values)
                             : 0.0)
                  << "%) — the paper's premise for expecting little "
                     "gain\n";

        Table table({"config", "regs", "granularity", "cycles(1e9)",
                     "memrefs(1e9)", "spills", "unfit"});
        for (const Machine &m : evaluationMachines()) {
            for (const int registers : {32, 16}) {
                for (const bool uses : {false, true}) {
                    BatchJob proto;
                    proto.strategy = Strategy::Spill;
                    proto.options.registers = registers;
                    proto.options.multiSelect = true;
                    proto.options.reuseLastIi = true;
                    proto.options.spillUses = uses;
                    const auto results = benchEvaluate(
                        suite, m, protoJobs(suite.size(), proto),
                        benchRunOptions());

                    double cycles = 0, refs = 0;
                    long spills = 0;
                    int unfit = 0;
                    for (std::size_t i = 0; i < suite.size(); ++i) {
                        if (!results[i].evaluated)
                            continue;
                        const JobSummary &r = results[i];
                        cycles +=
                            double(r.ii) * double(suite[i].iterations);
                        refs += double(r.memOps) *
                                double(suite[i].iterations);
                        spills += r.spills;
                        unfit += !r.success;
                    }
                    table.row()
                        .add(m.name())
                        .add(registers)
                        .add(uses ? "value+use" : "value")
                        .add(cycles / 1e9, 4)
                        .add(refs / 1e9, 4)
                        .add(spills)
                        .add(unfit);
                }
            }
        }
        table.print(std::cout);
        recordTable("granularity", table);
        recordMetric("suite_values", double(values));
        recordMetric("suite_multi_use_values", double(multiUse));
    }
}

BENCHMARK(runAblation)->Unit(benchmark::kMillisecond)->Iterations(1);

} // namespace

SWP_BENCH_MAIN("ablation_spill_uses");
