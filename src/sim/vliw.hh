/**
 * @file
 * Cycle-accurate execution of a software-pipelined loop.
 *
 * The simulator plays the flat modulo schedule for a given number of
 * iterations on a machine with a rotating register file of R registers:
 * instance i of value v (allocated offset o_v) is written to physical
 * register (o_v + i) mod R when the producer's latency elapses and read
 * by consumers at their issue cycles. Loop-carried reads of pre-loop
 * instances see deterministic live-in tokens, which the simulator
 * preloads into the registers their allocation arcs reserve. Spill
 * stores write a per-(store, iteration) memory slot; spill loads read
 * slots, original-load streams, or spilled invariants per their
 * SpillRef annotation.
 *
 * Every register read is checked against the dataflow oracle, so any
 * scheduling, allocation or spill-rewrite bug surfaces as a concrete
 * "register clobbered" diagnosis; the datum streams of the original
 * stores are returned for end-to-end comparison with the sequential
 * reference.
 */

#ifndef SWP_SIM_VLIW_HH
#define SWP_SIM_VLIW_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ir/ddg.hh"
#include "machine/machine.hh"
#include "regalloc/rotalloc.hh"
#include "sched/schedule.hh"

namespace swp
{

/** Simulation parameters. */
struct SimConfig
{
    /** Loop trip count to execute. */
    long iterations = 32;

    /** Check every register read against the oracle (recommended). */
    bool checkReads = true;
};

/** Simulation outcome. */
struct SimResult
{
    bool ok = false;
    std::string error;

    /** Total execution cycles including ramp-up and drain. */
    long cycles = 0;

    /** Dynamic memory operations executed. */
    long memoryOps = 0;

    /** Datum streams of the original store nodes. */
    std::map<NodeId, std::vector<std::uint64_t>> storeStreams;
};

/**
 * Execute a scheduled, register-allocated loop.
 *
 * @param g      The (possibly spill-transformed) loop.
 * @param m      Machine model (for latencies).
 * @param sched  Complete normalized schedule of g.
 * @param alloc  Rotating allocation of g's lifetimes under sched.
 * @param cfg    Trip count and checking options.
 */
SimResult simulatePipelined(const Ddg &g, const Machine &m,
                            const Schedule &sched,
                            const RotAllocResult &alloc,
                            const SimConfig &cfg = {});

/**
 * End-to-end equivalence check: pipelined execution of `transformed`
 * (under sched/alloc) produces the same original-store datum streams as
 * the sequential execution of `original`.
 *
 * @param why When non-null, receives the first discrepancy found.
 */
bool equivalentToSequential(const Ddg &original, const Ddg &transformed,
                            const Machine &m, const Schedule &sched,
                            const RotAllocResult &alloc, long iterations,
                            std::string *why = nullptr);

} // namespace swp

#endif // SWP_SIM_VLIW_HH
