/**
 * @file
 * Dataflow value semantics and the sequential reference interpreter.
 *
 * Every operation is given an executable meaning over 64-bit tokens so
 * that a software-pipelined execution of a (possibly spill-transformed)
 * loop can be checked against the sequential execution of the original:
 *
 *  - an original load produces a deterministic per-(node, iteration)
 *    stream token (the content of the array element it reads);
 *  - a loop invariant is a per-invariant token;
 *  - a compute op hashes its opcode, node and input multiset (Copy is
 *    the identity);
 *  - a store's datum is its single register input (or the hashed
 *    multiset when it has several);
 *  - loop-carried reads of iterations before the first one see
 *    deterministic live-in tokens;
 *  - spill loads recover exactly the token their SpillRef denotes.
 *
 * Spill rewriting preserves, by construction, the token every original
 * consumer sees — so comparing the datum streams of the original store
 * operations between the reference and a pipelined simulation validates
 * scheduling, register allocation and spill code all at once.
 */

#ifndef SWP_SIM_DATAFLOW_HH
#define SWP_SIM_DATAFLOW_HH

#include <cstdint>
#include <map>
#include <vector>

#include "ir/ddg.hh"

namespace swp
{

/** Deterministic 64-bit mixing (splitmix64 finalizer). */
std::uint64_t mix64(std::uint64_t x);

/** Token an original load delivers at an iteration (any, incl. < 0). */
std::uint64_t loadStreamValue(NodeId load, long iteration);

/** Token of a loop invariant. */
std::uint64_t invariantValue(InvId inv);

/** Live-in token of a non-load value instance from before the loop. */
std::uint64_t liveInValue(NodeId producer, long iteration);

/**
 * Combine the sorted operand multiset of a compute/store/copy node into
 * its result token. Shared by the oracle and the pipelined simulator so
 * the two semantics can never drift apart: a store's datum and a copy's
 * result are their single operand; everything else hashes opcode, node
 * and operands.
 */
std::uint64_t combineOperands(Opcode op, NodeId n,
                              const std::vector<std::uint64_t> &inputs);

/**
 * Lazy dataflow oracle for one graph: the token of any value instance,
 * any iteration. Usable both as the sequential reference (on the
 * original graph) and as the expected-value oracle inside the pipelined
 * simulator (on the transformed graph).
 */
class DataflowOracle
{
  public:
    explicit DataflowOracle(const Ddg &g) : g_(g) {}

    /** Token produced by node n in iteration i (memoized). */
    std::uint64_t value(NodeId n, long iteration);

    /** Datum stream of a store node over [0, iterations). */
    std::vector<std::uint64_t> storeStream(NodeId store, long iterations);

    const Ddg &graph() const { return g_; }

  private:
    std::uint64_t compute(NodeId n, long iteration);

    const Ddg &g_;
    std::map<std::pair<NodeId, long>, std::uint64_t> memo_;
};

/**
 * Sequential reference result: datum streams of all original stores.
 * Keyed by store node id.
 */
std::map<NodeId, std::vector<std::uint64_t>>
referenceStoreStreams(const Ddg &g, long iterations);

} // namespace swp

#endif // SWP_SIM_DATAFLOW_HH
