#include "sim/vliw.hh"

#include <algorithm>

#include "liferange/lifetimes.hh"
#include "sim/dataflow.hh"
#include "support/diag.hh"
#include "support/strutil.hh"

namespace swp
{

namespace
{

/** A pending register write. */
struct Write
{
    long cycle;
    int reg;
    std::uint64_t value;
    std::string owner;
};

/** Physical register index of instance i of a value. */
int
physReg(int offset, long instance, int num_regs)
{
    const long r = (offset + instance) % num_regs;
    return int(r < 0 ? r + num_regs : r);
}

/** Find the single register-flow producer of a store (its datum). */
NodeId
storeDataProducer(const Ddg &g, NodeId store)
{
    NodeId producer = invalidNode;
    int count = 0;
    for (EdgeId e : g.inEdges(store)) {
        if (g.edge(e).kind == DepKind::RegFlow) {
            producer = g.edge(e).src;
            ++count;
        }
    }
    return count == 1 ? producer : invalidNode;
}

} // namespace

SimResult
simulatePipelined(const Ddg &g, const Machine &m, const Schedule &sched,
                  const RotAllocResult &alloc, const SimConfig &cfg)
{
    SimResult result;
    if (!sched.complete() || sched.numNodes() != g.numNodes()) {
        result.error = "incomplete schedule";
        return result;
    }

    const int ii = sched.ii();
    const long n = cfg.iterations;
    const int numRegs = std::max(alloc.registers, 1);

    DataflowOracle oracle(g);
    const LifetimeInfo lifetimes = analyzeLifetimes(g, sched);

    // Register file plus an owner tag for diagnostics.
    std::vector<std::uint64_t> regs(std::size_t(numRegs), 0);
    std::vector<std::string> owner(std::size_t(numRegs), "(uninit)");

    std::vector<Write> writes;  // Min-heap by cycle.
    auto writeCmp = [](const Write &a, const Write &b) {
        return a.cycle > b.cycle;
    };

    // Preload live-in instances into the registers their allocation
    // arcs reserve: instance j < 0 of value v is alive while
    // end_v + j*II > 0. The writes are *timed* at the instance's
    // nominal production cycle (start + j*II + latency): eager writes
    // at cycle 0 would let a short early arc clobber a longer later
    // arc sharing the register, which the steady-state allocation
    // legitimately allows. Lazy timing models a prologue that
    // materializes each live-in exactly when its arc begins.
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        const Lifetime &lt = lifetimes.of(v);
        if (!lt.live)
            continue;
        const int off = alloc.offset[std::size_t(v)];
        if (off < 0)
            continue;
        const long lat = m.latency(g.node(v).op);
        // Inclusive boundary: an instance whose last read sits exactly
        // at cycle 0 is still consumed by the first iteration.
        for (long j = -1; lt.end + j * ii >= 0; --j) {
            const int pr = physReg(off, j, numRegs);
            writes.push_back({lt.start + j * ii + lat, pr,
                              oracle.value(v, j),
                              strprintf("%s@%ld (live-in)",
                                        g.node(v).name.c_str(), j)});
        }
    }
    std::make_heap(writes.begin(), writes.end(), writeCmp);

    // Event-driven execution: issues in cycle order, with result writes
    // applied at the start of their cycle (before any same-cycle read).
    struct Issue
    {
        long cycle;
        NodeId node;
        long iter;
        bool operator<(const Issue &o) const { return cycle < o.cycle; }
    };
    std::vector<Issue> issues;
    issues.reserve(std::size_t(n) * std::size_t(g.numNodes()));
    for (long i = 0; i < n; ++i) {
        for (NodeId v = 0; v < g.numNodes(); ++v)
            issues.push_back({sched.time(v) + i * ii, v, i});
    }
    std::stable_sort(issues.begin(), issues.end());

    // Spill memory: per (store node, iteration) slots.
    std::map<std::pair<NodeId, long>, std::uint64_t> slots;

    long lastCycle = 0;
    for (const Issue &issue : issues) {
        // Retire pending writes due at or before this cycle.
        while (!writes.empty() && writes.front().cycle <= issue.cycle) {
            std::pop_heap(writes.begin(), writes.end(), writeCmp);
            Write w = std::move(writes.back());
            writes.pop_back();
            regs[std::size_t(w.reg)] = w.value;
            owner[std::size_t(w.reg)] = std::move(w.owner);
        }

        const NodeId v = issue.node;
        const Node &node = g.node(v);
        const long i = issue.iter;

        // Read register operands.
        std::vector<std::uint64_t> inputs;
        for (EdgeId e : g.inEdges(v)) {
            const Edge &edge = g.edge(e);
            if (edge.kind != DepKind::RegFlow)
                continue;
            const NodeId p = edge.src;
            const long inst = i - edge.distance;
            const int off = alloc.offset[std::size_t(p)];
            if (off < 0) {
                result.error = strprintf(
                    "value %s read by %s but never allocated",
                    g.node(p).name.c_str(), node.name.c_str());
                return result;
            }
            const int pr = physReg(off, inst, numRegs);
            const std::uint64_t got = regs[std::size_t(pr)];
            if (cfg.checkReads) {
                const std::uint64_t want = oracle.value(p, inst);
                if (got != want) {
                    result.error = strprintf(
                        "iter %ld cycle %ld: %s read r%d expecting "
                        "%s@%ld but found %s (clobbered)",
                        i, issue.cycle, node.name.c_str(), pr,
                        g.node(p).name.c_str(), inst,
                        owner[std::size_t(pr)].c_str());
                    return result;
                }
            }
            inputs.push_back(got);
        }
        for (InvId inv : node.invariantUses)
            inputs.push_back(invariantValue(inv));
        std::sort(inputs.begin(), inputs.end());

        // Execute.
        std::uint64_t out = 0;
        bool hasOut = producesValue(node.op);
        switch (node.spillRef.kind) {
          case SpillRef::Kind::StoreSlot: {
            const NodeId store = NodeId(node.spillRef.value);
            const long inst = i - node.spillRef.shift;
            const auto it = slots.find({store, inst});
            if (it != slots.end()) {
                out = it->second;
            } else if (inst < 0) {
                // Pre-loop memory: what the store's producer held.
                const NodeId producer = storeDataProducer(g, store);
                SWP_ASSERT(producer != invalidNode,
                           "spill store without a single datum producer");
                out = oracle.value(producer, inst);
            } else {
                result.error = strprintf(
                    "iter %ld: %s reads slot (%s, %ld) before it is "
                    "written — spill scheduling bug",
                    i, node.name.c_str(), g.node(store).name.c_str(),
                    inst);
                return result;
            }
            break;
          }
          case SpillRef::Kind::ReloadStream:
            out = loadStreamValue(NodeId(node.spillRef.value),
                                  i - node.spillRef.shift);
            break;
          case SpillRef::Kind::InvariantMem:
            out = invariantValue(InvId(node.spillRef.value));
            break;
          case SpillRef::Kind::None:
            if (node.op == Opcode::Load) {
                out = loadStreamValue(v, i);
            } else if (node.op == Opcode::Store) {
                // The datum is computed from the registers actually
                // read, so a clobber propagates into the store stream.
                const std::uint64_t datum =
                    combineOperands(node.op, v, inputs);
                slots[{v, i}] = datum;
                if (node.origin == NodeOrigin::Original)
                    result.storeStreams[v].push_back(datum);
                hasOut = false;
            } else if (node.op == Opcode::Nop) {
                hasOut = false;
            } else {
                out = combineOperands(node.op, v, inputs);
            }
            break;
        }

        if (node.op == Opcode::Load || node.op == Opcode::Store)
            ++result.memoryOps;

        // Write back when the result is ready, unless the value is dead.
        if (hasOut && !g.valueUses(v).empty()) {
            const int off = alloc.offset[std::size_t(v)];
            if (off < 0) {
                result.error = strprintf("live value %s unallocated",
                                         node.name.c_str());
                return result;
            }
            const int pr = physReg(off, i, numRegs);
            writes.push_back({issue.cycle + m.latency(node.op), pr, out,
                              strprintf("%s@%ld", node.name.c_str(), i)});
            std::push_heap(writes.begin(), writes.end(), writeCmp);
        }

        lastCycle = std::max(lastCycle,
                             issue.cycle + m.latency(node.op));
    }

    result.cycles = lastCycle + 1;
    result.ok = true;
    return result;
}

bool
equivalentToSequential(const Ddg &original, const Ddg &transformed,
                       const Machine &m, const Schedule &sched,
                       const RotAllocResult &alloc, long iterations,
                       std::string *why)
{
    auto fail = [&](const std::string &msg) {
        if (why)
            *why = msg;
        return false;
    };

    SimConfig cfg;
    cfg.iterations = iterations;
    const SimResult sim = simulatePipelined(transformed, m, sched, alloc,
                                            cfg);
    if (!sim.ok)
        return fail("simulation failed: " + sim.error);

    const auto ref = referenceStoreStreams(original, iterations);
    if (ref.size() != sim.storeStreams.size()) {
        return fail(strprintf(
            "store count mismatch: reference %zu vs pipelined %zu",
            ref.size(), sim.storeStreams.size()));
    }
    for (const auto &[store, stream] : ref) {
        const auto it = sim.storeStreams.find(store);
        if (it == sim.storeStreams.end()) {
            return fail(strprintf("store %s missing from simulation",
                                  original.node(store).name.c_str()));
        }
        if (it->second.size() != stream.size()) {
            return fail(strprintf(
                "store %s executed %zu times, expected %zu",
                original.node(store).name.c_str(), it->second.size(),
                stream.size()));
        }
        for (std::size_t i = 0; i < stream.size(); ++i) {
            if (stream[i] != it->second[i]) {
                return fail(strprintf(
                    "store %s iteration %zu: datum mismatch",
                    original.node(store).name.c_str(), i));
            }
        }
    }
    return true;
}

} // namespace swp
