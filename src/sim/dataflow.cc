#include "sim/dataflow.hh"

#include <algorithm>

#include "support/diag.hh"

namespace swp
{

namespace
{

constexpr std::uint64_t streamTag = 0x51beadf00dull;
constexpr std::uint64_t invTag = 0x1174a61a47ull;
constexpr std::uint64_t liveInTag = 0x11f3116e55ull;
constexpr std::uint64_t opTag = 0x093a17e0ull;

std::uint64_t
combine(std::uint64_t a, std::uint64_t b)
{
    return mix64(a ^ (b + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2)));
}

} // namespace

std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

std::uint64_t
loadStreamValue(NodeId load, long iteration)
{
    return mix64(combine(streamTag,
                         combine(std::uint64_t(load),
                                 std::uint64_t(iteration))));
}

std::uint64_t
invariantValue(InvId inv)
{
    return mix64(combine(invTag, std::uint64_t(inv)));
}

std::uint64_t
liveInValue(NodeId producer, long iteration)
{
    return mix64(combine(liveInTag,
                         combine(std::uint64_t(producer),
                                 std::uint64_t(iteration))));
}

std::uint64_t
DataflowOracle::value(NodeId n, long iteration)
{
    const auto key = std::make_pair(n, iteration);
    const auto it = memo_.find(key);
    if (it != memo_.end())
        return it->second;
    const std::uint64_t v = compute(n, iteration);
    memo_.emplace(key, v);
    return v;
}

std::uint64_t
DataflowOracle::compute(NodeId n, long iteration)
{
    const Node &node = g_.node(n);

    // Spill loads recover the spilled token directly.
    switch (node.spillRef.kind) {
      case SpillRef::Kind::StoreSlot:
        // What the spill store wrote `shift` iterations ago: its datum.
        return value(NodeId(node.spillRef.value),
                     iteration - node.spillRef.shift);
      case SpillRef::Kind::ReloadStream:
        return loadStreamValue(NodeId(node.spillRef.value),
                               iteration - node.spillRef.shift);
      case SpillRef::Kind::InvariantMem:
        return invariantValue(InvId(node.spillRef.value));
      case SpillRef::Kind::None:
        break;
    }

    if (node.op == Opcode::Load)
        return loadStreamValue(n, iteration);

    // Live-in instances of computed values. Stores are excluded: a
    // store "datum" from before the loop must resolve to its producer's
    // live-in token, which is what the original consumers saw.
    if (iteration < 0 && node.op != Opcode::Store)
        return liveInValue(n, iteration);

    // Gather the input multiset: register operands and invariants.
    std::vector<std::uint64_t> inputs;
    for (EdgeId e : g_.inEdges(n)) {
        const Edge &edge = g_.edge(e);
        if (edge.kind != DepKind::RegFlow)
            continue;
        inputs.push_back(value(edge.src, iteration - edge.distance));
    }
    for (InvId inv : node.invariantUses)
        inputs.push_back(invariantValue(inv));

    std::sort(inputs.begin(), inputs.end());
    return combineOperands(node.op, n, inputs);
}

std::uint64_t
combineOperands(Opcode op, NodeId n,
                const std::vector<std::uint64_t> &inputs)
{
    if ((op == Opcode::Store || op == Opcode::Copy) &&
        inputs.size() == 1) {
        // A store's datum / a copy's result is its operand.
        return inputs[0];
    }
    std::uint64_t acc = combine(opTag, std::uint64_t(int(op)));
    acc = combine(acc, std::uint64_t(n));
    for (std::uint64_t in : inputs)
        acc = combine(acc, in);
    return mix64(acc);
}

std::vector<std::uint64_t>
DataflowOracle::storeStream(NodeId store, long iterations)
{
    SWP_ASSERT(g_.node(store).op == Opcode::Store,
               "storeStream on non-store node");
    std::vector<std::uint64_t> stream;
    stream.reserve(std::size_t(iterations));
    for (long i = 0; i < iterations; ++i)
        stream.push_back(value(store, i));
    return stream;
}

std::map<NodeId, std::vector<std::uint64_t>>
referenceStoreStreams(const Ddg &g, long iterations)
{
    DataflowOracle oracle(g);
    std::map<NodeId, std::vector<std::uint64_t>> streams;
    for (NodeId n = 0; n < g.numNodes(); ++n) {
        if (g.node(n).op == Opcode::Store &&
            g.node(n).origin == NodeOrigin::Original) {
            streams[n] = oracle.storeStream(n, iterations);
        }
    }
    return streams;
}

} // namespace swp
