#include "sched/hrms.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "ir/graph_algo.hh"
#include "sched/groups.hh"
#include "sched/mii.hh"
#include "sched/mrt.hh"
#include "sched/sched_util.hh"
#include "support/bitmatrix.hh"
#include "support/diag.hh"

namespace swp
{

namespace
{

constexpr long negInf = schedNegInf;
constexpr long posInf = schedPosInf;

/**
 * Scheduling context shared by the ordering and placement phases.
 *
 * All sizable state — the condensed group-graph adjacency, the
 * bit-packed reachability matrices (reach over all edges, its
 * transpose, and zero-distance-only reach0), the priority buffers and
 * the MRT — lives in the scheduler's SchedWorkspace and is cleared,
 * not reallocated, for each probe.
 */
struct HrmsContext
{
    const Ddg &g;
    const Machine &m;
    const int ii;
    SchedWorkspace &ws;
    GroupSet &groups;  ///< ws.groups, rebuilt for this probe.
    int n = 0;         ///< Number of complex groups.

    HrmsContext(const Ddg &graph, const Machine &mach, int interval,
                SchedWorkspace &workspace)
        : g(graph),
          m(mach),
          ii(interval),
          ws(workspace),
          groups(workspace.groups)
    {
        groups.reset(graph, mach);
        n = groups.numGroups();
        buildGroupGraph();

        ws.prio.compute(g, m, ii);
        ws.gAsap.assign(std::size_t(n), negInf);
        ws.gHeight.assign(std::size_t(n), negInf);
        for (NodeId v = 0; v < g.numNodes(); ++v) {
            const int gi = groups.groupOf(v);
            const long off = groups.offsetOf(v);
            ws.gAsap[std::size_t(gi)] =
                std::max(ws.gAsap[std::size_t(gi)],
                         ws.prio.asap[std::size_t(v)] - off);
            ws.gHeight[std::size_t(gi)] =
                std::max(ws.gHeight[std::size_t(gi)],
                         ws.prio.height[std::size_t(v)] + off);
        }
    }

  private:
    /**
     * Build the condensed graph over complex groups: deduplicated
     * adjacency (duplicate (a, b) pairs are filtered by a bit matrix
     * instead of a linear scan), plus transitive reachability as
     * word-packed bit rows.
     */
    void
    buildGroupGraph()
    {
        ws.succ.reset(n);
        ws.pred.reset(n);
        ws.succ0.reset(n);
        ws.pred0.reset(n);
        ws.predMask.reset(n, n);
        ws.succMask.reset(n, n);
        ws.pred0Mask.reset(n, n);
        ws.edgeSeen.reset(n, n);
        ws.edgeSeen0.reset(n, n);
        for (EdgeId e = 0; e < g.numEdges(); ++e) {
            const Edge &edge = g.edge(e);
            if (!edge.alive)
                continue;
            const int a = groups.groupOf(edge.src);
            const int b = groups.groupOf(edge.dst);
            if (a == b)
                continue;
            if (!ws.edgeSeen.test(a, b)) {
                ws.edgeSeen.set(a, b);
                ws.succ[a].push_back(b);
                ws.pred[b].push_back(a);
                ws.succMask.set(a, b);
                ws.predMask.set(b, a);
            }
            if (edge.distance == 0 && !ws.edgeSeen0.test(a, b)) {
                ws.edgeSeen0.set(a, b);
                ws.pred0[b].push_back(a);
                ws.succ0[a].push_back(b);
                ws.pred0Mask.set(b, a);
            }
        }

        buildReach(ws.succ, ws.reach);
        buildReach(ws.succ0, ws.reach0);

        // Transpose of reach, for "is v reachable from any of set S"
        // queries (a column of reach is a row of the transpose).
        ws.reachT.reset(n, n);
        for (int s = 0; s < n; ++s) {
            const std::uint64_t *row = ws.reach.row(s);
            for (int w = 0; w < ws.reach.wordsPerRow(); ++w) {
                std::uint64_t bits = row[w];
                while (bits) {
                    const int v = w * 64 + countTrailingZeros(bits);
                    bits &= bits - 1;
                    ws.reachT.set(v, s);
                }
            }
        }
    }

    /** out[s] = set of groups reachable from s through adj (s itself
        only when on a cycle). */
    void
    buildReach(const ScratchAdj &adj, BitMatrix &out)
    {
        out.reset(n, n);
        for (int s = 0; s < n; ++s) {
            ws.dfsStack.clear();
            ws.dfsStack.push_back(s);
            while (!ws.dfsStack.empty()) {
                const int u = ws.dfsStack.back();
                ws.dfsStack.pop_back();
                for (const int v : adj[u]) {
                    if (!out.test(s, v)) {
                        out.set(s, v);
                        ws.dfsStack.push_back(v);
                    }
                }
            }
        }
    }
};

/**
 * The pre-ordering phase: produce group indices in scheduling order.
 *
 * The scheduling phase relies on the HRMS invariant: when a group is
 * placed, its already-placed neighbours are only predecessors or only
 * successors (recurrence members excepted). Two placement "fronts"
 * meeting at an unordered node would leave it a window that no II can
 * satisfy, so the ordering must never create such junctions. We achieve
 * that by always absorbing whole *transitive cones* in one direction:
 *
 *  - recurrences first, most critical (highest RecMII) first, each
 *    preceded by the nodes on directed paths from the ordered set to it
 *    (topological order: they see only predecessors) and followed by
 *    the paths back (reverse topological: only successors); since
 *    distinct SCCs cannot have paths both ways, these sets are disjoint;
 *  - then, repeatedly: the full descendant cone of the ordered set in
 *    topological order, or the full ancestor cone in reverse topological
 *    order, or a fresh seed (the most critical remaining group).
 *
 * A node of a descendant cone cannot have an ordered successor (that
 * would make it simultaneously an ancestor, i.e. a node between two
 * ordered nodes, which the hole-absorption step has already taken), and
 * symmetrically for ancestor cones, so the invariant holds everywhere
 * outside recurrences.
 */
class Ordering
{
  public:
    explicit Ordering(HrmsContext &ctx) : ctx_(ctx), ws_(ctx.ws) {}

    const std::vector<int> &
    run()
    {
        const int n = ctx_.n;
        ws_.orderedMask.reset(n);
        ws_.order.clear();
        ws_.order.reserve(std::size_t(n));

        // Recurrences first, most critical first (criticality = RecMII
        // of the component). The SCC decomposition is the shared
        // graph-algo Tarjan over the condensed adjacency; only
        // recurrence components are materialized as vectors.
        const AdjScc scc = stronglyConnectedComponents(ws_.succ.rows, n);
        std::vector<std::pair<long, std::vector<int>>> recurrences;
        for (int c = 0; c < scc.numComps(); ++c) {
            const int *members = scc.compNodes(c);
            if (!isRecurrence(members, scc.compSize(c)))
                continue;
            std::vector<int> comp(members, members + scc.compSize(c));
            std::vector<NodeId> nodes;
            for (const int gi : comp) {
                const auto &grp = ctx_.groups.group(gi);
                nodes.insert(nodes.end(), grp.members.begin(),
                             grp.members.end());
            }
            const long crit = recMiiOfComponent(ctx_.g, ctx_.m, nodes);
            recurrences.emplace_back(crit, std::move(comp));
        }
        std::stable_sort(recurrences.begin(), recurrences.end(),
                         [](const auto &a, const auto &b) {
                             if (a.first != b.first)
                                 return a.first > b.first;
                             return a.second.size() > b.second.size();
                         });

        // Constrain the criticality order to the topological order of
        // zero-distance reachability between components: if comp A has
        // a zero-distance path into comp B, A must be placed first.
        // Otherwise a member of A with a placed zero-distance successor
        // in B faces a fixed gap that no II can widen (carried edges
        // gain slack with II; zero-distance ones never do).
        orderCompsByZeroDistance(recurrences);

        for (const auto &[crit, comp] : recurrences) {
            (void)crit;
            // Membership mask of this recurrence, for the cone tests.
            ws_.setMask.reset(n);
            for (const int gi : comp)
                ws_.setMask.set(gi);
            if (!ws_.order.empty()) {
                // Paths ordered-set -> recurrence: only-preds nodes.
                std::vector<int> forward, backward;
                for (int v = 0; v < n; ++v) {
                    if (ws_.orderedMask.test(v) || ws_.setMask.test(v))
                        continue;
                    if (reachesFromOrdered(v) && reachesIntoSet(v))
                        forward.push_back(v);
                    else if (reachableFromSet(v) && reachesToOrdered(v))
                        backward.push_back(v);
                }
                absorbTopological(forward);
                absorbReverseTopological(backward);
            }
            // The recurrence itself. Members are ordered topologically
            // over the *zero-distance* subgraph (acyclic inside any
            // legal SCC): a member's already-placed in-SCC successors
            // are then reachable only through carried edges, whose
            // slack grows with the II — so the [early, late] window of
            // a both-sided member always opens up at a feasible II.
            // Plain criticality order could trap a member between two
            // placed members at a fixed zero-distance gap that no II
            // can widen.
            absorbZeroDistanceTopological(comp);
        }

        // Everything else: cones around the ordered set.
        for (;;) {
            std::vector<int> holes, descendants, ancestors;
            int remaining = 0;
            for (int v = 0; v < n; ++v) {
                if (ws_.orderedMask.test(v))
                    continue;
                ++remaining;
                const bool below = reachesFromOrdered(v);
                const bool above = reachesToOrdered(v);
                if (below && above)
                    holes.push_back(v);
                else if (below)
                    descendants.push_back(v);
                else if (above)
                    ancestors.push_back(v);
            }
            if (remaining == 0)
                return ws_.order;
            if (!holes.empty()) {
                // Only possible through not-yet-ordered recurrence
                // remnants; order them feasibly (producers first).
                absorbTopological(holes);
            } else if (!descendants.empty()) {
                absorbTopological(descendants);
            } else if (!ancestors.empty()) {
                absorbReverseTopological(ancestors);
            } else {
                // Disconnected from everything ordered: seed with the
                // most critical group (longest chain through it).
                int best = -1;
                for (int v = 0; v < n; ++v) {
                    if (ws_.orderedMask.test(v))
                        continue;
                    if (best < 0 ||
                        ws_.gAsap[std::size_t(v)] +
                                ws_.gHeight[std::size_t(v)] >
                            ws_.gAsap[std::size_t(best)] +
                                ws_.gHeight[std::size_t(best)]) {
                        best = v;
                    }
                }
                append(best);
            }
        }
    }

  private:
    bool
    isRecurrence(const int *comp, int size) const
    {
        if (size > 1)
            return true;
        const int v = comp[0];
        const auto &succs = ws_.succ[v];
        return std::find(succs.begin(), succs.end(), v) != succs.end() ||
               ws_.reach.test(v, v);
    }

    /** Some ordered group reaches v (a column of reach = a row of the
        transpose, intersected with the ordered mask — word-parallel). */
    bool
    reachesFromOrdered(int v) const
    {
        return ws_.reachT.intersects(v, ws_.orderedMask.words());
    }

    /** v reaches some ordered group. */
    bool
    reachesToOrdered(int v) const
    {
        return ws_.reach.intersects(v, ws_.orderedMask.words());
    }

    /** Some member of the current recurrence (setMask) reaches v. */
    bool
    reachableFromSet(int v) const
    {
        return ws_.reachT.intersects(v, ws_.setMask.words());
    }

    /** v reaches some member of the current recurrence (setMask). */
    bool
    reachesIntoSet(int v) const
    {
        return ws_.reach.intersects(v, ws_.setMask.words());
    }

    void
    append(int v)
    {
        ws_.orderedMask.set(v);
        ws_.order.push_back(v);
    }

    /**
     * Stable-topologically reorder recurrence components along
     * zero-distance reachability, keeping criticality order among
     * unrelated components. Always makes progress: a zero-distance
     * cycle between distinct components would be a zero-distance cycle
     * in the graph, which verifyDdg forbids.
     */
    void
    orderCompsByZeroDistance(
        std::vector<std::pair<long, std::vector<int>>> &comps) const
    {
        auto reaches0 = [&](const std::vector<int> &from,
                            const std::vector<int> &to) {
            for (const int a : from) {
                for (const int b : to) {
                    if (ws_.reach0.test(a, b))
                        return true;
                }
            }
            return false;
        };

        std::vector<std::pair<long, std::vector<int>>> ordered;
        std::vector<bool> taken(comps.size(), false);
        for (std::size_t step = 0; step < comps.size(); ++step) {
            int pick = -1;
            for (std::size_t i = 0; i < comps.size() && pick < 0; ++i) {
                if (taken[i])
                    continue;
                bool ready = true;
                for (std::size_t j = 0; j < comps.size(); ++j) {
                    if (j == i || taken[j])
                        continue;
                    if (reaches0(comps[j].second, comps[i].second)) {
                        ready = false;
                        break;
                    }
                }
                if (ready)
                    pick = int(i);
            }
            SWP_ASSERT(pick >= 0,
                       "zero-distance cycle between recurrences");
            taken[std::size_t(pick)] = true;
            ordered.push_back(std::move(comps[std::size_t(pick)]));
        }
        comps = std::move(ordered);
    }

    /** Critical groups first: ascending ASAP, descending height. */
    void
    sortByCriticality(std::vector<int> &set) const
    {
        std::stable_sort(set.begin(), set.end(), [&](int a, int b) {
            if (ws_.gAsap[std::size_t(a)] != ws_.gAsap[std::size_t(b)])
                return ws_.gAsap[std::size_t(a)] <
                       ws_.gAsap[std::size_t(b)];
            return ws_.gHeight[std::size_t(a)] >
                   ws_.gHeight[std::size_t(b)];
        });
    }

    /**
     * Append a recurrence component in topological order of its
     * internal zero-distance edges; ties by criticality.
     *
     * Readiness ("no unplaced in-set predecessor") is one word-parallel
     * intersection of the candidate's predecessor bit row with the
     * remaining-members mask. The condensed adjacency holds no
     * self-edges (group-internal edges are skipped when it is built),
     * so a member's own remaining bit can never veto it.
     */
    void
    absorbZeroDistanceTopological(std::vector<int> set)
    {
        sortByCriticality(set);
        ws_.remainMask.reset(ctx_.n);
        for (const int v : set)
            ws_.remainMask.set(v);
        for (std::size_t placed = 0; placed < set.size(); ++placed) {
            int pick = -1;
            for (const int v : set) {
                if (!ws_.remainMask.test(v))
                    continue;
                if (!ws_.pred0Mask.intersects(v, ws_.remainMask.words())) {
                    pick = v;
                    break;
                }
            }
            SWP_ASSERT(pick >= 0,
                       "zero-distance cycle inside a recurrence");
            ws_.remainMask.clear(pick);
            append(pick);
        }
    }

    /**
     * Append the whole set in topological order of its internal edges
     * (producers first); ties by criticality. Cycles inside the set
     * (unprocessed recurrence remnants) are broken by criticality.
     */
    void
    absorbTopological(std::vector<int> set)
    {
        sortByCriticality(set);
        ws_.remainMask.reset(ctx_.n);
        for (const int v : set)
            ws_.remainMask.set(v);
        for (std::size_t placed = 0; placed < set.size(); ++placed) {
            int pick = -1;
            for (const int v : set) {
                if (!ws_.remainMask.test(v))
                    continue;
                if (!ws_.predMask.intersects(v, ws_.remainMask.words())) {
                    pick = v;
                    break;
                }
            }
            if (pick < 0) {
                // Cycle: take the most critical remaining node.
                for (const int v : set) {
                    if (ws_.remainMask.test(v)) {
                        pick = v;
                        break;
                    }
                }
            }
            ws_.remainMask.clear(pick);
            append(pick);
        }
    }

    /**
     * Append the whole set in reverse topological order (consumers
     * first), so each member sees only successors when placed.
     */
    void
    absorbReverseTopological(std::vector<int> set)
    {
        // Latest groups first: descending ASAP, ascending height.
        std::stable_sort(set.begin(), set.end(), [&](int a, int b) {
            if (ws_.gAsap[std::size_t(a)] != ws_.gAsap[std::size_t(b)])
                return ws_.gAsap[std::size_t(a)] >
                       ws_.gAsap[std::size_t(b)];
            return ws_.gHeight[std::size_t(a)] <
                   ws_.gHeight[std::size_t(b)];
        });
        ws_.remainMask.reset(ctx_.n);
        for (const int v : set)
            ws_.remainMask.set(v);
        for (std::size_t placed = 0; placed < set.size(); ++placed) {
            int pick = -1;
            for (const int v : set) {
                if (!ws_.remainMask.test(v))
                    continue;
                if (!ws_.succMask.intersects(v, ws_.remainMask.words())) {
                    pick = v;
                    break;
                }
            }
            if (pick < 0) {
                for (const int v : set) {
                    if (ws_.remainMask.test(v)) {
                        pick = v;
                        break;
                    }
                }
            }
            ws_.remainMask.clear(pick);
            append(pick);
        }
    }

    HrmsContext &ctx_;
    SchedWorkspace &ws_;
};

/** The placement phase. */
std::optional<Schedule>
place(HrmsContext &ctx, const std::vector<int> &order)
{
    Schedule sched(ctx.ii, ctx.g.numNodes());
    Mrt &mrt = ctx.ws.mrt;
    mrt.reset(ctx.m, ctx.ii);

    for (const int gi : order) {
        const ComplexGroup &grp = ctx.groups.group(gi);

        long early = negInf;
        long late = posInf;
        bool hasPred = false;
        bool hasSucc = false;
        for (std::size_t i = 0; i < grp.members.size(); ++i) {
            const NodeId v = grp.members[i];
            const long off = grp.offsets[i];
            for (EdgeId e : ctx.g.inEdgeIds(v)) {
                const Edge &edge = ctx.g.edge(e);
                if (!edge.alive ||
                    ctx.groups.groupOf(edge.src) == gi ||
                    !sched.scheduled(edge.src)) {
                    continue;
                }
                hasPred = true;
                const long bound = sched.time(edge.src) +
                                   ctx.m.latency(ctx.g.node(edge.src).op) -
                                   long(ctx.ii) * edge.distance - off;
                early = std::max(early, bound);
            }
            for (EdgeId e : ctx.g.outEdgeIds(v)) {
                const Edge &edge = ctx.g.edge(e);
                if (!edge.alive ||
                    ctx.groups.groupOf(edge.dst) == gi ||
                    !sched.scheduled(edge.dst)) {
                    continue;
                }
                hasSucc = true;
                const long bound = sched.time(edge.dst) -
                                   ctx.m.latency(ctx.g.node(v).op) +
                                   long(ctx.ii) * edge.distance - off;
                late = std::min(late, bound);
            }
        }

        bool placed = false;
        if (hasPred && !hasSucc) {
            for (long t = early; t < early + ctx.ii; ++t) {
                if (mrt.placeGroup(ctx.g, grp, int(t), sched)) {
                    placed = true;
                    break;
                }
            }
        } else if (hasSucc && !hasPred) {
            for (long t = late; t > late - ctx.ii; --t) {
                if (mrt.placeGroup(ctx.g, grp, int(t), sched)) {
                    placed = true;
                    break;
                }
            }
        } else if (hasPred && hasSucc) {
            const long hi = std::min(late, early + ctx.ii - 1);
            for (long t = early; t <= hi; ++t) {
                if (mrt.placeGroup(ctx.g, grp, int(t), sched)) {
                    placed = true;
                    break;
                }
            }
        } else {
            const long start = ctx.ws.gAsap[std::size_t(gi)];
            for (long t = start; t < start + ctx.ii; ++t) {
                if (mrt.placeGroup(ctx.g, grp, int(t), sched)) {
                    placed = true;
                    break;
                }
            }
        }
        if (!placed) {
            // Read-only debug toggle; nothing in the process calls
            // setenv, so the getenv race mt-unsafe guards against
            // cannot arise.
            if (std::getenv("SWP_HRMS_DEBUG")) {  // NOLINT(concurrency-mt-unsafe)
                int placedCount = 0;
                for (NodeId v = 0; v < ctx.g.numNodes(); ++v)
                    placedCount += sched.scheduled(v);
                std::fprintf(stderr,
                             "HRMS fail ii=%d group=%d (%s) early=%ld "
                             "late=%ld hasPred=%d hasSucc=%d placed=%d/%d"
                             " members=%zu\n",
                             ctx.ii, gi,
                             ctx.g.node(grp.members[0]).name.c_str(),
                             early, late, int(hasPred), int(hasSucc),
                             placedCount, ctx.g.numNodes(),
                             grp.members.size());
                for (std::size_t i = 0; i < grp.members.size(); ++i) {
                    std::fprintf(stderr, "  member %s off=%d op=%s\n",
                                 ctx.g.node(grp.members[i]).name.c_str(),
                                 grp.offsets[i],
                                 opcodeName(ctx.g.node(
                                     grp.members[i]).op));
                }
            }
            return std::nullopt;
        }
    }

    sched.normalize();
    return sched;
}

} // namespace

std::optional<Schedule>
HrmsScheduler::scheduleAt(const Ddg &g, const Machine &m, int ii)
{
    if (g.numNodes() == 0)
        return std::nullopt;
    if (!iiFeasibleForRecurrences(g, m, ii, ws_.recurrences))
        return std::nullopt;

    HrmsContext ctx(g, m, ii, ws_);
    if (!groupsInternallyFeasible(g, m, ctx.groups, ii))
        return std::nullopt;

    Ordering ordering(ctx);
    const std::vector<int> &order = ordering.run();
    SWP_ASSERT(int(order.size()) == ctx.groups.numGroups(),
               "HRMS ordering lost groups");

    auto sched = place(ctx, order);
    if (!sched)
        return std::nullopt;

    std::string why;
    SWP_ASSERT(validateSchedule(g, m, *sched, &why),
               "HRMS produced an invalid schedule: ", why);
    return sched;
}

std::vector<int>
HrmsScheduler::orderingForTest(const Ddg &g, const Machine &m, int ii)
{
    HrmsContext ctx(g, m, ii, ws_);
    Ordering ordering(ctx);
    return ordering.run();
}

} // namespace swp
