#include "sched/hrms.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "sched/groups.hh"
#include "sched/mii.hh"
#include "sched/mrt.hh"
#include "sched/sched_util.hh"
#include "support/diag.hh"

namespace swp
{

namespace
{

constexpr long negInf = schedNegInf;
constexpr long posInf = schedPosInf;

/** Condensed graph over complex groups. */
struct GroupGraph
{
    int n = 0;
    std::vector<std::vector<int>> succ;
    std::vector<std::vector<int>> pred;
    /** Zero-distance-only adjacency (the acyclic intra-iteration part). */
    std::vector<std::vector<int>> pred0;
    std::vector<std::vector<int>> succ0;
    std::vector<std::vector<bool>> reach;
    /** Reachability through zero-distance edges only. */
    std::vector<std::vector<bool>> reach0;

    GroupGraph(const Ddg &g, const GroupSet &groups)
        : n(groups.numGroups()),
          succ(std::size_t(n)),
          pred(std::size_t(n)),
          pred0(std::size_t(n)),
          succ0(std::size_t(n))
    {
        auto addUnique = [](std::vector<int> &v, int x) {
            if (std::find(v.begin(), v.end(), x) == v.end())
                v.push_back(x);
        };
        for (EdgeId e = 0; e < g.numEdges(); ++e) {
            const Edge &edge = g.edge(e);
            if (!edge.alive)
                continue;
            const int a = groups.groupOf(edge.src);
            const int b = groups.groupOf(edge.dst);
            if (a == b)
                continue;
            addUnique(succ[std::size_t(a)], b);
            addUnique(pred[std::size_t(b)], a);
            if (edge.distance == 0) {
                addUnique(pred0[std::size_t(b)], a);
                addUnique(succ0[std::size_t(a)], b);
            }
        }
        reach = bfsReach(succ);
        reach0 = bfsReach(succ0);
    }

  private:
    std::vector<std::vector<bool>>
    bfsReach(const std::vector<std::vector<int>> &adj) const
    {
        std::vector<std::vector<bool>> out(
            static_cast<std::size_t>(n),
            std::vector<bool>(static_cast<std::size_t>(n)));
        for (int s = 0; s < n; ++s) {
            std::vector<int> stack = {s};
            while (!stack.empty()) {
                const int u = stack.back();
                stack.pop_back();
                for (int v : adj[std::size_t(u)]) {
                    if (!out[std::size_t(s)][std::size_t(v)]) {
                        out[std::size_t(s)][std::size_t(v)] = true;
                        stack.push_back(v);
                    }
                }
            }
        }
        return out;
    }
};

/** Strongly connected components of the group graph (iterative Tarjan). */
std::vector<std::vector<int>>
groupSccs(const GroupGraph &gg)
{
    std::vector<int> index(std::size_t(gg.n), -1);
    std::vector<int> lowlink(std::size_t(gg.n), 0);
    std::vector<bool> onStack(std::size_t(gg.n), false);
    std::vector<int> stack;
    std::vector<std::vector<int>> comps;
    int next = 0;

    struct Frame { int v; std::size_t i; };
    for (int root = 0; root < gg.n; ++root) {
        if (index[std::size_t(root)] >= 0)
            continue;
        std::vector<Frame> frames = {{root, 0}};
        index[std::size_t(root)] = lowlink[std::size_t(root)] = next++;
        stack.push_back(root);
        onStack[std::size_t(root)] = true;
        while (!frames.empty()) {
            Frame &f = frames.back();
            const auto &succs = gg.succ[std::size_t(f.v)];
            if (f.i < succs.size()) {
                const int w = succs[f.i++];
                if (index[std::size_t(w)] < 0) {
                    index[std::size_t(w)] = lowlink[std::size_t(w)] =
                        next++;
                    stack.push_back(w);
                    onStack[std::size_t(w)] = true;
                    frames.push_back({w, 0});
                } else if (onStack[std::size_t(w)]) {
                    lowlink[std::size_t(f.v)] = std::min(
                        lowlink[std::size_t(f.v)], index[std::size_t(w)]);
                }
            } else {
                const int v = f.v;
                frames.pop_back();
                if (!frames.empty()) {
                    lowlink[std::size_t(frames.back().v)] =
                        std::min(lowlink[std::size_t(frames.back().v)],
                                 lowlink[std::size_t(v)]);
                }
                if (lowlink[std::size_t(v)] == index[std::size_t(v)]) {
                    std::vector<int> comp;
                    int w;
                    do {
                        w = stack.back();
                        stack.pop_back();
                        onStack[std::size_t(w)] = false;
                        comp.push_back(w);
                    } while (w != v);
                    comps.push_back(std::move(comp));
                }
            }
        }
    }
    return comps;
}

/** Scheduling context shared by the ordering and placement phases. */
struct HrmsContext
{
    const Ddg &g;
    const Machine &m;
    const int ii;
    GroupSet groups;
    GroupGraph gg;
    NodePriorities prio;
    std::vector<long> gAsap;    ///< Anchor-relative group ASAP.
    std::vector<long> gHeight;  ///< Anchor-relative group height.

    HrmsContext(const Ddg &graph, const Machine &mach, int interval)
        : g(graph),
          m(mach),
          ii(interval),
          groups(graph, mach),
          gg(graph, groups),
          prio(graph, mach, interval),
          gAsap(std::size_t(groups.numGroups()), negInf),
          gHeight(std::size_t(groups.numGroups()), negInf)
    {
        for (NodeId v = 0; v < g.numNodes(); ++v) {
            const int gi = groups.groupOf(v);
            const long off = groups.offsetOf(v);
            gAsap[std::size_t(gi)] = std::max(
                gAsap[std::size_t(gi)], prio.asap[std::size_t(v)] - off);
            gHeight[std::size_t(gi)] = std::max(
                gHeight[std::size_t(gi)],
                prio.height[std::size_t(v)] + off);
        }
    }
};

/**
 * The pre-ordering phase: produce group indices in scheduling order.
 *
 * The scheduling phase relies on the HRMS invariant: when a group is
 * placed, its already-placed neighbours are only predecessors or only
 * successors (recurrence members excepted). Two placement "fronts"
 * meeting at an unordered node would leave it a window that no II can
 * satisfy, so the ordering must never create such junctions. We achieve
 * that by always absorbing whole *transitive cones* in one direction:
 *
 *  - recurrences first, most critical (highest RecMII) first, each
 *    preceded by the nodes on directed paths from the ordered set to it
 *    (topological order: they see only predecessors) and followed by
 *    the paths back (reverse topological: only successors); since
 *    distinct SCCs cannot have paths both ways, these sets are disjoint;
 *  - then, repeatedly: the full descendant cone of the ordered set in
 *    topological order, or the full ancestor cone in reverse topological
 *    order, or a fresh seed (the most critical remaining group).
 *
 * A node of a descendant cone cannot have an ordered successor (that
 * would make it simultaneously an ancestor, i.e. a node between two
 * ordered nodes, which the hole-absorption step has already taken), and
 * symmetrically for ancestor cones, so the invariant holds everywhere
 * outside recurrences.
 */
class Ordering
{
  public:
    explicit Ordering(HrmsContext &ctx) : ctx_(ctx) {}

    std::vector<int>
    run()
    {
        const int n = ctx_.gg.n;
        ordered_.assign(std::size_t(n), false);
        order_.clear();
        order_.reserve(std::size_t(n));

        // Recurrences first, most critical first (criticality = RecMII
        // of the component).
        auto comps = groupSccs(ctx_.gg);
        std::vector<std::pair<long, std::vector<int>>> recurrences;
        for (auto &comp : comps) {
            if (!isRecurrence(comp))
                continue;
            std::vector<NodeId> nodes;
            for (int gi : comp) {
                const auto &grp = ctx_.groups.group(gi);
                nodes.insert(nodes.end(), grp.members.begin(),
                             grp.members.end());
            }
            const long crit = recMiiOfComponent(ctx_.g, ctx_.m, nodes);
            recurrences.emplace_back(crit, std::move(comp));
        }
        std::stable_sort(recurrences.begin(), recurrences.end(),
                         [](const auto &a, const auto &b) {
                             if (a.first != b.first)
                                 return a.first > b.first;
                             return a.second.size() > b.second.size();
                         });

        // Constrain the criticality order to the topological order of
        // zero-distance reachability between components: if comp A has
        // a zero-distance path into comp B, A must be placed first.
        // Otherwise a member of A with a placed zero-distance successor
        // in B faces a fixed gap that no II can widen (carried edges
        // gain slack with II; zero-distance ones never do).
        orderCompsByZeroDistance(recurrences);

        for (const auto &[crit, comp] : recurrences) {
            (void)crit;
            if (!order_.empty()) {
                // Paths ordered-set -> recurrence: only-preds nodes.
                std::vector<int> forward, backward;
                for (int v = 0; v < n; ++v) {
                    if (ordered_[std::size_t(v)] || inSet(v, comp))
                        continue;
                    if (reachesFromOrdered(v) && reachesSet(v, comp))
                        forward.push_back(v);
                    else if (reaches(comp, v) && reachesToOrdered(v))
                        backward.push_back(v);
                }
                absorbTopological(forward);
                absorbReverseTopological(backward);
            }
            // The recurrence itself. Members are ordered topologically
            // over the *zero-distance* subgraph (acyclic inside any
            // legal SCC): a member's already-placed in-SCC successors
            // are then reachable only through carried edges, whose
            // slack grows with the II — so the [early, late] window of
            // a both-sided member always opens up at a feasible II.
            // Plain criticality order could trap a member between two
            // placed members at a fixed zero-distance gap that no II
            // can widen.
            absorbZeroDistanceTopological(comp);
        }

        // Everything else: cones around the ordered set.
        for (;;) {
            std::vector<int> holes, descendants, ancestors;
            int remaining = 0;
            for (int v = 0; v < n; ++v) {
                if (ordered_[std::size_t(v)])
                    continue;
                ++remaining;
                const bool below = reachesFromOrdered(v);
                const bool above = reachesToOrdered(v);
                if (below && above)
                    holes.push_back(v);
                else if (below)
                    descendants.push_back(v);
                else if (above)
                    ancestors.push_back(v);
            }
            if (remaining == 0)
                return order_;
            if (!holes.empty()) {
                // Only possible through not-yet-ordered recurrence
                // remnants; order them feasibly (producers first).
                absorbTopological(holes);
            } else if (!descendants.empty()) {
                absorbTopological(descendants);
            } else if (!ancestors.empty()) {
                absorbReverseTopological(ancestors);
            } else {
                // Disconnected from everything ordered: seed with the
                // most critical group (longest chain through it).
                int best = -1;
                for (int v = 0; v < n; ++v) {
                    if (ordered_[std::size_t(v)])
                        continue;
                    if (best < 0 ||
                        ctx_.gAsap[std::size_t(v)] +
                                ctx_.gHeight[std::size_t(v)] >
                            ctx_.gAsap[std::size_t(best)] +
                                ctx_.gHeight[std::size_t(best)]) {
                        best = v;
                    }
                }
                append(best);
            }
        }
    }

  private:
    bool
    isRecurrence(const std::vector<int> &comp) const
    {
        if (comp.size() > 1)
            return true;
        const int v = comp[0];
        const auto &succs = ctx_.gg.succ[std::size_t(v)];
        return std::find(succs.begin(), succs.end(), v) != succs.end() ||
               ctx_.gg.reach[std::size_t(v)][std::size_t(v)];
    }

    bool
    reachesFromOrdered(int v) const
    {
        for (int o : order_) {
            if (ctx_.gg.reach[std::size_t(o)][std::size_t(v)])
                return true;
        }
        return false;
    }

    bool
    reachesToOrdered(int v) const
    {
        for (int o : order_) {
            if (ctx_.gg.reach[std::size_t(v)][std::size_t(o)])
                return true;
        }
        return false;
    }

    bool
    reaches(const std::vector<int> &from, int v) const
    {
        for (int s : from) {
            if (ctx_.gg.reach[std::size_t(s)][std::size_t(v)])
                return true;
        }
        return false;
    }

    bool
    reachesSet(int v, const std::vector<int> &to) const
    {
        for (int t : to) {
            if (ctx_.gg.reach[std::size_t(v)][std::size_t(t)])
                return true;
        }
        return false;
    }

    void
    append(int v)
    {
        ordered_[std::size_t(v)] = true;
        order_.push_back(v);
    }

    bool
    inSet(int v, const std::vector<int> &set) const
    {
        return std::find(set.begin(), set.end(), v) != set.end();
    }

    /**
     * Stable-topologically reorder recurrence components along
     * zero-distance reachability, keeping criticality order among
     * unrelated components. Always makes progress: a zero-distance
     * cycle between distinct components would be a zero-distance cycle
     * in the graph, which verifyDdg forbids.
     */
    void
    orderCompsByZeroDistance(
        std::vector<std::pair<long, std::vector<int>>> &comps) const
    {
        auto reaches0 = [&](const std::vector<int> &from,
                            const std::vector<int> &to) {
            for (int a : from) {
                for (int b : to) {
                    if (ctx_.gg.reach0[std::size_t(a)][std::size_t(b)])
                        return true;
                }
            }
            return false;
        };

        std::vector<std::pair<long, std::vector<int>>> ordered;
        std::vector<bool> taken(comps.size(), false);
        for (std::size_t step = 0; step < comps.size(); ++step) {
            int pick = -1;
            for (std::size_t i = 0; i < comps.size() && pick < 0; ++i) {
                if (taken[i])
                    continue;
                bool ready = true;
                for (std::size_t j = 0; j < comps.size(); ++j) {
                    if (j == i || taken[j])
                        continue;
                    if (reaches0(comps[j].second, comps[i].second)) {
                        ready = false;
                        break;
                    }
                }
                if (ready)
                    pick = int(i);
            }
            SWP_ASSERT(pick >= 0,
                       "zero-distance cycle between recurrences");
            taken[std::size_t(pick)] = true;
            ordered.push_back(std::move(comps[std::size_t(pick)]));
        }
        comps = std::move(ordered);
    }

    /** Critical groups first: ascending ASAP, descending height. */
    void
    sortByCriticality(std::vector<int> &set) const
    {
        std::stable_sort(set.begin(), set.end(), [&](int a, int b) {
            if (ctx_.gAsap[std::size_t(a)] != ctx_.gAsap[std::size_t(b)])
                return ctx_.gAsap[std::size_t(a)] <
                       ctx_.gAsap[std::size_t(b)];
            return ctx_.gHeight[std::size_t(a)] >
                   ctx_.gHeight[std::size_t(b)];
        });
    }

    /**
     * Append a recurrence component in topological order of its
     * internal zero-distance edges; ties by criticality.
     */
    void
    absorbZeroDistanceTopological(std::vector<int> set)
    {
        sortByCriticality(set);
        std::vector<bool> inSetFlag(std::size_t(ctx_.gg.n), false);
        for (int v : set)
            inSetFlag[std::size_t(v)] = true;
        std::vector<bool> done(std::size_t(ctx_.gg.n), false);
        for (std::size_t placed = 0; placed < set.size(); ++placed) {
            int pick = -1;
            for (int v : set) {
                if (done[std::size_t(v)])
                    continue;
                bool ready = true;
                for (int p : ctx_.gg.pred0[std::size_t(v)]) {
                    if (inSetFlag[std::size_t(p)] &&
                        !done[std::size_t(p)] && p != v) {
                        ready = false;
                        break;
                    }
                }
                if (ready) {
                    pick = v;
                    break;
                }
            }
            SWP_ASSERT(pick >= 0,
                       "zero-distance cycle inside a recurrence");
            done[std::size_t(pick)] = true;
            append(pick);
        }
    }

    /**
     * Append the whole set in topological order of its internal edges
     * (producers first); ties by criticality. Cycles inside the set
     * (unprocessed recurrence remnants) are broken by criticality.
     */
    void
    absorbTopological(std::vector<int> set)
    {
        sortByCriticality(set);
        std::vector<bool> inSetFlag(std::size_t(ctx_.gg.n), false);
        for (int v : set)
            inSetFlag[std::size_t(v)] = true;
        std::vector<bool> done(std::size_t(ctx_.gg.n), false);
        for (std::size_t placed = 0; placed < set.size(); ++placed) {
            int pick = -1;
            for (int v : set) {
                if (done[std::size_t(v)])
                    continue;
                bool ready = true;
                for (int p : ctx_.gg.pred[std::size_t(v)]) {
                    if (inSetFlag[std::size_t(p)] &&
                        !done[std::size_t(p)] && p != v) {
                        ready = false;
                        break;
                    }
                }
                if (ready) {
                    pick = v;
                    break;
                }
            }
            if (pick < 0) {
                // Cycle: take the most critical remaining node.
                for (int v : set) {
                    if (!done[std::size_t(v)]) {
                        pick = v;
                        break;
                    }
                }
            }
            done[std::size_t(pick)] = true;
            append(pick);
        }
    }

    /**
     * Append the whole set in reverse topological order (consumers
     * first), so each member sees only successors when placed.
     */
    void
    absorbReverseTopological(std::vector<int> set)
    {
        // Latest groups first: descending ASAP, ascending height.
        std::stable_sort(set.begin(), set.end(), [&](int a, int b) {
            if (ctx_.gAsap[std::size_t(a)] != ctx_.gAsap[std::size_t(b)])
                return ctx_.gAsap[std::size_t(a)] >
                       ctx_.gAsap[std::size_t(b)];
            return ctx_.gHeight[std::size_t(a)] <
                   ctx_.gHeight[std::size_t(b)];
        });
        std::vector<bool> inSetFlag(std::size_t(ctx_.gg.n), false);
        for (int v : set)
            inSetFlag[std::size_t(v)] = true;
        std::vector<bool> done(std::size_t(ctx_.gg.n), false);
        for (std::size_t placed = 0; placed < set.size(); ++placed) {
            int pick = -1;
            for (int v : set) {
                if (done[std::size_t(v)])
                    continue;
                bool ready = true;
                for (int s : ctx_.gg.succ[std::size_t(v)]) {
                    if (inSetFlag[std::size_t(s)] &&
                        !done[std::size_t(s)] && s != v) {
                        ready = false;
                        break;
                    }
                }
                if (ready) {
                    pick = v;
                    break;
                }
            }
            if (pick < 0) {
                for (int v : set) {
                    if (!done[std::size_t(v)]) {
                        pick = v;
                        break;
                    }
                }
            }
            done[std::size_t(pick)] = true;
            append(pick);
        }
    }

    HrmsContext &ctx_;
    std::vector<bool> ordered_;
    std::vector<int> order_;
};

/** The placement phase. */
std::optional<Schedule>
place(HrmsContext &ctx, const std::vector<int> &order)
{
    Schedule sched(ctx.ii, ctx.g.numNodes());
    Mrt mrt(ctx.m, ctx.ii);

    for (int gi : order) {
        const ComplexGroup &grp = ctx.groups.group(gi);

        long early = negInf;
        long late = posInf;
        bool hasPred = false;
        bool hasSucc = false;
        for (std::size_t i = 0; i < grp.members.size(); ++i) {
            const NodeId v = grp.members[i];
            const long off = grp.offsets[i];
            for (EdgeId e : ctx.g.inEdges(v)) {
                const Edge &edge = ctx.g.edge(e);
                if (ctx.groups.groupOf(edge.src) == gi ||
                    !sched.scheduled(edge.src)) {
                    continue;
                }
                hasPred = true;
                const long bound = sched.time(edge.src) +
                                   ctx.m.latency(ctx.g.node(edge.src).op) -
                                   long(ctx.ii) * edge.distance - off;
                early = std::max(early, bound);
            }
            for (EdgeId e : ctx.g.outEdges(v)) {
                const Edge &edge = ctx.g.edge(e);
                if (ctx.groups.groupOf(edge.dst) == gi ||
                    !sched.scheduled(edge.dst)) {
                    continue;
                }
                hasSucc = true;
                const long bound = sched.time(edge.dst) -
                                   ctx.m.latency(ctx.g.node(v).op) +
                                   long(ctx.ii) * edge.distance - off;
                late = std::min(late, bound);
            }
        }

        bool placed = false;
        if (hasPred && !hasSucc) {
            for (long t = early; t < early + ctx.ii; ++t) {
                if (mrt.placeGroup(ctx.g, grp, int(t), sched)) {
                    placed = true;
                    break;
                }
            }
        } else if (hasSucc && !hasPred) {
            for (long t = late; t > late - ctx.ii; --t) {
                if (mrt.placeGroup(ctx.g, grp, int(t), sched)) {
                    placed = true;
                    break;
                }
            }
        } else if (hasPred && hasSucc) {
            const long hi = std::min(late, early + ctx.ii - 1);
            for (long t = early; t <= hi; ++t) {
                if (mrt.placeGroup(ctx.g, grp, int(t), sched)) {
                    placed = true;
                    break;
                }
            }
        } else {
            const long start = ctx.gAsap[std::size_t(gi)];
            for (long t = start; t < start + ctx.ii; ++t) {
                if (mrt.placeGroup(ctx.g, grp, int(t), sched)) {
                    placed = true;
                    break;
                }
            }
        }
        if (!placed) {
            if (std::getenv("SWP_HRMS_DEBUG")) {
                int placedCount = 0;
                for (NodeId v = 0; v < ctx.g.numNodes(); ++v)
                    placedCount += sched.scheduled(v);
                std::fprintf(stderr,
                             "HRMS fail ii=%d group=%d (%s) early=%ld "
                             "late=%ld hasPred=%d hasSucc=%d placed=%d/%d"
                             " members=%zu\n",
                             ctx.ii, gi,
                             ctx.g.node(grp.members[0]).name.c_str(),
                             early, late, int(hasPred), int(hasSucc),
                             placedCount, ctx.g.numNodes(),
                             grp.members.size());
                for (std::size_t i = 0; i < grp.members.size(); ++i) {
                    std::fprintf(stderr, "  member %s off=%d op=%s\n",
                                 ctx.g.node(grp.members[i]).name.c_str(),
                                 grp.offsets[i],
                                 opcodeName(ctx.g.node(
                                     grp.members[i]).op));
                }
            }
            return std::nullopt;
        }
    }

    sched.normalize();
    return sched;
}

} // namespace

std::optional<Schedule>
HrmsScheduler::scheduleAt(const Ddg &g, const Machine &m, int ii)
{
    if (g.numNodes() == 0)
        return std::nullopt;
    if (!iiFeasibleForRecurrences(g, m, ii))
        return std::nullopt;

    HrmsContext ctx(g, m, ii);
    if (!groupsInternallyFeasible(g, m, ctx.groups, ii))
        return std::nullopt;

    Ordering ordering(ctx);
    const std::vector<int> order = ordering.run();
    SWP_ASSERT(int(order.size()) == ctx.groups.numGroups(),
               "HRMS ordering lost groups");

    auto sched = place(ctx, order);
    if (!sched)
        return std::nullopt;

    std::string why;
    SWP_ASSERT(validateSchedule(g, m, *sched, &why),
               "HRMS produced an invalid schedule: ", why);
    return sched;
}

std::vector<int>
HrmsScheduler::orderingForTest(const Ddg &g, const Machine &m, int ii)
{
    HrmsContext ctx(g, m, ii);
    Ordering ordering(ctx);
    return ordering.run();
}

} // namespace swp
