/**
 * @file
 * The result of modulo scheduling: an issue cycle and functional unit for
 * every operation, at a given initiation interval.
 */

#ifndef SWP_SCHED_SCHEDULE_HH
#define SWP_SCHED_SCHEDULE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ir/ddg.hh"
#include "machine/machine.hh"

namespace swp
{

/**
 * A (possibly partial) modulo schedule.
 *
 * Each scheduled node has an absolute issue time (cycle within the
 * flat schedule of one iteration; may be negative while the scheduler
 * works bidirectionally) and the index of the functional unit it
 * executes on within its unit class. The kernel row of a node is
 * floorMod(time, II) and its stage floorDiv(time, II).
 */
class Schedule
{
  public:
    Schedule() = default;
    Schedule(int ii, int num_nodes);

    int ii() const { return ii_; }
    int numNodes() const { return int(time_.size()); }

    bool scheduled(NodeId n) const { return time_[std::size_t(n)] != unset; }
    int time(NodeId n) const { return time_[std::size_t(n)]; }
    int unit(NodeId n) const { return unit_[std::size_t(n)]; }

    void
    set(NodeId n, int t, int u)
    {
        time_[std::size_t(n)] = t;
        unit_[std::size_t(n)] = u;
    }

    void
    clear(NodeId n)
    {
        time_[std::size_t(n)] = unset;
        unit_[std::size_t(n)] = -1;
    }

    bool complete() const;

    /** Kernel row of a node: floorMod(time, II). */
    int row(NodeId n) const { return floorMod(time(n), ii_); }

    /** Pipeline stage of a node: floorDiv(time, II). */
    int stage(NodeId n) const { return floorDiv(time(n), ii_); }

    /** Number of stages (SC); schedule must be complete and normalized. */
    int stageCount() const;

    /** Largest issue time over scheduled nodes. */
    int maxTime() const;
    /** Smallest issue time over scheduled nodes. */
    int minTime() const;

    /** Shift all times so the earliest is cycle 0. */
    void normalize();

    /** Mathematical floored modulus (handles negative times). */
    static int
    floorMod(int a, int m)
    {
        const int r = a % m;
        return r < 0 ? r + m : r;
    }

    /** Mathematical floored division (handles negative times). */
    static int
    floorDiv(int a, int m)
    {
        return (a - floorMod(a, m)) / m;
    }

  private:
    static constexpr int unset = INT32_MIN;

    int ii_ = 0;
    std::vector<int> time_;
    std::vector<int> unit_;
};

/**
 * Check that a complete schedule obeys every dependence, fuses
 * non-spillable edges at their exact offset, and never oversubscribes a
 * functional unit (including non-pipelined occupancy).
 *
 * @param g    The loop.
 * @param m    The machine.
 * @param s    Complete schedule for g.
 * @param why  When non-null, receives the first violation found.
 */
bool validateSchedule(const Ddg &g, const Machine &m, const Schedule &s,
                      std::string *why = nullptr);

/** Render the flat schedule and kernel as text (for examples/debugging). */
std::string formatSchedule(const Ddg &g, const Machine &m,
                           const Schedule &s);

} // namespace swp

#endif // SWP_SCHED_SCHEDULE_HH
