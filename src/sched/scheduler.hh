/**
 * @file
 * Abstract modulo scheduler interface.
 *
 * The paper's techniques (increase-II and iterative spilling) are
 * scheduler-agnostic; every scheduler in this library implements this
 * interface and the register-constrained drivers work with any of them.
 */

#ifndef SWP_SCHED_SCHEDULER_HH
#define SWP_SCHED_SCHEDULER_HH

#include <memory>
#include <optional>
#include <string>

#include "ir/ddg.hh"
#include "machine/machine.hh"
#include "sched/schedule.hh"

namespace swp
{

/** A modulo scheduling algorithm. */
class ModuloScheduler
{
  public:
    virtual ~ModuloScheduler() = default;

    /** Algorithm name for reports. */
    virtual std::string name() const = 0;

    /**
     * Attempt to build a complete schedule at exactly the given II.
     * Complex groups (non-spillable fused edges) must be honoured.
     *
     * @return A complete, normalized schedule, or nullopt if the
     *         algorithm fails at this II.
     */
    virtual std::optional<Schedule> scheduleAt(const Ddg &g,
                                               const Machine &m,
                                               int ii) = 0;
};

/** Available scheduling algorithms. */
enum class SchedulerKind
{
    Hrms,  ///< Hypernode Reduction Modulo Scheduling (register sensitive).
    Ims,   ///< Rau's Iterative Modulo Scheduling (register insensitive).
};

/** Factory. */
std::unique_ptr<ModuloScheduler> makeScheduler(SchedulerKind kind);

/** Printable name of a scheduler kind. */
const char *schedulerKindName(SchedulerKind kind);

} // namespace swp

#endif // SWP_SCHED_SCHEDULER_HH
