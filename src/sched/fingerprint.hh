/**
 * @file
 * Structural fingerprints of the inputs scheduling depends on.
 *
 * The batch driver memoizes per-(loop, machine) results — MII/RecMII
 * bounds and whole (II, scheduler) probe outcomes — across hundreds of
 * thousands of grid cells. Graphs are rebuilt or transformed between
 * cells and machine names are not unique, so the memo keys are
 * 64-bit FNV-1a fingerprints of the *content* both computations
 * actually read: node opcodes, live-edge structure (endpoints, kind,
 * distance, fusion) and the machine's resource/latency description.
 * Names of individual nodes, spill annotations and invariant details
 * are deliberately excluded: no scheduler reads them.
 *
 * Hash equality is not graph equality; the paired *FingerprintEquivalent
 * predicates compare exactly the fingerprinted structure so memo hits
 * can be verified (in debug builds) and a collision fails loudly
 * instead of silently returning another loop's result.
 */

#ifndef SWP_SCHED_FINGERPRINT_HH
#define SWP_SCHED_FINGERPRINT_HH

#include <cstdint>
#include <string>

#include "ir/ddg.hh"
#include "machine/machine.hh"

namespace swp
{

/**
 * Key verification default for fingerprint-keyed caches: in debug
 * builds every hit structurally compares the probed graph/machine
 * against the ones that created the entry, so a 64-bit fingerprint
 * collision panics instead of silently returning another loop's
 * result. Release builds trust the hash.
 */
#ifdef NDEBUG
inline constexpr bool kVerifyMemoKeys = false;
#else
inline constexpr bool kVerifyMemoKeys = true;
#endif

/** Incremental FNV-1a hasher for memo keys. */
class Fingerprint
{
  public:
    void
    mix(std::uint64_t v)
    {
        hash_ ^= v;
        hash_ *= 0x100000001b3ull;
    }

    void
    mix(const std::string &s)
    {
        mix(std::uint64_t(s.size()));
        for (const char c : s)
            mix(std::uint64_t(static_cast<unsigned char>(c)));
    }

    std::uint64_t value() const { return hash_; }

  private:
    std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

/** Fingerprint of the scheduling-relevant structure of a graph. */
std::uint64_t graphFingerprint(const Ddg &g);

/**
 * Machine identity for the memos. Names are not unique (two Machines
 * can share one), so the resource description the schedulers and bound
 * computations actually depend on is hashed.
 */
std::uint64_t machineFingerprint(const Machine &m);

/**
 * True when the two graphs agree on every field graphFingerprint
 * covers (so a memo entry for one is valid for the other). Shared
 * copy-on-write storage short-circuits to true.
 */
bool graphsFingerprintEquivalent(const Ddg &a, const Ddg &b);

/** Field-by-field counterpart of machineFingerprint. */
bool machinesFingerprintEquivalent(const Machine &a, const Machine &b);

} // namespace swp

#endif // SWP_SCHED_FINGERPRINT_HH
