#include "sched/ii_search.hh"

#include <algorithm>

#include "support/diag.hh"

namespace swp
{

int
defaultMaxIi(const Ddg &g, const Machine &m)
{
    // Serial execution of one iteration is an upper bound on any
    // sensible II; add slack for fused-group rigidity.
    int total = 2;
    for (NodeId n = 0; n < g.numNodes(); ++n) {
        total += std::max(m.latency(g.node(n).op),
                          m.occupancy(g.node(n).op));
    }
    return 2 * total + 32;
}

IiSearchResult
searchIi(ModuloScheduler &sched, const Ddg &g, const Machine &m,
         int start_ii, int max_ii)
{
    if (max_ii <= 0)
        max_ii = defaultMaxIi(g, m);
    SWP_ASSERT(start_ii >= 1, "II search must start at a positive II");

    IiSearchResult result;
    result.startIi = start_ii;
    for (int ii = start_ii; ii <= max_ii; ++ii) {
        ++result.attempts;
        if (auto s = sched.scheduleAt(g, m, ii)) {
            result.sched = std::move(s);
            return result;
        }
    }
    return result;
}

} // namespace swp
