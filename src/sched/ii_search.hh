/**
 * @file
 * Linear II search: try successive initiation intervals until the core
 * scheduler produces a valid schedule. Exposes the attempt count so the
 * evaluation can report the scheduling-effort savings of the "start from
 * the last II tried" pruning heuristic (Section 4.5).
 */

#ifndef SWP_SCHED_II_SEARCH_HH
#define SWP_SCHED_II_SEARCH_HH

#include <optional>

#include "sched/scheduler.hh"

namespace swp
{

/** Outcome of an II search. */
struct IiSearchResult
{
    std::optional<Schedule> sched;
    /** Number of (II, schedule) attempts performed, failures included. */
    int attempts = 0;
    /** First II tried. */
    int startIi = 0;
};

/**
 * Try II = start_ii, start_ii+1, ... max_ii until the scheduler
 * succeeds.
 *
 * @param sched    Core scheduling algorithm.
 * @param g        The loop.
 * @param m        The machine.
 * @param start_ii First II to try (usually MII, or the pruned start).
 * @param max_ii   Inclusive upper limit; 0 selects a generous default
 *                 derived from the sequential schedule length.
 */
IiSearchResult searchIi(ModuloScheduler &sched, const Ddg &g,
                        const Machine &m, int start_ii, int max_ii = 0);

/** Default II upper bound: every op serialized, plus slack. */
int defaultMaxIi(const Ddg &g, const Machine &m);

} // namespace swp

#endif // SWP_SCHED_II_SEARCH_HH
