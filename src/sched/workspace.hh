/**
 * @file
 * Reusable scheduling workspace.
 *
 * A register-constrained pipeline run issues many scheduleAt(ii) probes
 * against the same scheduler object (the spill driver's II searches,
 * best-of-all's binary search), and the batch driver reuses one
 * scheduler per worker thread across all its jobs. SchedWorkspace holds
 * every sizable scratch structure those probes need — the MRT, the
 * ASAP/height priority buffers, the HRMS group-graph adjacency and
 * bit-packed reachability matrices, the ordering and eviction buffers —
 * so a probe clears them (assign / reset, which recycle capacity)
 * instead of reallocating them. With one exception the state carries no
 * semantic information across probes — every probe rebuilds its content
 * from scratch, so schedules are bit-identical to a freshly constructed
 * scheduler's. The exception is the RecurrenceCache, which reuses the
 * cyclic-SCC decomposition across probes keyed by the structural
 * (graph, machine) fingerprints: like the driver's memos it trusts the
 * 64-bit hash in release builds and structurally verifies every reuse
 * in debug builds (a collision panics instead of answering for another
 * loop).
 */

#ifndef SWP_SCHED_WORKSPACE_HH
#define SWP_SCHED_WORKSPACE_HH

#include <vector>

#include "ir/ddg.hh"
#include "sched/groups.hh"
#include "sched/mii.hh"
#include "sched/mrt.hh"
#include "sched/sched_util.hh"
#include "support/bitmatrix.hh"

namespace swp
{

/** Adjacency lists whose per-row storage survives reset(). */
struct ScratchAdj
{
    std::vector<std::vector<int>> rows;

    void
    reset(int n)
    {
        if (int(rows.size()) < n)
            rows.resize(std::size_t(n));
        for (int i = 0; i < n; ++i)
            rows[std::size_t(i)].clear();
    }

    std::vector<int> &operator[](int i) { return rows[std::size_t(i)]; }
    const std::vector<int> &
    operator[](int i) const
    {
        return rows[std::size_t(i)];
    }
};

/** Per-scheduler scratch buffers; cleared, not reallocated, per probe. */
struct SchedWorkspace
{
    /** @name Shared by both schedulers */
    /// @{
    Mrt mrt;
    NodePriorities prio;
    /** Complex-group partition, rebuilt per probe on recycled storage. */
    GroupSet groups;
    /** Anchor-relative group ASAP / height. */
    std::vector<long> gAsap, gHeight;
    /** Cyclic-SCC decomposition, reused across same-loop II probes. */
    RecurrenceCache recurrences;
    /// @}

    /** @name HRMS condensed group graph */
    /// @{
    ScratchAdj succ, pred, succ0, pred0;
    /** Bit-row mirrors of pred / succ / pred0, so the absorb loops test
        readiness word-parallel instead of scanning adjacency lists. */
    BitMatrix predMask, succMask, pred0Mask;
    /** Group-pair dedup while building the adjacency (all distances /
        zero-distance only). */
    BitMatrix edgeSeen, edgeSeen0;
    /** Transitive reachability over succ / its transpose / succ0. */
    BitMatrix reach, reachT, reach0;
    std::vector<int> dfsStack;
    /// @}

    /** @name HRMS pre-ordering */
    /// @{
    std::vector<int> order;
    BitRow orderedMask, setMask;
    /** Absorb-set members not yet appended to the order. */
    BitRow remainMask;
    /// @}

    /** @name IMS placement loop */
    /// @{
    std::vector<char> placed;
    std::vector<long> lastTime;
    std::vector<NodeId> blockers;
    std::vector<int> evict;
    /// @}
};

} // namespace swp

#endif // SWP_SCHED_WORKSPACE_HH
