#include "sched/ims.hh"

#include <algorithm>

#include "sched/groups.hh"
#include "sched/mii.hh"
#include "sched/mrt.hh"
#include "sched/sched_util.hh"
#include "support/diag.hh"

namespace swp
{

std::optional<Schedule>
ImsScheduler::scheduleAt(const Ddg &g, const Machine &m, int ii)
{
    if (g.numNodes() == 0)
        return std::nullopt;
    if (!iiFeasibleForRecurrences(g, m, ii, ws_.recurrences))
        return std::nullopt;

    ws_.groups.reset(g, m);
    const GroupSet &groups = ws_.groups;
    if (!groupsInternallyFeasible(g, m, groups, ii))
        return std::nullopt;

    ws_.prio.compute(g, m, ii);
    const NodePriorities &prio = ws_.prio;
    const int ng = groups.numGroups();

    // Group priority: the tallest member, anchor-adjusted.
    std::vector<long> &gHeight = ws_.gHeight;
    std::vector<long> &gAsap = ws_.gAsap;
    gHeight.assign(std::size_t(ng), schedNegInf);
    gAsap.assign(std::size_t(ng), schedNegInf);
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        const int gi = groups.groupOf(v);
        gHeight[std::size_t(gi)] = std::max(
            gHeight[std::size_t(gi)],
            prio.height[std::size_t(v)] + groups.offsetOf(v));
        gAsap[std::size_t(gi)] = std::max(
            gAsap[std::size_t(gi)],
            prio.asap[std::size_t(v)] - groups.offsetOf(v));
    }

    Schedule sched(ii, g.numNodes());
    Mrt &mrt = ws_.mrt;
    mrt.reset(m, ii);

    std::vector<char> &placed = ws_.placed;
    std::vector<long> &lastTime = ws_.lastTime;
    placed.assign(std::size_t(ng), 0);
    lastTime.assign(std::size_t(ng), schedNegInf);
    int unplacedCount = ng;
    long budget = long(budgetRatio_) * std::max(ng, 8);

    auto pickNext = [&]() {
        int best = -1;
        for (int gi = 0; gi < ng; ++gi) {
            if (placed[std::size_t(gi)])
                continue;
            if (best < 0 ||
                gHeight[std::size_t(gi)] > gHeight[std::size_t(best)] ||
                (gHeight[std::size_t(gi)] == gHeight[std::size_t(best)] &&
                 gi < best)) {
                best = gi;
            }
        }
        return best;
    };

    auto unplaceGroup = [&](int gi) {
        mrt.removeGroup(g, groups.group(gi), sched);
        for (NodeId v : groups.group(gi).members)
            sched.clear(v);
        placed[std::size_t(gi)] = 0;
        ++unplacedCount;
    };

    while (unplacedCount > 0) {
        if (budget-- <= 0)
            return std::nullopt;

        const int gi = pickNext();
        const ComplexGroup &grp = groups.group(gi);

        // Earliest anchor time w.r.t. scheduled predecessors.
        long early = gAsap[std::size_t(gi)];
        for (std::size_t i = 0; i < grp.members.size(); ++i) {
            const NodeId v = grp.members[i];
            const long off = grp.offsets[i];
            for (EdgeId e : g.inEdgeIds(v)) {
                const Edge &edge = g.edge(e);
                if (!edge.alive ||
                    groups.groupOf(edge.src) == gi ||
                    !sched.scheduled(edge.src)) {
                    continue;
                }
                early = std::max(
                    early, sched.time(edge.src) +
                               m.latency(g.node(edge.src).op) -
                               long(ii) * edge.distance - off);
            }
        }

        // Try the II-wide conflict-free window first.
        long chosen = schedNegInf;
        for (long t = early; t < early + ii; ++t) {
            if (mrt.canPlaceGroup(g, grp, int(t))) {
                chosen = t;
                break;
            }
        }

        if (chosen == schedNegInf) {
            // Forced placement: never earlier than last time + 1, which
            // guarantees forward progress.
            chosen = std::max(early, lastTime[std::size_t(gi)] + 1);

            // Evict every group holding a resource this group needs.
            std::vector<int> &evict = ws_.evict;
            evict.clear();
            for (std::size_t i = 0; i < grp.members.size(); ++i) {
                const NodeId v = grp.members[i];
                const long t = chosen + grp.offsets[i];
                mrt.conflicts(g.node(v).op, int(t), ws_.blockers);
                for (NodeId blocker : ws_.blockers) {
                    const int bg = groups.groupOf(blocker);
                    if (bg != gi &&
                        std::find(evict.begin(), evict.end(), bg) ==
                            evict.end()) {
                        evict.push_back(bg);
                    }
                }
            }
            for (int bg : evict)
                unplaceGroup(bg);
        }

        const bool ok = mrt.placeGroup(g, grp, int(chosen), sched);
        if (!ok) {
            // Even after eviction the slot may be infeasible (occupancy
            // longer than II interfering with itself); give up.
            return std::nullopt;
        }
        placed[std::size_t(gi)] = 1;
        --unplacedCount;
        lastTime[std::size_t(gi)] = chosen;

        // Evict scheduled successors whose dependence is now violated.
        for (std::size_t i = 0; i < grp.members.size(); ++i) {
            const NodeId v = grp.members[i];
            const long tv = chosen + grp.offsets[i];
            for (EdgeId e : g.outEdgeIds(v)) {
                const Edge &edge = g.edge(e);
                if (!edge.alive)
                    continue;
                const int dg = groups.groupOf(edge.dst);
                if (dg == gi || !sched.scheduled(edge.dst))
                    continue;
                const long bound = tv + m.latency(g.node(v).op) -
                                   long(ii) * edge.distance;
                if (sched.time(edge.dst) < bound)
                    unplaceGroup(dg);
            }
        }
    }

    sched.normalize();
    std::string why;
    SWP_ASSERT(validateSchedule(g, m, sched, &why),
               "IMS produced an invalid schedule: ", why);
    return sched;
}

} // namespace swp
