#include "sched/sched_util.hh"

#include "sched/groups.hh"

namespace swp
{

void
NodePriorities::compute(const Ddg &g, const Machine &m, int ii)
{
    asap.assign(std::size_t(g.numNodes()), 0);
    height.assign(std::size_t(g.numNodes()), 0);
    const int n = g.numNodes();
    for (int iter = 0; iter < n; ++iter) {
        bool changed = false;
        for (EdgeId e = 0; e < g.numEdges(); ++e) {
            const Edge &edge = g.edge(e);
            if (!edge.alive)
                continue;
            const long w = m.latency(g.node(edge.src).op) -
                           long(ii) * edge.distance;
            if (asap[std::size_t(edge.src)] + w >
                asap[std::size_t(edge.dst)]) {
                asap[std::size_t(edge.dst)] =
                    asap[std::size_t(edge.src)] + w;
                changed = true;
            }
            if (height[std::size_t(edge.dst)] + w >
                height[std::size_t(edge.src)]) {
                height[std::size_t(edge.src)] =
                    height[std::size_t(edge.dst)] + w;
                changed = true;
            }
        }
        if (!changed)
            break;
    }
}

bool
groupsInternallyFeasible(const Ddg &g, const Machine &m,
                         const GroupSet &groups, int ii)
{
    for (EdgeId e = 0; e < g.numEdges(); ++e) {
        const Edge &edge = g.edge(e);
        if (!edge.alive)
            continue;
        if (groups.groupOf(edge.src) != groups.groupOf(edge.dst))
            continue;
        if (edge.src == edge.dst)
            continue;
        const int lat = m.latency(g.node(edge.src).op);
        const int gap =
            groups.offsetOf(edge.dst) - groups.offsetOf(edge.src);
        if (gap < lat - ii * edge.distance)
            return false;
        if (edge.nonSpillable && gap != fusedDelayOf(g, m, edge))
            return false;
    }
    return true;
}

} // namespace swp
