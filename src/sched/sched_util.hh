/**
 * @file
 * Helpers shared by the modulo scheduling algorithms: longest-path
 * priorities at a given II and complex-group feasibility checks.
 */

#ifndef SWP_SCHED_SCHED_UTIL_HH
#define SWP_SCHED_SCHED_UTIL_HH

#include <limits>
#include <vector>

#include "ir/ddg.hh"
#include "machine/machine.hh"
#include "sched/groups.hh"

namespace swp
{

constexpr long schedNegInf = std::numeric_limits<long>::min() / 4;
constexpr long schedPosInf = std::numeric_limits<long>::max() / 4;

/**
 * Per-node ASAP and height longest paths with edge weight
 * latency(src) - II * distance. Only meaningful when II >= RecMII
 * (no positive cycles); computed by Bellman-Ford-style relaxation.
 */
struct NodePriorities
{
    std::vector<long> asap;
    std::vector<long> height;

    /** Empty; compute() fills it (workspace reuse across probes). */
    NodePriorities() = default;

    NodePriorities(const Ddg &g, const Machine &m, int ii)
    {
        compute(g, m, ii);
    }

    /** Recompute for (g, m, ii); the buffers are reused, not grown. */
    void compute(const Ddg &g, const Machine &m, int ii);
};

/**
 * Check dependence constraints between members of the same complex
 * group, whose relative offsets are fixed: every internal edge must be
 * satisfiable at this II, and fused edges must sit at their exact
 * offset. Self edges are excluded (covered by RecMII feasibility).
 */
bool groupsInternallyFeasible(const Ddg &g, const Machine &m,
                              const GroupSet &groups, int ii);

} // namespace swp

#endif // SWP_SCHED_SCHED_UTIL_HH
