/**
 * @file
 * Lower bounds on the initiation interval (Section 2.2).
 *
 * MII = max(ResMII, RecMII). ResMII counts functional-unit occupancy
 * (non-pipelined units contribute their full latency, and any single
 * non-pipelined operation forces II >= its occupancy). RecMII is the
 * maximum over dependence cycles of ceil(sum(latency) / sum(distance)),
 * computed exactly by binary search with positive-cycle detection —
 * decomposed per strongly connected component, so each Bellman-Ford
 * sweep is restricted to one component's local edges and a component
 * whose cycles already fit the running maximum is dismissed with a
 * single feasibility check.
 */

#ifndef SWP_SCHED_MII_HH
#define SWP_SCHED_MII_HH

#include <memory>

#include "ir/ddg.hh"
#include "machine/machine.hh"

namespace swp
{

/** Resource-constrained lower bound on II. */
int resMii(const Ddg &g, const Machine &m);

/** Recurrence-constrained lower bound on II (1 if the graph is acyclic). */
int recMii(const Ddg &g, const Machine &m);

/** RecMII restricted to a node subset (used to rank recurrences). */
int recMiiOfComponent(const Ddg &g, const Machine &m,
                      const std::vector<NodeId> &nodes);

/** MII = max(ResMII, RecMII). */
int mii(const Ddg &g, const Machine &m);

/**
 * True if scheduling the graph at the given II admits no positive
 * dependence cycle, i.e. II >= RecMII. Exposed for tests.
 */
bool iiFeasibleForRecurrences(const Ddg &g, const Machine &m, int ii);

/**
 * Cached cyclic-SCC decomposition of one (graph, machine) pair, keyed
 * by the structural fingerprints, so consecutive feasibility probes of
 * the same loop — an II search issues many — pay only the
 * component-local Bellman-Ford sweeps, not the decomposition. The
 * schedulers keep one in their workspace. Debug builds verify every
 * reuse structurally, so a fingerprint collision panics instead of
 * answering for another loop.
 */
class RecurrenceCache
{
  public:
    RecurrenceCache();
    ~RecurrenceCache();
    RecurrenceCache(RecurrenceCache &&) noexcept;
    RecurrenceCache &operator=(RecurrenceCache &&) noexcept;

  private:
    friend bool iiFeasibleForRecurrences(const Ddg &g, const Machine &m,
                                         int ii, RecurrenceCache &cache);
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/** iiFeasibleForRecurrences with the decomposition reused via `cache`. */
bool iiFeasibleForRecurrences(const Ddg &g, const Machine &m, int ii,
                              RecurrenceCache &cache);

} // namespace swp

#endif // SWP_SCHED_MII_HH
