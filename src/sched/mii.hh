/**
 * @file
 * Lower bounds on the initiation interval (Section 2.2).
 *
 * MII = max(ResMII, RecMII). ResMII counts functional-unit occupancy
 * (non-pipelined units contribute their full latency, and any single
 * non-pipelined operation forces II >= its occupancy). RecMII is the
 * maximum over dependence cycles of ceil(sum(latency) / sum(distance)),
 * computed exactly by binary search with positive-cycle detection.
 */

#ifndef SWP_SCHED_MII_HH
#define SWP_SCHED_MII_HH

#include "ir/ddg.hh"
#include "machine/machine.hh"

namespace swp
{

/** Resource-constrained lower bound on II. */
int resMii(const Ddg &g, const Machine &m);

/** Recurrence-constrained lower bound on II (1 if the graph is acyclic). */
int recMii(const Ddg &g, const Machine &m);

/** RecMII restricted to a node subset (used to rank recurrences). */
int recMiiOfComponent(const Ddg &g, const Machine &m,
                      const std::vector<NodeId> &nodes);

/** MII = max(ResMII, RecMII). */
int mii(const Ddg &g, const Machine &m);

/**
 * True if scheduling the graph at the given II admits no positive
 * dependence cycle, i.e. II >= RecMII. Exposed for tests.
 */
bool iiFeasibleForRecurrences(const Ddg &g, const Machine &m, int ii);

} // namespace swp

#endif // SWP_SCHED_MII_HH
