#include "sched/schedule.hh"

#include <algorithm>
#include <map>
#include <sstream>

#include "sched/groups.hh"
#include "support/diag.hh"
#include "support/strutil.hh"

namespace swp
{

Schedule::Schedule(int ii, int num_nodes)
    : ii_(ii),
      time_(std::size_t(num_nodes), unset),
      unit_(std::size_t(num_nodes), -1)
{
    SWP_ASSERT(ii >= 1, "initiation interval must be positive, got ", ii);
}

bool
Schedule::complete() const
{
    for (int t : time_) {
        if (t == unset)
            return false;
    }
    return !time_.empty();
}

int
Schedule::stageCount() const
{
    SWP_ASSERT(complete(), "stageCount on incomplete schedule");
    int max_stage = 0;
    for (int n = 0; n < numNodes(); ++n)
        max_stage = std::max(max_stage, stage(n));
    const int min_stage = floorDiv(minTime(), ii_);
    return max_stage - min_stage + 1;
}

int
Schedule::maxTime() const
{
    int best = INT32_MIN;
    for (int t : time_) {
        if (t != unset)
            best = std::max(best, t);
    }
    return best;
}

int
Schedule::minTime() const
{
    int best = INT32_MAX;
    for (int t : time_) {
        if (t != unset)
            best = std::min(best, t);
    }
    return best;
}

void
Schedule::normalize()
{
    const int lo = minTime();
    if (lo == INT32_MAX || lo == 0)
        return;
    for (int &t : time_) {
        if (t != unset)
            t -= lo;
    }
}

bool
validateSchedule(const Ddg &g, const Machine &m, const Schedule &s,
                 std::string *why)
{
    auto fail = [&](const std::string &msg) {
        if (why)
            *why = msg;
        return false;
    };

    if (s.numNodes() != g.numNodes())
        return fail("schedule size does not match graph");
    if (!s.complete())
        return fail("schedule is incomplete");

    const int ii = s.ii();

    // Dependence constraints.
    for (EdgeId e = 0; e < g.numEdges(); ++e) {
        const Edge &edge = g.edge(e);
        if (!edge.alive)
            continue;
        const int lat = m.latency(g.node(edge.src).op);
        const int earliest = s.time(edge.src) + lat - ii * edge.distance;
        if (s.time(edge.dst) < earliest) {
            return fail(strprintf(
                "dependence %s -> %s violated: t=%d < %d",
                g.node(edge.src).name.c_str(), g.node(edge.dst).name.c_str(),
                s.time(edge.dst), earliest));
        }
        if (edge.nonSpillable) {
            const int delay = fusedDelayOf(g, m, edge);
            if (s.time(edge.dst) != s.time(edge.src) + delay) {
                return fail(strprintf(
                    "fused edge %s -> %s not at exact offset %d",
                    g.node(edge.src).name.c_str(),
                    g.node(edge.dst).name.c_str(), delay));
            }
        }
    }

    // Resource constraints: each (class, unit, kernel row) has at most
    // one occupant, counting non-pipelined occupancy.
    std::map<std::tuple<int, int, int>, NodeId> slots;
    for (NodeId n = 0; n < g.numNodes(); ++n) {
        const Opcode op = g.node(n).op;
        const int cls = m.classOf(op);
        const int u = s.unit(n);
        if (u < 0 || u >= m.unitsInClass(cls)) {
            return fail(strprintf("node %s has bad unit %d",
                                  g.node(n).name.c_str(), u));
        }
        const int occ = m.occupancy(op);
        if (occ > ii) {
            return fail(strprintf(
                "node %s occupies its unit %d cycles > II=%d",
                g.node(n).name.c_str(), occ, ii));
        }
        for (int c = 0; c < occ; ++c) {
            const int row = Schedule::floorMod(s.time(n) + c, ii);
            const auto key = std::make_tuple(cls, u, row);
            const auto [it, inserted] = slots.emplace(key, n);
            if (!inserted) {
                return fail(strprintf(
                    "resource conflict on %s unit %d row %d: %s vs %s",
                    m.className(cls).c_str(), u, row,
                    g.node(it->second).name.c_str(),
                    g.node(n).name.c_str()));
            }
        }
    }
    return true;
}

std::string
formatSchedule(const Ddg &g, const Machine &m, const Schedule &s)
{
    std::ostringstream os;
    os << "II=" << s.ii() << " SC=" << s.stageCount() << "\n";

    std::vector<NodeId> order(std::size_t(g.numNodes()));
    for (NodeId n = 0; n < g.numNodes(); ++n)
        order[std::size_t(n)] = n;
    std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
        if (s.time(a) != s.time(b))
            return s.time(a) < s.time(b);
        return a < b;
    });

    os << "flat schedule (one iteration):\n";
    for (NodeId n : order) {
        os << strprintf("  cycle %3d  %-10s %-5s unit %d (stage %d)\n",
                        s.time(n), g.node(n).name.c_str(),
                        opcodeName(g.node(n).op), s.unit(n), s.stage(n));
    }

    os << "kernel (rows x stages):\n";
    for (int row = 0; row < s.ii(); ++row) {
        os << strprintf("  row %2d:", row);
        for (NodeId n : order) {
            if (s.row(n) == row) {
                os << " " << g.node(n).name << "[" << s.stage(n) << "]";
            }
        }
        os << "\n";
    }
    (void)m;
    return os.str();
}

} // namespace swp
