/**
 * @file
 * Complex-operation groups (Section 4.3).
 *
 * Operations connected by non-spillable edges (spill loads/stores and
 * their consumers/producers) must be scheduled simultaneously as a single
 * "complex operation": the consumer is placed exactly latency(producer)
 * cycles after the producer. This prevents a register-insensitive
 * scheduler from re-growing the lifetime that was just spilled, which is
 * what guarantees convergence of the iterative spilling process.
 */

#ifndef SWP_SCHED_GROUPS_HH
#define SWP_SCHED_GROUPS_HH

#include <vector>

#include "ir/ddg.hh"
#include "machine/machine.hh"

namespace swp
{

/**
 * Exact issue distance a fused edge enforces: its explicit fusedDelay,
 * or the producer's latency when unset.
 */
int fusedDelayOf(const Ddg &g, const Machine &m, const Edge &edge);

/** One schedulable unit: a set of nodes with fixed relative offsets. */
struct ComplexGroup
{
    /** Members in increasing offset order (ties broken by node id). */
    std::vector<NodeId> members;
    /** Cycle offset of each member relative to the group anchor. */
    std::vector<int> offsets;

    bool singleton() const { return members.size() == 1; }
};

/**
 * Partition of the graph into complex groups.
 *
 * Nodes not touched by non-spillable edges form singleton groups.
 * Offsets are derived from fused-edge latencies; a consistency failure
 * (two fused paths implying different offsets, or a fused cycle) is a
 * spiller bug and panics.
 */
class GroupSet
{
  public:
    /** An empty set; reset() must run before any other member. */
    GroupSet() = default;

    GroupSet(const Ddg &g, const Machine &m) { reset(g, m); }

    /**
     * Rebind to a (graph, machine) pair. All storage — the groups,
     * their member/offset vectors, and the union-find/BFS scratch — is
     * recycled, so a workspace-resident GroupSet stops allocating once
     * it has seen the largest loop of a batch.
     */
    void reset(const Ddg &g, const Machine &m);

    int numGroups() const { return numGroups_; }
    const ComplexGroup &group(int gi) const
    {
        return groups_[std::size_t(gi)];
    }

    /** Group index containing a node. */
    int groupOf(NodeId n) const { return groupOf_[std::size_t(n)]; }

    /** Offset of a node inside its group. */
    int offsetOf(NodeId n) const { return offsetOf_[std::size_t(n)]; }

  private:
    /** First numGroups_ entries are live; the tail keeps its capacity. */
    std::vector<ComplexGroup> groups_;
    int numGroups_ = 0;
    std::vector<int> groupOf_;
    std::vector<int> offsetOf_;
    /** @name reset() scratch */
    /// @{
    std::vector<int> parent_, rootGroup_;
    std::vector<char> known_;
    std::vector<EdgeId> fused_;
    std::vector<NodeId> frontier_, next_;
    /// @}
};

} // namespace swp

#endif // SWP_SCHED_GROUPS_HH
