#include "sched/scheduler.hh"

#include "sched/hrms.hh"
#include "sched/ims.hh"
#include "support/diag.hh"

namespace swp
{

std::unique_ptr<ModuloScheduler>
makeScheduler(SchedulerKind kind)
{
    switch (kind) {
      case SchedulerKind::Hrms:
        return std::make_unique<HrmsScheduler>();
      case SchedulerKind::Ims:
        return std::make_unique<ImsScheduler>();
    }
    SWP_PANIC("unknown scheduler kind ", int(kind));
}

const char *
schedulerKindName(SchedulerKind kind)
{
    switch (kind) {
      case SchedulerKind::Hrms: return "HRMS";
      case SchedulerKind::Ims: return "IMS";
    }
    SWP_PANIC("unknown scheduler kind ", int(kind));
}

} // namespace swp
