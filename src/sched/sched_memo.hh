/**
 * @file
 * Memoization of whole (graph, machine, II, scheduler) probe outcomes.
 *
 * The experiment grids revisit the same scheduling probes constantly:
 * best-of-all's binary search re-asks IIs the preceding spill rounds
 * already tried on the same loop, and every register-file sweep re-runs
 * identical (loop, II) probes cell after cell. ScheduleMemo caches the
 * outcome of ModuloScheduler::scheduleAt — including the *negative*
 * outcome "no schedule exists at this II", which is exactly what the
 * failed low-II probes of a linear or binary II search produce — keyed
 * by structural fingerprints, so a probe is scheduled at most once per
 * process no matter how many grid cells ask for it.
 *
 * Memoization never changes results: schedulers are pure functions of
 * (graph, machine, II) — the driver's thread-count determinism already
 * depends on that — and the drivers count their `attempts` per probe
 * *request*, so suite output is byte-identical with the memo on or off.
 */

#ifndef SWP_SCHED_SCHED_MEMO_HH
#define SWP_SCHED_SCHED_MEMO_HH

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <tuple>

#include "ir/ddg.hh"
#include "machine/machine.hh"
#include "sched/fingerprint.hh"
#include "sched/schedule.hh"
#include "sched/scheduler.hh"
#include "support/singleflight.hh"

namespace swp
{

/**
 * Thread-safe, single-flight cache of scheduleAt outcomes.
 *
 * capacity == 0 (the default) keeps every probe for the life of the
 * process — the right trade for one-shot grid evaluations. A positive
 * capacity bounds the memo with LRU eviction (the `--memo-cap` flag of
 * the harnesses) for long-lived services: an evicted probe is simply
 * re-scheduled on its next request, so results are byte-identical at
 * any cap, and the stats() eviction counter reports the churn.
 *
 * The backing store is striped by key fingerprint (threadsHint sizes
 * the stripe array) so a full worker pool hammering the memo doesn't
 * serialize on one mutex; stats() aggregates the stripes under one
 * consistent snapshot.
 */
class ScheduleMemo
{
  public:
    using Stats = SingleFlightStats;

    explicit ScheduleMemo(bool verifyKeys = kVerifyMemoKeys,
                          std::size_t capacity = 0, int threadsHint = 1)
        : verifyKeys_(verifyKeys), cache_(capacity, threadsHint)
    {
    }

    /** The LRU size cap (0 = unbounded). */
    std::size_t capacity() const { return cache_.capacity(); }

    /** How many lock stripes back the memo. */
    std::size_t stripeCount() const { return cache_.stripeCount(); }

    /**
     * inner.scheduleAt(g, m, ii), memoized. The first caller of a key
     * runs the scheduler; concurrent callers of the same key wait for
     * it (single-flight) and later callers hit the cache. Safe to call
     * concurrently with distinct `inner` instances of the same kind:
     * the result must only depend on (kind, g, m, ii), which every
     * scheduler in this library guarantees.
     */
    std::optional<Schedule> scheduleAt(ModuloScheduler &inner,
                                       SchedulerKind kind, const Ddg &g,
                                       const Machine &m, int ii);

    /** requests/computes/entries; computes == entries means no rework. */
    Stats stats() const { return cache_.stats(); }

  private:
    /** (graph fp, machine fp, II, scheduler kind). */
    using Key = std::tuple<std::uint64_t, std::uint64_t, int, int>;

    struct CachedProbe
    {
        std::optional<Schedule> sched;
        /** Key-verification payload (copy-on-write: the copies are O(1)
            until the source graph is transformed by a later round). */
        std::optional<Ddg> graph;
        std::optional<Machine> machine;
    };

    bool verifyKeys_;
    StripedSingleFlightCache<Key, CachedProbe> cache_;
};

/**
 * ModuloScheduler adapter routing every probe through a ScheduleMemo.
 * The strategy drivers build one around the context's scheduler (see
 * resolveScheduler), which is how the memo reaches every II search
 * without the search code knowing about it.
 */
class MemoizedScheduler final : public ModuloScheduler
{
  public:
    MemoizedScheduler(ScheduleMemo &memo, ModuloScheduler &inner,
                      SchedulerKind kind)
        : memo_(memo), inner_(inner), kind_(kind)
    {
    }

    std::string name() const override { return inner_.name(); }

    std::optional<Schedule>
    scheduleAt(const Ddg &g, const Machine &m, int ii) override
    {
        return memo_.scheduleAt(inner_, kind_, g, m, ii);
    }

  private:
    ScheduleMemo &memo_;
    ModuloScheduler &inner_;
    SchedulerKind kind_;
};

} // namespace swp

#endif // SWP_SCHED_SCHED_MEMO_HH
