/**
 * @file
 * Modulo reservation table (MRT).
 *
 * The MRT tracks, for every kernel row (cycle mod II) and every physical
 * functional unit, which operation occupies it. Pipelined units are
 * occupied for one row per operation; non-pipelined units (div/sqrt in
 * the paper's machines) are occupied for latency consecutive rows.
 * Placement also supports complex groups: several nodes at fixed offsets
 * placed and released atomically.
 *
 * Occupancy is stored twice, for different access patterns:
 *  - a per-(class, row) uint64_t busy mask (bit u = unit u busy), so the
 *    hot canPlace/findUnit path is an OR over the op's rows, a mask
 *    test, and count-trailing-zeros — no occupant scan. One word per
 *    row caps machines at 64 units per unit class; reset() rejects
 *    wider machines loudly (the paper's widest configuration has 2);
 *  - an occupant node per (class, unit, row), the bookkeeping side used
 *    by remove()'s debug check and conflicts()'s blocker reporting.
 *
 * The table is designed for reuse across scheduling probes: reset()
 * rebinds it to a (machine, II) pair while recycling both stores, so a
 * scheduler-owned Mrt allocates only when a probe needs more rows than
 * any probe before it.
 */

#ifndef SWP_SCHED_MRT_HH
#define SWP_SCHED_MRT_HH

#include <cstdint>
#include <vector>

#include "ir/ddg.hh"
#include "machine/machine.hh"
#include "sched/groups.hh"
#include "sched/schedule.hh"

namespace swp
{

/** Modulo reservation table for one (graph, machine, II) triple. */
class Mrt
{
  public:
    /** An empty table; reset() must run before any other member. */
    Mrt() = default;

    Mrt(const Machine &m, int ii) { reset(m, ii); }

    /** Rebind to (machine, II) with every slot free; storage is reused. */
    void reset(const Machine &m, int ii);

    int ii() const { return ii_; }

    /**
     * Try to find a free unit for op at absolute time t.
     * @return unit index within the class, or -1 when fully busy.
     */
    int findUnit(Opcode op, int t) const;

    /** True if the op can be placed at time t. */
    bool canPlace(Opcode op, int t) const { return findUnit(op, t) >= 0; }

    /**
     * Reserve a unit for node n (opcode op) at time t.
     * @return the unit index used, or -1 when no unit is free.
     */
    int place(Opcode op, int t, NodeId n);

    /** Release the reservation of node n (opcode op) at time t, unit u. */
    void remove(Opcode op, int t, NodeId n, int u);

    /**
     * True if a whole complex group anchored at time t0 fits
     * (all members simultaneously).
     */
    bool canPlaceGroup(const Ddg &g, const ComplexGroup &grp, int t0) const;

    /**
     * Atomically place a complex group anchored at t0, recording each
     * member's time and unit into the schedule.
     * @return false (and leave the table untouched) if any member fails.
     */
    bool placeGroup(const Ddg &g, const ComplexGroup &grp, int t0,
                    Schedule &sched);

    /** Release a previously placed group using the schedule's units. */
    void removeGroup(const Ddg &g, const ComplexGroup &grp,
                     const Schedule &sched);

    /**
     * Occupants that block op at time t (each at most once), appended
     * to `out` after clearing it. Used by iterative modulo scheduling
     * to decide what to evict; the out-parameter form lets the hot
     * caller reuse one buffer across every eviction query. `out` stays
     * empty when the op's occupancy exceeds II (findUnit can never
     * place it, so no eviction helps), mirroring findUnit's rejection.
     */
    void conflicts(Opcode op, int t, std::vector<NodeId> &out) const;

    /** Allocating convenience form of conflicts(). */
    std::vector<NodeId>
    conflicts(Opcode op, int t) const
    {
        std::vector<NodeId> out;
        conflicts(op, t, out);
        return out;
    }

  private:
    int cell(int cls, int unit, int row) const;
    int maskBase(int cls) const;
    /** OR of the busy masks over the op's occupancy rows. */
    std::uint64_t busyOver(const std::vector<std::uint64_t> &busy, int cls,
                           int t, int occ) const;

    const Machine *m_ = nullptr;
    int ii_ = 0;
    /** Occupant node per (class, unit, row); -1 when free. */
    std::vector<NodeId> occupant_;
    /** Busy units per (class, row); bit u set = unit u occupied. */
    std::vector<std::uint64_t> busy_;
    /** Flattened occupant offsets per class (numClasses + 1 entries). */
    std::vector<int> classBase_;
    /** Scratch copy of busy_ for the group self-competition check. */
    mutable std::vector<std::uint64_t> groupScratch_;
    /** Unit indices while a group placement is in flight. */
    std::vector<int> unitScratch_;
};

} // namespace swp

#endif // SWP_SCHED_MRT_HH
