/**
 * @file
 * Modulo reservation table (MRT).
 *
 * The MRT tracks, for every kernel row (cycle mod II) and every physical
 * functional unit, which operation occupies it. Pipelined units are
 * occupied for one row per operation; non-pipelined units (div/sqrt in
 * the paper's machines) are occupied for latency consecutive rows.
 * Placement also supports complex groups: several nodes at fixed offsets
 * placed and released atomically.
 */

#ifndef SWP_SCHED_MRT_HH
#define SWP_SCHED_MRT_HH

#include <vector>

#include "ir/ddg.hh"
#include "machine/machine.hh"
#include "sched/groups.hh"
#include "sched/schedule.hh"

namespace swp
{

/** Modulo reservation table for one (graph, machine, II) triple. */
class Mrt
{
  public:
    Mrt(const Machine &m, int ii);

    int ii() const { return ii_; }

    /**
     * Try to find a free unit for op at absolute time t.
     * @return unit index within the class, or -1 when fully busy.
     */
    int findUnit(Opcode op, int t) const;

    /** True if the op can be placed at time t. */
    bool canPlace(Opcode op, int t) const { return findUnit(op, t) >= 0; }

    /**
     * Reserve a unit for node n (opcode op) at time t.
     * @return the unit index used, or -1 when no unit is free.
     */
    int place(Opcode op, int t, NodeId n);

    /** Release the reservation of node n (opcode op) at time t, unit u. */
    void remove(Opcode op, int t, NodeId n, int u);

    /**
     * True if a whole complex group anchored at time t0 fits
     * (all members simultaneously).
     */
    bool canPlaceGroup(const Ddg &g, const ComplexGroup &grp, int t0) const;

    /**
     * Atomically place a complex group anchored at t0, recording each
     * member's time and unit into the schedule.
     * @return false (and leave the table untouched) if any member fails.
     */
    bool placeGroup(const Ddg &g, const ComplexGroup &grp, int t0,
                    Schedule &sched);

    /** Release a previously placed group using the schedule's units. */
    void removeGroup(const Ddg &g, const ComplexGroup &grp,
                     const Schedule &sched);

    /**
     * Occupants that block op at time t (each at most once). Used by
     * iterative modulo scheduling to decide what to evict. Empty when
     * the op's occupancy exceeds II (findUnit can never place it, so
     * no eviction helps), mirroring findUnit's rejection.
     */
    std::vector<NodeId> conflicts(Opcode op, int t) const;

  private:
    int cell(FuClass fu, int unit, int row) const;

    const Machine &m_;
    int ii_;
    /** Occupant node per (class, unit, row); -1 when free. */
    std::vector<NodeId> occupant_;
    /** Flattened offsets per class. */
    int classBase_[numFuClasses + 1];
};

} // namespace swp

#endif // SWP_SCHED_MRT_HH
