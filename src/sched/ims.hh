/**
 * @file
 * Iterative Modulo Scheduling (IMS).
 *
 * Reimplementation of B. R. Rau's scheduler (MICRO-27, 1994): a
 * backtracking modulo scheduler that picks the highest-priority
 * unscheduled operation (priority = height in the dependence graph),
 * places it in the first conflict-free slot of its II-wide window, and
 * when no slot exists forces a placement, evicting the operations it
 * displaces. A budget bounds the total number of placements.
 *
 * IMS is register-insensitive; the paper uses a scheduler of this class
 * in [21] to show the constrained-scheduling heuristics are independent
 * of the core scheduler, and so do we. Complex groups are scheduled and
 * evicted atomically.
 */

#ifndef SWP_SCHED_IMS_HH
#define SWP_SCHED_IMS_HH

#include "sched/scheduler.hh"
#include "sched/workspace.hh"

namespace swp
{

/** Rau's iterative modulo scheduler; see file comment. */
class ImsScheduler : public ModuloScheduler
{
  public:
    /** @param budget_ratio Placement budget as a multiple of |V|. */
    explicit ImsScheduler(int budget_ratio = 6)
        : budgetRatio_(budget_ratio)
    {}

    std::string name() const override { return "IMS"; }

    std::optional<Schedule> scheduleAt(const Ddg &g, const Machine &m,
                                       int ii) override;

  private:
    int budgetRatio_;
    /** Scratch reused across probes; carries no cross-probe state. */
    SchedWorkspace ws_;
};

} // namespace swp

#endif // SWP_SCHED_IMS_HH
