#include "sched/acyclic.hh"

#include <algorithm>
#include <vector>

#include "sched/groups.hh"
#include "support/diag.hh"

namespace swp
{

namespace
{

/** Reservation table over a linear (non-modulo) horizon. */
class LinearRt
{
  public:
    LinearRt(const Machine &m, int horizon)
        : m_(m), horizon_(horizon),
          busy_(std::size_t(m.numClasses()))
    {
        for (int cls = 0; cls < m.numClasses(); ++cls) {
            busy_[std::size_t(cls)].assign(
                std::size_t(m.unitsInClass(cls)) * std::size_t(horizon),
                false);
        }
    }

    /** Find a unit free at [t, t+occ) for op, or -1. */
    int
    findUnit(Opcode op, int t) const
    {
        const int cls = m_.classOf(op);
        const int units = m_.unitsInClass(cls);
        const int occ = m_.occupancy(op);
        if (t < 0 || t + occ > horizon_)
            return -1;
        for (int u = 0; u < units; ++u) {
            bool free = true;
            for (int c = 0; c < occ && free; ++c)
                free = !busy_[std::size_t(cls)][idx(u, t + c)];
            if (free)
                return u;
        }
        return -1;
    }

    void
    reserve(Opcode op, int t, int u)
    {
        const int cls = m_.classOf(op);
        const int occ = m_.occupancy(op);
        for (int c = 0; c < occ; ++c)
            busy_[std::size_t(cls)][idx(u, t + c)] = true;
    }

  private:
    std::size_t
    idx(int unit, int t) const
    {
        return std::size_t(unit) * std::size_t(horizon_) + std::size_t(t);
    }

    const Machine &m_;
    int horizon_;
    std::vector<std::vector<bool>> busy_;
};

} // namespace

Schedule
scheduleAcyclic(const Ddg &g, const Machine &m)
{
    const int n = g.numNodes();
    SWP_ASSERT(n > 0, "cannot schedule an empty loop");

    // Horizon: everything serialized, with slack for fused staggering.
    int horizon = 8;
    for (NodeId v = 0; v < n; ++v) {
        horizon += 2 * std::max(m.latency(g.node(v).op),
                                m.occupancy(g.node(v).op));
    }

    // Complex groups are placed atomically, so the list scheduling
    // works on groups, in a topological order of the intra-iteration
    // (distance 0) dependences between groups.
    const GroupSet groups(g, m);
    const int ng = groups.numGroups();

    std::vector<int> indeg(std::size_t(ng), 0);
    for (EdgeId e = 0; e < g.numEdges(); ++e) {
        const Edge &edge = g.edge(e);
        if (!edge.alive || edge.distance != 0)
            continue;
        const int a = groups.groupOf(edge.src);
        const int b = groups.groupOf(edge.dst);
        if (a != b)
            ++indeg[std::size_t(b)];
    }
    std::vector<int> ready;
    for (int gi = 0; gi < ng; ++gi) {
        if (indeg[std::size_t(gi)] == 0)
            ready.push_back(gi);
    }

    LinearRt rt(m, horizon);
    std::vector<int> time(std::size_t(n), -1);
    std::vector<int> unit(std::size_t(n), -1);

    std::size_t cursor = 0;
    int scheduledGroups = 0;
    while (cursor < ready.size()) {
        const int gi = ready[cursor++];
        const ComplexGroup &grp = groups.group(gi);

        // Earliest anchor satisfying the distance-0 dependences from
        // outside the group.
        int earliest = 0;
        for (std::size_t i = 0; i < grp.members.size(); ++i) {
            const NodeId v = grp.members[i];
            for (EdgeId e : g.inEdges(v)) {
                const Edge &edge = g.edge(e);
                if (edge.distance != 0 ||
                    groups.groupOf(edge.src) == gi) {
                    continue;
                }
                const int bound = time[std::size_t(edge.src)] +
                                  m.latency(g.node(edge.src).op) -
                                  grp.offsets[i];
                earliest = std::max(earliest, bound);
            }
        }

        // First anchor where every member fits (simulated on a scratch
        // copy because members may compete for the same units).
        bool placed = false;
        for (int t0 = earliest; t0 < horizon && !placed; ++t0) {
            LinearRt scratch(rt);
            std::vector<int> units(grp.members.size(), -1);
            bool ok = true;
            for (std::size_t i = 0; i < grp.members.size() && ok; ++i) {
                const Opcode op = g.node(grp.members[i]).op;
                const int u = scratch.findUnit(op, t0 + grp.offsets[i]);
                if (u < 0) {
                    ok = false;
                } else {
                    scratch.reserve(op, t0 + grp.offsets[i], u);
                    units[i] = u;
                }
            }
            if (ok) {
                for (std::size_t i = 0; i < grp.members.size(); ++i) {
                    const NodeId v = grp.members[i];
                    time[std::size_t(v)] = t0 + grp.offsets[i];
                    unit[std::size_t(v)] = units[i];
                    rt.reserve(g.node(v).op, time[std::size_t(v)],
                               units[i]);
                }
                placed = true;
            }
        }
        SWP_ASSERT(placed, "acyclic scheduler exceeded its horizon on ",
                   g.name());
        ++scheduledGroups;

        for (std::size_t i = 0; i < grp.members.size(); ++i) {
            for (EdgeId e : g.outEdges(grp.members[i])) {
                const Edge &edge = g.edge(e);
                if (edge.distance != 0)
                    continue;
                const int b = groups.groupOf(edge.dst);
                if (b != gi && --indeg[std::size_t(b)] == 0)
                    ready.push_back(b);
            }
        }
    }
    SWP_ASSERT(scheduledGroups == ng,
               "distance-0 cycle across groups in ", g.name());

    // II = makespan: results of iteration i are complete before
    // iteration i+1 issues anything, so every loop-carried dependence
    // and every resource constraint is satisfied with stage count 1.
    int makespan = 1;
    for (NodeId v = 0; v < n; ++v) {
        makespan = std::max(makespan,
                            time[std::size_t(v)] +
                                std::max(m.latency(g.node(v).op),
                                         m.occupancy(g.node(v).op)));
    }

    Schedule sched(makespan, n);
    for (NodeId v = 0; v < n; ++v)
        sched.set(v, time[std::size_t(v)], unit[std::size_t(v)]);

    std::string why;
    SWP_ASSERT(validateSchedule(g, m, sched, &why),
               "acyclic scheduler produced an invalid schedule: ", why);
    return sched;
}

} // namespace swp
