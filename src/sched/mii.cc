#include "sched/mii.hh"

#include <algorithm>
#include <optional>
#include <vector>

#include "ir/graph_algo.hh"
#include "sched/fingerprint.hh"
#include "support/diag.hh"

namespace swp
{

int
resMii(const Ddg &g, const Machine &m)
{
    // Total unit occupancy per class.
    std::vector<long> occupancy(std::size_t(m.numClasses()), 0);
    int maxSingleOccupancy = 1;
    for (NodeId n = 0; n < g.numNodes(); ++n) {
        const Opcode op = g.node(n).op;
        occupancy[std::size_t(m.classOf(op))] += m.occupancy(op);
        // A non-pipelined op re-needs its unit after II cycles, so the
        // pattern only fits if II >= occupancy.
        maxSingleOccupancy = std::max(maxSingleOccupancy, m.occupancy(op));
    }

    long bound = 1;
    for (int cls = 0; cls < m.numClasses(); ++cls) {
        const long units = m.unitsInClass(cls);
        if (occupancy[std::size_t(cls)] == 0)
            continue;
        SWP_ASSERT(units > 0, "ops of class ", m.className(cls),
                   " but machine has no such unit");
        bound = std::max(bound,
                         (occupancy[std::size_t(cls)] + units - 1) / units);
    }
    return int(std::max<long>(bound, maxSingleOccupancy));
}

namespace
{

/**
 * One cyclic region (an SCC with a cycle, or an explicit node subset)
 * with its internal live edges renumbered to local indices: the whole
 * RecMII computation for the region touches only these edges, so one
 * Bellman-Ford sweep costs O(region) instead of O(graph).
 */
struct CyclicRegion
{
    struct LocalEdge
    {
        int src = 0;
        int dst = 0;
        long latency = 0;
        long distance = 0;
    };

    int numNodes = 0;
    std::vector<LocalEdge> edges;
    /** Sum of member latencies: RecMII of the region is below this, so
        latencySum + 1 is always a feasible II for it. */
    long latencySum = 0;
};

/**
 * Bellman-Ford positive-cycle detection restricted to one region, with
 * edge weight latency - II * distance (longest-path relaxation from a
 * virtual source connected to every member with weight 0). A positive
 * cycle exists iff some dependence cycle of the region needs more than
 * II cycles per iteration.
 */
bool
hasPositiveCycle(const CyclicRegion &r, long ii, std::vector<long> &dist)
{
    dist.assign(std::size_t(r.numNodes), 0);
    for (int iter = 0; iter < r.numNodes; ++iter) {
        bool changed = false;
        for (const CyclicRegion::LocalEdge &e : r.edges) {
            const long w = e.latency - ii * e.distance;
            if (dist[std::size_t(e.src)] + w > dist[std::size_t(e.dst)]) {
                dist[std::size_t(e.dst)] = dist[std::size_t(e.src)] + w;
                changed = true;
            }
        }
        if (!changed)
            return false;
    }
    return true;
}

/**
 * Smallest II at which the region admits no positive cycle, given that
 * `lo` does admit one (binary search; `lo` is infeasible throughout).
 */
long
searchRegionRecMii(const CyclicRegion &r, long lo, std::vector<long> &dist)
{
    long hi = r.latencySum + 1;
    while (lo + 1 < hi) {
        const long mid = lo + (hi - lo) / 2;
        if (hasPositiveCycle(r, mid, dist))
            lo = mid;
        else
            hi = mid;
    }
    return hi;
}

/**
 * Decompose the graph into its cyclic SCCs over live edges. Every
 * dependence cycle lies inside exactly one of the returned regions, so
 * RecMII questions decompose into per-region questions.
 */
std::vector<CyclicRegion>
cyclicRegions(const Ddg &g, const Machine &m)
{
    const int n = g.numNodes();
    std::vector<std::vector<int>> adj;
    adj.resize(std::size_t(n));
    for (EdgeId e = 0; e < g.numEdges(); ++e) {
        const Edge &edge = g.edge(e);
        if (edge.alive)
            adj[std::size_t(edge.src)].push_back(edge.dst);
    }
    const AdjScc scc = stronglyConnectedComponents(adj);

    std::vector<bool> cyclic(std::size_t(scc.numComps()), false);
    for (int c = 0; c < scc.numComps(); ++c)
        cyclic[std::size_t(c)] = scc.compSize(c) > 1;
    for (EdgeId e = 0; e < g.numEdges(); ++e) {
        const Edge &edge = g.edge(e);
        if (edge.alive && edge.src == edge.dst)
            cyclic[std::size_t(scc.compOf[std::size_t(edge.src)])] = true;
    }

    std::vector<int> regionOf(std::size_t(scc.numComps()), -1);
    std::vector<int> localId(std::size_t(n), -1);
    std::vector<CyclicRegion> regions;
    for (int c = 0; c < scc.numComps(); ++c) {
        if (!cyclic[std::size_t(c)])
            continue;
        regionOf[std::size_t(c)] = int(regions.size());
        regions.emplace_back();
        CyclicRegion &r = regions.back();
        const int *members = scc.compNodes(c);
        for (int i = 0; i < scc.compSize(c); ++i) {
            const int v = members[i];
            localId[std::size_t(v)] = r.numNodes++;
            r.latencySum += m.latency(g.node(v).op);
        }
    }
    for (EdgeId e = 0; e < g.numEdges(); ++e) {
        const Edge &edge = g.edge(e);
        if (!edge.alive)
            continue;
        const int c = scc.compOf[std::size_t(edge.src)];
        if (c != scc.compOf[std::size_t(edge.dst)] ||
            regionOf[std::size_t(c)] < 0) {
            continue;
        }
        regions[std::size_t(regionOf[std::size_t(c)])].edges.push_back(
            {localId[std::size_t(edge.src)], localId[std::size_t(edge.dst)],
             m.latency(g.node(edge.src).op), long(edge.distance)});
    }
    return regions;
}

/** One region over an explicit node subset (its internal live edges). */
CyclicRegion
subsetRegion(const Ddg &g, const Machine &m,
             const std::vector<NodeId> &nodes)
{
    std::vector<int> localId(std::size_t(g.numNodes()), -1);
    CyclicRegion r;
    for (const NodeId v : nodes) {
        if (localId[std::size_t(v)] >= 0)
            continue;
        localId[std::size_t(v)] = r.numNodes++;
        r.latencySum += m.latency(g.node(v).op);
    }
    for (EdgeId e = 0; e < g.numEdges(); ++e) {
        const Edge &edge = g.edge(e);
        if (!edge.alive || localId[std::size_t(edge.src)] < 0 ||
            localId[std::size_t(edge.dst)] < 0) {
            continue;
        }
        r.edges.push_back(
            {localId[std::size_t(edge.src)], localId[std::size_t(edge.dst)],
             m.latency(g.node(edge.src).op), long(edge.distance)});
    }
    return r;
}

} // namespace

int
recMii(const Ddg &g, const Machine &m)
{
    // RecMII = max over cyclic SCCs of the component's RecMII. Each
    // component binary-searches independently over component-local
    // edges, and a component whose cycles already fit the best bound so
    // far is dismissed with a single feasibility check (early exit)
    // instead of a full search.
    std::vector<long> dist;
    long best = 1;
    for (const CyclicRegion &r : cyclicRegions(g, m)) {
        if (!hasPositiveCycle(r, best, dist))
            continue;
        best = searchRegionRecMii(r, best, dist);
    }
    return int(best);
}

int
recMiiOfComponent(const Ddg &g, const Machine &m,
                  const std::vector<NodeId> &nodes)
{
    const CyclicRegion r = subsetRegion(g, m, nodes);
    std::vector<long> dist;
    if (!hasPositiveCycle(r, 1, dist))
        return 1;
    return int(searchRegionRecMii(r, 1, dist));
}

int
mii(const Ddg &g, const Machine &m)
{
    return std::max(resMii(g, m), recMii(g, m));
}

bool
iiFeasibleForRecurrences(const Ddg &g, const Machine &m, int ii)
{
    std::vector<long> dist;
    for (const CyclicRegion &r : cyclicRegions(g, m)) {
        if (hasPositiveCycle(r, ii, dist))
            return false;
    }
    return true;
}

/** The cached decomposition plus its Bellman-Ford scratch. The Ddg and
    Machine copies (O(1), copy-on-write) verify reuses against
    fingerprint collisions in debug builds. */
struct RecurrenceCache::Impl
{
    bool valid = false;
    std::uint64_t graphFp = 0;
    std::uint64_t machineFp = 0;
    std::vector<CyclicRegion> regions;
    std::vector<long> dist;
    std::optional<Ddg> graph;
    std::optional<Machine> machine;
};

RecurrenceCache::RecurrenceCache() = default;
RecurrenceCache::~RecurrenceCache() = default;
RecurrenceCache::RecurrenceCache(RecurrenceCache &&) noexcept = default;
RecurrenceCache &
RecurrenceCache::operator=(RecurrenceCache &&) noexcept = default;

bool
iiFeasibleForRecurrences(const Ddg &g, const Machine &m, int ii,
                         RecurrenceCache &cache)
{
    if (!cache.impl_)
        cache.impl_ = std::make_unique<RecurrenceCache::Impl>();
    RecurrenceCache::Impl &c = *cache.impl_;

    const std::uint64_t gfp = graphFingerprint(g);
    const std::uint64_t mfp = machineFingerprint(m);
    if (!c.valid || c.graphFp != gfp || c.machineFp != mfp) {
        c.regions = cyclicRegions(g, m);
        c.graphFp = gfp;
        c.machineFp = mfp;
        c.valid = true;
        if (kVerifyMemoKeys) {
            c.graph = g;
            c.machine = m;
        }
    } else if (kVerifyMemoKeys) {
        SWP_ASSERT(c.graph && graphsFingerprintEquivalent(g, *c.graph),
                   "recurrence cache fingerprint collision: graph '",
                   g.name(),
                   "' hit a decomposition of a different graph");
        SWP_ASSERT(c.machine &&
                       machinesFingerprintEquivalent(m, *c.machine),
                   "recurrence cache fingerprint collision: machine '",
                   m.name(),
                   "' hit a decomposition of a different machine");
    }

    for (const CyclicRegion &r : c.regions) {
        if (hasPositiveCycle(r, ii, c.dist))
            return false;
    }
    return true;
}

} // namespace swp
