#include "sched/mii.hh"

#include <algorithm>
#include <vector>

#include "support/diag.hh"

namespace swp
{

int
resMii(const Ddg &g, const Machine &m)
{
    // Total unit occupancy per class.
    long occupancy[numFuClasses] = {0, 0, 0, 0};
    int maxSingleOccupancy = 1;
    if (m.isUniversal()) {
        long total = 0;
        for (NodeId n = 0; n < g.numNodes(); ++n) {
            total += m.occupancy(g.node(n).op);
            maxSingleOccupancy =
                std::max(maxSingleOccupancy, m.occupancy(g.node(n).op));
        }
        const long units = m.unitsFor(FuClass::Mem);
        const long bound = (total + units - 1) / units;
        return int(std::max<long>(maxSingleOccupancy,
                                  std::max<long>(1, bound)));
    }

    for (NodeId n = 0; n < g.numNodes(); ++n) {
        const Opcode op = g.node(n).op;
        occupancy[int(fuClassOf(op))] += m.occupancy(op);
        // A non-pipelined op re-needs its unit after II cycles, so the
        // pattern only fits if II >= occupancy.
        maxSingleOccupancy = std::max(maxSingleOccupancy, m.occupancy(op));
    }

    long bound = 1;
    for (int fu = 0; fu < numFuClasses; ++fu) {
        const long units = m.unitsFor(FuClass(fu));
        if (occupancy[fu] == 0)
            continue;
        SWP_ASSERT(units > 0, "ops of class ", fuClassName(FuClass(fu)),
                   " but machine has no such unit");
        bound = std::max(bound, (occupancy[fu] + units - 1) / units);
    }
    return int(std::max<long>(bound, maxSingleOccupancy));
}

namespace
{

/**
 * Bellman-Ford positive-cycle detection with edge weight
 * latency(src) - II * distance. A positive cycle exists iff some
 * dependence cycle needs more than II cycles per iteration.
 */
bool
hasPositiveCycle(const Ddg &g, const Machine &m, int ii,
                 const std::vector<bool> *inSubset)
{
    const int n = g.numNodes();
    // Longest-path relaxation from a virtual source connected to all
    // nodes with weight 0.
    std::vector<long> dist(std::size_t(n), 0);
    for (int iter = 0; iter < n; ++iter) {
        bool changed = false;
        for (EdgeId e = 0; e < g.numEdges(); ++e) {
            const Edge &edge = g.edge(e);
            if (!edge.alive)
                continue;
            if (inSubset &&
                (!(*inSubset)[std::size_t(edge.src)] ||
                 !(*inSubset)[std::size_t(edge.dst)])) {
                continue;
            }
            const long w =
                m.latency(g.node(edge.src).op) - long(ii) * edge.distance;
            if (dist[std::size_t(edge.src)] + w >
                dist[std::size_t(edge.dst)]) {
                dist[std::size_t(edge.dst)] =
                    dist[std::size_t(edge.src)] + w;
                changed = true;
            }
        }
        if (!changed)
            return false;
    }
    return true;
}

int
recMiiImpl(const Ddg &g, const Machine &m,
           const std::vector<bool> *inSubset)
{
    // Upper bound: sum of latencies (a cycle of distance >= 1 per edge
    // cannot require more).
    long hi = 1;
    for (NodeId n = 0; n < g.numNodes(); ++n) {
        if (inSubset && !(*inSubset)[std::size_t(n)])
            continue;
        hi += m.latency(g.node(n).op);
    }

    if (!hasPositiveCycle(g, m, 1, inSubset))
        return 1;

    long lo = 1;  // infeasible
    while (lo + 1 < hi) {
        const long mid = lo + (hi - lo) / 2;
        if (hasPositiveCycle(g, m, int(mid), inSubset))
            lo = mid;
        else
            hi = mid;
    }
    return int(hi);
}

} // namespace

int
recMii(const Ddg &g, const Machine &m)
{
    return recMiiImpl(g, m, nullptr);
}

int
recMiiOfComponent(const Ddg &g, const Machine &m,
                  const std::vector<NodeId> &nodes)
{
    std::vector<bool> subset(std::size_t(g.numNodes()), false);
    for (NodeId v : nodes)
        subset[std::size_t(v)] = true;
    return recMiiImpl(g, m, &subset);
}

int
mii(const Ddg &g, const Machine &m)
{
    return std::max(resMii(g, m), recMii(g, m));
}

bool
iiFeasibleForRecurrences(const Ddg &g, const Machine &m, int ii)
{
    return !hasPositiveCycle(g, m, ii, nullptr);
}

} // namespace swp
