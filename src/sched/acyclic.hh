/**
 * @file
 * Acyclic (local) list scheduler.
 *
 * The Cydra 5 compiler falls back to scheduling the loop body without
 * modulo scheduling when the increase-II strategy fails to meet the
 * register budget (Section 1). This scheduler produces that fallback: a
 * resource-constrained list schedule of a single iteration honouring the
 * intra-iteration (distance 0) dependences, packaged as a degenerate
 * modulo schedule whose II equals the iteration makespan (stage count 1,
 * i.e. no overlap between iterations).
 */

#ifndef SWP_SCHED_ACYCLIC_HH
#define SWP_SCHED_ACYCLIC_HH

#include "ir/ddg.hh"
#include "machine/machine.hh"
#include "sched/schedule.hh"

namespace swp
{

/**
 * List-schedule one iteration and wrap it as a single-stage modulo
 * schedule. Always succeeds.
 */
Schedule scheduleAcyclic(const Ddg &g, const Machine &m);

} // namespace swp

#endif // SWP_SCHED_ACYCLIC_HH
