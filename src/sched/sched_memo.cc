#include "sched/sched_memo.hh"

#include "sched/fingerprint.hh"
#include "support/diag.hh"

namespace swp
{

std::optional<Schedule>
ScheduleMemo::scheduleAt(ModuloScheduler &inner, SchedulerKind kind,
                         const Ddg &g, const Machine &m, int ii)
{
    const Key key{graphFingerprint(g), machineFingerprint(m), ii,
                  int(kind)};
    CachedProbe probe = cache_.getOrCompute(
        key,
        [&]() {
            CachedProbe p;
            p.sched = inner.scheduleAt(g, m, ii);
            if (verifyKeys_) {
                p.graph = g;
                p.machine = m;
            }
            return p;
        },
        [&](const CachedProbe &hit) {
            if (!verifyKeys_)
                return;
            SWP_ASSERT(hit.graph &&
                           graphsFingerprintEquivalent(g, *hit.graph),
                       "schedule memo fingerprint collision: graph '",
                       g.name(), "' at II ", ii,
                       " hit an entry built from a different graph");
            SWP_ASSERT(hit.machine &&
                           machinesFingerprintEquivalent(m, *hit.machine),
                       "schedule memo fingerprint collision: machine '",
                       m.name(), "' hit an entry built from a different",
                       " machine");
        });
    return std::move(probe.sched);
}

} // namespace swp
