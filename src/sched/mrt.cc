#include "sched/mrt.hh"

#include <algorithm>

#include "support/bitmatrix.hh"
#include "support/diag.hh"

namespace swp
{

void
Mrt::reset(const Machine &m, int ii)
{
    SWP_ASSERT(ii >= 1, "MRT needs a positive II");
    m_ = &m;
    ii_ = ii;
    classBase_.resize(std::size_t(m.numClasses()) + 1);
    int base = 0;
    for (int cls = 0; cls < m.numClasses(); ++cls) {
        classBase_[std::size_t(cls)] = base;
        const int units = m.unitsInClass(cls);
        SWP_ASSERT(units <= 64,
                   "MRT busy masks hold at most 64 units per class");
        base += units * ii;
    }
    classBase_[std::size_t(m.numClasses())] = base;
    occupant_.assign(std::size_t(base), invalidNode);
    busy_.assign(std::size_t(m.numClasses() * ii), 0);
}

int
Mrt::cell(int cls, int unit, int row) const
{
    return classBase_[std::size_t(cls)] + unit * ii_ + row;
}

int
Mrt::maskBase(int cls) const
{
    return cls * ii_;
}

std::uint64_t
Mrt::busyOver(const std::vector<std::uint64_t> &busy, int cls, int t,
              int occ) const
{
    const int base = maskBase(cls);
    int row = Schedule::floorMod(t, ii_);
    std::uint64_t mask = 0;
    for (int c = 0; c < occ; ++c) {
        mask |= busy[std::size_t(base + row)];
        if (++row == ii_)
            row = 0;
    }
    return mask;
}

int
Mrt::findUnit(Opcode op, int t) const
{
    const int cls = m_->classOf(op);
    const int units = m_->unitsInClass(cls);
    const int occ = m_->occupancy(op);
    if (occ > ii_)
        return -1;
    const std::uint64_t free =
        ~busyOver(busy_, cls, t, occ) & lowBitsMask(units);
    return free ? countTrailingZeros(free) : -1;
}

int
Mrt::place(Opcode op, int t, NodeId n)
{
    const int u = findUnit(op, t);
    if (u < 0)
        return -1;
    const int cls = m_->classOf(op);
    const int occ = m_->occupancy(op);
    const int base = maskBase(cls);
    const std::uint64_t bit = std::uint64_t(1) << u;
    int row = Schedule::floorMod(t, ii_);
    for (int c = 0; c < occ; ++c) {
        busy_[std::size_t(base + row)] |= bit;
        occupant_[std::size_t(cell(cls, u, row))] = n;
        if (++row == ii_)
            row = 0;
    }
    return u;
}

void
Mrt::remove(Opcode op, int t, NodeId n, int u)
{
    const int cls = m_->classOf(op);
    const int occ = m_->occupancy(op);
    const int base = maskBase(cls);
    const std::uint64_t bit = std::uint64_t(1) << u;
    int row = Schedule::floorMod(t, ii_);
    for (int c = 0; c < occ; ++c) {
        const int idx = cell(cls, u, row);
        SWP_ASSERT(occupant_[std::size_t(idx)] == n,
                   "MRT remove of non-occupant node ", n);
        occupant_[std::size_t(idx)] = invalidNode;
        busy_[std::size_t(base + row)] &= ~bit;
        if (++row == ii_)
            row = 0;
    }
}

bool
Mrt::canPlaceGroup(const Ddg &g, const ComplexGroup &grp, int t0) const
{
    // The members may compete for the same units, so a per-member
    // canPlace() check is insufficient; simulate the placement on a
    // scratch copy of the busy masks (occupant bookkeeping is not
    // needed to answer yes/no, so only the masks are copied).
    groupScratch_.assign(busy_.begin(), busy_.end());
    for (std::size_t i = 0; i < grp.members.size(); ++i) {
        const Opcode op = g.node(grp.members[i]).op;
        const int t = t0 + grp.offsets[i];
        const int cls = m_->classOf(op);
        const int occ = m_->occupancy(op);
        if (occ > ii_)
            return false;
        const std::uint64_t free =
            ~busyOver(groupScratch_, cls, t, occ) &
            lowBitsMask(m_->unitsInClass(cls));
        if (!free)
            return false;
        const std::uint64_t bit =
            std::uint64_t(1) << countTrailingZeros(free);
        const int base = maskBase(cls);
        int row = Schedule::floorMod(t, ii_);
        for (int c = 0; c < occ; ++c) {
            groupScratch_[std::size_t(base + row)] |= bit;
            if (++row == ii_)
                row = 0;
        }
    }
    return true;
}

bool
Mrt::placeGroup(const Ddg &g, const ComplexGroup &grp, int t0,
                Schedule &sched)
{
    unitScratch_.assign(grp.members.size(), -1);
    for (std::size_t i = 0; i < grp.members.size(); ++i) {
        const NodeId n = grp.members[i];
        const int t = t0 + grp.offsets[i];
        const int u = place(g.node(n).op, t, n);
        if (u < 0) {
            // Roll back the members placed so far.
            for (std::size_t j = 0; j < i; ++j) {
                remove(g.node(grp.members[j]).op, t0 + grp.offsets[j],
                       grp.members[j], unitScratch_[j]);
            }
            return false;
        }
        unitScratch_[i] = u;
    }
    for (std::size_t i = 0; i < grp.members.size(); ++i)
        sched.set(grp.members[i], t0 + grp.offsets[i], unitScratch_[i]);
    return true;
}

void
Mrt::removeGroup(const Ddg &g, const ComplexGroup &grp,
                 const Schedule &sched)
{
    for (NodeId n : grp.members) {
        remove(g.node(n).op, sched.time(n), n, sched.unit(n));
    }
}

void
Mrt::conflicts(Opcode op, int t, std::vector<NodeId> &out) const
{
    out.clear();
    const int occ = m_->occupancy(op);
    if (occ > ii_) {
        // findUnit can never place this op at this II, no matter what
        // is evicted: reporting "blockers" here would send IMS chasing
        // nodes whose removal cannot help. Consistently report none.
        return;
    }
    const int cls = m_->classOf(op);
    const int units = m_->unitsInClass(cls);
    for (int u = 0; u < units; ++u) {
        int row = Schedule::floorMod(t, ii_);
        for (int c = 0; c < occ; ++c) {
            const NodeId n = occupant_[std::size_t(cell(cls, u, row))];
            if (n != invalidNode &&
                std::find(out.begin(), out.end(), n) == out.end()) {
                out.push_back(n);
            }
            if (++row == ii_)
                row = 0;
        }
    }
}

} // namespace swp
