#include "sched/mrt.hh"

#include <algorithm>

#include "support/diag.hh"

namespace swp
{

Mrt::Mrt(const Machine &m, int ii) : m_(m), ii_(ii)
{
    SWP_ASSERT(ii >= 1, "MRT needs a positive II");
    int base = 0;
    for (int fu = 0; fu < numFuClasses; ++fu) {
        classBase_[fu] = base;
        // For universal machines all classes alias class 0; allocate its
        // units once and give the rest zero width.
        const int units =
            m.isUniversal() ? (fu == 0 ? m.unitsFor(FuClass(0)) : 0)
                            : m.unitsFor(FuClass(fu));
        base += units * ii;
    }
    classBase_[numFuClasses] = base;
    occupant_.assign(std::size_t(base), invalidNode);
}

int
Mrt::cell(FuClass fu, int unit, int row) const
{
    const int fi = m_.isUniversal() ? 0 : int(fu);
    return classBase_[fi] + unit * ii_ + row;
}

int
Mrt::findUnit(Opcode op, int t) const
{
    const FuClass fu = fuClassOf(op);
    const int units = m_.unitsFor(fu);
    const int occ = m_.occupancy(op);
    if (occ > ii_)
        return -1;
    for (int u = 0; u < units; ++u) {
        bool free = true;
        for (int c = 0; c < occ && free; ++c) {
            const int row = Schedule::floorMod(t + c, ii_);
            free = occupant_[std::size_t(cell(fu, u, row))] == invalidNode;
        }
        if (free)
            return u;
    }
    return -1;
}

int
Mrt::place(Opcode op, int t, NodeId n)
{
    const int u = findUnit(op, t);
    if (u < 0)
        return -1;
    const FuClass fu = fuClassOf(op);
    const int occ = m_.occupancy(op);
    for (int c = 0; c < occ; ++c) {
        const int row = Schedule::floorMod(t + c, ii_);
        occupant_[std::size_t(cell(fu, u, row))] = n;
    }
    return u;
}

void
Mrt::remove(Opcode op, int t, NodeId n, int u)
{
    const FuClass fu = fuClassOf(op);
    const int occ = m_.occupancy(op);
    for (int c = 0; c < occ; ++c) {
        const int row = Schedule::floorMod(t + c, ii_);
        const int idx = cell(fu, u, row);
        SWP_ASSERT(occupant_[std::size_t(idx)] == n,
                   "MRT remove of non-occupant node ", n);
        occupant_[std::size_t(idx)] = invalidNode;
    }
}

bool
Mrt::canPlaceGroup(const Ddg &g, const ComplexGroup &grp, int t0) const
{
    // The members may compete for the same units, so a per-member
    // canPlace() check is insufficient; simulate the placement on a
    // scratch copy.
    Mrt scratch(*this);
    for (std::size_t i = 0; i < grp.members.size(); ++i) {
        const NodeId n = grp.members[i];
        if (scratch.place(g.node(n).op, t0 + grp.offsets[i], n) < 0)
            return false;
    }
    return true;
}

bool
Mrt::placeGroup(const Ddg &g, const ComplexGroup &grp, int t0,
                Schedule &sched)
{
    std::vector<int> units(grp.members.size(), -1);
    for (std::size_t i = 0; i < grp.members.size(); ++i) {
        const NodeId n = grp.members[i];
        const int t = t0 + grp.offsets[i];
        const int u = place(g.node(n).op, t, n);
        if (u < 0) {
            // Roll back the members placed so far.
            for (std::size_t j = 0; j < i; ++j) {
                remove(g.node(grp.members[j]).op, t0 + grp.offsets[j],
                       grp.members[j], units[j]);
            }
            return false;
        }
        units[i] = u;
    }
    for (std::size_t i = 0; i < grp.members.size(); ++i)
        sched.set(grp.members[i], t0 + grp.offsets[i], int(units[i]));
    return true;
}

void
Mrt::removeGroup(const Ddg &g, const ComplexGroup &grp,
                 const Schedule &sched)
{
    for (NodeId n : grp.members) {
        remove(g.node(n).op, sched.time(n), n, sched.unit(n));
    }
}

std::vector<NodeId>
Mrt::conflicts(Opcode op, int t) const
{
    const int occ = m_.occupancy(op);
    if (occ > ii_) {
        // findUnit can never place this op at this II, no matter what
        // is evicted: reporting "blockers" here would send IMS chasing
        // nodes whose removal cannot help. Consistently report none.
        return {};
    }
    const FuClass fu = fuClassOf(op);
    const int units = m_.unitsFor(fu);
    std::vector<NodeId> blockers;
    for (int u = 0; u < units; ++u) {
        for (int c = 0; c < occ; ++c) {
            const int row = Schedule::floorMod(t + c, ii_);
            const NodeId n = occupant_[std::size_t(cell(fu, u, row))];
            if (n != invalidNode &&
                std::find(blockers.begin(), blockers.end(), n) ==
                    blockers.end()) {
                blockers.push_back(n);
            }
        }
    }
    return blockers;
}

} // namespace swp
