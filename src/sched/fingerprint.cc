#include "sched/fingerprint.hh"

#include "machine/machdesc.hh"

namespace swp
{

std::uint64_t
graphFingerprint(const Ddg &g)
{
    // One walk per graph *content*: the cache slot lives in the CoW
    // core, and every mutation path resets it, so the per-probe calls
    // of an II search all hit here. Concurrent computes for one shared
    // core store the same value; 0 doubles as the "unset" sentinel
    // (remapped below).
    const std::uint64_t cached =
        g.core_->cachedFp.load(std::memory_order_relaxed);
    if (cached)
        return cached;

    Fingerprint fp;
    fp.mix(g.name());
    fp.mix(std::uint64_t(g.numNodes()));
    fp.mix(std::uint64_t(g.numEdges()));
    fp.mix(std::uint64_t(g.numInvariants()));
    for (NodeId n = 0; n < g.numNodes(); ++n)
        fp.mix(std::uint64_t(int(g.node(n).op)));
    for (EdgeId e = 0; e < g.numEdges(); ++e) {
        const Edge &edge = g.edge(e);
        fp.mix(std::uint64_t(edge.alive));
        if (!edge.alive)
            continue;
        fp.mix(std::uint64_t(edge.src));
        fp.mix(std::uint64_t(edge.dst));
        fp.mix(std::uint64_t(int(edge.kind)));
        fp.mix(std::uint64_t(edge.distance));
        fp.mix(std::uint64_t(edge.nonSpillable));
        fp.mix(std::uint64_t(edge.fusedDelay));
    }
    const std::uint64_t value = fp.value() ? fp.value() : 1;
    g.core_->cachedFp.store(value, std::memory_order_relaxed);
    return value;
}

std::uint64_t
machineFingerprint(const Machine &m)
{
    // The machine layer owns its content hash (it also keys shard-file
    // config fingerprints); memo keys reuse it unchanged.
    return machineContentFingerprint(m);
}

bool
graphsFingerprintEquivalent(const Ddg &a, const Ddg &b)
{
    if (a.sharesStorageWith(b))
        return true;
    if (a.name() != b.name() || a.numNodes() != b.numNodes() ||
        a.numEdges() != b.numEdges() ||
        a.numInvariants() != b.numInvariants())
        return false;
    for (NodeId n = 0; n < a.numNodes(); ++n) {
        if (a.node(n).op != b.node(n).op)
            return false;
    }
    for (EdgeId e = 0; e < a.numEdges(); ++e) {
        const Edge &ea = a.edge(e);
        const Edge &eb = b.edge(e);
        if (ea.alive != eb.alive)
            return false;
        if (!ea.alive)
            continue;
        if (ea.src != eb.src || ea.dst != eb.dst || ea.kind != eb.kind ||
            ea.distance != eb.distance ||
            ea.nonSpillable != eb.nonSpillable ||
            ea.fusedDelay != eb.fusedDelay)
            return false;
    }
    return true;
}

bool
machinesFingerprintEquivalent(const Machine &a, const Machine &b)
{
    return a == b;
}

} // namespace swp
