#include "sched/groups.hh"

#include <algorithm>

#include "support/diag.hh"

namespace swp
{

int
fusedDelayOf(const Ddg &g, const Machine &m, const Edge &edge)
{
    return edge.fusedDelay > 0 ? edge.fusedDelay
                               : m.latency(g.node(edge.src).op);
}

void
GroupSet::reset(const Ddg &g, const Machine &m)
{
    const int n = g.numNodes();
    groupOf_.assign(std::size_t(n), -1);
    offsetOf_.assign(std::size_t(n), 0);

    // Union-find over fused edges.
    parent_.resize(std::size_t(n));
    for (int i = 0; i < n; ++i)
        parent_[std::size_t(i)] = i;
    auto find = [&](int x) {
        while (parent_[std::size_t(x)] != x) {
            parent_[std::size_t(x)] =
                parent_[std::size_t(parent_[std::size_t(x)])];
            x = parent_[std::size_t(x)];
        }
        return x;
    };

    fused_.clear();
    for (EdgeId e = 0; e < g.numEdges(); ++e) {
        const Edge &edge = g.edge(e);
        if (edge.alive && edge.nonSpillable) {
            fused_.push_back(e);
            const int a = find(edge.src);
            const int b = find(edge.dst);
            if (a != b)
                parent_[std::size_t(a)] = b;
        }
    }

    // Gather members per root; recycled group slots keep the capacity
    // of their member/offset vectors.
    rootGroup_.assign(std::size_t(n), -1);
    numGroups_ = 0;
    for (NodeId v = 0; v < n; ++v) {
        const int r = find(v);
        if (rootGroup_[std::size_t(r)] < 0) {
            rootGroup_[std::size_t(r)] = numGroups_;
            if (numGroups_ == int(groups_.size()))
                groups_.emplace_back();
            groups_[std::size_t(numGroups_)].members.clear();
            groups_[std::size_t(numGroups_)].offsets.clear();
            ++numGroups_;
        }
        const int gi = rootGroup_[std::size_t(r)];
        groupOf_[std::size_t(v)] = gi;
        groups_[std::size_t(gi)].members.push_back(v);
    }

    // Solve offsets inside each group by propagating fused-edge
    // constraints offset(dst) = offset(src) + latency(src).
    known_.assign(std::size_t(n), 0);
    auto &known = known_;
    for (int gii = 0; gii < numGroups_; ++gii) {
        ComplexGroup &grp = groups_[std::size_t(gii)];
        if (grp.members.size() == 1) {
            grp.offsets.assign(1, 0);
            known[std::size_t(grp.members[0])] = true;
            continue;
        }
        // BFS from the first member.
        offsetOf_[std::size_t(grp.members[0])] = 0;
        known[std::size_t(grp.members[0])] = true;
        frontier_.assign(1, grp.members[0]);
        auto &frontier = frontier_;
        while (!frontier.empty()) {
            auto &next = next_;
            next.clear();
            for (EdgeId e : fused_) {
                const Edge &edge = g.edge(e);
                const int lat = fusedDelayOf(g, m, edge);
                for (NodeId v : frontier) {
                    if (edge.src == v) {
                        const int off = offsetOf_[std::size_t(v)] + lat;
                        if (!known[std::size_t(edge.dst)]) {
                            known[std::size_t(edge.dst)] = true;
                            offsetOf_[std::size_t(edge.dst)] = off;
                            next.push_back(edge.dst);
                        } else {
                            SWP_ASSERT(
                                offsetOf_[std::size_t(edge.dst)] == off,
                                "inconsistent fused offsets at node ",
                                g.node(edge.dst).name);
                        }
                    } else if (edge.dst == v) {
                        const int off = offsetOf_[std::size_t(v)] - lat;
                        if (!known[std::size_t(edge.src)]) {
                            known[std::size_t(edge.src)] = true;
                            offsetOf_[std::size_t(edge.src)] = off;
                            next.push_back(edge.src);
                        } else {
                            SWP_ASSERT(
                                offsetOf_[std::size_t(edge.src)] == off,
                                "inconsistent fused offsets at node ",
                                g.node(edge.src).name);
                        }
                    }
                }
            }
            std::swap(frontier_, next_);
        }

        // Normalize: smallest offset becomes 0; sort members by offset.
        int lo = INT32_MAX;
        for (NodeId v : grp.members) {
            SWP_ASSERT(known[std::size_t(v)],
                       "fused group member unreached: ", g.node(v).name);
            lo = std::min(lo, offsetOf_[std::size_t(v)]);
        }
        for (NodeId v : grp.members)
            offsetOf_[std::size_t(v)] -= lo;
        std::sort(grp.members.begin(), grp.members.end(),
                  [&](NodeId a, NodeId b) {
                      if (offsetOf_[std::size_t(a)] !=
                          offsetOf_[std::size_t(b)]) {
                          return offsetOf_[std::size_t(a)] <
                                 offsetOf_[std::size_t(b)];
                      }
                      return a < b;
                  });
        grp.offsets.clear();
        for (NodeId v : grp.members)
            grp.offsets.push_back(offsetOf_[std::size_t(v)]);
    }
}

} // namespace swp
