/**
 * @file
 * Hypernode Reduction Modulo Scheduling (HRMS).
 *
 * Reimplementation of the paper's core scheduler [22] (Llosa, Valero,
 * Ayguade, Gonzalez, MICRO-28 1995). HRMS is a register-sensitive,
 * non-backtracking modulo scheduler in two phases:
 *
 *  1. Pre-ordering. Nodes are ordered so that when a node is placed, its
 *     already-placed neighbours are (almost always) only predecessors or
 *     only successors. Recurrences are ordered first, most critical
 *     (highest RecMII) first, together with the nodes on paths between
 *     them; remaining nodes are absorbed in alternating
 *     predecessor/successor waves around the growing "hypernode".
 *
 *  2. Placement. Each node is scheduled as close as possible to its
 *     already-placed neighbours: ascending from its earliest start when
 *     only predecessors are placed, descending from its latest start
 *     when only successors are placed, and inside [early, late] for
 *     recurrence nodes. This keeps lifetimes short without backtracking.
 *
 * This implementation schedules complex groups (Section 4.3 fused spill
 * operations) atomically, which the register-constrained spilling driver
 * relies on.
 */

#ifndef SWP_SCHED_HRMS_HH
#define SWP_SCHED_HRMS_HH

#include <vector>

#include "sched/scheduler.hh"
#include "sched/workspace.hh"

namespace swp
{

/** HRMS scheduler; see file comment. */
class HrmsScheduler : public ModuloScheduler
{
  public:
    std::string name() const override { return "HRMS"; }

    std::optional<Schedule> scheduleAt(const Ddg &g, const Machine &m,
                                       int ii) override;

    /**
     * Expose the pre-ordering for tests: returns group indices in
     * scheduling order (see GroupSet for the group numbering).
     */
    std::vector<int> orderingForTest(const Ddg &g, const Machine &m,
                                     int ii);

  private:
    /** Scratch reused across probes; carries no cross-probe state. */
    SchedWorkspace ws_;
};

} // namespace swp

#endif // SWP_SCHED_HRMS_HH
