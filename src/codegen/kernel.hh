/**
 * @file
 * Kernel code generation for modulo schedules (Section 2.2 / 2.3).
 *
 * A modulo schedule of one iteration folds into a kernel of II rows;
 * the op placed at flat cycle t executes in row t mod II with stage tag
 * t div II. Execution ramps up through SC-1 prologue stages (stage s
 * runs the kernel ops whose stage tag is <= s), iterates the kernel in
 * steady state, and drains through the epilogue.
 *
 * Values outliving the II need renaming: a rotating register file does
 * it in hardware, and modulo variable expansion (MVE) does it in
 * software by unrolling the kernel max_v ceil(LT_v / II) times and
 * renaming each copy's definitions (Lam, 1988). Both forms are emitted.
 */

#ifndef SWP_CODEGEN_KERNEL_HH
#define SWP_CODEGEN_KERNEL_HH

#include <string>
#include <vector>

#include "ir/ddg.hh"
#include "liferange/lifetimes.hh"
#include "machine/machine.hh"
#include "regalloc/rotalloc.hh"
#include "sched/schedule.hh"

namespace swp
{

/** One operation slot in the kernel. */
struct KernelSlot
{
    NodeId node = invalidNode;
    int stage = 0;  ///< Stage tag: which in-flight iteration this is.
};

/** A folded kernel. */
struct KernelCode
{
    int ii = 0;
    int stageCount = 0;
    /** Kernel rows; row r holds the ops issued at cycle r of the kernel. */
    std::vector<std::vector<KernelSlot>> rows;

    /** Count of ops across all rows (equals the loop body size). */
    int numOps() const;
};

/** Fold a complete schedule into kernel rows. */
KernelCode buildKernel(const Ddg &g, const Schedule &sched);

/**
 * Render a full assembly-like listing: prologue stages, the kernel with
 * rotating-register operand annotations from `alloc`, and the epilogue.
 */
std::string formatKernelListing(const Ddg &g, const Machine &m,
                                const Schedule &sched,
                                const RotAllocResult &alloc);

/**
 * Render the MVE form: the kernel unrolled `mveUnrollFactor` times with
 * per-copy register renaming (no rotating file required).
 */
std::string formatMveKernel(const Ddg &g, const Schedule &sched,
                            const LifetimeInfo &lifetimes);

} // namespace swp

#endif // SWP_CODEGEN_KERNEL_HH
