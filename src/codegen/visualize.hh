/**
 * @file
 * ASCII visualization of modulo schedules: per-iteration lifetime
 * charts (the paper's Figure 2d) and the folded register-pressure
 * pattern (Figure 2f). Used by the examples and handy when debugging
 * register-pressure questions.
 */

#ifndef SWP_CODEGEN_VISUALIZE_HH
#define SWP_CODEGEN_VISUALIZE_HH

#include <string>

#include "ir/ddg.hh"
#include "sched/schedule.hh"

namespace swp
{

/**
 * Draw the loop-variant lifetimes of `iterations` consecutive
 * iterations against absolute cycles, one column per (value,
 * iteration) pair — the overlap picture of Figure 2d.
 */
std::string formatLifetimeChart(const Ddg &g, const Schedule &sched,
                                int iterations = 3);

/**
 * Draw the folded pressure pattern: for each kernel row, a bar of the
 * simultaneously live loop variants and the count — Figure 2f.
 */
std::string formatPressureChart(const Ddg &g, const Schedule &sched);

} // namespace swp

#endif // SWP_CODEGEN_VISUALIZE_HH
