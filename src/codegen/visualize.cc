#include "codegen/visualize.hh"

#include <algorithm>
#include <sstream>
#include <vector>

#include "liferange/lifetimes.hh"
#include "support/strutil.hh"

namespace swp
{

std::string
formatLifetimeChart(const Ddg &g, const Schedule &sched, int iterations)
{
    const LifetimeInfo info = analyzeLifetimes(g, sched);
    const int ii = sched.ii();

    std::vector<const Lifetime *> values;
    for (const Lifetime &lt : info.lifetimes) {
        if (lt.live && lt.length() > 0)
            values.push_back(&lt);
    }
    std::ostringstream os;
    if (values.empty())
        return "(no live loop variants)\n";

    // Columns: iteration-major, value-minor.
    struct Column
    {
        const Lifetime *lt;
        int iter;
        long start, end;
    };
    std::vector<Column> cols;
    long lastCycle = 0;
    for (int k = 0; k < iterations; ++k) {
        for (const Lifetime *lt : values) {
            Column c;
            c.lt = lt;
            c.iter = k;
            c.start = lt->start + long(k) * ii;
            c.end = lt->end + long(k) * ii;
            lastCycle = std::max(lastCycle, c.end);
            cols.push_back(c);
        }
    }

    os << "lifetimes of " << iterations << " iterations (II=" << ii
       << "); columns per iteration:";
    for (const Lifetime *lt : values)
        os << " " << g.node(lt->producer).name;
    os << "\n";

    for (long cycle = 0; cycle <= lastCycle; ++cycle) {
        os << strprintf("%4ld |", cycle);
        for (std::size_t i = 0; i < cols.size(); ++i) {
            if (i % values.size() == 0 && i > 0)
                os << ' ';
            const Column &c = cols[i];
            char mark = ' ';
            if (cycle == c.start)
                mark = 'o';  // Defined.
            else if (cycle > c.start && cycle < c.end)
                mark = '|';
            else if (cycle == c.end)
                mark = '+';  // Last use.
            os << mark;
        }
        os << "\n";
    }
    return os.str();
}

std::string
formatPressureChart(const Ddg &g, const Schedule &sched)
{
    const LifetimeInfo info = analyzeLifetimes(g, sched);
    (void)g;
    std::ostringstream os;
    os << "register pressure per kernel row (MaxLive=" << info.maxLive
       << ", +" << info.invariantCount << " invariant regs):\n";
    for (int r = 0; r < info.ii; ++r) {
        const int p = info.pressure[std::size_t(r)];
        os << strprintf("row %2d: %-3d ", r, p)
           << std::string(std::size_t(p), '#') << "\n";
    }
    return os.str();
}

} // namespace swp
