#include "codegen/kernel.hh"

#include <algorithm>
#include <sstream>

#include "support/diag.hh"
#include "support/strutil.hh"

namespace swp
{

int
KernelCode::numOps() const
{
    int count = 0;
    for (const auto &row : rows)
        count += int(row.size());
    return count;
}

KernelCode
buildKernel(const Ddg &g, const Schedule &sched)
{
    SWP_ASSERT(sched.complete(), "cannot fold an incomplete schedule");
    KernelCode kernel;
    kernel.ii = sched.ii();
    kernel.stageCount = sched.stageCount();
    kernel.rows.assign(std::size_t(kernel.ii), {});
    for (NodeId n = 0; n < g.numNodes(); ++n) {
        KernelSlot slot;
        slot.node = n;
        slot.stage = sched.stage(n);
        kernel.rows[std::size_t(sched.row(n))].push_back(slot);
    }
    for (auto &row : kernel.rows) {
        std::sort(row.begin(), row.end(),
                  [](const KernelSlot &a, const KernelSlot &b) {
                      if (a.stage != b.stage)
                          return a.stage < b.stage;
                      return a.node < b.node;
                  });
    }
    return kernel;
}

namespace
{

/** Destination register annotation for a node, if it defines a value. */
std::string
destText(const Ddg &g, const RotAllocResult &alloc, NodeId n)
{
    if (!producesValue(g.node(n).op))
        return "";
    const int off = alloc.offset[std::size_t(n)];
    if (off < 0)
        return " -> (dead)";
    return strprintf(" -> rot[%d]", off);
}

/** Source operand annotations: producer offsets with iteration shifts. */
std::string
srcText(const Ddg &g, const RotAllocResult &alloc, NodeId n)
{
    std::ostringstream os;
    bool first = true;
    for (EdgeId e : g.inEdges(n)) {
        const Edge &edge = g.edge(e);
        if (edge.kind != DepKind::RegFlow)
            continue;
        const int off = alloc.offset[std::size_t(edge.src)];
        os << (first ? " " : ", ");
        first = false;
        if (off < 0) {
            os << "?";
        } else if (edge.distance == 0) {
            os << strprintf("rot[%d]", off);
        } else {
            os << strprintf("rot[%d-%d]", off, edge.distance);
        }
    }
    for (InvId inv : g.node(n).invariantUses) {
        os << (first ? " " : ", ");
        first = false;
        os << "s" << inv;
    }
    return os.str();
}

} // namespace

std::string
formatKernelListing(const Ddg &g, const Machine &m, const Schedule &sched,
                    const RotAllocResult &alloc)
{
    const KernelCode kernel = buildKernel(g, sched);
    std::ostringstream os;
    os << "; loop " << g.name() << ": II=" << kernel.ii
       << " SC=" << kernel.stageCount << " rotating regs="
       << alloc.registers << "\n";

    // Prologue: stage s issues the kernel ops whose stage tag <= s.
    for (int s = 0; s < kernel.stageCount - 1; ++s) {
        os << strprintf("prologue_stage_%d:\n", s);
        for (int r = 0; r < kernel.ii; ++r) {
            for (const KernelSlot &slot : kernel.rows[std::size_t(r)]) {
                if (slot.stage <= s) {
                    os << strprintf("  [c%d] %-6s %-10s", r,
                                    opcodeName(g.node(slot.node).op),
                                    g.node(slot.node).name.c_str())
                       << srcText(g, alloc, slot.node)
                       << destText(g, alloc, slot.node) << "\n";
                }
            }
        }
        os << "  rotate\n";
    }

    os << "kernel:\n";
    for (int r = 0; r < kernel.ii; ++r) {
        for (const KernelSlot &slot : kernel.rows[std::size_t(r)]) {
            os << strprintf("  [c%d] %-6s %-10s (stage %d)", r,
                            opcodeName(g.node(slot.node).op),
                            g.node(slot.node).name.c_str(), slot.stage)
               << srcText(g, alloc, slot.node)
               << destText(g, alloc, slot.node) << "\n";
        }
    }
    os << "  rotate; branch kernel\n";

    // Epilogue: stage s (counting on) issues ops with stage tag > s.
    for (int s = 0; s < kernel.stageCount - 1; ++s) {
        os << strprintf("epilogue_stage_%d:\n", s);
        for (int r = 0; r < kernel.ii; ++r) {
            for (const KernelSlot &slot : kernel.rows[std::size_t(r)]) {
                if (slot.stage > s) {
                    os << strprintf("  [c%d] %-6s %-10s", r,
                                    opcodeName(g.node(slot.node).op),
                                    g.node(slot.node).name.c_str())
                       << "\n";
                }
            }
        }
        os << "  rotate\n";
    }
    (void)m;
    return os.str();
}

std::string
formatMveKernel(const Ddg &g, const Schedule &sched,
                const LifetimeInfo &lifetimes)
{
    const KernelCode kernel = buildKernel(g, sched);
    const int unroll = mveUnrollFactor(lifetimes);

    std::ostringstream os;
    os << "; MVE kernel for " << g.name() << ": II=" << kernel.ii
       << " unroll=" << unroll << " (max ceil(LT/II))\n";
    for (int copy = 0; copy < unroll; ++copy) {
        os << strprintf("copy_%d:\n", copy);
        for (int r = 0; r < kernel.ii; ++r) {
            for (const KernelSlot &slot : kernel.rows[std::size_t(r)]) {
                const Node &node = g.node(slot.node);
                os << strprintf("  [c%d] %-6s", r, opcodeName(node.op));
                if (producesValue(node.op)) {
                    // The definition of iteration (i + copy) uses the
                    // name bank (copy - stage) mod unroll so each
                    // in-flight instance has a distinct name.
                    const int bank =
                        ((copy - slot.stage) % unroll + unroll) % unroll;
                    os << strprintf(" v%d_%d =", slot.node, bank);
                }
                bool first = true;
                for (EdgeId e : g.inEdges(slot.node)) {
                    const Edge &edge = g.edge(e);
                    if (edge.kind != DepKind::RegFlow)
                        continue;
                    // The consumer in copy `copy` reads the instance
                    // defined `distance` iterations earlier by the
                    // producer's stage-adjusted bank.
                    const int bank =
                        ((copy - sched.stage(edge.src) - edge.distance) %
                             unroll + unroll) % unroll;
                    os << (first ? " " : ", ");
                    first = false;
                    os << strprintf("v%d_%d", edge.src, bank);
                }
                os << "  ; " << node.name << "\n";
            }
        }
    }
    os << strprintf("  branch copy_0 ; after %d kernel iterations\n",
                    unroll);
    return os.str();
}

} // namespace swp
