/**
 * @file
 * The data dependence graph (DDG) of an innermost loop.
 *
 * Following Section 2.1 of the paper, a loop is a graph G = (V, E, delta)
 * where vertices are operations, edges are dependences, and delta maps
 * each edge to a dependence distance in iterations. Edges are classified
 * as register data dependences (only flow dependences, since register
 * allocation happens after scheduling), memory data dependences, and
 * control dependences.
 *
 * In addition to the paper's definitions, nodes carry the annotations the
 * spilling machinery of Section 4 needs: spill-load/spill-store origin,
 * non-spillable value marking, and the semantic reference a spill load
 * uses to recover the spilled value (needed by the validation simulator).
 */

#ifndef SWP_IR_DDG_HH
#define SWP_IR_DDG_HH

#include <string>
#include <vector>

#include "ir/opcode.hh"

namespace swp
{

using NodeId = int;
using EdgeId = int;
using InvId = int;

constexpr NodeId invalidNode = -1;

/** Dependence kind (Section 2.1). */
enum class DepKind
{
    RegFlow,  ///< Register flow dependence: dst consumes src's value.
    Mem,      ///< Memory data dependence (store -> load ordering).
    Control,  ///< Control dependence (kept for generality).
};

/**
 * How a spill load recovers the value it reloads. Used by the validation
 * simulator to give spill code executable semantics.
 */
struct SpillRef
{
    enum class Kind
    {
        None,          ///< Not a spill load.
        StoreSlot,     ///< Reads the memory stream written by store #value.
        ReloadStream,  ///< Re-reads the input stream of original load
                       ///< #value (producer-is-load optimization).
        InvariantMem,  ///< Reads spilled loop-invariant #value.
    };

    Kind kind = Kind::None;
    int value = -1;  ///< Node or invariant id, per kind.
    int shift = 0;   ///< Iteration distance applied to the stream read.
};

/** Where a node came from. */
enum class NodeOrigin
{
    Original,    ///< Part of the source loop.
    SpillStore,  ///< Store inserted by the spiller.
    SpillLoad,   ///< Load inserted by the spiller.
};

/** An operation of the loop body. */
struct Node
{
    Opcode op = Opcode::Nop;
    std::string name;
    NodeOrigin origin = NodeOrigin::Original;

    /**
     * The value this node produces may not be selected for spilling.
     * Set for values produced by spill loads or consumed by spill stores
     * (Section 4.3's deadlock-avoidance rule).
     */
    bool nonSpillableValue = false;

    /** Semantic source for spill loads. */
    SpillRef spillRef;

    /** Loop invariants consumed by this operation. */
    std::vector<InvId> invariantUses;
};

/** A dependence between two operations. */
struct Edge
{
    NodeId src = invalidNode;
    NodeId dst = invalidNode;
    DepKind kind = DepKind::RegFlow;
    int distance = 0;  ///< delta(e): iterations between def and use.

    /**
     * Edge added by the spiller connecting a spill load/store to its
     * consumer/producer. Non-spillable edges force the endpoints to be
     * scheduled as a single "complex operation" at the exact offset
     * `fusedDelay` (Section 4.3).
     */
    bool nonSpillable = false;

    /**
     * Exact issue distance for fused edges; 0 means "the producer's
     * latency". The spiller staggers the delays of sibling reloads
     * feeding one consumer (latency, latency+1, ...) so they never
     * compete for the same functional unit in the same kernel row.
     */
    int fusedDelay = 0;

    /** Dead edges are skipped by all queries (removed by spilling). */
    bool alive = true;
};

/** A loop-invariant value (one register for the whole loop, Section 2.3). */
struct Invariant
{
    std::string name;
    std::vector<NodeId> consumers;
    bool spillable = true;
    /** Spilled invariants live in memory and need no register. */
    bool spilled = false;
};

/**
 * A mutable data dependence graph.
 *
 * Node ids are dense and stable. Edges may be killed (spilling) and new
 * edges/nodes appended; adjacency lists are maintained incrementally.
 */
class Ddg
{
  public:
    explicit Ddg(std::string name = "loop") : name_(std::move(name)) {}

    const std::string &name() const { return name_; }
    void setName(std::string n) { name_ = std::move(n); }

    /** @name Construction */
    /// @{
    NodeId addNode(Opcode op, std::string name = "",
                   NodeOrigin origin = NodeOrigin::Original);
    EdgeId addEdge(NodeId src, NodeId dst, DepKind kind, int distance = 0,
                   bool non_spillable = false);
    InvId addInvariant(std::string name = "");
    /** Record that node uses the given invariant. */
    void addInvariantUse(InvId inv, NodeId node);
    /** Kill an edge; it disappears from all adjacency queries. */
    void killEdge(EdgeId e);
    /// @}

    /** @name Accessors */
    /// @{
    int numNodes() const { return int(nodes_.size()); }
    int numEdges() const { return int(edges_.size()); }
    int numInvariants() const { return int(invariants_.size()); }

    Node &node(NodeId n) { return nodes_[std::size_t(n)]; }
    const Node &node(NodeId n) const { return nodes_[std::size_t(n)]; }
    Edge &edge(EdgeId e) { return edges_[std::size_t(e)]; }
    const Edge &edge(EdgeId e) const { return edges_[std::size_t(e)]; }
    Invariant &invariant(InvId i) { return invariants_[std::size_t(i)]; }
    const Invariant &
    invariant(InvId i) const
    {
        return invariants_[std::size_t(i)];
    }

    /** Live out-edge ids of a node. */
    std::vector<EdgeId> outEdges(NodeId n) const;
    /** Live in-edge ids of a node. */
    std::vector<EdgeId> inEdges(NodeId n) const;

    /** Live register-flow out-edges: the uses of n's value. */
    std::vector<EdgeId> valueUses(NodeId n) const;

    /** Number of live register-flow out-edges. */
    int numValueUses(NodeId n) const;

    /** Count of live (non-spilled) loop invariants. */
    int numLiveInvariants() const;

    /** Count of nodes with a given origin. */
    int countOrigin(NodeOrigin origin) const;

    /** Number of memory operations (loads + stores), for traffic stats. */
    int numMemOps() const;
    /// @}

    /** Human-readable dump for debugging. */
    std::string dump() const;

  private:
    std::string name_;
    std::vector<Node> nodes_;
    std::vector<Edge> edges_;
    std::vector<Invariant> invariants_;
    std::vector<std::vector<EdgeId>> out_;  ///< Includes dead edges.
    std::vector<std::vector<EdgeId>> in_;   ///< Includes dead edges.
};

} // namespace swp

#endif // SWP_IR_DDG_HH
