/**
 * @file
 * The data dependence graph (DDG) of an innermost loop.
 *
 * Following Section 2.1 of the paper, a loop is a graph G = (V, E, delta)
 * where vertices are operations, edges are dependences, and delta maps
 * each edge to a dependence distance in iterations. Edges are classified
 * as register data dependences (only flow dependences, since register
 * allocation happens after scheduling), memory data dependences, and
 * control dependences.
 *
 * In addition to the paper's definitions, nodes carry the annotations the
 * spilling machinery of Section 4 needs: spill-load/spill-store origin,
 * non-spillable value marking, and the semantic reference a spill load
 * uses to recover the spilled value (needed by the validation simulator).
 */

#ifndef SWP_IR_DDG_HH
#define SWP_IR_DDG_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/opcode.hh"
#include "support/sanitize.hh"

namespace swp
{

class Ddg;

/** Defined in sched/fingerprint.cc; befriended for its cache slot. */
std::uint64_t graphFingerprint(const Ddg &g);

using NodeId = int;
using EdgeId = int;
using InvId = int;

constexpr NodeId invalidNode = -1;

/** Dependence kind (Section 2.1). */
enum class DepKind
{
    RegFlow,  ///< Register flow dependence: dst consumes src's value.
    Mem,      ///< Memory data dependence (store -> load ordering).
    Control,  ///< Control dependence (kept for generality).
};

/**
 * How a spill load recovers the value it reloads. Used by the validation
 * simulator to give spill code executable semantics.
 */
struct SpillRef
{
    enum class Kind
    {
        None,          ///< Not a spill load.
        StoreSlot,     ///< Reads the memory stream written by store #value.
        ReloadStream,  ///< Re-reads the input stream of original load
                       ///< #value (producer-is-load optimization).
        InvariantMem,  ///< Reads spilled loop-invariant #value.
    };

    Kind kind = Kind::None;
    int value = -1;  ///< Node or invariant id, per kind.
    int shift = 0;   ///< Iteration distance applied to the stream read.
};

/** Where a node came from. */
enum class NodeOrigin
{
    Original,    ///< Part of the source loop.
    SpillStore,  ///< Store inserted by the spiller.
    SpillLoad,   ///< Load inserted by the spiller.
};

/** An operation of the loop body. */
struct Node
{
    Opcode op = Opcode::Nop;
    std::string name;
    NodeOrigin origin = NodeOrigin::Original;

    /**
     * The value this node produces may not be selected for spilling.
     * Set for values produced by spill loads or consumed by spill stores
     * (Section 4.3's deadlock-avoidance rule).
     */
    bool nonSpillableValue = false;

    /** Semantic source for spill loads. */
    SpillRef spillRef;

    /** Loop invariants consumed by this operation. */
    std::vector<InvId> invariantUses;
};

/** A dependence between two operations. */
struct Edge
{
    NodeId src = invalidNode;
    NodeId dst = invalidNode;
    DepKind kind = DepKind::RegFlow;
    int distance = 0;  ///< delta(e): iterations between def and use.

    /**
     * Edge added by the spiller connecting a spill load/store to its
     * consumer/producer. Non-spillable edges force the endpoints to be
     * scheduled as a single "complex operation" at the exact offset
     * `fusedDelay` (Section 4.3).
     */
    bool nonSpillable = false;

    /**
     * Exact issue distance for fused edges; 0 means "the producer's
     * latency". The spiller staggers the delays of sibling reloads
     * feeding one consumer (latency, latency+1, ...) so they never
     * compete for the same functional unit in the same kernel row.
     */
    int fusedDelay = 0;

    /** Dead edges are skipped by all queries (removed by spilling). */
    bool alive = true;
};

/** A loop-invariant value (one register for the whole loop, Section 2.3). */
struct Invariant
{
    std::string name;
    std::vector<NodeId> consumers;
    bool spillable = true;
    /** Spilled invariants live in memory and need no register. */
    bool spilled = false;
};

/**
 * A mutable data dependence graph with copy-on-write storage.
 *
 * Node ids are dense and stable. Edges may be killed (spilling) and new
 * edges/nodes appended; adjacency lists are maintained incrementally.
 *
 * Copying a Ddg is O(1): the copy shares the source's immutable storage
 * and the first mutation through either handle detaches it (clones the
 * storage). This makes the spill driver's working copy and result
 * snapshots free for the no-spill majority of evaluation jobs. The
 * usual copy-on-write contract applies: a shared core is never written
 * (so concurrent const access through distinct handles is safe, and
 * distinct handles may be mutated from distinct threads — each detaches
 * first), and references returned by the non-const accessors are
 * invalidated by the next copy-from or structural mutation, exactly
 * like vector iterators.
 */
class Ddg
{
  public:
    explicit Ddg(std::string name = "loop")
        : core_(std::make_shared<Core>())
    {
        core_->name = std::move(name);
    }

    Ddg(const Ddg &) = default;
    Ddg &operator=(const Ddg &) = default;

    /** Moved-from graphs stay valid (empty), as before copy-on-write:
        a null core would turn every accessor into a null dereference. */
    Ddg(Ddg &&o) : core_(std::move(o.core_))
    {
        o.core_ = std::make_shared<Core>();
    }

    Ddg &
    operator=(Ddg &&o)
    {
        if (this != &o) {
            core_ = std::move(o.core_);
            o.core_ = std::make_shared<Core>();
        }
        return *this;
    }

    const std::string &name() const { return core_->name; }
    void setName(std::string n) { mut().name = std::move(n); }

    /**
     * True when both handles share one storage core (they compare equal
     * and reads alias). Cleared by the first mutation on either side.
     */
    bool sharesStorageWith(const Ddg &o) const { return core_ == o.core_; }

    /** @name Construction */
    /// @{
    NodeId addNode(Opcode op, std::string name = "",
                   NodeOrigin origin = NodeOrigin::Original);
    EdgeId addEdge(NodeId src, NodeId dst, DepKind kind, int distance = 0,
                   bool non_spillable = false);
    InvId addInvariant(std::string name = "");
    /** Record that node uses the given invariant. */
    void addInvariantUse(InvId inv, NodeId node);
    /** Kill an edge; it disappears from all adjacency queries. */
    void killEdge(EdgeId e);
    /// @}

    /** @name Accessors */
    /// @{
    int numNodes() const { return int(core_->nodes.size()); }
    int numEdges() const { return int(core_->edges.size()); }
    int numInvariants() const { return int(core_->invariants.size()); }

    Node &node(NodeId n) { return mut().nodes[std::size_t(n)]; }
    const Node &node(NodeId n) const { return core_->nodes[std::size_t(n)]; }
    Edge &edge(EdgeId e) { return mut().edges[std::size_t(e)]; }
    const Edge &edge(EdgeId e) const { return core_->edges[std::size_t(e)]; }
    Invariant &invariant(InvId i) { return mut().invariants[std::size_t(i)]; }
    const Invariant &
    invariant(InvId i) const
    {
        return core_->invariants[std::size_t(i)];
    }

    /** Live out-edge ids of a node. */
    std::vector<EdgeId> outEdges(NodeId n) const;
    /** Live in-edge ids of a node. */
    std::vector<EdgeId> inEdges(NodeId n) const;

    /** @name Raw adjacency (dead edges included, no allocation).
        The scheduler inner loops iterate these and test edge(e).alive
        themselves instead of paying a filtered vector per query. */
    /// @{
    const std::vector<EdgeId> &
    outEdgeIds(NodeId n) const
    {
        return core_->out[std::size_t(n)];
    }
    const std::vector<EdgeId> &
    inEdgeIds(NodeId n) const
    {
        return core_->in[std::size_t(n)];
    }
    /// @}

    /** Live register-flow out-edges: the uses of n's value. */
    std::vector<EdgeId> valueUses(NodeId n) const;

    /** Number of live register-flow out-edges. */
    int numValueUses(NodeId n) const;

    /** Count of live (non-spilled) loop invariants. */
    int numLiveInvariants() const;

    /** Count of nodes with a given origin. */
    int countOrigin(NodeOrigin origin) const;

    /** Number of memory operations (loads + stores), for traffic stats. */
    int numMemOps() const;
    /// @}

    /** Human-readable dump for debugging. */
    std::string dump() const;

  private:
    /** The shared storage; immutable while more than one handle holds it. */
    struct Core
    {
        Core() = default;
        /** Clones carry the fingerprint: content-identical on copy
            (mut() invalidates before the cloner's write lands). */
        Core(const Core &o)
            : name(o.name), nodes(o.nodes), edges(o.edges),
              invariants(o.invariants), out(o.out), in(o.in),
              cachedFp(o.cachedFp.load(std::memory_order_relaxed))
        {
        }
        Core &operator=(const Core &) = delete;

        std::string name;
        std::vector<Node> nodes;
        std::vector<Edge> edges;
        std::vector<Invariant> invariants;
        std::vector<std::vector<EdgeId>> out;  ///< Includes dead edges.
        std::vector<std::vector<EdgeId>> in;   ///< Includes dead edges.

        /**
         * Memoized graphFingerprint of this core (0 = not computed).
         * mut() intercepts every mutation and resets it, so the memos'
         * per-probe fingerprinting is O(1) for an unchanged graph.
         * Mutating through a reference held across other Ddg calls
         * bypasses this (and the detach) — don't.
         */
        mutable std::atomic<std::uint64_t> cachedFp{0};
    };

    /** Detach-on-mutate: clone the core iff another handle shares it. */
    Core &
    mut()
    {
#if SWP_TSAN_ENABLED
        // TSan neither models the standalone acquire fence below (gcc
        // rejects it outright under -Werror=tsan) nor the relaxed
        // use-count load it pairs through, so the sole-owner in-place
        // mutation would surface as a false race against the previous
        // owner's reads. Detach unconditionally instead: cloning only
        // *reads* the old core (reads cannot race with reads), and the
        // old core's destruction is ordered by shared_ptr's own
        // acq_rel reference counting, which TSan does model. Same
        // results, sole-owner fast path traded for a clone.
        core_ = std::make_shared<Core>(*core_);
#else
        if (core_.use_count() > 1) {
            core_ = std::make_shared<Core>(*core_);
        } else {
            // Pairs with the release decrement of the last other
            // owner's shared_ptr: its reads of this core (e.g. the
            // clone it took while detaching on another thread) happen
            // before the in-place writes that follow.
            std::atomic_thread_fence(std::memory_order_acquire);
        }
#endif
        core_->cachedFp.store(0, std::memory_order_relaxed);
        return *core_;
    }

    friend std::uint64_t graphFingerprint(const Ddg &);

    std::shared_ptr<Core> core_;
};

} // namespace swp

#endif // SWP_IR_DDG_HH
