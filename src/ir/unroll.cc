#include "ir/unroll.hh"

#include "ir/verify.hh"
#include "support/diag.hh"
#include "support/strutil.hh"

namespace swp
{

Ddg
unrollLoop(const Ddg &g, int factor)
{
    SWP_ASSERT(factor >= 1, "unroll factor must be >= 1");
    if (factor == 1)
        return g;

    for (NodeId n = 0; n < g.numNodes(); ++n) {
        SWP_ASSERT(g.node(n).origin == NodeOrigin::Original,
                   "unroll expects a pre-spill graph");
    }

    Ddg out(strprintf("%s_x%d", g.name().c_str(), factor));

    // Copies of every node: copy j of node n is n*factor + j... keep a
    // table instead of arithmetic so the mapping stays explicit.
    std::vector<std::vector<NodeId>> copyOf(
        std::size_t(g.numNodes()));
    for (NodeId n = 0; n < g.numNodes(); ++n) {
        for (int j = 0; j < factor; ++j) {
            copyOf[std::size_t(n)].push_back(out.addNode(
                g.node(n).op,
                strprintf("%s#%d", g.node(n).name.c_str(), j)));
        }
    }

    // Invariants are shared by all copies.
    std::vector<InvId> invOf;
    for (InvId i = 0; i < g.numInvariants(); ++i)
        invOf.push_back(out.addInvariant(g.invariant(i).name));
    for (NodeId n = 0; n < g.numNodes(); ++n) {
        for (InvId i : g.node(n).invariantUses) {
            for (int j = 0; j < factor; ++j) {
                out.addInvariantUse(invOf[std::size_t(i)],
                                    copyOf[std::size_t(n)][
                                        std::size_t(j)]);
            }
        }
    }

    // Remap dependences per copy.
    for (EdgeId e = 0; e < g.numEdges(); ++e) {
        const Edge &edge = g.edge(e);
        if (!edge.alive)
            continue;
        for (int j = 0; j < factor; ++j) {
            const int srcCopy =
                ((j - edge.distance) % factor + factor) % factor;
            const int newDist =
                (srcCopy - j + edge.distance) / factor;
            out.addEdge(copyOf[std::size_t(edge.src)][
                            std::size_t(srcCopy)],
                        copyOf[std::size_t(edge.dst)][std::size_t(j)],
                        edge.kind, newDist);
        }
    }

    std::string why;
    SWP_ASSERT(verifyDdg(out, &why), "unroll produced a bad graph: ",
               why);
    return out;
}

} // namespace swp
