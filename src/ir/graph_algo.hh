/**
 * @file
 * Graph algorithms over the DDG: strongly connected components,
 * topological ordering, and reachability. These underpin RecMII
 * computation and the HRMS pre-ordering phase.
 */

#ifndef SWP_IR_GRAPH_ALGO_HH
#define SWP_IR_GRAPH_ALGO_HH

#include <vector>

#include "ir/ddg.hh"

namespace swp
{

/**
 * Strongly connected components of a plain adjacency list (successor
 * lists; parallel edges and self-loops allowed). This is the one Tarjan
 * implementation in the library — the DDG overload and the schedulers'
 * condensed group graphs all decompose through it.
 */
struct AdjScc
{
    /** Component index per node, in reverse topological discovery order:
        an edge between distinct components a -> b has compOf[b] <
        compOf[a]. */
    std::vector<int> compOf;
    /** All nodes grouped by component (flat storage: Tarjan emits each
        component contiguously, so no per-component vector is needed). */
    std::vector<int> nodes;
    /** Offsets into nodes; component c is [compBegin[c], compBegin[c+1]). */
    std::vector<int> compBegin;

    int numComps() const { return int(compBegin.size()) - 1; }
    int compSize(int c) const
    {
        return compBegin[std::size_t(c) + 1] - compBegin[std::size_t(c)];
    }
    const int *compNodes(int c) const
    {
        return nodes.data() + compBegin[std::size_t(c)];
    }
};

/**
 * Iterative Tarjan over an adjacency list. numNodes < 0 means all of
 * succ; a smaller count restricts the run to the first numNodes rows
 * (reusable workspace adjacency may keep spare rows beyond the graph).
 */
AdjScc stronglyConnectedComponents(const std::vector<std::vector<int>> &succ,
                                   int numNodes = -1);

/**
 * Strongly connected components of the DDG (all live edges considered,
 * regardless of distance). Components with more than one node, or with a
 * self-edge, are recurrences.
 */
struct SccResult
{
    /** Component index per node, in reverse topological discovery order. */
    std::vector<int> compOf;
    /** Nodes of each component. */
    std::vector<std::vector<NodeId>> comps;

    /** True if the component is a recurrence (cycle through it). */
    std::vector<bool> isRecurrence;

    int numComps() const { return int(comps.size()); }
};

/** Tarjan SCC over live edges. */
SccResult stronglyConnectedComponents(const Ddg &g);

/**
 * Topological order of all nodes treating the graph as acyclic by
 * ignoring edges internal to a recurrence that would close a cycle
 * (formally: a topological order of the condensation expanded with an
 * arbitrary consistent order inside each component).
 */
std::vector<NodeId> topologicalOrder(const Ddg &g);

/**
 * Topological order of the loop-independent subgraph: only edges with
 * distance zero are honoured. Single-iteration semantics require this
 * order to exist; verifyDdg() checks it.
 */
std::vector<NodeId> topologicalOrderIntraIteration(const Ddg &g);

/** Bit-matrix reachability (live edges). result[u][v] = u reaches v. */
std::vector<std::vector<bool>> reachability(const Ddg &g);

} // namespace swp

#endif // SWP_IR_GRAPH_ALGO_HH
