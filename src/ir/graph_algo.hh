/**
 * @file
 * Graph algorithms over the DDG: strongly connected components,
 * topological ordering, and reachability. These underpin RecMII
 * computation and the HRMS pre-ordering phase.
 */

#ifndef SWP_IR_GRAPH_ALGO_HH
#define SWP_IR_GRAPH_ALGO_HH

#include <vector>

#include "ir/ddg.hh"

namespace swp
{

/**
 * Strongly connected components of the DDG (all live edges considered,
 * regardless of distance). Components with more than one node, or with a
 * self-edge, are recurrences.
 */
struct SccResult
{
    /** Component index per node, in reverse topological discovery order. */
    std::vector<int> compOf;
    /** Nodes of each component. */
    std::vector<std::vector<NodeId>> comps;

    /** True if the component is a recurrence (cycle through it). */
    std::vector<bool> isRecurrence;

    int numComps() const { return int(comps.size()); }
};

/** Tarjan SCC over live edges. */
SccResult stronglyConnectedComponents(const Ddg &g);

/**
 * Topological order of all nodes treating the graph as acyclic by
 * ignoring edges internal to a recurrence that would close a cycle
 * (formally: a topological order of the condensation expanded with an
 * arbitrary consistent order inside each component).
 */
std::vector<NodeId> topologicalOrder(const Ddg &g);

/**
 * Topological order of the loop-independent subgraph: only edges with
 * distance zero are honoured. Single-iteration semantics require this
 * order to exist; verifyDdg() checks it.
 */
std::vector<NodeId> topologicalOrderIntraIteration(const Ddg &g);

/** Bit-matrix reachability (live edges). result[u][v] = u reaches v. */
std::vector<std::vector<bool>> reachability(const Ddg &g);

} // namespace swp

#endif // SWP_IR_GRAPH_ALGO_HH
