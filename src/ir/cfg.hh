/**
 * @file
 * Structured loop bodies with conditionals, and IF-conversion.
 *
 * The paper's evaluation uses innermost loops whose conditionals were
 * removed by IF-conversion (Allen, Kennedy, Warren — the paper's
 * reference [2]) before dependence graphs were extracted. This module
 * provides that front end: a loop body is a structured statement tree
 * (operations and if/then/else regions over named values), and
 * ifConvert() flattens it into a single-basic-block Ddg where control
 * dependences became data dependences through select operations.
 *
 * Conversion rules:
 *  - a name defined in both branches becomes two renamed definitions
 *    merged by select(cond, then-value, else-value);
 *  - a name defined in one branch that existed before the `if` merges
 *    with its prior value;
 *  - a store inside a branch becomes an unconditional store of the
 *    select-merged datum (the classic transformation for predicate-free
 *    targets);
 *  - nested ifs convert inside-out, so the merged values of an inner
 *    region feed the selects of the outer one.
 */

#ifndef SWP_IR_CFG_HH
#define SWP_IR_CFG_HH

#include <string>
#include <vector>

#include "ir/ddg.hh"

namespace swp
{

/** One operand of a structured statement. */
struct CfgOperand
{
    /** Named value, or an invariant when `invariant` is true. */
    std::string name;
    /** Iteration distance for loop-carried uses (named values only). */
    int distance = 0;
    bool invariant = false;

    static CfgOperand
    value(std::string n, int d = 0)
    {
        CfgOperand op;
        op.name = std::move(n);
        op.distance = d;
        return op;
    }

    static CfgOperand
    inv(std::string n)
    {
        CfgOperand op;
        op.name = std::move(n);
        op.invariant = true;
        return op;
    }
};

/** A statement: an operation or an if/then/else region. */
struct CfgStmt
{
    enum class Kind
    {
        Op,
        If,
    };

    Kind kind = Kind::Op;

    /** @name Kind::Op */
    /// @{
    Opcode op = Opcode::Nop;
    std::string def;  ///< Defined name; empty for stores.
    std::vector<CfgOperand> uses;
    /// @}

    /** @name Kind::If */
    /// @{
    CfgOperand cond;
    std::vector<CfgStmt> thenBody;
    std::vector<CfgStmt> elseBody;
    /// @}

    static CfgStmt
    makeOp(Opcode op, std::string def, std::vector<CfgOperand> uses)
    {
        CfgStmt s;
        s.kind = Kind::Op;
        s.op = op;
        s.def = std::move(def);
        s.uses = std::move(uses);
        return s;
    }

    static CfgStmt
    makeIf(CfgOperand cond, std::vector<CfgStmt> then_body,
           std::vector<CfgStmt> else_body)
    {
        CfgStmt s;
        s.kind = Kind::If;
        s.cond = std::move(cond);
        s.thenBody = std::move(then_body);
        s.elseBody = std::move(else_body);
        return s;
    }
};

/** A structured innermost loop with conditionals. */
struct CfgLoop
{
    std::string name = "loop";
    std::vector<std::string> invariants;
    std::vector<CfgStmt> body;
};

/**
 * IF-convert a structured loop into a single-basic-block dependence
 * graph. Throws FatalError on malformed input (undefined names,
 * zero-distance forward references, redefinition outside branches).
 */
Ddg ifConvert(const CfgLoop &loop);

/** Number of select operations IF-conversion would insert. */
int countSelects(const CfgLoop &loop);

} // namespace swp

#endif // SWP_IR_CFG_HH
