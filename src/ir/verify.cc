#include "ir/verify.hh"

#include <algorithm>

#include "ir/graph_algo.hh"
#include "support/strutil.hh"

namespace swp
{

namespace
{

bool
fail(std::string *why, const std::string &msg)
{
    if (why)
        *why = msg;
    return false;
}

} // namespace

bool
verifyDdg(const Ddg &g, std::string *why)
{
    for (EdgeId e = 0; e < g.numEdges(); ++e) {
        const Edge &edge = g.edge(e);
        if (!edge.alive)
            continue;
        if (edge.src < 0 || edge.src >= g.numNodes() || edge.dst < 0 ||
            edge.dst >= g.numNodes()) {
            return fail(why, strprintf("edge %d has bad endpoints", e));
        }
        if (edge.distance < 0)
            return fail(why, strprintf("edge %d has negative distance", e));
        if (edge.kind == DepKind::RegFlow &&
            !producesValue(g.node(edge.src).op)) {
            return fail(why, strprintf(
                "reg-flow edge %d from non-producing node %s", e,
                g.node(edge.src).name.c_str()));
        }
        if (edge.nonSpillable) {
            if (edge.kind != DepKind::RegFlow || edge.distance != 0) {
                return fail(why, strprintf(
                    "fused edge %d must be reg-flow with distance 0", e));
            }
        }
    }

    // An iteration must be executable: zero-distance edges acyclic.
    {
        const int n = g.numNodes();
        std::vector<int> indeg(std::size_t(n), 0);
        for (EdgeId e = 0; e < g.numEdges(); ++e) {
            const Edge &edge = g.edge(e);
            if (edge.alive && edge.distance == 0)
                ++indeg[std::size_t(edge.dst)];
        }
        std::vector<NodeId> ready;
        for (NodeId u = 0; u < n; ++u) {
            if (indeg[std::size_t(u)] == 0)
                ready.push_back(u);
        }
        std::size_t seen = 0;
        while (seen < ready.size()) {
            const NodeId u = ready[seen++];
            for (EdgeId e : g.outEdges(u)) {
                const Edge &edge = g.edge(e);
                if (edge.distance != 0)
                    continue;
                if (--indeg[std::size_t(edge.dst)] == 0)
                    ready.push_back(edge.dst);
            }
        }
        if (int(seen) != n)
            return fail(why, "zero-distance dependence cycle");
    }

    for (NodeId n = 0; n < g.numNodes(); ++n) {
        const Node &node = g.node(n);
        const bool is_spill_load = node.origin == NodeOrigin::SpillLoad;
        const bool has_ref = node.spillRef.kind != SpillRef::Kind::None;
        if (is_spill_load && !has_ref) {
            return fail(why, strprintf(
                "spill load %s lacks a SpillRef", node.name.c_str()));
        }
        if (!is_spill_load && has_ref) {
            return fail(why, strprintf(
                "non-spill-load %s carries a SpillRef", node.name.c_str()));
        }
        for (InvId inv : node.invariantUses) {
            if (inv < 0 || inv >= g.numInvariants())
                return fail(why, strprintf("node %d uses bad invariant", n));
            const auto &consumers = g.invariant(inv).consumers;
            if (std::count(consumers.begin(), consumers.end(), n) < 1) {
                return fail(why, strprintf(
                    "invariant %d does not list node %d as consumer",
                    inv, n));
            }
        }
    }

    for (InvId i = 0; i < g.numInvariants(); ++i) {
        for (NodeId c : g.invariant(i).consumers) {
            if (c < 0 || c >= g.numNodes())
                return fail(why, strprintf("invariant %d bad consumer", i));
            const auto &uses = g.node(c).invariantUses;
            if (std::count(uses.begin(), uses.end(), i) < 1) {
                return fail(why, strprintf(
                    "node %d does not list invariant %d as used", c, i));
            }
        }
    }
    return true;
}

} // namespace swp
