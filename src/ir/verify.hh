/**
 * @file
 * Structural validation of DDGs.
 */

#ifndef SWP_IR_VERIFY_HH
#define SWP_IR_VERIFY_HH

#include <string>

#include "ir/ddg.hh"

namespace swp
{

/**
 * Check the structural invariants of a loop graph:
 *  - register flow edges originate at value-producing operations;
 *  - no zero-distance dependence cycle (an iteration must be executable);
 *  - spill loads carry a semantic SpillRef, non-spill loads do not;
 *  - non-spillable (fused) edges are register-flow edges of distance 0;
 *  - invariant consumer lists and node invariant-use lists agree.
 *
 * @param g    Graph to check.
 * @param why  When non-null, receives a description of the first failure.
 * @return     True if all invariants hold.
 */
bool verifyDdg(const Ddg &g, std::string *why = nullptr);

} // namespace swp

#endif // SWP_IR_VERIFY_HH
