/**
 * @file
 * Loop unrolling as a pre-pass to software pipelining.
 *
 * Unrolling by U replicates the body so one "unrolled iteration"
 * executes U original iterations. It can tighten fractional resource
 * bounds (ResMII of the unrolled loop approaches U times the true
 * rational bound) and amortize loop-carried critical paths, at the
 * price of U times the code and roughly U times the register pressure
 * per kernel — the trade-off the sweep_unroll bench quantifies against
 * the register-constrained pipeliner.
 *
 * Dependence remapping: copy j of consumer v reading producer u at
 * distance d takes its value from copy (j - d) mod U of u, at unrolled
 * distance ((j - d) mod U - j + d) / U.
 */

#ifndef SWP_IR_UNROLL_HH
#define SWP_IR_UNROLL_HH

#include "ir/ddg.hh"

namespace swp
{

/**
 * Unroll a loop by `factor` (>= 1). The input must be an original
 * (not yet spill-rewritten) graph; spill artifacts would need their
 * slot semantics replicated and are rejected.
 */
Ddg unrollLoop(const Ddg &g, int factor);

} // namespace swp

#endif // SWP_IR_UNROLL_HH
