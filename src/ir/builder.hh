/**
 * @file
 * Fluent construction helper for DDGs, used by tests, examples and the
 * workload generator.
 */

#ifndef SWP_IR_BUILDER_HH
#define SWP_IR_BUILDER_HH

#include <string>

#include "ir/ddg.hh"

namespace swp
{

/**
 * Thin convenience wrapper over Ddg for building loops in code:
 *
 * @code
 * DdgBuilder b("example");
 * NodeId ld = b.load("Ld");
 * NodeId mul = b.mul("*");
 * b.flow(ld, mul);          // register flow, distance 0
 * b.flow(ld, add, 3);       // loop-carried, distance 3
 * Ddg g = b.take();
 * @endcode
 */
class DdgBuilder
{
  public:
    explicit DdgBuilder(std::string name = "loop") : g_(std::move(name)) {}

    NodeId
    op(Opcode opcode, std::string name = "")
    {
        return g_.addNode(opcode, std::move(name));
    }

    NodeId load(std::string name = "") { return op(Opcode::Load, name); }
    NodeId store(std::string name = "") { return op(Opcode::Store, name); }
    NodeId add(std::string name = "") { return op(Opcode::Add, name); }
    NodeId mul(std::string name = "") { return op(Opcode::Mul, name); }
    NodeId div(std::string name = "") { return op(Opcode::Div, name); }
    NodeId sqrt(std::string name = "") { return op(Opcode::Sqrt, name); }
    NodeId copy(std::string name = "") { return op(Opcode::Copy, name); }
    NodeId select(std::string name = "") { return op(Opcode::Select, name); }

    /** Register flow dependence src -> dst with the given distance. */
    EdgeId
    flow(NodeId src, NodeId dst, int distance = 0)
    {
        return g_.addEdge(src, dst, DepKind::RegFlow, distance);
    }

    /** Memory dependence src -> dst with the given distance. */
    EdgeId
    mem(NodeId src, NodeId dst, int distance = 0)
    {
        return g_.addEdge(src, dst, DepKind::Mem, distance);
    }

    /** Declare a loop invariant consumed by the listed nodes. */
    InvId
    invariant(std::string name, std::initializer_list<NodeId> consumers)
    {
        const InvId id = g_.addInvariant(std::move(name));
        for (NodeId n : consumers)
            g_.addInvariantUse(id, n);
        return id;
    }

    Ddg &graph() { return g_; }
    const Ddg &graph() const { return g_; }

    /** Move the built graph out. */
    Ddg take() { return std::move(g_); }

  private:
    Ddg g_;
};

/**
 * Build the paper's worked example (Figure 2a):
 * @code
 *   x(i) = y(i) * a + y(i - 3)
 * @endcode
 * Four operations: Ld (y), * (times invariant a), + (adds y(i-3),
 * a loop-carried use of Ld at distance 3) and St (x).
 */
Ddg buildPaperExampleLoop();

} // namespace swp

#endif // SWP_IR_BUILDER_HH
