#include "ir/graph_algo.hh"

#include <algorithm>

#include "support/diag.hh"

namespace swp
{

AdjScc
stronglyConnectedComponents(const std::vector<std::vector<int>> &succ,
                            int numNodes)
{
    const int n = numNodes < 0 ? int(succ.size()) : numNodes;
    SWP_ASSERT(std::size_t(n) <= succ.size(),
               "SCC over more nodes than adjacency rows");
    AdjScc result;
    result.compOf.assign(std::size_t(n), -1);
    result.nodes.reserve(std::size_t(n));
    result.compBegin.push_back(0);
    std::vector<int> index(std::size_t(n), -1);
    std::vector<int> lowlink(std::size_t(n), 0);
    std::vector<bool> onStack(std::size_t(n), false);
    std::vector<int> stack;
    int nextIndex = 0;

    // Explicit DFS stack of (node, next-successor-cursor) to avoid deep
    // recursion on long dependence chains.
    struct Frame { int n; std::size_t i; };
    std::vector<Frame> frames;
    for (int root = 0; root < n; ++root) {
        if (index[std::size_t(root)] >= 0)
            continue;
        frames.push_back({root, 0});
        index[std::size_t(root)] = lowlink[std::size_t(root)] =
            nextIndex++;
        stack.push_back(root);
        onStack[std::size_t(root)] = true;

        while (!frames.empty()) {
            Frame &f = frames.back();
            const std::vector<int> &succs = succ[std::size_t(f.n)];
            if (f.i < succs.size()) {
                const int w = succs[f.i++];
                if (index[std::size_t(w)] < 0) {
                    index[std::size_t(w)] = lowlink[std::size_t(w)] =
                        nextIndex++;
                    stack.push_back(w);
                    onStack[std::size_t(w)] = true;
                    frames.push_back({w, 0});
                } else if (onStack[std::size_t(w)]) {
                    lowlink[std::size_t(f.n)] = std::min(
                        lowlink[std::size_t(f.n)], index[std::size_t(w)]);
                }
            } else {
                const int v = f.n;
                frames.pop_back();
                if (!frames.empty()) {
                    const int parent = frames.back().n;
                    lowlink[std::size_t(parent)] = std::min(
                        lowlink[std::size_t(parent)],
                        lowlink[std::size_t(v)]);
                }
                if (lowlink[std::size_t(v)] == index[std::size_t(v)]) {
                    const int comp = int(result.compBegin.size()) - 1;
                    int w;
                    do {
                        w = stack.back();
                        stack.pop_back();
                        onStack[std::size_t(w)] = false;
                        result.compOf[std::size_t(w)] = comp;
                        result.nodes.push_back(w);
                    } while (w != v);
                    result.compBegin.push_back(int(result.nodes.size()));
                }
            }
        }
    }
    return result;
}

SccResult
stronglyConnectedComponents(const Ddg &g)
{
    // Successor lists in outEdges order: the DFS visits edges exactly
    // as the historical DDG-walking Tarjan did, so component numbering
    // and emission order are unchanged.
    std::vector<std::vector<int>> succ(std::size_t(g.numNodes()));
    for (NodeId u = 0; u < g.numNodes(); ++u) {
        std::vector<int> &out = succ[std::size_t(u)];
        const auto edges = g.outEdges(u);
        out.reserve(edges.size());
        for (EdgeId e : edges)
            out.push_back(g.edge(e).dst);
    }
    AdjScc adj = stronglyConnectedComponents(succ);

    SccResult result;
    result.compOf = std::move(adj.compOf);
    result.comps.reserve(std::size_t(adj.numComps()));
    for (int c = 0; c < adj.numComps(); ++c) {
        result.comps.emplace_back(adj.compNodes(c),
                                  adj.compNodes(c) + adj.compSize(c));
    }
    result.isRecurrence.assign(std::size_t(result.numComps()), false);
    for (int c = 0; c < result.numComps(); ++c) {
        if (result.comps[std::size_t(c)].size() > 1) {
            result.isRecurrence[std::size_t(c)] = true;
        }
    }
    // A single node with a self edge is also a recurrence.
    for (NodeId n = 0; n < g.numNodes(); ++n) {
        for (EdgeId e : g.outEdges(n)) {
            if (g.edge(e).dst == n)
                result.isRecurrence[std::size_t(
                    result.compOf[std::size_t(n)])] = true;
        }
    }
    return result;
}

std::vector<NodeId>
topologicalOrder(const Ddg &g)
{
    const SccResult scc = stronglyConnectedComponents(g);

    // Kahn's algorithm over the condensation. Tarjan emits components in
    // reverse topological order, so sorting nodes by decreasing component
    // index gives a valid order of the condensation; within a component
    // we keep node-id order for determinism.
    std::vector<NodeId> order(std::size_t(g.numNodes()));
    for (NodeId n = 0; n < g.numNodes(); ++n)
        order[std::size_t(n)] = n;
    std::stable_sort(order.begin(), order.end(),
                     [&](NodeId a, NodeId b) {
                         return scc.compOf[std::size_t(a)] >
                                scc.compOf[std::size_t(b)];
                     });
    return order;
}

std::vector<NodeId>
topologicalOrderIntraIteration(const Ddg &g)
{
    const int n = g.numNodes();
    std::vector<int> indeg(std::size_t(n), 0);
    for (NodeId u = 0; u < n; ++u) {
        for (EdgeId e : g.outEdges(u)) {
            if (g.edge(e).distance == 0)
                ++indeg[std::size_t(g.edge(e).dst)];
        }
    }
    std::vector<NodeId> ready;
    for (NodeId u = 0; u < n; ++u) {
        if (indeg[std::size_t(u)] == 0)
            ready.push_back(u);
    }
    std::vector<NodeId> order;
    order.reserve(std::size_t(n));
    for (std::size_t i = 0; i < ready.size(); ++i) {
        const NodeId u = ready[i];
        order.push_back(u);
        for (EdgeId e : g.outEdges(u)) {
            if (g.edge(e).distance != 0)
                continue;
            const NodeId v = g.edge(e).dst;
            if (--indeg[std::size_t(v)] == 0)
                ready.push_back(v);
        }
    }
    if (int(order.size()) != n) {
        SWP_FATAL("loop '", g.name(),
                  "' has a zero-distance dependence cycle");
    }
    return order;
}

std::vector<std::vector<bool>>
reachability(const Ddg &g)
{
    const int n = g.numNodes();
    const SccResult scc = stronglyConnectedComponents(g);
    const int nc = scc.numComps();

    // Tarjan emits components in reverse topological order: for an edge
    // between distinct components a -> b, compOf(b) < compOf(a). So
    // iterating components in increasing index processes successors first
    // and component reach sets are complete when read.
    std::vector<std::vector<bool>> compReach(
        std::size_t(nc), std::vector<bool>(std::size_t(nc), false));
    for (int c = 0; c < nc; ++c) {
        if (scc.isRecurrence[std::size_t(c)])
            compReach[std::size_t(c)][std::size_t(c)] = true;
        for (NodeId u : scc.comps[std::size_t(c)]) {
            for (EdgeId e : g.outEdges(u)) {
                const int d =
                    scc.compOf[std::size_t(g.edge(e).dst)];
                if (d == c)
                    continue;
                compReach[std::size_t(c)][std::size_t(d)] = true;
                for (int w = 0; w < nc; ++w) {
                    if (compReach[std::size_t(d)][std::size_t(w)])
                        compReach[std::size_t(c)][std::size_t(w)] = true;
                }
            }
        }
    }

    std::vector<std::vector<bool>> reach(
        std::size_t(n), std::vector<bool>(std::size_t(n), false));
    for (NodeId u = 0; u < n; ++u) {
        const int cu = scc.compOf[std::size_t(u)];
        for (NodeId v = 0; v < n; ++v) {
            const int cv = scc.compOf[std::size_t(v)];
            if (cu == cv) {
                reach[std::size_t(u)][std::size_t(v)] =
                    scc.isRecurrence[std::size_t(cu)];
            } else {
                reach[std::size_t(u)][std::size_t(v)] =
                    compReach[std::size_t(cu)][std::size_t(cv)];
            }
        }
    }
    return reach;
}

} // namespace swp
