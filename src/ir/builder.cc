#include "ir/builder.hh"

namespace swp
{

Ddg
buildPaperExampleLoop()
{
    DdgBuilder b("fig2");
    const NodeId ld = b.load("Ld");
    const NodeId mul = b.mul("*");
    const NodeId add = b.add("+");
    const NodeId st = b.store("St");

    b.flow(ld, mul, 0);   // y(i) feeds the multiply.
    b.flow(ld, add, 3);   // y(i-3) is a loop-carried use at distance 3.
    b.flow(mul, add, 0);  // y(i)*a feeds the add.
    b.flow(add, st, 0);   // the sum is stored to x(i).
    b.invariant("a", {mul});
    return b.take();
}

} // namespace swp
