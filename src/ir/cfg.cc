#include "ir/cfg.hh"

#include <map>

#include "ir/verify.hh"
#include "support/diag.hh"

namespace swp
{

namespace
{

/** A loop-carried use to resolve once the whole body is flattened. */
struct DeferredEdge
{
    NodeId consumer;
    std::string name;
    int distance;
};

/** Flattening state. */
struct Converter
{
    Ddg g;
    std::map<std::string, InvId> invariants;
    std::vector<DeferredEdge> deferred;
    int selectCount = 0;

    explicit Converter(const CfgLoop &loop) : g(loop.name)
    {
        for (const std::string &inv : loop.invariants) {
            if (invariants.count(inv))
                SWP_FATAL("duplicate invariant '", inv, "'");
            invariants.emplace(inv, g.addInvariant(inv));
        }
    }

    /** Attach one operand of `node`, deferring carried uses. */
    void
    attachUse(NodeId node, const CfgOperand &use,
              const std::map<std::string, NodeId> &env)
    {
        if (use.invariant) {
            const auto it = invariants.find(use.name);
            if (it == invariants.end())
                SWP_FATAL("unknown invariant '", use.name, "'");
            g.addInvariantUse(it->second, node);
            return;
        }
        if (use.distance > 0) {
            deferred.push_back({node, use.name, use.distance});
            return;
        }
        const auto it = env.find(use.name);
        if (it == env.end()) {
            SWP_FATAL("use of undefined value '", use.name,
                      "' (zero-distance uses must follow their "
                      "definition)");
        }
        g.addEdge(it->second, node, DepKind::RegFlow, 0);
    }

    /** Flatten a statement list into the graph, updating `env`. */
    void
    flatten(const std::vector<CfgStmt> &stmts,
            std::map<std::string, NodeId> &env)
    {
        for (const CfgStmt &stmt : stmts) {
            if (stmt.kind == CfgStmt::Kind::Op) {
                const NodeId node =
                    g.addNode(stmt.op, stmt.def.empty()
                                           ? std::string()
                                           : stmt.def);
                for (const CfgOperand &use : stmt.uses)
                    attachUse(node, use, env);
                if (!stmt.def.empty()) {
                    if (!producesValue(stmt.op)) {
                        SWP_FATAL("statement '", stmt.def,
                                  "' defines a name but its opcode "
                                  "produces no value");
                    }
                    env[stmt.def] = node;
                }
                continue;
            }

            // If/then/else: flatten both arms from the same base
            // environment, then merge divergent names with selects.
            std::map<std::string, NodeId> thenEnv = env;
            std::map<std::string, NodeId> elseEnv = env;
            flatten(stmt.thenBody, thenEnv);
            flatten(stmt.elseBody, elseEnv);

            // Names whose post-arm values diverge.
            std::map<std::string, std::pair<NodeId, NodeId>> merges;
            for (const auto &[name, node] : thenEnv) {
                const auto inElse = elseEnv.find(name);
                const NodeId other = inElse == elseEnv.end()
                                         ? invalidNode
                                         : inElse->second;
                if (other != node)
                    merges[name] = {node, other};
            }
            for (const auto &[name, node] : elseEnv) {
                if (!thenEnv.count(name))
                    merges[name] = {invalidNode, node};
            }

            for (const auto &[name, pair] : merges) {
                const auto [vThen, vElse] = pair;
                if (vThen == invalidNode || vElse == invalidNode) {
                    // Defined on one path with no prior value: a
                    // branch-local temporary. It cannot escape the
                    // conditional; later zero-distance uses will fail
                    // with "undefined value", which is the accurate
                    // diagnosis.
                    env.erase(name);
                    continue;
                }
                const NodeId sel =
                    g.addNode(Opcode::Select, "phi_" + name);
                ++selectCount;
                attachUse(sel, stmt.cond, env);
                g.addEdge(vThen, sel, DepKind::RegFlow, 0);
                g.addEdge(vElse, sel, DepKind::RegFlow, 0);
                env[name] = sel;
            }
        }
    }

    /** Bind the loop-carried uses against the end-of-iteration values. */
    void
    resolveDeferred(const std::map<std::string, NodeId> &final_env)
    {
        for (const DeferredEdge &d : deferred) {
            const auto it = final_env.find(d.name);
            if (it == final_env.end()) {
                SWP_FATAL("loop-carried use of undefined value '",
                          d.name, "'");
            }
            g.addEdge(it->second, d.consumer, DepKind::RegFlow,
                      d.distance);
        }
    }
};

} // namespace

Ddg
ifConvert(const CfgLoop &loop)
{
    Converter conv(loop);
    std::map<std::string, NodeId> env;
    conv.flatten(loop.body, env);
    conv.resolveDeferred(env);

    std::string why;
    if (!verifyDdg(conv.g, &why))
        SWP_FATAL("IF-conversion produced a malformed graph: ", why);
    return std::move(conv.g);
}

int
countSelects(const CfgLoop &loop)
{
    Converter conv(loop);
    std::map<std::string, NodeId> env;
    conv.flatten(loop.body, env);
    return conv.selectCount;
}

} // namespace swp
