/**
 * @file
 * Operation codes and functional-unit classes.
 *
 * The paper's machine models (Section 5) have four functional unit
 * classes: load/store units, adders, multipliers and non-pipelined
 * divide/square-root units. Opcodes map onto those classes.
 */

#ifndef SWP_IR_OPCODE_HH
#define SWP_IR_OPCODE_HH

#include <string>

namespace swp
{

/** Operation kind of a dependence-graph node. */
enum class Opcode
{
    Load,   ///< Memory read; produces a value.
    Store,  ///< Memory write; produces no register value.
    Add,    ///< FP add (also covers subtract); executes on an adder.
    Mul,    ///< FP multiply.
    Div,    ///< FP divide; non-pipelined unit.
    Sqrt,   ///< Square root; non-pipelined unit.
    Copy,   ///< Register move; executes on an adder.
    Nop,    ///< Placeholder; consumes an issue slot on an adder.
    Select, ///< Predicated select (the residue of IF-conversion [2]);
            ///< picks between two values on an adder.
};

/** Number of Opcode values (for per-opcode table sizing). */
constexpr int numOpcodes = 9;

/** Functional-unit class an operation executes on. */
enum class FuClass
{
    Mem,      ///< Load/store units.
    Adder,    ///< FP adders (Add, Copy, Nop).
    Mult,     ///< FP multipliers.
    DivSqrt,  ///< Non-pipelined divide/square-root units.
};

/** Number of FuClass values (for array sizing). */
constexpr int numFuClasses = 4;

/** Map an opcode to the unit class executing it. */
FuClass fuClassOf(Opcode op);

/** True if the opcode defines a register value. */
bool producesValue(Opcode op);

/** Short mnemonic ("ld", "st", "add", ...). */
const char *opcodeName(Opcode op);

/** Parse a mnemonic; throws FatalError for unknown names. */
Opcode parseOpcode(const std::string &name);

/** Printable functional-unit class name. */
const char *fuClassName(FuClass fu);

} // namespace swp

#endif // SWP_IR_OPCODE_HH
