#include "ir/opcode.hh"

#include "support/diag.hh"

namespace swp
{

FuClass
fuClassOf(Opcode op)
{
    switch (op) {
      case Opcode::Load:
      case Opcode::Store:
        return FuClass::Mem;
      case Opcode::Add:
      case Opcode::Copy:
      case Opcode::Nop:
      case Opcode::Select:
        return FuClass::Adder;
      case Opcode::Mul:
        return FuClass::Mult;
      case Opcode::Div:
      case Opcode::Sqrt:
        return FuClass::DivSqrt;
    }
    SWP_PANIC("unknown opcode ", int(op));
}

bool
producesValue(Opcode op)
{
    return op != Opcode::Store && op != Opcode::Nop;
}

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Load: return "ld";
      case Opcode::Store: return "st";
      case Opcode::Add: return "add";
      case Opcode::Mul: return "mul";
      case Opcode::Div: return "div";
      case Opcode::Sqrt: return "sqrt";
      case Opcode::Copy: return "copy";
      case Opcode::Nop: return "nop";
      case Opcode::Select: return "sel";
    }
    SWP_PANIC("unknown opcode ", int(op));
}

Opcode
parseOpcode(const std::string &name)
{
    if (name == "ld") return Opcode::Load;
    if (name == "st") return Opcode::Store;
    if (name == "add") return Opcode::Add;
    if (name == "mul") return Opcode::Mul;
    if (name == "div") return Opcode::Div;
    if (name == "sqrt") return Opcode::Sqrt;
    if (name == "copy") return Opcode::Copy;
    if (name == "nop") return Opcode::Nop;
    if (name == "sel") return Opcode::Select;
    SWP_FATAL("unknown opcode mnemonic '", name, "'");
}

const char *
fuClassName(FuClass fu)
{
    switch (fu) {
      case FuClass::Mem: return "mem";
      case FuClass::Adder: return "adder";
      case FuClass::Mult: return "mult";
      case FuClass::DivSqrt: return "divsqrt";
    }
    SWP_PANIC("unknown fu class ", int(fu));
}

} // namespace swp
