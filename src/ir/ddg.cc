#include "ir/ddg.hh"

#include <sstream>

#include "support/diag.hh"

namespace swp
{

NodeId
Ddg::addNode(Opcode op, std::string name, NodeOrigin origin)
{
    Core &core = mut();
    const NodeId id = NodeId(core.nodes.size());
    Node n;
    n.op = op;
    n.name = name.empty() ? std::string(opcodeName(op)) +
                                std::to_string(id)
                          : std::move(name);
    n.origin = origin;
    core.nodes.push_back(std::move(n));
    core.out.emplace_back();
    core.in.emplace_back();
    return id;
}

EdgeId
Ddg::addEdge(NodeId src, NodeId dst, DepKind kind, int distance,
             bool non_spillable)
{
    SWP_ASSERT(src >= 0 && src < numNodes(), "bad edge source ", src);
    SWP_ASSERT(dst >= 0 && dst < numNodes(), "bad edge target ", dst);
    SWP_ASSERT(distance >= 0, "negative dependence distance ", distance);
    if (kind == DepKind::RegFlow) {
        SWP_ASSERT(producesValue(node(src).op),
                   "register flow edge from non-producing node ",
                   node(src).name);
    }
    Core &core = mut();
    const EdgeId id = EdgeId(core.edges.size());
    Edge e;
    e.src = src;
    e.dst = dst;
    e.kind = kind;
    e.distance = distance;
    e.nonSpillable = non_spillable;
    core.edges.push_back(e);
    core.out[std::size_t(src)].push_back(id);
    core.in[std::size_t(dst)].push_back(id);
    return id;
}

InvId
Ddg::addInvariant(std::string name)
{
    Core &core = mut();
    const InvId id = InvId(core.invariants.size());
    Invariant inv;
    inv.name = name.empty() ? "inv" + std::to_string(id) : std::move(name);
    core.invariants.push_back(std::move(inv));
    return id;
}

void
Ddg::addInvariantUse(InvId inv, NodeId node)
{
    SWP_ASSERT(inv >= 0 && inv < numInvariants(), "bad invariant ", inv);
    SWP_ASSERT(node >= 0 && node < numNodes(), "bad node ", node);
    Core &core = mut();
    core.invariants[std::size_t(inv)].consumers.push_back(node);
    core.nodes[std::size_t(node)].invariantUses.push_back(inv);
}

void
Ddg::killEdge(EdgeId e)
{
    SWP_ASSERT(e >= 0 && e < numEdges(), "bad edge id ", e);
    mut().edges[std::size_t(e)].alive = false;
}

std::vector<EdgeId>
Ddg::outEdges(NodeId n) const
{
    std::vector<EdgeId> live;
    for (EdgeId e : core_->out[std::size_t(n)]) {
        if (core_->edges[std::size_t(e)].alive)
            live.push_back(e);
    }
    return live;
}

std::vector<EdgeId>
Ddg::inEdges(NodeId n) const
{
    std::vector<EdgeId> live;
    for (EdgeId e : core_->in[std::size_t(n)]) {
        if (core_->edges[std::size_t(e)].alive)
            live.push_back(e);
    }
    return live;
}

std::vector<EdgeId>
Ddg::valueUses(NodeId n) const
{
    std::vector<EdgeId> uses;
    for (EdgeId e : core_->out[std::size_t(n)]) {
        const Edge &edge = core_->edges[std::size_t(e)];
        if (edge.alive && edge.kind == DepKind::RegFlow)
            uses.push_back(e);
    }
    return uses;
}

int
Ddg::numValueUses(NodeId n) const
{
    int count = 0;
    for (EdgeId e : core_->out[std::size_t(n)]) {
        const Edge &edge = core_->edges[std::size_t(e)];
        if (edge.alive && edge.kind == DepKind::RegFlow)
            ++count;
    }
    return count;
}

int
Ddg::numLiveInvariants() const
{
    int count = 0;
    for (const Invariant &inv : core_->invariants) {
        if (!inv.spilled)
            ++count;
    }
    return count;
}

int
Ddg::countOrigin(NodeOrigin origin) const
{
    int count = 0;
    for (const Node &n : core_->nodes) {
        if (n.origin == origin)
            ++count;
    }
    return count;
}

int
Ddg::numMemOps() const
{
    int count = 0;
    for (const Node &n : core_->nodes) {
        if (n.op == Opcode::Load || n.op == Opcode::Store)
            ++count;
    }
    return count;
}

std::string
Ddg::dump() const
{
    std::ostringstream os;
    os << "ddg " << name() << " (" << numNodes() << " nodes, "
       << numInvariants() << " invariants)\n";
    for (NodeId n = 0; n < numNodes(); ++n) {
        const Node &node = core_->nodes[std::size_t(n)];
        os << "  n" << n << " " << node.name << " ["
           << opcodeName(node.op) << "]";
        if (node.origin == NodeOrigin::SpillLoad)
            os << " (spill-load)";
        if (node.origin == NodeOrigin::SpillStore)
            os << " (spill-store)";
        if (node.nonSpillableValue)
            os << " (non-spillable)";
        os << "\n";
        for (EdgeId e : outEdges(n)) {
            const Edge &edge = core_->edges[std::size_t(e)];
            os << "    -> n" << edge.dst << " ("
               << (edge.kind == DepKind::RegFlow
                       ? "reg"
                       : edge.kind == DepKind::Mem ? "mem" : "ctrl")
               << ", d=" << edge.distance
               << (edge.nonSpillable ? ", fused" : "") << ")\n";
        }
    }
    for (InvId i = 0; i < numInvariants(); ++i) {
        const Invariant &inv = core_->invariants[std::size_t(i)];
        os << "  inv" << i << " " << inv.name << " uses="
           << inv.consumers.size() << (inv.spilled ? " (spilled)" : "")
           << "\n";
    }
    return os.str();
}

} // namespace swp
