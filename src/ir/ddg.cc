#include "ir/ddg.hh"

#include <sstream>

#include "support/diag.hh"

namespace swp
{

NodeId
Ddg::addNode(Opcode op, std::string name, NodeOrigin origin)
{
    const NodeId id = NodeId(nodes_.size());
    Node n;
    n.op = op;
    n.name = name.empty() ? std::string(opcodeName(op)) +
                                std::to_string(id)
                          : std::move(name);
    n.origin = origin;
    nodes_.push_back(std::move(n));
    out_.emplace_back();
    in_.emplace_back();
    return id;
}

EdgeId
Ddg::addEdge(NodeId src, NodeId dst, DepKind kind, int distance,
             bool non_spillable)
{
    SWP_ASSERT(src >= 0 && src < numNodes(), "bad edge source ", src);
    SWP_ASSERT(dst >= 0 && dst < numNodes(), "bad edge target ", dst);
    SWP_ASSERT(distance >= 0, "negative dependence distance ", distance);
    if (kind == DepKind::RegFlow) {
        SWP_ASSERT(producesValue(nodes_[std::size_t(src)].op),
                   "register flow edge from non-producing node ",
                   nodes_[std::size_t(src)].name);
    }
    const EdgeId id = EdgeId(edges_.size());
    Edge e;
    e.src = src;
    e.dst = dst;
    e.kind = kind;
    e.distance = distance;
    e.nonSpillable = non_spillable;
    edges_.push_back(e);
    out_[std::size_t(src)].push_back(id);
    in_[std::size_t(dst)].push_back(id);
    return id;
}

InvId
Ddg::addInvariant(std::string name)
{
    const InvId id = InvId(invariants_.size());
    Invariant inv;
    inv.name = name.empty() ? "inv" + std::to_string(id) : std::move(name);
    invariants_.push_back(std::move(inv));
    return id;
}

void
Ddg::addInvariantUse(InvId inv, NodeId node)
{
    SWP_ASSERT(inv >= 0 && inv < numInvariants(), "bad invariant ", inv);
    SWP_ASSERT(node >= 0 && node < numNodes(), "bad node ", node);
    invariants_[std::size_t(inv)].consumers.push_back(node);
    nodes_[std::size_t(node)].invariantUses.push_back(inv);
}

void
Ddg::killEdge(EdgeId e)
{
    SWP_ASSERT(e >= 0 && e < numEdges(), "bad edge id ", e);
    edges_[std::size_t(e)].alive = false;
}

std::vector<EdgeId>
Ddg::outEdges(NodeId n) const
{
    std::vector<EdgeId> live;
    for (EdgeId e : out_[std::size_t(n)]) {
        if (edges_[std::size_t(e)].alive)
            live.push_back(e);
    }
    return live;
}

std::vector<EdgeId>
Ddg::inEdges(NodeId n) const
{
    std::vector<EdgeId> live;
    for (EdgeId e : in_[std::size_t(n)]) {
        if (edges_[std::size_t(e)].alive)
            live.push_back(e);
    }
    return live;
}

std::vector<EdgeId>
Ddg::valueUses(NodeId n) const
{
    std::vector<EdgeId> uses;
    for (EdgeId e : out_[std::size_t(n)]) {
        const Edge &edge = edges_[std::size_t(e)];
        if (edge.alive && edge.kind == DepKind::RegFlow)
            uses.push_back(e);
    }
    return uses;
}

int
Ddg::numValueUses(NodeId n) const
{
    int count = 0;
    for (EdgeId e : out_[std::size_t(n)]) {
        const Edge &edge = edges_[std::size_t(e)];
        if (edge.alive && edge.kind == DepKind::RegFlow)
            ++count;
    }
    return count;
}

int
Ddg::numLiveInvariants() const
{
    int count = 0;
    for (const Invariant &inv : invariants_) {
        if (!inv.spilled)
            ++count;
    }
    return count;
}

int
Ddg::countOrigin(NodeOrigin origin) const
{
    int count = 0;
    for (const Node &n : nodes_) {
        if (n.origin == origin)
            ++count;
    }
    return count;
}

int
Ddg::numMemOps() const
{
    int count = 0;
    for (const Node &n : nodes_) {
        if (n.op == Opcode::Load || n.op == Opcode::Store)
            ++count;
    }
    return count;
}

std::string
Ddg::dump() const
{
    std::ostringstream os;
    os << "ddg " << name_ << " (" << numNodes() << " nodes, "
       << numInvariants() << " invariants)\n";
    for (NodeId n = 0; n < numNodes(); ++n) {
        const Node &node = nodes_[std::size_t(n)];
        os << "  n" << n << " " << node.name << " ["
           << opcodeName(node.op) << "]";
        if (node.origin == NodeOrigin::SpillLoad)
            os << " (spill-load)";
        if (node.origin == NodeOrigin::SpillStore)
            os << " (spill-store)";
        if (node.nonSpillableValue)
            os << " (non-spillable)";
        os << "\n";
        for (EdgeId e : outEdges(n)) {
            const Edge &edge = edges_[std::size_t(e)];
            os << "    -> n" << edge.dst << " ("
               << (edge.kind == DepKind::RegFlow
                       ? "reg"
                       : edge.kind == DepKind::Mem ? "mem" : "ctrl")
               << ", d=" << edge.distance
               << (edge.nonSpillable ? ", fused" : "") << ")\n";
        }
    }
    for (InvId i = 0; i < numInvariants(); ++i) {
        const Invariant &inv = invariants_[std::size_t(i)];
        os << "  inv" << i << " " << inv.name << " uses="
           << inv.consumers.size() << (inv.spilled ? " (spilled)" : "")
           << "\n";
    }
    return os.str();
}

} // namespace swp
