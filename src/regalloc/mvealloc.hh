/**
 * @file
 * Register allocation under modulo variable expansion (MVE) — the
 * software alternative to a rotating register file (Section 2.3; Lam,
 * PLDI 1988).
 *
 * Without renaming hardware, values outliving the II get distinct
 * register *names* by unrolling the kernel U = max_v ceil(LT_v/II)
 * times. A value v then needs p_v names used cyclically, where p_v is
 * the smallest divisor of U with p_v >= ceil(LT_v/II) (the period must
 * divide the unroll factor or the wrap from the last copy back to the
 * first would mismatch). Each name owns a fixed set of arcs on the
 * unrolled time circle of circumference U*II; names of different
 * values may share a physical register when their arc sets are
 * disjoint, which a greedy circular coloring exploits.
 *
 * Comparing the resulting register count with the rotating-file
 * allocation (rotalloc) quantifies what the rotating hardware buys —
 * the classic argument for it, reproduced by bench/ablation_allocator.
 */

#ifndef SWP_REGALLOC_MVEALLOC_HH
#define SWP_REGALLOC_MVEALLOC_HH

#include <vector>

#include "liferange/lifetimes.hh"

namespace swp
{

/** MVE allocation result. */
struct MveAllocResult
{
    int unroll = 1;     ///< Kernel copies (U).
    int registers = 0;  ///< Physical registers after name coloring.
    /** Name period per producing node (0 for non-values). */
    std::vector<int> period;
    /** Physical register of name 0 per producing node (diagnostics;
     *  the names of one value need not be contiguous after coloring). */
    std::vector<int> base;
    /** Full coloring: nameRegs[v][b] is the physical register of name b
     *  of value v (empty vector for non-values). The independent
     *  verifier (verify/legality) checks this mapping arc by arc. */
    std::vector<std::vector<int>> nameRegs;
};

/**
 * Allocate all live loop-variant lifetimes under MVE.
 * Loop invariants still need one static register each (not counted
 * here, as in rotalloc).
 */
MveAllocResult allocateMve(const LifetimeInfo &lifetimes);

} // namespace swp

#endif // SWP_REGALLOC_MVEALLOC_HH
