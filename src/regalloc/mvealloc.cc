#include "regalloc/mvealloc.hh"

#include <algorithm>

#include "support/diag.hh"

namespace swp
{

namespace
{

long
fmod2(long a, long m)
{
    const long r = a % m;
    return r < 0 ? r + m : r;
}

/** Circular arcs [start, start+len) claimed by one register name. */
struct NameArcs
{
    NodeId value;
    std::vector<long> starts;
    long len;

    bool
    overlaps(const NameArcs &other, long circ) const
    {
        for (long a : starts) {
            for (long b : other.starts) {
                if (fmod2(b - a, circ) < len ||
                    fmod2(a - b, circ) < other.len) {
                    return true;
                }
            }
        }
        return false;
    }
};

/** Smallest divisor of u that is >= need. */
int
periodFor(int u, int need)
{
    for (int p = need; p <= u; ++p) {
        if (u % p == 0)
            return p;
    }
    return u;
}

} // namespace

MveAllocResult
allocateMve(const LifetimeInfo &lifetimes)
{
    MveAllocResult result;
    result.unroll = mveUnrollFactor(lifetimes);
    result.period.assign(lifetimes.lifetimes.size(), 0);
    result.base.assign(lifetimes.lifetimes.size(), -1);
    result.nameRegs.assign(lifetimes.lifetimes.size(), {});

    const long ii = lifetimes.ii;
    const long circ = long(result.unroll) * ii;

    // Build the register names: value v needs p_v names; name b of v
    // owns the arcs of instances j == b (mod p_v) over the U copies.
    std::vector<NameArcs> names;
    std::vector<std::pair<NodeId, int>> nameOwner;  // (value, b).
    for (const Lifetime &lt : lifetimes.lifetimes) {
        if (!lt.live || lt.length() <= 0)
            continue;
        const int need = int((lt.length() + ii - 1) / ii);
        const int p = periodFor(result.unroll, need);
        result.period[std::size_t(lt.producer)] = p;
        result.nameRegs[std::size_t(lt.producer)].assign(
            std::size_t(p), -1);
        for (int b = 0; b < p; ++b) {
            NameArcs arcs;
            arcs.value = lt.producer;
            arcs.len = lt.length();
            for (int j = b; j < result.unroll; j += p)
                arcs.starts.push_back(
                    fmod2(lt.start + long(j) * ii, circ));
            names.push_back(std::move(arcs));
            nameOwner.emplace_back(lt.producer, b);
        }
    }

    // Greedy circular coloring, longest-lived names first (they are
    // hardest to place), ties by start for determinism.
    std::vector<std::size_t> order(names.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         if (names[a].len != names[b].len)
                             return names[a].len > names[b].len;
                         return names[a].starts[0] < names[b].starts[0];
                     });

    std::vector<std::vector<std::size_t>> colors;  // name ids per reg.
    std::vector<int> colorOf(names.size(), -1);
    for (std::size_t id : order) {
        int chosen = -1;
        for (std::size_t c = 0; c < colors.size() && chosen < 0; ++c) {
            bool free = true;
            for (std::size_t other : colors[c]) {
                if (names[id].overlaps(names[other], circ)) {
                    free = false;
                    break;
                }
            }
            if (free)
                chosen = int(c);
        }
        if (chosen < 0) {
            chosen = int(colors.size());
            colors.emplace_back();
        }
        colors[std::size_t(chosen)].push_back(id);
        colorOf[id] = chosen;
    }
    result.registers = int(colors.size());

    // Record the full name -> register map, plus the base color of each
    // value's name 0 (the names of one value need not be contiguous
    // after coloring, so diagnostics show base while the verifier walks
    // nameRegs).
    for (std::size_t id = 0; id < names.size(); ++id) {
        const auto &[value, b] = nameOwner[id];
        result.nameRegs[std::size_t(value)][std::size_t(b)] = colorOf[id];
        if (b == 0)
            result.base[std::size_t(value)] = colorOf[id];
    }
    return result;
}

} // namespace swp
