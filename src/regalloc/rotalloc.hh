/**
 * @file
 * Register allocation for software-pipelined loops on a rotating
 * register file, after Rau, Lee, Tirumalai and Schlansker (PLDI 1992).
 *
 * With a rotating file of R registers, instance i of value v (allocated
 * offset o_v) occupies physical register (o_v + i) mod R during
 * [start_v + i*II, end_v + i*II). Two values conflict exactly when their
 * arcs [q_v, q_v + LT_v) overlap on a circle of circumference C = R*II,
 * where q_v = (start_v - o_v*II) mod C. Choosing o_v freely means q_v
 * ranges over all residues congruent to start_v modulo II, so
 * allocation is packing |V| arcs of lengths LT_v at II-aligned anchors.
 *
 * The paper reports that the "wands-only" strategy using end-fit with
 * adjacency ordering almost never needs more than MaxLive + 1 registers;
 * end-fit with start-time (adjacency) ordering is our default, with
 * first-fit and best-fit provided for comparison.
 *
 * Loop invariants are allocated in static registers, one each.
 */

#ifndef SWP_REGALLOC_ROTALLOC_HH
#define SWP_REGALLOC_ROTALLOC_HH

#include <string>
#include <vector>

#include "ir/ddg.hh"
#include "liferange/lifetimes.hh"
#include "sched/schedule.hh"

namespace swp
{

/** Placement rule for each lifetime. */
enum class FitStrategy
{
    EndFit,    ///< Abut the end of an allocated arc (minimal left gap).
    FirstFit,  ///< Smallest feasible register offset.
    BestFit,   ///< Tightest enclosing free gap.
};

/** Processing order of the lifetimes. */
enum class AllocOrder
{
    Adjacency,         ///< Ascending start time (Rau's adjacency order).
    DescendingLength,  ///< Longest lifetimes first.
};

const char *fitStrategyName(FitStrategy s);

/** Result of allocating the loop variants of one schedule. */
struct RotAllocResult
{
    bool ok = false;
    int registers = 0;  ///< Rotating registers used (the R it fit into).
    /** Register offset o_v per producing node; -1 for non-values. */
    std::vector<int> offset;
};

/**
 * Try to pack all live loop-variant lifetimes into a rotating file of
 * `num_regs` registers.
 */
RotAllocResult allocateRotating(const LifetimeInfo &lifetimes,
                                int num_regs,
                                FitStrategy strategy = FitStrategy::EndFit,
                                AllocOrder order = AllocOrder::Adjacency);

/**
 * Smallest register count the strategy fits into, searching upward from
 * the MaxLive lower bound. Returns cap+1 if even `cap` registers fail.
 */
int minRotatingRegs(const LifetimeInfo &lifetimes,
                    FitStrategy strategy = FitStrategy::EndFit,
                    AllocOrder order = AllocOrder::Adjacency,
                    int cap = 1024);

/** Complete register allocation of a scheduled loop. */
struct AllocationOutcome
{
    bool fits = false;       ///< regsRequired <= budget.
    int regsRequired = 0;    ///< rotating + invariant registers.
    int rotating = 0;        ///< Rotating registers for loop variants.
    int invariants = 0;      ///< Static registers for loop invariants.
    int maxLive = 0;         ///< The MaxLive lower bound used.
    RotAllocResult rotAlloc;
};

/**
 * Allocate a scheduled loop against a register budget: rotating
 * registers for the loop variants (actual requirement, not MaxLive)
 * plus one static register per live invariant.
 */
AllocationOutcome allocateLoop(const Ddg &g, const Schedule &sched,
                               int budget,
                               FitStrategy strategy = FitStrategy::EndFit);

/**
 * Verify an allocation: no two lifetimes' arcs overlap (the conflict
 * lemma above). Exposed for tests and the pipeline simulator.
 */
bool allocationConflictFree(const LifetimeInfo &lifetimes,
                            const RotAllocResult &alloc,
                            std::string *why = nullptr);

} // namespace swp

#endif // SWP_REGALLOC_ROTALLOC_HH
