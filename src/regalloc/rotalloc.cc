#include "regalloc/rotalloc.hh"

#include <algorithm>
#include <limits>

#include "support/diag.hh"
#include "support/strutil.hh"

namespace swp
{

namespace
{

/** An occupied arc [start, start+len) on the allocation circle. */
struct Arc
{
    long start;
    long len;
};

/** floorMod for longs. */
long
fmod2(long a, long m)
{
    const long r = a % m;
    return r < 0 ? r + m : r;
}

/** True if circular arcs [q1,q1+l1) and [q2,q2+l2) intersect mod C. */
bool
arcsOverlap(long q1, long l1, long q2, long l2, long circ)
{
    if (l1 <= 0 || l2 <= 0)
        return false;
    return fmod2(q2 - q1, circ) < l1 || fmod2(q1 - q2, circ) < l2;
}

/** Gap from q backwards to the end of the nearest occupied arc. */
long
leftGap(const std::vector<Arc> &occupied, long q, long circ)
{
    long best = circ;
    for (const Arc &a : occupied)
        best = std::min(best, fmod2(q - (a.start + a.len), circ));
    return best;
}

/** Gap from q+len forward to the start of the nearest occupied arc. */
long
rightGap(const std::vector<Arc> &occupied, long q, long len, long circ)
{
    long best = circ;
    for (const Arc &a : occupied)
        best = std::min(best, fmod2(a.start - (q + len), circ));
    return best;
}

} // namespace

const char *
fitStrategyName(FitStrategy s)
{
    switch (s) {
      case FitStrategy::EndFit: return "end-fit";
      case FitStrategy::FirstFit: return "first-fit";
      case FitStrategy::BestFit: return "best-fit";
    }
    SWP_PANIC("unknown fit strategy ", int(s));
}

RotAllocResult
allocateRotating(const LifetimeInfo &lifetimes, int num_regs,
                 FitStrategy strategy, AllocOrder order)
{
    RotAllocResult result;
    result.offset.assign(lifetimes.lifetimes.size(), -1);
    result.registers = num_regs;

    const long ii = lifetimes.ii;
    const long circ = long(num_regs) * ii;

    std::vector<const Lifetime *> values;
    for (const Lifetime &lt : lifetimes.lifetimes) {
        if (lt.live && lt.length() > 0)
            values.push_back(&lt);
    }

    switch (order) {
      case AllocOrder::Adjacency:
        std::stable_sort(values.begin(), values.end(),
                         [](const Lifetime *a, const Lifetime *b) {
                             if (a->start != b->start)
                                 return a->start < b->start;
                             return a->length() > b->length();
                         });
        break;
      case AllocOrder::DescendingLength:
        std::stable_sort(values.begin(), values.end(),
                         [](const Lifetime *a, const Lifetime *b) {
                             if (a->length() != b->length())
                                 return a->length() > b->length();
                             return a->start < b->start;
                         });
        break;
    }

    std::vector<Arc> occupied;
    for (const Lifetime *lt : values) {
        const long len = lt->length();
        if (len > circ)
            return result;  // A single value exceeds the whole file.

        long bestQ = -1;
        long bestKey = -1;
        for (int o = 0; o < num_regs; ++o) {
            const long q = fmod2(lt->start - long(o) * ii, circ);
            bool fits = true;
            for (const Arc &a : occupied) {
                if (arcsOverlap(q, len, a.start, a.len, circ)) {
                    fits = false;
                    break;
                }
            }
            if (!fits)
                continue;

            long key = 0;
            switch (strategy) {
              case FitStrategy::FirstFit:
                key = 0;  // First feasible offset wins.
                break;
              case FitStrategy::EndFit:
                key = leftGap(occupied, q, circ);
                break;
              case FitStrategy::BestFit:
                key = leftGap(occupied, q, circ) +
                      rightGap(occupied, q, len, circ);
                break;
            }
            if (bestQ < 0 || key < bestKey) {
                bestQ = q;
                bestKey = key;
                result.offset[std::size_t(lt->producer)] = o;
            }
            if (strategy == FitStrategy::FirstFit)
                break;
            if (key == 0)
                break;  // Cannot improve on a zero gap.
        }
        if (bestQ < 0)
            return result;  // No feasible position: allocation fails.
        occupied.push_back({bestQ, len});
    }

    result.ok = true;
    return result;
}

int
minRotatingRegs(const LifetimeInfo &lifetimes, FitStrategy strategy,
                AllocOrder order, int cap)
{
    bool anyLive = false;
    for (const Lifetime &lt : lifetimes.lifetimes) {
        if (lt.live && lt.length() > 0) {
            anyLive = true;
            break;
        }
    }
    if (!anyLive)
        return 0;

    for (int r = std::max(1, lifetimes.maxLive); r <= cap; ++r) {
        if (allocateRotating(lifetimes, r, strategy, order).ok)
            return r;
    }
    return cap + 1;
}

AllocationOutcome
allocateLoop(const Ddg &g, const Schedule &sched, int budget,
             FitStrategy strategy)
{
    const LifetimeInfo info = analyzeLifetimes(g, sched);

    AllocationOutcome outcome;
    outcome.maxLive = info.maxLive;
    outcome.invariants = info.invariantCount;

    // Both orderings are cheap next to scheduling; take whichever packs
    // tighter (adjacency is Rau's reference ordering, descending length
    // often wins on fan-out-heavy lifetimes).
    // budget * 4 would overflow for the effectively unlimited budget of
    // ideal runs (INT_MAX / 2); such budgets never bind the search —
    // maxLive + 64 keeps it viable — so the term applies only when
    // representable.
    const int maxScalableBudget = std::numeric_limits<int>::max() / 4;
    const int cap =
        budget > maxScalableBudget
            ? std::max(info.maxLive + 64, 64)
            : std::max({budget * 4, info.maxLive + 64, 64});
    AllocOrder order = AllocOrder::Adjacency;
    outcome.rotating = minRotatingRegs(info, strategy, order, cap);
    const int byLength = minRotatingRegs(
        info, strategy, AllocOrder::DescendingLength, cap);
    if (byLength < outcome.rotating) {
        outcome.rotating = byLength;
        order = AllocOrder::DescendingLength;
    }
    if (outcome.rotating <= cap) {
        outcome.rotAlloc =
            allocateRotating(info, outcome.rotating, strategy, order);
    }
    outcome.regsRequired = outcome.rotating + outcome.invariants;
    outcome.fits = outcome.regsRequired <= budget;
    (void)g;
    return outcome;
}

bool
allocationConflictFree(const LifetimeInfo &lifetimes,
                       const RotAllocResult &alloc, std::string *why)
{
    const long ii = lifetimes.ii;
    const long circ = long(alloc.registers) * ii;

    std::vector<const Lifetime *> values;
    for (const Lifetime &lt : lifetimes.lifetimes) {
        if (lt.live && lt.length() > 0)
            values.push_back(&lt);
    }

    for (std::size_t i = 0; i < values.size(); ++i) {
        const Lifetime *a = values[i];
        const int oa = alloc.offset[std::size_t(a->producer)];
        if (oa < 0) {
            if (why)
                *why = strprintf("value n%d unallocated", a->producer);
            return false;
        }
        const long qa = fmod2(a->start - long(oa) * ii, circ);
        for (std::size_t j = i + 1; j < values.size(); ++j) {
            const Lifetime *b = values[j];
            const int ob = alloc.offset[std::size_t(b->producer)];
            if (ob < 0)
                continue;  // Reported when j reaches it.
            const long qb = fmod2(b->start - long(ob) * ii, circ);
            if (arcsOverlap(qa, a->length(), qb, b->length(), circ)) {
                if (why) {
                    *why = strprintf("values n%d and n%d overlap",
                                     a->producer, b->producer);
                }
                return false;
            }
        }
    }
    return true;
}

} // namespace swp
