/**
 * @file
 * Result of register-constrained pipelining.
 */

#ifndef SWP_PIPELINER_RESULT_HH
#define SWP_PIPELINER_RESULT_HH

#include <memory>
#include <string>

#include "ir/ddg.hh"
#include "regalloc/rotalloc.hh"
#include "sched/schedule.hh"
#include "support/diag.hh"

namespace swp
{

/**
 * Outcome of one driver strategy on one loop.
 *
 * The result does not copy the input graph: when the strategy returns a
 * schedule of the unmodified loop it only references the caller's graph
 * (which must outlive the result — the rvalue overloads of the driver
 * entry points are deleted to enforce this), and it owns a graph only
 * when spilling actually rewrote the loop. This keeps whole-suite batch
 * evaluation (src/driver) free of per-job Ddg copies.
 */
struct PipelineResult
{
    /** The schedule fits the register budget. */
    bool success = false;

    /** The acyclic (local scheduling) fallback was used. */
    bool usedFallback = false;

    /** Final schedule (valid for `graph()`). */
    Schedule sched;

    /** Register allocation of the final schedule. */
    AllocationOutcome alloc;

    /** MII of the final graph. */
    int mii = 0;

    /** Lifetimes spilled in total. */
    int spilledLifetimes = 0;

    /** Rescheduling rounds (spilling) or IIs tried (increase-II). */
    int rounds = 0;

    /** Total (II, schedule) attempts, the compile-effort proxy. */
    int attempts = 0;

    /** Strategy label for reports. */
    std::string strategy;

    /** The (possibly spill-transformed) graph the schedule refers to. */
    const Ddg &
    graph() const
    {
        SWP_ASSERT(owned_ || input_, "PipelineResult has no graph bound");
        return owned_ ? *owned_ : *input_;
    }

    /** True when the result owns a spill-transformed copy of the loop. */
    bool ownsGraph() const { return owned_ != nullptr; }

    /** The schedule refers to the caller's unmodified graph. */
    void
    bindInputGraph(const Ddg &g)
    {
        input_ = &g;
        owned_.reset();
    }

    /** The schedule refers to a transformed graph the result owns. */
    void
    adoptGraph(Ddg g)
    {
        owned_ = std::make_shared<const Ddg>(std::move(g));
        input_ = nullptr;
    }

    /** Adopt an already-shared transformed graph (no copy). */
    void
    adoptGraph(std::shared_ptr<const Ddg> g)
    {
        owned_ = std::move(g);
        input_ = nullptr;
    }

    int ii() const { return sched.ii(); }

    /** Memory operations executed per iteration. */
    int memOpsPerIteration() const { return graph().numMemOps(); }

  private:
    const Ddg *input_ = nullptr;
    std::shared_ptr<const Ddg> owned_;
};

} // namespace swp

#endif // SWP_PIPELINER_RESULT_HH
