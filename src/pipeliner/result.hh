/**
 * @file
 * Result of register-constrained pipelining.
 */

#ifndef SWP_PIPELINER_RESULT_HH
#define SWP_PIPELINER_RESULT_HH

#include <string>

#include "ir/ddg.hh"
#include "regalloc/rotalloc.hh"
#include "sched/schedule.hh"

namespace swp
{

/** Outcome of one driver strategy on one loop. */
struct PipelineResult
{
    /** The schedule fits the register budget. */
    bool success = false;

    /** The acyclic (local scheduling) fallback was used. */
    bool usedFallback = false;

    /** The (possibly spill-transformed) graph the schedule refers to. */
    Ddg graph;

    /** Final schedule (valid for `graph`). */
    Schedule sched;

    /** Register allocation of the final schedule. */
    AllocationOutcome alloc;

    /** MII of the final graph. */
    int mii = 0;

    /** Lifetimes spilled in total. */
    int spilledLifetimes = 0;

    /** Rescheduling rounds (spilling) or IIs tried (increase-II). */
    int rounds = 0;

    /** Total (II, schedule) attempts, the compile-effort proxy. */
    int attempts = 0;

    /** Strategy label for reports. */
    std::string strategy;

    int ii() const { return sched.ii(); }

    /** Memory operations executed per iteration. */
    int memOpsPerIteration() const { return graph.numMemOps(); }
};

} // namespace swp

#endif // SWP_PIPELINER_RESULT_HH
