/**
 * @file
 * The combined strategy proposed at the end of Section 5.
 *
 * Run the spilling pipeline; when it converges at II_spill, test whether
 * the original loop (without spill code) also fits the registers at
 * II_spill — if it does, binary-search the smallest such II in
 * [MII, II_spill] and keep whichever result is better. This captures the
 * few loops where increasing the II beats spilling, at the cost of one
 * extra schedule for most loops.
 */

#ifndef SWP_PIPELINER_BEST_OF_ALL_HH
#define SWP_PIPELINER_BEST_OF_ALL_HH

#include "ir/ddg.hh"
#include "machine/machine.hh"
#include "pipeliner/context.hh"
#include "pipeliner/options.hh"
#include "pipeliner/result.hh"

namespace swp
{

/** Run the combined spill + increase-II strategy. */
PipelineResult bestOfAllStrategy(const Ddg &g, const Machine &m,
                                 const PipelinerOptions &opts,
                                 const EvalContext *ctx = nullptr);

/** The result references the input graph; temporaries would dangle. */
PipelineResult bestOfAllStrategy(Ddg &&, const Machine &,
                                 const PipelinerOptions &,
                                 const EvalContext * = nullptr) = delete;

} // namespace swp

#endif // SWP_PIPELINER_BEST_OF_ALL_HH
