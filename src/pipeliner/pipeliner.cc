#include "pipeliner/pipeliner.hh"

#include <limits>

#include "sched/ii_search.hh"
#include "sched/mii.hh"
#include "support/diag.hh"

namespace swp
{

const char *
strategyName(Strategy s)
{
    switch (s) {
      case Strategy::IncreaseII: return "increase-II";
      case Strategy::Spill: return "spill";
      case Strategy::BestOfAll: return "best-of-all";
    }
    SWP_PANIC("unknown strategy ", int(s));
}

PipelineResult
pipelineLoop(const Ddg &g, const Machine &m, Strategy s,
             const PipelinerOptions &opts)
{
    switch (s) {
      case Strategy::IncreaseII:
        return increaseIiStrategy(g, m, opts);
      case Strategy::Spill:
        return spillStrategy(g, m, opts);
      case Strategy::BestOfAll:
        return bestOfAllStrategy(g, m, opts);
    }
    SWP_PANIC("unknown strategy ", int(s));
}

PipelineResult
pipelineIdeal(const Ddg &g, const Machine &m, SchedulerKind kind)
{
    PipelineResult result;
    result.strategy = "ideal";
    result.graph = g;
    result.mii = mii(g, m);

    auto scheduler = makeScheduler(kind);
    IiSearchResult search = searchIi(*scheduler, g, m, result.mii);
    result.attempts = search.attempts;
    if (!search.sched && kind != SchedulerKind::Ims) {
        // Same safety net as the spilling driver: IMS backtracks
        // through placements a non-backtracking order cannot finish.
        auto ims = makeScheduler(SchedulerKind::Ims);
        search = searchIi(*ims, g, m, result.mii);
        result.attempts += search.attempts;
    }
    SWP_ASSERT(search.sched.has_value(),
               "no schedule found for loop '", g.name(),
               "' at any II — scheduler bug");
    result.sched = std::move(*search.sched);
    result.alloc = allocateLoop(g, result.sched,
                                std::numeric_limits<int>::max() / 2,
                                FitStrategy::EndFit);
    result.success = true;
    return result;
}

} // namespace swp
