#include "pipeliner/pipeliner.hh"

#include <limits>
#include <memory>

#include "sched/ii_search.hh"
#include "sched/mii.hh"
#include "support/diag.hh"

namespace swp
{

const char *
strategyName(Strategy s)
{
    switch (s) {
      case Strategy::IncreaseII: return "increase-II";
      case Strategy::Spill: return "spill";
      case Strategy::BestOfAll: return "best-of-all";
    }
    SWP_PANIC("unknown strategy ", int(s));
}

PipelineResult
pipelineLoop(const Ddg &g, const Machine &m, Strategy s,
             const PipelinerOptions &opts, const EvalContext *ctx)
{
    switch (s) {
      case Strategy::IncreaseII:
        return increaseIiStrategy(g, m, opts, ctx);
      case Strategy::Spill:
        return spillStrategy(g, m, opts, {}, ctx);
      case Strategy::BestOfAll:
        return bestOfAllStrategy(g, m, opts, ctx);
    }
    SWP_PANIC("unknown strategy ", int(s));
}

PipelineResult
pipelineIdeal(const Ddg &g, const Machine &m, SchedulerKind kind,
              const EvalContext *ctx)
{
    PipelineResult result;
    result.strategy = "ideal";
    result.bindInputGraph(g);
    result.mii = resolveMii(ctx, g, m);

    SchedulerStorage schedStorage, imsStorage;
    ModuloScheduler &scheduler = resolveScheduler(ctx, kind, schedStorage);
    IiSearchResult search = searchIi(scheduler, g, m, result.mii);
    result.attempts = search.attempts;
    if (!search.sched && kind != SchedulerKind::Ims) {
        // Same safety net as the spilling driver: IMS backtracks
        // through placements a non-backtracking order cannot finish.
        ModuloScheduler &ims = resolveImsFallback(ctx, imsStorage);
        search = searchIi(ims, g, m, result.mii);
        result.attempts += search.attempts;
    }
    SWP_ASSERT(search.sched.has_value(),
               "no schedule found for loop '", g.name(),
               "' at any II — scheduler bug");
    result.sched = std::move(*search.sched);
    result.alloc = allocateLoop(g, result.sched,
                                std::numeric_limits<int>::max() / 2,
                                FitStrategy::EndFit);
    result.success = true;
    return result;
}

} // namespace swp
