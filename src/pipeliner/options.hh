/**
 * @file
 * Options controlling register-constrained pipelining.
 */

#ifndef SWP_PIPELINER_OPTIONS_HH
#define SWP_PIPELINER_OPTIONS_HH

#include "regalloc/rotalloc.hh"
#include "sched/scheduler.hh"
#include "spill/select.hh"

namespace swp
{

/** Knobs for the register-constrained pipelining drivers. */
struct PipelinerOptions
{
    /** Core modulo scheduler (the techniques are scheduler-agnostic). */
    SchedulerKind scheduler = SchedulerKind::Hrms;

    /** Register file size the schedule must fit in. */
    int registers = 32;

    /** Lifetime-selection heuristic for spilling (Section 4.1). */
    SpillHeuristic heuristic = SpillHeuristic::MaxLTOverTraf;

    /**
     * Spill several lifetimes per rescheduling round, selected with the
     * optimistic MaxLive estimate (Section 4.5).
     */
    bool multiSelect = false;

    /**
     * Also consider spilling single *uses* (the Section 6 "future
     * work" extension): the latest use of a multi-use value is served
     * from memory while the register copy keeps feeding the others.
     * The paper predicts little gain because most values have one use;
     * the ablation_spill_uses bench quantifies that prediction.
     */
    bool spillUses = false;

    /**
     * Start each round's II search at max(MII, previous II) instead of
     * MII ("last II tried" pruning, Section 4.5).
     */
    bool reuseLastIi = false;

    /** Register allocation placement rule. */
    FitStrategy fit = FitStrategy::EndFit;

    /** Safety bound on spill/reschedule rounds. */
    int maxSpillRounds = 256;

    /**
     * Ablation switch: schedule spill loads/stores as ordinary
     * operations instead of fusing them with their consumers/producers
     * into complex operations. Section 4.3 predicts (and the
     * ablation_fusion bench confirms) that without fusion the scheduler
     * can re-grow the spilled lifetimes and the iteration may not
     * converge. Non-spillable *value* marking stays active either way,
     * so the deadlock of re-spilling spill artifacts cannot occur.
     */
    bool fuseSpillOps = true;
};

} // namespace swp

#endif // SWP_PIPELINER_OPTIONS_HH
