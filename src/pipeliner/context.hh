/**
 * @file
 * Shared evaluation context for the strategy drivers.
 *
 * One (loop, strategy, options) evaluation is cheap to set up but the
 * experiment grids of the paper run hundreds of thousands of them, so
 * the batch driver (src/driver) amortizes the per-call costs: scheduler
 * objects are constructed once per worker thread, the MII/RecMII of
 * each input loop is memoized per machine, and whole (graph, machine,
 * II, scheduler) probe outcomes are memoized in a ScheduleMemo. The
 * strategies accept an optional EvalContext carrying those shared
 * pieces; without one they behave exactly as before (build their own
 * scheduler, compute MII, schedule every probe).
 */

#ifndef SWP_PIPELINER_CONTEXT_HH
#define SWP_PIPELINER_CONTEXT_HH

#include <memory>

#include "sched/mii.hh"
#include "sched/sched_memo.hh"
#include "sched/scheduler.hh"
#include "support/arena.hh"

namespace swp
{

/** Reusable state for one strategy evaluation (all fields optional). */
struct EvalContext
{
    /**
     * Core scheduler to use; must implement the algorithm selected by
     * PipelinerOptions::scheduler (the caller keeps them in sync).
     */
    ModuloScheduler *scheduler = nullptr;

    /** IMS instance for the drivers' backtracking safety net. */
    ModuloScheduler *imsFallback = nullptr;

    /** Memoized mii(g, m) of the *input* graph; -1 = not known. */
    int knownMii = -1;

    /**
     * When set, every scheduleAt probe of the strategy drivers is
     * routed through this memo (see resolveScheduler), so repeated
     * (graph, machine, II, scheduler) probes — within one evaluation,
     * e.g. best-of-all's binary search over IIs the spill rounds
     * already tried, and across the whole grid — are scheduled once.
     * Results are identical with or without it; only the work changes.
     */
    ScheduleMemo *memo = nullptr;

    /**
     * Per-worker bump arena for the evaluation's transient buffers
     * (e.g. the spill driver's per-round candidate/pick scratch). The
     * batch driver resets it between jobs; a strategy without one
     * simply builds a local arena. Allocation placement never changes
     * results.
     */
    Arena *arena = nullptr;
};

/**
 * Per-evaluation scheduler storage for the resolve* helpers: the
 * lazily-built core scheduler (when the context does not provide one)
 * and the memoizing adapter wrapped around whichever core is used.
 */
struct SchedulerStorage
{
    std::unique_ptr<ModuloScheduler> base;
    std::unique_ptr<MemoizedScheduler> memoized;
};

/**
 * Shared resolution: the context-provided scheduler (or a lazily-built
 * `kind` instance kept in `storage`), wrapped in the context's
 * ScheduleMemo when one is present.
 */
inline ModuloScheduler &
resolveWithMemo(const EvalContext *ctx, ModuloScheduler *fromCtx,
                SchedulerKind kind, SchedulerStorage &storage)
{
    ModuloScheduler *core = fromCtx;
    if (!core) {
        if (!storage.base)
            storage.base = makeScheduler(kind);
        core = storage.base.get();
    }
    if (ctx && ctx->memo) {
        storage.memoized =
            std::make_unique<MemoizedScheduler>(*ctx->memo, *core, kind);
        return *storage.memoized;
    }
    return *core;
}

/** The scheduler every probe of this evaluation should go through. */
inline ModuloScheduler &
resolveScheduler(const EvalContext *ctx, SchedulerKind kind,
                 SchedulerStorage &storage)
{
    return resolveWithMemo(ctx, ctx ? ctx->scheduler : nullptr, kind,
                           storage);
}

/** The context's IMS fallback (memo-wrapped like resolveScheduler). */
inline ModuloScheduler &
resolveImsFallback(const EvalContext *ctx, SchedulerStorage &storage)
{
    return resolveWithMemo(ctx, ctx ? ctx->imsFallback : nullptr,
                           SchedulerKind::Ims, storage);
}

/** The memoized MII of the input graph, or compute it. */
inline int
resolveMii(const EvalContext *ctx, const Ddg &g, const Machine &m)
{
    if (ctx && ctx->knownMii >= 0)
        return ctx->knownMii;
    return mii(g, m);
}

} // namespace swp

#endif // SWP_PIPELINER_CONTEXT_HH
