/**
 * @file
 * Shared evaluation context for the strategy drivers.
 *
 * One (loop, strategy, options) evaluation is cheap to set up but the
 * experiment grids of the paper run hundreds of thousands of them, so
 * the batch driver (src/driver) amortizes the per-call costs: scheduler
 * objects are constructed once per worker thread and the MII/RecMII of
 * each input loop is memoized per machine. The strategies accept an
 * optional EvalContext carrying those shared pieces; without one they
 * behave exactly as before (build their own scheduler, compute MII).
 */

#ifndef SWP_PIPELINER_CONTEXT_HH
#define SWP_PIPELINER_CONTEXT_HH

#include <memory>

#include "sched/mii.hh"
#include "sched/scheduler.hh"

namespace swp
{

/** Reusable state for one strategy evaluation (all fields optional). */
struct EvalContext
{
    /**
     * Core scheduler to use; must implement the algorithm selected by
     * PipelinerOptions::scheduler (the caller keeps them in sync).
     */
    ModuloScheduler *scheduler = nullptr;

    /** IMS instance for the drivers' backtracking safety net. */
    ModuloScheduler *imsFallback = nullptr;

    /** Memoized mii(g, m) of the *input* graph; -1 = not known. */
    int knownMii = -1;
};

/** The context's scheduler, or a lazily-built one kept in `storage`. */
inline ModuloScheduler &
resolveScheduler(const EvalContext *ctx, SchedulerKind kind,
                 std::unique_ptr<ModuloScheduler> &storage)
{
    if (ctx && ctx->scheduler)
        return *ctx->scheduler;
    if (!storage)
        storage = makeScheduler(kind);
    return *storage;
}

/** The context's IMS fallback, or a lazily-built one kept in `storage`. */
inline ModuloScheduler &
resolveImsFallback(const EvalContext *ctx,
                   std::unique_ptr<ModuloScheduler> &storage)
{
    if (ctx && ctx->imsFallback)
        return *ctx->imsFallback;
    if (!storage)
        storage = makeScheduler(SchedulerKind::Ims);
    return *storage;
}

/** The memoized MII of the input graph, or compute it. */
inline int
resolveMii(const EvalContext *ctx, const Ddg &g, const Machine &m)
{
    if (ctx && ctx->knownMii >= 0)
        return ctx->knownMii;
    return mii(g, m);
}

} // namespace swp

#endif // SWP_PIPELINER_CONTEXT_HH
