/**
 * @file
 * The iterative spilling strategy (Section 4, Figure 1b).
 *
 * Schedule, allocate; while the allocation exceeds the budget, select
 * lifetimes with the configured heuristic, rewrite the graph with spill
 * code, and reschedule. Rescheduling is unavoidable because the added
 * loads/stores rarely fit the existing compact schedule. The
 * non-spillable marking and complex-operation fusion done by the
 * inserter guarantee the process converges (Section 4.3); the
 * multi-select and last-II heuristics (Section 4.5) trade a little
 * schedule quality for a large reduction in scheduling time.
 */

#ifndef SWP_PIPELINER_SPILL_PIPELINE_HH
#define SWP_PIPELINER_SPILL_PIPELINE_HH

#include <functional>

#include "ir/ddg.hh"
#include "machine/machine.hh"
#include "pipeliner/context.hh"
#include "pipeliner/options.hh"
#include "pipeliner/result.hh"

namespace swp
{

/** Observer invoked after each round (used by the Figure 7 bench). */
struct SpillRoundInfo
{
    int round = 0;
    int ii = 0;
    int mii = 0;
    int regsRequired = 0;
    int memOps = 0;
    int spilledSoFar = 0;
};

using SpillRoundObserver = std::function<void(const SpillRoundInfo &)>;

/**
 * Run the iterative spilling strategy.
 *
 * When the iteration stops without fitting the budget (rounds
 * exhausted, candidates exhausted, or no schedulable II), the result
 * keeps the best — lowest register requirement — modulo schedule seen
 * across all rounds; the acyclic fallback of the original loop is used
 * only when no modulo schedule exists at all, or when the acyclic
 * schedule actually fits the budget (a valid result beats an
 * over-budget one).
 */
PipelineResult spillStrategy(const Ddg &g, const Machine &m,
                             const PipelinerOptions &opts,
                             const SpillRoundObserver &observer = {},
                             const EvalContext *ctx = nullptr);

/** The result references the input graph; temporaries would dangle. */
PipelineResult spillStrategy(Ddg &&, const Machine &,
                             const PipelinerOptions &,
                             const SpillRoundObserver & = {},
                             const EvalContext * = nullptr) = delete;

} // namespace swp

#endif // SWP_PIPELINER_SPILL_PIPELINE_HH
