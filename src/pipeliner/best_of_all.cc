#include "pipeliner/best_of_all.hh"

#include <memory>
#include <optional>
#include <utility>

#include "pipeliner/spill_pipeline.hh"
#include "sched/mii.hh"

namespace swp
{

namespace
{

/** Schedule the original loop at exactly ii and allocate. */
struct Attempt
{
    Schedule sched;
    AllocationOutcome alloc;
};

std::optional<Attempt>
tryOriginalAt(const Ddg &g, const Machine &m, const PipelinerOptions &opts,
              ModuloScheduler &scheduler, int ii, int *attempts)
{
    ++*attempts;
    auto sched = scheduler.scheduleAt(g, m, ii);
    if (!sched)
        return std::nullopt;
    Attempt a;
    a.alloc = allocateLoop(g, *sched, opts.registers, opts.fit);
    a.sched = std::move(*sched);
    if (!a.alloc.fits)
        return std::nullopt;
    return a;
}

} // namespace

PipelineResult
bestOfAllStrategy(const Ddg &g, const Machine &m,
                  const PipelinerOptions &opts, const EvalContext *ctx)
{
    PipelineResult spill = spillStrategy(g, m, opts, {}, ctx);
    spill.strategy = "best-of-all";
    if (!spill.success || spill.usedFallback)
        return spill;
    if (spill.spilledLifetimes == 0) {
        // No register pressure problem: the spill result is already the
        // plain schedule of the original loop.
        return spill;
    }

    SchedulerStorage schedStorage;
    ModuloScheduler &scheduler =
        resolveScheduler(ctx, opts.scheduler, schedStorage);
    int attempts = spill.attempts;

    // Test the original loop at the II spilling needed. If it fits
    // there, a schedule at some II <= II_spill without memory traffic
    // beats (or equals) the spill result; binary-search the smallest.
    const int iiSpill = spill.ii();
    auto atSpillIi =
        tryOriginalAt(g, m, opts, scheduler, iiSpill, &attempts);
    if (!atSpillIi) {
        spill.attempts = attempts;
        return spill;
    }

    const int lower = resolveMii(ctx, g, m);
    int lo = lower;
    int hi = iiSpill;
    Attempt best = std::move(*atSpillIi);
    while (lo < hi) {
        const int mid = lo + (hi - lo) / 2;
        auto a = tryOriginalAt(g, m, opts, scheduler, mid, &attempts);
        if (a) {
            best = std::move(*a);
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }

    PipelineResult result;
    result.success = true;
    result.strategy = "best-of-all";
    result.bindInputGraph(g);
    result.sched = std::move(best.sched);
    result.alloc = std::move(best.alloc);
    result.mii = lower;
    result.spilledLifetimes = 0;
    // The returned schedule is a direct schedule of the untransformed
    // loop: one scheduling round, zero spill rounds — not the discarded
    // spill run's count.
    result.rounds = 1;
    result.attempts = attempts;
    return result;
}

} // namespace swp
