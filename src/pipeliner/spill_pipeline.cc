#include "pipeliner/spill_pipeline.hh"

#include <algorithm>
#include <memory>
#include <optional>
#include <utility>

#include "sched/acyclic.hh"
#include "sched/ii_search.hh"
#include "sched/mii.hh"
#include "spill/insert.hh"
#include "support/diag.hh"

namespace swp
{

PipelineResult
spillStrategy(const Ddg &g, const Machine &m, const PipelinerOptions &opts,
              const SpillRoundObserver &observer, const EvalContext *ctx)
{
    PipelineResult result;
    result.strategy = "spill";

    SchedulerStorage schedStorage, imsStorage;
    ModuloScheduler &scheduler =
        resolveScheduler(ctx, opts.scheduler, schedStorage);

    Ddg work = g;
    int prevIi = 0;

    // Per-round candidate/pick scratch, bump-allocated from the
    // worker's arena (reset between jobs by the batch driver) or a
    // local one for standalone calls. Cleared per round; the retained
    // capacity makes later rounds allocation-free.
    Arena localArena;
    Arena &arena = ctx && ctx->arena ? *ctx->arena : localArena;
    SpillCandidateList candidates{ArenaAllocator<SpillCandidate>(arena)};
    SpillCandidateList picks{ArenaAllocator<SpillCandidate>(arena)};

    // Best over-budget schedule seen so far (lowest register
    // requirement). Kept so that exhausting the rounds or the
    // candidates does not discard valid scheduling work. A null graph
    // snapshot means the schedule refers to the untransformed input
    // (round 1, before any spill), avoiding a pointless Ddg copy.
    struct BestSoFar
    {
        std::shared_ptr<const Ddg> graph;
        Schedule sched;
        AllocationOutcome alloc;
        int mii = 0;
        int spilled = 0;
    };
    std::optional<BestSoFar> best;

    for (int round = 1; round <= opts.maxSpillRounds; ++round) {
        const int curMii =
            round == 1 ? resolveMii(ctx, g, m) : mii(work, m);
        const int startIi =
            opts.reuseLastIi ? std::max(curMii, prevIi) : curMii;

        IiSearchResult search = searchIi(scheduler, work, m, startIi);
        result.attempts += search.attempts;
        result.rounds = round;

        if (!search.sched && opts.scheduler != SchedulerKind::Ims) {
            // Safety net: HRMS's non-backtracking placement can fail on
            // pathological group topologies at every II; IMS's eviction
            // mechanism handles those, at some register-quality cost.
            ModuloScheduler &ims = resolveImsFallback(ctx, imsStorage);
            search = searchIi(ims, work, m, startIi);
            result.attempts += search.attempts;
        }
        if (!search.sched) {
            // No scheduler could place the transformed loop at any II;
            // keep the best earlier round (or fall back) below.
            break;
        }

        Schedule sched = std::move(*search.sched);
        prevIi = sched.ii();
        AllocationOutcome alloc =
            allocateLoop(work, sched, opts.registers, opts.fit);

        if (observer) {
            SpillRoundInfo info;
            info.round = round;
            info.ii = sched.ii();
            info.mii = curMii;
            info.regsRequired = alloc.regsRequired;
            info.memOps = work.numMemOps();
            info.spilledSoFar = result.spilledLifetimes;
            observer(info);
        }

        if (alloc.fits) {
            result.success = true;
            if (result.spilledLifetimes == 0)
                result.bindInputGraph(g);  // `work` is still the input.
            else
                result.adoptGraph(std::move(work));
            result.sched = std::move(sched);
            result.alloc = std::move(alloc);
            result.mii = curMii;
            return result;
        }

        if (!best || alloc.regsRequired < best->alloc.regsRequired) {
            best.emplace();
            if (result.spilledLifetimes > 0)
                best->graph = std::make_shared<const Ddg>(work);
            best->sched = sched;
            best->alloc = alloc;
            best->mii = curMii;
            best->spilled = result.spilledLifetimes;
        }

        const LifetimeInfo lifetimes = analyzeLifetimes(work, sched);
        spillCandidates(work, lifetimes, opts.spillUses, candidates);
        if (candidates.empty()) {
            // Nothing left to spill: every lifetime is already a spill
            // artifact. Keep the best schedule seen (below).
            break;
        }

        picks.clear();
        if (opts.multiSelect) {
            selectMultiple(candidates, opts.heuristic, lifetimes,
                           opts.registers, picks);
        } else if (auto one = selectOne(candidates, opts.heuristic)) {
            picks.push_back(*one);
        }
        SWP_ASSERT(!picks.empty(), "spill selection returned nothing");
        for (const SpillCandidate &pick : picks) {
            insertSpill(work, m, pick);
            ++result.spilledLifetimes;
        }
        if (!opts.fuseSpillOps) {
            // Ablation: drop the complex-operation constraint; spill
            // code is scheduled like any other operation.
            for (EdgeId e = 0; e < work.numEdges(); ++e) {
                if (work.edge(e).alive)
                    work.edge(e).nonSpillable = false;
            }
        }
    }

    // The iteration ended over budget. Local scheduling of the original
    // loop (the Cydra 5 compiler's last resort) is used only when it
    // actually fits the budget or when no modulo schedule exists at
    // all; otherwise the best over-budget modulo schedule is kept.
    Schedule acyclicSched = scheduleAcyclic(g, m);
    AllocationOutcome acyclicAlloc =
        allocateLoop(g, acyclicSched, opts.registers, opts.fit);
    if (best && !acyclicAlloc.fits) {
        if (best->graph)
            result.adoptGraph(std::move(best->graph));
        else
            result.bindInputGraph(g);
        result.sched = std::move(best->sched);
        result.alloc = std::move(best->alloc);
        result.mii = best->mii;
        result.spilledLifetimes = best->spilled;
        return result;
    }
    result.usedFallback = true;
    result.bindInputGraph(g);
    result.sched = std::move(acyclicSched);
    result.alloc = std::move(acyclicAlloc);
    result.mii = resolveMii(ctx, g, m);
    result.success = result.alloc.fits;
    return result;
}

} // namespace swp
