#include "pipeliner/spill_pipeline.hh"

#include <algorithm>

#include "sched/acyclic.hh"
#include "sched/ii_search.hh"
#include "sched/mii.hh"
#include "spill/insert.hh"
#include "support/diag.hh"

namespace swp
{

PipelineResult
spillStrategy(const Ddg &g, const Machine &m, const PipelinerOptions &opts,
              const SpillRoundObserver &observer)
{
    PipelineResult result;
    result.strategy = "spill";
    result.graph = g;

    auto scheduler = makeScheduler(opts.scheduler);

    Ddg work = g;
    int prevIi = 0;

    for (int round = 1; round <= opts.maxSpillRounds; ++round) {
        const int curMii = mii(work, m);
        const int startIi =
            opts.reuseLastIi ? std::max(curMii, prevIi) : curMii;

        IiSearchResult search = searchIi(*scheduler, work, m, startIi);
        result.attempts += search.attempts;
        result.rounds = round;

        if (!search.sched && opts.scheduler != SchedulerKind::Ims) {
            // Safety net: HRMS's non-backtracking placement can fail on
            // pathological group topologies at every II; IMS's eviction
            // mechanism handles those, at some register-quality cost.
            auto ims = makeScheduler(SchedulerKind::Ims);
            search = searchIi(*ims, work, m, startIi);
            result.attempts += search.attempts;
        }
        if (!search.sched) {
            // No scheduler could place the transformed loop at any II;
            // fall back to local scheduling of the original loop.
            break;
        }

        Schedule sched = std::move(*search.sched);
        prevIi = sched.ii();
        AllocationOutcome alloc =
            allocateLoop(work, sched, opts.registers, opts.fit);

        if (observer) {
            SpillRoundInfo info;
            info.round = round;
            info.ii = sched.ii();
            info.mii = curMii;
            info.regsRequired = alloc.regsRequired;
            info.memOps = work.numMemOps();
            info.spilledSoFar = result.spilledLifetimes;
            observer(info);
        }

        if (alloc.fits) {
            result.success = true;
            result.graph = std::move(work);
            result.sched = std::move(sched);
            result.alloc = std::move(alloc);
            result.mii = curMii;
            return result;
        }

        const LifetimeInfo lifetimes = analyzeLifetimes(work, sched);
        const auto candidates =
            spillCandidates(work, lifetimes, opts.spillUses);
        if (candidates.empty()) {
            // Nothing left to spill: every lifetime is already a spill
            // artifact. Keep the best schedule we have.
            result.graph = std::move(work);
            result.sched = std::move(sched);
            result.alloc = std::move(alloc);
            result.mii = curMii;
            return result;
        }

        std::vector<SpillCandidate> picks;
        if (opts.multiSelect) {
            picks = selectMultiple(candidates, opts.heuristic, lifetimes,
                                   opts.registers);
        } else if (auto one = selectOne(candidates, opts.heuristic)) {
            picks.push_back(*one);
        }
        SWP_ASSERT(!picks.empty(), "spill selection returned nothing");
        for (const SpillCandidate &pick : picks) {
            insertSpill(work, m, pick);
            ++result.spilledLifetimes;
        }
        if (!opts.fuseSpillOps) {
            // Ablation: drop the complex-operation constraint; spill
            // code is scheduled like any other operation.
            for (EdgeId e = 0; e < work.numEdges(); ++e) {
                if (work.edge(e).alive)
                    work.edge(e).nonSpillable = false;
            }
        }
    }

    // Convergence failure (or scheduling failure): local scheduling of
    // the original loop, like the Cydra 5 compiler's last resort.
    result.usedFallback = true;
    result.graph = g;
    result.sched = scheduleAcyclic(g, m);
    result.alloc = allocateLoop(g, result.sched, opts.registers, opts.fit);
    result.mii = mii(g, m);
    result.success = result.alloc.fits;
    return result;
}

} // namespace swp
