#include "pipeliner/increase_ii.hh"

#include <memory>

#include "sched/acyclic.hh"
#include "sched/mii.hh"
#include "support/diag.hh"

namespace swp
{

PipelineResult
increaseIiStrategy(const Ddg &g, const Machine &m,
                   const PipelinerOptions &opts, const EvalContext *ctx)
{
    PipelineResult result;
    result.strategy = "increase-II";
    result.bindInputGraph(g);
    result.mii = resolveMii(ctx, g, m);

    SchedulerStorage schedStorage;
    ModuloScheduler &scheduler =
        resolveScheduler(ctx, opts.scheduler, schedStorage);

    // Beyond the single-stage schedule length, increasing II cannot
    // reduce registers any further: only distance components and
    // invariants remain, and those are II-independent or grow with it.
    const Schedule acyclic = scheduleAcyclic(g, m);
    const int limit = acyclic.ii();

    for (int ii = result.mii; ii <= limit; ++ii) {
        ++result.attempts;
        ++result.rounds;
        auto sched = scheduler.scheduleAt(g, m, ii);
        if (!sched)
            continue;
        AllocationOutcome alloc =
            allocateLoop(g, *sched, opts.registers, opts.fit);
        if (alloc.fits) {
            result.success = true;
            result.sched = std::move(*sched);
            result.alloc = std::move(alloc);
            return result;
        }
    }

    // Divergent: fall back to local (acyclic) scheduling.
    result.usedFallback = true;
    result.sched = acyclic;
    result.alloc = allocateLoop(g, acyclic, opts.registers, opts.fit);
    result.success = result.alloc.fits;
    return result;
}

int
registersAtIi(const Ddg &g, const Machine &m, int ii,
              const PipelinerOptions &opts, const EvalContext *ctx)
{
    SchedulerStorage schedStorage, imsStorage;
    ModuloScheduler &scheduler =
        resolveScheduler(ctx, opts.scheduler, schedStorage);
    auto sched = scheduler.scheduleAt(g, m, ii);
    if (!sched && opts.scheduler != SchedulerKind::Ims) {
        // Same safety net as the strategy drivers: a non-backtracking
        // scheduler can fail at IIs that IMS's eviction mechanism can
        // place, and the sweep should report those points, not holes.
        ModuloScheduler &ims = resolveImsFallback(ctx, imsStorage);
        sched = ims.scheduleAt(g, m, ii);
    }
    if (!sched)
        return -1;
    const AllocationOutcome alloc =
        allocateLoop(g, *sched, opts.registers, opts.fit);
    return alloc.regsRequired;
}

} // namespace swp
