/**
 * @file
 * The increase-II strategy (Section 3).
 *
 * Reschedule the loop at successively larger initiation intervals until
 * the register allocator finds a solution within the budget. Larger IIs
 * shrink the scheduling component of lifetimes (fewer overlapped
 * iterations) but the distance component grows proportionally to II and
 * loop invariants always need their register, so for some loops this
 * strategy never converges; the driver detects that by bounding the
 * search at the acyclic (single-stage) schedule length, beyond which no
 * register reduction is possible, and falls back to local scheduling as
 * the Cydra 5 compiler did.
 */

#ifndef SWP_PIPELINER_INCREASE_II_HH
#define SWP_PIPELINER_INCREASE_II_HH

#include "ir/ddg.hh"
#include "machine/machine.hh"
#include "pipeliner/context.hh"
#include "pipeliner/options.hh"
#include "pipeliner/result.hh"

namespace swp
{

/** Run the increase-II strategy. */
PipelineResult increaseIiStrategy(const Ddg &g, const Machine &m,
                                  const PipelinerOptions &opts,
                                  const EvalContext *ctx = nullptr);

/** The result references the input graph; temporaries would dangle. */
PipelineResult increaseIiStrategy(Ddg &&, const Machine &,
                                  const PipelinerOptions &,
                                  const EvalContext * = nullptr) = delete;

/**
 * One point of the Figure 4 sweep: the register requirement of the best
 * schedule at exactly this II, or -1 when no scheduler succeeds there.
 * Applies the same IMS safety net as the strategy drivers, so a
 * non-backtracking scheduler's placement failure does not punch a hole
 * into the sweep at an II the drivers would reach.
 */
int registersAtIi(const Ddg &g, const Machine &m, int ii,
                  const PipelinerOptions &opts,
                  const EvalContext *ctx = nullptr);

} // namespace swp

#endif // SWP_PIPELINER_INCREASE_II_HH
