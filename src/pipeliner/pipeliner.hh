/**
 * @file
 * Facade of the register-constrained software pipeliner.
 *
 * This is the library's primary entry point: given a loop dependence
 * graph, a machine model and a register budget, produce a modulo
 * schedule plus register allocation that fits the budget, using one of
 * the paper's strategies.
 */

#ifndef SWP_PIPELINER_PIPELINER_HH
#define SWP_PIPELINER_PIPELINER_HH

#include "pipeliner/best_of_all.hh"
#include "pipeliner/increase_ii.hh"
#include "pipeliner/options.hh"
#include "pipeliner/result.hh"
#include "pipeliner/spill_pipeline.hh"

namespace swp
{

/** Register-reduction strategy (Figure 1 and Section 5). */
enum class Strategy
{
    IncreaseII,  ///< Reschedule at larger IIs (Section 3).
    Spill,       ///< Iterative spill code insertion (Section 4).
    BestOfAll,   ///< Combination proposed in Section 5.
};

const char *strategyName(Strategy s);

/** Run the chosen strategy on a loop. */
PipelineResult pipelineLoop(const Ddg &g, const Machine &m, Strategy s,
                            const PipelinerOptions &opts,
                            const EvalContext *ctx = nullptr);

/** The result references the input graph; temporaries would dangle. */
PipelineResult pipelineLoop(Ddg &&, const Machine &, Strategy,
                            const PipelinerOptions &,
                            const EvalContext * = nullptr) = delete;

/**
 * Schedule with an unlimited register file (the paper's "ideal"
 * baseline): the plain II search from MII with no register constraint.
 */
PipelineResult pipelineIdeal(const Ddg &g, const Machine &m,
                             SchedulerKind kind = SchedulerKind::Hrms,
                             const EvalContext *ctx = nullptr);

/** The result references the input graph; temporaries would dangle. */
PipelineResult pipelineIdeal(Ddg &&, const Machine &,
                             SchedulerKind = SchedulerKind::Hrms,
                             const EvalContext * = nullptr) = delete;

} // namespace swp

#endif // SWP_PIPELINER_PIPELINER_HH
