/**
 * @file
 * VLIW machine descriptions.
 *
 * A Machine is a set of named unit classes — each with an instance
 * count and a pipelined flag — plus a per-opcode binding (which class
 * executes the op) and a per-opcode latency. The tables are dynamic:
 * a machine may have any number of classes, from one universal pool to
 * arbitrary heterogeneous shapes, and every scheduler/verifier layer
 * reads the shape through numClasses()/classOf() instead of assuming
 * the compile-time four-class preset layout. machine/machdesc provides
 * the parseable text form of these tables.
 *
 * Section 5 of the paper evaluates three functional-unit configurations:
 *
 *  - P1L4: 1 load/store, 1 div/sqrt, 1 adder, 1 multiplier; adder and
 *    multiplier latency 4.
 *  - P2L4: two units of each kind, same latencies.
 *  - P2L6: like P2L4 with adder/multiplier latency 6.
 *
 * All three share: store latency 1, load latency 2, divide 17, square
 * root 30; all units fully pipelined except div/sqrt. The worked
 * example of Figure 2 uses a fourth shape: N universal units on which
 * every operation executes with a uniform latency; `universal` models
 * that as a single-class machine.
 */

#ifndef SWP_MACHINE_MACHINE_HH
#define SWP_MACHINE_MACHINE_HH

#include <string>
#include <vector>

#include "ir/opcode.hh"

namespace swp
{

/** One named class of identical functional units. */
struct UnitClass
{
    std::string name;
    int units = 0;
    bool pipelined = true;

    bool
    operator==(const UnitClass &o) const
    {
        return name == o.name && units == o.units &&
               pipelined == o.pipelined;
    }
};

/** A VLIW machine configuration. */
class Machine
{
  public:
    /**
     * Build from explicit dynamic tables (the machdesc parser's entry
     * point). `class_of[op]` indexes `classes`; both per-opcode arrays
     * have numOpcodes entries.
     */
    Machine(std::string name, std::vector<UnitClass> classes,
            const int (&class_of)[numOpcodes],
            const int (&latency)[numOpcodes]);

    /** Build a heterogeneous machine (P1L4-style four-class shape). */
    Machine(std::string name, int mem_units, int adders, int mults,
            int divsqrt_units, int add_mul_latency);

    /** Build a machine of `units` universal FUs, all latencies `lat`. */
    static Machine universal(std::string name, int units, int lat);

    /** @name The paper's Section 5 configurations (embedded
        machine-description text, parsed by machine/machdesc). */
    /// @{
    static Machine p1l4();
    static Machine p2l4();
    static Machine p2l6();
    /// @}

    const std::string &name() const { return name_; }

    /** Number of unit classes. */
    int numClasses() const { return int(classes_.size()); }

    /** The c-th unit class (0 <= c < numClasses()). */
    const UnitClass &
    unitClass(int c) const
    {
        return classes_[std::size_t(c)];
    }

    /** Class index executing an opcode. */
    int classOf(Opcode op) const { return classOf_[int(op)]; }

    /** Unit instances in class c. */
    int unitsInClass(int c) const { return classes_[std::size_t(c)].units; }

    /** True if units of class c accept one op per cycle. */
    bool
    pipelinedClass(int c) const
    {
        return classes_[std::size_t(c)].pipelined;
    }

    /** Name of class c. */
    const std::string &
    className(int c) const
    {
        return classes_[std::size_t(c)].name;
    }

    /** True if every op executes on one shared pool (Figure 2 shape). */
    bool isUniversal() const { return classes_.size() == 1; }

    /**
     * Units available for an operation of the given preset class.
     * Convenience for preset-shaped machines (and the single-pool
     * universal shape); arbitrary described machines are addressed by
     * class index via unitsInClass().
     */
    int
    unitsFor(FuClass fu) const
    {
        return unitsInClass(presetClassIndex(fu));
    }

    /** Preset-shaped counterpart of pipelinedClass(int). */
    bool
    pipelinedClass(FuClass fu) const
    {
        return pipelinedClass(presetClassIndex(fu));
    }

    /** Issue latency of an opcode in cycles. */
    int latency(Opcode op) const { return latency_[int(op)]; }

    /**
     * Cycles an op occupies its unit: 1 when its class is pipelined,
     * otherwise its full latency (the div/sqrt units of the paper).
     */
    int
    occupancy(Opcode op) const
    {
        return pipelinedClass(classOf(op)) ? 1 : latency(op);
    }

    /** Override one opcode's latency (used by tests and what-if studies). */
    void setLatency(Opcode op, int cycles);

    /** Override the pipelining of one preset unit class. */
    void setPipelined(FuClass fu, bool pipelined);

    /** Total number of functional units (issue width). */
    int totalUnits() const;

    /**
     * The canonical machine-description text of this machine;
     * parseMachineDescription(describe()) reproduces it exactly
     * (machine/machdesc round-trip).
     */
    std::string describe() const;

    /** Equality over everything describe() emits: name, classes,
        per-opcode binding and latency. */
    bool operator==(const Machine &o) const;
    bool operator!=(const Machine &o) const { return !(*this == o); }

  private:
    int presetClassIndex(FuClass fu) const;

    std::string name_;
    std::vector<UnitClass> classes_;
    int classOf_[numOpcodes] = {0};
    int latency_[numOpcodes] = {0};
};

} // namespace swp

#endif // SWP_MACHINE_MACHINE_HH
