/**
 * @file
 * VLIW machine descriptions.
 *
 * Section 5 of the paper evaluates three functional-unit configurations:
 *
 *  - P1L4: 1 load/store, 1 div/sqrt, 1 adder, 1 multiplier; adder and
 *    multiplier latency 4.
 *  - P2L4: two units of each kind, same latencies.
 *  - P2L6: like P2L4 with adder/multiplier latency 6.
 *
 * All configurations share: store latency 1, load latency 2, divide 17,
 * square root 30. All units are fully pipelined except the div/sqrt
 * units, which are not pipelined at all.
 *
 * The worked example of Figure 2 uses a fourth shape: N universal units
 * on which every operation executes with a uniform latency; `universal`
 * models that.
 */

#ifndef SWP_MACHINE_MACHINE_HH
#define SWP_MACHINE_MACHINE_HH

#include <string>

#include "ir/opcode.hh"

namespace swp
{

constexpr int numOpcodes = 9;

/** A VLIW machine configuration. */
class Machine
{
  public:
    /** Build a heterogeneous machine (P1L4-style shape). */
    Machine(std::string name, int mem_units, int adders, int mults,
            int divsqrt_units, int add_mul_latency);

    /** Build a machine of `units` universal FUs, all latencies `lat`. */
    static Machine universal(std::string name, int units, int lat);

    /** @name The paper's Section 5 configurations. */
    /// @{
    static Machine p1l4();
    static Machine p2l4();
    static Machine p2l6();
    /// @}

    const std::string &name() const { return name_; }

    /** True if every op may execute on any unit (Figure 2 example). */
    bool isUniversal() const { return universal_; }

    /** Units available for an operation of the given class. */
    int
    unitsFor(FuClass fu) const
    {
        return universal_ ? universalUnits_ : units_[int(fu)];
    }

    /** Issue latency of an opcode in cycles. */
    int latency(Opcode op) const { return latency_[int(op)]; }

    /** True if units of this class accept one op per cycle. */
    bool
    pipelinedClass(FuClass fu) const
    {
        return universal_ ? true : pipelined_[int(fu)];
    }

    /**
     * Cycles an op occupies its unit: 1 when pipelined, otherwise its
     * full latency (the div/sqrt units of the paper).
     */
    int
    occupancy(Opcode op) const
    {
        return pipelinedClass(fuClassOf(op)) ? 1 : latency(op);
    }

    /** Override one opcode's latency (used by tests and what-if studies). */
    void setLatency(Opcode op, int cycles);

    /** Override the pipelining of one unit class. */
    void setPipelined(FuClass fu, bool pipelined);

    /** Total number of functional units (issue width). */
    int totalUnits() const;

    /** Human-readable description. */
    std::string describe() const;

  private:
    Machine() = default;

    std::string name_;
    bool universal_ = false;
    int universalUnits_ = 0;
    int units_[numFuClasses] = {0, 0, 0, 0};
    bool pipelined_[numFuClasses] = {true, true, true, false};
    int latency_[numOpcodes] = {0};
};

} // namespace swp

#endif // SWP_MACHINE_MACHINE_HH
