#include "machine/machine.hh"

#include <sstream>

#include "support/diag.hh"

namespace swp
{

namespace
{

/** Latencies common to every Section 5 configuration. */
void
setCommonLatencies(int latency[numOpcodes], int add_mul_latency)
{
    latency[int(Opcode::Load)] = 2;
    latency[int(Opcode::Store)] = 1;
    latency[int(Opcode::Add)] = add_mul_latency;
    latency[int(Opcode::Mul)] = add_mul_latency;
    latency[int(Opcode::Div)] = 17;
    latency[int(Opcode::Sqrt)] = 30;
    latency[int(Opcode::Copy)] = 1;
    latency[int(Opcode::Nop)] = 1;
    latency[int(Opcode::Select)] = 1;
}

} // namespace

Machine::Machine(std::string name, int mem_units, int adders, int mults,
                 int divsqrt_units, int add_mul_latency)
{
    SWP_ASSERT(mem_units > 0 && adders > 0 && mults > 0 &&
                   divsqrt_units > 0,
               "machine '", name, "' needs at least one unit per class");
    name_ = std::move(name);
    units_[int(FuClass::Mem)] = mem_units;
    units_[int(FuClass::Adder)] = adders;
    units_[int(FuClass::Mult)] = mults;
    units_[int(FuClass::DivSqrt)] = divsqrt_units;
    pipelined_[int(FuClass::Mem)] = true;
    pipelined_[int(FuClass::Adder)] = true;
    pipelined_[int(FuClass::Mult)] = true;
    pipelined_[int(FuClass::DivSqrt)] = false;
    setCommonLatencies(latency_, add_mul_latency);
}

Machine
Machine::universal(std::string name, int units, int lat)
{
    SWP_ASSERT(units > 0, "universal machine needs at least one unit");
    Machine m;
    m.name_ = std::move(name);
    m.universal_ = true;
    m.universalUnits_ = units;
    for (int op = 0; op < numOpcodes; ++op)
        m.latency_[op] = lat;
    return m;
}

Machine
Machine::p1l4()
{
    return Machine("P1L4", 1, 1, 1, 1, 4);
}

Machine
Machine::p2l4()
{
    return Machine("P2L4", 2, 2, 2, 2, 4);
}

Machine
Machine::p2l6()
{
    return Machine("P2L6", 2, 2, 2, 2, 6);
}

void
Machine::setLatency(Opcode op, int cycles)
{
    SWP_ASSERT(cycles >= 1, "latency must be positive");
    latency_[int(op)] = cycles;
}

void
Machine::setPipelined(FuClass fu, bool pipelined)
{
    pipelined_[int(fu)] = pipelined;
}

int
Machine::totalUnits() const
{
    if (universal_)
        return universalUnits_;
    int total = 0;
    for (int fu = 0; fu < numFuClasses; ++fu)
        total += units_[fu];
    return total;
}

std::string
Machine::describe() const
{
    std::ostringstream os;
    os << name_ << ": ";
    if (universal_) {
        os << universalUnits_ << " universal units, latency "
           << latency_[int(Opcode::Add)];
        return os.str();
    }
    os << units_[int(FuClass::Mem)] << " mem, "
       << units_[int(FuClass::Adder)] << " add, "
       << units_[int(FuClass::Mult)] << " mul, "
       << units_[int(FuClass::DivSqrt)] << " div/sqrt (non-pipelined); "
       << "latencies: ld " << latency_[int(Opcode::Load)] << ", st "
       << latency_[int(Opcode::Store)] << ", add/mul "
       << latency_[int(Opcode::Add)] << ", div "
       << latency_[int(Opcode::Div)] << ", sqrt "
       << latency_[int(Opcode::Sqrt)];
    return os.str();
}

} // namespace swp
