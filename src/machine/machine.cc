#include "machine/machine.hh"

#include <utility>

#include "machine/machdesc.hh"
#include "support/diag.hh"

namespace swp
{

namespace
{

/** The paper's Section 5 configurations as machine-description text. */
constexpr const char *kP1l4Text = R"(# Section 5, P1L4: one unit per class.
machine P1L4
class mem 1 pipelined
class adder 1 pipelined
class mult 1 pipelined
class divsqrt 1 nonpipelined
op ld mem 2
op st mem 1
op add adder 4
op mul mult 4
op div divsqrt 17
op sqrt divsqrt 30
op copy adder 1
op nop adder 1
op sel adder 1
)";

constexpr const char *kP2l4Text = R"(# Section 5, P2L4: two units per class.
machine P2L4
class mem 2 pipelined
class adder 2 pipelined
class mult 2 pipelined
class divsqrt 2 nonpipelined
op ld mem 2
op st mem 1
op add adder 4
op mul mult 4
op div divsqrt 17
op sqrt divsqrt 30
op copy adder 1
op nop adder 1
op sel adder 1
)";

constexpr const char *kP2l6Text = R"(# Section 5, P2L6: P2L4 with latency-6 adders and multipliers.
machine P2L6
class mem 2 pipelined
class adder 2 pipelined
class mult 2 pipelined
class divsqrt 2 nonpipelined
op ld mem 2
op st mem 1
op add adder 6
op mul mult 6
op div divsqrt 17
op sqrt divsqrt 30
op copy adder 1
op nop adder 1
op sel adder 1
)";

Machine
parsePreset(const char *text)
{
    MachParseResult r = parseMachineDescription(text);
    SWP_ASSERT(r.ok(), "embedded preset description rejected: ",
               r.diags.empty() ? std::string("no machine produced")
                               : r.diags.front().message);
    return std::move(*r.machine);
}

} // namespace

Machine::Machine(std::string name, std::vector<UnitClass> classes,
                 const int (&class_of)[numOpcodes],
                 const int (&latency)[numOpcodes])
    : name_(std::move(name)), classes_(std::move(classes))
{
    SWP_ASSERT(!classes_.empty(), "machine '", name_,
               "' needs at least one unit class");
    for (int op = 0; op < numOpcodes; ++op) {
        SWP_ASSERT(class_of[op] >= 0 && class_of[op] < numClasses(),
                   "machine '", name_, "': opcode ",
                   opcodeName(Opcode(op)), " bound to class ", class_of[op],
                   " out of range");
        SWP_ASSERT(latency[op] >= 1, "machine '", name_, "': opcode ",
                   opcodeName(Opcode(op)), " needs a positive latency");
        classOf_[op] = class_of[op];
        latency_[op] = latency[op];
    }
    for (const UnitClass &uc : classes_)
        SWP_ASSERT(uc.units > 0, "machine '", name_, "': class '", uc.name,
                   "' needs at least one unit");
}

Machine::Machine(std::string name, int mem_units, int adders, int mults,
                 int divsqrt_units, int add_mul_latency)
{
    SWP_ASSERT(mem_units > 0 && adders > 0 && mults > 0 &&
                   divsqrt_units > 0,
               "machine '", name, "' needs at least one unit per class");
    name_ = std::move(name);
    classes_ = {
        {fuClassName(FuClass::Mem), mem_units, true},
        {fuClassName(FuClass::Adder), adders, true},
        {fuClassName(FuClass::Mult), mults, true},
        {fuClassName(FuClass::DivSqrt), divsqrt_units, false},
    };
    latency_[int(Opcode::Load)] = 2;
    latency_[int(Opcode::Store)] = 1;
    latency_[int(Opcode::Add)] = add_mul_latency;
    latency_[int(Opcode::Mul)] = add_mul_latency;
    latency_[int(Opcode::Div)] = 17;
    latency_[int(Opcode::Sqrt)] = 30;
    latency_[int(Opcode::Copy)] = 1;
    latency_[int(Opcode::Nop)] = 1;
    latency_[int(Opcode::Select)] = 1;
    for (int op = 0; op < numOpcodes; ++op)
        classOf_[op] = int(fuClassOf(Opcode(op)));
}

Machine
Machine::universal(std::string name, int units, int lat)
{
    SWP_ASSERT(units > 0, "universal machine needs at least one unit");
    SWP_ASSERT(lat >= 1, "universal machine needs a positive latency");
    int class_of[numOpcodes];
    int latency[numOpcodes];
    for (int op = 0; op < numOpcodes; ++op) {
        class_of[op] = 0;
        latency[op] = lat;
    }
    return Machine(std::move(name), {{"universal", units, true}}, class_of,
                   latency);
}

Machine
Machine::p1l4()
{
    static const Machine m = parsePreset(kP1l4Text);
    return m;
}

Machine
Machine::p2l4()
{
    static const Machine m = parsePreset(kP2l4Text);
    return m;
}

Machine
Machine::p2l6()
{
    static const Machine m = parsePreset(kP2l6Text);
    return m;
}

int
Machine::presetClassIndex(FuClass fu) const
{
    if (isUniversal())
        return 0;
    SWP_ASSERT(int(fu) < numClasses(), "machine '", name_,
               "' has no preset-shaped class for ", fuClassName(fu),
               "; address it by class index");
    return int(fu);
}

void
Machine::setLatency(Opcode op, int cycles)
{
    SWP_ASSERT(cycles >= 1, "latency must be positive");
    latency_[int(op)] = cycles;
}

void
Machine::setPipelined(FuClass fu, bool pipelined)
{
    classes_[std::size_t(presetClassIndex(fu))].pipelined = pipelined;
}

int
Machine::totalUnits() const
{
    int total = 0;
    for (const UnitClass &uc : classes_)
        total += uc.units;
    return total;
}

std::string
Machine::describe() const
{
    return describeMachine(*this);
}

bool
Machine::operator==(const Machine &o) const
{
    if (name_ != o.name_ || classes_ != o.classes_)
        return false;
    for (int op = 0; op < numOpcodes; ++op) {
        if (classOf_[op] != o.classOf_[op] || latency_[op] != o.latency_[op])
            return false;
    }
    return true;
}

} // namespace swp
