/**
 * @file
 * Text machine descriptions: parse, print, fingerprint, resolve.
 *
 * The format is line-based; `#` starts a comment and blank lines are
 * ignored. Three directives:
 *
 *     machine <name>                  # exactly once, before any class/op
 *     class <name> <count> pipelined|nonpipelined
 *     op <mnemonic> <class> <latency>
 *
 * The machine name extends to the end of the line; class names are
 * single tokens. Every one of the nine opcode mnemonics ("ld", "st",
 * "add", "mul", "div", "sqrt", "copy", "nop", "sel") must be bound to
 * a declared class exactly once. Unit counts are 1..64 (the scheduler
 * packs per-class rows into 64-bit busy masks); latencies are >= 1.
 * Class order in the text is the machine's class-index order.
 *
 * parseMachineDescription never throws on bad input: it collects
 * line-numbered diagnostics and produces a Machine only when the text
 * is fully valid. describeMachine emits the canonical text form, and
 * parse(describe(m)) reconstructs m exactly (Machine::operator==).
 */

#ifndef SWP_MACHINE_MACHDESC_HH
#define SWP_MACHINE_MACHDESC_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "machine/machine.hh"

namespace swp
{

/** One parse diagnostic, anchored to a 1-based source line. */
struct MachDiag
{
    int line = 0;
    std::string message;
};

/** Outcome of parsing a machine description. */
struct MachParseResult
{
    /** The parsed machine; present only when diags is empty. */
    std::optional<Machine> machine;
    /** All problems found, in source order. */
    std::vector<MachDiag> diags;

    bool ok() const { return machine.has_value(); }
};

/** Parse machine-description text; collects diagnostics, never throws. */
MachParseResult parseMachineDescription(const std::string &text);

/** Canonical text form of a machine (round-trips through the parser). */
std::string describeMachine(const Machine &m);

/**
 * Content fingerprint over everything describeMachine emits (name,
 * classes, per-opcode binding and latency). Machines compare equal
 * iff their descriptions match, so this is the machine component of
 * memo keys and shard-file config fingerprints.
 */
std::uint64_t machineContentFingerprint(const Machine &m);

/** Names accepted by machineFromSpec as presets, comma-separated. */
const char *machinePresetNames();

/**
 * Resolve a `--machine` argument: one of the preset names
 * ("p1l4", "p2l4", "p2l6", "universal") or a path to a description
 * file. Throws FatalError (with the parser's line diagnostics) on an
 * unreadable file or invalid description.
 */
Machine machineFromSpec(const std::string &spec);

} // namespace swp

#endif // SWP_MACHINE_MACHDESC_HH
