#include "machine/machdesc.hh"

#include <climits>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "support/diag.hh"

namespace swp
{

namespace
{

/** Non-throwing counterpart of parseOpcode: -1 for unknown mnemonics. */
int
opcodeIndex(const std::string &mnemonic)
{
    for (int op = 0; op < numOpcodes; ++op) {
        if (mnemonic == opcodeName(Opcode(op)))
            return op;
    }
    return -1;
}

std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

/** Parse a decimal integer token; false if the token is not a number. */
bool
parseInt(const std::string &tok, int &out)
{
    if (tok.empty())
        return false;
    char *end = nullptr;
    long v = std::strtol(tok.c_str(), &end, 10);
    if (end != tok.c_str() + tok.size())
        return false;
    if (v < INT_MIN || v > INT_MAX)
        return false;
    out = int(v);
    return true;
}

/** Accumulates directives and end-of-text consistency checks. */
class MachParser
{
  public:
    MachParseResult
    parse(const std::string &text)
    {
        std::istringstream in(text);
        std::string rawLine;
        int lineNo = 0;
        while (std::getline(in, rawLine)) {
            ++lineNo;
            std::string line = rawLine;
            std::size_t hash = line.find('#');
            if (hash != std::string::npos)
                line.erase(hash);
            line = trim(line);
            if (line.empty())
                continue;
            parseLine(lineNo, line);
        }
        finish();
        MachParseResult result;
        result.diags = std::move(diags_);
        if (result.diags.empty())
            result.machine.emplace(name_, std::move(classes_), classOf_,
                                   latency_);
        return result;
    }

  private:
    void
    diag(int line, std::string message)
    {
        diags_.push_back({line, std::move(message)});
    }

    int
    classIndex(const std::string &name) const
    {
        for (std::size_t c = 0; c < classes_.size(); ++c) {
            if (classes_[c].name == name)
                return int(c);
        }
        return -1;
    }

    void
    parseLine(int lineNo, const std::string &line)
    {
        std::istringstream toks(line);
        std::string directive;
        toks >> directive;
        if (directive == "machine") {
            std::string rest = trim(line.substr(directive.size()));
            if (haveName_) {
                diag(lineNo, "duplicate machine directive");
            } else if (rest.empty()) {
                diag(lineNo, "missing machine name");
            } else {
                haveName_ = true;
                name_ = rest;
            }
            return;
        }
        if (directive == "class") {
            parseClass(lineNo, toks);
            return;
        }
        if (directive == "op") {
            parseOp(lineNo, toks);
            return;
        }
        diag(lineNo, "unknown directive '" + directive + "'");
    }

    void
    parseClass(int lineNo, std::istringstream &toks)
    {
        std::string name, countTok, flag, extra;
        toks >> name >> countTok >> flag;
        if (name.empty() || countTok.empty() || flag.empty() ||
            (toks >> extra)) {
            diag(lineNo, "malformed class directive (expected: class "
                         "<name> <count> pipelined|nonpipelined)");
            return;
        }
        if (classIndex(name) >= 0) {
            diag(lineNo, "duplicate class '" + name + "'");
            return;
        }
        int count = 0;
        if (!parseInt(countTok, count)) {
            diag(lineNo, "class '" + name + "': expected an integer unit "
                         "count, got '" + countTok + "'");
            return;
        }
        if (count <= 0) {
            diag(lineNo, "class '" + name + "' needs a positive unit "
                         "count, got " + countTok);
            return;
        }
        if (count > 64) {
            diag(lineNo, "class '" + name + "' exceeds 64 unit instances "
                         "(busy masks are 64-bit), got " + countTok);
            return;
        }
        if (flag != "pipelined" && flag != "nonpipelined") {
            diag(lineNo, "class '" + name + "': expected 'pipelined' or "
                         "'nonpipelined', got '" + flag + "'");
            return;
        }
        classes_.push_back({name, count, flag == "pipelined"});
    }

    void
    parseOp(int lineNo, std::istringstream &toks)
    {
        std::string mnemonic, className, latTok, extra;
        toks >> mnemonic >> className >> latTok;
        if (mnemonic.empty() || className.empty() || latTok.empty() ||
            (toks >> extra)) {
            diag(lineNo, "malformed op directive (expected: op <mnemonic> "
                         "<class> <latency>)");
            return;
        }
        int op = opcodeIndex(mnemonic);
        if (op < 0) {
            diag(lineNo, "unknown opcode '" + mnemonic + "'");
            return;
        }
        int cls = classIndex(className);
        if (cls < 0) {
            diag(lineNo, "unknown class '" + className + "'");
            return;
        }
        if (opBound_[op]) {
            diag(lineNo, "duplicate binding for opcode '" + mnemonic + "'");
            return;
        }
        int lat = 0;
        if (!parseInt(latTok, lat)) {
            diag(lineNo, "opcode '" + mnemonic + "': expected an integer "
                         "latency, got '" + latTok + "'");
            return;
        }
        if (lat <= 0) {
            diag(lineNo, "opcode '" + mnemonic + "' needs a positive "
                         "latency, got " + latTok);
            return;
        }
        opBound_[op] = true;
        classOf_[op] = cls;
        latency_[op] = lat;
    }

    void
    finish()
    {
        if (!haveName_)
            diag(0, "missing machine directive");
        if (classes_.empty())
            diag(0, "machine declares no unit classes");
        for (int op = 0; op < numOpcodes; ++op) {
            if (!opBound_[op])
                diag(0, std::string("missing opcode binding for '") +
                            opcodeName(Opcode(op)) + "'");
        }
    }

    std::vector<MachDiag> diags_;
    bool haveName_ = false;
    std::string name_;
    std::vector<UnitClass> classes_;
    bool opBound_[numOpcodes] = {false};
    int classOf_[numOpcodes] = {0};
    int latency_[numOpcodes] = {1};
};

/** Local FNV-1a accumulator (the machine layer sits below sched/). */
class Fnv
{
  public:
    void
    mix(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h_ ^= (v >> (8 * i)) & 0xffu;
            h_ *= 1099511628211ull;
        }
    }

    void
    mix(const std::string &s)
    {
        mix(std::uint64_t(s.size()));
        for (char c : s) {
            h_ ^= std::uint8_t(c);
            h_ *= 1099511628211ull;
        }
    }

    std::uint64_t value() const { return h_; }

  private:
    std::uint64_t h_ = 14695981039346656037ull;
};

} // namespace

MachParseResult
parseMachineDescription(const std::string &text)
{
    return MachParser().parse(text);
}

std::string
describeMachine(const Machine &m)
{
    std::ostringstream os;
    os << "machine " << m.name() << "\n";
    for (int c = 0; c < m.numClasses(); ++c) {
        const UnitClass &uc = m.unitClass(c);
        os << "class " << uc.name << " " << uc.units << " "
           << (uc.pipelined ? "pipelined" : "nonpipelined") << "\n";
    }
    for (int op = 0; op < numOpcodes; ++op) {
        os << "op " << opcodeName(Opcode(op)) << " "
           << m.className(m.classOf(Opcode(op))) << " "
           << m.latency(Opcode(op)) << "\n";
    }
    return os.str();
}

std::uint64_t
machineContentFingerprint(const Machine &m)
{
    Fnv f;
    f.mix(m.name());
    f.mix(std::uint64_t(m.numClasses()));
    for (int c = 0; c < m.numClasses(); ++c) {
        const UnitClass &uc = m.unitClass(c);
        f.mix(uc.name);
        f.mix(std::uint64_t(uc.units));
        f.mix(std::uint64_t(uc.pipelined));
    }
    for (int op = 0; op < numOpcodes; ++op) {
        f.mix(std::uint64_t(m.classOf(Opcode(op))));
        f.mix(std::uint64_t(m.latency(Opcode(op))));
    }
    return f.value();
}

const char *
machinePresetNames()
{
    return "p1l4, p2l4, p2l6, universal";
}

Machine
machineFromSpec(const std::string &spec)
{
    if (spec == "p1l4")
        return Machine::p1l4();
    if (spec == "p2l4")
        return Machine::p2l4();
    if (spec == "p2l6")
        return Machine::p2l6();
    if (spec == "universal")
        return Machine::universal("universal", 4, 2);
    std::ifstream in(spec);
    if (!in) {
        SWP_FATAL("cannot read machine description file '", spec,
                  "' (presets: ", machinePresetNames(), ")");
    }
    std::ostringstream text;
    text << in.rdbuf();
    MachParseResult r = parseMachineDescription(text.str());
    if (!r.ok()) {
        std::ostringstream msg;
        msg << "invalid machine description '" << spec << "':";
        for (const MachDiag &d : r.diags) {
            msg << "\n  ";
            if (d.line > 0)
                msg << "line " << d.line << ": ";
            msg << d.message;
        }
        SWP_FATAL(msg.str());
    }
    return std::move(*r.machine);
}

} // namespace swp
