/**
 * @file
 * Text serialization of loop dependence graphs (.ddg format).
 *
 * The format is line oriented; '#' starts a comment. A stream may hold
 * any number of loops:
 *
 * @code
 * loop daxpy
 * iterations 1000
 * node Ld1 ld
 * node Mul mul
 * node Add add
 * node St  st
 * inv  alpha
 * edge Ld1 Mul reg 0
 * edge Mul Add reg 0
 * edge Add St  reg 0
 * edge Add Add reg 1     # loop-carried self dependence
 * use  alpha Mul
 * end
 * @endcode
 */

#ifndef SWP_WORKLOAD_DDGIO_HH
#define SWP_WORKLOAD_DDGIO_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "workload/suitegen.hh"

namespace swp
{

/** Parse every loop in a stream; throws FatalError on malformed input. */
std::vector<SuiteLoop> parseDdgStream(std::istream &in);

/** Parse a .ddg file from disk. */
std::vector<SuiteLoop> parseDdgFile(const std::string &path);

/** Serialize one loop (only live edges and unspilled invariants). */
void writeDdg(std::ostream &out, const SuiteLoop &loop);

} // namespace swp

#endif // SWP_WORKLOAD_DDGIO_HH
