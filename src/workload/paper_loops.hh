/**
 * @file
 * Hand-authored analogues of the paper's case-study loops.
 *
 * The paper tracks two loops from the Perfect Club program APSI (ADM)
 * through Figures 4 and 7:
 *
 *  - "APSI 47" (first loop of subroutine CPADE): needs ~54 registers at
 *    its optimal II of 7 on P2L4, but its pressure is dominated by
 *    scheduling components, so increasing the II *converges*: 32
 *    registers around II=13, 16 registers around II=31.
 *
 *  - "APSI 50" (second loop of subroutine PADEC): needs ~55 registers,
 *    but distance components (22 registers worth) plus invariants put a
 *    floor under its requirement, so increasing the II *never* reaches
 *    32 registers; it plateaus around 41.
 *
 * The original source is unavailable; these analogues are built to have
 * the same structural signature (op counts sized for ResMII=7 on P2L4, a
 * long reduction spine for 47, a deep cross-iteration tap bank for 50)
 * and reproduce the qualitative behaviour of both figures.
 */

#ifndef SWP_WORKLOAD_PAPER_LOOPS_HH
#define SWP_WORKLOAD_PAPER_LOOPS_HH

#include "ir/ddg.hh"

namespace swp
{

/** Converging case study (Figure 4a / Figure 7a). */
Ddg buildApsi47Analogue();

/** Non-converging case study (Figure 4b / Figure 7b). */
Ddg buildApsi50Analogue();

} // namespace swp

#endif // SWP_WORKLOAD_PAPER_LOOPS_HH
