/**
 * @file
 * Synthetic Perfect Club substitute.
 *
 * The paper evaluates on 1258 innermost DO-loop dependence graphs
 * extracted from the Perfect Club by the ICTINEO compiler — neither of
 * which is available. This generator produces a deterministic suite of
 * the same size whose *distributions* match what the paper's phenomena
 * depend on: operation mix (FP memory/add/multiply traffic with rare
 * divide/sqrt), dependence topology (chains, fan-out, reductions),
 * loop-carried register dependences (both true recurrences and
 * cross-iteration uses, whose distance components resist the increase-II
 * strategy), loop invariants, and per-loop trip counts used as execution
 * weights.
 *
 * A small fraction of loops ("heavy cross-iteration state" loops, like
 * APSI's CPADE/PADEC kernels) carries enough distance components plus
 * invariants to exceed practical register files at any II; these are the
 * loops Table 1 reports as never converging, and they receive larger
 * trip counts, mirroring the paper's observation that such loops account
 * for a disproportionate share of execution time.
 */

#ifndef SWP_WORKLOAD_SUITEGEN_HH
#define SWP_WORKLOAD_SUITEGEN_HH

#include <cstdint>
#include <vector>

#include "ir/ddg.hh"

namespace swp
{

/** One suite entry: a loop and its dynamic trip count (weight). */
struct SuiteLoop
{
    Ddg graph;
    long iterations = 1;
};

/**
 * The pinned default seed: every run of the generator (benches, tests,
 * the CLI) derives from this unless a --seed flag overrides it, so the
 * published numbers are reproducible from the repo alone.
 */
inline constexpr std::uint64_t kDefaultSuiteSeed = 0x5eedDECADEull;

/** Generator knobs (defaults reproduce the evaluation suite). */
struct SuiteParams
{
    int numLoops = 1258;
    std::uint64_t seed = kDefaultSuiteSeed;

    /** Probability a loop is "heavy" (APSI-50-like state). */
    double heavyFraction = 0.030;

    /** Probability a (non-heavy) loop carries a true recurrence. */
    double recurrenceFraction = 0.35;

    /** Probability of extra cross-iteration uses in normal loops. */
    double carriedUseFraction = 0.40;
};

/** Generate the deterministic evaluation suite. */
std::vector<SuiteLoop> generateSuite(const SuiteParams &params = {});

/** Generate just one loop of the suite (same result as the full run). */
SuiteLoop generateSuiteLoop(const SuiteParams &params, int index);

} // namespace swp

#endif // SWP_WORKLOAD_SUITEGEN_HH
