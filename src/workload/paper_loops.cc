#include "workload/paper_loops.hh"

#include "ir/builder.hh"
#include "ir/verify.hh"
#include "support/diag.hh"
#include "support/strutil.hh"

namespace swp
{

Ddg
buildApsi47Analogue()
{
    // Two opposing reduction spines over a shared vector of loads. Each
    // element is needed near the *start* of one spine and near the *end*
    // of the other, so even a lifetime-minimizing scheduler is forced to
    // keep most of the vector live across the whole body: the pressure
    // is pure scheduling component and melts away as the II grows.
    //
    // Sizing for P2L4: 11 loads + 2 stores = 13 memory ops -> ResMII 7
    // (the paper's optimal II for this loop); 10 adds and 10 muls keep
    // the other units below that bound; no loop-carried dependence, so
    // RecMII = 1. At II=7 the shared vector costs ~55-65 registers,
    // close to the paper's 54.
    constexpr int numElems = 11;

    DdgBuilder b("apsi47");
    NodeId ld[numElems];
    for (int j = 0; j < numElems; ++j)
        ld[j] = b.load(strprintf("Ld%d", j));

    // Forward additive spine: s_j = s_{j-1} + x_j.
    NodeId sum = ld[0];
    for (int j = 1; j < numElems; ++j) {
        const NodeId add = b.add(strprintf("A%d", j));
        b.flow(sum, add);
        b.flow(ld[j], add);
        sum = add;
    }

    // Backward multiplicative spine: p_j = p_{j+1} * x_j.
    NodeId prod = ld[numElems - 1];
    for (int j = numElems - 2; j >= 0; --j) {
        const NodeId mul = b.mul(strprintf("M%d", j));
        b.flow(prod, mul);
        b.flow(ld[j], mul);
        prod = mul;
    }

    const NodeId stSum = b.store("StS");
    b.flow(sum, stSum);
    const NodeId stProd = b.store("StP");
    b.flow(prod, stProd);

    Ddg g = b.take();
    std::string why;
    SWP_ASSERT(verifyDdg(g, &why), "apsi47 analogue malformed: ", why);
    return g;
}

Ddg
buildApsi50Analogue()
{
    // A bank of filter taps with second-order self-recurrences plus a
    // band of invariant coefficients. Each tap's accumulator is consumed
    // by itself two iterations later, contributing a distance component
    // of exactly 2 registers at *any* II (26 in total), and the 8
    // invariants hold their registers forever: 26 + 8 > 32, so
    // increasing the II can never reach 32 registers.
    constexpr int numTaps = 13;
    constexpr int numInvs = 8;

    DdgBuilder b("apsi50");
    InvId coeff[numInvs];
    NodeId taps[numTaps];

    // Declare invariant coefficients up front; consumers attach below.
    for (int c = 0; c < numInvs; ++c)
        coeff[c] = b.graph().addInvariant(strprintf("c%d", c));

    for (int t = 0; t < numTaps; ++t) {
        const NodeId ld = b.load(strprintf("Ld%d", t));
        const NodeId mul = b.mul(strprintf("M%d", t));
        b.flow(ld, mul);
        b.graph().addInvariantUse(coeff[t % numInvs], mul);
        const NodeId acc = b.add(strprintf("T%d", t));
        b.flow(mul, acc);
        b.flow(acc, acc, 2);  // y_t(i) depends on y_t(i-2).
        taps[t] = acc;
    }

    // Combine the taps in a balanced tree and store.
    std::vector<NodeId> frontier(taps, taps + numTaps);
    int level = 0;
    while (frontier.size() > 1) {
        std::vector<NodeId> next;
        for (std::size_t i = 0; i + 1 < frontier.size(); i += 2) {
            const NodeId add =
                b.add(strprintf("R%d_%zu", level, i / 2));
            b.flow(frontier[i], add);
            b.flow(frontier[i + 1], add);
            next.push_back(add);
        }
        if (frontier.size() % 2)
            next.push_back(frontier.back());
        frontier = std::move(next);
        ++level;
    }
    const NodeId st = b.store("St");
    b.flow(frontier[0], st);

    Ddg g = b.take();
    std::string why;
    SWP_ASSERT(verifyDdg(g, &why), "apsi50 analogue malformed: ", why);
    return g;
}

} // namespace swp
