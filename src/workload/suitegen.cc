#include "workload/suitegen.hh"

#include <algorithm>
#include <string>

#include "ir/graph_algo.hh"
#include "ir/verify.hh"
#include "support/diag.hh"
#include "support/rng.hh"
#include "support/strutil.hh"

namespace swp
{

namespace
{

/** Mutable generation state for one loop. */
struct LoopGen
{
    Rng rng;
    Ddg g;
    std::vector<NodeId> values;  ///< Nodes producing a value, in order.
    std::vector<int> useCount;   ///< Register uses per node so far.

    LoopGen(std::uint64_t seed, const std::string &name)
        : rng(seed), g(name)
    {}

    NodeId
    emit(Opcode op)
    {
        const NodeId n = g.addNode(op);
        useCount.push_back(0);
        if (producesValue(op))
            values.push_back(n);
        return n;
    }

    /** Pick an operand, biased toward recently produced values. */
    NodeId
    pickOperand()
    {
        SWP_ASSERT(!values.empty(), "no values to consume");
        const int k = int(values.size());
        // Triangular bias toward the back of the list (recent values),
        // producing the chain-heavy graphs typical of numeric kernels.
        const int a = rng.range(0, k - 1);
        const int b = rng.range(0, k - 1);
        return values[std::size_t(std::max(a, b))];
    }

    void
    use(NodeId producer, NodeId consumer, int distance = 0)
    {
        g.addEdge(producer, consumer, DepKind::RegFlow, distance);
        ++useCount[std::size_t(producer)];
    }
};

/** Opcode mix for arithmetic nodes (weights). */
Opcode
pickArith(Rng &rng, bool allow_expensive)
{
    // add-heavy FP mix; divide/sqrt are rare and gated per loop because
    // their non-pipelined units dominate ResMII when present.
    static const int weights[4] = {56, 36, 6, 2};
    const int idx =
        rng.pickWeighted(weights, allow_expensive ? 4 : 2);
    switch (idx) {
      case 0: return Opcode::Add;
      case 1: return Opcode::Mul;
      case 2: return Opcode::Div;
      default: return Opcode::Sqrt;
    }
}

/** Pick the loop body size by class (small loops dominate). */
int
pickSize(Rng &rng)
{
    static const int classWeights[4] = {58, 30, 10, 2};
    switch (rng.pickWeighted(classWeights, 4)) {
      case 0: return rng.range(4, 12);
      case 1: return rng.range(13, 30);
      case 2: return rng.range(31, 60);
      default: return rng.range(61, 90);
    }
}

/**
 * Add a true recurrence: a loop-carried edge closing a path that
 * already exists, constraining RecMII.
 */
void
addRecurrence(LoopGen &gen)
{
    const auto reach = reachability(gen.g);
    // Collect (ancestor, descendant) pairs among value producers.
    std::vector<std::pair<NodeId, NodeId>> pairs;
    for (NodeId a : gen.values) {
        for (NodeId b : gen.values) {
            if (a != b && reach[std::size_t(a)][std::size_t(b)] &&
                producesValue(gen.g.node(b).op)) {
                pairs.emplace_back(a, b);
            }
        }
    }
    if (pairs.empty())
        return;
    const auto &[from, to] = pairs[std::size_t(
        gen.rng.range(0, int(pairs.size()) - 1))];
    // Close the cycle: the descendant's value feeds the ancestor in a
    // later iteration.
    gen.use(to, from, gen.rng.range(1, 2));
}

/**
 * Add a cross-iteration use without creating a cycle: consume an
 * existing value at distance >= 1 from a node it cannot reach. Distance
 * components like these are what the increase-II strategy cannot
 * reduce.
 */
void
addCarriedUse(LoopGen &gen, int max_distance)
{
    const auto reach = reachability(gen.g);
    for (int attempt = 0; attempt < 8; ++attempt) {
        const NodeId producer = gen.values[std::size_t(
            gen.rng.range(0, int(gen.values.size()) - 1))];
        const NodeId consumer = NodeId(
            gen.rng.range(0, gen.g.numNodes() - 1));
        if (consumer == producer)
            continue;
        if (gen.g.node(consumer).op == Opcode::Load)
            continue;  // Loads take no register operands here.
        // Adding producer->consumer with distance >= 1 is always legal
        // (no zero-distance cycle possible), but avoid creating an
        // unintended recurrence: skip when consumer reaches producer.
        if (reach[std::size_t(consumer)][std::size_t(producer)])
            continue;
        gen.use(producer, consumer, gen.rng.range(1, max_distance));
        return;
    }
}

SuiteLoop
generateNormalLoop(LoopGen &gen, const SuiteParams &params)
{
    const int size = pickSize(gen.rng);
    const bool allowExpensive = gen.rng.chance(0.15);

    // Memory interface: roughly a third of a numeric loop body.
    const int numLoads = std::max(1, int(size * 0.25 +
                                         gen.rng.range(0, 2)));
    const int numStores = std::max(1, int(size * 0.09));
    const int numArith = std::max(1, size - numLoads - numStores);

    for (int i = 0; i < numLoads; ++i)
        gen.emit(Opcode::Load);

    // Invariants (scalars kept in registers across the loop).
    const int numInvs = gen.rng.range(0, 4);
    std::vector<InvId> invs;
    for (int i = 0; i < numInvs; ++i)
        invs.push_back(gen.g.addInvariant());

    for (int i = 0; i < numArith; ++i) {
        // IF-converted conditionals leave select operations behind
        // (Section 5: loops with conditionals are converted to single
        // basic blocks with [2] before pipelining).
        const bool ifConverted =
            gen.values.size() >= 3 && gen.rng.chance(0.06);
        const Opcode op = ifConverted
                              ? Opcode::Select
                              : pickArith(gen.rng, allowExpensive);
        // Choose operands before emitting so a node can never pick its
        // own value (a zero-distance cycle).
        const int arity = op == Opcode::Select
                              ? 3
                              : (op == Opcode::Add || op == Opcode::Mul)
                                    ? gen.rng.range(1, 2)
                                    : 1;
        std::vector<NodeId> operands;
        for (int a = 0; a < arity; ++a)
            operands.push_back(gen.pickOperand());
        const NodeId n = gen.emit(op);
        for (NodeId operand : operands)
            gen.use(operand, n);
        if (!invs.empty() && gen.rng.chance(0.18)) {
            gen.g.addInvariantUse(
                invs[std::size_t(gen.rng.range(0, numInvs - 1))], n);
        }
    }

    // Stores and dead-value cleanup: every produced value gets a use,
    // as in real compiled loops where results land in arrays.
    std::vector<NodeId> unused;
    for (NodeId v : gen.values) {
        if (gen.useCount[std::size_t(v)] == 0)
            unused.push_back(v);
    }
    int storesEmitted = 0;
    // Prefer storing otherwise-dead values (sinks of the computation).
    for (auto it = unused.rbegin();
         it != unused.rend() && storesEmitted < numStores; ++it) {
        const NodeId st = gen.emit(Opcode::Store);
        gen.use(*it, st);
        ++storesEmitted;
    }
    while (storesEmitted < numStores) {
        const NodeId st = gen.emit(Opcode::Store);
        gen.use(gen.pickOperand(), st);
        ++storesEmitted;
    }
    for (NodeId v : gen.values) {
        if (gen.useCount[std::size_t(v)] == 0) {
            const NodeId st = gen.emit(Opcode::Store);
            gen.use(v, st);
        }
    }

    // Loop-carried structure.
    if (gen.rng.chance(params.recurrenceFraction))
        addRecurrence(gen);
    if (gen.rng.chance(params.carriedUseFraction)) {
        const int extra = gen.rng.range(1, 3);
        for (int i = 0; i < extra; ++i)
            addCarriedUse(gen, 4);
    }

    // Loop-carried memory dependences: a load reads locations a store
    // of a previous iteration may have written (the paper's MemE
    // class). Distance >= 1 keeps the iteration body acyclic.
    if (gen.rng.chance(0.15)) {
        std::vector<NodeId> loads, stores;
        for (NodeId n = 0; n < gen.g.numNodes(); ++n) {
            if (gen.g.node(n).op == Opcode::Load)
                loads.push_back(n);
            else if (gen.g.node(n).op == Opcode::Store)
                stores.push_back(n);
        }
        if (!loads.empty() && !stores.empty()) {
            const NodeId st = stores[std::size_t(
                gen.rng.range(0, int(stores.size()) - 1))];
            const NodeId ld = loads[std::size_t(
                gen.rng.range(0, int(loads.size()) - 1))];
            gen.g.addEdge(st, ld, DepKind::Mem, gen.rng.range(1, 3));
        }
    }

    SuiteLoop loop;
    loop.iterations = 8 * gen.rng.range(4, 160);
    loop.graph = std::move(gen.g);
    return loop;
}

/**
 * A heavy loop: APSI-50-like cross-iteration state. Many values are
 * consumed several iterations later, so their distance components alone
 * occupy tens of registers at any II, and a band of invariants adds a
 * constant demand on top.
 */
SuiteLoop
generateHeavyLoop(LoopGen &gen, const SuiteParams &params)
{
    (void)params;
    const int numTaps = gen.rng.range(9, 18);
    const int numInvs = gen.rng.range(4, 8);

    std::vector<InvId> invs;
    for (int i = 0; i < numInvs; ++i)
        invs.push_back(gen.g.addInvariant());

    // A bank of second-order filter taps: each tap loads a sample,
    // scales it, and combines it with its own value from delta
    // iterations ago (distance component = delta registers, forever).
    std::vector<NodeId> taps;
    for (int t = 0; t < numTaps; ++t) {
        const NodeId ld = gen.emit(Opcode::Load);
        const NodeId mul = gen.emit(Opcode::Mul);
        gen.use(ld, mul);
        gen.g.addInvariantUse(invs[std::size_t(t % numInvs)], mul);
        const NodeId add = gen.emit(Opcode::Add);
        gen.use(mul, add);
        gen.use(add, add, gen.rng.range(2, 4));  // Self-recurrence.
        taps.push_back(add);
    }

    // Combine the taps pairwise and store the result.
    std::vector<NodeId> frontier = taps;
    while (frontier.size() > 1) {
        std::vector<NodeId> next;
        for (std::size_t i = 0; i + 1 < frontier.size(); i += 2) {
            const NodeId add = gen.emit(Opcode::Add);
            gen.use(frontier[i], add);
            gen.use(frontier[i + 1], add);
            next.push_back(add);
        }
        if (frontier.size() % 2)
            next.push_back(frontier.back());
        frontier = std::move(next);
    }
    const NodeId st = gen.emit(Opcode::Store);
    gen.use(frontier[0], st);

    SuiteLoop loop;
    // These state-heavy kernels are the hot loops of their programs:
    // weighted so the non-converging set carries roughly the paper's
    // share of all cycles (~20% at 64 registers, ~30% at 32).
    loop.iterations = 32 * gen.rng.range(48, 384);
    loop.graph = std::move(gen.g);
    return loop;
}

} // namespace

SuiteLoop
generateSuiteLoop(const SuiteParams &params, int index)
{
    LoopGen gen(params.seed * 0x9e3779b97f4a7c15ull + std::uint64_t(index),
                strprintf("loop%04d", index));
    const bool heavy = gen.rng.chance(params.heavyFraction);
    SuiteLoop loop = heavy ? generateHeavyLoop(gen, params)
                           : generateNormalLoop(gen, params);
    std::string why;
    SWP_ASSERT(verifyDdg(loop.graph, &why), "generated loop ", index,
               " is malformed: ", why);
    return loop;
}

std::vector<SuiteLoop>
generateSuite(const SuiteParams &params)
{
    std::vector<SuiteLoop> suite;
    suite.reserve(std::size_t(params.numLoops));
    for (int i = 0; i < params.numLoops; ++i)
        suite.push_back(generateSuiteLoop(params, i));
    return suite;
}

} // namespace swp
