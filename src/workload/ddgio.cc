#include "workload/ddgio.hh"

#include <fstream>
#include <istream>
#include <map>
#include <ostream>

#include "ir/verify.hh"
#include "support/diag.hh"
#include "support/strutil.hh"

namespace swp
{

namespace
{

DepKind
parseDepKind(const std::string &s)
{
    if (s == "reg")
        return DepKind::RegFlow;
    if (s == "mem")
        return DepKind::Mem;
    if (s == "ctrl")
        return DepKind::Control;
    SWP_FATAL("unknown dependence kind '", s, "'");
}

const char *
depKindName(DepKind k)
{
    switch (k) {
      case DepKind::RegFlow: return "reg";
      case DepKind::Mem: return "mem";
      case DepKind::Control: return "ctrl";
    }
    SWP_PANIC("unknown dep kind ", int(k));
}

} // namespace

std::vector<SuiteLoop>
parseDdgStream(std::istream &in)
{
    std::vector<SuiteLoop> loops;
    SuiteLoop current;
    bool open = false;
    std::map<std::string, NodeId> nodeByName;
    std::map<std::string, InvId> invByName;
    std::string line;
    int lineNo = 0;

    auto needOpen = [&](const std::string &what) {
        if (!open) {
            SWP_FATAL("line ", lineNo, ": '", what,
                      "' outside a loop block");
        }
    };
    auto findNode = [&](const std::string &name) {
        const auto it = nodeByName.find(name);
        if (it == nodeByName.end())
            SWP_FATAL("line ", lineNo, ": unknown node '", name, "'");
        return it->second;
    };

    while (std::getline(in, line)) {
        ++lineNo;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        const auto tok = splitWs(line);
        if (tok.empty())
            continue;

        if (tok[0] == "loop") {
            if (open)
                SWP_FATAL("line ", lineNo, ": nested 'loop'");
            if (tok.size() != 2)
                SWP_FATAL("line ", lineNo, ": expected 'loop <name>'");
            current = SuiteLoop();
            current.graph.setName(tok[1]);
            nodeByName.clear();
            invByName.clear();
            open = true;
        } else if (tok[0] == "iterations") {
            needOpen("iterations");
            if (tok.size() != 2)
                SWP_FATAL("line ", lineNo, ": expected 'iterations <n>'");
            current.iterations = parseLong(tok[1]);
            if (current.iterations < 1)
                SWP_FATAL("line ", lineNo, ": iterations must be >= 1");
        } else if (tok[0] == "node") {
            needOpen("node");
            if (tok.size() != 3) {
                SWP_FATAL("line ", lineNo,
                          ": expected 'node <name> <opcode>'");
            }
            if (nodeByName.count(tok[1]))
                SWP_FATAL("line ", lineNo, ": duplicate node '", tok[1],
                          "'");
            nodeByName[tok[1]] =
                current.graph.addNode(parseOpcode(tok[2]), tok[1]);
        } else if (tok[0] == "inv") {
            needOpen("inv");
            if (tok.size() != 2)
                SWP_FATAL("line ", lineNo, ": expected 'inv <name>'");
            if (invByName.count(tok[1])) {
                SWP_FATAL("line ", lineNo, ": duplicate invariant '",
                          tok[1], "'");
            }
            invByName[tok[1]] = current.graph.addInvariant(tok[1]);
        } else if (tok[0] == "edge") {
            needOpen("edge");
            if (tok.size() != 5) {
                SWP_FATAL("line ", lineNo,
                          ": expected 'edge <src> <dst> <kind> <dist>'");
            }
            current.graph.addEdge(findNode(tok[1]), findNode(tok[2]),
                                  parseDepKind(tok[3]),
                                  int(parseLong(tok[4])));
        } else if (tok[0] == "use") {
            needOpen("use");
            if (tok.size() != 3) {
                SWP_FATAL("line ", lineNo,
                          ": expected 'use <inv> <node>'");
            }
            const auto it = invByName.find(tok[1]);
            if (it == invByName.end()) {
                SWP_FATAL("line ", lineNo, ": unknown invariant '",
                          tok[1], "'");
            }
            current.graph.addInvariantUse(it->second, findNode(tok[2]));
        } else if (tok[0] == "end") {
            needOpen("end");
            std::string why;
            if (!verifyDdg(current.graph, &why)) {
                SWP_FATAL("loop '", current.graph.name(),
                          "' is malformed: ", why);
            }
            loops.push_back(std::move(current));
            open = false;
        } else {
            SWP_FATAL("line ", lineNo, ": unknown directive '", tok[0],
                      "'");
        }
    }
    if (open)
        SWP_FATAL("unterminated loop block '", current.graph.name(), "'");
    return loops;
}

std::vector<SuiteLoop>
parseDdgFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        SWP_FATAL("cannot open '", path, "'");
    return parseDdgStream(in);
}

void
writeDdg(std::ostream &out, const SuiteLoop &loop)
{
    const Ddg &g = loop.graph;
    out << "loop " << g.name() << "\n";
    out << "iterations " << loop.iterations << "\n";
    for (NodeId n = 0; n < g.numNodes(); ++n) {
        out << "node " << g.node(n).name << " "
            << opcodeName(g.node(n).op) << "\n";
    }
    for (InvId i = 0; i < g.numInvariants(); ++i) {
        if (!g.invariant(i).spilled)
            out << "inv " << g.invariant(i).name << "\n";
    }
    for (EdgeId e = 0; e < g.numEdges(); ++e) {
        const Edge &edge = g.edge(e);
        if (!edge.alive)
            continue;
        out << "edge " << g.node(edge.src).name << " "
            << g.node(edge.dst).name << " " << depKindName(edge.kind)
            << " " << edge.distance << "\n";
    }
    for (InvId i = 0; i < g.numInvariants(); ++i) {
        const Invariant &inv = g.invariant(i);
        if (inv.spilled)
            continue;
        for (NodeId c : inv.consumers)
            out << "use " << inv.name << " " << g.node(c).name << "\n";
    }
    out << "end\n";
}

} // namespace swp
