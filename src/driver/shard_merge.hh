/**
 * @file
 * Cross-process sharding of experiment grids: shard specs, per-shard
 * result files, and the validating merge.
 *
 * The paper's grids (every loop x strategy x register-file size) are
 * embarrassingly parallel across processes as well as threads: a shard
 * spec `i/N` deterministically assigns job index j to shard j mod N, a
 * sharded process evaluates only its own jobs and writes one JSON shard
 * file holding the *rendered output* of each job plus enough metadata
 * to prove the shards belong together, and the merge recombines N such
 * files into output byte-identical to an unsharded run — each record is
 * the exact text the unsharded run would have produced for that job, so
 * concatenating them in job order reproduces the run, independent of
 * each shard's thread count, chunking policy, or memo configuration.
 *
 * The merge refuses anything it cannot prove coherent: shards produced
 * by different tools, configurations, suite seeds, or grid sizes;
 * overlapping shards (one index claimed twice); missing shards; and
 * records that do not belong to the shard that carries them.
 */

#ifndef SWP_DRIVER_SHARD_MERGE_HH
#define SWP_DRIVER_SHARD_MERGE_HH

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace swp
{

/** One-of-N assignment of job indices to this process. */
struct ShardSpec
{
    /** 0-based shard index, in [0, count). */
    int index = 0;

    /** Total number of shards; 1 means "everything" (no sharding). */
    int count = 1;

    /** True when the spec actually partitions (count > 1). */
    bool active() const { return count > 1; }

    /** Whether job index `job` belongs to this shard. */
    bool
    owns(std::size_t job) const
    {
        return count <= 1 || job % std::size_t(count) == std::size_t(index);
    }
};

/**
 * Parse "i/N" (0-based, 0 <= i < N). Returns false without touching
 * `out` on malformed input.
 */
bool parseShardSpec(const std::string &text, ShardSpec &out);

/** "i/N". */
std::string formatShardSpec(const ShardSpec &spec);

/** One evaluated job: its index and its rendered report text. */
struct ShardRecord
{
    /** Index into the full job grid. */
    std::size_t job = 0;

    /** The job's contribution to the process exit code. */
    int rc = 0;

    /** Exactly the text an unsharded run writes for this job. */
    std::string text;
};

/**
 * One bench-harness job result carried in a shard file. Pipeline jobs
 * are pure functions of (machine, graph, options), so a record is
 * keyed by a fingerprint of exactly those inputs and holds the scalar
 * outcome every converted bench table is computed from; an
 * orchestrating bench parent replays its grids job-by-job from the
 * merged record store instead of evaluating them.
 */
struct BenchJobRecord
{
    /** Fingerprint of (machine, graph, job options), hex. */
    std::string key;

    bool success = false;
    bool usedFallback = false;
    int ii = 0;       ///< Achieved initiation interval.
    int regs = 0;     ///< Registers required by the allocation.
    int spills = 0;   ///< Spilled lifetimes.
    int rounds = 0;   ///< Spill rounds taken.
    int attempts = 0; ///< Scheduling attempts.
    int memOps = 0;   ///< Memory operations per iteration (incl. spills).
};

/** In-memory form of one shard file. */
struct ShardDoc
{
    /** Producing tool ("swpipe_cli"); merges never mix tools. */
    std::string tool;

    /**
     * Fingerprint of everything the rendered output depends on: the
     * tool's options, the machine, every input loop's structural
     * fingerprint and trip count, and the build. Two shards merge only
     * if these match exactly.
     */
    std::string config;

    /** Human-readable form of `config`, for mismatch diagnostics. */
    std::string configSummary;

    /** Suite generator seed (decimal), empty when no generated suite. */
    std::string suiteSeed;

    /** Generated-suite loop count, 0 when no generated suite. */
    int suiteLoops = 0;

    /** Size of the full job grid being sharded. */
    std::size_t totalJobs = 0;

    ShardSpec shard;

    /** Text emitted once before any record (e.g. the CSV header). */
    std::string prologue;

    /** This shard's jobs, in ascending job order. */
    std::vector<ShardRecord> records;

    /** Bench-harness per-job records (optional; bench fleets only). */
    std::vector<BenchJobRecord> benchJobs;

    /** Where this document was read from (set by readShardFile, not
        serialized); names the offending file in merge diagnostics. */
    std::string source;
};

/** Serialize a shard document as JSON. */
void writeShardFile(std::ostream &out, const ShardDoc &doc);

/**
 * Write to a file crash-safely: the document is serialized to a
 * temporary sibling and atomically renamed into place, so a worker
 * killed mid-write never leaves a truncated file at the final path —
 * readers see either the old complete file or the new complete file.
 * Throws FatalError when the file cannot be written.
 */
void writeShardFile(const std::string &path, const ShardDoc &doc);

/** Parse one shard file; throws FatalError on I/O or format errors. */
ShardDoc readShardFile(const std::string &path);

/** Result of merging a complete shard set. */
struct MergeOutput
{
    /** prologue + every record's text in job order: byte-identical to
        the unsharded run's output. */
    std::string text;

    /** OR of every record's rc: the unsharded run's exit code. */
    int rc = 0;
};

/**
 * Validate and merge a complete set of shard documents (any order).
 * Throws FatalError naming the first inconsistency: mixed tools,
 * configs, seeds, grid sizes or shard counts; duplicate (overlapping)
 * or missing shards; records outside their shard's partition; and
 * duplicate or missing job indices.
 */
MergeOutput mergeShards(const std::vector<ShardDoc> &docs);

/**
 * Validate and merge the bench-harness record stores of a complete
 * shard set (same coherence rules as mergeShards, minus text-record
 * coverage — bench grids are keyed by content, not job index). Records
 * duplicated across shards must be field-identical (jobs are pure
 * functions; a mismatch means the shards did not run the same build or
 * inputs and is refused). Returns the union, keyed for lookup.
 */
std::vector<BenchJobRecord>
mergeBenchRecords(const std::vector<ShardDoc> &docs);

} // namespace swp

#endif // SWP_DRIVER_SHARD_MERGE_HH
