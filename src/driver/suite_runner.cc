#include "driver/suite_runner.hh"

#include <algorithm>
#include <chrono>
#include <queue>

#include "sched/fingerprint.hh"
#include "sched/ii_search.hh"
#include "sched/mii.hh"
#include "support/arena.hh"
#include "support/diag.hh"
#include "support/strutil.hh"
#include "verify/legality.hh"

namespace swp
{

const char *
chunkPolicyName(ChunkPolicy policy)
{
    switch (policy) {
      case ChunkPolicy::Auto: return "auto";
      case ChunkPolicy::Fixed: return "fixed";
    }
    SWP_PANIC("unknown chunk policy ", int(policy));
}

bool
parseChunkPolicy(const std::string &text, ChunkPolicy &out)
{
    if (text == "auto") {
        out = ChunkPolicy::Auto;
        return true;
    }
    if (text == "fixed") {
        out = ChunkPolicy::Fixed;
        return true;
    }
    return false;
}

bool
parseThreadsArg(const std::string &text, int &out)
{
    if (text == "auto") {
        out = 0;
        return true;
    }
    return parseIntInRange(text, 0, 4096, out);
}

namespace
{

/**
 * Depth of pool-task bodies running on this thread. A dispatch issued
 * from inside a task (nested parallelFor from a job) must run inline:
 * the pool is busy with the batch that issued it, and waiting for the
 * dispatch slot would deadlock.
 */
thread_local int tlsInTask = 0;

struct TaskScope
{
    TaskScope() { ++tlsInTask; }
    ~TaskScope() { --tlsInTask; }
};

/** The perf slot of the task this thread is currently working on (0
    outside any task, which is also the dispatching caller's slot). */
thread_local std::size_t tlsWorkerSlot = 0;

double
secondsSince(const std::chrono::steady_clock::time_point &start)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

int
resolveThreadCount(int threads)
{
    if (threads > 0)
        return threads;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? int(hw) : 1;
}

} // namespace

std::atomic<unsigned> SuiteRunner::claimJitter_{0};

void
SuiteRunner::setClaimJitterForTesting(unsigned seed)
{
    claimJitter_.store(seed, std::memory_order_relaxed);
}

SuiteRunner::SuiteRunner(int threads, bool memoizeSchedules,
                         std::size_t memoCap)
    : threads_(resolveThreadCount(threads)),
      memoizeSchedules_(memoizeSchedules),
      boundsCache_(memoCap, threads_),
      scheduleMemo_(kVerifyMemoKeys, memoCap, threads_),
      perf_(std::size_t(threads_))
{
}

SuiteRunner::~SuiteRunner()
{
    {
        std::lock_guard<std::mutex> lock(poolMutex_);
        shutdown_ = true;
    }
    workCv_.notify_all();
    for (std::thread &t : pool_)
        t.join();
}

SuiteRunner::LoopBounds
SuiteRunner::bounds(const Ddg &g, const Machine &m)
{
    const auto key =
        std::make_pair(graphFingerprint(g), machineFingerprint(m));
    const CachedBounds cached = boundsCache_.getOrCompute(
        key,
        [&]() {
            CachedBounds c;
            c.b.mii = mii(g, m);
            c.b.recMii = recMii(g, m);
            if (kVerifyMemoKeys) {
                c.graph = g;
                c.machine = m;
            }
            return c;
        },
        [&](const CachedBounds &hit) {
            if (!kVerifyMemoKeys)
                return;
            SWP_ASSERT(hit.graph &&
                           graphsFingerprintEquivalent(g, *hit.graph),
                       "bounds memo fingerprint collision: graph '",
                       g.name(),
                       "' hit an entry built from a different graph");
            SWP_ASSERT(hit.machine &&
                           machinesFingerprintEquivalent(m, *hit.machine),
                       "bounds memo fingerprint collision: machine '",
                       m.name(),
                       "' hit an entry built from a different machine");
        });
    return cached.b;
}

void
SuiteRunner::ensurePool() const
{
    std::lock_guard<std::mutex> lock(poolMutex_);
    if (!pool_.empty())
        return;
    const int spawn = threads_ - 1;
    pool_.reserve(std::size_t(spawn));
    for (int t = 0; t < spawn; ++t)
        pool_.emplace_back([this] { poolMain(); });
}

/**
 * Take the next chunk for worker `self`: own deque front first
 * (heaviest remaining of its share), then the back of the next
 * non-empty victim, scanning from self+1. Chunks are never re-inserted
 * after seeding, so a fully-empty scan means the batch is claimed and
 * the worker can retire. The whole hunt is billed to perf.stealSeconds.
 */
bool
SuiteRunner::claim(PoolTask &t, std::size_t self, PoolTask::Range &out,
                   WorkerPerf &perf) const
{
    const auto start = std::chrono::steady_clock::now();

    // Test hook: perturb who wins each race so the determinism test
    // can explore many interleavings (a no-op when unset).
    const unsigned jitterSeed = claimJitter_.load(std::memory_order_relaxed);
    if (jitterSeed != 0) {
        thread_local unsigned state = 0;
        state = state * 1664525u + 1013904223u + jitterSeed +
                unsigned(self);
        volatile unsigned sink = 0;
        for (unsigned i = 0, n = state % 2048u; i < n; ++i)
            sink += i;
        (void)sink;
    }

    bool ok = false;
    bool stolen = false;
    {
        PoolTask::Queue &own = t.queues[self];
        std::lock_guard<std::mutex> lock(own.m);
        if (!own.chunks.empty()) {
            out = own.chunks.front();
            own.chunks.pop_front();
            ok = true;
        }
    }
    for (std::size_t k = 1; !ok && k < t.queueCount; ++k) {
        PoolTask::Queue &victim = t.queues[(self + k) % t.queueCount];
        std::lock_guard<std::mutex> lock(victim.m);
        if (!victim.chunks.empty()) {
            out = victim.chunks.back();
            victim.chunks.pop_back();
            ok = stolen = true;
        }
    }

    perf.stealSeconds += secondsSince(start);
    if (ok) {
        ++perf.claims;
        if (stolen)
            ++perf.steals;
    }
    return ok;
}

/**
 * Body run by every thread participating in a task (pool threads and
 * the dispatching caller alike): take a worker slot, build per-thread
 * state, then consume chunks from the work-stealing deques until they
 * run dry or a job fails.
 */
void
SuiteRunner::runTask(PoolTask &t) const
{
    if (t.abort.load(std::memory_order_relaxed))
        return;
    // Arrival order assigns each participant a deque. More participants
    // than deques cannot happen (the pool holds threads_ - 1 threads
    // and the dispatching caller is the last worker), but the modulo
    // keeps a straggler correct regardless: deques are mutex-guarded,
    // so sharing one merely shares its work.
    const std::size_t self =
        t.nextSlot.fetch_add(1, std::memory_order_relaxed) % t.queueCount;

    WorkerPerf perf;
    PoolTask::Range r;
    // Claim a chunk before building any per-thread state. This bounds
    // the participants to the chunk count (a pool thread waking for a
    // batch smaller than the pool backs out after one empty hunt
    // instead of constructing scheduler objects it will never use), and
    // it protects makeWorker's lifetime: a thread that cannot claim a
    // chunk never touches makeWorker — whose captures are locals of the
    // dispatching caller, which only returns once it has observed
    // every deque drained and activeWorkers_ == 0.
    if (!claim(t, self, r, perf)) {
        flushPerf(self, perf);
        return;
    }
    const TaskScope scope;
    const std::size_t prevSlot = tlsWorkerSlot;
    tlsWorkerSlot = self;
    // makeWorker() runs on the worker thread too (it allocates
    // per-thread state); a throw there must reach the caller, not
    // std::terminate.
    Worker fn;
    try {
        fn = (*t.makeWorker)();
    } catch (...) {
        t.fail();
        tlsWorkerSlot = prevSlot;
        return;
    }
    bool aborted = false;
    do {
        for (std::size_t i = r.first; i < r.second; ++i) {
            if (t.abort.load(std::memory_order_relaxed)) {
                aborted = true;
                break;
            }
            const double wait0 = singleFlightWaitSeconds();
            const auto start = std::chrono::steady_clock::now();
            try {
                fn(i);
            } catch (...) {
                t.fail();
            }
            const double elapsed = secondsSince(start);
            const double waited = singleFlightWaitSeconds() - wait0;
            perf.memoWaitSeconds += waited;
            perf.scheduleSeconds +=
                elapsed > waited ? elapsed - waited : 0.0;
            ++perf.jobs;
        }
    } while (!aborted && claim(t, self, r, perf));
    // fn (and the per-thread state it owns, e.g. the worker's arena)
    // dies before the perf flush so arena high-water notes land first.
    fn = nullptr;
    flushPerf(self, perf);
    tlsWorkerSlot = prevSlot;
}

void
SuiteRunner::flushPerf(std::size_t slot, const WorkerPerf &perf) const
{
    std::lock_guard<std::mutex> lock(perfMutex_);
    WorkerPerf &w = perf_[slot % perf_.size()];
    w.scheduleSeconds += perf.scheduleSeconds;
    w.memoWaitSeconds += perf.memoWaitSeconds;
    w.stealSeconds += perf.stealSeconds;
    w.jobs += perf.jobs;
    w.claims += perf.claims;
    w.steals += perf.steals;
    if (perf.arenaHighWaterBytes > w.arenaHighWaterBytes)
        w.arenaHighWaterBytes = perf.arenaHighWaterBytes;
}

void
SuiteRunner::noteArenaHighWater(std::size_t bytes) const
{
    std::lock_guard<std::mutex> lock(perfMutex_);
    WorkerPerf &w = perf_[tlsWorkerSlot % perf_.size()];
    if (bytes > w.arenaHighWaterBytes)
        w.arenaHighWaterBytes = bytes;
}

std::vector<WorkerPerf>
SuiteRunner::workerPerf() const
{
    std::lock_guard<std::mutex> lock(perfMutex_);
    return perf_;
}

void
SuiteRunner::resetWorkerPerf()
{
    std::lock_guard<std::mutex> lock(perfMutex_);
    perf_.assign(perf_.size(), WorkerPerf{});
}

void
SuiteRunner::poolMain() const
{
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(poolMutex_);
    for (;;) {
        workCv_.wait(lock, [&] { return shutdown_ || taskGen_ != seen; });
        if (shutdown_)
            return;
        seen = taskGen_;
        const std::shared_ptr<PoolTask> t = task_;
        if (!t)
            continue;  // Task already retired; wait for the next one.
        ++activeWorkers_;
        lock.unlock();
        runTask(*t);
        lock.lock();
        if (--activeWorkers_ == 0)
            idleCv_.notify_all();
    }
}

void
SuiteRunner::dispatch(std::size_t count,
                      const std::function<Worker()> &makeWorker,
                      std::size_t chunk) const
{
    if (count == 0)
        return;

    // Serial path: a single thread, a single job, or a dispatch nested
    // inside a pool task (which would deadlock waiting for the slot its
    // own batch holds) runs inline on the calling thread — same
    // results, no parallel speedup. Nested dispatches skip the perf
    // accounting: their time is already inside the enclosing job's.
    if (threads_ == 1 || count == 1 || tlsInTask > 0) {
        const Worker fn = makeWorker();
        if (tlsInTask > 0) {
            for (std::size_t i = 0; i < count; ++i)
                fn(i);
            return;
        }
        WorkerPerf perf;
        for (std::size_t i = 0; i < count; ++i) {
            const double wait0 = singleFlightWaitSeconds();
            const auto start = std::chrono::steady_clock::now();
            fn(i);
            const double elapsed = secondsSince(start);
            const double waited = singleFlightWaitSeconds() - wait0;
            perf.memoWaitSeconds += waited;
            perf.scheduleSeconds +=
                elapsed > waited ? elapsed - waited : 0.0;
            ++perf.jobs;
        }
        flushPerf(0, perf);
        return;
    }

    // The pool runs one batch at a time; concurrent dispatches from
    // other threads take turns.
    const std::lock_guard<std::mutex> slot(dispatchMutex_);
    ensurePool();

    auto task = std::make_shared<PoolTask>();
    task->count = count;
    task->chunk = chunk ? chunk : 1;
    task->makeWorker = &makeWorker;
    // Deal the chunks round-robin across one deque per worker, in plan
    // order: fronts get the heaviest work (planJobOrder ranks the index
    // space heaviest-first under ChunkPolicy::Auto), backs the light
    // tail that thieves migrate. Seeding happens before the task is
    // published, so no lock is needed yet.
    task->queueCount = std::size_t(threads_);
    task->queues.reset(new PoolTask::Queue[task->queueCount]);
    {
        std::size_t q = 0;
        for (std::size_t base = 0; base < count; base += task->chunk) {
            task->queues[q].chunks.push_back(
                {base, std::min(base + task->chunk, count)});
            q = (q + 1) % task->queueCount;
        }
    }
    {
        std::lock_guard<std::mutex> lock(poolMutex_);
        task_ = task;
        ++taskGen_;
    }
    workCv_.notify_all();

    runTask(*task);  // The caller is the pool's final worker.

    {
        // activeWorkers_ is incremented under poolMutex_ before a pool
        // thread enters runTask, so activeWorkers_ == 0 here means no
        // participant can still touch makeWorker: any thread waking
        // later either finds task_ reset, or fails to claim an index
        // (all are claimed by now) and backs out without calling
        // makeWorker.
        std::unique_lock<std::mutex> lock(poolMutex_);
        idleCv_.wait(lock, [&] { return activeWorkers_ == 0; });
        task_.reset();
    }
    if (task->error)
        std::rethrow_exception(task->error);
}

void
SuiteRunner::parallelFor(std::size_t count,
                         const std::function<void(std::size_t)> &fn) const
{
    dispatch(count, [&fn]() -> Worker { return fn; });
}

double
SuiteRunner::jobCost(const std::vector<SuiteLoop> &suite,
                     const Machine &m, const BatchJob &job)
{
    const Ddg &g = suite[std::size_t(job.loop)].graph;
    const int span =
        std::max(1, defaultMaxIi(g, m) - bounds(g, m).mii + 1);
    return double(g.numNodes()) * double(span);
}

std::vector<std::size_t>
SuiteRunner::planJobOrder(const std::vector<SuiteLoop> &suite,
                          const Machine &m,
                          const std::vector<BatchJob> &jobs,
                          const RunOptions &opts)
{
    SWP_ASSERT(opts.shard.count >= 1 && opts.shard.index >= 0 &&
                   opts.shard.index < opts.shard.count,
               "malformed shard spec ", opts.shard.index, "/",
               opts.shard.count);

    std::vector<std::size_t> order;
    order.reserve(jobs.size() / std::size_t(opts.shard.count) + 1);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (opts.shard.owns(i))
            order.push_back(i);
    }
    if (opts.chunk == ChunkPolicy::Auto) {
        // The ranking needs every owned loop's MII; warm the bounds
        // memo across the pool first so a cold large suite does not
        // serialize that phase on this thread (the memo is
        // single-flight and deterministic, so this only moves work).
        std::vector<std::size_t> distinctLoops;
        {
            std::vector<bool> seen(suite.size(), false);
            for (const std::size_t i : order) {
                const std::size_t loop = std::size_t(jobs[i].loop);
                if (!seen[loop]) {
                    seen[loop] = true;
                    distinctLoops.push_back(loop);
                }
            }
        }
        parallelFor(distinctLoops.size(), [&](std::size_t k) {
            (void)bounds(suite[distinctLoops[k]].graph, m);
        });

        // Heaviest-first. The costs are deterministic, and the sort is
        // stable with index-order tie-breaking, so the plan — like the
        // results — is identical at any thread count.
        std::vector<double> cost(jobs.size(), 0.0);
        for (const std::size_t i : order)
            cost[i] = jobCost(suite, m, jobs[i]);
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                             return cost[a] > cost[b];
                         });
    }
    return order;
}

std::vector<PipelineResult>
SuiteRunner::run(const std::vector<SuiteLoop> &suite, const Machine &m,
                 const std::vector<BatchJob> &jobs,
                 const RunOptions &opts)
{
    for (const BatchJob &job : jobs) {
        SWP_ASSERT(job.loop >= 0 && std::size_t(job.loop) < suite.size(),
                   "batch job references loop ", job.loop,
                   " outside the ", suite.size(), "-loop suite");
    }

    const std::vector<std::size_t> order =
        planJobOrder(suite, m, jobs, opts);

    // Heaviest-first ordering balances by starting long jobs early, so
    // it wants the finest claiming grain; fixed-policy batches trade
    // balance for fewer deque claims.
    const std::size_t chunk =
        opts.chunk == ChunkPolicy::Auto
            ? 1
            : std::max<std::size_t>(
                  1, order.size() / (std::size_t(threads_) * 8));

    const bool verify = opts.verify || kAlwaysVerifyResults;
    const bool certify = opts.certify || opts.certificates != nullptr;
    std::vector<CertSummary> *certOut = opts.certificates;
    if (certOut)
        certOut->assign(jobs.size(), CertSummary{});

    std::vector<PipelineResult> results(jobs.size());
    dispatch(
        order.size(),
        [&]() -> Worker {
            // Per-worker scheduler objects, reused across every job
            // this worker executes (shared_ptr so the returned closure
            // owns them). The worker's arena backs each job's transient
            // buffers and is rewound between jobs; its deleter reports
            // the high-water mark into this worker's perf slot.
            std::shared_ptr<ModuloScheduler> hrms =
                makeScheduler(SchedulerKind::Hrms);
            std::shared_ptr<ModuloScheduler> ims =
                makeScheduler(SchedulerKind::Ims);
            std::shared_ptr<Arena> arena(new Arena, [this](Arena *a) {
                noteArenaHighWater(a->stats().highWaterBytes);
                delete a;
            });
            return [this, &suite, &m, &jobs, &results, &order, verify,
                    certify, certOut, hrms, ims, arena](std::size_t k) {
                const std::size_t i = order[k];
                const BatchJob &job = jobs[i];
                const Ddg &g = suite[std::size_t(job.loop)].graph;
                const LoopBounds b = bounds(g, m);

                arena->reset();
                EvalContext ctx;
                const SchedulerKind kind = job.options.scheduler;
                ctx.scheduler =
                    kind == SchedulerKind::Ims ? ims.get() : hrms.get();
                ctx.imsFallback = ims.get();
                ctx.knownMii = b.mii;
                ctx.memo = memoizeSchedules_ ? &scheduleMemo_ : nullptr;
                ctx.arena = arena.get();

                results[i] = job.ideal
                                 ? pipelineIdeal(g, m, kind, &ctx)
                                 : pipelineLoop(g, m, job.strategy,
                                                job.options, &ctx);
                if (verify) {
                    const VerifyReport report =
                        verifyResult(g, m, results[i]);
                    if (!report.ok()) {
                        SWP_FATAL("job ", i, " (loop '", g.name(),
                                  "'): illegal pipeline result:\n",
                                  report.describe());
                    }
                }
                if (certify) {
                    // Certify the graph the schedule refers to (the
                    // spill-transformed one for spilled results), at
                    // the achieved II, then validate the bundle with
                    // the independent checker and cross-check it
                    // against the achieved II/register count.
                    const Ddg &rg = results[i].graph();
                    const Certificate cert =
                        certifyLoop(rg, m, results[i].sched.ii());
                    const CertReport check = checkCertificate(rg, m, cert);
                    if (!check.ok()) {
                        SWP_FATAL("job ", i, " (loop '", g.name(),
                                  "'): optimality certificate rejected "
                                  "by its own checker:\n",
                                  check.describe());
                    }
                    const CertReport contra =
                        checkCertificateAgainstResult(cert, results[i]);
                    if (!contra.ok()) {
                        SWP_FATAL("job ", i, " (loop '", g.name(),
                                  "'): certificate contradicts the "
                                  "achieved result:\n",
                                  contra.describe());
                    }
                    if (certOut) {
                        (*certOut)[i] =
                            summarizeCertificate(cert, results[i]);
                    }
                }
            };
        },
        chunk);
    return results;
}

std::vector<double>
simulateWorkerLoads(const std::vector<double> &costs,
                    const std::vector<std::size_t> &order, int workers,
                    std::size_t chunk)
{
    SWP_ASSERT(workers >= 1, "simulateWorkerLoads needs >= 1 worker");
    SWP_ASSERT(chunk >= 1, "simulateWorkerLoads needs chunk >= 1");
    std::vector<double> load(std::size_t(workers), 0.0);
    // Min-heap of (finish time, worker): the earliest-free worker
    // claims the next chunk, exactly like the pool's shared counter.
    using Slot = std::pair<double, int>;
    std::priority_queue<Slot, std::vector<Slot>, std::greater<Slot>> free;
    for (int w = 0; w < workers; ++w)
        free.push({0.0, w});
    for (std::size_t base = 0; base < order.size(); base += chunk) {
        const Slot slot = free.top();
        free.pop();
        double sum = 0;
        const std::size_t end = std::min(base + chunk, order.size());
        for (std::size_t k = base; k < end; ++k)
            sum += costs[order[k]];
        load[std::size_t(slot.second)] += sum;
        free.push({slot.first + sum, slot.second});
    }
    return load;
}

std::vector<double>
simulateWorkerLoadsStealing(const std::vector<double> &costs,
                            const std::vector<std::size_t> &order,
                            int workers, std::size_t chunk)
{
    SWP_ASSERT(workers >= 1,
               "simulateWorkerLoadsStealing needs >= 1 worker");
    SWP_ASSERT(chunk >= 1,
               "simulateWorkerLoadsStealing needs chunk >= 1");
    const std::size_t w = std::size_t(workers);

    // Seed exactly like dispatch(): round-robin chunk ranges, fronts
    // heaviest (plan order), backs the light tail.
    using Range = std::pair<std::size_t, std::size_t>;
    std::vector<std::deque<Range>> queues(w);
    {
        std::size_t q = 0;
        for (std::size_t base = 0; base < order.size(); base += chunk) {
            queues[q].push_back(
                {base, std::min(base + chunk, order.size())});
            q = (q + 1) % w;
        }
    }

    std::vector<double> load(w, 0.0);
    // Event model: the earliest-free worker claims next (ties broken by
    // worker index, like the priority queue in the static model); a
    // worker that finds every deque empty retires.
    using Slot = std::pair<double, int>;
    std::priority_queue<Slot, std::vector<Slot>, std::greater<Slot>> free;
    for (int i = 0; i < workers; ++i)
        free.push({0.0, i});
    while (!free.empty()) {
        const Slot slot = free.top();
        free.pop();
        const std::size_t self = std::size_t(slot.second);
        Range r{0, 0};
        bool ok = false;
        if (!queues[self].empty()) {
            r = queues[self].front();
            queues[self].pop_front();
            ok = true;
        }
        for (std::size_t k = 1; !ok && k < w; ++k) {
            std::deque<Range> &victim = queues[(self + k) % w];
            if (!victim.empty()) {
                r = victim.back();
                victim.pop_back();
                ok = true;
            }
        }
        if (!ok)
            continue; // Retire: chunks are never re-inserted.
        double sum = 0;
        for (std::size_t k = r.first; k < r.second; ++k)
            sum += costs[order[k]];
        load[self] += sum;
        free.push({slot.first + sum, slot.second});
    }
    return load;
}

} // namespace swp
