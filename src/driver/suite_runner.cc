#include "driver/suite_runner.hh"

#include "sched/fingerprint.hh"
#include "sched/mii.hh"
#include "support/diag.hh"

namespace swp
{

namespace
{

/**
 * Depth of pool-task bodies running on this thread. A dispatch issued
 * from inside a task (nested parallelFor from a job) must run inline:
 * the pool is busy with the batch that issued it, and waiting for the
 * dispatch slot would deadlock.
 */
thread_local int tlsInTask = 0;

struct TaskScope
{
    TaskScope() { ++tlsInTask; }
    ~TaskScope() { --tlsInTask; }
};

} // namespace

SuiteRunner::SuiteRunner(int threads, bool memoizeSchedules)
    : memoizeSchedules_(memoizeSchedules)
{
    if (threads <= 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        threads_ = hw ? int(hw) : 1;
    } else {
        threads_ = threads;
    }
}

SuiteRunner::~SuiteRunner()
{
    {
        std::lock_guard<std::mutex> lock(poolMutex_);
        shutdown_ = true;
    }
    workCv_.notify_all();
    for (std::thread &t : pool_)
        t.join();
}

SuiteRunner::LoopBounds
SuiteRunner::bounds(const Ddg &g, const Machine &m)
{
    const auto key =
        std::make_pair(graphFingerprint(g), machineFingerprint(m));
    const CachedBounds cached = boundsCache_.getOrCompute(
        key,
        [&]() {
            CachedBounds c;
            c.b.mii = mii(g, m);
            c.b.recMii = recMii(g, m);
            if (kVerifyMemoKeys) {
                c.graph = g;
                c.machine = m;
            }
            return c;
        },
        [&](const CachedBounds &hit) {
            if (!kVerifyMemoKeys)
                return;
            SWP_ASSERT(hit.graph &&
                           graphsFingerprintEquivalent(g, *hit.graph),
                       "bounds memo fingerprint collision: graph '",
                       g.name(),
                       "' hit an entry built from a different graph");
            SWP_ASSERT(hit.machine &&
                           machinesFingerprintEquivalent(m, *hit.machine),
                       "bounds memo fingerprint collision: machine '",
                       m.name(),
                       "' hit an entry built from a different machine");
        });
    return cached.b;
}

void
SuiteRunner::ensurePool() const
{
    std::lock_guard<std::mutex> lock(poolMutex_);
    if (!pool_.empty())
        return;
    const int spawn = threads_ - 1;
    pool_.reserve(std::size_t(spawn));
    for (int t = 0; t < spawn; ++t)
        pool_.emplace_back([this] { poolMain(); });
}

/**
 * Body run by every thread participating in a task (pool threads and
 * the dispatching caller alike): build per-thread state, then consume
 * indices from the shared counter until they run out or a job fails.
 */
void
SuiteRunner::runTask(PoolTask &t)
{
    // Claim an index before building any per-thread state. This bounds
    // the participants to `count` (a pool thread waking for a batch
    // smaller than the pool backs out after one fetch_add instead of
    // constructing scheduler objects it will never use), and it
    // protects makeWorker's lifetime: a thread that cannot claim an
    // index never touches makeWorker — whose captures are locals of the
    // dispatching caller, which only returns once it has observed
    // next >= count and activeWorkers_ == 0.
    if (t.abort.load(std::memory_order_relaxed))
        return;
    std::size_t i = t.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= t.count)
        return;
    const TaskScope scope;
    // makeWorker() runs on the worker thread too (it allocates
    // per-thread state); a throw there must reach the caller, not
    // std::terminate.
    Worker fn;
    try {
        fn = (*t.makeWorker)();
    } catch (...) {
        t.fail();
        return;
    }
    for (;;) {
        if (t.abort.load(std::memory_order_relaxed))
            return;
        try {
            fn(i);
        } catch (...) {
            t.fail();
        }
        i = t.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= t.count)
            return;
    }
}

void
SuiteRunner::poolMain() const
{
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(poolMutex_);
    for (;;) {
        workCv_.wait(lock, [&] { return shutdown_ || taskGen_ != seen; });
        if (shutdown_)
            return;
        seen = taskGen_;
        const std::shared_ptr<PoolTask> t = task_;
        if (!t)
            continue;  // Task already retired; wait for the next one.
        ++activeWorkers_;
        lock.unlock();
        runTask(*t);
        lock.lock();
        if (--activeWorkers_ == 0)
            idleCv_.notify_all();
    }
}

void
SuiteRunner::dispatch(std::size_t count,
                      const std::function<Worker()> &makeWorker) const
{
    if (count == 0)
        return;

    // Serial path: a single thread, a single job, or a dispatch nested
    // inside a pool task (which would deadlock waiting for the slot its
    // own batch holds) runs inline on the calling thread — same
    // results, no parallel speedup.
    if (threads_ == 1 || count == 1 || tlsInTask > 0) {
        const Worker fn = makeWorker();
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    // The pool runs one batch at a time; concurrent dispatches from
    // other threads take turns.
    const std::lock_guard<std::mutex> slot(dispatchMutex_);
    ensurePool();

    auto task = std::make_shared<PoolTask>();
    task->count = count;
    task->makeWorker = &makeWorker;
    {
        std::lock_guard<std::mutex> lock(poolMutex_);
        task_ = task;
        ++taskGen_;
    }
    workCv_.notify_all();

    runTask(*task);  // The caller is the pool's final worker.

    {
        // activeWorkers_ is incremented under poolMutex_ before a pool
        // thread enters runTask, so activeWorkers_ == 0 here means no
        // participant can still touch makeWorker: any thread waking
        // later either finds task_ reset, or fails to claim an index
        // (all are claimed by now) and backs out without calling
        // makeWorker.
        std::unique_lock<std::mutex> lock(poolMutex_);
        idleCv_.wait(lock, [&] { return activeWorkers_ == 0; });
        task_.reset();
    }
    if (task->error)
        std::rethrow_exception(task->error);
}

void
SuiteRunner::parallelFor(std::size_t count,
                         const std::function<void(std::size_t)> &fn) const
{
    dispatch(count, [&fn]() -> Worker { return fn; });
}

std::vector<PipelineResult>
SuiteRunner::run(const std::vector<SuiteLoop> &suite, const Machine &m,
                 const std::vector<BatchJob> &jobs)
{
    for (const BatchJob &job : jobs) {
        SWP_ASSERT(job.loop >= 0 && std::size_t(job.loop) < suite.size(),
                   "batch job references loop ", job.loop,
                   " outside the ", suite.size(), "-loop suite");
    }

    std::vector<PipelineResult> results(jobs.size());
    dispatch(jobs.size(), [&]() -> Worker {
        // Per-worker scheduler objects, reused across every job this
        // worker executes (shared_ptr so the returned closure owns
        // them).
        std::shared_ptr<ModuloScheduler> hrms =
            makeScheduler(SchedulerKind::Hrms);
        std::shared_ptr<ModuloScheduler> ims =
            makeScheduler(SchedulerKind::Ims);
        return [this, &suite, &m, &jobs, &results, hrms,
                ims](std::size_t i) {
            const BatchJob &job = jobs[i];
            const Ddg &g = suite[std::size_t(job.loop)].graph;
            const LoopBounds b = bounds(g, m);

            EvalContext ctx;
            const SchedulerKind kind = job.options.scheduler;
            ctx.scheduler =
                kind == SchedulerKind::Ims ? ims.get() : hrms.get();
            ctx.imsFallback = ims.get();
            ctx.knownMii = b.mii;
            ctx.memo = memoizeSchedules_ ? &scheduleMemo_ : nullptr;

            results[i] =
                job.ideal
                    ? pipelineIdeal(g, m, kind, &ctx)
                    : pipelineLoop(g, m, job.strategy, job.options, &ctx);
        };
    });
    return results;
}

} // namespace swp
