#include "driver/suite_runner.hh"

#include <atomic>
#include <exception>
#include <memory>
#include <thread>

#include "sched/mii.hh"
#include "support/diag.hh"

namespace swp
{

namespace
{

/** FNV-1a over the MII-relevant structure of a graph. */
class Fingerprint
{
  public:
    void
    mix(std::uint64_t v)
    {
        hash_ ^= v;
        hash_ *= 0x100000001b3ull;
    }

    void
    mix(const std::string &s)
    {
        mix(std::uint64_t(s.size()));
        for (const char c : s)
            mix(std::uint64_t(static_cast<unsigned char>(c)));
    }

    std::uint64_t value() const { return hash_; }

  private:
    std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

/**
 * Machine identity for the bounds memo. Names are not unique (two
 * Machines can share one), so hash the resource description the MII
 * computation actually depends on.
 */
std::uint64_t
machineFingerprint(const Machine &m)
{
    Fingerprint fp;
    fp.mix(m.name());
    fp.mix(std::uint64_t(m.isUniversal()));
    for (int fu = 0; fu < numFuClasses; ++fu) {
        fp.mix(std::uint64_t(m.unitsFor(FuClass(fu))));
        fp.mix(std::uint64_t(m.pipelinedClass(FuClass(fu))));
    }
    for (int op = 0; op < numOpcodes; ++op)
        fp.mix(std::uint64_t(m.latency(Opcode(op))));
    return fp.value();
}

std::uint64_t
graphFingerprint(const Ddg &g)
{
    Fingerprint fp;
    fp.mix(g.name());
    fp.mix(std::uint64_t(g.numNodes()));
    fp.mix(std::uint64_t(g.numEdges()));
    fp.mix(std::uint64_t(g.numInvariants()));
    for (NodeId n = 0; n < g.numNodes(); ++n)
        fp.mix(std::uint64_t(int(g.node(n).op)));
    for (EdgeId e = 0; e < g.numEdges(); ++e) {
        const Edge &edge = g.edge(e);
        fp.mix(std::uint64_t(edge.alive));
        if (!edge.alive)
            continue;
        fp.mix(std::uint64_t(edge.src));
        fp.mix(std::uint64_t(edge.dst));
        fp.mix(std::uint64_t(int(edge.kind)));
        fp.mix(std::uint64_t(edge.distance));
        fp.mix(std::uint64_t(edge.nonSpillable));
        fp.mix(std::uint64_t(edge.fusedDelay));
    }
    return fp.value();
}

} // namespace

SuiteRunner::SuiteRunner(int threads)
{
    if (threads <= 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        threads_ = hw ? int(hw) : 1;
    } else {
        threads_ = threads;
    }
}

SuiteRunner::LoopBounds
SuiteRunner::bounds(const Ddg &g, const Machine &m)
{
    const auto key =
        std::make_pair(graphFingerprint(g), machineFingerprint(m));
    {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        const auto it = boundsCache_.find(key);
        if (it != boundsCache_.end())
            return it->second;
    }
    LoopBounds b;
    b.mii = mii(g, m);
    b.recMii = recMii(g, m);
    std::lock_guard<std::mutex> lock(cacheMutex_);
    return boundsCache_.emplace(key, b).first->second;
}

void
SuiteRunner::dispatch(std::size_t count,
                      const std::function<Worker()> &makeWorker) const
{
    if (count == 0)
        return;
    const std::size_t workers =
        std::min<std::size_t>(std::size_t(threads_), count);
    if (workers <= 1) {
        const Worker fn = makeWorker();
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::atomic<bool> abort{false};
    std::exception_ptr error;
    std::mutex errorMutex;

    const auto fail = [&]() {
        std::lock_guard<std::mutex> lock(errorMutex);
        if (!error)
            error = std::current_exception();
        abort.store(true, std::memory_order_relaxed);
    };
    const auto body = [&]() {
        // makeWorker() runs on the worker thread too (it allocates
        // per-thread state); a throw there must reach the caller, not
        // std::terminate.
        Worker fn;
        try {
            fn = makeWorker();
        } catch (...) {
            fail();
            return;
        }
        for (;;) {
            if (abort.load(std::memory_order_relaxed))
                return;
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count)
                return;
            try {
                fn(i);
            } catch (...) {
                fail();
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w)
        pool.emplace_back(body);
    for (std::thread &t : pool)
        t.join();
    if (error)
        std::rethrow_exception(error);
}

void
SuiteRunner::parallelFor(std::size_t count,
                         const std::function<void(std::size_t)> &fn) const
{
    dispatch(count, [&fn]() -> Worker { return fn; });
}

std::vector<PipelineResult>
SuiteRunner::run(const std::vector<SuiteLoop> &suite, const Machine &m,
                 const std::vector<BatchJob> &jobs)
{
    for (const BatchJob &job : jobs) {
        SWP_ASSERT(job.loop >= 0 && std::size_t(job.loop) < suite.size(),
                   "batch job references loop ", job.loop,
                   " outside the ", suite.size(), "-loop suite");
    }

    std::vector<PipelineResult> results(jobs.size());
    dispatch(jobs.size(), [&]() -> Worker {
        // Per-worker scheduler objects, reused across every job this
        // worker executes (shared_ptr so the returned closure owns
        // them).
        std::shared_ptr<ModuloScheduler> hrms =
            makeScheduler(SchedulerKind::Hrms);
        std::shared_ptr<ModuloScheduler> ims =
            makeScheduler(SchedulerKind::Ims);
        return [this, &suite, &m, &jobs, &results, hrms,
                ims](std::size_t i) {
            const BatchJob &job = jobs[i];
            const Ddg &g = suite[std::size_t(job.loop)].graph;
            const LoopBounds b = bounds(g, m);

            EvalContext ctx;
            const SchedulerKind kind = job.options.scheduler;
            ctx.scheduler =
                kind == SchedulerKind::Ims ? ims.get() : hrms.get();
            ctx.imsFallback = ims.get();
            ctx.knownMii = b.mii;

            results[i] =
                job.ideal
                    ? pipelineIdeal(g, m, kind, &ctx)
                    : pipelineLoop(g, m, job.strategy, job.options, &ctx);
        };
    });
    return results;
}

} // namespace swp
