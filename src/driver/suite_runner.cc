#include "driver/suite_runner.hh"

#include <algorithm>
#include <queue>

#include "sched/fingerprint.hh"
#include "sched/ii_search.hh"
#include "sched/mii.hh"
#include "support/diag.hh"
#include "verify/legality.hh"

namespace swp
{

const char *
chunkPolicyName(ChunkPolicy policy)
{
    switch (policy) {
      case ChunkPolicy::Auto: return "auto";
      case ChunkPolicy::Fixed: return "fixed";
    }
    SWP_PANIC("unknown chunk policy ", int(policy));
}

bool
parseChunkPolicy(const std::string &text, ChunkPolicy &out)
{
    if (text == "auto") {
        out = ChunkPolicy::Auto;
        return true;
    }
    if (text == "fixed") {
        out = ChunkPolicy::Fixed;
        return true;
    }
    return false;
}

namespace
{

/**
 * Depth of pool-task bodies running on this thread. A dispatch issued
 * from inside a task (nested parallelFor from a job) must run inline:
 * the pool is busy with the batch that issued it, and waiting for the
 * dispatch slot would deadlock.
 */
thread_local int tlsInTask = 0;

struct TaskScope
{
    TaskScope() { ++tlsInTask; }
    ~TaskScope() { --tlsInTask; }
};

} // namespace

SuiteRunner::SuiteRunner(int threads, bool memoizeSchedules,
                         std::size_t memoCap)
    : memoizeSchedules_(memoizeSchedules),
      boundsCache_(memoCap),
      scheduleMemo_(kVerifyMemoKeys, memoCap)
{
    if (threads <= 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        threads_ = hw ? int(hw) : 1;
    } else {
        threads_ = threads;
    }
}

SuiteRunner::~SuiteRunner()
{
    {
        std::lock_guard<std::mutex> lock(poolMutex_);
        shutdown_ = true;
    }
    workCv_.notify_all();
    for (std::thread &t : pool_)
        t.join();
}

SuiteRunner::LoopBounds
SuiteRunner::bounds(const Ddg &g, const Machine &m)
{
    const auto key =
        std::make_pair(graphFingerprint(g), machineFingerprint(m));
    const CachedBounds cached = boundsCache_.getOrCompute(
        key,
        [&]() {
            CachedBounds c;
            c.b.mii = mii(g, m);
            c.b.recMii = recMii(g, m);
            if (kVerifyMemoKeys) {
                c.graph = g;
                c.machine = m;
            }
            return c;
        },
        [&](const CachedBounds &hit) {
            if (!kVerifyMemoKeys)
                return;
            SWP_ASSERT(hit.graph &&
                           graphsFingerprintEquivalent(g, *hit.graph),
                       "bounds memo fingerprint collision: graph '",
                       g.name(),
                       "' hit an entry built from a different graph");
            SWP_ASSERT(hit.machine &&
                           machinesFingerprintEquivalent(m, *hit.machine),
                       "bounds memo fingerprint collision: machine '",
                       m.name(),
                       "' hit an entry built from a different machine");
        });
    return cached.b;
}

void
SuiteRunner::ensurePool() const
{
    std::lock_guard<std::mutex> lock(poolMutex_);
    if (!pool_.empty())
        return;
    const int spawn = threads_ - 1;
    pool_.reserve(std::size_t(spawn));
    for (int t = 0; t < spawn; ++t)
        pool_.emplace_back([this] { poolMain(); });
}

/**
 * Body run by every thread participating in a task (pool threads and
 * the dispatching caller alike): build per-thread state, then consume
 * chunks of indices from the shared counter until they run out or a
 * job fails.
 */
void
SuiteRunner::runTask(PoolTask &t)
{
    // Claim a chunk before building any per-thread state. This bounds
    // the participants to the chunk count (a pool thread waking for a
    // batch smaller than the pool backs out after one fetch_add instead
    // of constructing scheduler objects it will never use), and it
    // protects makeWorker's lifetime: a thread that cannot claim a
    // chunk never touches makeWorker — whose captures are locals of the
    // dispatching caller, which only returns once it has observed
    // next >= count and activeWorkers_ == 0.
    if (t.abort.load(std::memory_order_relaxed))
        return;
    const std::size_t chunk = t.chunk;
    std::size_t base = t.next.fetch_add(chunk, std::memory_order_relaxed);
    if (base >= t.count)
        return;
    const TaskScope scope;
    // makeWorker() runs on the worker thread too (it allocates
    // per-thread state); a throw there must reach the caller, not
    // std::terminate.
    Worker fn;
    try {
        fn = (*t.makeWorker)();
    } catch (...) {
        t.fail();
        return;
    }
    for (;;) {
        const std::size_t end = std::min(base + chunk, t.count);
        for (std::size_t i = base; i < end; ++i) {
            if (t.abort.load(std::memory_order_relaxed))
                return;
            try {
                fn(i);
            } catch (...) {
                t.fail();
            }
        }
        base = t.next.fetch_add(chunk, std::memory_order_relaxed);
        if (base >= t.count)
            return;
    }
}

void
SuiteRunner::poolMain() const
{
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(poolMutex_);
    for (;;) {
        workCv_.wait(lock, [&] { return shutdown_ || taskGen_ != seen; });
        if (shutdown_)
            return;
        seen = taskGen_;
        const std::shared_ptr<PoolTask> t = task_;
        if (!t)
            continue;  // Task already retired; wait for the next one.
        ++activeWorkers_;
        lock.unlock();
        runTask(*t);
        lock.lock();
        if (--activeWorkers_ == 0)
            idleCv_.notify_all();
    }
}

void
SuiteRunner::dispatch(std::size_t count,
                      const std::function<Worker()> &makeWorker,
                      std::size_t chunk) const
{
    if (count == 0)
        return;

    // Serial path: a single thread, a single job, or a dispatch nested
    // inside a pool task (which would deadlock waiting for the slot its
    // own batch holds) runs inline on the calling thread — same
    // results, no parallel speedup.
    if (threads_ == 1 || count == 1 || tlsInTask > 0) {
        const Worker fn = makeWorker();
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    // The pool runs one batch at a time; concurrent dispatches from
    // other threads take turns.
    const std::lock_guard<std::mutex> slot(dispatchMutex_);
    ensurePool();

    auto task = std::make_shared<PoolTask>();
    task->count = count;
    task->chunk = chunk ? chunk : 1;
    task->makeWorker = &makeWorker;
    {
        std::lock_guard<std::mutex> lock(poolMutex_);
        task_ = task;
        ++taskGen_;
    }
    workCv_.notify_all();

    runTask(*task);  // The caller is the pool's final worker.

    {
        // activeWorkers_ is incremented under poolMutex_ before a pool
        // thread enters runTask, so activeWorkers_ == 0 here means no
        // participant can still touch makeWorker: any thread waking
        // later either finds task_ reset, or fails to claim an index
        // (all are claimed by now) and backs out without calling
        // makeWorker.
        std::unique_lock<std::mutex> lock(poolMutex_);
        idleCv_.wait(lock, [&] { return activeWorkers_ == 0; });
        task_.reset();
    }
    if (task->error)
        std::rethrow_exception(task->error);
}

void
SuiteRunner::parallelFor(std::size_t count,
                         const std::function<void(std::size_t)> &fn) const
{
    dispatch(count, [&fn]() -> Worker { return fn; });
}

double
SuiteRunner::jobCost(const std::vector<SuiteLoop> &suite,
                     const Machine &m, const BatchJob &job)
{
    const Ddg &g = suite[std::size_t(job.loop)].graph;
    const int span =
        std::max(1, defaultMaxIi(g, m) - bounds(g, m).mii + 1);
    return double(g.numNodes()) * double(span);
}

std::vector<std::size_t>
SuiteRunner::planJobOrder(const std::vector<SuiteLoop> &suite,
                          const Machine &m,
                          const std::vector<BatchJob> &jobs,
                          const RunOptions &opts)
{
    SWP_ASSERT(opts.shard.count >= 1 && opts.shard.index >= 0 &&
                   opts.shard.index < opts.shard.count,
               "malformed shard spec ", opts.shard.index, "/",
               opts.shard.count);

    std::vector<std::size_t> order;
    order.reserve(jobs.size() / std::size_t(opts.shard.count) + 1);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (opts.shard.owns(i))
            order.push_back(i);
    }
    if (opts.chunk == ChunkPolicy::Auto) {
        // The ranking needs every owned loop's MII; warm the bounds
        // memo across the pool first so a cold large suite does not
        // serialize that phase on this thread (the memo is
        // single-flight and deterministic, so this only moves work).
        std::vector<std::size_t> distinctLoops;
        {
            std::vector<bool> seen(suite.size(), false);
            for (const std::size_t i : order) {
                const std::size_t loop = std::size_t(jobs[i].loop);
                if (!seen[loop]) {
                    seen[loop] = true;
                    distinctLoops.push_back(loop);
                }
            }
        }
        parallelFor(distinctLoops.size(), [&](std::size_t k) {
            (void)bounds(suite[distinctLoops[k]].graph, m);
        });

        // Heaviest-first. The costs are deterministic, and the sort is
        // stable with index-order tie-breaking, so the plan — like the
        // results — is identical at any thread count.
        std::vector<double> cost(jobs.size(), 0.0);
        for (const std::size_t i : order)
            cost[i] = jobCost(suite, m, jobs[i]);
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                             return cost[a] > cost[b];
                         });
    }
    return order;
}

std::vector<PipelineResult>
SuiteRunner::run(const std::vector<SuiteLoop> &suite, const Machine &m,
                 const std::vector<BatchJob> &jobs,
                 const RunOptions &opts)
{
    for (const BatchJob &job : jobs) {
        SWP_ASSERT(job.loop >= 0 && std::size_t(job.loop) < suite.size(),
                   "batch job references loop ", job.loop,
                   " outside the ", suite.size(), "-loop suite");
    }

    const std::vector<std::size_t> order =
        planJobOrder(suite, m, jobs, opts);

    // Heaviest-first ordering balances by starting long jobs early, so
    // it wants the finest claiming grain; fixed-policy batches trade
    // balance for fewer claims on the shared counter.
    const std::size_t chunk =
        opts.chunk == ChunkPolicy::Auto
            ? 1
            : std::max<std::size_t>(
                  1, order.size() / (std::size_t(threads_) * 8));

    const bool verify = opts.verify || kAlwaysVerifyResults;
    const bool certify = opts.certify || opts.certificates != nullptr;
    std::vector<CertSummary> *certOut = opts.certificates;
    if (certOut)
        certOut->assign(jobs.size(), CertSummary{});

    std::vector<PipelineResult> results(jobs.size());
    dispatch(
        order.size(),
        [&]() -> Worker {
            // Per-worker scheduler objects, reused across every job
            // this worker executes (shared_ptr so the returned closure
            // owns them).
            std::shared_ptr<ModuloScheduler> hrms =
                makeScheduler(SchedulerKind::Hrms);
            std::shared_ptr<ModuloScheduler> ims =
                makeScheduler(SchedulerKind::Ims);
            return [this, &suite, &m, &jobs, &results, &order, verify,
                    certify, certOut, hrms, ims](std::size_t k) {
                const std::size_t i = order[k];
                const BatchJob &job = jobs[i];
                const Ddg &g = suite[std::size_t(job.loop)].graph;
                const LoopBounds b = bounds(g, m);

                EvalContext ctx;
                const SchedulerKind kind = job.options.scheduler;
                ctx.scheduler =
                    kind == SchedulerKind::Ims ? ims.get() : hrms.get();
                ctx.imsFallback = ims.get();
                ctx.knownMii = b.mii;
                ctx.memo = memoizeSchedules_ ? &scheduleMemo_ : nullptr;

                results[i] = job.ideal
                                 ? pipelineIdeal(g, m, kind, &ctx)
                                 : pipelineLoop(g, m, job.strategy,
                                                job.options, &ctx);
                if (verify) {
                    const VerifyReport report =
                        verifyResult(g, m, results[i]);
                    if (!report.ok()) {
                        SWP_FATAL("job ", i, " (loop '", g.name(),
                                  "'): illegal pipeline result:\n",
                                  report.describe());
                    }
                }
                if (certify) {
                    // Certify the graph the schedule refers to (the
                    // spill-transformed one for spilled results), at
                    // the achieved II, then validate the bundle with
                    // the independent checker and cross-check it
                    // against the achieved II/register count.
                    const Ddg &rg = results[i].graph();
                    const Certificate cert =
                        certifyLoop(rg, m, results[i].sched.ii());
                    const CertReport check = checkCertificate(rg, m, cert);
                    if (!check.ok()) {
                        SWP_FATAL("job ", i, " (loop '", g.name(),
                                  "'): optimality certificate rejected "
                                  "by its own checker:\n",
                                  check.describe());
                    }
                    const CertReport contra =
                        checkCertificateAgainstResult(cert, results[i]);
                    if (!contra.ok()) {
                        SWP_FATAL("job ", i, " (loop '", g.name(),
                                  "'): certificate contradicts the "
                                  "achieved result:\n",
                                  contra.describe());
                    }
                    if (certOut) {
                        (*certOut)[i] =
                            summarizeCertificate(cert, results[i]);
                    }
                }
            };
        },
        chunk);
    return results;
}

std::vector<double>
simulateWorkerLoads(const std::vector<double> &costs,
                    const std::vector<std::size_t> &order, int workers,
                    std::size_t chunk)
{
    SWP_ASSERT(workers >= 1, "simulateWorkerLoads needs >= 1 worker");
    SWP_ASSERT(chunk >= 1, "simulateWorkerLoads needs chunk >= 1");
    std::vector<double> load(std::size_t(workers), 0.0);
    // Min-heap of (finish time, worker): the earliest-free worker
    // claims the next chunk, exactly like the pool's shared counter.
    using Slot = std::pair<double, int>;
    std::priority_queue<Slot, std::vector<Slot>, std::greater<Slot>> free;
    for (int w = 0; w < workers; ++w)
        free.push({0.0, w});
    for (std::size_t base = 0; base < order.size(); base += chunk) {
        const Slot slot = free.top();
        free.pop();
        double sum = 0;
        const std::size_t end = std::min(base + chunk, order.size());
        for (std::size_t k = base; k < end; ++k)
            sum += costs[order[k]];
        load[std::size_t(slot.second)] += sum;
        free.push({slot.first + sum, slot.second});
    }
    return load;
}

} // namespace swp
