/**
 * @file
 * Multi-threaded batch evaluation driver.
 *
 * The paper's experiments are grids: every loop of the suite x every
 * strategy x every register-file size. SuiteRunner evaluates such a
 * batch of (loop, strategy, options) jobs across a pool of worker
 * threads while keeping the output *deterministic*: results[i] always
 * corresponds to jobs[i], every job is evaluated independently with no
 * shared mutable state, and all reductions are left to the caller (who
 * accumulates in index order), so the same batch produces bit-identical
 * results at any thread count.
 *
 * Per-call costs the serial harnesses used to pay on every job are
 * amortized here:
 *  - worker threads are spawned once and persist across batches (the
 *    bench harnesses dispatch the same grid dozens of times);
 *  - scheduler objects are constructed once per worker thread and
 *    reused across all its jobs;
 *  - the MII/RecMII of each input loop is memoized per (graph content,
 *    machine) across batches;
 *  - every (graph, machine, II, scheduler) probe outcome — including
 *    "no schedule at this II" — is memoized in a ScheduleMemo shared
 *    by all workers, so best-of-all's binary search and the grid's
 *    repeated cells never schedule the same probe twice.
 * All memos are single-flight (two workers never compute one key) and
 * none of them changes results: output is byte-identical with the
 * memos on or off, at any memo size cap.
 *
 * Beyond the thread pool, a batch can be split *across processes*: a
 * RunOptions::shard spec assigns job index j to shard j mod N, and a
 * sharded run() evaluates only its own jobs (the others' result slots
 * are left default-constructed). Because every job is a pure function
 * of its inputs, the union of N sharded runs equals the unsharded run
 * slot for slot — src/driver/shard_merge provides the file format and
 * validating merge the CLI builds on.
 *
 * Within a run, jobs are claimed in a work-size-aware order: under the
 * default ChunkPolicy::Auto the grid is walked heaviest-first, ranked
 * by a cheap cost estimate (node count x candidate-II span), so a
 * heavy loop starts early instead of serializing one worker at the
 * batch's tail. Claiming is work-stealing: the planned order is dealt
 * round-robin into per-worker chunk deques, each worker pops its own
 * deque from the front (heaviest first) and an idle worker steals from
 * the *back* of a victim's deque (the lightest remaining work, the
 * cheapest to migrate) — so no claim ever touches a shared counter and
 * the tail of a batch self-balances. Ordering, chunking and stealing
 * only change *when* a job runs, never its result or its slot, so
 * output stays byte-identical at any thread count, shard spec, and
 * chunk policy.
 */

#ifndef SWP_DRIVER_SUITE_RUNNER_HH
#define SWP_DRIVER_SUITE_RUNNER_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "driver/shard_merge.hh"
#include "machine/machine.hh"
#include "pipeliner/pipeliner.hh"
#include "sched/sched_memo.hh"
#include "support/singleflight.hh"
#include "verify/certify.hh"
#include "workload/suitegen.hh"

namespace swp
{

/** One evaluation job of an experiment grid. */
struct BatchJob
{
    /** Index into the suite passed to SuiteRunner::run. */
    int loop = 0;

    /** Unlimited registers (pipelineIdeal); `strategy` is ignored. */
    bool ideal = false;

    Strategy strategy = Strategy::Spill;
    PipelinerOptions options;
};

/** How a batch's jobs are ordered and claimed by the workers. */
enum class ChunkPolicy
{
    /**
     * Work-size-aware: jobs are walked heaviest-first (by the cost
     * estimate) and claimed one at a time, so the longest jobs start
     * earliest and the short tail balances the workers.
     */
    Auto,

    /**
     * Grid order, claimed in fixed contiguous chunks — fewer claims,
     * no cost ranking. The historical behavior with chunk size 1.
     */
    Fixed,
};

/** "auto" / "fixed". */
const char *chunkPolicyName(ChunkPolicy policy);

/** Parse "auto" or "fixed"; false (out untouched) otherwise. */
bool parseChunkPolicy(const std::string &text, ChunkPolicy &out);

/**
 * Parse a --threads value: "auto" resolves to all hardware threads
 * (SuiteRunner's threads == 0 convention) and an integer in [0, 4096]
 * is taken literally. False (out untouched) otherwise. Shared by
 * swpipe_cli and every bench harness so "auto" means the same thing
 * everywhere.
 */
bool parseThreadsArg(const std::string &text, int &out);

/**
 * Per-worker wall-time breakdown, maintained by the pool from
 * monotonic-clock deltas. scheduleSeconds is time inside jobs minus
 * the memo waits that happened during them (singleFlightWaitSeconds),
 * so the three buckets answer "is the pool scheduling, waiting on the
 * memos, or hunting for work?". Observability only (stderr/JSON): no
 * result bytes ever depend on these numbers.
 */
struct WorkerPerf
{
    double scheduleSeconds = 0;  ///< Executing jobs, memo waits excluded.
    double memoWaitSeconds = 0;  ///< Blocked on another worker's compute.
    double stealSeconds = 0;     ///< Claiming work (own pops and steals).
    long jobs = 0;               ///< Jobs executed.
    long claims = 0;             ///< Chunks claimed (own + stolen).
    long steals = 0;             ///< Chunks taken from a victim's deque.
    std::size_t arenaHighWaterBytes = 0;  ///< Max live arena bytes.
};

/** Per-run evaluation options; the defaults reproduce run(3 args). */
struct RunOptions
{
    /** Evaluate only this shard's jobs (j mod count == index). */
    ShardSpec shard;

    ChunkPolicy chunk = ChunkPolicy::Auto;

    /**
     * Check every result with the independent legality verifier
     * (verify/legality) as the job completes; any violation makes run()
     * throw a FatalError whose message names the violated
     * edge/slot/range. Forced on in Debug and sanitizer builds
     * (kAlwaysVerifyResults), so no scheduler bug can hide behind a
     * fast Release-only reproduction. Verification reads the finished
     * result only — the evaluated schedules and the emitted bytes are
     * identical with it on or off.
     */
    bool verify = false;

    /**
     * Generate the optimality-certificate bundle (verify/certify) for
     * every evaluated result, validate it with the independent
     * certificate checker, and cross-check it against the achieved
     * II/register count; any rejected certificate or contradiction
     * makes run() throw a FatalError. Like verify, certification reads
     * finished results only — it never touches stdout bytes.
     */
    bool certify = false;

    /**
     * When set (implies certify), resized to jobs.size() and slot i
     * filled with job i's certificate summary; sharded-out slots stay
     * invalid. Summaries are a pure function of the job, so the filled
     * slots are identical at any thread count, shard spec, and chunk
     * policy.
     */
    std::vector<CertSummary> *certificates = nullptr;
};

/** Deterministic worker-pool evaluator for batches of pipeline jobs. */
class SuiteRunner
{
  public:
    /**
     * threads == 0 selects the hardware concurrency; 1 runs inline.
     * memoizeSchedules toggles the schedule memo (results are identical
     * either way; off re-schedules every probe — useful for measuring
     * the memo's effect and for CI's byte-identical diff).
     * memoCap bounds *both* process-lifetime memos — the schedule memo
     * and the MII/RecMII bounds memo — with LRU eviction (0 =
     * unbounded), so a service embedding the driver against an
     * unbounded stream of distinct loops holds no unbounded map.
     * Results are byte-identical at any cap; an evicted probe or bound
     * is simply recomputed on its next request.
     */
    explicit SuiteRunner(int threads = 1, bool memoizeSchedules = true,
                         std::size_t memoCap = 0);
    ~SuiteRunner();

    SuiteRunner(const SuiteRunner &) = delete;
    SuiteRunner &operator=(const SuiteRunner &) = delete;

    int threads() const { return threads_; }
    bool memoizesSchedules() const { return memoizeSchedules_; }

    /** Memoized lower bounds of one loop under one machine. */
    struct LoopBounds
    {
        int mii = 0;
        int recMii = 0;
    };

    /**
     * MII/RecMII of a loop, memoized per (graph content, machine
     * configuration). Safe to call concurrently; both key halves are
     * structural fingerprints, so rebuilt or short-lived graphs and
     * same-named machines never alias stale entries, and the memo is
     * single-flight: concurrent workers asking for the same key wait
     * for one computation instead of repeating it.
     */
    LoopBounds bounds(const Ddg &g, const Machine &m);

    /** The shared probe memo (for tests and observability). */
    ScheduleMemo &scheduleMemo() { return scheduleMemo_; }

    /** Lock stripes backing the bounds memo. */
    std::size_t boundsStripeCount() const
    {
        return boundsCache_.stripeCount();
    }

    /** Counters of both memos, for tests and tuning. Each memo's
        counters are one consistent cross-stripe snapshot. */
    struct MemoStats
    {
        SingleFlightStats bounds;
        SingleFlightStats schedule;
    };
    MemoStats
    memoStats() const
    {
        return {boundsCache_.stats(), scheduleMemo_.stats()};
    }

    /**
     * Snapshot of the per-worker counters accumulated since
     * construction or the last resetWorkerPerf(); slot w belongs to the
     * w-th participant of each batch (slot 0 includes the dispatching
     * caller and all serial-path work).
     */
    std::vector<WorkerPerf> workerPerf() const;
    void resetWorkerPerf();

    /**
     * Test-only: when seed != 0 every chunk claim spins a small
     * pseudo-random amount first, perturbing the steal interleaving so
     * determinism tests can explore many schedules. Global (affects
     * every runner); reset to 0 after use.
     */
    static void setClaimJitterForTesting(unsigned seed);

    /**
     * Evaluate all jobs. results[i] corresponds to jobs[i]; the result
     * vector is bit-identical at any thread count, shard spec, and
     * chunk policy. Each result's graph() references the suite entry
     * it was built from unless spilling transformed the loop, so the
     * suite must outlive the returned results. Exceptions thrown by a
     * job are rethrown here.
     *
     * With an active opts.shard, only jobs owned by the shard are
     * evaluated; the other slots are left default-constructed (their
     * graph() must not be queried). The evaluated slots are
     * bit-identical to the same slots of an unsharded run.
     */
    std::vector<PipelineResult> run(const std::vector<SuiteLoop> &suite,
                                    const Machine &m,
                                    const std::vector<BatchJob> &jobs,
                                    const RunOptions &opts);

    std::vector<PipelineResult>
    run(const std::vector<SuiteLoop> &suite, const Machine &m,
        const std::vector<BatchJob> &jobs)
    {
        return run(suite, m, jobs, RunOptions{});
    }

    /**
     * Cheap work-size estimate of one job: node count x candidate-II
     * span (MII through the generous default II cap). It deliberately
     * ignores the strategy — every strategy's cost is dominated by how
     * many (II, schedule) probes of how large a graph it may have to
     * run — and it never schedules anything; the MII comes from the
     * bounds memo the jobs need anyway.
     */
    double jobCost(const std::vector<SuiteLoop> &suite, const Machine &m,
                   const BatchJob &job);

    /**
     * The evaluation order run() uses: the indices of the jobs the
     * shard owns, ranked heaviest-first under ChunkPolicy::Auto and in
     * grid order under ChunkPolicy::Fixed. Deterministic for a given
     * (suite, machine, jobs, opts); exposed for the property tests.
     */
    std::vector<std::size_t>
    planJobOrder(const std::vector<SuiteLoop> &suite, const Machine &m,
                 const std::vector<BatchJob> &jobs,
                 const RunOptions &opts = {});

    /**
     * Deterministic parallel-for: fn(i) for every i in [0, count), in
     * unspecified order across the pool. fn must only write to
     * per-index state (e.g. slot i of a pre-sized vector); exceptions
     * are rethrown on the calling thread.
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)> &fn) const;

  private:
    /**
     * Pool skeleton: makeWorker() is invoked once per participating
     * thread (to build per-thread state such as scheduler objects); the
     * returned callable is then fed indices claimed from the task's
     * work-stealing deques.
     */
    using Worker = std::function<void(std::size_t)>;

    /** One batch in flight on the persistent pool. */
    struct PoolTask
    {
        /** One claimed span of job indices: [first, second). */
        using Range = std::pair<std::size_t, std::size_t>;

        /** One worker's chunk deque: the owner pops the front, idle
            thieves pop the back. Chunks are only ever removed after
            seeding, so "every deque empty" means the batch is fully
            claimed. */
        struct Queue
        {
            std::mutex m;
            std::deque<Range> chunks;
        };

        std::size_t count = 0;
        std::size_t chunk = 1;
        /** Owned by the dispatching caller; valid while it waits. */
        const std::function<Worker()> *makeWorker = nullptr;
        /** Per-worker deques, seeded round-robin in plan order before
            the task is published (so the k-heaviest chunks sit at the
            fronts and the light tail at the backs). */
        std::unique_ptr<Queue[]> queues;
        std::size_t queueCount = 0;
        /** Arrival-order worker slots (deque ownership + perf slot). */
        std::atomic<std::size_t> nextSlot{0};
        std::atomic<bool> abort{false};
        std::mutex errorMutex;
        std::exception_ptr error;

        void
        fail()
        {
            {
                std::lock_guard<std::mutex> lock(errorMutex);
                if (!error)
                    error = std::current_exception();
            }
            abort.store(true, std::memory_order_relaxed);
        }
    };

    void dispatch(std::size_t count,
                  const std::function<Worker()> &makeWorker,
                  std::size_t chunk = 1) const;
    void ensurePool() const;
    void poolMain() const;
    void runTask(PoolTask &t) const;
    bool claim(PoolTask &t, std::size_t self, PoolTask::Range &out,
               WorkerPerf &perf) const;
    void flushPerf(std::size_t slot, const WorkerPerf &perf) const;
    void noteArenaHighWater(std::size_t bytes) const;

    int threads_ = 1;
    bool memoizeSchedules_ = true;

    /** Bounds memo entry; the graph/machine copies (O(1), CoW) verify
        memo hits against fingerprint collisions in debug builds. */
    struct CachedBounds
    {
        LoopBounds b;
        std::optional<Ddg> graph;
        std::optional<Machine> machine;
    };
    StripedSingleFlightCache<std::pair<std::uint64_t, std::uint64_t>,
                             CachedBounds>
        boundsCache_;

    ScheduleMemo scheduleMemo_;

    /** Per-worker counters (slot per pool participant), merged by the
        workers as they finish a task. */
    mutable std::mutex perfMutex_;
    mutable std::vector<WorkerPerf> perf_;

    /** Claim-path jitter for the determinism tests (0 = off). */
    static std::atomic<unsigned> claimJitter_;

    /** @name Persistent worker pool (threads_ - 1 threads; the
        dispatching caller is the final worker). Spawned on first
        parallel dispatch, joined in the destructor. */
    /// @{
    mutable std::mutex dispatchMutex_;  ///< One batch in flight at once.
    mutable std::mutex poolMutex_;
    mutable std::condition_variable workCv_;  ///< New task or shutdown.
    mutable std::condition_variable idleCv_;  ///< activeWorkers_ -> 0.
    mutable std::vector<std::thread> pool_;
    mutable std::shared_ptr<PoolTask> task_;
    mutable std::uint64_t taskGen_ = 0;
    mutable int activeWorkers_ = 0;
    mutable bool shutdown_ = false;
    /// @}
};

/**
 * Simulate a shared-counter claiming discipline: `workers` greedy
 * workers consume `order` left to right, `chunk` indices per claim,
 * each job costing costs[order[k]]; returns each worker's total
 * simulated busy time. This is the model behind the chunk-policy
 * property tests — it lets the load-balance claim ("heaviest-first
 * ordering shrinks the makespan of a heavy-tailed grid") be asserted
 * deterministically, without racing real threads.
 */
std::vector<double> simulateWorkerLoads(const std::vector<double> &costs,
                                        const std::vector<std::size_t> &order,
                                        int workers, std::size_t chunk);

/**
 * Simulate the pool's actual work-stealing discipline: chunks of
 * `order` are dealt round-robin into per-worker deques, each worker
 * pops its own front and an idle worker steals the back of the next
 * non-empty victim (scanning from its own slot). Returns each worker's
 * total simulated busy time; same model as runTask, so the makespan
 * property tests can compare static, chunked and stealing claiming on
 * one footing.
 */
std::vector<double>
simulateWorkerLoadsStealing(const std::vector<double> &costs,
                            const std::vector<std::size_t> &order,
                            int workers, std::size_t chunk);

} // namespace swp

#endif // SWP_DRIVER_SUITE_RUNNER_HH
