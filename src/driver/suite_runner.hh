/**
 * @file
 * Multi-threaded batch evaluation driver.
 *
 * The paper's experiments are grids: every loop of the suite x every
 * strategy x every register-file size. SuiteRunner evaluates such a
 * batch of (loop, strategy, options) jobs across a pool of worker
 * threads while keeping the output *deterministic*: results[i] always
 * corresponds to jobs[i], every job is evaluated independently with no
 * shared mutable state, and all reductions are left to the caller (who
 * accumulates in index order), so the same batch produces bit-identical
 * results at any thread count.
 *
 * Per-call costs the serial harnesses used to pay on every job are
 * amortized here: scheduler objects are constructed once per worker
 * thread and reused across all its jobs, and the MII/RecMII of each
 * input loop is memoized per (graph content, machine) across batches —
 * the grid revisits the same 1258 loops dozens of times.
 */

#ifndef SWP_DRIVER_SUITE_RUNNER_HH
#define SWP_DRIVER_SUITE_RUNNER_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "machine/machine.hh"
#include "pipeliner/pipeliner.hh"
#include "workload/suitegen.hh"

namespace swp
{

/** One evaluation job of an experiment grid. */
struct BatchJob
{
    /** Index into the suite passed to SuiteRunner::run. */
    int loop = 0;

    /** Unlimited registers (pipelineIdeal); `strategy` is ignored. */
    bool ideal = false;

    Strategy strategy = Strategy::Spill;
    PipelinerOptions options;
};

/** Deterministic worker-pool evaluator for batches of pipeline jobs. */
class SuiteRunner
{
  public:
    /** threads == 0 selects the hardware concurrency; 1 runs inline. */
    explicit SuiteRunner(int threads = 1);

    int threads() const { return threads_; }

    /** Memoized lower bounds of one loop under one machine. */
    struct LoopBounds
    {
        int mii = 0;
        int recMii = 0;
    };

    /**
     * MII/RecMII of a loop, memoized per (graph content, machine
     * configuration). Safe to call concurrently; both key halves are
     * structural fingerprints, so rebuilt or short-lived graphs and
     * same-named machines never alias stale entries.
     */
    LoopBounds bounds(const Ddg &g, const Machine &m);

    /**
     * Evaluate all jobs. results[i] corresponds to jobs[i]; the result
     * vector is bit-identical at any thread count. Each result's
     * graph() references the suite entry it was built from unless
     * spilling transformed the loop, so the suite must outlive the
     * returned results. Exceptions thrown by a job are rethrown here.
     */
    std::vector<PipelineResult> run(const std::vector<SuiteLoop> &suite,
                                    const Machine &m,
                                    const std::vector<BatchJob> &jobs);

    /**
     * Deterministic parallel-for: fn(i) for every i in [0, count), in
     * unspecified order across the pool. fn must only write to
     * per-index state (e.g. slot i of a pre-sized vector); exceptions
     * are rethrown on the calling thread.
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)> &fn) const;

  private:
    /**
     * Pool skeleton: makeWorker() is invoked once on each worker thread
     * (to build per-thread state such as scheduler objects); the
     * returned callable is then fed indices from a shared counter.
     */
    using Worker = std::function<void(std::size_t)>;
    void dispatch(std::size_t count,
                  const std::function<Worker()> &makeWorker) const;

    int threads_ = 1;

    mutable std::mutex cacheMutex_;
    std::map<std::pair<std::uint64_t, std::uint64_t>, LoopBounds>
        boundsCache_;
};

} // namespace swp

#endif // SWP_DRIVER_SUITE_RUNNER_HH
