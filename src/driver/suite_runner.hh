/**
 * @file
 * Multi-threaded batch evaluation driver.
 *
 * The paper's experiments are grids: every loop of the suite x every
 * strategy x every register-file size. SuiteRunner evaluates such a
 * batch of (loop, strategy, options) jobs across a pool of worker
 * threads while keeping the output *deterministic*: results[i] always
 * corresponds to jobs[i], every job is evaluated independently with no
 * shared mutable state, and all reductions are left to the caller (who
 * accumulates in index order), so the same batch produces bit-identical
 * results at any thread count.
 *
 * Per-call costs the serial harnesses used to pay on every job are
 * amortized here:
 *  - worker threads are spawned once and persist across batches (the
 *    bench harnesses dispatch the same grid dozens of times);
 *  - scheduler objects are constructed once per worker thread and
 *    reused across all its jobs;
 *  - the MII/RecMII of each input loop is memoized per (graph content,
 *    machine) across batches;
 *  - every (graph, machine, II, scheduler) probe outcome — including
 *    "no schedule at this II" — is memoized in a ScheduleMemo shared
 *    by all workers, so best-of-all's binary search and the grid's
 *    repeated cells never schedule the same probe twice.
 * All memos are single-flight (two workers never compute one key) and
 * none of them changes results: output is byte-identical with the
 * memos on or off.
 */

#ifndef SWP_DRIVER_SUITE_RUNNER_HH
#define SWP_DRIVER_SUITE_RUNNER_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "machine/machine.hh"
#include "pipeliner/pipeliner.hh"
#include "sched/sched_memo.hh"
#include "support/singleflight.hh"
#include "workload/suitegen.hh"

namespace swp
{

/** One evaluation job of an experiment grid. */
struct BatchJob
{
    /** Index into the suite passed to SuiteRunner::run. */
    int loop = 0;

    /** Unlimited registers (pipelineIdeal); `strategy` is ignored. */
    bool ideal = false;

    Strategy strategy = Strategy::Spill;
    PipelinerOptions options;
};

/** Deterministic worker-pool evaluator for batches of pipeline jobs. */
class SuiteRunner
{
  public:
    /**
     * threads == 0 selects the hardware concurrency; 1 runs inline.
     * memoizeSchedules toggles the schedule memo (results are identical
     * either way; off re-schedules every probe — useful for measuring
     * the memo's effect and for CI's byte-identical diff).
     */
    explicit SuiteRunner(int threads = 1, bool memoizeSchedules = true);
    ~SuiteRunner();

    SuiteRunner(const SuiteRunner &) = delete;
    SuiteRunner &operator=(const SuiteRunner &) = delete;

    int threads() const { return threads_; }
    bool memoizesSchedules() const { return memoizeSchedules_; }

    /** Memoized lower bounds of one loop under one machine. */
    struct LoopBounds
    {
        int mii = 0;
        int recMii = 0;
    };

    /**
     * MII/RecMII of a loop, memoized per (graph content, machine
     * configuration). Safe to call concurrently; both key halves are
     * structural fingerprints, so rebuilt or short-lived graphs and
     * same-named machines never alias stale entries, and the memo is
     * single-flight: concurrent workers asking for the same key wait
     * for one computation instead of repeating it.
     */
    LoopBounds bounds(const Ddg &g, const Machine &m);

    /** The shared probe memo (for tests and observability). */
    ScheduleMemo &scheduleMemo() { return scheduleMemo_; }

    /** Counters of both memos, for tests and tuning. */
    struct MemoStats
    {
        SingleFlightStats bounds;
        SingleFlightStats schedule;
    };
    MemoStats
    memoStats() const
    {
        return {boundsCache_.stats(), scheduleMemo_.stats()};
    }

    /**
     * Evaluate all jobs. results[i] corresponds to jobs[i]; the result
     * vector is bit-identical at any thread count. Each result's
     * graph() references the suite entry it was built from unless
     * spilling transformed the loop, so the suite must outlive the
     * returned results. Exceptions thrown by a job are rethrown here.
     */
    std::vector<PipelineResult> run(const std::vector<SuiteLoop> &suite,
                                    const Machine &m,
                                    const std::vector<BatchJob> &jobs);

    /**
     * Deterministic parallel-for: fn(i) for every i in [0, count), in
     * unspecified order across the pool. fn must only write to
     * per-index state (e.g. slot i of a pre-sized vector); exceptions
     * are rethrown on the calling thread.
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)> &fn) const;

  private:
    /**
     * Pool skeleton: makeWorker() is invoked once per participating
     * thread (to build per-thread state such as scheduler objects); the
     * returned callable is then fed indices from a shared counter.
     */
    using Worker = std::function<void(std::size_t)>;

    /** One batch in flight on the persistent pool. */
    struct PoolTask
    {
        std::size_t count = 0;
        /** Owned by the dispatching caller; valid while it waits. */
        const std::function<Worker()> *makeWorker = nullptr;
        std::atomic<std::size_t> next{0};
        std::atomic<bool> abort{false};
        std::mutex errorMutex;
        std::exception_ptr error;

        void
        fail()
        {
            {
                std::lock_guard<std::mutex> lock(errorMutex);
                if (!error)
                    error = std::current_exception();
            }
            abort.store(true, std::memory_order_relaxed);
        }
    };

    void dispatch(std::size_t count,
                  const std::function<Worker()> &makeWorker) const;
    void ensurePool() const;
    void poolMain() const;
    static void runTask(PoolTask &t);

    int threads_ = 1;
    bool memoizeSchedules_ = true;

    /** Bounds memo entry; the graph/machine copies (O(1), CoW) verify
        memo hits against fingerprint collisions in debug builds. */
    struct CachedBounds
    {
        LoopBounds b;
        std::optional<Ddg> graph;
        std::optional<Machine> machine;
    };
    SingleFlightCache<std::pair<std::uint64_t, std::uint64_t>,
                      CachedBounds>
        boundsCache_;

    ScheduleMemo scheduleMemo_;

    /** @name Persistent worker pool (threads_ - 1 threads; the
        dispatching caller is the final worker). Spawned on first
        parallel dispatch, joined in the destructor. */
    /// @{
    mutable std::mutex dispatchMutex_;  ///< One batch in flight at once.
    mutable std::mutex poolMutex_;
    mutable std::condition_variable workCv_;  ///< New task or shutdown.
    mutable std::condition_variable idleCv_;  ///< activeWorkers_ -> 0.
    mutable std::vector<std::thread> pool_;
    mutable std::shared_ptr<PoolTask> task_;
    mutable std::uint64_t taskGen_ = 0;
    mutable int activeWorkers_ = 0;
    mutable bool shutdown_ = false;
    /// @}
};

} // namespace swp

#endif // SWP_DRIVER_SUITE_RUNNER_HH
