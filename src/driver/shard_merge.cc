#include "driver/shard_merge.hh"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

#include "support/diag.hh"
#include "support/strutil.hh"

namespace swp
{

namespace
{

/** Shard file format identifier; bump on incompatible layout changes. */
const char *const kShardFormat = "swp-shard-v1";

/**
 * Minimal JSON value model for reading shard files back. The format
 * is fixed and written by this library, so only what the writer emits
 * is supported: objects, arrays, strings, integers, and booleans —
 * floats are rejected (shard files never carry them, and refusing is
 * safer than silently rounding).
 */
struct Json
{
    enum class Kind { Null, Bool, Int, Str, Arr, Obj };
    Kind kind = Kind::Null;
    bool boolean = false;
    long long integer = 0;
    std::string str;
    std::vector<Json> arr;
    std::vector<std::pair<std::string, Json>> obj;

    const Json *
    find(const std::string &key) const
    {
        for (const auto &kv : obj) {
            if (kv.first == key)
                return &kv.second;
        }
        return nullptr;
    }
};

/** Recursive-descent parser over an in-memory buffer. */
class JsonParser
{
  public:
    JsonParser(const std::string &text, const std::string &where)
        : text_(text), where_(where)
    {
    }

    Json
    parse()
    {
        Json v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing garbage after the document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &msg) const
    {
        SWP_FATAL(where_, ": invalid shard file: ", msg, " (at byte ",
                  pos_, ")");
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    Json
    parseValue()
    {
        const char c = peek();
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"')
            return parseString();
        if (c == 't' || c == 'f')
            return parseBool();
        if (c == 'n') {
            parseLiteral("null");
            return Json{};
        }
        if (c == '-' || (c >= '0' && c <= '9'))
            return parseNumber();
        fail("unexpected character");
    }

    void
    parseLiteral(const std::string &lit)
    {
        skipWs();
        if (text_.compare(pos_, lit.size(), lit) != 0)
            fail("malformed literal");
        pos_ += lit.size();
    }

    Json
    parseBool()
    {
        Json v;
        v.kind = Json::Kind::Bool;
        if (peek() == 't') {
            parseLiteral("true");
            v.boolean = true;
        } else {
            parseLiteral("false");
        }
        return v;
    }

    Json
    parseNumber()
    {
        skipWs();
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() && text_[pos_] >= '0' &&
               text_[pos_] <= '9')
            ++pos_;
        if (pos_ == start + (text_[start] == '-' ? 1u : 0u))
            fail("malformed number");
        if (pos_ < text_.size() &&
            (text_[pos_] == '.' || text_[pos_] == 'e' ||
             text_[pos_] == 'E'))
            fail("non-integer numbers are not part of the shard format");
        Json v;
        v.kind = Json::Kind::Int;
        try {
            v.integer = std::stoll(text_.substr(start, pos_ - start));
        } catch (const std::exception &) {
            fail("integer out of range");
        }
        return v;
    }

    void
    appendUtf8(std::string &out, unsigned code)
    {
        if (code < 0x80) {
            out += char(code);
        } else if (code < 0x800) {
            out += char(0xC0 | (code >> 6));
            out += char(0x80 | (code & 0x3F));
        } else {
            out += char(0xE0 | (code >> 12));
            out += char(0x80 | ((code >> 6) & 0x3F));
            out += char(0x80 | (code & 0x3F));
        }
    }

    Json
    parseString()
    {
        expect('"');
        Json v;
        v.kind = Json::Kind::Str;
        for (;;) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return v;
            if (c != '\\') {
                v.str += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            const char e = text_[pos_++];
            switch (e) {
              case '"': v.str += '"'; break;
              case '\\': v.str += '\\'; break;
              case '/': v.str += '/'; break;
              case 'b': v.str += '\b'; break;
              case 'f': v.str += '\f'; break;
              case 'n': v.str += '\n'; break;
              case 'r': v.str += '\r'; break;
              case 't': v.str += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int k = 0; k < 4; ++k) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= unsigned(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= unsigned(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= unsigned(h - 'A' + 10);
                    else
                        fail("malformed \\u escape");
                }
                if (code >= 0xD800 && code <= 0xDFFF)
                    fail("surrogate pairs are not part of the shard "
                         "format");
                appendUtf8(v.str, code);
                break;
              }
              default: fail("unknown escape");
            }
        }
    }

    Json
    parseArray()
    {
        expect('[');
        Json v;
        v.kind = Json::Kind::Arr;
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        for (;;) {
            v.arr.push_back(parseValue());
            const char c = peek();
            ++pos_;
            if (c == ']')
                return v;
            if (c != ',')
                fail("expected ',' or ']'");
        }
    }

    Json
    parseObject()
    {
        expect('{');
        Json v;
        v.kind = Json::Kind::Obj;
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        for (;;) {
            const Json key = parseString();
            expect(':');
            v.obj.emplace_back(key.str, parseValue());
            const char c = peek();
            ++pos_;
            if (c == '}')
                return v;
            if (c != ',')
                fail("expected ',' or '}'");
        }
    }

    const std::string &text_;
    std::string where_;
    std::size_t pos_ = 0;
};

/** Typed field access with path-qualified errors. */
const Json &
field(const Json &obj, const std::string &key, Json::Kind kind,
      const std::string &where)
{
    const Json *v = obj.find(key);
    if (!v)
        SWP_FATAL(where, ": invalid shard file: missing field '", key,
                  "'");
    if (v->kind != kind)
        SWP_FATAL(where, ": invalid shard file: field '", key,
                  "' has the wrong type");
    return *v;
}

long long
intField(const Json &obj, const std::string &key, const std::string &where,
         long long lo, long long hi)
{
    const long long v = field(obj, key, Json::Kind::Int, where).integer;
    if (v < lo || v > hi)
        SWP_FATAL(where, ": invalid shard file: field '", key,
                  "' out of range");
    return v;
}

} // namespace

bool
parseShardSpec(const std::string &text, ShardSpec &out)
{
    const std::size_t slash = text.find('/');
    if (slash == std::string::npos || slash == 0 ||
        slash + 1 >= text.size())
        return false;
    int index = 0, count = 0;
    if (!parseIntInRange(text.substr(0, slash), 0, 1000000 - 1, index))
        return false;
    if (!parseIntInRange(text.substr(slash + 1), 1, 1000000, count))
        return false;
    if (index >= count)
        return false;
    out.index = index;
    out.count = count;
    return true;
}

std::string
formatShardSpec(const ShardSpec &spec)
{
    return std::to_string(spec.index) + "/" + std::to_string(spec.count);
}

void
writeShardFile(std::ostream &out, const ShardDoc &doc)
{
    out << "{\n";
    out << "  \"format\": " << jsonQuote(kShardFormat) << ",\n";
    out << "  \"tool\": " << jsonQuote(doc.tool) << ",\n";
    out << "  \"config\": " << jsonQuote(doc.config) << ",\n";
    out << "  \"configSummary\": " << jsonQuote(doc.configSummary)
        << ",\n";
    if (!doc.suiteSeed.empty()) {
        out << "  \"suite\": {\"seed\": " << jsonQuote(doc.suiteSeed)
            << ", \"loops\": " << doc.suiteLoops << "},\n";
    }
    out << "  \"jobs\": " << doc.totalJobs << ",\n";
    out << "  \"shard\": {\"index\": " << doc.shard.index
        << ", \"count\": " << doc.shard.count << "},\n";
    out << "  \"prologue\": " << jsonQuote(doc.prologue) << ",\n";
    if (!doc.benchJobs.empty()) {
        out << "  \"benchJobs\": [";
        for (std::size_t i = 0; i < doc.benchJobs.size(); ++i) {
            const BenchJobRecord &r = doc.benchJobs[i];
            out << (i ? ",\n    " : "\n    ") << "{\"key\": "
                << jsonQuote(r.key) << ", \"v\": [" << int(r.success)
                << ", " << int(r.usedFallback) << ", " << r.ii << ", "
                << r.regs << ", " << r.spills << ", " << r.rounds << ", "
                << r.attempts << ", " << r.memOps << "]}";
        }
        out << "\n  ],\n";
    }
    out << "  \"records\": [";
    for (std::size_t i = 0; i < doc.records.size(); ++i) {
        const ShardRecord &r = doc.records[i];
        out << (i ? ",\n    " : "\n    ") << "{\"job\": " << r.job
            << ", \"rc\": " << r.rc << ", \"text\": "
            << jsonQuote(r.text) << "}";
    }
    out << "\n  ]\n}\n";
}

void
writeShardFile(const std::string &path, const ShardDoc &doc)
{
    // Serialize to a temporary sibling and rename into place, so a
    // process killed mid-write never leaves a truncated document at
    // the final path (rename within a directory is atomic on POSIX).
    // The pid keeps concurrent writers' temporaries apart.
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            SWP_FATAL("cannot write shard file ", tmp);
        writeShardFile(out, doc);
        out.flush();
        if (!out) {
            std::remove(tmp.c_str());
            SWP_FATAL("error writing shard file ", tmp);
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        SWP_FATAL("cannot move shard file into place: ", tmp, " -> ",
                  path);
    }
}

ShardDoc
readShardFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        SWP_FATAL("cannot read shard file ", path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();

    const Json root = JsonParser(text, path).parse();
    if (root.kind != Json::Kind::Obj)
        SWP_FATAL(path, ": invalid shard file: not a JSON object");
    const std::string format =
        field(root, "format", Json::Kind::Str, path).str;
    if (format != kShardFormat) {
        SWP_FATAL(path, ": unsupported shard format '", format,
                  "' (this build reads ", kShardFormat, ")");
    }

    ShardDoc doc;
    doc.tool = field(root, "tool", Json::Kind::Str, path).str;
    doc.config = field(root, "config", Json::Kind::Str, path).str;
    doc.configSummary =
        field(root, "configSummary", Json::Kind::Str, path).str;
    if (const Json *suite = root.find("suite")) {
        if (suite->kind != Json::Kind::Obj)
            SWP_FATAL(path, ": invalid shard file: field 'suite' has "
                            "the wrong type");
        doc.suiteSeed = field(*suite, "seed", Json::Kind::Str, path).str;
        doc.suiteLoops =
            int(intField(*suite, "loops", path, 0, 1000000000));
    }
    doc.totalJobs =
        std::size_t(intField(root, "jobs", path, 0, 1000000000));
    const Json &shard = field(root, "shard", Json::Kind::Obj, path);
    doc.shard.count = int(intField(shard, "count", path, 1, 1000000));
    doc.shard.index =
        int(intField(shard, "index", path, 0, doc.shard.count - 1));
    doc.prologue = field(root, "prologue", Json::Kind::Str, path).str;

    if (const Json *bench = root.find("benchJobs")) {
        if (bench->kind != Json::Kind::Arr)
            SWP_FATAL(path, ": invalid shard file: field 'benchJobs' "
                            "has the wrong type");
        doc.benchJobs.reserve(bench->arr.size());
        for (const Json &rec : bench->arr) {
            if (rec.kind != Json::Kind::Obj)
                SWP_FATAL(path, ": invalid shard file: bench record is "
                                "not an object");
            BenchJobRecord r;
            r.key = field(rec, "key", Json::Kind::Str, path).str;
            const Json &v = field(rec, "v", Json::Kind::Arr, path);
            if (v.arr.size() != 8)
                SWP_FATAL(path, ": invalid shard file: bench record "
                                "'v' must hold 8 integers");
            for (const Json &cell : v.arr) {
                if (cell.kind != Json::Kind::Int || cell.integer < 0 ||
                    cell.integer > 1000000000)
                    SWP_FATAL(path, ": invalid shard file: bench "
                                    "record value out of range");
            }
            r.success = v.arr[0].integer != 0;
            r.usedFallback = v.arr[1].integer != 0;
            r.ii = int(v.arr[2].integer);
            r.regs = int(v.arr[3].integer);
            r.spills = int(v.arr[4].integer);
            r.rounds = int(v.arr[5].integer);
            r.attempts = int(v.arr[6].integer);
            r.memOps = int(v.arr[7].integer);
            doc.benchJobs.push_back(std::move(r));
        }
    }

    const Json &records = field(root, "records", Json::Kind::Arr, path);
    doc.records.reserve(records.arr.size());
    for (const Json &rec : records.arr) {
        if (rec.kind != Json::Kind::Obj)
            SWP_FATAL(path, ": invalid shard file: record is not an "
                            "object");
        ShardRecord r;
        r.job = std::size_t(intField(rec, "job", path, 0, 1000000000));
        r.rc = int(intField(rec, "rc", path, 0, 255));
        r.text = field(rec, "text", Json::Kind::Str, path).str;
        doc.records.push_back(std::move(r));
    }
    doc.source = path;
    return doc;
}

namespace
{

/** "i/N", plus the source file when known — names the offender. */
std::string
docName(const ShardDoc &doc)
{
    std::string name = formatShardSpec(doc.shard);
    if (!doc.source.empty())
        name += " (" + doc.source + ")";
    return name;
}

/**
 * Coherence checks shared by mergeShards and mergeBenchRecords: one
 * tool, one configuration, one suite, one grid; exactly one document
 * per shard index. Returns the reference document (docs.front()).
 */
const ShardDoc &
validateShardSet(const std::vector<ShardDoc> &docs)
{
    if (docs.empty())
        SWP_FATAL("merge: no shard files given");

    const ShardDoc &ref = docs.front();
    const std::string refName = docName(ref);
    for (const ShardDoc &doc : docs) {
        const std::string name = docName(doc);
        if (doc.tool != ref.tool) {
            SWP_FATAL("merge: shard ", name, " was produced by '",
                      doc.tool, "' but shard ", refName, " by '",
                      ref.tool, "'");
        }
        if (doc.shard.count != ref.shard.count) {
            SWP_FATAL("merge: shard ", name, " is one of ",
                      doc.shard.count, " shards but shard ", refName,
                      " is one of ", ref.shard.count);
        }
        if (doc.suiteSeed != ref.suiteSeed) {
            SWP_FATAL("merge: shard ", name, " ran suite seed ",
                      doc.suiteSeed.empty() ? "(none)" : doc.suiteSeed,
                      " but shard ", refName, " ran seed ",
                      ref.suiteSeed.empty() ? "(none)" : ref.suiteSeed);
        }
        if (doc.suiteLoops != ref.suiteLoops ||
            doc.totalJobs != ref.totalJobs) {
            SWP_FATAL("merge: shard ", name, " covers a ", doc.totalJobs,
                      "-job grid but shard ", refName, " covers ",
                      ref.totalJobs, " jobs");
        }
        if (doc.config != ref.config) {
            SWP_FATAL("merge: shard ", name,
                      " was produced under a different configuration\n  ",
                      name, ": ", doc.configSummary, "\n  ", refName,
                      ": ", ref.configSummary);
        }
        if (doc.prologue != ref.prologue)
            SWP_FATAL("merge: shard ", name, " disagrees on the output "
                                             "prologue");
    }

    const int count = ref.shard.count;
    if (int(docs.size()) > count) {
        SWP_FATAL("merge: ", docs.size(), " shard files given for a ",
                  count, "-shard run");
    }
    std::vector<const ShardDoc *> byIndex(std::size_t(count), nullptr);
    for (const ShardDoc &doc : docs) {
        const ShardDoc *&slot = byIndex[std::size_t(doc.shard.index)];
        if (slot) {
            SWP_FATAL("merge: overlapping shards: shard ", docName(doc),
                      " provided twice",
                      slot->source.empty() || doc.source.empty()
                          ? ""
                          : strCat(" (as ", slot->source, " and ",
                                   doc.source, ")"));
        }
        slot = &doc;
    }
    for (int i = 0; i < count; ++i) {
        if (!byIndex[std::size_t(i)]) {
            SWP_FATAL("merge: missing shard ", i, "/", count, " (got ",
                      docs.size(), " of ", count, " shard files)");
        }
    }
    return ref;
}

} // namespace

MergeOutput
mergeShards(const std::vector<ShardDoc> &docs)
{
    const ShardDoc &ref = validateShardSet(docs);
    const int count = ref.shard.count;

    // Sized by the records actually present, never by the
    // file-provided grid size, so a corrupt "jobs" field cannot drive
    // a huge allocation — it is refused by the coverage check instead.
    std::map<std::size_t, const ShardRecord *> byJob;
    for (const ShardDoc &doc : docs) {
        const std::string name = docName(doc);
        for (const ShardRecord &rec : doc.records) {
            if (rec.job >= ref.totalJobs) {
                SWP_FATAL("merge: shard ", name, " carries job ",
                          rec.job, ", outside the ", ref.totalJobs,
                          "-job grid");
            }
            if (!doc.shard.owns(rec.job)) {
                SWP_FATAL("merge: shard ", name, " carries job ",
                          rec.job, ", which belongs to shard ",
                          rec.job % std::size_t(count), "/", count);
            }
            if (!byJob.emplace(rec.job, &rec).second) {
                SWP_FATAL("merge: job ", rec.job,
                          " appears twice in shard ", name);
            }
        }
    }
    if (byJob.size() != ref.totalJobs) {
        // Name the first gap: jobs are unique and in-range, so some
        // index in [0, records] is uncovered.
        std::size_t j = 0;
        for (const auto &kv : byJob) {
            if (kv.first != j)
                break;
            ++j;
        }
        SWP_FATAL("merge: shard ", j % std::size_t(count), "/", count,
                  " is missing job ", j);
    }

    MergeOutput out;
    out.text = ref.prologue;
    for (const auto &kv : byJob) {
        out.text += kv.second->text;
        out.rc |= kv.second->rc;
    }
    return out;
}

std::vector<BenchJobRecord>
mergeBenchRecords(const std::vector<ShardDoc> &docs)
{
    validateShardSet(docs);

    auto same = [](const BenchJobRecord &a, const BenchJobRecord &b) {
        return a.success == b.success && a.usedFallback == b.usedFallback &&
               a.ii == b.ii && a.regs == b.regs && a.spills == b.spills &&
               a.rounds == b.rounds && a.attempts == b.attempts &&
               a.memOps == b.memOps;
    };

    std::vector<BenchJobRecord> out;
    std::map<std::string, std::pair<const BenchJobRecord *,
                                    const ShardDoc *>> byKey;
    for (const ShardDoc &doc : docs) {
        for (const BenchJobRecord &rec : doc.benchJobs) {
            const auto ins =
                byKey.emplace(rec.key, std::make_pair(&rec, &doc));
            if (ins.second) {
                out.push_back(rec);
                continue;
            }
            // Jobs are pure functions of their key's inputs, so the
            // same key recorded by two shards must agree exactly; a
            // mismatch means the fleet was not homogeneous.
            if (!same(*ins.first->second.first, rec)) {
                SWP_FATAL("merge: conflicting bench records for job key ",
                          rec.key, " between shard ",
                          docName(*ins.first->second.second),
                          " and shard ", docName(doc));
            }
        }
    }
    return out;
}

} // namespace swp
