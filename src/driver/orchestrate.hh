/**
 * @file
 * Local shard-fleet orchestrator: spawn N shard worker processes of a
 * consumer binary, monitor them with per-shard timeouts, retry failed
 * or invalid shards with bounded backoff, and reuse valid pre-existing
 * shard files (resume) — so a long sharded run survives worker
 * crashes, hangs, and interruptions of the orchestrating process
 * itself, and never recomputes work that already produced a valid,
 * configuration-matching shard file.
 *
 * The engine is consumer-agnostic: it launches
 *
 *   <program> <baseArgs...> --shard i/N <shardOutFlag> <dir>/<prefix>i.json
 *
 * for every shard i, captures each worker's stdout/stderr into
 * <dir>/<prefix>i.log, and declares a shard done exactly when its
 * output file parses as a valid swp-shard-v1 document for shard i/N of
 * the expected tool and configuration fingerprint — a worker's exit
 * code is diagnostic detail, not the success signal, so a worker that
 * dies *after* atomically publishing its file still counts (and a
 * worker that exits 0 after writing garbage does not).
 *
 * Deterministic fault injection (for tests and drills): an injection
 * spec "shard:attempt:mode" makes the engine export SWP_ORCH_INJECT to
 * that specific launch; consumers call maybeInjectFault() at their
 * shard-write point, which crashes, hangs, or corrupts the output on
 * command. Every failure path — crash, hang (timeout + SIGKILL),
 * truncated/invalid output — is thereby reachable on demand.
 */

#ifndef SWP_DRIVER_ORCHESTRATE_HH
#define SWP_DRIVER_ORCHESTRATE_HH

#include <string>
#include <vector>

#include "driver/shard_merge.hh"

namespace swp
{

/** What an injected fault does at the worker's shard-write point. */
enum class FaultMode
{
    Crash,    ///< _Exit before writing any output.
    Hang,     ///< Sleep forever (exercises the timeout + kill path).
    Corrupt,  ///< Write truncated JSON at the final path, then exit 0.
};

/** "crash" / "hang" / "corrupt". */
const char *faultModeName(FaultMode mode);

/** One deterministic fault: fire at launch `attempt` of shard `shard`. */
struct FaultInjection
{
    int shard = 0;
    /** 1-based launch attempt the fault applies to. */
    int attempt = 1;
    FaultMode mode = FaultMode::Crash;
};

/**
 * Parse "shard:attempt:mode[,shard:attempt:mode...]" (attempt is
 * 1-based). Returns false without touching `out` on malformed input.
 */
bool parseInjectSpec(const std::string &text,
                     std::vector<FaultInjection> &out);

/** Environment variable carrying an injected fault to one worker. */
extern const char *const kInjectEnv;

/**
 * Worker-side fault hook; call immediately before writing the shard
 * file. Reads kInjectEnv: on "crash"/"hang" it never returns; on
 * "corrupt" it writes invalid JSON at `shardOutPath` and returns true
 * (the caller must then skip its own write). Returns false when no
 * fault is injected.
 */
bool maybeInjectFault(const std::string &shardOutPath);

/** Orchestration knobs; the defaults suit an interactive local run. */
struct OrchestrateOptions
{
    /** Number of shards == number of worker processes (all launched
        concurrently; pick N at or below the core count). */
    int shards = 1;

    /** Directory holding shard files and per-shard worker logs
        (created, including parents, when missing). */
    std::string dir = "swp_orch";

    /** Shard file name prefix: shard i lives in <dir>/<prefix>i.json
        and logs to <dir>/<prefix>i.log. */
    std::string filePrefix = "shard-";

    /** Flag announcing the output path to the worker (the CLI takes
        --shard-out, the bench harnesses --orch-record). */
    std::string shardOutFlag = "--shard-out";

    /** Total launch attempts per shard before giving up (>= 1). */
    int maxAttempts = 3;

    /** Per-attempt wall-clock limit in seconds; a worker past its
        deadline is SIGKILLed and the attempt counts as failed.
        0 disables the timeout. */
    double timeoutSeconds = 600.0;

    /** Delay before relaunching a failed shard; doubles per failed
        attempt (capped at 5 s). */
    double backoffSeconds = 0.1;

    /** Reuse a pre-existing valid shard file of the same tool,
        configuration, and shard spec instead of recomputing it. */
    bool resume = true;

    /** Expected shard-file tool name; empty skips the check. */
    std::string expectTool;

    /** Expected configuration fingerprint; empty skips the check.
        Resume candidates failing it are recomputed, and a worker
        producing a mismatched file counts as a failed attempt. */
    std::string expectConfig;

    /** Deterministic fault injections (tests and drills). */
    std::vector<FaultInjection> inject;
};

/** Fleet outcome; `docs` holds one validated document per shard. */
struct OrchestrateResult
{
    std::vector<ShardDoc> docs;

    /** Shards satisfied by a pre-existing valid file (no launch). */
    int reused = 0;

    /** Worker processes actually spawned (all attempts). */
    int launched = 0;

    /** Relaunches beyond each shard's first attempt. */
    int retried = 0;
};

/**
 * Run the fleet to completion. Returns once every shard has a
 * validated shard file; throws FatalError naming the shard, the
 * attempt count, the last failure, and the worker log when any shard
 * exhausts its attempts. Progress and per-attempt diagnostics go to
 * stderr; stdout is never touched (callers print the merged output).
 */
OrchestrateResult orchestrateShards(const std::string &program,
                                    const std::vector<std::string> &baseArgs,
                                    const OrchestrateOptions &opts);

/**
 * Absolute path of the running executable (/proc/self/exe), falling
 * back to argv0 — for re-exec'ing the current binary as a worker.
 */
std::string selfExecutablePath(const char *argv0);

} // namespace swp

#endif // SWP_DRIVER_ORCHESTRATE_HH
