#include "driver/orchestrate.hh"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <thread>

#include "support/diag.hh"
#include "support/strutil.hh"

namespace swp
{

const char *const kInjectEnv = "SWP_ORCH_INJECT";

const char *
faultModeName(FaultMode mode)
{
    switch (mode) {
    case FaultMode::Crash:
        return "crash";
    case FaultMode::Hang:
        return "hang";
    case FaultMode::Corrupt:
        return "corrupt";
    }
    return "?";
}

bool
parseInjectSpec(const std::string &text, std::vector<FaultInjection> &out)
{
    std::vector<FaultInjection> parsed;
    for (const std::string &item : split(text, ',')) {
        const std::vector<std::string> parts = split(item, ':');
        if (parts.size() != 3)
            return false;
        FaultInjection inj;
        if (!parseIntInRange(parts[0], 0, 1000000, inj.shard))
            return false;
        if (!parseIntInRange(parts[1], 1, 1000000, inj.attempt))
            return false;
        if (parts[2] == "crash")
            inj.mode = FaultMode::Crash;
        else if (parts[2] == "hang")
            inj.mode = FaultMode::Hang;
        else if (parts[2] == "corrupt")
            inj.mode = FaultMode::Corrupt;
        else
            return false;
        parsed.push_back(inj);
    }
    if (parsed.empty())
        return false;
    out.insert(out.end(), parsed.begin(), parsed.end());
    return true;
}

bool
maybeInjectFault(const std::string &shardOutPath)
{
    const char *value = std::getenv(kInjectEnv);
    if (value == nullptr || *value == '\0')
        return false;
    const std::string mode = value;
    if (mode == "crash") {
        std::cerr << "inject-fail: crashing before writing " << shardOutPath
                  << "\n";
        std::_Exit(70);
    }
    if (mode == "hang") {
        std::cerr << "inject-fail: hanging instead of writing " << shardOutPath
                  << "\n";
        for (;;)
            std::this_thread::sleep_for(std::chrono::seconds(3600));
    }
    if (mode == "corrupt") {
        std::cerr << "inject-fail: writing corrupt output to " << shardOutPath
                  << "\n";
        std::ofstream out(shardOutPath,
                          std::ios::binary | std::ios::trunc);
        out << "{\"format\": \"swp-shard-v1\", \"tool\": \"trunc";
        return true;
    }
    SWP_FATAL("unknown ", kInjectEnv, " mode '", mode,
              "' (expected crash, hang, or corrupt)");
}

std::string
selfExecutablePath(const char *argv0)
{
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0) {
        buf[n] = '\0';
        return std::string(buf);
    }
    return argv0 != nullptr ? std::string(argv0) : std::string();
}

namespace
{

using Clock = std::chrono::steady_clock;

/** mkdir -p: create every missing prefix of `dir`. */
void
makeDirs(const std::string &dir)
{
    if (dir.empty())
        return;
    for (size_t pos = 0; pos != std::string::npos;) {
        pos = dir.find('/', pos + 1);
        const std::string prefix =
            pos == std::string::npos ? dir : dir.substr(0, pos);
        if (prefix.empty())
            continue;
        if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST)
            SWP_FATAL("orchestrate: cannot create directory ", prefix, ": ",
                      std::strerror(errno));
    }
}

/**
 * Load + validate the shard file one attempt (or resume probe) should
 * have produced. Only a file that parses as swp-shard-v1 AND matches
 * the expected shard spec, tool, and configuration fingerprint counts.
 */
bool
tryLoadShard(const std::string &path, int shard,
             const OrchestrateOptions &opts, ShardDoc &out, std::string &why)
{
    ShardDoc doc;
    try {
        doc = readShardFile(path);
    } catch (const FatalError &err) {
        why = err.what();
        return false;
    }
    if (doc.shard.index != shard || doc.shard.count != opts.shards) {
        why = strCat(path, " holds shard ", formatShardSpec(doc.shard),
                     ", expected ", shard, "/", opts.shards);
        return false;
    }
    if (!opts.expectTool.empty() && doc.tool != opts.expectTool) {
        why = strCat(path, " was produced by tool '", doc.tool,
                     "', expected '", opts.expectTool, "'");
        return false;
    }
    if (!opts.expectConfig.empty() && doc.config != opts.expectConfig) {
        why = strCat(path, " was produced under a different configuration (",
                     doc.configSummary, ")");
        return false;
    }
    out = std::move(doc);
    return true;
}

const FaultInjection *
findInjection(const std::vector<FaultInjection> &inject, int shard,
              int attempt)
{
    for (const FaultInjection &inj : inject)
        if (inj.shard == shard && inj.attempt == attempt)
            return &inj;
    return nullptr;
}

struct ShardState
{
    enum class Phase
    {
        Pending, ///< Waiting (possibly backing off) to be launched.
        Running, ///< Worker process alive.
        Done,    ///< Validated shard document captured.
    };

    Phase phase = Phase::Pending;
    int attempts = 0; ///< Launches so far.
    pid_t pid = -1;
    Clock::time_point readyAt{};  ///< Earliest next launch (backoff).
    Clock::time_point deadline{}; ///< Timeout kill point (running only).
    bool hasDeadline = false;
    bool timedOut = false; ///< Current attempt was SIGKILLed by us.
    std::string lastFailure;
};

pid_t
launchWorker(const std::string &program,
             const std::vector<std::string> &baseArgs, int shard,
             const OrchestrateOptions &opts, int attempt,
             const std::string &outPath, const std::string &logPath)
{
    std::vector<std::string> args;
    args.reserve(baseArgs.size() + 5);
    args.push_back(program);
    args.insert(args.end(), baseArgs.begin(), baseArgs.end());
    args.push_back("--shard");
    args.push_back(formatShardSpec({shard, opts.shards}));
    args.push_back(opts.shardOutFlag);
    args.push_back(outPath);

    std::vector<char *> argv;
    argv.reserve(args.size() + 1);
    for (std::string &arg : args)
        argv.push_back(&arg[0]);
    argv.push_back(nullptr);

    // Mark the attempt in the worker log so interleaved attempts stay
    // readable when a shard is retried.
    {
        std::ofstream log(logPath, std::ios::app);
        log << "=== orchestrate: shard " << shard << "/" << opts.shards
            << " attempt " << attempt << " ===\n";
    }

    const FaultInjection *inj = findInjection(opts.inject, shard, attempt);

    const pid_t pid = ::fork();
    if (pid < 0)
        SWP_FATAL("orchestrate: fork failed: ", std::strerror(errno));
    if (pid == 0) {
        const int fd =
            ::open(logPath.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
        if (fd >= 0) {
            ::dup2(fd, 1);
            ::dup2(fd, 2);
            if (fd > 2)
                ::close(fd);
        }
        if (inj != nullptr)
            ::setenv(kInjectEnv, faultModeName(inj->mode), 1);
        else
            ::unsetenv(kInjectEnv);
        ::execv(argv[0], argv.data());
        // Exec failure: exit uniquely; the parent reports the code and
        // the log carries nothing else for this attempt.
        ::_exit(127);
    }
    return pid;
}

std::string
describeExit(int status, bool timedOut, double timeoutSeconds)
{
    if (timedOut)
        return strCat("timed out after ", timeoutSeconds, " s and was killed");
    if (WIFEXITED(status)) {
        if (WEXITSTATUS(status) == 127)
            return "could not be executed (exec failed, exit 127)";
        return strCat("exited with code ", WEXITSTATUS(status));
    }
    if (WIFSIGNALED(status))
        return strCat("was killed by signal ", WTERMSIG(status));
    return strCat("ended with wait status ", status);
}

} // namespace

OrchestrateResult
orchestrateShards(const std::string &program,
                  const std::vector<std::string> &baseArgs,
                  const OrchestrateOptions &opts)
{
    if (opts.shards < 1)
        SWP_FATAL("orchestrate: shard count must be >= 1, got ", opts.shards);
    if (opts.maxAttempts < 1)
        SWP_FATAL("orchestrate: max attempts must be >= 1, got ",
                  opts.maxAttempts);
    if (program.empty())
        SWP_FATAL("orchestrate: worker program path is empty");
    makeDirs(opts.dir);

    const int n = opts.shards;
    auto shardFile = [&](int i) {
        return strCat(opts.dir, "/", opts.filePrefix, i, ".json");
    };
    auto shardLog = [&](int i) {
        return strCat(opts.dir, "/", opts.filePrefix, i, ".log");
    };

    OrchestrateResult result;
    result.docs.resize(n);
    std::vector<ShardState> state(n);

    int remaining = n;

    // Resume: satisfy shards whose previous run already published a
    // valid file for this exact tool + configuration + shard spec.
    for (int i = 0; i < n; ++i) {
        if (!opts.resume)
            break;
        std::string why;
        if (tryLoadShard(shardFile(i), i, opts, result.docs[i], why)) {
            state[i].phase = ShardState::Phase::Done;
            ++result.reused;
            --remaining;
            std::cerr << "orchestrate: shard " << i << "/" << n
                      << ": reusing valid shard file " << shardFile(i)
                      << "\n";
        } else if (why.find("cannot read") == std::string::npos) {
            // A file existed but didn't qualify; say why before
            // recomputing (a plain missing file stays quiet).
            std::cerr << "orchestrate: shard " << i << "/" << n
                      << ": ignoring stale shard file: " << why << "\n";
        }
    }

    const Clock::time_point start = Clock::now();
    while (remaining > 0) {
        const Clock::time_point now = Clock::now();

        // Launch every pending shard whose backoff has elapsed.
        for (int i = 0; i < n; ++i) {
            ShardState &s = state[i];
            if (s.phase != ShardState::Phase::Pending || now < s.readyAt)
                continue;
            ++s.attempts;
            ++result.launched;
            s.timedOut = false;
            s.pid = launchWorker(program, baseArgs, i, opts, s.attempts,
                                 shardFile(i), shardLog(i));
            s.phase = ShardState::Phase::Running;
            s.hasDeadline = opts.timeoutSeconds > 0;
            if (s.hasDeadline)
                s.deadline =
                    Clock::now() +
                    std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(opts.timeoutSeconds));
        }

        // Kill workers past their deadline; the reap below sees them.
        for (int i = 0; i < n; ++i) {
            ShardState &s = state[i];
            if (s.phase == ShardState::Phase::Running && s.hasDeadline &&
                !s.timedOut && Clock::now() >= s.deadline) {
                s.timedOut = true;
                ::kill(s.pid, SIGKILL);
            }
        }

        // Reap finished workers and judge each attempt by its file.
        for (int i = 0; i < n; ++i) {
            ShardState &s = state[i];
            if (s.phase != ShardState::Phase::Running)
                continue;
            int status = 0;
            const pid_t reaped = ::waitpid(s.pid, &status, WNOHANG);
            if (reaped != s.pid)
                continue;
            s.pid = -1;
            std::string why;
            if (!s.timedOut &&
                tryLoadShard(shardFile(i), i, opts, result.docs[i], why)) {
                s.phase = ShardState::Phase::Done;
                --remaining;
                continue;
            }
            const std::string desc =
                describeExit(status, s.timedOut, opts.timeoutSeconds);
            s.lastFailure =
                why.empty() ? desc : strCat(desc, "; ", why);
            if (s.attempts >= opts.maxAttempts)
                SWP_FATAL("orchestrate: shard ", i, "/", n, " failed after ",
                          s.attempts, " attempt",
                          s.attempts == 1 ? "" : "s", " (last attempt ",
                          s.lastFailure, "); worker log: ", shardLog(i));
            double backoff = opts.backoffSeconds;
            for (int a = 1; a < s.attempts; ++a)
                backoff *= 2;
            if (backoff > 5.0)
                backoff = 5.0;
            if (backoff < 0)
                backoff = 0;
            std::cerr << "orchestrate: shard " << i << "/" << n << " attempt "
                      << s.attempts << " " << s.lastFailure << " (log: "
                      << shardLog(i) << "); retrying in "
                      << static_cast<long>(backoff * 1000) << " ms\n";
            ++result.retried;
            s.phase = ShardState::Phase::Pending;
            s.readyAt = Clock::now() +
                        std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(backoff));
        }

        if (remaining > 0)
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }

    const double seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    std::cerr << "orchestrate: " << n << "/" << n << " shards complete ("
              << result.launched << " launched, " << result.reused
              << " reused, " << result.retried << " retried, "
              << static_cast<long>(seconds * 1000) << " ms)\n";
    return result;
}

} // namespace swp
