#include "spill/insert.hh"

#include <algorithm>

#include "support/diag.hh"

namespace swp
{

namespace
{

/** Live fused register-flow in-edges of a node (stagger base). */
int
countFusedInEdges(const Ddg &g, NodeId n)
{
    int count = 0;
    for (EdgeId e : g.inEdges(n)) {
        const Edge &edge = g.edge(e);
        if (edge.kind == DepKind::RegFlow && edge.nonSpillable)
            ++count;
    }
    return count;
}

/**
 * Insert a spill load feeding `use`, reading per `ref`. The fused delay
 * is the load latency plus one cycle per fused sibling already feeding
 * the consumer, so the reloads of one consumer occupy distinct rows.
 */
NodeId
addSpillLoad(Ddg &g, const Machine &m, NodeId consumer,
             const SpillRef &ref, const std::string &base)
{
    const int delay =
        m.latency(Opcode::Load) + countFusedInEdges(g, consumer);
    const NodeId load = g.addNode(
        Opcode::Load, "Ls_" + base + "_" + g.node(consumer).name,
        NodeOrigin::SpillLoad);
    g.node(load).spillRef = ref;
    g.node(load).nonSpillableValue = true;
    const EdgeId e =
        g.addEdge(load, consumer, DepKind::RegFlow, 0,
                  /*non_spillable=*/true);
    g.edge(e).fusedDelay = delay;
    return load;
}

/** Matches select.cc: a distance-0 single-input store of this value. */
EdgeId
findReusableStore(const Ddg &g, const std::vector<EdgeId> &uses)
{
    for (EdgeId e : uses) {
        const Edge &edge = g.edge(e);
        if (edge.distance != 0)
            continue;
        const Node &consumer = g.node(edge.dst);
        if (consumer.op != Opcode::Store ||
            !consumer.invariantUses.empty()) {
            continue;
        }
        int regInputs = 0;
        for (EdgeId in : g.inEdges(edge.dst)) {
            if (g.edge(in).kind == DepKind::RegFlow)
                ++regInputs;
        }
        if (regInputs == 1)
            return e;
    }
    return -1;
}

SpillEdit
spillInvariant(Ddg &g, const Machine &m, InvId inv)
{
    SWP_ASSERT(!g.invariant(inv).spilled, "invariant ",
               g.invariant(inv).name, " spilled twice");
    SWP_ASSERT(g.invariant(inv).spillable, "invariant ",
               g.invariant(inv).name, " is not spillable");
    const std::string invName = g.invariant(inv).name;
    const std::vector<NodeId> consumers = g.invariant(inv).consumers;

    SpillEdit edit;
    // The store that parks the invariant in memory executes before the
    // loop, so only the per-use reloads cost anything inside the kernel.
    for (NodeId consumer : consumers) {
        SpillRef ref;
        ref.kind = SpillRef::Kind::InvariantMem;
        ref.value = inv;
        addSpillLoad(g, m, consumer, ref, invName);
        ++edit.loadsAdded;

        // The consumer now receives the value through a register; drop
        // one direct invariant use.
        auto &uses = g.node(consumer).invariantUses;
        const auto it = std::find(uses.begin(), uses.end(), inv);
        SWP_ASSERT(it != uses.end(), "invariant bookkeeping out of sync");
        uses.erase(it);
    }
    g.invariant(inv).consumers.clear();
    g.invariant(inv).spilled = true;
    return edit;
}

SpillEdit
spillVariant(Ddg &g, const Machine &m, NodeId producer)
{
    // Note: addNode() may reallocate the node table, so no Node&
    // reference is held across insertions; the name is copied.
    SWP_ASSERT(!g.node(producer).nonSpillableValue, "value of ",
               g.node(producer).name, " is non-spillable");
    const auto uses = g.valueUses(producer);
    SWP_ASSERT(!uses.empty(), "spilling dead value of ",
               g.node(producer).name);
    const std::string prodName = g.node(producer).name;

    SpillEdit edit;

    if (g.node(producer).op == Opcode::Load) {
        // Producer-is-load: the value already lives in memory; re-load
        // it at each use with the use's own iteration shift. The
        // original load keeps running (it may still feed other values
        // in general graphs) but this value's register edges disappear.
        for (EdgeId e : uses) {
            const Edge edge = g.edge(e);
            g.killEdge(e);
            SpillRef ref;
            ref.kind = SpillRef::Kind::ReloadStream;
            ref.value = producer;
            ref.shift = edge.distance;
            addSpillLoad(g, m, edge.dst, ref, prodName);
            ++edit.loadsAdded;
        }
        g.node(producer).nonSpillableValue = true;
        return edit;
    }

    const EdgeId reusable = findReusableStore(g, uses);
    NodeId store = invalidNode;
    if (reusable >= 0) {
        // Reuse the existing store; keep (and fuse) its incoming edge so
        // the residual lifetime producer->store stays minimal.
        store = g.edge(reusable).dst;
        g.edge(reusable).nonSpillable = true;
        g.edge(reusable).fusedDelay =
            m.latency(g.node(producer).op) + countFusedInEdges(g, store);
        edit.reusedStore = true;
    } else {
        store = g.addNode(Opcode::Store, "Ss_" + prodName,
                          NodeOrigin::SpillStore);
        const EdgeId e = g.addEdge(producer, store, DepKind::RegFlow, 0,
                                   /*non_spillable=*/true);
        g.edge(e).fusedDelay = m.latency(g.node(producer).op);
        ++edit.storesAdded;
    }

    for (EdgeId e : uses) {
        if (e == reusable)
            continue;
        const Edge edge = g.edge(e);
        g.killEdge(e);
        SpillRef ref;
        ref.kind = SpillRef::Kind::StoreSlot;
        ref.value = store;
        ref.shift = edge.distance;
        const NodeId load = addSpillLoad(g, m, edge.dst, ref, prodName);
        g.addEdge(store, load, DepKind::Mem, edge.distance);
        ++edit.loadsAdded;
    }

    // The residual producer->store lifetime must never be re-selected.
    g.node(producer).nonSpillableValue = true;
    return edit;
}

/**
 * Spill a single use (Section 6 extension): only the candidate's use
 * edge is served from memory; the value keeps its register for the
 * remaining consumers.
 */
SpillEdit
spillUse(Ddg &g, const Machine &m, NodeId producer, EdgeId use)
{
    const Edge edge = g.edge(use);
    SWP_ASSERT(edge.alive && edge.src == producer,
               "stale use-spill candidate");
    const std::string prodName = g.node(producer).name;

    SpillEdit edit;

    if (g.node(producer).op == Opcode::Load) {
        g.killEdge(use);
        SpillRef ref;
        ref.kind = SpillRef::Kind::ReloadStream;
        ref.value = producer;
        ref.shift = edge.distance;
        addSpillLoad(g, m, edge.dst, ref, prodName);
        ++edit.loadsAdded;
        return edit;
    }

    NodeId store = existingSpillStore(g, producer);
    if (store == invalidNode) {
        const EdgeId reusable = findReusableStore(g, g.valueUses(producer));
        if (reusable >= 0 && reusable != use) {
            store = g.edge(reusable).dst;
            g.edge(reusable).nonSpillable = true;
            g.edge(reusable).fusedDelay =
                m.latency(g.node(producer).op) +
                countFusedInEdges(g, store);
            edit.reusedStore = true;
        } else {
            store = g.addNode(Opcode::Store, "Ss_" + prodName,
                              NodeOrigin::SpillStore);
            const EdgeId e = g.addEdge(producer, store, DepKind::RegFlow,
                                       0, /*non_spillable=*/true);
            g.edge(e).fusedDelay = m.latency(g.node(producer).op);
            ++edit.storesAdded;
            // The residual producer->store tie makes the value
            // non-spillable at value granularity; further long uses can
            // still be peeled off through the parked copy.
            g.node(producer).nonSpillableValue = true;
        }
    }

    g.killEdge(use);
    SpillRef ref;
    ref.kind = SpillRef::Kind::StoreSlot;
    ref.value = store;
    ref.shift = edge.distance;
    const NodeId load = addSpillLoad(g, m, edge.dst, ref, prodName);
    g.addEdge(store, load, DepKind::Mem, edge.distance);
    ++edit.loadsAdded;
    return edit;
}

} // namespace

SpillEdit
insertSpill(Ddg &g, const Machine &m, const SpillCandidate &cand)
{
    if (cand.isInvariant)
        return spillInvariant(g, m, cand.inv);
    if (cand.useEdge >= 0)
        return spillUse(g, m, cand.node, cand.useEdge);
    return spillVariant(g, m, cand.node);
}

} // namespace swp
