#include "spill/select.hh"

#include <algorithm>

#include "support/diag.hh"

namespace swp
{

const char *
spillHeuristicName(SpillHeuristic h)
{
    switch (h) {
      case SpillHeuristic::MaxLT: return "Max(LT)";
      case SpillHeuristic::MaxLTOverTraf: return "Max(LT/Traf)";
    }
    SWP_PANIC("unknown spill heuristic ", int(h));
}

namespace
{

/**
 * A store consumer can serve as the spill store when it stores exactly
 * this value (single register input, no invariant contribution) in the
 * same iteration it is produced (distance 0).
 */
bool
reusableStoreConsumer(const Ddg &g, EdgeId use)
{
    const Edge &edge = g.edge(use);
    if (edge.distance != 0)
        return false;
    const Node &consumer = g.node(edge.dst);
    if (consumer.op != Opcode::Store)
        return false;
    if (!consumer.invariantUses.empty())
        return false;
    int regInputs = 0;
    for (EdgeId e : g.inEdges(edge.dst)) {
        if (g.edge(e).kind == DepKind::RegFlow)
            ++regInputs;
    }
    return regInputs == 1;
}

} // namespace

int
spillCost(const Ddg &g, NodeId producer)
{
    const auto uses = g.valueUses(producer);
    if (uses.empty())
        return 0;

    if (g.node(producer).op == Opcode::Load) {
        // Re-load from the original location: one load per use, no store.
        return int(uses.size());
    }
    for (EdgeId e : uses) {
        if (reusableStoreConsumer(g, e)) {
            // The existing store spills the value; every other use gets
            // a reload.
            return int(uses.size()) - 1;
        }
    }
    // General case: one store plus one load per use.
    return int(uses.size()) + 1;
}

NodeId
existingSpillStore(const Ddg &g, NodeId producer)
{
    for (EdgeId e : g.valueUses(producer)) {
        const Edge &edge = g.edge(e);
        if (edge.nonSpillable &&
            g.node(edge.dst).origin == NodeOrigin::SpillStore) {
            return edge.dst;
        }
    }
    return invalidNode;
}

namespace
{

/**
 * Use-granularity candidate for one value: serving the latest use from
 * memory shrinks the live range by the distance to the second-latest
 * use's read. Only worthwhile for multi-use values whose latest use is
 * strictly later than the rest.
 */
std::optional<SpillCandidate>
useCandidate(const Ddg &g, const LifetimeInfo &lifetimes, NodeId u)
{
    const Lifetime &lt = lifetimes.of(u);
    if (!lt.live || lt.lastUse < 0)
        return std::nullopt;
    const auto uses = g.valueUses(u);
    if (uses.size() < 2 || lt.end <= lt.secondEnd)
        return std::nullopt;

    const Edge &use = g.edge(lt.lastUse);
    if (use.nonSpillable)
        return std::nullopt;  // A reload/store tie must stay.

    // Determine whether the value is (or can be) parked in memory.
    const bool producerIsLoad = g.node(u).op == Opcode::Load;
    const bool parked = existingSpillStore(g, u) != invalidNode;
    if (g.node(u).nonSpillableValue && !producerIsLoad && !parked)
        return std::nullopt;

    SpillCandidate cand;
    cand.node = u;
    cand.useEdge = lt.lastUse;
    cand.lifetime = lt.end - lt.secondEnd;
    cand.cost = (producerIsLoad || parked) ? 1 : 2;
    return cand;
}

/** Shared enumeration body; Vec is any vector of SpillCandidate. */
template <class Vec>
void
spillCandidatesImpl(const Ddg &g, const LifetimeInfo &lifetimes,
                    bool include_uses, Vec &out)
{
    for (NodeId u = 0; u < g.numNodes(); ++u) {
        const Lifetime &lt = lifetimes.of(u);
        if (!lt.live || lt.length() <= 0)
            continue;
        if (g.node(u).nonSpillableValue)
            continue;
        SpillCandidate cand;
        cand.node = u;
        cand.lifetime = lt.length();
        cand.cost = spillCost(g, u);
        out.push_back(cand);
    }
    if (include_uses) {
        for (NodeId u = 0; u < g.numNodes(); ++u) {
            if (auto cand = useCandidate(g, lifetimes, u))
                out.push_back(*cand);
        }
    }

    for (InvId i = 0; i < g.numInvariants(); ++i) {
        const Invariant &inv = g.invariant(i);
        if (inv.spilled || !inv.spillable || inv.consumers.empty())
            continue;
        SpillCandidate cand;
        cand.isInvariant = true;
        cand.inv = i;
        // A loop invariant occupies its register for the whole kernel:
        // lifetime II (Section 3), freeing exactly one register.
        cand.lifetime = lifetimes.ii;
        cand.cost = int(inv.consumers.size());
        out.push_back(cand);
    }
}

} // namespace

std::vector<SpillCandidate>
spillCandidates(const Ddg &g, const LifetimeInfo &lifetimes,
                bool include_uses)
{
    std::vector<SpillCandidate> out;
    spillCandidatesImpl(g, lifetimes, include_uses, out);
    return out;
}

void
spillCandidates(const Ddg &g, const LifetimeInfo &lifetimes,
                bool include_uses, SpillCandidateList &out)
{
    out.clear();
    spillCandidatesImpl(g, lifetimes, include_uses, out);
}

namespace
{

bool
better(const SpillCandidate &a, const SpillCandidate &b, SpillHeuristic h)
{
    switch (h) {
      case SpillHeuristic::MaxLT:
        if (a.lifetime != b.lifetime)
            return a.lifetime > b.lifetime;
        return a.cost < b.cost;
      case SpillHeuristic::MaxLTOverTraf:
        if (a.ratio() != b.ratio())
            return a.ratio() > b.ratio();
        return a.lifetime > b.lifetime;
    }
    SWP_PANIC("unknown spill heuristic ", int(h));
}

std::optional<SpillCandidate>
selectOneImpl(const SpillCandidate *begin, const SpillCandidate *end,
              SpillHeuristic h)
{
    const SpillCandidate *best = nullptr;
    for (const SpillCandidate *cand = begin; cand != end; ++cand) {
        if (!best || better(*cand, *best, h))
            best = cand;
    }
    if (!best)
        return std::nullopt;
    return *best;
}

/** Shared selection body; CandVec/NodeVec are any vectors of
    SpillCandidate/NodeId (pool and chosen arrive empty). */
template <class CandVec, class NodeVec>
void
selectMultipleImpl(const CandVec &candidates, SpillHeuristic h,
                   const LifetimeInfo &lifetimes, int available,
                   CandVec &pool, NodeVec &takenNodes, CandVec &chosen)
{
    pool.assign(candidates.begin(), candidates.end());
    std::stable_sort(pool.begin(), pool.end(),
                     [&](const SpillCandidate &a, const SpillCandidate &b) {
                         return better(a, b, h);
                     });

    // Optimistic estimate: every spilled lifetime removes its largest
    // possible per-cycle register contribution, ceil(LT/II); spilled
    // invariants free exactly their one register.
    long estimate = lifetimes.totalRegisterBound();
    const int ii = lifetimes.ii;
    for (const SpillCandidate &cand : pool) {
        if (estimate <= available)
            break;
        // One action per value per round: a value-level spill
        // invalidates any use-level candidate of the same node (and
        // vice versa).
        if (!cand.isInvariant &&
            std::find(takenNodes.begin(), takenNodes.end(), cand.node) !=
                takenNodes.end()) {
            continue;
        }
        if (!cand.isInvariant)
            takenNodes.push_back(cand.node);
        chosen.push_back(cand);
        if (cand.isInvariant)
            estimate -= 1;
        else
            estimate -= (cand.lifetime + ii - 1) / ii;
    }
    // The caller only asks for spills when the allocation failed; the
    // MaxLive bound can be a register or two below the actual
    // requirement, so always make progress.
    if (chosen.empty() && !pool.empty())
        chosen.push_back(pool.front());
}

} // namespace

std::optional<SpillCandidate>
selectOne(const std::vector<SpillCandidate> &candidates, SpillHeuristic h)
{
    return selectOneImpl(candidates.data(),
                         candidates.data() + candidates.size(), h);
}

std::optional<SpillCandidate>
selectOne(const SpillCandidateList &candidates, SpillHeuristic h)
{
    return selectOneImpl(candidates.data(),
                         candidates.data() + candidates.size(), h);
}

std::vector<SpillCandidate>
selectMultiple(const std::vector<SpillCandidate> &candidates,
               SpillHeuristic h, const LifetimeInfo &lifetimes,
               int available)
{
    std::vector<SpillCandidate> pool, chosen;
    std::vector<NodeId> taken;
    selectMultipleImpl(candidates, h, lifetimes, available, pool, taken,
                       chosen);
    return chosen;
}

void
selectMultiple(const SpillCandidateList &candidates, SpillHeuristic h,
               const LifetimeInfo &lifetimes, int available,
               SpillCandidateList &out)
{
    out.clear();
    Arena &arena = *out.get_allocator().arena();
    SpillCandidateList pool{ArenaAllocator<SpillCandidate>(arena)};
    ArenaVector<NodeId> taken{ArenaAllocator<NodeId>(arena)};
    selectMultipleImpl(candidates, h, lifetimes, available, pool, taken,
                       out);
}

} // namespace swp
