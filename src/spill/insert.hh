/**
 * @file
 * Spill code insertion (Sections 4.2 and 4.3).
 *
 * Spilling a lifetime rewrites the dependence graph: the value's
 * register edges are removed; a store is inserted after the producer and
 * one load before each use; memory edges from the store to the loads
 * carry the original dependence distances, so the new short lifetimes
 * have no distance component. Optimizations: when the producer is a
 * load, the value is re-loaded from its original location and no store
 * is added; when a same-iteration store of the value already exists, it
 * serves as the spill store; loop invariants are stored before entering
 * the loop, so only loads are added.
 *
 * Convergence guarantees: all lifetimes created by spill operations are
 * marked non-spillable, and the edges tying spill loads/stores to their
 * consumers/producers are marked for fusion into complex operations,
 * which the schedulers honour atomically.
 */

#ifndef SWP_SPILL_INSERT_HH
#define SWP_SPILL_INSERT_HH

#include "ir/ddg.hh"
#include "machine/machine.hh"
#include "spill/select.hh"

namespace swp
{

/** Operations inserted by one spill. */
struct SpillEdit
{
    int loadsAdded = 0;
    int storesAdded = 0;
    /** True if an existing store was reused as the spill store. */
    bool reusedStore = false;

    int total() const { return loadsAdded + storesAdded; }
};

/**
 * Apply one spill to the graph.
 *
 * The candidate must be current for `g` (produced by spillCandidates on
 * this graph); spilling a non-spillable or dead value panics. The
 * machine provides the latencies used as fused delays; sibling reloads
 * feeding the same consumer get staggered delays (latency, latency+1,
 * ...) so they never contend for one functional unit in one kernel row,
 * which would make the fused group unschedulable at any II.
 */
SpillEdit insertSpill(Ddg &g, const Machine &m,
                      const SpillCandidate &cand);

} // namespace swp

#endif // SWP_SPILL_INSERT_HH
