/**
 * @file
 * Spill candidate enumeration and selection heuristics (Sections 4.1
 * and 4.5).
 *
 * Candidates are loop-variant values (producing node + its live range in
 * the current schedule) and loop invariants. Two selection heuristics
 * are provided:
 *
 *  - Max(LT): spill the longest lifetime regardless of cost.
 *  - Max(LT/Traf): spill the lifetime with the highest ratio of length
 *    to the number of memory operations its spill code adds.
 *
 * The multi-selection shortcut (Section 4.5) keeps picking candidates
 * while an optimistic estimate of the register requirement — MaxLive
 * minus ceil(LT/II) per selected lifetime — still exceeds the budget.
 * Optimism guarantees spill code is never added in excess, at the price
 * of extra rescheduling rounds for very register-hungry loops.
 */

#ifndef SWP_SPILL_SELECT_HH
#define SWP_SPILL_SELECT_HH

#include <optional>
#include <vector>

#include "ir/ddg.hh"
#include "liferange/lifetimes.hh"
#include "support/arena.hh"

namespace swp
{

/** Lifetime-selection heuristic. */
enum class SpillHeuristic
{
    MaxLT,         ///< Largest lifetime.
    MaxLTOverTraf, ///< Largest lifetime / added memory operations.
};

const char *spillHeuristicName(SpillHeuristic h);

/** A spillable lifetime (whole value, single use, or invariant). */
struct SpillCandidate
{
    bool isInvariant = false;
    NodeId node = invalidNode;  ///< Producer (loop variants).
    InvId inv = -1;             ///< Invariant id (invariants).

    /**
     * When >= 0, only this use edge is spilled (the Section 6
     * "spill uses instead of variables" extension): the value keeps its
     * register for the remaining consumers and `lifetime` holds the
     * cycles the value's live range *shrinks by*, not its full length.
     */
    EdgeId useEdge = -1;

    int lifetime = 0;           ///< LT in cycles (II for invariants).
    int cost = 0;               ///< Memory operations the spill adds.

    double
    ratio() const
    {
        return double(lifetime) / double(cost > 0 ? cost : 1);
    }
};

/**
 * Enumerate every spillable lifetime of the scheduled loop with its
 * length and spill cost. Values marked non-spillable (produced by spill
 * loads or feeding spill stores) and already-spilled invariants are
 * excluded, as are values whose spill would not free anything.
 *
 * @param include_uses Also enumerate single-use candidates: for every
 *        multi-use value, serving the *latest* use from memory shrinks
 *        the live range by the gap to the second-latest use.
 */
std::vector<SpillCandidate> spillCandidates(const Ddg &g,
                                            const LifetimeInfo &lifetimes,
                                            bool include_uses = false);

/**
 * Arena-backed candidate/pick buffers: the spill driver's per-round
 * scratch lives in the evaluating worker's arena (reset between jobs
 * by the batch driver) instead of the heap.
 */
using SpillCandidateList = ArenaVector<SpillCandidate>;

/** spillCandidates into an arena-backed buffer (out is cleared first). */
void spillCandidates(const Ddg &g, const LifetimeInfo &lifetimes,
                     bool include_uses, SpillCandidateList &out);

/**
 * The spill store already parked this value in memory (a previous
 * use-granularity spill), or invalidNode.
 */
NodeId existingSpillStore(const Ddg &g, NodeId producer);

/**
 * Cost of spilling a loop-variant value: loads and stores that would be
 * inserted after the Section 4.2 optimizations (no store when the
 * producer is a load or an existing store of the value is reusable).
 */
int spillCost(const Ddg &g, NodeId producer);

/** Pick the best single candidate under a heuristic. */
std::optional<SpillCandidate>
selectOne(const std::vector<SpillCandidate> &candidates, SpillHeuristic h);

/** selectOne over an arena-backed candidate list. */
std::optional<SpillCandidate> selectOne(const SpillCandidateList &candidates,
                                        SpillHeuristic h);

/**
 * Multi-selection (Section 4.5): greedily pick candidates until the
 * optimistic estimate `maxLive - sum(ceil(LT/II))` (plus remaining
 * invariant registers) drops to the available register count.
 *
 * @param candidates All current candidates.
 * @param h          Ranking heuristic.
 * @param lifetimes  Lifetime info of the current schedule.
 * @param available  Register budget.
 * @return Selected candidates, at least one when any exists.
 */
std::vector<SpillCandidate>
selectMultiple(const std::vector<SpillCandidate> &candidates,
               SpillHeuristic h, const LifetimeInfo &lifetimes,
               int available);

/** selectMultiple into an arena-backed pick list (out is cleared
    first); the sort/dedup scratch comes from out's arena too. */
void selectMultiple(const SpillCandidateList &candidates, SpillHeuristic h,
                    const LifetimeInfo &lifetimes, int available,
                    SpillCandidateList &out);

} // namespace swp

#endif // SWP_SPILL_SELECT_HH
