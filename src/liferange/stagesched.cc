#include "liferange/stagesched.hh"

#include <algorithm>

#include "liferange/lifetimes.hh"
#include "sched/groups.hh"
#include "support/diag.hh"

namespace swp
{

namespace
{

/**
 * Feasible stage-shift range [kmin, kmax] for one group: every
 * dependence touching the group must stay satisfied when all members
 * move by k*II. Fused edges are intra-group and unaffected.
 */
std::pair<long, long>
shiftRange(const Ddg &g, const Machine &m, const GroupSet &groups,
           const Schedule &sched, int gi)
{
    const int ii = sched.ii();
    // Moving past the schedule span cannot shorten any lifetime.
    const long cap = sched.stageCount() + 1;
    long kmin = -cap, kmax = cap;
    for (NodeId v : groups.group(gi).members) {
        for (EdgeId e : g.inEdges(v)) {
            const Edge &edge = g.edge(e);
            if (groups.groupOf(edge.src) == gi)
                continue;
            // t(v) + k*II >= t(u) + lat - II*dist.
            const long slack = sched.time(v) -
                               (sched.time(edge.src) +
                                m.latency(g.node(edge.src).op) -
                                long(ii) * edge.distance);
            kmin = std::max(kmin, -(slack / ii) - (slack < 0 ? 1 : 0));
        }
        for (EdgeId e : g.outEdges(v)) {
            const Edge &edge = g.edge(e);
            if (groups.groupOf(edge.dst) == gi)
                continue;
            // t(w) >= t(v) + k*II + lat - II*dist.
            const long slack = sched.time(edge.dst) -
                               (sched.time(v) +
                                m.latency(g.node(v).op) -
                                long(ii) * edge.distance);
            kmax = std::min(kmax, slack / ii - (slack < 0 ? 1 : 0));
        }
    }
    return {kmin, kmax};
}

/** Apply a stage shift to a group. */
void
applyShift(const GroupSet &groups, Schedule &sched, int gi, long k)
{
    for (NodeId v : groups.group(gi).members)
        sched.set(v, sched.time(v) + int(k) * sched.ii(), sched.unit(v));
}

} // namespace

StageSchedResult
stageSchedule(const Ddg &g, const Machine &m, const Schedule &sched)
{
    SWP_ASSERT(sched.complete(), "stage scheduling needs a full schedule");

    StageSchedResult result;
    result.sched = sched;
    result.maxLiveBefore = analyzeLifetimes(g, sched).maxLive;

    const GroupSet groups(g, m);
    Schedule &work = result.sched;

    long best = totalLifetime(analyzeLifetimes(g, work));
    bool improved = true;
    int pass = 0;
    while (improved && pass++ < 8) {
        improved = false;
        for (int gi = 0; gi < groups.numGroups(); ++gi) {
            const auto [kmin, kmax] =
                shiftRange(g, m, groups, work, gi);
            if (kmin > kmax || (kmin == 0 && kmax == 0))
                continue;
            long bestK = 0;
            long bestTotal = best;
            for (long k = kmin; k <= kmax; ++k) {
                if (k == 0)
                    continue;
                applyShift(groups, work, gi, k);
                const long total =
                    totalLifetime(analyzeLifetimes(g, work));
                if (total < bestTotal) {
                    bestTotal = total;
                    bestK = k;
                }
                applyShift(groups, work, gi, -k);
            }
            if (bestK != 0) {
                applyShift(groups, work, gi, bestK);
                best = bestTotal;
                ++result.moves;
                improved = true;
            }
        }
    }

    work.normalize();

    // Never accept a pessimization of the register bound; shorter total
    // lifetime almost always means smaller MaxLive, but not strictly.
    result.maxLiveAfter = analyzeLifetimes(g, work).maxLive;
    if (result.maxLiveAfter > result.maxLiveBefore) {
        result.sched = sched;
        result.maxLiveAfter = result.maxLiveBefore;
        result.moves = 0;
    }

    std::string why;
    SWP_ASSERT(validateSchedule(g, m, result.sched, &why),
               "stage scheduling broke the schedule: ", why);
    return result;
}

} // namespace swp
