/**
 * @file
 * Stage scheduling: a register-reducing post-pass over modulo
 * schedules, after Eichenberger and Davidson (MICRO-28, 1995), the
 * paper's reference [13].
 *
 * Moving an operation by a whole number of stages (multiples of II)
 * keeps its kernel row and functional unit — the modulo reservation
 * table is untouched — but changes the distances between producers and
 * consumers, and with them the lifetimes. This pass greedily re-stages
 * complex groups (fused members move together) while any move shortens
 * the total lifetime, which tightens MaxLive without costing a single
 * cycle of II.
 *
 * The paper's evaluation uses a register-sensitive scheduler (HRMS), so
 * stage scheduling mostly matters for register-insensitive schedulers
 * like IMS; the ablation_stagesched bench quantifies exactly that.
 */

#ifndef SWP_LIFERANGE_STAGESCHED_HH
#define SWP_LIFERANGE_STAGESCHED_HH

#include "ir/ddg.hh"
#include "machine/machine.hh"
#include "sched/schedule.hh"

namespace swp
{

/** Outcome of the stage-scheduling post-pass. */
struct StageSchedResult
{
    Schedule sched;      ///< Improved (or unchanged) schedule.
    int maxLiveBefore = 0;
    int maxLiveAfter = 0;
    int moves = 0;       ///< Stage moves applied.
};

/**
 * Re-stage a complete schedule to reduce its register requirements.
 * The result has the same II, rows and units, validates, and never has
 * a larger MaxLive than the input.
 */
StageSchedResult stageSchedule(const Ddg &g, const Machine &m,
                               const Schedule &sched);

} // namespace swp

#endif // SWP_LIFERANGE_STAGESCHED_HH
