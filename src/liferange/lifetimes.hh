/**
 * @file
 * Lifetime analysis of modulo schedules (Sections 2.3 and 2.4).
 *
 * A loop-variant value is alive from the issue cycle of its producer to
 * the issue cycle of its last consumer (the paper's execution model).
 * Its lifetime decomposes into a scheduling component
 * LTSch = t(last consumer) - t(producer) and a distance component
 * LTDist = delta(producer, last consumer) * II; the distance component
 * is what the increase-II strategy can never shrink.
 *
 * Overlapping the lifetimes of consecutive iterations yields a pressure
 * pattern of length II whose maximum, MaxLive, closely approximates the
 * register requirement of the schedule.
 */

#ifndef SWP_LIFERANGE_LIFETIMES_HH
#define SWP_LIFERANGE_LIFETIMES_HH

#include <vector>

#include "ir/ddg.hh"
#include "machine/machine.hh"
#include "sched/schedule.hh"

namespace swp
{

/** Lifetime of one loop-variant value. */
struct Lifetime
{
    NodeId producer = invalidNode;
    bool live = false;     ///< Produces a value with at least one use.
    int start = 0;         ///< Issue cycle of the producer.
    int end = 0;           ///< Issue cycle (+II*dist) of the last consumer.
    int schedComponent = 0;  ///< LTSch of the critical (last) consumer.
    int distComponent = 0;   ///< LTDist of the critical consumer.

    /** Use edge realizing `end` (the critical consumer). */
    EdgeId lastUse = -1;

    /**
     * Read cycle of the latest *other* use; equals `start` for
     * single-use values. `end - secondEnd` is the live-range shrink of
     * spilling only the critical use (Section 6 extension).
     */
    int secondEnd = 0;

    int length() const { return end - start; }
};

/** Lifetimes and register pressure of a complete schedule. */
struct LifetimeInfo
{
    int ii = 0;
    /** Indexed by producing node; `live` false for non-values. */
    std::vector<Lifetime> lifetimes;
    /** Loop-variant values live per kernel row. */
    std::vector<int> pressure;
    /** max(pressure): register bound for loop variants. */
    int maxLive = 0;
    /** Live (non-spilled) loop invariants: one register each. */
    int invariantCount = 0;

    /** MaxLive plus invariant registers. */
    int totalRegisterBound() const { return maxLive + invariantCount; }

    const Lifetime &
    of(NodeId n) const
    {
        return lifetimes[std::size_t(n)];
    }
};

/** Compute lifetimes, pressure pattern and MaxLive for a schedule. */
LifetimeInfo analyzeLifetimes(const Ddg &g, const Schedule &sched);

/**
 * Sum of loop-variant lifetime lengths: a lower bound on the register
 * cycles consumed per kernel iteration; ceil(sum / II) lower-bounds the
 * rotating register count.
 */
long totalLifetime(const LifetimeInfo &info);

/**
 * Modulo-variable-expansion unroll factor: the number of simultaneous
 * instances of the most enduring value, max_v ceil(LT_v / II)
 * (minimum 1). Section 2.3 / Lam 1988.
 */
int mveUnrollFactor(const LifetimeInfo &lifetimes);

} // namespace swp

#endif // SWP_LIFERANGE_LIFETIMES_HH
