#include "liferange/lifetimes.hh"

#include <algorithm>

#include "support/diag.hh"

namespace swp
{

LifetimeInfo
analyzeLifetimes(const Ddg &g, const Schedule &sched)
{
    SWP_ASSERT(sched.complete(), "lifetime analysis needs a full schedule");
    SWP_ASSERT(sched.numNodes() == g.numNodes(),
               "schedule and graph sizes differ");
    const int ii = sched.ii();

    LifetimeInfo info;
    info.ii = ii;
    info.lifetimes.assign(std::size_t(g.numNodes()), Lifetime{});
    info.pressure.assign(std::size_t(ii), 0);
    info.invariantCount = g.numLiveInvariants();

    for (NodeId u = 0; u < g.numNodes(); ++u) {
        Lifetime &lt = info.lifetimes[std::size_t(u)];
        lt.producer = u;
        if (!producesValue(g.node(u).op))
            continue;

        const auto uses = g.valueUses(u);
        if (uses.empty())
            continue;

        lt.live = true;
        lt.start = sched.time(u);
        lt.end = lt.start;
        lt.secondEnd = lt.start;
        for (EdgeId e : uses) {
            const Edge &edge = g.edge(e);
            const int useAt =
                sched.time(edge.dst) + ii * edge.distance;
            if (useAt > lt.end) {
                lt.secondEnd = lt.end;
                lt.end = useAt;
                lt.lastUse = e;
                lt.schedComponent = sched.time(edge.dst) - lt.start;
                lt.distComponent = ii * edge.distance;
            } else if (useAt > lt.secondEnd) {
                lt.secondEnd = useAt;
            }
        }

        // Fold the lifetime into the length-II pressure pattern: a
        // lifetime of length L adds floor(L/II) at every row plus one on
        // L mod II rows starting at its start row.
        const int len = lt.length();
        const int full = len / ii;
        const int rem = len % ii;
        for (int r = 0; r < ii; ++r)
            info.pressure[std::size_t(r)] += full;
        const int startRow = Schedule::floorMod(lt.start, ii);
        for (int k = 0; k < rem; ++k) {
            info.pressure[std::size_t((startRow + k) % ii)] += 1;
        }
    }

    info.maxLive = 0;
    for (int p : info.pressure)
        info.maxLive = std::max(info.maxLive, p);
    return info;
}

long
totalLifetime(const LifetimeInfo &info)
{
    long total = 0;
    for (const Lifetime &lt : info.lifetimes) {
        if (lt.live)
            total += lt.length();
    }
    return total;
}

int
mveUnrollFactor(const LifetimeInfo &lifetimes)
{
    int factor = 1;
    for (const Lifetime &lt : lifetimes.lifetimes) {
        if (!lt.live)
            continue;
        factor = std::max(
            factor, (lt.length() + lifetimes.ii - 1) / lifetimes.ii);
    }
    return factor;
}

} // namespace swp
