/**
 * @file
 * ASCII table and CSV rendering used by the benchmark harnesses to print
 * the rows/series of the paper's tables and figures.
 */

#ifndef SWP_SUPPORT_TABLE_HH
#define SWP_SUPPORT_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace swp
{

/**
 * A simple column-aligned text table.
 *
 * Cells are strings; numeric convenience setters format with a fixed
 * precision. The table renders either as aligned ASCII (for terminals) or
 * as CSV (for downstream plotting).
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    /** Begin a new row; subsequent add() calls fill it left to right. */
    Table &row();

    Table &add(const std::string &cell);
    Table &add(const char *cell);
    Table &add(long v);
    Table &add(int v);
    Table &add(std::size_t v);
    /** Floating point cell with the given number of decimals. */
    Table &add(double v, int decimals = 2);

    /** Number of data rows so far. */
    std::size_t numRows() const { return rows_.size(); }

    /** Column headers (for machine-readable re-serialization). */
    const std::vector<std::string> &header() const { return header_; }

    /** Formatted cells, row-major (for machine-readable re-serialization). */
    const std::vector<std::vector<std::string>> &rows() const
    {
        return rows_;
    }

    /** Render as aligned ASCII with a rule under the header. */
    void print(std::ostream &os) const;

    /** Render as CSV. */
    void printCsv(std::ostream &os) const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace swp

#endif // SWP_SUPPORT_TABLE_HH
