#include "support/table.hh"

#include <algorithm>
#include <iomanip>

#include "support/diag.hh"
#include "support/strutil.hh"

namespace swp
{

Table::Table(std::vector<std::string> header) : header_(std::move(header))
{
    SWP_ASSERT(!header_.empty(), "table needs at least one column");
}

Table &
Table::row()
{
    rows_.emplace_back();
    return *this;
}

Table &
Table::add(const std::string &cell)
{
    SWP_ASSERT(!rows_.empty(), "add() before row()");
    SWP_ASSERT(rows_.back().size() < header_.size(),
               "row has more cells than header columns");
    rows_.back().push_back(cell);
    return *this;
}

Table &
Table::add(const char *cell)
{
    return add(std::string(cell));
}

Table &
Table::add(long v)
{
    return add(strprintf("%ld", v));
}

Table &
Table::add(int v)
{
    return add(long(v));
}

Table &
Table::add(std::size_t v)
{
    return add(strprintf("%zu", v));
}

Table &
Table::add(double v, int decimals)
{
    return add(strprintf("%.*f", decimals, v));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    }

    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < header_.size(); ++c) {
            const std::string &text = c < cells.size() ? cells[c] : "";
            os << std::left << std::setw(int(width[c])) << text;
            if (c + 1 < header_.size())
                os << "  ";
        }
        os << '\n';
    };

    emit(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < header_.size(); ++c)
        total += width[c] + (c + 1 < header_.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c)
                os << ',';
            os << cells[c];
        }
        os << '\n';
    };
    emit(header_);
    for (const auto &row : rows_)
        emit(row);
}

} // namespace swp
