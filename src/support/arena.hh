/**
 * @file
 * A per-worker bump allocator for per-job transients.
 *
 * Each pool worker of the batch driver owns one Arena and resets it
 * between jobs: the transient buffers a job needs (spill working sets,
 * candidate lists, render buffers) are bump-allocated out of a few
 * retained blocks instead of hitting the global allocator — and, more
 * importantly under a full pool, instead of hitting the global
 * allocator's *locks*. reset() is O(blocks): it rewinds the bump
 * cursors and keeps the blocks, so a warmed worker stops allocating
 * entirely once its largest job has sized the arena.
 *
 * Not thread-safe by design — an Arena belongs to exactly one worker.
 * Trivially-destructible payloads only: reset() never runs destructors
 * (ArenaAllocator enforces this at compile time for containers).
 */

#ifndef SWP_SUPPORT_ARENA_HH
#define SWP_SUPPORT_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

namespace swp
{

class Arena
{
  public:
    /** Usage counters; highWaterBytes is the max live-at-once total. */
    struct Stats
    {
        std::size_t bytesInUse = 0;    ///< Live since the last reset().
        std::size_t highWaterBytes = 0;
        std::size_t blockBytes = 0;    ///< Total capacity retained.
        std::size_t blocks = 0;
        std::size_t allocations = 0;   ///< allocate() calls, lifetime.
        std::size_t resets = 0;
    };

    explicit Arena(std::size_t minBlockBytes = 64 * 1024)
        : minBlockBytes_(minBlockBytes < 64 ? 64 : minBlockBytes)
    {
    }

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /** Raw bytes with the given alignment (power of two). */
    void *
    allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t))
    {
        ++allocations_;
        if (bytes == 0)
            bytes = 1;
        while (current_ < blocks_.size()) {
            Block &b = blocks_[current_];
            const std::size_t aligned = (b.used + align - 1) & ~(align - 1);
            if (aligned + bytes <= b.size) {
                b.used = aligned + bytes;
                bump(bytes);
                return b.data.get() + aligned;
            }
            // The next retained block starts empty; oversized requests
            // fall through until a fresh block is sized to fit.
            if (current_ + 1 >= blocks_.size())
                break;
            ++current_;
        }
        const std::size_t size =
            bytes + align > minBlockBytes_ ? bytes + align : minBlockBytes_;
        blocks_.push_back(Block{std::unique_ptr<char[]>(new char[size]),
                                size, 0});
        blockBytes_ += size;
        current_ = blocks_.size() - 1;
        Block &b = blocks_.back();
        // new[] returns max_align storage; realign defensively anyway.
        const std::uintptr_t base =
            reinterpret_cast<std::uintptr_t>(b.data.get());
        const std::size_t aligned = std::size_t(
            ((base + align - 1) & ~(std::uintptr_t(align) - 1)) - base);
        b.used = aligned + bytes;
        bump(bytes);
        return b.data.get() + aligned;
    }

    /** n default-constructible Ts (uninitialized storage for trivial T). */
    template <typename T>
    T *
    allocate(std::size_t n)
    {
        static_assert(std::is_trivially_destructible<T>::value,
                      "Arena::reset never runs destructors");
        return static_cast<T *>(allocate(n * sizeof(T), alignof(T)));
    }

    /** Rewind every block; retains the memory for the next job. */
    void
    reset()
    {
        for (Block &b : blocks_)
            b.used = 0;
        current_ = 0;
        bytesInUse_ = 0;
        ++resets_;
    }

    Stats
    stats() const
    {
        return {bytesInUse_, highWater_, blockBytes_, blocks_.size(),
                allocations_, resets_};
    }

  private:
    struct Block
    {
        std::unique_ptr<char[]> data;
        std::size_t size = 0;
        std::size_t used = 0;
    };

    void
    bump(std::size_t bytes)
    {
        bytesInUse_ += bytes;
        if (bytesInUse_ > highWater_)
            highWater_ = bytesInUse_;
    }

    std::size_t minBlockBytes_;
    std::vector<Block> blocks_;
    std::size_t current_ = 0;
    std::size_t bytesInUse_ = 0;
    std::size_t highWater_ = 0;
    std::size_t blockBytes_ = 0;
    std::size_t allocations_ = 0;
    std::size_t resets_ = 0;
};

/**
 * std allocator adaptor so standard containers can live in an Arena:
 *
 *   ArenaVector<int> v(ArenaAllocator<int>(arena));
 *
 * deallocate() is a no-op (the arena reclaims on reset), so container
 * growth leaks the old buffer into the arena until the next reset —
 * reserve() ahead where the size is known.
 */
template <typename T>
class ArenaAllocator
{
  public:
    using value_type = T;

    explicit ArenaAllocator(Arena &arena) : arena_(&arena) {}

    template <typename U>
    ArenaAllocator(const ArenaAllocator<U> &other) : arena_(other.arena())
    {
    }

    T *allocate(std::size_t n) { return arena_->template allocate<T>(n); }
    void deallocate(T *, std::size_t) {}

    Arena *arena() const { return arena_; }

    template <typename U>
    bool operator==(const ArenaAllocator<U> &o) const
    {
        return arena_ == o.arena();
    }
    template <typename U>
    bool operator!=(const ArenaAllocator<U> &o) const
    {
        return arena_ != o.arena();
    }

  private:
    Arena *arena_;
};

template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

} // namespace swp

#endif // SWP_SUPPORT_ARENA_HH
