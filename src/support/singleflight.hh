/**
 * @file
 * A thread-safe memo cache with single-flight computation and an
 * optional LRU size cap.
 *
 * The batch driver's memos (MII/RecMII bounds, schedule probes) are hit
 * by every worker of the pool. A plain check-compute-insert memo lets
 * two workers race to compute the same key — both pay the (expensive)
 * computation and one insert silently wins. This cache arbitrates at
 * insertion time instead: exactly one caller computes each key while
 * the others block on that entry, so duplicate computation is
 * structurally impossible. The stats() counters expose that guarantee
 * to the tests (computes == entries + evictions always).
 *
 * A capacity of 0 (the default) keeps every entry forever — right for
 * one-shot grid evaluations, where the working set is the grid. A
 * positive capacity bounds the map with least-recently-used eviction
 * for long-lived services embedding the driver: entries are evicted
 * coldest-first once the cap is exceeded, in-flight computations are
 * never evicted (their waiters hold the entry alive and single-flight
 * must keep arbitrating them), and an evicted key is simply recomputed
 * on its next request — eviction can change how much work is done,
 * never any result.
 */

#ifndef SWP_SUPPORT_SINGLEFLIGHT_HH
#define SWP_SUPPORT_SINGLEFLIGHT_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

namespace swp
{

/** Observability counters of a SingleFlightCache. */
struct SingleFlightStats
{
    /** Total lookups. */
    long requests = 0;
    /** Computations actually run (failed ones included). */
    long computes = 0;
    /** Distinct keys currently cached. */
    long entries = 0;
    /** Entries dropped by the LRU cap. Absent failed computations
        (which count in computes but leave no entry),
        computes - entries - evictions counts duplicate computations —
        provably zero. */
    long evictions = 0;
};

/**
 * Map from Key to Value where each key's value is computed exactly
 * once per residency, by the first requester; concurrent requesters for
 * the same key wait for that computation instead of repeating it.
 */
template <typename Key, typename Value>
class SingleFlightCache
{
  public:
    using Stats = SingleFlightStats;

    /** capacity == 0 means unbounded (no eviction). */
    explicit SingleFlightCache(std::size_t capacity = 0)
        : capacity_(capacity)
    {
    }

    std::size_t capacity() const { return capacity_; }

    /**
     * The cached value for key; when absent, compute() fills it. The
     * first requester of a key runs compute() (without holding the map
     * lock); later requesters get the cached copy, after onHit(value)
     * — the hook where callers verify the hit (e.g. a debug key
     * collision check). A compute() exception propagates to every
     * caller waiting on the entry and the key is dropped, so a later
     * request retries. Every lookup refreshes the key's LRU position.
     */
    template <typename Compute, typename OnHit>
    Value
    getOrCompute(const Key &key, Compute &&compute, OnHit &&onHit)
    {
        std::shared_ptr<Entry> entry;
        bool owner = false;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++requests_;
            Slot &slot = map_[key];
            if (!slot.entry) {
                slot.entry = std::make_shared<Entry>();
                lru_.push_front(key);
                slot.lruIt = lru_.begin();
                owner = true;
            } else {
                lru_.splice(lru_.begin(), lru_, slot.lruIt);
            }
            entry = slot.entry;
        }

        if (owner) {
            Value value{};
            std::exception_ptr error;
            try {
                value = compute();
            } catch (...) {
                error = std::current_exception();
            }
            {
                std::lock_guard<std::mutex> lock(entry->m);
                entry->value = std::move(value);
                entry->error = error;
                entry->done.store(true, std::memory_order_release);
            }
            entry->cv.notify_all();
            {
                std::lock_guard<std::mutex> lock(mutex_);
                ++computes_;
                if (error)
                    eraseIfEntry(key, entry);
                else
                    enforceCapacity();
            }
            if (error)
                std::rethrow_exception(error);
            return entry->value;
        }

        std::unique_lock<std::mutex> lock(entry->m);
        entry->cv.wait(lock, [&] {
            return entry->done.load(std::memory_order_acquire);
        });
        if (entry->error)
            std::rethrow_exception(entry->error);
        onHit(static_cast<const Value &>(entry->value));
        return entry->value;
    }

    Stats
    stats() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return {requests_, computes_, long(map_.size()), evictions_};
    }

    void
    clear()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        map_.clear();
        lru_.clear();
    }

  private:
    struct Entry
    {
        std::mutex m;
        std::condition_variable cv;
        /** Atomic so the eviction scan can read it under the map lock
            alone (writes happen under this entry's own mutex). */
        std::atomic<bool> done{false};
        Value value{};
        std::exception_ptr error;
    };

    struct Slot
    {
        std::shared_ptr<Entry> entry;
        typename std::list<Key>::iterator lruIt;
    };

    /**
     * Drop key from the map and the LRU list, but only while it still
     * maps to `e` (map lock held). A failed computation's entry may
     * have been evicted and replaced by a fresh in-flight slot in the
     * window between the compute and this cleanup; erasing blindly
     * would strand that successor's single-flight arbitration.
     */
    void
    eraseIfEntry(const Key &key, const std::shared_ptr<Entry> &e)
    {
        const auto it = map_.find(key);
        if (it == map_.end() || it->second.entry != e)
            return;
        lru_.erase(it->second.lruIt);
        map_.erase(it);
    }

    /**
     * Evict coldest done entries until the cap is met (map lock held).
     * In-flight entries are skipped: their waiters must keep finding
     * the shared entry, and a cache full of in-flight work is simply
     * allowed to exceed the cap until those computations land.
     */
    void
    enforceCapacity()
    {
        if (capacity_ == 0)
            return;
        auto it = lru_.end();
        while (map_.size() > capacity_ && it != lru_.begin()) {
            --it;
            const auto slot = map_.find(*it);
            if (!slot->second.entry->done.load(std::memory_order_acquire))
                continue;
            map_.erase(slot);
            it = lru_.erase(it);
            ++evictions_;
        }
    }

    std::size_t capacity_ = 0;
    mutable std::mutex mutex_;
    std::map<Key, Slot> map_;
    /** Front = most recently used. */
    std::list<Key> lru_;
    long requests_ = 0;
    long computes_ = 0;
    long evictions_ = 0;
};

} // namespace swp

#endif // SWP_SUPPORT_SINGLEFLIGHT_HH
