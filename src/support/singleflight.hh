/**
 * @file
 * A thread-safe memo cache with single-flight computation.
 *
 * The batch driver's memos (MII/RecMII bounds, schedule probes) are hit
 * by every worker of the pool. A plain check-compute-insert memo lets
 * two workers race to compute the same key — both pay the (expensive)
 * computation and one insert silently wins. This cache arbitrates at
 * insertion time instead: exactly one caller computes each key while
 * the others block on that entry, so duplicate computation is
 * structurally impossible. The stats() counters expose that guarantee
 * to the tests (computes == entries always).
 */

#ifndef SWP_SUPPORT_SINGLEFLIGHT_HH
#define SWP_SUPPORT_SINGLEFLIGHT_HH

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

namespace swp
{

/** Observability counters of a SingleFlightCache. */
struct SingleFlightStats
{
    /** Total lookups. */
    long requests = 0;
    /** Computations actually run (failed ones included). */
    long computes = 0;
    /** Distinct keys cached; computes - entries counts duplicates. */
    long entries = 0;
};

/**
 * Map from Key to Value where each key's value is computed exactly
 * once, by the first requester; concurrent requesters for the same key
 * wait for that computation instead of repeating it.
 */
template <typename Key, typename Value>
class SingleFlightCache
{
  public:
    using Stats = SingleFlightStats;

    /**
     * The cached value for key; when absent, compute() fills it. The
     * first requester of a key runs compute() (without holding the map
     * lock); later requesters get the cached copy, after onHit(value)
     * — the hook where callers verify the hit (e.g. a debug key
     * collision check). A compute() exception propagates to every
     * caller waiting on the entry and the key is dropped, so a later
     * request retries.
     */
    template <typename Compute, typename OnHit>
    Value
    getOrCompute(const Key &key, Compute &&compute, OnHit &&onHit)
    {
        std::shared_ptr<Entry> entry;
        bool owner = false;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++requests_;
            std::shared_ptr<Entry> &slot = map_[key];
            if (!slot) {
                slot = std::make_shared<Entry>();
                owner = true;
            }
            entry = slot;
        }

        if (owner) {
            Value value{};
            std::exception_ptr error;
            try {
                value = compute();
            } catch (...) {
                error = std::current_exception();
            }
            {
                std::lock_guard<std::mutex> lock(entry->m);
                entry->value = std::move(value);
                entry->error = error;
                entry->done = true;
            }
            entry->cv.notify_all();
            {
                std::lock_guard<std::mutex> lock(mutex_);
                ++computes_;
                if (error)
                    map_.erase(key);
            }
            if (error)
                std::rethrow_exception(error);
            return entry->value;
        }

        std::unique_lock<std::mutex> lock(entry->m);
        entry->cv.wait(lock, [&] { return entry->done; });
        if (entry->error)
            std::rethrow_exception(entry->error);
        onHit(static_cast<const Value &>(entry->value));
        return entry->value;
    }

    Stats
    stats() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return {requests_, computes_, long(map_.size())};
    }

    void
    clear()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        map_.clear();
    }

  private:
    struct Entry
    {
        std::mutex m;
        std::condition_variable cv;
        bool done = false;
        Value value{};
        std::exception_ptr error;
    };

    mutable std::mutex mutex_;
    std::map<Key, std::shared_ptr<Entry>> map_;
    long requests_ = 0;
    long computes_ = 0;
};

} // namespace swp

#endif // SWP_SUPPORT_SINGLEFLIGHT_HH
