/**
 * @file
 * A thread-safe memo cache with single-flight computation and an
 * optional LRU size cap.
 *
 * The batch driver's memos (MII/RecMII bounds, schedule probes) are hit
 * by every worker of the pool. A plain check-compute-insert memo lets
 * two workers race to compute the same key — both pay the (expensive)
 * computation and one insert silently wins. This cache arbitrates at
 * insertion time instead: exactly one caller computes each key while
 * the others block on that entry, so duplicate computation is
 * structurally impossible. The stats() counters expose that guarantee
 * to the tests (computes == entries + evictions always).
 *
 * A capacity of 0 (the default) keeps every entry forever — right for
 * one-shot grid evaluations, where the working set is the grid. A
 * positive capacity bounds the map with least-recently-used eviction
 * for long-lived services embedding the driver: entries are evicted
 * coldest-first once the cap is exceeded, in-flight computations are
 * never evicted (their waiters hold the entry alive and single-flight
 * must keep arbitrating them), and an evicted key is simply recomputed
 * on its next request — eviction can change how much work is done,
 * never any result.
 *
 * SingleFlightCache serializes every lookup on one mutex, which is fine
 * for a handful of workers but becomes the bottleneck of the whole
 * batch path once the pool grows. StripedSingleFlightCache below keeps
 * the exact same contract (and the same computes == entries + evictions
 * invariant, aggregated) while sharding keys across independent stripes
 * by fingerprint hash, so unrelated keys never contend and hot keys of
 * an uncapped cache are served under a shared (reader) lock.
 */

#ifndef SWP_SUPPORT_SINGLEFLIGHT_HH
#define SWP_SUPPORT_SINGLEFLIGHT_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

namespace swp
{

/**
 * Seconds this thread has spent blocked waiting for another thread's
 * single-flight computation to land. The per-worker perf counters read
 * this before/after each job to split wall time into "scheduling" vs
 * "waiting on the memo" without any extra plumbing through the memos.
 */
inline double &
singleFlightWaitSeconds()
{
    thread_local double seconds = 0.0;
    return seconds;
}

/** Observability counters of a SingleFlightCache. */
struct SingleFlightStats
{
    /** Total lookups. */
    long requests = 0;
    /** Computations actually run (failed ones included). */
    long computes = 0;
    /** Distinct keys currently cached. */
    long entries = 0;
    /** Entries dropped by the LRU cap. Absent failed computations
        (which count in computes but leave no entry),
        computes - entries - evictions counts duplicate computations —
        provably zero. */
    long evictions = 0;
};

/**
 * Map from Key to Value where each key's value is computed exactly
 * once per residency, by the first requester; concurrent requesters for
 * the same key wait for that computation instead of repeating it.
 */
template <typename Key, typename Value>
class SingleFlightCache
{
  public:
    using Stats = SingleFlightStats;

    /** capacity == 0 means unbounded (no eviction). */
    explicit SingleFlightCache(std::size_t capacity = 0)
        : capacity_(capacity)
    {
    }

    std::size_t capacity() const { return capacity_; }

    /**
     * The cached value for key; when absent, compute() fills it. The
     * first requester of a key runs compute() (without holding the map
     * lock); later requesters get the cached copy, after onHit(value)
     * — the hook where callers verify the hit (e.g. a debug key
     * collision check). A compute() exception propagates to every
     * caller waiting on the entry and the key is dropped, so a later
     * request retries. Every lookup refreshes the key's LRU position.
     */
    template <typename Compute, typename OnHit>
    Value
    getOrCompute(const Key &key, Compute &&compute, OnHit &&onHit)
    {
        std::shared_ptr<Entry> entry;
        bool owner = false;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++requests_;
            Slot &slot = map_[key];
            if (!slot.entry) {
                slot.entry = std::make_shared<Entry>();
                lru_.push_front(key);
                slot.lruIt = lru_.begin();
                owner = true;
            } else {
                lru_.splice(lru_.begin(), lru_, slot.lruIt);
            }
            entry = slot.entry;
        }

        if (owner) {
            Value value{};
            std::exception_ptr error;
            try {
                value = compute();
            } catch (...) {
                error = std::current_exception();
            }
            {
                std::lock_guard<std::mutex> lock(entry->m);
                entry->value = std::move(value);
                entry->error = error;
                entry->done.store(true, std::memory_order_release);
            }
            entry->cv.notify_all();
            {
                std::lock_guard<std::mutex> lock(mutex_);
                ++computes_;
                if (error)
                    eraseIfEntry(key, entry);
                else
                    enforceCapacity();
            }
            if (error)
                std::rethrow_exception(error);
            return entry->value;
        }

        std::unique_lock<std::mutex> lock(entry->m);
        if (!entry->done.load(std::memory_order_acquire)) {
            const auto start = std::chrono::steady_clock::now();
            entry->cv.wait(lock, [&] {
                return entry->done.load(std::memory_order_acquire);
            });
            singleFlightWaitSeconds() +=
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
        }
        if (entry->error)
            std::rethrow_exception(entry->error);
        onHit(static_cast<const Value &>(entry->value));
        return entry->value;
    }

    Stats
    stats() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return {requests_, computes_, long(map_.size()), evictions_};
    }

    void
    clear()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        map_.clear();
        lru_.clear();
    }

  private:
    struct Entry
    {
        std::mutex m;
        std::condition_variable cv;
        /** Atomic so the eviction scan can read it under the map lock
            alone (writes happen under this entry's own mutex). */
        std::atomic<bool> done{false};
        Value value{};
        std::exception_ptr error;
    };

    struct Slot
    {
        std::shared_ptr<Entry> entry;
        typename std::list<Key>::iterator lruIt;
    };

    /**
     * Drop key from the map and the LRU list, but only while it still
     * maps to `e` (map lock held). A failed computation's entry may
     * have been evicted and replaced by a fresh in-flight slot in the
     * window between the compute and this cleanup; erasing blindly
     * would strand that successor's single-flight arbitration.
     */
    void
    eraseIfEntry(const Key &key, const std::shared_ptr<Entry> &e)
    {
        const auto it = map_.find(key);
        if (it == map_.end() || it->second.entry != e)
            return;
        lru_.erase(it->second.lruIt);
        map_.erase(it);
    }

    /**
     * Evict coldest done entries until the cap is met (map lock held).
     * In-flight entries are skipped: their waiters must keep finding
     * the shared entry, and a cache full of in-flight work is simply
     * allowed to exceed the cap until those computations land.
     */
    void
    enforceCapacity()
    {
        if (capacity_ == 0)
            return;
        auto it = lru_.end();
        while (map_.size() > capacity_ && it != lru_.begin()) {
            --it;
            const auto slot = map_.find(*it);
            if (!slot->second.entry->done.load(std::memory_order_acquire))
                continue;
            map_.erase(slot);
            it = lru_.erase(it);
            ++evictions_;
        }
    }

    std::size_t capacity_ = 0;
    mutable std::mutex mutex_;
    std::map<Key, Slot> map_;
    /** Front = most recently used. */
    std::list<Key> lru_;
    long requests_ = 0;
    long computes_ = 0;
    long evictions_ = 0;
};

namespace detail
{

/**
 * Stripe-selection hash over memo keys (integers, pairs and tuples of
 * integers — the shapes the driver's fingerprint keys take). The
 * splitmix-style finalizer spreads even near-identical fingerprints
 * across stripes.
 */
inline std::uint64_t
stripeMix(std::uint64_t h, std::uint64_t v)
{
    v += 0x9e3779b97f4a7c15ULL;
    v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ULL;
    v = (v ^ (v >> 27)) * 0x94d049bb133111ebULL;
    v ^= v >> 31;
    return (h * 1099511628211ULL) ^ v;
}

template <typename T,
          std::enable_if_t<std::is_integral<T>::value ||
                               std::is_enum<T>::value,
                           int> = 0>
std::uint64_t
stripeFingerprint(const T &v)
{
    return stripeMix(0, static_cast<std::uint64_t>(v));
}

template <typename A, typename B>
std::uint64_t stripeFingerprint(const std::pair<A, B> &p);
template <typename... Ts>
std::uint64_t stripeFingerprint(const std::tuple<Ts...> &t);

template <typename A, typename B>
std::uint64_t
stripeFingerprint(const std::pair<A, B> &p)
{
    return stripeMix(stripeFingerprint(p.first), stripeFingerprint(p.second));
}

template <typename Tuple, std::size_t... I>
std::uint64_t
stripeFingerprintTuple(const Tuple &t, std::index_sequence<I...>)
{
    std::uint64_t h = 0;
    ((h = stripeMix(h, stripeFingerprint(std::get<I>(t)))), ...);
    return h;
}

template <typename... Ts>
std::uint64_t
stripeFingerprint(const std::tuple<Ts...> &t)
{
    return stripeFingerprintTuple(t, std::index_sequence_for<Ts...>{});
}

} // namespace detail

/**
 * A SingleFlightCache sharded into next-pow2(2×threads) independent
 * stripes selected by a fingerprint hash of the key. Each stripe has
 * its own lock, map and LRU list, so workers looking up unrelated keys
 * never touch the same mutex; the --memo-cap budget is split across
 * stripes (every stripe gets at least 1 slot — the stripe count is
 * clamped down to the capacity when the cap is smaller than the
 * stripe array).
 *
 * Two deliberate differences from the flat cache:
 *
 *  - Uncapped stripes serve completed entries under a *shared* lock:
 *    with no eviction there is no LRU order to maintain on a hit, so N
 *    threads hammering one hot fingerprint read it in parallel instead
 *    of queueing on an exclusive mutex.
 *  - stats() takes every stripe lock simultaneously (in index order)
 *    before reading a single counter, so the snapshot is consistent
 *    across stripes: a concurrent reader can never see stripe 0 after
 *    an insertion but stripe 3 before it. At quiescence the aggregate
 *    satisfies computes == entries + evictions exactly; mid-run a
 *    snapshot may observe computes < entries + evictions for keys whose
 *    computation is still in flight (the entry exists, the compute
 *    counter lands last), never the reverse absent failed computes.
 *
 * Eviction still only changes how much work is done, never any result,
 * so a striped memo is byte-identical to the flat one at any thread
 * count, cap, or stripe count.
 */
template <typename Key, typename Value>
class StripedSingleFlightCache
{
  public:
    using Stats = SingleFlightStats;

    /** capacity == 0 means unbounded; threadsHint sizes the stripe
        array (next-pow2(2×threads), clamped to [1, 256] and down to
        the capacity so no stripe gets a cap of 0). */
    explicit StripedSingleFlightCache(std::size_t capacity = 0,
                                      int threadsHint = 1)
        : capacity_(capacity),
          stripes_(stripeCountFor(capacity, threadsHint))
    {
        const std::size_t n = stripes_.size();
        const std::size_t base = capacity_ / n;
        const std::size_t rem = capacity_ % n;
        for (std::size_t i = 0; i < n; ++i)
            stripes_[i].cap = capacity_ == 0 ? 0 : base + (i < rem ? 1 : 0);
    }

    /** The total budget across all stripes (0 = unbounded). */
    std::size_t capacity() const { return capacity_; }

    std::size_t stripeCount() const { return stripes_.size(); }

    /** Stripe s's share of the capacity budget. */
    std::size_t stripeCapacity(std::size_t s) const
    {
        return stripes_[s].cap;
    }

    /** Which stripe serves this key. */
    std::size_t stripeOf(const Key &key) const
    {
        return detail::stripeFingerprint(key) & (stripes_.size() - 1);
    }

    /** Same contract as SingleFlightCache::getOrCompute. */
    template <typename Compute, typename OnHit>
    Value
    getOrCompute(const Key &key, Compute &&compute, OnHit &&onHit)
    {
        Stripe &s = stripes_[stripeOf(key)];

        if (s.cap == 0) {
            // Shared-lock fast path: an uncapped stripe never evicts,
            // so a completed entry is immutable and hits need no LRU
            // bookkeeping. value/error are safe to read after an
            // acquire load of done (they are written before the
            // release store).
            std::shared_lock<std::shared_mutex> lock(s.m);
            const auto it = s.map.find(key);
            if (it != s.map.end() &&
                it->second.entry->done.load(std::memory_order_acquire)) {
                const std::shared_ptr<Entry> entry = it->second.entry;
                lock.unlock();
                s.requests.fetch_add(1, std::memory_order_relaxed);
                if (entry->error)
                    std::rethrow_exception(entry->error);
                onHit(static_cast<const Value &>(entry->value));
                return entry->value;
            }
        }

        std::shared_ptr<Entry> entry;
        bool owner = false;
        {
            std::unique_lock<std::shared_mutex> lock(s.m);
            s.requests.fetch_add(1, std::memory_order_relaxed);
            Slot &slot = s.map[key];
            if (!slot.entry) {
                slot.entry = std::make_shared<Entry>();
                if (s.cap != 0) {
                    s.lru.push_front(key);
                    slot.lruIt = s.lru.begin();
                }
                owner = true;
            } else if (s.cap != 0) {
                s.lru.splice(s.lru.begin(), s.lru, slot.lruIt);
            }
            entry = slot.entry;
        }

        if (owner) {
            Value value{};
            std::exception_ptr error;
            try {
                value = compute();
            } catch (...) {
                error = std::current_exception();
            }
            {
                std::lock_guard<std::mutex> lock(entry->m);
                entry->value = std::move(value);
                entry->error = error;
                entry->done.store(true, std::memory_order_release);
            }
            entry->cv.notify_all();
            {
                std::unique_lock<std::shared_mutex> lock(s.m);
                ++s.computes;
                if (error)
                    s.eraseIfEntry(key, entry);
                else
                    s.enforceCapacity();
            }
            if (error)
                std::rethrow_exception(error);
            return entry->value;
        }

        std::unique_lock<std::mutex> lock(entry->m);
        if (!entry->done.load(std::memory_order_acquire)) {
            const auto start = std::chrono::steady_clock::now();
            entry->cv.wait(lock, [&] {
                return entry->done.load(std::memory_order_acquire);
            });
            singleFlightWaitSeconds() +=
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
        }
        if (entry->error)
            std::rethrow_exception(entry->error);
        onHit(static_cast<const Value &>(entry->value));
        return entry->value;
    }

    /** One consistent snapshot across all stripes (see class comment). */
    Stats
    stats() const
    {
        std::vector<std::unique_lock<std::shared_mutex>> locks;
        locks.reserve(stripes_.size());
        for (const Stripe &s : stripes_)
            locks.emplace_back(s.m);
        Stats out;
        for (const Stripe &s : stripes_) {
            out.requests += s.requests.load(std::memory_order_relaxed);
            out.computes += s.computes;
            out.entries += long(s.map.size());
            out.evictions += s.evictions;
        }
        return out;
    }

    /** Counters of one stripe alone (for cap-splitting tests). */
    Stats
    stripeStats(std::size_t i) const
    {
        const Stripe &s = stripes_[i];
        std::unique_lock<std::shared_mutex> lock(s.m);
        return {s.requests.load(std::memory_order_relaxed), s.computes,
                long(s.map.size()), s.evictions};
    }

    void
    clear()
    {
        std::vector<std::unique_lock<std::shared_mutex>> locks;
        locks.reserve(stripes_.size());
        for (Stripe &s : stripes_)
            locks.emplace_back(s.m);
        for (Stripe &s : stripes_) {
            s.map.clear();
            s.lru.clear();
        }
    }

  private:
    struct Entry
    {
        std::mutex m;
        std::condition_variable cv;
        std::atomic<bool> done{false};
        Value value{};
        std::exception_ptr error;
    };

    struct Slot
    {
        std::shared_ptr<Entry> entry;
        typename std::list<Key>::iterator lruIt;
    };

    struct Stripe
    {
        mutable std::shared_mutex m;
        std::map<Key, Slot> map;
        /** Maintained only when cap != 0 (front = most recently used). */
        std::list<Key> lru;
        std::size_t cap = 0;
        /** Atomic: bumped under the shared lock on the fast hit path. */
        std::atomic<long> requests{0};
        long computes = 0;
        long evictions = 0;

        /** Same guard as SingleFlightCache::eraseIfEntry (lock held). */
        void
        eraseIfEntry(const Key &key, const std::shared_ptr<Entry> &e)
        {
            const auto it = map.find(key);
            if (it == map.end() || it->second.entry != e)
                return;
            if (cap != 0)
                lru.erase(it->second.lruIt);
            map.erase(it);
        }

        /** Evict coldest done entries past the stripe cap (lock held). */
        void
        enforceCapacity()
        {
            if (cap == 0)
                return;
            auto it = lru.end();
            while (map.size() > cap && it != lru.begin()) {
                --it;
                const auto slot = map.find(*it);
                if (!slot->second.entry->done.load(
                        std::memory_order_acquire))
                    continue;
                map.erase(slot);
                it = lru.erase(it);
                ++evictions;
            }
        }
    };

    /** next-pow2(2×threads), clamped to [1, 256] and, for capped
        caches, down to the largest power of two ≤ capacity so every
        stripe's share of the budget is at least one slot. */
    static std::size_t
    stripeCountFor(std::size_t capacity, int threadsHint)
    {
        const std::size_t hint =
            threadsHint < 1 ? 1 : std::size_t(threadsHint);
        std::size_t n = 1;
        while (n < 2 * hint && n < 256)
            n <<= 1;
        if (capacity != 0)
            while (n > capacity)
                n >>= 1;
        return n == 0 ? 1 : n;
    }

    std::size_t capacity_ = 0;
    std::vector<Stripe> stripes_;
};

} // namespace swp

#endif // SWP_SUPPORT_SINGLEFLIGHT_HH
