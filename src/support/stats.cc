#include "support/stats.hh"

#include <chrono>

namespace swp
{

namespace
{

std::uint64_t
nowNs()
{
    return std::uint64_t(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

Stopwatch::Stopwatch() : startNs_(nowNs()) {}

void
Stopwatch::reset()
{
    startNs_ = nowNs();
}

double
Stopwatch::seconds() const
{
    return double(nowNs() - startNs_) * 1e-9;
}

} // namespace swp
