#include "support/diag.hh"

#include <sstream>

namespace swp
{

namespace
{

std::string
format(const char *kind, const char *file, int line, const std::string &msg)
{
    std::ostringstream os;
    os << kind << ": " << msg << " [" << file << ":" << line << "]";
    return os.str();
}

} // namespace

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    throw FatalError(format("fatal", file, line, msg));
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    throw PanicError(format("panic", file, line, msg));
}

} // namespace swp
