/**
 * @file
 * Small string utilities shared by the .ddg parser and table printers.
 */

#ifndef SWP_SUPPORT_STRUTIL_HH
#define SWP_SUPPORT_STRUTIL_HH

#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace swp
{

/** Strip leading and trailing whitespace. */
std::string trim(const std::string &s);

/** Split on a delimiter character, keeping empty fields. */
std::vector<std::string> split(const std::string &s, char delim);

/** Split on arbitrary whitespace, dropping empty fields. */
std::vector<std::string> splitWs(const std::string &s);

/** True if s starts with the given prefix. */
bool startsWith(const std::string &s, const std::string &prefix);

/** Parse a non-negative integer; throws FatalError on garbage. */
long parseLong(const std::string &s);

/**
 * Parse a 64-bit unsigned value (decimal, or hex/octal with the usual
 * prefixes). Rejects empty input, sign characters, trailing garbage,
 * and overflow. Returns false without touching out on failure.
 */
bool parseUint64(const std::string &s, std::uint64_t &out);

/** Parse a base-10 integer in [lo, hi]; false (out untouched) otherwise. */
bool parseIntInRange(const std::string &s, int lo, int hi, int &out);

/** 64-bit variant of parseIntInRange. */
bool parseInt64InRange(const std::string &s, long long lo, long long hi,
                       long long &out);

/** Concatenate a parameter pack into a string via operator<<. */
template <typename... Args>
std::string
strCat(Args &&...args)
{
    std::ostringstream os;
    ((os << std::forward<Args>(args)), ...);
    return os.str();
}

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** JSON string literal: quoted, with control characters escaped. */
std::string jsonQuote(const std::string &s);

} // namespace swp

#endif // SWP_SUPPORT_STRUTIL_HH
