/**
 * @file
 * Diagnostic helpers: fatal/panic error reporting and checked assertions.
 *
 * Following the gem5 convention, panic() is for internal invariant
 * violations (library bugs) and fatal() is for user-level errors such as
 * malformed input graphs or impossible machine configurations.
 */

#ifndef SWP_SUPPORT_DIAG_HH
#define SWP_SUPPORT_DIAG_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace swp
{

/** Exception raised for user-level errors (bad input, bad configuration). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Exception raised for internal invariant violations (library bugs). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

namespace detail
{

/** Concatenate a parameter pack into a string via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

} // namespace swp

/** Report an unrecoverable user-level error and throw FatalError. */
#define SWP_FATAL(...) \
    ::swp::fatalImpl(__FILE__, __LINE__, ::swp::detail::concat(__VA_ARGS__))

/** Report an internal invariant violation and throw PanicError. */
#define SWP_PANIC(...) \
    ::swp::panicImpl(__FILE__, __LINE__, ::swp::detail::concat(__VA_ARGS__))

/** Checked assertion that is active in all build types. */
#define SWP_ASSERT(cond, ...)                                              \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::swp::panicImpl(__FILE__, __LINE__,                           \
                ::swp::detail::concat("assertion '", #cond, "' failed: ",  \
                                      __VA_ARGS__));                       \
        }                                                                  \
    } while (0)

#endif // SWP_SUPPORT_DIAG_HH
