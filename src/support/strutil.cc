#include "support/strutil.hh"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "support/diag.hh"

namespace swp
{

std::string
trim(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::vector<std::string>
split(const std::string &s, char delim)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == delim) {
            out.push_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::vector<std::string>
splitWs(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() &&
               std::isspace(static_cast<unsigned char>(s[i]))) {
            ++i;
        }
        std::size_t start = i;
        while (i < s.size() &&
               !std::isspace(static_cast<unsigned char>(s[i]))) {
            ++i;
        }
        if (i > start)
            out.push_back(s.substr(start, i - start));
    }
    return out;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

long
parseLong(const std::string &s)
{
    const std::string t = trim(s);
    if (t.empty())
        SWP_FATAL("expected integer, got empty string");
    char *end = nullptr;
    const long v = std::strtol(t.c_str(), &end, 10);
    if (end == t.c_str() || *end != '\0')
        SWP_FATAL("expected integer, got '", t, "'");
    return v;
}

bool
parseUint64(const std::string &s, std::uint64_t &out)
{
    // strtoull skips whitespace and silently wraps negative input, so
    // insist the string starts with a digit (which also covers "0x...").
    if (s.empty() || !std::isdigit(static_cast<unsigned char>(s[0])))
        return false;
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 0);
    if (end != s.c_str() + s.size() || errno == ERANGE)
        return false;
    out = v;
    return true;
}

bool
parseIntInRange(const std::string &s, int lo, int hi, int &out)
{
    if (s.empty() ||
        (s[0] != '-' && !std::isdigit(static_cast<unsigned char>(s[0]))))
        return false;
    errno = 0;
    char *end = nullptr;
    const long v = std::strtol(s.c_str(), &end, 10);
    if (end != s.c_str() + s.size() || errno == ERANGE || v < lo || v > hi)
        return false;
    out = int(v);
    return true;
}

bool
parseInt64InRange(const std::string &s, long long lo, long long hi,
                  long long &out)
{
    if (s.empty() ||
        (s[0] != '-' && !std::isdigit(static_cast<unsigned char>(s[0]))))
        return false;
    errno = 0;
    char *end = nullptr;
    const long long v = std::strtoll(s.c_str(), &end, 10);
    if (end != s.c_str() + s.size() || errno == ERANGE || v < lo || v > hi)
        return false;
    out = v;
    return true;
}

std::string
strprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    const int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string out(static_cast<std::size_t>(n), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    va_end(ap2);
    return out;
}

std::string
jsonQuote(const std::string &s)
{
    std::string out = "\"";
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strprintf("\\u%04x", c);
            else
                out += c;
        }
    }
    return out + "\"";
}

} // namespace swp
