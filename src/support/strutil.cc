#include "support/strutil.hh"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "support/diag.hh"

namespace swp
{

std::string
trim(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::vector<std::string>
split(const std::string &s, char delim)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == delim) {
            out.push_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::vector<std::string>
splitWs(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() &&
               std::isspace(static_cast<unsigned char>(s[i]))) {
            ++i;
        }
        std::size_t start = i;
        while (i < s.size() &&
               !std::isspace(static_cast<unsigned char>(s[i]))) {
            ++i;
        }
        if (i > start)
            out.push_back(s.substr(start, i - start));
    }
    return out;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

long
parseLong(const std::string &s)
{
    const std::string t = trim(s);
    if (t.empty())
        SWP_FATAL("expected integer, got empty string");
    char *end = nullptr;
    const long v = std::strtol(t.c_str(), &end, 10);
    if (end == t.c_str() || *end != '\0')
        SWP_FATAL("expected integer, got '", t, "'");
    return v;
}

std::string
strprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    const int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string out(static_cast<std::size_t>(n), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    va_end(ap2);
    return out;
}

} // namespace swp
