/**
 * @file
 * Word-packed bit rows and matrices.
 *
 * The scheduler's inner loops are dominated by dense set queries:
 * "does any ordered group reach v", "is edge (a, b) already recorded",
 * "which units of this row are busy". Plain vector<vector<bool>>
 * answers them one bit at a time and reallocates per probe; BitMatrix
 * packs each row into uint64_t words so the same queries become a few
 * word operations, and reset() reuses the backing storage so a matrix
 * held in a scheduling workspace is cleared, not reallocated, across
 * probes.
 */

#ifndef SWP_SUPPORT_BITMATRIX_HH
#define SWP_SUPPORT_BITMATRIX_HH

#include <cstdint>
#include <vector>

#include "support/diag.hh"

namespace swp
{

/** Index of the lowest set bit; undefined for word == 0. */
inline int
countTrailingZeros(std::uint64_t word)
{
#if defined(__GNUC__) || defined(__clang__)
    return __builtin_ctzll(word);
#else
    int n = 0;
    while (!(word & 1)) {
        word >>= 1;
        ++n;
    }
    return n;
#endif
}

/** Mask with the low `n` bits set (n in [0, 64]). */
inline std::uint64_t
lowBitsMask(int n)
{
    return n >= 64 ? ~std::uint64_t(0) : ((std::uint64_t(1) << n) - 1);
}

/**
 * A rows x cols bit matrix stored row-major in 64-bit words. Row
 * pointers expose whole-word access so callers can run set algebra
 * (intersection tests, row unions) 64 columns at a time.
 */
class BitMatrix
{
  public:
    BitMatrix() = default;
    BitMatrix(int rows, int cols) { reset(rows, cols); }

    /** Resize to rows x cols, all bits clear; storage is reused. */
    void
    reset(int rows, int cols)
    {
        SWP_ASSERT(rows >= 0 && cols >= 0, "negative BitMatrix shape");
        rows_ = rows;
        cols_ = cols;
        wordsPerRow_ = (cols + 63) / 64;
        words_.assign(std::size_t(rows) * std::size_t(wordsPerRow_), 0);
    }

    int rows() const { return rows_; }
    int cols() const { return cols_; }
    int wordsPerRow() const { return wordsPerRow_; }

    bool
    test(int r, int c) const
    {
        return (row(r)[c >> 6] >> (c & 63)) & 1;
    }

    void
    set(int r, int c)
    {
        row(r)[c >> 6] |= std::uint64_t(1) << (c & 63);
    }

    const std::uint64_t *
    row(int r) const
    {
        return words_.data() + std::size_t(r) * std::size_t(wordsPerRow_);
    }

    std::uint64_t *
    row(int r)
    {
        return words_.data() + std::size_t(r) * std::size_t(wordsPerRow_);
    }

    /** True if row r intersects the mask (mask has wordsPerRow words). */
    bool
    intersects(int r, const std::uint64_t *mask) const
    {
        const std::uint64_t *w = row(r);
        for (int i = 0; i < wordsPerRow_; ++i) {
            if (w[i] & mask[i])
                return true;
        }
        return false;
    }

    /** dst |= row src (dst has wordsPerRow words). */
    void
    orRowInto(int src, std::uint64_t *dst) const
    {
        const std::uint64_t *w = row(src);
        for (int i = 0; i < wordsPerRow_; ++i)
            dst[i] |= w[i];
    }

  private:
    int rows_ = 0;
    int cols_ = 0;
    int wordsPerRow_ = 0;
    std::vector<std::uint64_t> words_;
};

/**
 * A single reusable bit row (a set over [0, size)), for masks that live
 * next to a BitMatrix: the ordered-set mask of the HRMS pre-ordering,
 * per-component membership masks, and similar.
 */
class BitRow
{
  public:
    /** Resize to `size` bits, all clear; storage is reused. */
    void
    reset(int size)
    {
        SWP_ASSERT(size >= 0, "negative BitRow size");
        size_ = size;
        words_.assign(std::size_t((size + 63) / 64), 0);
    }

    int size() const { return size_; }

    bool
    test(int i) const
    {
        return (words_[std::size_t(i >> 6)] >> (i & 63)) & 1;
    }

    void
    set(int i)
    {
        words_[std::size_t(i >> 6)] |= std::uint64_t(1) << (i & 63);
    }

    void
    clear(int i)
    {
        words_[std::size_t(i >> 6)] &= ~(std::uint64_t(1) << (i & 63));
    }

    const std::uint64_t *words() const { return words_.data(); }
    std::uint64_t *words() { return words_.data(); }

  private:
    int size_ = 0;
    std::vector<std::uint64_t> words_;
};

} // namespace swp

#endif // SWP_SUPPORT_BITMATRIX_HH
