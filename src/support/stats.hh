/**
 * @file
 * Lightweight statistics accumulators used by the evaluation harnesses.
 */

#ifndef SWP_SUPPORT_STATS_HH
#define SWP_SUPPORT_STATS_HH

#include <algorithm>
#include <cstdint>
#include <limits>

namespace swp
{

/**
 * Accumulates a scalar sample stream: count, sum, min, max, mean.
 */
class Accumulator
{
  public:
    void
    sample(double v)
    {
        count_ += 1;
        sum_ += v;
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double mean() const { return count_ ? sum_ / double(count_) : 0.0; }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * A wall-clock stopwatch (monotonic), reporting elapsed seconds.
 */
class Stopwatch
{
  public:
    Stopwatch();
    /** Restart the timer. */
    void reset();
    /** Seconds since construction or the last reset(). */
    double seconds() const;

  private:
    std::uint64_t startNs_;
};

} // namespace swp

#endif // SWP_SUPPORT_STATS_HH
