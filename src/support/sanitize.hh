/**
 * @file
 * Compile-time sanitizer detection.
 *
 * SWP_TSAN_ENABLED is 1 when the translation unit is instrumented by
 * ThreadSanitizer (gcc defines __SANITIZE_THREAD__, clang exposes it
 * via __has_feature). Code paths whose correctness rests on ordering
 * TSan cannot model — standalone memory fences above all — test this to
 * substitute an equivalent TSan-visible discipline, rather than
 * suppressing the resulting false reports.
 */

#ifndef SWP_SUPPORT_SANITIZE_HH
#define SWP_SUPPORT_SANITIZE_HH

#if defined(__SANITIZE_THREAD__)
#define SWP_TSAN_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SWP_TSAN_ENABLED 1
#else
#define SWP_TSAN_ENABLED 0
#endif
#else
#define SWP_TSAN_ENABLED 0
#endif

#endif // SWP_SUPPORT_SANITIZE_HH
