/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * The synthetic workload suite must be bit-reproducible across platforms
 * and standard-library versions, so we implement our own small PRNG
 * (xoshiro256**) and our own distribution helpers instead of relying on
 * <random>, whose distributions are not portable.
 */

#ifndef SWP_SUPPORT_RNG_HH
#define SWP_SUPPORT_RNG_HH

#include <cstdint>

#include "support/diag.hh"

namespace swp
{

/**
 * Deterministic xoshiro256** generator with splitmix64 seeding.
 *
 * Identical sequences are produced for identical seeds on every platform,
 * which makes every workload in the benchmark suite reproducible from a
 * single integer.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) { reseed(seed); }

    /** Re-initialize the state from a 64-bit seed. */
    void
    reseed(std::uint64_t seed)
    {
        // splitmix64 expansion of the seed into the 256-bit state.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int
    range(int lo, int hi)
    {
        SWP_ASSERT(lo <= hi, "bad range [", lo, ", ", hi, "]");
        const std::uint64_t span = std::uint64_t(hi) - std::uint64_t(lo) + 1;
        return lo + int(next() % span);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return double(next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli trial with probability p. */
    bool chance(double p) { return uniform() < p; }

    /**
     * Pick an index in [0, n) according to integer weights.
     *
     * @param weights Array of n non-negative weights, not all zero.
     * @param n       Number of entries.
     */
    int
    pickWeighted(const int *weights, int n)
    {
        long total = 0;
        for (int i = 0; i < n; ++i)
            total += weights[i];
        SWP_ASSERT(total > 0, "pickWeighted with zero total weight");
        long r = long(next() % std::uint64_t(total));
        for (int i = 0; i < n; ++i) {
            r -= weights[i];
            if (r < 0)
                return i;
        }
        return n - 1;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace swp

#endif // SWP_SUPPORT_RNG_HH
