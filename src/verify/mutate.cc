#include "verify/mutate.hh"

namespace swp
{

Schedule
withCycle(const Schedule &s, NodeId n, int t)
{
    Schedule mutant = s;
    mutant.set(n, t, s.unit(n));
    return mutant;
}

Schedule
withUnit(const Schedule &s, NodeId n, int u)
{
    Schedule mutant = s;
    mutant.set(n, s.time(n), u);
    return mutant;
}

AllocationOutcome
withOffset(const AllocationOutcome &alloc, NodeId n, int off)
{
    AllocationOutcome mutant = alloc;
    mutant.rotAlloc.offset[std::size_t(n)] = off;
    return mutant;
}

namespace
{

template <typename Fn>
KernelCode
mapSlots(const KernelCode &kernel, NodeId n, Fn &&fn)
{
    KernelCode mutant;
    mutant.ii = kernel.ii;
    mutant.stageCount = kernel.stageCount;
    mutant.rows.resize(kernel.rows.size());
    for (std::size_t row = 0; row < kernel.rows.size(); ++row) {
        for (const KernelSlot &slot : kernel.rows[row]) {
            if (slot.node == n)
                fn(mutant, int(row), slot);
            else
                mutant.rows[row].push_back(slot);
        }
    }
    return mutant;
}

} // namespace

KernelCode
withSlotStage(const KernelCode &kernel, NodeId n, int stage)
{
    return mapSlots(kernel, n,
                    [stage](KernelCode &out, int row,
                            const KernelSlot &slot) {
                        KernelSlot moved = slot;
                        moved.stage = stage;
                        out.rows[std::size_t(row)].push_back(moved);
                    });
}

KernelCode
withSlotRow(const KernelCode &kernel, NodeId n, int row)
{
    return mapSlots(kernel, n,
                    [row](KernelCode &out, int, const KernelSlot &slot) {
                        out.rows[std::size_t(row)].push_back(slot);
                    });
}

KernelCode
withSlotDropped(const KernelCode &kernel, NodeId n)
{
    return mapSlots(kernel, n,
                    [](KernelCode &, int, const KernelSlot &) {});
}

Certificate
withCycleEdge(const Certificate &cert, std::size_t pos, EdgeId e)
{
    Certificate mutant = cert;
    mutant.cycle.edges.at(pos) = e;
    return mutant;
}

Certificate
withTallyOccupancy(const Certificate &cert, std::size_t pos, long occ)
{
    Certificate mutant = cert;
    mutant.resource.tallies.at(pos).occupancy = occ;
    return mutant;
}

Certificate
withTermLifetime(const Certificate &cert, std::size_t pos, int lt)
{
    Certificate mutant = cert;
    mutant.registers.terms.at(pos).minLifetime = lt;
    return mutant;
}

Certificate
withRegisterBound(const Certificate &cert, int bound)
{
    Certificate mutant = cert;
    mutant.registers.bound = bound;
    return mutant;
}

Certificate
withIiBound(const Certificate &cert, int bound)
{
    Certificate mutant = cert;
    mutant.iiBound = bound;
    return mutant;
}

EdgeId
findTightEdge(const Ddg &g, const Machine &m, const Schedule &s)
{
    for (EdgeId e = 0; e < g.numEdges(); ++e) {
        const Edge &edge = g.edge(e);
        if (!edge.alive)
            continue;
        const int earliest = s.time(edge.src) +
                             m.latency(g.node(edge.src).op) -
                             s.ii() * edge.distance;
        if (s.time(edge.dst) == earliest)
            return e;
    }
    return -1;
}

} // namespace swp
