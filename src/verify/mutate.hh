/**
 * @file
 * Deterministic single-site mutations of legal pipeline results.
 *
 * Negative testing for the legality verifier: each helper takes a legal
 * artifact, perturbs exactly one site (an op's cycle, its unit, a
 * value's register offset, a kernel slot), and returns the mutant. The
 * verifier must reject every mutant with a diagnostic of the matching
 * ViolationKind — a checker that accepts a known-broken schedule is
 * worse than no checker, because it lends false authority.
 */

#ifndef SWP_VERIFY_MUTATE_HH
#define SWP_VERIFY_MUTATE_HH

#include "codegen/kernel.hh"
#include "ir/ddg.hh"
#include "regalloc/rotalloc.hh"
#include "sched/schedule.hh"
#include "verify/certify.hh"

namespace swp
{

/** Copy of s with node n moved to cycle t (unit kept). */
Schedule withCycle(const Schedule &s, NodeId n, int t);

/** Copy of s with node n moved to unit u (cycle kept). */
Schedule withUnit(const Schedule &s, NodeId n, int u);

/** Copy of alloc with value n's rotating offset set to off. */
AllocationOutcome withOffset(const AllocationOutcome &alloc, NodeId n,
                             int off);

/** Copy of kernel with node n's slot retagged to the given stage. */
KernelCode withSlotStage(const KernelCode &kernel, NodeId n, int stage);

/** Copy of kernel with node n's slot moved to the given row. */
KernelCode withSlotRow(const KernelCode &kernel, NodeId n, int row);

/** Copy of kernel with node n's slot deleted. */
KernelCode withSlotDropped(const KernelCode &kernel, NodeId n);

/**
 * First live edge whose dependence becomes violated when its
 * destination issues earlier, i.e. one with no slack at the current
 * schedule: t(dst) == t(src) + latency(src) - distance * II. Returns -1
 * if every edge has slack (then any edge's dst can be moved by -slack-1
 * instead). Used by tests to pick a provably illegal cycle mutation.
 */
EdgeId findTightEdge(const Ddg &g, const Machine &m, const Schedule &s);

/** @name Certificate corruptions (verify/certify negative testing).
    Each perturbs exactly one site of a valid certificate bundle; the
    certificate checker must reject every mutant with a diagnostic of
    the matching CertKind. */
/// @{

/** Copy of cert with critical-cycle edge `pos` replaced by `e`. */
Certificate withCycleEdge(const Certificate &cert, std::size_t pos,
                          EdgeId e);

/** Copy of cert with resource tally `pos`'s occupancy set to `occ`. */
Certificate withTallyOccupancy(const Certificate &cert, std::size_t pos,
                               long occ);

/** Copy of cert with register term `pos`'s lifetime floor set to lt. */
Certificate withTermLifetime(const Certificate &cert, std::size_t pos,
                             int lt);

/** Copy of cert with the register floor raised/lowered to `bound`. */
Certificate withRegisterBound(const Certificate &cert, int bound);

/** Copy of cert claiming the overall II lower bound `bound`. */
Certificate withIiBound(const Certificate &cert, int bound);

/// @}

} // namespace swp

#endif // SWP_VERIFY_MUTATE_HH
