/**
 * @file
 * Optimality certificates: machine-checkable lower bounds on II and
 * register count.
 *
 * The legality verifier (verify/legality) proves a schedule satisfies
 * every constraint; it says nothing about whether the schedule is any
 * *good*. This subsystem closes that gap with certificates — small,
 * explicit witnesses that no legal schedule of the same loop on the
 * same machine can beat a bound — generated and checked by code that
 * shares nothing with src/sched (no Mrt, no SCC decomposition, no
 * RecurrenceCache; its own Bellman–Ford, its own tallies, its own
 * floor arithmetic), so a bug in the optimized MII machinery cannot
 * hide inside the proof that vouches for it.
 *
 * Three certificate kinds:
 *
 *  1. Recurrence (critical cycle) — an explicit closed walk of live
 *     edges. Summing the dependence constraint t(dst) >= t(src) +
 *     latency(src) - distance * II around the walk cancels every t()
 *     and leaves II * sum(distance) >= sum(latency), so any legal
 *     schedule has II >= ceil(sum latency / sum distance). The checker
 *     re-walks the edges in the Ddg and redoes the division.
 *  2. Resource (pigeonhole) — per functional-unit class, the op
 *     occupancy tally and the machine's instance count: units * II
 *     issue slots per kernel window must seat sum(occupancy) ops, so
 *     II >= ceil(occupancy / units); and a single op occupying its
 *     unit for `occ` cycles forces II >= occ. The checker recounts
 *     both from the graph and the machine model.
 *  3. Register floor — at a fixed II, every value with a live use has
 *     lifetime >= latency(producer) (the flow-dependence constraint at
 *     any legal schedule), and the sum of lifetimes spread over II
 *     rows pigeonholes MaxLive >= ceil(sum / II); adding one static
 *     register per live loop invariant gives a register count no
 *     allocation at this II can beat.
 *
 * A Certificate bundles all three for one (loop, machine, II); the gap
 * report aggregates achieved-vs-certified distances across a suite.
 */

#ifndef SWP_VERIFY_CERTIFY_HH
#define SWP_VERIFY_CERTIFY_HH

#include <string>
#include <vector>

#include "ir/ddg.hh"
#include "machine/machine.hh"
#include "pipeliner/result.hh"

namespace swp
{

/** Which certificate a diagnostic belongs to. */
enum class CertKind
{
    Recurrence,    ///< Critical-cycle II bound broken or mis-tallied.
    Resource,      ///< Pigeonhole II bound broken or mis-tallied.
    RegisterFloor, ///< Register lower bound broken or mis-tallied.
    Consistency,   ///< Bundle incoherent or contradicts the result.
};

/** Printable certificate name ("recurrence", "resource", ...). */
const char *certKindName(CertKind kind);

/**
 * Recurrence certificate: a closed walk of live edges proving
 * II >= bound. `edges` is empty exactly when bound <= 1 (acyclic
 * loops place no recurrence constraint beyond II >= 1).
 */
struct CycleCertificate
{
    int bound = 1;
    std::vector<EdgeId> edges;  ///< In walk order; dst(i) == src(i+1).
    long latencySum = 0;        ///< sum latency(src(e)) over the walk.
    long distanceSum = 0;       ///< sum distance(e) over the walk.
};

/** One unit class's pigeonhole tally. */
struct ResourceTally
{
    int fuClass = -1;   ///< Machine class index (Machine::classOf).
    int ops = 0;        ///< Operations executing on this class.
    long occupancy = 0; ///< Sum of per-op unit occupancy.
    int units = 0;      ///< Machine instances of the class.
    int bound = 1;      ///< ceil(occupancy / units).
};

/** Resource certificate: II >= bound by counting issue slots. */
struct ResourceCertificate
{
    int bound = 1;  ///< max over tallies and maxOccupancy (>= 1).
    std::vector<ResourceTally> tallies;  ///< Non-empty classes, in
                                         ///< ascending class order.
    int maxOccupancy = 0;                ///< Largest single-op occupancy.
    NodeId maxOccupancyNode = invalidNode;  ///< Witness op (invalidNode
                                            ///< for an empty graph).
};

/** One value's lifetime floor: LT(value) >= minLifetime at any legal
    schedule (the producer's latency, forced by its live flow uses). */
struct RegisterTerm
{
    NodeId value = invalidNode;
    int minLifetime = 0;
};

/** Register certificate: no allocation at `ii` fits under `bound`. */
struct RegisterCertificate
{
    int ii = 0;          ///< The II the floor is proven at.
    int bound = 0;       ///< invariants + ceil(lifetimeSum / ii).
    int invariants = 0;  ///< Live loop invariants (one static reg each).
    long lifetimeSum = 0;
    std::vector<RegisterTerm> terms;  ///< Ascending by value id.
};

/** The full certificate bundle for one (loop, machine, II). */
struct Certificate
{
    int iiBound = 1;  ///< max(cycle.bound, resource.bound).
    CycleCertificate cycle;
    ResourceCertificate resource;
    RegisterCertificate registers;
};

/** One certificate-check diagnostic. */
struct CertDiag
{
    CertKind kind = CertKind::Consistency;
    std::string message;
};

/** Outcome of checking one certificate bundle. */
struct CertReport
{
    std::vector<CertDiag> diags;

    bool ok() const { return diags.empty(); }

    /** Count of diagnostics of one kind. */
    int count(CertKind kind) const;

    /** All diagnostics, one per line (empty string when ok). */
    std::string describe() const;
};

/**
 * Generate the certificate bundle for a loop on a machine, with the
 * register floor proven at the given (achieved) II. The graph should
 * be the one the schedule refers to — for spilled results, the
 * spill-transformed graph — so the bounds apply to the schedule that
 * was actually emitted. ii must be >= 1.
 */
Certificate certifyLoop(const Ddg &g, const Machine &m, int ii);

/**
 * Independently validate a certificate bundle against the graph and
 * machine: re-walk the cycle, recount the tallies, re-derive the
 * floor, and redo every ceiling division. Accepts exactly the bundles
 * certifyLoop emits; any corruption (a swapped cycle edge, an inflated
 * tally, a raised floor) is rejected with a diagnostic of the
 * matching kind.
 */
CertReport checkCertificate(const Ddg &g, const Machine &m,
                            const Certificate &cert);

/**
 * Check a certificate does not contradict an achieved result: the
 * result's II must be >= iiBound, the register floor must be proven at
 * the result's own II, and alloc.regsRequired must be >= the floor. A
 * contradiction means either the schedule is illegal or the bound
 * machinery is wrong — both fatal.
 */
CertReport checkCertificateAgainstResult(const Certificate &cert,
                                         const PipelineResult &result);

/** Compact per-job certificate outcome, for reports and JSON lines. */
struct CertSummary
{
    bool valid = false;  ///< False for unevaluated (sharded-out) slots.
    std::string loop;
    int achievedIi = 0;
    int achievedRegs = 0;
    int recBound = 0;
    int resBound = 0;
    int iiBound = 0;
    int regBound = 0;
    int cycleEdges = 0;  ///< Length of the critical cycle (0 = none).

    /** Achieved II minus certified lower bound (>= 0, or the result
        contradicts its certificate). */
    int gap() const { return achievedIi - iiBound; }

    /** Achieved registers minus certified floor. */
    int regGap() const { return achievedRegs - regBound; }
};

/** Summarize one checked certificate against its result. */
CertSummary summarizeCertificate(const Certificate &cert,
                                 const PipelineResult &result);

/**
 * Canonical one-line JSON rendering of one job's summary. Byte-stable
 * across thread counts and shard splits (pure function of the job
 * index and summary), so sharded certificate files merge into exactly
 * the unsharded bytes.
 */
std::string certSummaryJson(int job, const CertSummary &s);

/** Suite-wide optimality-gap aggregate. */
struct GapReport
{
    int jobs = 0;       ///< Valid summaries aggregated.
    int optimal = 0;    ///< gap == 0: II proven optimal.
    int gapOne = 0;     ///< gap == 1.
    int unproven = 0;   ///< gap >= 2.
    long gapSum = 0;    ///< Sum of II gaps.
    int regExact = 0;   ///< regGap == 0: register floor met exactly.
};

/** Aggregate the valid summaries (invalid slots are skipped). */
GapReport summarizeGaps(const std::vector<CertSummary> &summaries);

/** One-line human-readable gap report. */
std::string describeGapReport(const GapReport &r);

} // namespace swp

#endif // SWP_VERIFY_CERTIFY_HH
