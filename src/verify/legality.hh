/**
 * @file
 * Independent schedule-legality verifier.
 *
 * The scheduler core (src/sched) is heavily optimized — bit-parallel
 * reservation tables, cached reachability, memoized probe outcomes —
 * and guarded by a byte-identity fingerprint. Byte identity proves the
 * output did not *change*; it does not prove it was ever *legal*. This
 * subsystem proves legality: a from-scratch static checker that shares
 * no code with the scheduler (no Mrt, no BitMatrix, no GroupSet, no
 * sched/schedule validator) and re-derives every constraint directly
 * from the paper's definitions using deliberately naive data structures
 * (per-slot count tables, pairwise arc intersection), so a bug in the
 * fast machinery cannot hide inside the checker that vouches for it.
 *
 * Four independent layers are checked for every PipelineResult:
 *
 *  1. Dependence legality — for every live DDG edge e = (src, dst,
 *     delta): t(dst) >= t(src) + latency(src) - delta * II, and fused
 *     (non-spillable) edges sit at their exact offset. Covers edges
 *     introduced by spill insertion, since the check walks the result's
 *     (possibly spill-transformed) graph.
 *  2. Resource legality — a naive occupancy table rebuilt from the
 *     op -> unit assignments: at most one op per (class, unit,
 *     cycle mod II) slot, counting every row a non-pipelined op blocks,
 *     and no op may occupy its unit for more than II cycles.
 *  3. Register legality — lifetimes recomputed here, from the graph and
 *     schedule alone; the rotating-file allocation must give every live
 *     value an in-range offset and no two values' circular arcs may
 *     overlap (the Rau conflict lemma), i.e. no physical register ever
 *     holds two live values at once.
 *  4. Kernel consistency — the codegen'd kernel's (row, stage) layout
 *     must round-trip to exactly the schedule's (op, cycle) set: every
 *     op exactly once, at stage * II + row == t(op).
 *
 * Violations are reported as structured diagnostics naming the violated
 * edge, slot, or live range, so a failing sweep pinpoints the bug
 * instead of printing "schedule bad".
 */

#ifndef SWP_VERIFY_LEGALITY_HH
#define SWP_VERIFY_LEGALITY_HH

#include <string>
#include <vector>

#include "codegen/kernel.hh"
#include "ir/ddg.hh"
#include "machine/machine.hh"
#include "pipeliner/result.hh"
#include "regalloc/mvealloc.hh"
#include "sched/schedule.hh"

namespace swp
{

/**
 * Builds that already pay for safety (assertions on, or any sanitizer)
 * verify every SuiteRunner result unconditionally; Release builds only
 * on request (--verify), keeping the measured configurations honest.
 */
#if !defined(NDEBUG) || defined(SWP_SANITIZE_BUILD)
constexpr bool kAlwaysVerifyResults = true;
#else
constexpr bool kAlwaysVerifyResults = false;
#endif

/** Which legality layer a violation belongs to. */
enum class ViolationKind
{
    Structure,   ///< Schedule shape broken (size, completeness, II).
    Dependence,  ///< A dependence edge is not satisfied.
    FusedOffset, ///< A fused (non-spillable) edge is off its offset.
    Resource,    ///< A functional-unit slot is oversubscribed.
    Register,    ///< Overlapping live ranges in one register.
    Kernel,      ///< Kernel layout does not round-trip to the schedule.
};

/** Printable layer name ("dependence", "resource", ...). */
const char *violationKindName(ViolationKind kind);

/** One legality violation, naming the offending edge/slot/range. */
struct Violation
{
    ViolationKind kind = ViolationKind::Structure;

    /** Primary node involved (edge destination, slot occupant, value
        producer); invalidNode when not applicable. */
    NodeId node = invalidNode;

    /** Offending edge for dependence/fused violations; -1 otherwise. */
    EdgeId edge = -1;

    /** Human-readable diagnostic naming the violated constraint. */
    std::string message;
};

/** Outcome of verifying one result. */
struct VerifyReport
{
    std::vector<Violation> violations;

    bool ok() const { return violations.empty(); }

    /** Count of violations of one kind. */
    int count(ViolationKind kind) const;

    /** All diagnostics, one per line (empty string when ok). */
    std::string describe() const;
};

/**
 * Verify a complete schedule against its graph and machine: dependence
 * legality (layer 1) and resource legality (layer 2).
 */
VerifyReport verifySchedule(const Ddg &g, const Machine &m,
                            const Schedule &s);

/**
 * Verify a rotating-register allocation against independently
 * recomputed lifetimes (layer 3). Only meaningful when the allocation
 * ran (alloc.rotAlloc non-empty); an unallocated live value or any
 * pairwise arc overlap is a violation.
 */
VerifyReport verifyAllocation(const Ddg &g, const Schedule &s,
                              const AllocationOutcome &alloc);

/**
 * Verify an MVE allocation against independently recomputed lifetimes:
 * every live value's name period must divide the unroll factor and
 * cover ceil(LT/II) simultaneous instances, and no physical register
 * may hold two overlapping name arcs on the unrolled time circle.
 */
VerifyReport verifyMveAllocation(const Ddg &g, const Schedule &s,
                                 const MveAllocResult &mve);

/**
 * Verify that the codegen'd kernel round-trips to the schedule
 * (layer 4): builds the kernel via codegen and checks its layout.
 */
VerifyReport verifyKernel(const Ddg &g, const Schedule &s);

/**
 * Check an explicit kernel layout against the schedule (the core of
 * layer 4, exposed so tests can perturb a kernel independently of the
 * deterministic codegen path): every op exactly once, each slot's
 * stage * II + row equal to the op's cycle, II rows, stage count
 * matching the schedule's stage span.
 */
VerifyReport verifyKernelLayout(const Ddg &g, const Schedule &s,
                                const KernelCode &kernel);

/**
 * Verify one pipeline result end to end: all four layers on the
 * result's own (possibly spill-transformed) graph. `input` is the
 * untransformed loop the strategy was asked to schedule; it anchors the
 * structural cross-checks (a spill transformation may add nodes and
 * kill edges but never removes original nodes).
 */
VerifyReport verifyResult(const Ddg &input, const Machine &m,
                          const PipelineResult &result);

} // namespace swp

#endif // SWP_VERIFY_LEGALITY_HH
