#include "verify/legality.hh"

#include <algorithm>

#include "codegen/kernel.hh"
#include "support/strutil.hh"

namespace swp
{

namespace
{

/** Mathematical floored modulus, derived here rather than borrowed from
    the schedule helpers: the verifier trusts nothing it checks. */
int
wrapMod(int a, int m)
{
    const int r = a % m;
    return r < 0 ? r + m : r;
}

long
wrapModLong(long a, long m)
{
    const long r = a % m;
    return r < 0 ? r + m : r;
}

int
wrapDiv(int a, int m)
{
    return (a - wrapMod(a, m)) / m;
}

void
addViolation(VerifyReport &report, ViolationKind kind, NodeId node,
             EdgeId edge, std::string message)
{
    Violation v;
    v.kind = kind;
    v.node = node;
    v.edge = edge;
    v.message = std::move(message);
    report.violations.push_back(std::move(v));
}

/**
 * Structural sanity of a schedule against its graph. Returns false when
 * the shape is too broken for the constraint layers to index safely.
 */
bool
checkShape(const Ddg &g, const Schedule &s, VerifyReport &report)
{
    if (g.numNodes() == 0) {
        addViolation(report, ViolationKind::Structure, invalidNode, -1,
                     "graph has no nodes");
        return false;
    }
    if (s.numNodes() != g.numNodes()) {
        addViolation(
            report, ViolationKind::Structure, invalidNode, -1,
            strprintf("schedule covers %d nodes but the graph has %d",
                      s.numNodes(), g.numNodes()));
        return false;
    }
    if (s.ii() < 1) {
        addViolation(report, ViolationKind::Structure, invalidNode, -1,
                     strprintf("II=%d is not positive", s.ii()));
        return false;
    }
    bool complete = true;
    for (NodeId n = 0; n < g.numNodes(); ++n) {
        if (!s.scheduled(n)) {
            addViolation(
                report, ViolationKind::Structure, n, -1,
                strprintf("node %s (n%d) is unscheduled",
                          g.node(n).name.c_str(), n));
            complete = false;
        }
    }
    return complete;
}

/**
 * One loop-variant live range, recomputed here from the graph and
 * schedule alone — never taken from the allocator's own analysis.
 */
struct LiveRange
{
    NodeId producer = invalidNode;
    long start = 0;
    long end = 0;  ///< start of the producer to the last read (+II*dist).

    long length() const { return end - start; }
};

std::vector<LiveRange>
recomputeLiveRanges(const Ddg &g, const Schedule &s)
{
    const long ii = s.ii();
    std::vector<LiveRange> ranges;
    for (NodeId n = 0; n < g.numNodes(); ++n) {
        if (!producesValue(g.node(n).op))
            continue;
        bool used = false;
        long end = 0;
        for (EdgeId e : g.outEdgeIds(n)) {
            const Edge &edge = g.edge(e);
            if (!edge.alive || edge.kind != DepKind::RegFlow)
                continue;
            const long read = long(s.time(edge.dst)) +
                              ii * long(edge.distance);
            end = used ? std::max(end, read) : read;
            used = true;
        }
        if (!used)
            continue;
        LiveRange lr;
        lr.producer = n;
        lr.start = s.time(n);
        lr.end = std::max(end, lr.start);
        ranges.push_back(lr);
    }
    return ranges;
}

/** Max values simultaneously live in the steady-state kernel. */
int
recomputeMaxLive(const std::vector<LiveRange> &ranges, int ii)
{
    std::vector<int> pressure(std::size_t(ii), 0);
    for (const LiveRange &lr : ranges) {
        const long len = lr.length();
        const int full = int(len / ii);
        const int rem = int(len % ii);
        for (int r = 0; r < ii; ++r)
            pressure[std::size_t(r)] += full;
        const int startRow = int(wrapModLong(lr.start, ii));
        for (int k = 0; k < rem; ++k)
            pressure[std::size_t((startRow + k) % ii)] += 1;
    }
    int maxLive = 0;
    for (int p : pressure)
        maxLive = std::max(maxLive, p);
    return maxLive;
}

/** True when circular arcs [a, a+la) and [b, b+lb) intersect mod circ. */
bool
circularOverlap(long a, long la, long b, long lb, long circ)
{
    if (la <= 0 || lb <= 0)
        return false;
    return wrapModLong(b - a, circ) < la || wrapModLong(a - b, circ) < lb;
}

} // namespace

const char *
violationKindName(ViolationKind kind)
{
    switch (kind) {
      case ViolationKind::Structure: return "structure";
      case ViolationKind::Dependence: return "dependence";
      case ViolationKind::FusedOffset: return "fused-offset";
      case ViolationKind::Resource: return "resource";
      case ViolationKind::Register: return "register";
      case ViolationKind::Kernel: return "kernel";
    }
    return "unknown";
}

int
VerifyReport::count(ViolationKind kind) const
{
    int n = 0;
    for (const Violation &v : violations)
        n += v.kind == kind;
    return n;
}

std::string
VerifyReport::describe() const
{
    std::string text;
    for (const Violation &v : violations) {
        text += strprintf("[%s] ", violationKindName(v.kind));
        text += v.message;
        text += '\n';
    }
    return text;
}

VerifyReport
verifySchedule(const Ddg &g, const Machine &m, const Schedule &s)
{
    VerifyReport report;
    if (!checkShape(g, s, report))
        return report;
    const int ii = s.ii();

    // Layer 1: dependence legality. Every live edge, including the ones
    // spill insertion added, must satisfy the modulo constraint
    // t(dst) >= t(src) + latency(src) - distance * II; fused edges must
    // sit at their exact stagger offset.
    for (EdgeId e = 0; e < g.numEdges(); ++e) {
        const Edge &edge = g.edge(e);
        if (!edge.alive)
            continue;
        const int lat = m.latency(g.node(edge.src).op);
        const int earliest =
            s.time(edge.src) + lat - ii * edge.distance;
        if (s.time(edge.dst) < earliest) {
            addViolation(
                report, ViolationKind::Dependence, edge.dst, e,
                strprintf("edge e%d %s(n%d)->%s(n%d) dist=%d lat=%d: "
                          "t(dst)=%d < t(src)+lat-dist*II=%d",
                          e, g.node(edge.src).name.c_str(), edge.src,
                          g.node(edge.dst).name.c_str(), edge.dst,
                          edge.distance, lat, s.time(edge.dst),
                          earliest));
        }
        if (edge.nonSpillable) {
            const int delay = edge.fusedDelay > 0 ? edge.fusedDelay : lat;
            if (s.time(edge.dst) != s.time(edge.src) + delay) {
                addViolation(
                    report, ViolationKind::FusedOffset, edge.dst, e,
                    strprintf("fused edge e%d %s(n%d)->%s(n%d): "
                              "t(dst)=%d != t(src)+delay=%d",
                              e, g.node(edge.src).name.c_str(), edge.src,
                              g.node(edge.dst).name.c_str(), edge.dst,
                              s.time(edge.dst),
                              s.time(edge.src) + delay));
            }
        }
    }

    // Layer 2: resource legality. Rebuild a naive occupancy table from
    // the op -> unit assignments: one occupant per (class, unit,
    // cycle mod II) slot, counting every row a non-pipelined op blocks.
    // The machine's described classes size the table directly (a
    // universal machine is simply a single class).
    const int classes = m.numClasses();
    std::vector<std::vector<NodeId>> table;
    table.resize(std::size_t(classes));
    for (int c = 0; c < classes; ++c) {
        table[std::size_t(c)].assign(
            std::size_t(m.unitsInClass(c)) * std::size_t(ii), invalidNode);
    }
    for (NodeId n = 0; n < g.numNodes(); ++n) {
        const Opcode op = g.node(n).op;
        const int cls = m.classOf(op);
        const int units = m.unitsInClass(cls);
        const int u = s.unit(n);
        if (u < 0 || u >= units) {
            addViolation(
                report, ViolationKind::Resource, n, -1,
                strprintf("node %s (n%d) assigned unit %d outside the "
                          "%d %s units",
                          g.node(n).name.c_str(), n, u, units,
                          m.className(cls).c_str()));
            continue;
        }
        const int occ = m.occupancy(op);
        if (occ > ii) {
            addViolation(
                report, ViolationKind::Resource, n, -1,
                strprintf("node %s (n%d) occupies a %s unit for %d "
                          "cycles > II=%d",
                          g.node(n).name.c_str(), n, m.className(cls).c_str(),
                          occ, ii));
            continue;
        }
        for (int c = 0; c < occ; ++c) {
            const int row = wrapMod(s.time(n) + c, ii);
            NodeId &slot = table[std::size_t(cls)][
                std::size_t(u) * std::size_t(ii) + std::size_t(row)];
            if (slot != invalidNode) {
                addViolation(
                    report, ViolationKind::Resource, n, -1,
                    strprintf("slot (%s, unit %d, row %d) claimed by "
                              "both %s (n%d) and %s (n%d)",
                              m.className(cls).c_str(), u, row,
                              g.node(slot).name.c_str(), slot,
                              g.node(n).name.c_str(), n));
            } else {
                slot = n;
            }
        }
    }
    return report;
}

VerifyReport
verifyAllocation(const Ddg &g, const Schedule &s,
                 const AllocationOutcome &alloc)
{
    VerifyReport report;
    if (!checkShape(g, s, report))
        return report;
    const long ii = s.ii();

    const std::vector<LiveRange> ranges = recomputeLiveRanges(g, s);
    const int maxLive = recomputeMaxLive(ranges, int(ii));
    if (alloc.maxLive != maxLive) {
        addViolation(
            report, ViolationKind::Register, invalidNode, -1,
            strprintf("reported MaxLive %d != recomputed %d",
                      alloc.maxLive, maxLive));
    }

    int liveInvariants = 0;
    for (InvId i = 0; i < g.numInvariants(); ++i)
        liveInvariants += !g.invariant(i).spilled;
    if (alloc.invariants != liveInvariants) {
        addViolation(
            report, ViolationKind::Register, invalidNode, -1,
            strprintf("reported %d invariant registers but the graph "
                      "has %d live invariants",
                      alloc.invariants, liveInvariants));
    }
    if (alloc.regsRequired != alloc.rotating + alloc.invariants) {
        addViolation(
            report, ViolationKind::Register, invalidNode, -1,
            strprintf("regsRequired %d != rotating %d + invariants %d",
                      alloc.regsRequired, alloc.rotating,
                      alloc.invariants));
    }

    bool anyLong = false;
    for (const LiveRange &lr : ranges)
        anyLong |= lr.length() > 0;

    if (!alloc.rotAlloc.ok) {
        // The allocation never completed (over-budget result kept for
        // reporting). Claiming a fit without an allocation is the one
        // thing still checkable.
        if (alloc.fits && anyLong) {
            addViolation(
                report, ViolationKind::Register, invalidNode, -1,
                "result claims to fit its budget but carries no "
                "completed rotating allocation");
        }
        return report;
    }

    const int regs = alloc.rotAlloc.registers;
    if (regs != alloc.rotating) {
        addViolation(
            report, ViolationKind::Register, invalidNode, -1,
            strprintf("allocation uses %d rotating registers but the "
                      "outcome reports %d",
                      regs, alloc.rotating));
    }
    if (anyLong && regs < maxLive) {
        addViolation(
            report, ViolationKind::Register, invalidNode, -1,
            strprintf("%d rotating registers cannot hold %d "
                      "simultaneously live values",
                      regs, maxLive));
        return report;
    }
    if (!anyLong)
        return report;

    // Value v at offset o occupies the circular arc
    // [(start - o*II) mod R*II, +length) of the rotating file (instance
    // i sits in physical register (o + i) mod R during
    // [start + i*II, end + i*II)); two values are in one register at
    // one time exactly when their arcs intersect.
    const long circ = long(regs) * ii;
    struct PlacedArc
    {
        const LiveRange *range;
        long pos;
    };
    std::vector<PlacedArc> placed;
    for (const LiveRange &lr : ranges) {
        if (lr.length() <= 0)
            continue;
        const int off = alloc.rotAlloc.offset[std::size_t(lr.producer)];
        if (off < 0 || off >= regs) {
            addViolation(
                report, ViolationKind::Register, lr.producer, -1,
                strprintf("live value %s (n%d) has register offset %d "
                          "outside the %d-register file",
                          g.node(lr.producer).name.c_str(), lr.producer,
                          off, regs));
            continue;
        }
        if (lr.length() > circ) {
            addViolation(
                report, ViolationKind::Register, lr.producer, -1,
                strprintf("value %s (n%d) lives %ld cycles, longer "
                          "than the whole %ld-cycle file",
                          g.node(lr.producer).name.c_str(), lr.producer,
                          lr.length(), circ));
            continue;
        }
        placed.push_back(
            {&lr, wrapModLong(lr.start - long(off) * ii, circ)});
    }
    for (std::size_t i = 0; i < placed.size(); ++i) {
        for (std::size_t j = i + 1; j < placed.size(); ++j) {
            const PlacedArc &a = placed[i];
            const PlacedArc &b = placed[j];
            if (circularOverlap(a.pos, a.range->length(), b.pos,
                                b.range->length(), circ)) {
                addViolation(
                    report, ViolationKind::Register, a.range->producer,
                    -1,
                    strprintf(
                        "values %s (n%d, [%ld,%ld)) and %s (n%d, "
                        "[%ld,%ld)) share a rotating register",
                        g.node(a.range->producer).name.c_str(),
                        a.range->producer, a.range->start, a.range->end,
                        g.node(b.range->producer).name.c_str(),
                        b.range->producer, b.range->start,
                        b.range->end));
            }
        }
    }
    return report;
}

VerifyReport
verifyMveAllocation(const Ddg &g, const Schedule &s,
                    const MveAllocResult &mve)
{
    VerifyReport report;
    if (!checkShape(g, s, report))
        return report;
    const long ii = s.ii();
    const int unroll = mve.unroll;
    if (unroll < 1) {
        addViolation(report, ViolationKind::Register, invalidNode, -1,
                     strprintf("MVE unroll factor %d < 1", unroll));
        return report;
    }
    const long circ = long(unroll) * ii;

    // Rebuild each register name's arc set on the unrolled time circle:
    // value v with period p assigns instance j to name j mod p, so name
    // b of v owns the arcs started at start + j*II for j == b (mod p).
    struct NameUse
    {
        NodeId value;
        int name;
        int reg;
        std::vector<long> starts;
        long len;
    };
    std::vector<NameUse> names;
    for (const LiveRange &lr : recomputeLiveRanges(g, s)) {
        if (lr.length() <= 0)
            continue;
        const NodeId n = lr.producer;
        const int need = int((lr.length() + ii - 1) / ii);
        if (need > unroll) {
            addViolation(
                report, ViolationKind::Register, n, -1,
                strprintf("value %s (n%d) needs %d concurrent "
                          "instances but the kernel is unrolled %d "
                          "times",
                          g.node(n).name.c_str(), n, need, unroll));
            continue;
        }
        const int p = mve.period[std::size_t(n)];
        if (p < need || p > unroll || unroll % p != 0) {
            addViolation(
                report, ViolationKind::Register, n, -1,
                strprintf("value %s (n%d) has name period %d; need a "
                          "divisor of unroll %d covering %d instances",
                          g.node(n).name.c_str(), n, p, unroll, need));
            continue;
        }
        for (int b = 0; b < p; ++b) {
            const int reg = std::size_t(n) < mve.nameRegs.size() &&
                                    b < int(mve.nameRegs[std::size_t(n)]
                                                .size())
                                ? mve.nameRegs[std::size_t(n)][
                                      std::size_t(b)]
                                : -1;
            if (reg < 0 || reg >= mve.registers) {
                addViolation(
                    report, ViolationKind::Register, n, -1,
                    strprintf("name %d of value %s (n%d) mapped to "
                              "register %d outside the %d allocated",
                              b, g.node(n).name.c_str(), n, reg,
                              mve.registers));
                continue;
            }
            NameUse use;
            use.value = n;
            use.name = b;
            use.reg = reg;
            use.len = lr.length();
            for (int j = b; j < unroll; j += p)
                use.starts.push_back(
                    wrapModLong(lr.start + long(j) * ii, circ));
            names.push_back(std::move(use));
        }
    }

    for (std::size_t i = 0; i < names.size(); ++i) {
        for (std::size_t j = i + 1; j < names.size(); ++j) {
            const NameUse &a = names[i];
            const NameUse &b = names[j];
            if (a.reg != b.reg)
                continue;
            bool clash = false;
            for (long qa : a.starts) {
                for (long qb : b.starts) {
                    clash |= circularOverlap(qa, a.len, qb, b.len, circ);
                }
            }
            if (clash) {
                addViolation(
                    report, ViolationKind::Register, a.value, -1,
                    strprintf("MVE names n%d#%d and n%d#%d overlap in "
                              "register %d",
                              a.value, a.name, b.value, b.name, a.reg));
            }
        }
    }
    return report;
}

VerifyReport
verifyKernel(const Ddg &g, const Schedule &s)
{
    VerifyReport report;
    if (!checkShape(g, s, report))
        return report;
    return verifyKernelLayout(g, s, buildKernel(g, s));
}

VerifyReport
verifyKernelLayout(const Ddg &g, const Schedule &s,
                   const KernelCode &kernel)
{
    VerifyReport report;
    if (!checkShape(g, s, report))
        return report;
    const int ii = s.ii();

    if (kernel.ii != ii) {
        addViolation(report, ViolationKind::Kernel, invalidNode, -1,
                     strprintf("kernel II %d != schedule II %d",
                               kernel.ii, ii));
        return report;
    }
    if (int(kernel.rows.size()) != ii) {
        addViolation(
            report, ViolationKind::Kernel, invalidNode, -1,
            strprintf("kernel has %d rows, II is %d",
                      int(kernel.rows.size()), ii));
        return report;
    }

    std::vector<bool> seen(std::size_t(g.numNodes()), false);
    for (int row = 0; row < ii; ++row) {
        for (const KernelSlot &slot : kernel.rows[std::size_t(row)]) {
            if (slot.node < 0 || slot.node >= g.numNodes()) {
                addViolation(
                    report, ViolationKind::Kernel, slot.node, -1,
                    strprintf("kernel row %d names node n%d outside "
                              "the graph",
                              row, slot.node));
                continue;
            }
            if (seen[std::size_t(slot.node)]) {
                addViolation(
                    report, ViolationKind::Kernel, slot.node, -1,
                    strprintf("node %s (n%d) appears twice in the "
                              "kernel",
                              g.node(slot.node).name.c_str(),
                              slot.node));
                continue;
            }
            seen[std::size_t(slot.node)] = true;
            // The fold is row = t mod II, stage = floor(t / II), so
            // stage * II + row must reproduce the issue cycle exactly.
            const int t = slot.stage * ii + row;
            if (t != s.time(slot.node)) {
                addViolation(
                    report, ViolationKind::Kernel, slot.node, -1,
                    strprintf("kernel slot (row %d, stage %d) of %s "
                              "(n%d) unfolds to cycle %d, scheduled "
                              "at %d",
                              row, slot.stage,
                              g.node(slot.node).name.c_str(), slot.node,
                              t, s.time(slot.node)));
            }
        }
    }
    for (NodeId n = 0; n < g.numNodes(); ++n) {
        if (!seen[std::size_t(n)]) {
            addViolation(
                report, ViolationKind::Kernel, n, -1,
                strprintf("node %s (n%d) missing from the kernel",
                          g.node(n).name.c_str(), n));
        }
    }

    int minStage = INT32_MAX, maxStage = INT32_MIN;
    for (NodeId n = 0; n < g.numNodes(); ++n) {
        const int stage = wrapDiv(s.time(n), ii);
        minStage = std::min(minStage, stage);
        maxStage = std::max(maxStage, stage);
    }
    if (kernel.stageCount != maxStage - minStage + 1) {
        addViolation(
            report, ViolationKind::Kernel, invalidNode, -1,
            strprintf("kernel reports %d stages; the schedule spans %d",
                      kernel.stageCount, maxStage - minStage + 1));
    }
    return report;
}

VerifyReport
verifyResult(const Ddg &input, const Machine &m,
             const PipelineResult &result)
{
    VerifyReport report;
    const Ddg &g = result.graph();

    // Structural anchor against the untransformed loop: spilling may
    // append spill nodes and kill edges but never rewrites or removes
    // the original operations.
    if (result.ownsGraph()) {
        if (g.numNodes() < input.numNodes()) {
            addViolation(
                report, ViolationKind::Structure, invalidNode, -1,
                strprintf("transformed graph has %d nodes, fewer than "
                          "the %d-node input",
                          g.numNodes(), input.numNodes()));
            return report;
        }
        const int checkable = std::min(g.numNodes(), input.numNodes());
        for (NodeId n = 0; n < checkable; ++n) {
            if (g.node(n).op != input.node(n).op ||
                g.node(n).origin != NodeOrigin::Original) {
                addViolation(
                    report, ViolationKind::Structure, n, -1,
                    strprintf("original node n%d was rewritten by the "
                              "spill transformation",
                              n));
            }
        }
        for (NodeId n = input.numNodes(); n < g.numNodes(); ++n) {
            if (g.node(n).origin == NodeOrigin::Original) {
                addViolation(
                    report, ViolationKind::Structure, n, -1,
                    strprintf("appended node n%d claims to be an "
                              "original operation",
                              n));
            }
        }
    } else if (&g != &input) {
        addViolation(report, ViolationKind::Structure, invalidNode, -1,
                     "result is bound to a different input graph than "
                     "the one it was asked to schedule");
        return report;
    }
    if (!report.ok())
        return report;

    VerifyReport sched = verifySchedule(g, m, result.sched);
    const bool shapeOk = sched.count(ViolationKind::Structure) == 0;
    report.violations.insert(
        report.violations.end(),
        std::make_move_iterator(sched.violations.begin()),
        std::make_move_iterator(sched.violations.end()));
    if (!shapeOk)
        return report;

    VerifyReport alloc = verifyAllocation(g, result.sched, result.alloc);
    report.violations.insert(
        report.violations.end(),
        std::make_move_iterator(alloc.violations.begin()),
        std::make_move_iterator(alloc.violations.end()));

    VerifyReport kernel = verifyKernel(g, result.sched);
    report.violations.insert(
        report.violations.end(),
        std::make_move_iterator(kernel.violations.begin()),
        std::make_move_iterator(kernel.violations.end()));
    return report;
}

} // namespace swp
