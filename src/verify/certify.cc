#include "verify/certify.hh"

#include <algorithm>

#include "support/diag.hh"
#include "support/strutil.hh"

namespace swp
{

const char *
certKindName(CertKind kind)
{
    switch (kind) {
      case CertKind::Recurrence: return "recurrence";
      case CertKind::Resource: return "resource";
      case CertKind::RegisterFloor: return "register-floor";
      case CertKind::Consistency: return "consistency";
    }
    SWP_PANIC("unknown certificate kind ", int(kind));
}

int
CertReport::count(CertKind kind) const
{
    int n = 0;
    for (const CertDiag &d : diags) {
        if (d.kind == kind)
            ++n;
    }
    return n;
}

std::string
CertReport::describe() const
{
    std::string out;
    for (const CertDiag &d : diags) {
        out += strprintf("[%s] ", certKindName(d.kind));
        out += d.message;
        out += '\n';
    }
    return out;
}

namespace
{

/** ceil(a / b) for a >= 0, b >= 1. */
long
ceilDiv(long a, long b)
{
    SWP_ASSERT(a >= 0 && b >= 1, "ceilDiv(", a, ", ", b, ")");
    return (a + b - 1) / b;
}

void
addDiag(CertReport &report, CertKind kind, std::string message)
{
    report.diags.push_back({kind, std::move(message)});
}

/** A live dependence edge, flattened for the Bellman–Ford passes. */
struct LiveEdge
{
    EdgeId id = -1;
    NodeId src = invalidNode;
    NodeId dst = invalidNode;
    long latency = 0;
    long distance = 0;
};

std::vector<LiveEdge>
gatherLiveEdges(const Ddg &g, const Machine &m)
{
    std::vector<LiveEdge> edges;
    edges.reserve(std::size_t(g.numEdges()));
    for (EdgeId e = 0; e < g.numEdges(); ++e) {
        const Edge &ed = g.edge(e);
        if (!ed.alive)
            continue;
        edges.push_back({e, ed.src, ed.dst,
                         long(m.latency(g.node(ed.src).op)),
                         long(ed.distance)});
    }
    return edges;
}

/**
 * Longest-path Bellman–Ford over edge weights latency - ii * distance,
 * every node a source (dist 0). Returns true iff a positive cycle
 * exists — i.e. some dependence recurrence cannot fit in `ii` cycles
 * per iteration. `parent` records the last improving in-edge per node
 * and `relaxed` collects the nodes still improving in the final pass
 * (the positive-cycle extraction seeds); either may be null.
 */
bool
hasPositiveCycle(const std::vector<LiveEdge> &edges, int numNodes,
                 long ii, int passes, std::vector<EdgeId> *parent,
                 std::vector<NodeId> *relaxed)
{
    std::vector<long> dist(std::size_t(numNodes), 0);
    if (parent)
        parent->assign(std::size_t(numNodes), -1);
    if (relaxed)
        relaxed->clear();
    for (int pass = 0; pass < passes; ++pass) {
        bool changed = false;
        const bool last = pass == passes - 1;
        for (const LiveEdge &e : edges) {
            const long w = e.latency - ii * e.distance;
            if (dist[std::size_t(e.src)] + w > dist[std::size_t(e.dst)]) {
                dist[std::size_t(e.dst)] = dist[std::size_t(e.src)] + w;
                if (parent)
                    (*parent)[std::size_t(e.dst)] = e.id;
                if (last && relaxed)
                    relaxed->push_back(e.dst);
                changed = true;
            }
        }
        if (!changed)
            return false;
    }
    // Still relaxing after `passes` >= numNodes rounds: simple paths
    // have at most numNodes - 1 edges, so a longer improving walk
    // must revisit a node through a positive cycle.
    return true;
}

/**
 * Extract a closed walk of live edges that is a positive cycle at the
 * given ii, by following the Bellman–Ford parent pointers back from a
 * node that was still relaxing in the final pass. The caller verifies
 * the walk's ratio; this only returns structurally closed walks.
 */
std::vector<EdgeId>
extractCycle(const Ddg &g, const std::vector<EdgeId> &parent,
             NodeId seed, int numNodes)
{
    // Walk back numNodes steps to guarantee landing inside a cycle of
    // the parent graph (a shorter chain ending at a parentless node
    // cannot have been relaxed in pass numNodes).
    NodeId x = seed;
    for (int i = 0; i < numNodes; ++i) {
        const EdgeId pe = parent[std::size_t(x)];
        if (pe < 0)
            return {};
        x = g.edge(pe).src;
    }
    // Keep walking backward until a node repeats; the segment between
    // the repeat's two visits is the cycle. walk[i] is the parent edge
    // of the i-th visited node (its dst), so the segment is in
    // backward order and gets reversed into src -> dst walk order.
    std::vector<EdgeId> walk;
    std::vector<int> visitedAt(std::size_t(numNodes), -1);
    NodeId y = x;
    while (visitedAt[std::size_t(y)] < 0) {
        visitedAt[std::size_t(y)] = int(walk.size());
        const EdgeId pe = parent[std::size_t(y)];
        if (pe < 0)
            return {};
        walk.push_back(pe);
        y = g.edge(pe).src;
    }
    std::vector<EdgeId> cycle(
        walk.begin() + visitedAt[std::size_t(y)], walk.end());
    std::reverse(cycle.begin(), cycle.end());
    return cycle;
}

/** Sum of latencies/distances along a walk of edge ids. */
void
walkSums(const Ddg &g, const Machine &m, const std::vector<EdgeId> &walk,
         long &latencySum, long &distanceSum)
{
    latencySum = 0;
    distanceSum = 0;
    for (const EdgeId e : walk) {
        latencySum += m.latency(g.node(g.edge(e).src).op);
        distanceSum += g.edge(e).distance;
    }
}

/** True if the walk is closed, fully live, and in-range. */
bool
walkClosed(const Ddg &g, const std::vector<EdgeId> &walk)
{
    if (walk.empty())
        return false;
    for (std::size_t i = 0; i < walk.size(); ++i) {
        const EdgeId e = walk[i];
        if (e < 0 || e >= g.numEdges() || !g.edge(e).alive)
            return false;
        const EdgeId next = walk[(i + 1) % walk.size()];
        if (next < 0 || next >= g.numEdges())
            return false;
        if (g.edge(e).dst != g.edge(next).src)
            return false;
    }
    return true;
}

CycleCertificate
certifyRecurrences(const Ddg &g, const Machine &m)
{
    CycleCertificate cert;
    const std::vector<LiveEdge> edges = gatherLiveEdges(g, m);
    const int n = g.numNodes();
    if (n == 0 || edges.empty())
        return cert;

    long latTotal = 0;
    for (NodeId v = 0; v < n; ++v)
        latTotal += m.latency(g.node(v).op);

    // Smallest ii with no positive cycle, by bisection. A simple cycle
    // sums at most every node's latency over distance >= 1, so its
    // ratio — and therefore the recurrence bound — is at most latTotal.
    if (!hasPositiveCycle(edges, n, 1, n, nullptr, nullptr))
        return cert;  // Feasible at II = 1: no recurrence constraint.
    long lo = 1;        // Known positive (infeasible).
    long hi = latTotal; // Known feasible.
    SWP_ASSERT(!hasPositiveCycle(edges, n, hi, n, nullptr, nullptr),
               "recurrence bound above the latency total in '", g.name(),
               "'");
    while (hi - lo > 1) {
        const long mid = lo + (hi - lo) / 2;
        if (hasPositiveCycle(edges, n, mid, n, nullptr, nullptr))
            lo = mid;
        else
            hi = mid;
    }
    cert.bound = int(hi);

    // Extract an explicit critical cycle at the last infeasible ii:
    // any positive cycle there has latencySum > lo * distanceSum, so
    // ceil(latencySum / distanceSum) >= lo + 1 == bound. The extracted
    // walk is verified before acceptance; if a parent chain turns out
    // degenerate (it terminates at an unparented node), rerunning with
    // more passes tightens the parent graph until one verifies.
    for (int passes = n; passes <= 8 * n; passes *= 2) {
        std::vector<EdgeId> parent;
        std::vector<NodeId> relaxed;
        const bool positive =
            hasPositiveCycle(edges, n, lo, passes, &parent, &relaxed);
        SWP_ASSERT(positive, "positive cycle vanished at ii ", lo,
                   " in '", g.name(), "'");
        for (const NodeId seed : relaxed) {
            const std::vector<EdgeId> cycle =
                extractCycle(g, parent, seed, n);
            if (!walkClosed(g, cycle))
                continue;
            long latSum = 0;
            long distSum = 0;
            walkSums(g, m, cycle, latSum, distSum);
            if (distSum <= 0 || ceilDiv(latSum, distSum) < cert.bound)
                continue;
            cert.edges = cycle;
            cert.latencySum = latSum;
            cert.distanceSum = distSum;
            return cert;
        }
    }
    SWP_PANIC("no critical cycle extractable at recurrence bound ",
              cert.bound, " in '", g.name(), "'");
}

/** Tallies of the machine's described classes, ascending class index. */
std::vector<ResourceTally>
recountTallies(const Ddg &g, const Machine &m)
{
    std::vector<ResourceTally> tallies;
    for (int c = 0; c < m.numClasses(); ++c) {
        ResourceTally t;
        t.fuClass = c;
        t.units = m.unitsInClass(c);
        for (NodeId v = 0; v < g.numNodes(); ++v) {
            if (m.classOf(g.node(v).op) != c)
                continue;
            ++t.ops;
            t.occupancy += m.occupancy(g.node(v).op);
        }
        if (t.ops == 0)
            continue;
        SWP_ASSERT(t.units >= 1, "ops of class ", m.className(c),
                   " on a machine with no such unit in '", g.name(), "'");
        t.bound = int(ceilDiv(t.occupancy, t.units));
        tallies.push_back(t);
    }
    return tallies;
}

/** Largest single-op occupancy and its (first) witness node. */
void
recountMaxOccupancy(const Ddg &g, const Machine &m, int &occ, NodeId &node)
{
    occ = 0;
    node = invalidNode;
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        const int o = m.occupancy(g.node(v).op);
        if (o > occ) {
            occ = o;
            node = v;
        }
    }
}

ResourceCertificate
certifyResources(const Ddg &g, const Machine &m)
{
    ResourceCertificate cert;
    cert.tallies = recountTallies(g, m);
    recountMaxOccupancy(g, m, cert.maxOccupancy, cert.maxOccupancyNode);
    cert.bound = std::max(1, cert.maxOccupancy);
    for (const ResourceTally &t : cert.tallies)
        cert.bound = std::max(cert.bound, t.bound);
    return cert;
}

/** Expected register terms: every value with a live flow use floors
    its lifetime at the producer's latency. Ascending by value id. */
std::vector<RegisterTerm>
recountRegisterTerms(const Ddg &g, const Machine &m)
{
    std::vector<RegisterTerm> terms;
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        if (!producesValue(g.node(v).op) || g.numValueUses(v) == 0)
            continue;
        terms.push_back({v, m.latency(g.node(v).op)});
    }
    return terms;
}

RegisterCertificate
certifyRegisters(const Ddg &g, const Machine &m, int ii)
{
    SWP_ASSERT(ii >= 1, "register floor needs ii >= 1, got ", ii);
    RegisterCertificate cert;
    cert.ii = ii;
    cert.terms = recountRegisterTerms(g, m);
    for (const RegisterTerm &t : cert.terms)
        cert.lifetimeSum += t.minLifetime;
    cert.invariants = g.numLiveInvariants();
    cert.bound = cert.invariants + int(ceilDiv(cert.lifetimeSum, ii));
    return cert;
}

void
checkCycleCertificate(const Ddg &g, const Machine &m,
                      const CycleCertificate &cert, CertReport &report)
{
    if (cert.bound < 1) {
        addDiag(report, CertKind::Recurrence,
                strprintf("recurrence bound %d below the trivial II >= 1",
                          cert.bound));
        return;
    }
    if (cert.edges.empty()) {
        if (cert.bound > 1) {
            addDiag(report, CertKind::Recurrence,
                    strprintf("recurrence bound %d claimed without a "
                              "witness cycle",
                              cert.bound));
        }
        return;
    }
    for (std::size_t i = 0; i < cert.edges.size(); ++i) {
        const EdgeId e = cert.edges[i];
        if (e < 0 || e >= g.numEdges()) {
            addDiag(report, CertKind::Recurrence,
                    strprintf("cycle edge %zu (id %d) outside the graph",
                              i, e));
            return;
        }
        if (!g.edge(e).alive) {
            addDiag(report, CertKind::Recurrence,
                    strprintf("cycle edge %zu (id %d, %d -> %d) is dead",
                              i, e, g.edge(e).src, g.edge(e).dst));
            return;
        }
        const EdgeId next = cert.edges[(i + 1) % cert.edges.size()];
        if (next < 0 || next >= g.numEdges())
            continue;  // Reported by its own iteration.
        if (g.edge(e).dst != g.edge(next).src) {
            addDiag(report, CertKind::Recurrence,
                    strprintf("cycle broken between edge %zu (id %d, "
                              "%d -> %d) and edge %zu (id %d, %d -> %d)",
                              i, e, g.edge(e).src, g.edge(e).dst,
                              (i + 1) % cert.edges.size(), next,
                              g.edge(next).src, g.edge(next).dst));
            return;
        }
    }
    long latSum = 0;
    long distSum = 0;
    walkSums(g, m, cert.edges, latSum, distSum);
    if (latSum != cert.latencySum || distSum != cert.distanceSum) {
        addDiag(report, CertKind::Recurrence,
                strprintf("cycle tallies claim latency %ld / distance "
                          "%ld, the walk sums to %ld / %ld",
                          cert.latencySum, cert.distanceSum, latSum,
                          distSum));
        return;
    }
    if (distSum <= 0) {
        addDiag(report, CertKind::Recurrence,
                strprintf("cycle has distance sum %ld; a legal loop has "
                          "no zero-distance cycle",
                          distSum));
        return;
    }
    if (ceilDiv(latSum, distSum) < cert.bound) {
        addDiag(report, CertKind::Recurrence,
                strprintf("cycle proves II >= %ld, certificate claims "
                          "II >= %d",
                          ceilDiv(latSum, distSum), cert.bound));
    }
}

void
checkResourceCertificate(const Ddg &g, const Machine &m,
                         const ResourceCertificate &cert,
                         CertReport &report)
{
    const std::vector<ResourceTally> expect = recountTallies(g, m);
    if (cert.tallies.size() != expect.size()) {
        addDiag(report, CertKind::Resource,
                strprintf("certificate has %zu class tallies, the "
                          "graph/machine have %zu non-empty classes",
                          cert.tallies.size(), expect.size()));
        return;
    }
    for (std::size_t i = 0; i < expect.size(); ++i) {
        const ResourceTally &got = cert.tallies[i];
        const ResourceTally &want = expect[i];
        if (got.fuClass != want.fuClass || got.ops != want.ops ||
            got.occupancy != want.occupancy ||
            got.units != want.units || got.bound != want.bound) {
            const char *name = want.fuClass < 0
                                   ? "universal"
                                   : m.className(want.fuClass).c_str();
            addDiag(report, CertKind::Resource,
                    strprintf("class %s tally mismatch: certificate "
                              "has ops %d occ %ld units %d bound %d, "
                              "recount gives ops %d occ %ld units %d "
                              "bound %d",
                              name, got.ops, got.occupancy, got.units,
                              got.bound, want.ops, want.occupancy,
                              want.units, want.bound));
            return;
        }
    }
    int maxOcc = 0;
    NodeId maxNode = invalidNode;
    recountMaxOccupancy(g, m, maxOcc, maxNode);
    if (cert.maxOccupancy != maxOcc) {
        addDiag(report, CertKind::Resource,
                strprintf("max single-op occupancy claimed %d, recount "
                          "gives %d",
                          cert.maxOccupancy, maxOcc));
        return;
    }
    if (maxOcc > 0) {
        const NodeId w = cert.maxOccupancyNode;
        if (w < 0 || w >= g.numNodes() ||
            m.occupancy(g.node(w).op) != maxOcc) {
            addDiag(report, CertKind::Resource,
                    strprintf("occupancy witness node %d does not "
                              "occupy its unit for %d cycles",
                              w, maxOcc));
            return;
        }
    }
    int bound = std::max(1, maxOcc);
    for (const ResourceTally &t : expect)
        bound = std::max(bound, t.bound);
    if (cert.bound != bound) {
        addDiag(report, CertKind::Resource,
                strprintf("resource bound claimed %d, tallies prove %d",
                          cert.bound, bound));
    }
}

void
checkRegisterCertificate(const Ddg &g, const Machine &m,
                         const RegisterCertificate &cert,
                         CertReport &report)
{
    if (cert.ii < 1) {
        addDiag(report, CertKind::RegisterFloor,
                strprintf("register floor at ii %d (needs ii >= 1)",
                          cert.ii));
        return;
    }
    const std::vector<RegisterTerm> expect = recountRegisterTerms(g, m);
    if (cert.terms.size() != expect.size()) {
        addDiag(report, CertKind::RegisterFloor,
                strprintf("certificate has %zu lifetime terms, the "
                          "graph has %zu live values",
                          cert.terms.size(), expect.size()));
        return;
    }
    long sum = 0;
    for (std::size_t i = 0; i < expect.size(); ++i) {
        const RegisterTerm &got = cert.terms[i];
        const RegisterTerm &want = expect[i];
        if (got.value != want.value || got.minLifetime != want.minLifetime) {
            addDiag(report, CertKind::RegisterFloor,
                    strprintf("lifetime term %zu claims value %d floor "
                              "%d; the flow constraints prove value %d "
                              "floor %d",
                              i, got.value, got.minLifetime, want.value,
                              want.minLifetime));
            return;
        }
        sum += want.minLifetime;
    }
    if (cert.lifetimeSum != sum) {
        addDiag(report, CertKind::RegisterFloor,
                strprintf("lifetime sum claimed %ld, terms sum to %ld",
                          cert.lifetimeSum, sum));
        return;
    }
    const int invariants = g.numLiveInvariants();
    if (cert.invariants != invariants) {
        addDiag(report, CertKind::RegisterFloor,
                strprintf("invariant count claimed %d, the graph has %d "
                          "live invariants",
                          cert.invariants, invariants));
        return;
    }
    const int bound = invariants + int(ceilDiv(sum, cert.ii));
    if (cert.bound != bound) {
        addDiag(report, CertKind::RegisterFloor,
                strprintf("register floor claimed %d at ii %d, the "
                          "terms prove %d",
                          cert.bound, cert.ii, bound));
    }
}

} // namespace

Certificate
certifyLoop(const Ddg &g, const Machine &m, int ii)
{
    Certificate cert;
    cert.cycle = certifyRecurrences(g, m);
    cert.resource = certifyResources(g, m);
    cert.registers = certifyRegisters(g, m, ii);
    cert.iiBound = std::max(cert.cycle.bound, cert.resource.bound);
    return cert;
}

CertReport
checkCertificate(const Ddg &g, const Machine &m, const Certificate &cert)
{
    CertReport report;
    checkCycleCertificate(g, m, cert.cycle, report);
    checkResourceCertificate(g, m, cert.resource, report);
    checkRegisterCertificate(g, m, cert.registers, report);
    if (cert.iiBound != std::max(cert.cycle.bound, cert.resource.bound)) {
        addDiag(report, CertKind::Consistency,
                strprintf("II bound claimed %d, the certificates prove "
                          "max(%d, %d)",
                          cert.iiBound, cert.cycle.bound,
                          cert.resource.bound));
    }
    return report;
}

CertReport
checkCertificateAgainstResult(const Certificate &cert,
                              const PipelineResult &result)
{
    CertReport report;
    const int ii = result.sched.ii();
    if (ii < cert.iiBound) {
        addDiag(report, CertKind::Consistency,
                strprintf("achieved II %d beats the certified lower "
                          "bound %d — schedule or bound machinery is "
                          "broken",
                          ii, cert.iiBound));
    }
    if (cert.registers.ii != ii) {
        addDiag(report, CertKind::Consistency,
                strprintf("register floor proven at ii %d, the result "
                          "runs at II %d",
                          cert.registers.ii, ii));
    } else if (result.alloc.regsRequired < cert.registers.bound) {
        addDiag(report, CertKind::Consistency,
                strprintf("achieved allocation uses %d registers, "
                          "below the certified floor %d at II %d",
                          result.alloc.regsRequired,
                          cert.registers.bound, ii));
    }
    return report;
}

CertSummary
summarizeCertificate(const Certificate &cert, const PipelineResult &result)
{
    CertSummary s;
    s.valid = true;
    s.loop = result.graph().name();
    s.achievedIi = result.sched.ii();
    s.achievedRegs = result.alloc.regsRequired;
    s.recBound = cert.cycle.bound;
    s.resBound = cert.resource.bound;
    s.iiBound = cert.iiBound;
    s.regBound = cert.registers.bound;
    s.cycleEdges = int(cert.cycle.edges.size());
    return s;
}

std::string
certSummaryJson(int job, const CertSummary &s)
{
    return strprintf(
        "{\"job\": %d, \"loop\": %s, \"ii\": %d, \"regs\": %d, "
        "\"rec_bound\": %d, \"res_bound\": %d, \"ii_bound\": %d, "
        "\"reg_floor\": %d, \"cycle_edges\": %d, \"gap\": %d, "
        "\"reg_gap\": %d}",
        job, jsonQuote(s.loop).c_str(), s.achievedIi, s.achievedRegs,
        s.recBound, s.resBound, s.iiBound, s.regBound, s.cycleEdges,
        s.gap(), s.regGap());
}

GapReport
summarizeGaps(const std::vector<CertSummary> &summaries)
{
    GapReport r;
    for (const CertSummary &s : summaries) {
        if (!s.valid)
            continue;
        ++r.jobs;
        const int gap = s.gap();
        if (gap == 0)
            ++r.optimal;
        else if (gap == 1)
            ++r.gapOne;
        else
            ++r.unproven;
        r.gapSum += gap;
        if (s.regGap() == 0)
            ++r.regExact;
    }
    return r;
}

std::string
describeGapReport(const GapReport &r)
{
    const double mean = r.jobs ? double(r.gapSum) / double(r.jobs) : 0.0;
    return strprintf(
        "certify: %d jobs; II proven optimal on %d, within 1 on %d, "
        "unproven on %d (mean gap %.3f); register floor met exactly on "
        "%d",
        r.jobs, r.optimal, r.gapOne, r.unproven, mean, r.regExact);
}

} // namespace swp
