/**
 * @file
 * Integration and property tests: the full register-constrained
 * pipeline over generated loops, checked end-to-end.
 *
 * For each sampled loop, machine and register budget, the property is:
 *  (a) the driver returns a schedule that validates structurally;
 *  (b) when it claims success, the allocation fits the budget and is
 *      conflict free;
 *  (c) the pipelined execution of the (possibly spilled) loop produces
 *      exactly the store streams of the sequential original.
 */

#include <gtest/gtest.h>

#include "pipeliner/pipeliner.hh"
#include "regalloc/rotalloc.hh"
#include "sim/vliw.hh"
#include "workload/suitegen.hh"

namespace swp
{
namespace
{

struct Case
{
    int loopIndex;
    int budget;
};

class PipelineProperty : public ::testing::TestWithParam<Case>
{
  protected:
    static SuiteLoop
    loopFor(int index)
    {
        SuiteParams params;
        params.numLoops = index + 1;
        return generateSuiteLoop(params, index);
    }
};

TEST_P(PipelineProperty, SpillStrategyIsSoundAndExecutesCorrectly)
{
    const Case c = GetParam();
    const SuiteLoop loop = loopFor(c.loopIndex);
    const Machine machines[] = {Machine::p1l4(), Machine::p2l4(),
                                Machine::p2l6()};

    for (const Machine &m : machines) {
        PipelinerOptions opts;
        opts.registers = c.budget;
        opts.multiSelect = true;
        opts.reuseLastIi = true;
        const PipelineResult r =
            pipelineLoop(loop.graph, m, Strategy::Spill, opts);

        std::string why;
        ASSERT_TRUE(validateSchedule(r.graph(), m, r.sched, &why))
            << loop.graph.name() << " on " << m.name() << ": " << why;

        if (!r.success)
            continue;  // Divergence is allowed; soundness is not.

        EXPECT_LE(r.alloc.regsRequired, c.budget)
            << loop.graph.name() << " on " << m.name();
        const LifetimeInfo info = analyzeLifetimes(r.graph(), r.sched);
        EXPECT_TRUE(allocationConflictFree(info, r.alloc.rotAlloc, &why))
            << loop.graph.name() << " on " << m.name() << ": " << why;

        ASSERT_TRUE(equivalentToSequential(loop.graph, r.graph(), m,
                                           r.sched, r.alloc.rotAlloc, 12,
                                           &why))
            << loop.graph.name() << " on " << m.name() << ": " << why;
    }
}

TEST_P(PipelineProperty, IncreaseIiIsSoundWhenItConverges)
{
    const Case c = GetParam();
    const SuiteLoop loop = loopFor(c.loopIndex);
    const Machine m = Machine::p2l4();

    PipelinerOptions opts;
    opts.registers = c.budget;
    const PipelineResult r =
        pipelineLoop(loop.graph, m, Strategy::IncreaseII, opts);

    std::string why;
    ASSERT_TRUE(validateSchedule(r.graph(), m, r.sched, &why))
        << loop.graph.name() << ": " << why;
    if (r.success) {
        EXPECT_LE(r.alloc.regsRequired, c.budget);
        ASSERT_TRUE(equivalentToSequential(loop.graph, r.graph(), m,
                                           r.sched, r.alloc.rotAlloc, 12,
                                           &why))
            << loop.graph.name() << ": " << why;
    }
}

TEST_P(PipelineProperty, BestOfAllMatchesOrBeatsSpill)
{
    const Case c = GetParam();
    const SuiteLoop loop = loopFor(c.loopIndex);
    const Machine m = Machine::p2l6();

    PipelinerOptions opts;
    opts.registers = c.budget;
    opts.multiSelect = true;
    opts.reuseLastIi = true;
    const PipelineResult spill =
        pipelineLoop(loop.graph, m, Strategy::Spill, opts);
    const PipelineResult best =
        pipelineLoop(loop.graph, m, Strategy::BestOfAll, opts);

    if (spill.success && !spill.usedFallback) {
        ASSERT_TRUE(best.success) << loop.graph.name();
        EXPECT_LE(best.ii(), spill.ii()) << loop.graph.name();
    }
}

std::vector<Case>
makeCases()
{
    std::vector<Case> cases;
    for (int loop = 0; loop < 18; ++loop) {
        cases.push_back({loop, 32});
        cases.push_back({loop, 16});
    }
    for (int loop = 18; loop < 24; ++loop)
        cases.push_back({loop, 64});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    SuiteSample, PipelineProperty, ::testing::ValuesIn(makeCases()),
    [](const ::testing::TestParamInfo<Case> &info) {
        return "loop" + std::to_string(info.param.loopIndex) + "_r" +
               std::to_string(info.param.budget);
    });

TEST(Integration, IdealPipelineOverSuiteSampleIsValidEverywhere)
{
    SuiteParams params;
    params.numLoops = 40;
    const auto suite = generateSuite(params);
    const Machine machines[] = {Machine::p1l4(), Machine::p2l4(),
                                Machine::p2l6()};
    for (const Machine &m : machines) {
        for (const SuiteLoop &loop : suite) {
            const PipelineResult r = pipelineIdeal(loop.graph, m);
            ASSERT_TRUE(r.success) << loop.graph.name();
            std::string why;
            ASSERT_TRUE(validateSchedule(loop.graph, m, r.sched, &why))
                << loop.graph.name() << " on " << m.name() << ": "
                << why;
        }
    }
}

TEST(Integration, SchedulerAgnosticSpilling)
{
    // The paper's claim: the spilling framework works with any core
    // scheduler. Run the same constrained problem under IMS.
    SuiteParams params;
    params.numLoops = 12;
    const auto suite = generateSuite(params);
    const Machine m = Machine::p2l4();
    for (const SuiteLoop &loop : suite) {
        PipelinerOptions opts;
        opts.registers = 16;
        opts.scheduler = SchedulerKind::Ims;
        opts.multiSelect = true;
        opts.reuseLastIi = true;
        const PipelineResult r =
            pipelineLoop(loop.graph, m, Strategy::Spill, opts);
        std::string why;
        ASSERT_TRUE(validateSchedule(r.graph(), m, r.sched, &why))
            << loop.graph.name() << ": " << why;
        if (r.success) {
            EXPECT_LE(r.alloc.regsRequired, 16) << loop.graph.name();
            ASSERT_TRUE(equivalentToSequential(loop.graph, r.graph(), m,
                                               r.sched, r.alloc.rotAlloc,
                                               10, &why))
                << loop.graph.name() << ": " << why;
        }
    }
}

} // namespace
} // namespace swp
