/**
 * @file
 * Machine-description subsystem tests: the text-format parser and its
 * diagnostics, describe/parse round-tripping of the presets, the
 * content fingerprint, spec resolution, and a property test over
 * randomized valid descriptions.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "machine/machdesc.hh"
#include "machine/machine.hh"
#include "support/diag.hh"
#include "support/rng.hh"

namespace swp
{
namespace
{

/** A minimal valid description to mutate in the rejection tests. */
const char *kValid = R"(machine Tiny
class mem 1 pipelined
class alu 2 nonpipelined
op ld mem 2
op st mem 1
op add alu 4
op mul alu 4
op div alu 17
op sqrt alu 30
op copy alu 1
op nop alu 1
op sel alu 1
)";

/** True when some diagnostic's message contains `needle`. */
bool
hasDiag(const MachParseResult &r, const std::string &needle)
{
    for (const MachDiag &d : r.diags) {
        if (d.message.find(needle) != std::string::npos)
            return true;
    }
    return false;
}

std::string
diagDump(const MachParseResult &r)
{
    std::ostringstream os;
    for (const MachDiag &d : r.diags)
        os << "line " << d.line << ": " << d.message << "\n";
    return os.str();
}

TEST(MachDesc, ParsesAValidDescription)
{
    const MachParseResult r = parseMachineDescription(kValid);
    ASSERT_TRUE(r.ok()) << diagDump(r);
    const Machine &m = *r.machine;
    EXPECT_EQ(m.name(), "Tiny");
    ASSERT_EQ(m.numClasses(), 2);
    EXPECT_EQ(m.className(0), "mem");
    EXPECT_EQ(m.unitsInClass(0), 1);
    EXPECT_TRUE(m.pipelinedClass(0));
    EXPECT_EQ(m.className(1), "alu");
    EXPECT_EQ(m.unitsInClass(1), 2);
    EXPECT_FALSE(m.pipelinedClass(1));
    EXPECT_EQ(m.classOf(Opcode::Load), 0);
    EXPECT_EQ(m.classOf(Opcode::Add), 1);
    EXPECT_EQ(m.latency(Opcode::Sqrt), 30);
    // Unpipelined class: occupancy = latency.
    EXPECT_EQ(m.occupancy(Opcode::Add), 4);
    EXPECT_EQ(m.occupancy(Opcode::Load), 1);
}

TEST(MachDesc, CommentsAndBlankLinesIgnored)
{
    std::string text = std::string("# header comment\n\n") + kValid +
                       "\n  # trailing comment\n";
    const MachParseResult r = parseMachineDescription(text);
    EXPECT_TRUE(r.ok()) << diagDump(r);
}

TEST(MachDesc, RejectsUnknownClass)
{
    std::string text(kValid);
    text += "# rebind below fails: class never declared\n";
    const MachParseResult r = parseMachineDescription(
        "machine X\nclass alu 1 pipelined\nop ld fpu 2\n");
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(hasDiag(r, "unknown class 'fpu'")) << diagDump(r);
}

TEST(MachDesc, RejectsZeroOrNegativeInstances)
{
    const MachParseResult zero =
        parseMachineDescription("machine X\nclass alu 0 pipelined\n");
    EXPECT_FALSE(zero.ok());
    EXPECT_TRUE(
        hasDiag(zero, "class 'alu' needs a positive unit count, got 0"))
        << diagDump(zero);

    const MachParseResult neg =
        parseMachineDescription("machine X\nclass alu -3 pipelined\n");
    EXPECT_TRUE(hasDiag(neg, "needs a positive unit count, got -3"))
        << diagDump(neg);
}

TEST(MachDesc, RejectsMoreThan64Instances)
{
    const MachParseResult r =
        parseMachineDescription("machine X\nclass alu 65 pipelined\n");
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(hasDiag(r, "exceeds 64 unit instances")) << diagDump(r);
}

TEST(MachDesc, RejectsMissingOpcodeBinding)
{
    // Drop the sqrt binding from the valid description.
    std::string text(kValid);
    const std::size_t pos = text.find("op sqrt");
    ASSERT_NE(pos, std::string::npos);
    text.erase(pos, text.find('\n', pos) - pos + 1);
    const MachParseResult r = parseMachineDescription(text);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(hasDiag(r, "missing opcode binding for 'sqrt'"))
        << diagDump(r);
}

TEST(MachDesc, RejectsDuplicateClass)
{
    const MachParseResult r = parseMachineDescription(
        "machine X\nclass alu 1 pipelined\nclass alu 2 pipelined\n");
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(hasDiag(r, "duplicate class 'alu'")) << diagDump(r);
}

TEST(MachDesc, RejectsDuplicateOpcodeBinding)
{
    std::string text(kValid);
    text += "op ld mem 3\n";
    const MachParseResult r = parseMachineDescription(text);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(hasDiag(r, "duplicate binding for opcode 'ld'"))
        << diagDump(r);
}

TEST(MachDesc, RejectsUnknownOpcodeAndDirective)
{
    const MachParseResult r = parseMachineDescription(
        "machine X\nclass alu 1 pipelined\nop fma alu 4\nbogus 1 2\n");
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(hasDiag(r, "unknown opcode 'fma'")) << diagDump(r);
    EXPECT_TRUE(hasDiag(r, "unknown directive 'bogus'")) << diagDump(r);
}

TEST(MachDesc, RejectsMalformedDirectivesWithLineNumbers)
{
    const MachParseResult r = parseMachineDescription(
        "machine X\n"
        "class alu one pipelined\n"     // line 2
        "class fpu 2 sometimes\n"       // line 3
        "op ld\n"                       // line 4
        "op add alu four\n"             // line 5: needs alu declared...
        "machine Y\n");                 // line 6
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(hasDiag(r, "expected an integer unit count, got 'one'"))
        << diagDump(r);
    EXPECT_TRUE(
        hasDiag(r, "expected 'pipelined' or 'nonpipelined', got 'sometimes'"))
        << diagDump(r);
    EXPECT_TRUE(hasDiag(r, "malformed op directive")) << diagDump(r);
    EXPECT_TRUE(hasDiag(r, "duplicate machine directive")) << diagDump(r);
    // Line-anchored diagnostics carry their source line; only the
    // end-of-text consistency checks report line 0.
    for (const MachDiag &d : r.diags) {
        if (d.message.find("missing opcode binding") == std::string::npos &&
            d.message.find("declares no unit classes") == std::string::npos) {
            EXPECT_GT(d.line, 0) << d.message;
        }
    }
    for (int line : {2, 3, 4, 6}) {
        bool found = false;
        for (const MachDiag &d : r.diags)
            found = found || d.line == line;
        EXPECT_TRUE(found) << "no diagnostic on line " << line << "\n"
                           << diagDump(r);
    }
}

TEST(MachDesc, RejectsEmptyAndHeaderlessText)
{
    const MachParseResult empty = parseMachineDescription("");
    EXPECT_FALSE(empty.ok());
    EXPECT_TRUE(hasDiag(empty, "missing machine directive"))
        << diagDump(empty);
    EXPECT_TRUE(hasDiag(empty, "machine declares no unit classes"))
        << diagDump(empty);
}

TEST(MachDesc, PresetsRoundTripThroughDescribe)
{
    const Machine presets[] = {Machine::p1l4(), Machine::p2l4(),
                               Machine::p2l6(),
                               Machine::universal("universal", 4, 2)};
    for (const Machine &m : presets) {
        const MachParseResult r = parseMachineDescription(m.describe());
        ASSERT_TRUE(r.ok()) << m.name() << ":\n" << diagDump(r);
        EXPECT_TRUE(*r.machine == m) << m.name();
        EXPECT_EQ(machineContentFingerprint(*r.machine),
                  machineContentFingerprint(m))
            << m.name();
    }
}

TEST(MachDesc, FingerprintSeparatesTheConfigurations)
{
    const std::uint64_t p1l4 = machineContentFingerprint(Machine::p1l4());
    const std::uint64_t p2l4 = machineContentFingerprint(Machine::p2l4());
    const std::uint64_t p2l6 = machineContentFingerprint(Machine::p2l6());
    EXPECT_NE(p1l4, p2l4);
    EXPECT_NE(p2l4, p2l6);
    EXPECT_NE(p1l4, p2l6);

    // Any single-field change moves the fingerprint.
    Machine slow = Machine::p2l4();
    slow.setLatency(Opcode::Add, 5);
    EXPECT_NE(machineContentFingerprint(slow), p2l4);
    Machine unpiped = Machine::p2l4();
    unpiped.setPipelined(FuClass::Adder, false);
    EXPECT_NE(machineContentFingerprint(unpiped), p2l4);
}

TEST(MachDesc, SpecResolvesPresetsAndFiles)
{
    EXPECT_TRUE(machineFromSpec("p1l4") == Machine::p1l4());
    EXPECT_TRUE(machineFromSpec("p2l4") == Machine::p2l4());
    EXPECT_TRUE(machineFromSpec("p2l6") == Machine::p2l6());
    EXPECT_TRUE(machineFromSpec("universal").isUniversal());

    const std::string path = "test_machdesc_tmp.mach";
    {
        std::ofstream out(path);
        out << kValid;
    }
    const Machine m = machineFromSpec(path);
    EXPECT_EQ(m.name(), "Tiny");
    EXPECT_EQ(m.numClasses(), 2);
    std::remove(path.c_str());

    EXPECT_THROW(machineFromSpec("no_such_file.mach"), FatalError);
    {
        std::ofstream out(path);
        out << "machine Broken\nclass alu 0 pipelined\n";
    }
    EXPECT_THROW(machineFromSpec(path), FatalError);
    std::remove(path.c_str());
}

/** Emit a random valid description; returns the expected Machine. */
Machine
randomDescription(Rng &rng, std::string &textOut)
{
    const int numClasses = rng.range(1, 5);
    std::vector<UnitClass> classes;
    std::ostringstream text;
    text << "machine Rand" << rng.range(0, 999) << "\n";
    for (int c = 0; c < numClasses; ++c) {
        UnitClass uc;
        uc.name = "c" + std::to_string(c);
        uc.units = rng.range(1, 64);
        uc.pipelined = rng.chance(0.7);
        classes.push_back(uc);
        text << "class " << uc.name << " " << uc.units << " "
             << (uc.pipelined ? "pipelined" : "nonpipelined") << "\n";
        if (rng.chance(0.3))
            text << "# comment between directives\n";
    }
    int classOf[numOpcodes];
    int latency[numOpcodes];
    for (int op = 0; op < numOpcodes; ++op) {
        classOf[op] = rng.range(0, numClasses - 1);
        latency[op] = rng.range(1, 40);
        text << "op " << opcodeName(Opcode(op)) << "  "
             << classes[std::size_t(classOf[op])].name << "\t"
             << latency[op] << "\n";
    }
    // Recover the name the header line carries.
    const std::string header = text.str();
    const std::string name =
        header.substr(8, header.find('\n') - 8);
    textOut = text.str();
    return Machine(name, classes, classOf, latency);
}

TEST(MachDesc, PropertyRandomValidDescriptionsRoundTrip)
{
    Rng rng(0x4ac4de5cULL);
    for (int trial = 0; trial < 200; ++trial) {
        std::string text;
        const Machine expect = randomDescription(rng, text);
        const MachParseResult r = parseMachineDescription(text);
        ASSERT_TRUE(r.ok()) << "trial " << trial << "\n"
                            << text << diagDump(r);
        EXPECT_TRUE(*r.machine == expect) << "trial " << trial;

        // describe() is itself a valid description of the same machine.
        const MachParseResult again =
            parseMachineDescription(r.machine->describe());
        ASSERT_TRUE(again.ok()) << "trial " << trial;
        EXPECT_TRUE(*again.machine == *r.machine) << "trial " << trial;
        EXPECT_EQ(machineContentFingerprint(*again.machine),
                  machineContentFingerprint(expect))
            << "trial " << trial;
    }
}

} // namespace
} // namespace swp
