/**
 * @file
 * Orchestrator tests: fault-injection spec parsing, and the engine's
 * retry/resume/timeout behaviour driven by fake shell-script workers
 * whose failures (crash, corrupt output, hang) are fully under the
 * test's control. The engine's contract is judged the way production
 * judges it: a shard attempt counts if and only if it published a
 * valid shard file for the expected tool + configuration + shard spec.
 *
 * End-to-end `swpipe_cli --orchestrate` runs (byte-identity against the
 * serial baseline, including under injected faults) live in
 * examples/orchestrate_check.cmake; these tests isolate the engine.
 */

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "driver/orchestrate.hh"
#include "driver/shard_merge.hh"
#include "support/diag.hh"

namespace swp
{
namespace
{

TEST(InjectSpec, ParsesSingleAndLists)
{
    std::vector<FaultInjection> out;
    ASSERT_TRUE(parseInjectSpec("2:1:crash", out));
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].shard, 2);
    EXPECT_EQ(out[0].attempt, 1);
    EXPECT_EQ(out[0].mode, FaultMode::Crash);

    // Lists append to what was already parsed (repeatable flag).
    ASSERT_TRUE(parseInjectSpec("0:2:hang,3:1:corrupt", out));
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[1].mode, FaultMode::Hang);
    EXPECT_EQ(out[1].attempt, 2);
    EXPECT_EQ(out[2].shard, 3);
    EXPECT_EQ(out[2].mode, FaultMode::Corrupt);
}

TEST(InjectSpec, RejectsMalformedSpecs)
{
    std::vector<FaultInjection> out;
    for (const char *bad :
         {"", "1", "1:2", "1:2:boom", "x:1:crash", "1:x:crash",
          "-1:1:crash", "1:0:crash", "1:1:crash,", ",1:1:crash",
          "1:1:CRASH", "1:1:crash:extra", "1:1: crash"}) {
        EXPECT_FALSE(parseInjectSpec(bad, out)) << bad;
    }
    // Failed parses never extend the output.
    EXPECT_TRUE(out.empty());
}

TEST(InjectSpec, ModeNamesRoundTrip)
{
    EXPECT_STREQ(faultModeName(FaultMode::Crash), "crash");
    EXPECT_STREQ(faultModeName(FaultMode::Hang), "hang");
    EXPECT_STREQ(faultModeName(FaultMode::Corrupt), "corrupt");
}

TEST(SelfExecutable, ResolvesToAnExistingFile)
{
    const std::string self = selfExecutablePath("fallback");
    ASSERT_FALSE(self.empty());
    EXPECT_TRUE(std::filesystem::exists(self)) << self;
}

/** Fixture running the engine against fake /bin/sh workers. */
class OrchestrateEngine : public ::testing::Test
{
protected:
    /** Fresh per-test work dir (stale files would satisfy resume). */
    std::string
    freshDir(const std::string &name)
    {
        const std::string dir = testing::TempDir() + "/swp_orch_" + name;
        std::filesystem::remove_all(dir);
        return dir;
    }

    /**
     * A fake worker: a shell script that parses the --shard/--shard-out
     * flags the engine appends, runs `body` (with $i = shard index and
     * $out = output path in scope), and by default publishes the
     * pre-made payload file for its shard.
     */
    std::string
    writeWorker(const std::string &dir, const std::string &body)
    {
        std::filesystem::create_directories(dir);
        const std::string path = dir + "/worker.sh";
        {
            std::ofstream out(path);
            out << "#!/bin/sh\n"
                << "spec=; out=\n"
                << "while [ \"$#\" -gt 0 ]; do\n"
                << "  case \"$1\" in\n"
                << "    --shard) spec=\"$2\"; shift;;\n"
                << "    --shard-out) out=\"$2\"; shift;;\n"
                << "  esac\n"
                << "  shift\n"
                << "done\n"
                << "i=\"${spec%%/*}\"\n"
                << "dir=\"" << dir << "\"\n"
                << body << "\n";
        }
        ::chmod(path.c_str(), 0755);
        return path;
    }

    /** The valid shard document worker i of n should publish. */
    ShardDoc
    payloadDoc(int i, int n)
    {
        ShardDoc doc;
        doc.tool = "fake_worker";
        doc.config = "cfg-fake-1";
        doc.configSummary = "fake test config";
        doc.totalJobs = std::size_t(n);
        doc.shard = {i, n};
        doc.prologue = "prologue\n";
        doc.records.push_back(
            {std::size_t(i), 0,
             "record " + std::to_string(i) + "\n"});
        return doc;
    }

    /** Pre-made payload files the scripts publish with `cp`. */
    void
    writePayloads(const std::string &dir, int n)
    {
        std::filesystem::create_directories(dir);
        for (int i = 0; i < n; ++i)
            writeShardFile(dir + "/payload-" + std::to_string(i) +
                               ".json",
                           payloadDoc(i, n));
    }

    OrchestrateOptions
    baseOptions(const std::string &dir, int shards)
    {
        OrchestrateOptions opts;
        opts.shards = shards;
        opts.dir = dir;
        opts.backoffSeconds = 0.01;
        opts.expectTool = "fake_worker";
        opts.expectConfig = "cfg-fake-1";
        return opts;
    }
};

TEST_F(OrchestrateEngine, RunsEveryShardAndMergesCleanly)
{
    const std::string dir = freshDir("happy");
    writePayloads(dir, 3);
    const std::string worker =
        writeWorker(dir, "cp \"$dir/payload-$i.json\" \"$out\"");

    const OrchestrateResult r =
        orchestrateShards(worker, {}, baseOptions(dir, 3));
    EXPECT_EQ(r.launched, 3);
    EXPECT_EQ(r.reused, 0);
    EXPECT_EQ(r.retried, 0);
    ASSERT_EQ(r.docs.size(), 3u);

    const MergeOutput merged = mergeShards(r.docs);
    EXPECT_EQ(merged.text, "prologue\nrecord 0\nrecord 1\nrecord 2\n");
    EXPECT_EQ(merged.rc, 0);
}

TEST_F(OrchestrateEngine, RetriesAShardThatCrashesOnce)
{
    const std::string dir = freshDir("crash");
    writePayloads(dir, 2);
    // Shard 1 dies before publishing on its first attempt only.
    const std::string worker = writeWorker(
        dir, "if [ \"$i\" = 1 ] && [ ! -e \"$dir/mark-$i\" ]; then\n"
             "  : > \"$dir/mark-$i\"\n"
             "  exit 9\n"
             "fi\n"
             "cp \"$dir/payload-$i.json\" \"$out\"");

    const OrchestrateResult r =
        orchestrateShards(worker, {}, baseOptions(dir, 2));
    EXPECT_EQ(r.launched, 3);
    EXPECT_EQ(r.retried, 1);
    EXPECT_EQ(mergeShards(r.docs).text,
              "prologue\nrecord 0\nrecord 1\n");
}

TEST_F(OrchestrateEngine, RetriesAShardThatPublishesGarbage)
{
    const std::string dir = freshDir("corrupt");
    writePayloads(dir, 2);
    // Shard 0's first attempt exits 0 but leaves truncated JSON: the
    // attempt must be judged by its file, not its exit code.
    const std::string worker = writeWorker(
        dir, "if [ \"$i\" = 0 ] && [ ! -e \"$dir/mark-$i\" ]; then\n"
             "  : > \"$dir/mark-$i\"\n"
             "  printf '{\"format\": \"swp-shard-v1\", \"tool' > \"$out\"\n"
             "  exit 0\n"
             "fi\n"
             "cp \"$dir/payload-$i.json\" \"$out\"");

    const OrchestrateResult r =
        orchestrateShards(worker, {}, baseOptions(dir, 2));
    EXPECT_EQ(r.retried, 1);
    EXPECT_EQ(mergeShards(r.docs).text,
              "prologue\nrecord 0\nrecord 1\n");
}

TEST_F(OrchestrateEngine, KillsAndRetriesAHungShard)
{
    const std::string dir = freshDir("hang");
    writePayloads(dir, 2);
    const std::string worker = writeWorker(
        dir, "if [ \"$i\" = 1 ] && [ ! -e \"$dir/mark-$i\" ]; then\n"
             "  : > \"$dir/mark-$i\"\n"
             "  exec sleep 30\n"
             "fi\n"
             "cp \"$dir/payload-$i.json\" \"$out\"");

    OrchestrateOptions opts = baseOptions(dir, 2);
    opts.timeoutSeconds = 0.5;
    const OrchestrateResult r = orchestrateShards(worker, {}, opts);
    EXPECT_EQ(r.retried, 1);
    EXPECT_EQ(mergeShards(r.docs).text,
              "prologue\nrecord 0\nrecord 1\n");
}

TEST_F(OrchestrateEngine, ExhaustedRetriesFailNamingTheShard)
{
    const std::string dir = freshDir("exhaust");
    const std::string worker = writeWorker(dir, "exit 3");

    OrchestrateOptions opts = baseOptions(dir, 2);
    opts.maxAttempts = 2;
    try {
        orchestrateShards(worker, {}, opts);
        FAIL() << "orchestrate accepted a permanently failing worker";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("failed after 2 attempts"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("shard "), std::string::npos) << msg;
        EXPECT_NE(msg.find("exited with code 3"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find(".log"), std::string::npos) << msg;
    }
}

TEST_F(OrchestrateEngine, ResumeReusesValidShardFilesWithoutLaunching)
{
    const std::string dir = freshDir("resume");
    std::filesystem::create_directories(dir);
    for (int i = 0; i < 3; ++i)
        writeShardFile(dir + "/shard-" + std::to_string(i) + ".json",
                       payloadDoc(i, 3));

    // /bin/false as the worker proves nothing is launched.
    const OrchestrateResult r =
        orchestrateShards("/bin/false", {}, baseOptions(dir, 3));
    EXPECT_EQ(r.reused, 3);
    EXPECT_EQ(r.launched, 0);
    EXPECT_EQ(mergeShards(r.docs).text,
              "prologue\nrecord 0\nrecord 1\nrecord 2\n");
}

TEST_F(OrchestrateEngine, ResumeIgnoresShardFilesFromAnotherConfig)
{
    const std::string dir = freshDir("stale");
    writePayloads(dir, 1);
    ShardDoc stale = payloadDoc(0, 1);
    stale.config = "cfg-other";
    stale.configSummary = "some other run";
    writeShardFile(dir + "/shard-0.json", stale);

    const std::string worker =
        writeWorker(dir, "cp \"$dir/payload-$i.json\" \"$out\"");
    const OrchestrateResult r =
        orchestrateShards(worker, {}, baseOptions(dir, 1));
    // The stale file must be recomputed, not reused.
    EXPECT_EQ(r.reused, 0);
    EXPECT_EQ(r.launched, 1);
    ASSERT_EQ(r.docs.size(), 1u);
    EXPECT_EQ(r.docs[0].config, "cfg-fake-1");
}

TEST_F(OrchestrateEngine, NoResumeRecomputesEvenValidFiles)
{
    const std::string dir = freshDir("noresume");
    writePayloads(dir, 2);
    for (int i = 0; i < 2; ++i)
        writeShardFile(dir + "/shard-" + std::to_string(i) + ".json",
                       payloadDoc(i, 2));
    const std::string worker =
        writeWorker(dir, "cp \"$dir/payload-$i.json\" \"$out\"");

    OrchestrateOptions opts = baseOptions(dir, 2);
    opts.resume = false;
    const OrchestrateResult r = orchestrateShards(worker, {}, opts);
    EXPECT_EQ(r.reused, 0);
    EXPECT_EQ(r.launched, 2);
}

TEST_F(OrchestrateEngine, RefusesNonsenseOptions)
{
    const std::string dir = freshDir("opts");
    OrchestrateOptions opts = baseOptions(dir, 0);
    EXPECT_THROW(orchestrateShards("/bin/true", {}, opts), FatalError);
    opts.shards = 1;
    opts.maxAttempts = 0;
    EXPECT_THROW(orchestrateShards("/bin/true", {}, opts), FatalError);
    opts.maxAttempts = 1;
    EXPECT_THROW(orchestrateShards("", {}, opts), FatalError);
}

TEST_F(OrchestrateEngine, ExecFailureIsReportedNotHidden)
{
    const std::string dir = freshDir("exec");
    // A directory is not executable: every attempt exits 127.
    OrchestrateOptions opts = baseOptions(dir, 1);
    opts.maxAttempts = 1;
    try {
        orchestrateShards(dir, {}, opts);
        FAIL() << "orchestrate accepted an unexecutable worker";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("could not be executed"),
                  std::string::npos)
            << e.what();
    }
}

} // namespace
} // namespace swp
