/**
 * @file
 * Machine-model tests: the Section 5 configurations and occupancy rules.
 */

#include <gtest/gtest.h>

#include "machine/machine.hh"

namespace swp
{
namespace
{

TEST(Machine, P1L4Shape)
{
    const Machine m = Machine::p1l4();
    EXPECT_EQ(m.unitsFor(FuClass::Mem), 1);
    EXPECT_EQ(m.unitsFor(FuClass::Adder), 1);
    EXPECT_EQ(m.unitsFor(FuClass::Mult), 1);
    EXPECT_EQ(m.unitsFor(FuClass::DivSqrt), 1);
    EXPECT_EQ(m.latency(Opcode::Add), 4);
    EXPECT_EQ(m.latency(Opcode::Mul), 4);
    EXPECT_EQ(m.totalUnits(), 4);
}

TEST(Machine, CommonLatencies)
{
    for (const Machine &m :
         {Machine::p1l4(), Machine::p2l4(), Machine::p2l6()}) {
        EXPECT_EQ(m.latency(Opcode::Store), 1) << m.name();
        EXPECT_EQ(m.latency(Opcode::Load), 2) << m.name();
        EXPECT_EQ(m.latency(Opcode::Div), 17) << m.name();
        EXPECT_EQ(m.latency(Opcode::Sqrt), 30) << m.name();
    }
}

TEST(Machine, P2ConfigsDoubleEveryUnit)
{
    const Machine m = Machine::p2l4();
    for (int fu = 0; fu < numFuClasses; ++fu)
        EXPECT_EQ(m.unitsFor(FuClass(fu)), 2);
    EXPECT_EQ(Machine::p2l6().latency(Opcode::Add), 6);
    EXPECT_EQ(Machine::p2l6().latency(Opcode::Mul), 6);
}

TEST(Machine, DivSqrtNotPipelined)
{
    const Machine m = Machine::p2l4();
    EXPECT_FALSE(m.pipelinedClass(FuClass::DivSqrt));
    EXPECT_EQ(m.occupancy(Opcode::Div), 17);
    EXPECT_EQ(m.occupancy(Opcode::Sqrt), 30);
    EXPECT_EQ(m.occupancy(Opcode::Add), 1);
    EXPECT_EQ(m.occupancy(Opcode::Load), 1);
}

TEST(Machine, UniversalMachineForTheWorkedExample)
{
    const Machine m = Machine::universal("fig2", 4, 2);
    EXPECT_TRUE(m.isUniversal());
    EXPECT_EQ(m.unitsFor(FuClass::Mem), 4);
    EXPECT_EQ(m.unitsFor(FuClass::DivSqrt), 4);
    EXPECT_EQ(m.latency(Opcode::Mul), 2);
    EXPECT_EQ(m.occupancy(Opcode::Div), 1);  // Universal = pipelined.
    EXPECT_EQ(m.totalUnits(), 4);
}

TEST(Machine, Overrides)
{
    Machine m = Machine::p1l4();
    m.setLatency(Opcode::Add, 9);
    EXPECT_EQ(m.latency(Opcode::Add), 9);
    m.setPipelined(FuClass::Mult, false);
    EXPECT_EQ(m.occupancy(Opcode::Mul), 4);
}

TEST(Machine, DynamicClassTables)
{
    const Machine m = Machine::p2l4();
    ASSERT_EQ(m.numClasses(), 4);
    EXPECT_EQ(m.className(0), "mem");
    EXPECT_EQ(m.className(3), "divsqrt");
    EXPECT_EQ(m.classOf(Opcode::Load), 0);
    EXPECT_EQ(m.classOf(Opcode::Store), 0);
    EXPECT_EQ(m.classOf(Opcode::Mul), 2);
    EXPECT_EQ(m.classOf(Opcode::Div), 3);
    EXPECT_EQ(m.unitsInClass(0), 2);
    EXPECT_FALSE(m.pipelinedClass(3));

    const Machine u = Machine::universal("u", 4, 2);
    ASSERT_EQ(u.numClasses(), 1);
    for (int op = 0; op < numOpcodes; ++op)
        EXPECT_EQ(u.classOf(Opcode(op)), 0);
}

TEST(Machine, EqualityComparesContent)
{
    EXPECT_TRUE(Machine::p2l4() == Machine::p2l4());
    EXPECT_TRUE(Machine::p2l4() != Machine::p2l6());
    Machine m = Machine::p2l4();
    m.setLatency(Opcode::Add, 5);
    EXPECT_TRUE(m != Machine::p2l4());
}

TEST(Machine, DescribeMentionsName)
{
    EXPECT_NE(Machine::p2l6().describe().find("P2L6"), std::string::npos);
    EXPECT_NE(Machine::universal("u", 4, 2).describe().find("universal"),
              std::string::npos);
}

} // namespace
} // namespace swp
