/**
 * @file
 * Workload tests: suite generator determinism and distribution sanity,
 * APSI analogue signatures, and .ddg round-tripping.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "ir/verify.hh"
#include "liferange/lifetimes.hh"
#include "sched/acyclic.hh"
#include "sched/mii.hh"
#include "support/diag.hh"
#include "workload/ddgio.hh"
#include "workload/paper_loops.hh"
#include "workload/suitegen.hh"

namespace swp
{
namespace
{

TEST(SuiteGen, DeterministicAcrossRuns)
{
    SuiteParams params;
    params.numLoops = 25;
    const auto a = generateSuite(params);
    const auto b = generateSuite(params);
    ASSERT_EQ(a.size(), 25u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        std::ostringstream sa, sb;
        writeDdg(sa, a[i]);
        writeDdg(sb, b[i]);
        EXPECT_EQ(sa.str(), sb.str()) << "loop " << i;
        EXPECT_EQ(a[i].iterations, b[i].iterations);
    }
}

TEST(SuiteGen, SingleLoopMatchesFullRun)
{
    SuiteParams params;
    params.numLoops = 10;
    const auto suite = generateSuite(params);
    const SuiteLoop solo = generateSuiteLoop(params, 7);
    std::ostringstream a, b;
    writeDdg(a, suite[7]);
    writeDdg(b, solo);
    EXPECT_EQ(a.str(), b.str());
}

TEST(SuiteGen, AllLoopsAreWellFormedAndSchedulable)
{
    SuiteParams params;
    params.numLoops = 60;
    for (const SuiteLoop &loop : generateSuite(params)) {
        std::string why;
        ASSERT_TRUE(verifyDdg(loop.graph, &why))
            << loop.graph.name() << ": " << why;
        EXPECT_GE(loop.graph.numNodes(), 4);
        EXPECT_GE(loop.iterations, 1);
        // Every value has a consumer (dead results get stores).
        for (NodeId n = 0; n < loop.graph.numNodes(); ++n) {
            if (producesValue(loop.graph.node(n).op)) {
                EXPECT_GT(loop.graph.numValueUses(n), 0)
                    << loop.graph.name() << " node " << n;
            }
        }
        // MII is computable and the acyclic fallback always works.
        const Machine m = Machine::p2l4();
        EXPECT_GE(mii(loop.graph, m), 1);
        const Schedule s = scheduleAcyclic(loop.graph, m);
        std::string why2;
        EXPECT_TRUE(validateSchedule(loop.graph, m, s, &why2)) << why2;
    }
}

TEST(SuiteGen, ContainsHeavyAndNormalLoops)
{
    SuiteParams params;
    params.numLoops = 300;
    int heavy = 0;
    long heavyIters = 0, totalIters = 0;
    for (const SuiteLoop &loop : generateSuite(params)) {
        // Heavy loops are recognizable by their distance-component
        // register floor: sum of self-recurrence distances + invariants
        // above 32.
        long floor = loop.graph.numLiveInvariants();
        for (EdgeId e = 0; e < loop.graph.numEdges(); ++e) {
            const Edge &edge = loop.graph.edge(e);
            if (edge.kind == DepKind::RegFlow && edge.distance > 0)
                floor += edge.distance;
        }
        totalIters += loop.iterations;
        if (floor > 32) {
            ++heavy;
            heavyIters += loop.iterations;
        }
    }
    // ~3% of 300.
    EXPECT_GE(heavy, 3);
    EXPECT_LE(heavy, 30);
    // They are disproportionately hot.
    EXPECT_GT(double(heavyIters) / double(totalIters),
              3.0 * double(heavy) / 300.0);
}

TEST(PaperLoops, Apsi47Signature)
{
    const Ddg g = buildApsi47Analogue();
    std::string why;
    ASSERT_TRUE(verifyDdg(g, &why)) << why;
    // Sized for ResMII 7 on P2L4 like the paper's loop.
    EXPECT_EQ(resMii(g, Machine::p2l4()), 7);
    EXPECT_EQ(recMii(g, Machine::p2l4()), 1);
}

TEST(PaperLoops, Apsi50Signature)
{
    const Ddg g = buildApsi50Analogue();
    std::string why;
    ASSERT_TRUE(verifyDdg(g, &why)) << why;
    // Distance components: 13 taps x distance 2.
    long dist = 0;
    for (EdgeId e = 0; e < g.numEdges(); ++e) {
        if (g.edge(e).kind == DepKind::RegFlow)
            dist += g.edge(e).distance;
    }
    EXPECT_EQ(dist, 26);
    EXPECT_EQ(g.numLiveInvariants(), 8);
    // 26 + 8 > 32: the increase-II floor the paper describes.
    EXPECT_GT(dist + g.numLiveInvariants(), 32);
}

TEST(DdgIo, RoundTripsTheExample)
{
    SuiteLoop loop;
    loop.graph = buildApsi50Analogue();
    loop.iterations = 123;
    std::ostringstream out;
    writeDdg(out, loop);

    std::istringstream in(out.str());
    const auto loops = parseDdgStream(in);
    ASSERT_EQ(loops.size(), 1u);
    EXPECT_EQ(loops[0].graph.name(), "apsi50");
    EXPECT_EQ(loops[0].iterations, 123);
    EXPECT_EQ(loops[0].graph.numNodes(), loop.graph.numNodes());
    EXPECT_EQ(loops[0].graph.numInvariants(),
              loop.graph.numInvariants());

    std::ostringstream out2;
    writeDdg(out2, loops[0]);
    EXPECT_EQ(out.str(), out2.str());
}

TEST(DdgIo, ParsesMultipleLoopsAndComments)
{
    const char *text =
        "# a comment\n"
        "loop one\n"
        "node ld ld\n"
        "node st st\n"
        "edge ld st reg 0\n"
        "end\n"
        "loop two\n"
        "iterations 5\n"
        "node a add\n"
        "node s st   # trailing comment\n"
        "edge a a reg 1\n"
        "edge a s reg 0\n"
        "end\n";
    std::istringstream in(text);
    const auto loops = parseDdgStream(in);
    ASSERT_EQ(loops.size(), 2u);
    EXPECT_EQ(loops[0].graph.numNodes(), 2);
    EXPECT_EQ(loops[1].iterations, 5);
}

TEST(DdgIo, RejectsMalformedInput)
{
    auto parse = [](const char *text) {
        std::istringstream in(text);
        return parseDdgStream(in);
    };
    EXPECT_THROW(parse("node x ld\n"), FatalError);       // No loop.
    EXPECT_THROW(parse("loop a\nloop b\n"), FatalError);  // Nested.
    EXPECT_THROW(parse("loop a\nnode x bogus\nend\n"), FatalError);
    EXPECT_THROW(parse("loop a\nedge p q reg 0\nend\n"), FatalError);
    EXPECT_THROW(parse("loop a\n"), FatalError);          // Unterminated.
    EXPECT_THROW(parse("loop a\nnode x ld\nnode x ld\nend\n"),
                 FatalError);                             // Duplicate.
}

} // namespace
} // namespace swp
