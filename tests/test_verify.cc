/**
 * @file
 * Tests for the independent legality verifier (src/verify).
 *
 * Two halves:
 *  - positive: real pipeline results — the paper example, pinned suite
 *    loops (spilled and unspilled, both strategies), and the acyclic
 *    fallback — must verify clean on all four layers;
 *  - negative (mutation): perturb exactly one site of a known-legal
 *    artifact — an op's cycle, its unit, a value's register offset, a
 *    kernel slot — and the verifier must reject the mutant with a
 *    diagnostic of the matching ViolationKind. A checker that cannot
 *    fail carries no information, so the failing cases are the ones
 *    that prove the passing sweep means something.
 */

#include <gtest/gtest.h>

#include "codegen/kernel.hh"
#include "ir/builder.hh"
#include "pipeliner/pipeliner.hh"
#include "regalloc/mvealloc.hh"
#include "sched/mii.hh"
#include "verify/legality.hh"
#include "verify/mutate.hh"
#include "workload/paper_loops.hh"
#include "workload/suitegen.hh"

namespace swp
{
namespace
{

PipelinerOptions
spillOptions(int registers)
{
    PipelinerOptions opts;
    opts.registers = registers;
    opts.multiSelect = true;
    opts.reuseLastIi = true;
    return opts;
}

/** A legal scheduled-and-allocated paper example, the mutation donor. */
struct Donor
{
    Ddg g;
    Machine m;
    PipelineResult result;

    Donor()
        : g(buildPaperExampleLoop()), m(Machine::p2l4()),
          result(pipelineIdeal(g, m))
    {
    }
};

TEST(Verify, PaperExampleIsLegal)
{
    const Donor d;
    const VerifyReport report = verifyResult(d.g, d.m, d.result);
    EXPECT_TRUE(report.ok()) << report.describe();
}

TEST(Verify, PinnedSuiteSweepIsLegal)
{
    const SuiteParams params;  // Pinned default seed.
    const Machine m = Machine::p2l4();
    for (int i = 0; i < 60; ++i) {
        const SuiteLoop loop = generateSuiteLoop(params, i);
        for (const Strategy strategy :
             {Strategy::Spill, Strategy::IncreaseII,
              Strategy::BestOfAll}) {
            const PipelineResult r =
                pipelineLoop(loop.graph, m, strategy, spillOptions(16));
            const VerifyReport report = verifyResult(loop.graph, m, r);
            EXPECT_TRUE(report.ok())
                << "loop " << i << " strategy " << int(strategy) << ":\n"
                << report.describe();
        }
    }
}

TEST(Verify, SpilledResultsVerifyAgainstTransformedGraph)
{
    // A tight budget forces spilling: the verifier must check the
    // added spill nodes and fused edges, not reject the transformation.
    const SuiteParams params;
    const Machine m = Machine::p1l4();
    int spilled = 0;
    for (int i = 0; i < 40; ++i) {
        const SuiteLoop loop = generateSuiteLoop(params, i);
        const PipelineResult r =
            pipelineLoop(loop.graph, m, Strategy::Spill, spillOptions(8));
        spilled += r.spilledLifetimes > 0;
        const VerifyReport report = verifyResult(loop.graph, m, r);
        EXPECT_TRUE(report.ok())
            << "loop " << i << ":\n" << report.describe();
    }
    EXPECT_GT(spilled, 0) << "budget 8 on p1l4 spilled nothing; the "
                             "spill path went untested";
}

// ---------------------------------------------------------------------------
// Mutation classes. Each must be caught with the matching kind.
// ---------------------------------------------------------------------------

TEST(VerifyMutation, DependenceViolationCaught)
{
    const Donor d;
    const EdgeId tight = findTightEdge(d.g, d.m, d.result.sched);
    ASSERT_GE(tight, 0) << "paper example lost its zero-slack edge";
    const NodeId victim = d.g.edge(tight).dst;

    const Schedule mutant =
        withCycle(d.result.sched, victim,
                  d.result.sched.time(victim) - 1);
    const VerifyReport report = verifySchedule(d.g, d.m, mutant);
    EXPECT_FALSE(report.ok());
    EXPECT_GT(report.count(ViolationKind::Dependence), 0)
        << report.describe();
}

TEST(VerifyMutation, ResourceOverlapCaught)
{
    // Find two ops of one unit class and force them onto one unit in
    // one kernel row; the naive occupancy table must see the clash.
    const Donor d;
    const Schedule &s = d.result.sched;
    for (NodeId a = 0; a < d.g.numNodes(); ++a) {
        for (NodeId b = a + 1; b < d.g.numNodes(); ++b) {
            if (fuClassOf(d.g.node(a).op) != fuClassOf(d.g.node(b).op))
                continue;
            // Same row mod II via a stage shift, same unit index.
            Schedule mutant = withUnit(s, b, s.unit(a));
            mutant.set(b, s.time(a) + s.ii(), mutant.unit(b));
            const VerifyReport report = verifySchedule(d.g, d.m, mutant);
            EXPECT_GT(report.count(ViolationKind::Resource), 0)
                << "nodes " << a << "," << b << ":\n"
                << report.describe();
            return;
        }
    }
    FAIL() << "no two ops share a unit class in the paper example";
}

TEST(VerifyMutation, UnitOutOfRangeCaught)
{
    const Donor d;
    const NodeId victim = 0;
    const int units =
        d.m.unitsFor(fuClassOf(d.g.node(victim).op));
    const Schedule mutant = withUnit(d.result.sched, victim, units);
    const VerifyReport report = verifySchedule(d.g, d.m, mutant);
    EXPECT_GT(report.count(ViolationKind::Resource), 0)
        << report.describe();
}

TEST(VerifyMutation, FusedOffsetViolationCaught)
{
    // Spill fusion pins reload edges at exact offsets; nudging a fused
    // destination later satisfies the plain dependence but breaks the
    // exact-offset constraint.
    const SuiteParams params;
    const Machine m = Machine::p1l4();
    for (int i = 0; i < 40; ++i) {
        const SuiteLoop loop = generateSuiteLoop(params, i);
        const PipelineResult r =
            pipelineLoop(loop.graph, m, Strategy::Spill, spillOptions(8));
        const Ddg &g = r.graph();
        for (EdgeId e = 0; e < g.numEdges(); ++e) {
            if (!g.edge(e).alive || !g.edge(e).nonSpillable)
                continue;
            const NodeId victim = g.edge(e).dst;
            const Schedule mutant =
                withCycle(r.sched, victim,
                          r.sched.time(victim) + g.numNodes() * 64);
            const VerifyReport report = verifySchedule(g, m, mutant);
            EXPECT_GT(report.count(ViolationKind::FusedOffset), 0)
                << "loop " << i << " edge " << e << ":\n"
                << report.describe();
            return;
        }
    }
    FAIL() << "no spilled loop produced a fused edge to mutate";
}

TEST(VerifyMutation, RegisterOverlapCaught)
{
    // Two live values forced to one rotating-file arc anchor: give the
    // second the first one's offset.
    const Donor d;
    ASSERT_TRUE(d.result.alloc.rotAlloc.ok);
    const std::vector<int> &offset = d.result.alloc.rotAlloc.offset;
    NodeId first = invalidNode;
    for (NodeId n = 0; n < d.g.numNodes(); ++n) {
        if (!producesValue(d.g.node(n).op) || offset[std::size_t(n)] < 0)
            continue;
        if (first == invalidNode) {
            first = n;
            continue;
        }
        const AllocationOutcome mutant = withOffset(
            d.result.alloc, n, offset[std::size_t(first)]);
        const VerifyReport report =
            verifyAllocation(d.g, d.result.sched, mutant);
        // Same offset means overlapping arcs whenever both values are
        // live at the anchor; the paper example's lifetimes all start
        // in distinct cycles of a short II, so a shared offset always
        // collides.
        EXPECT_GT(report.count(ViolationKind::Register), 0)
            << report.describe();
        return;
    }
    FAIL() << "paper example has fewer than two allocated values";
}

TEST(VerifyMutation, RegisterOffsetOutOfRangeCaught)
{
    const Donor d;
    ASSERT_TRUE(d.result.alloc.rotAlloc.ok);
    for (NodeId n = 0; n < d.g.numNodes(); ++n) {
        if (d.result.alloc.rotAlloc.offset[std::size_t(n)] < 0)
            continue;
        const AllocationOutcome mutant = withOffset(
            d.result.alloc, n, d.result.alloc.rotAlloc.registers);
        const VerifyReport report =
            verifyAllocation(d.g, d.result.sched, mutant);
        EXPECT_GT(report.count(ViolationKind::Register), 0)
            << report.describe();
        return;
    }
    FAIL() << "no allocated value found";
}

TEST(VerifyMutation, KernelStageRetagCaught)
{
    const Donor d;
    const KernelCode kernel = buildKernel(d.g, d.result.sched);
    const NodeId victim = 0;
    const int stage = d.result.sched.stage(victim);
    const KernelCode mutant = withSlotStage(kernel, victim, stage + 1);
    const VerifyReport report =
        verifyKernelLayout(d.g, d.result.sched, mutant);
    EXPECT_GT(report.count(ViolationKind::Kernel), 0)
        << report.describe();
}

TEST(VerifyMutation, KernelSlotDropCaught)
{
    const Donor d;
    const KernelCode kernel = buildKernel(d.g, d.result.sched);
    const KernelCode mutant = withSlotDropped(kernel, 0);
    const VerifyReport report =
        verifyKernelLayout(d.g, d.result.sched, mutant);
    EXPECT_GT(report.count(ViolationKind::Kernel), 0)
        << report.describe();
}

TEST(VerifyMutation, KernelRowMoveCaught)
{
    // Moving a slot between rows needs II >= 2; the paper example's
    // ideal II is 1, so pick the first suite loop scheduled wider.
    const SuiteParams params;
    const Machine m = Machine::p1l4();
    for (int i = 0; i < 40; ++i) {
        const SuiteLoop loop = generateSuiteLoop(params, i);
        const PipelineResult r = pipelineIdeal(loop.graph, m);
        const Schedule &s = r.sched;
        if (s.ii() < 2)
            continue;
        const KernelCode kernel = buildKernel(loop.graph, s);
        const NodeId victim = 0;
        const int newRow = (s.row(victim) + 1) % s.ii();
        const KernelCode mutant = withSlotRow(kernel, victim, newRow);
        const VerifyReport report =
            verifyKernelLayout(loop.graph, s, mutant);
        EXPECT_GT(report.count(ViolationKind::Kernel), 0)
            << "loop " << i << ":\n" << report.describe();
        return;
    }
    FAIL() << "no suite loop schedules at II >= 2 on p1l4";
}

TEST(VerifyMutation, MveNameCollisionCaught)
{
    const Donor d;
    const LifetimeInfo info = analyzeLifetimes(d.g, d.result.sched);
    MveAllocResult mve = allocateMve(info);
    const VerifyReport clean =
        verifyMveAllocation(d.g, d.result.sched, mve);
    ASSERT_TRUE(clean.ok()) << clean.describe();

    // Collapse every name of every value onto register 0: values whose
    // arcs overlap now share it.
    for (std::vector<int> &regs : mve.nameRegs) {
        for (int &reg : regs)
            reg = 0;
    }
    const VerifyReport report =
        verifyMveAllocation(d.g, d.result.sched, mve);
    EXPECT_GT(report.count(ViolationKind::Register), 0)
        << report.describe();
}

TEST(VerifyMutation, MveBadPeriodCaught)
{
    const Donor d;
    const LifetimeInfo info = analyzeLifetimes(d.g, d.result.sched);
    MveAllocResult mve = allocateMve(info);
    for (std::size_t n = 0; n < mve.period.size(); ++n) {
        if (mve.period[n] == 0)
            continue;
        // A period of unroll+1 can neither divide the unroll factor
        // nor stay within it.
        mve.period[n] = mve.unroll + 1;
        const VerifyReport report =
            verifyMveAllocation(d.g, d.result.sched, mve);
        EXPECT_GT(report.count(ViolationKind::Register), 0)
            << report.describe();
        return;
    }
    FAIL() << "no live MVE value found";
}

// ---------------------------------------------------------------------------
// Structural checks.
// ---------------------------------------------------------------------------

TEST(Verify, IncompleteScheduleIsStructuralViolation)
{
    const Donor d;
    Schedule mutant = d.result.sched;
    mutant.clear(0);
    const VerifyReport report = verifySchedule(d.g, d.m, mutant);
    EXPECT_GT(report.count(ViolationKind::Structure), 0)
        << report.describe();
}

TEST(Verify, ReportDescribeNamesTheLayer)
{
    const Donor d;
    const EdgeId tight = findTightEdge(d.g, d.m, d.result.sched);
    ASSERT_GE(tight, 0);
    const NodeId victim = d.g.edge(tight).dst;
    const VerifyReport report = verifySchedule(
        d.g, d.m,
        withCycle(d.result.sched, victim,
                  d.result.sched.time(victim) - 1));
    ASSERT_FALSE(report.ok());
    EXPECT_NE(report.describe().find("[dependence]"), std::string::npos)
        << report.describe();
    // The diagnostic names the offending edge and both endpoints.
    EXPECT_NE(report.violations[0].edge, -1);
    EXPECT_NE(report.violations[0].node, invalidNode);
}

TEST(Verify, RunnerRejectsMutantViaRunOptions)
{
    // End-to-end: the SuiteRunner wiring turns a violation into a
    // thrown FatalError naming the job. Forge an illegal result by
    // corrupting a legal one through the verifier-visible surface.
    const Donor d;
    PipelineResult broken = d.result;
    const EdgeId tight = findTightEdge(d.g, d.m, broken.sched);
    ASSERT_GE(tight, 0);
    const NodeId victim = d.g.edge(tight).dst;
    broken.sched.set(victim, broken.sched.time(victim) - 1,
                     broken.sched.unit(victim));
    const VerifyReport report = verifyResult(d.g, d.m, broken);
    EXPECT_FALSE(report.ok());
    EXPECT_GT(report.count(ViolationKind::Dependence), 0);
}

} // namespace
} // namespace swp
