/**
 * @file
 * Schedule container and validator tests.
 */

#include <gtest/gtest.h>

#include "ir/builder.hh"
#include "machine/machine.hh"
#include "sched/schedule.hh"

namespace swp
{
namespace
{

TEST(Schedule, FloorMathHandlesNegatives)
{
    EXPECT_EQ(Schedule::floorMod(-1, 4), 3);
    EXPECT_EQ(Schedule::floorMod(-4, 4), 0);
    EXPECT_EQ(Schedule::floorMod(5, 4), 1);
    EXPECT_EQ(Schedule::floorDiv(-1, 4), -1);
    EXPECT_EQ(Schedule::floorDiv(-4, 4), -1);
    EXPECT_EQ(Schedule::floorDiv(7, 4), 1);
}

TEST(Schedule, RowsStagesAndNormalization)
{
    Schedule s(3, 2);
    s.set(0, -2, 0);
    s.set(1, 4, 0);
    EXPECT_TRUE(s.complete());
    EXPECT_EQ(s.row(0), 1);
    EXPECT_EQ(s.stage(0), -1);
    EXPECT_EQ(s.minTime(), -2);
    EXPECT_EQ(s.maxTime(), 4);
    EXPECT_EQ(s.stageCount(), 3);  // Stages -1..1.
    s.normalize();
    EXPECT_EQ(s.time(0), 0);
    EXPECT_EQ(s.time(1), 6);
    EXPECT_EQ(s.stageCount(), 3);
}

TEST(Schedule, ClearMakesIncomplete)
{
    Schedule s(2, 1);
    EXPECT_FALSE(s.complete());
    s.set(0, 5, 1);
    EXPECT_TRUE(s.complete());
    s.clear(0);
    EXPECT_FALSE(s.scheduled(0));
}

TEST(ValidateSchedule, AcceptsThePaperSchedule)
{
    const Ddg g = buildPaperExampleLoop();
    const Machine m = Machine::universal("fig2", 4, 2);
    Schedule s(1, 4);
    s.set(0, 0, 0);
    s.set(1, 2, 1);
    s.set(2, 4, 2);
    s.set(3, 6, 3);
    std::string why;
    EXPECT_TRUE(validateSchedule(g, m, s, &why)) << why;
}

TEST(ValidateSchedule, CatchesDependenceViolation)
{
    const Ddg g = buildPaperExampleLoop();
    const Machine m = Machine::universal("fig2", 4, 2);
    Schedule s(1, 4);
    s.set(0, 0, 0);
    s.set(1, 1, 1);  // '*' issued 1 cycle after Ld: latency is 2.
    s.set(2, 4, 2);
    s.set(3, 6, 3);
    std::string why;
    EXPECT_FALSE(validateSchedule(g, m, s, &why));
    EXPECT_NE(why.find("dependence"), std::string::npos);
}

TEST(ValidateSchedule, CatchesResourceConflict)
{
    const Ddg g = buildPaperExampleLoop();
    const Machine m = Machine::universal("fig2", 4, 2);
    Schedule s(1, 4);
    s.set(0, 0, 0);
    s.set(1, 2, 0);  // Same unit, same (single) row as everything.
    s.set(2, 4, 0);
    s.set(3, 6, 3);
    std::string why;
    EXPECT_FALSE(validateSchedule(g, m, s, &why));
    EXPECT_NE(why.find("conflict"), std::string::npos);
}

TEST(ValidateSchedule, CatchesCarriedDependenceViolation)
{
    DdgBuilder b("carried");
    const NodeId a = b.add("a");
    b.flow(a, a, 1);
    const NodeId st = b.store("st");
    b.flow(a, st);
    const Ddg g = b.take();
    const Machine m = Machine::p2l4();  // add latency 4.

    Schedule s(3, 2);  // II=3 < RecMII=4: the self dep must fail.
    s.set(a, 0, 0);
    s.set(st, 4, 0);
    std::string why;
    EXPECT_FALSE(validateSchedule(g, m, s, &why));
}

TEST(ValidateSchedule, CatchesFusedOffsetViolation)
{
    DdgBuilder b("fused");
    const NodeId ld = b.load("ld");
    const NodeId add = b.add("add");
    const NodeId st = b.store("st");
    b.graph().addEdge(ld, add, DepKind::RegFlow, 0, true);
    b.flow(add, st);
    const Ddg g = b.take();
    const Machine m = Machine::p2l4();

    Schedule s(4, 3);
    s.set(ld, 0, 0);
    s.set(add, 3, 0);  // Must be exactly latency(ld)=2 after.
    s.set(st, 8, 1);   // Unit 1: row 0 of mem unit 0 is the load's.
    std::string why;
    EXPECT_FALSE(validateSchedule(g, m, s, &why));
    EXPECT_NE(why.find("fused"), std::string::npos);

    s.set(add, 2, 0);
    EXPECT_TRUE(validateSchedule(g, m, s, &why)) << why;
}

TEST(ValidateSchedule, CatchesNonPipelinedSelfOverlap)
{
    DdgBuilder b("dv");
    const NodeId ld = b.load();
    const NodeId dv = b.div();
    const NodeId st = b.store();
    b.flow(ld, dv);
    b.flow(dv, st);
    const Ddg g = b.take();
    const Machine m = Machine::p2l4();

    Schedule s(10, 3);  // Divide occupancy 17 > II.
    s.set(ld, 0, 0);
    s.set(dv, 2, 0);
    s.set(st, 19, 0);
    std::string why;
    EXPECT_FALSE(validateSchedule(g, m, s, &why));
    EXPECT_NE(why.find("occupies"), std::string::npos);
}

TEST(FormatSchedule, MentionsKernelAndCycles)
{
    const Ddg g = buildPaperExampleLoop();
    const Machine m = Machine::universal("fig2", 4, 2);
    Schedule s(2, 4);
    s.set(0, 0, 0);
    s.set(1, 2, 1);
    s.set(2, 4, 2);
    s.set(3, 6, 3);
    const std::string text = formatSchedule(g, m, s);
    EXPECT_NE(text.find("II=2"), std::string::npos);
    EXPECT_NE(text.find("kernel"), std::string::npos);
    EXPECT_NE(text.find("Ld"), std::string::npos);
}

} // namespace
} // namespace swp
