/**
 * @file
 * Lifetime analysis tests, anchored on the paper's worked example:
 * Figure 2 (II=1, 11 registers) and Figure 3 (II=2, 7 registers),
 * including the LTSch/LTDist decomposition of Section 2.4.
 */

#include <gtest/gtest.h>

#include "ir/builder.hh"
#include "liferange/lifetimes.hh"
#include "machine/machine.hh"
#include "sched/schedule.hh"

namespace swp
{
namespace
{

/** The paper's flat schedule for Figure 2c: Ld@0, *@2, +@4, St@6. */
Schedule
paperFlatSchedule(int ii)
{
    Schedule s(ii, 4);
    s.set(0, 0, 0);  // Ld
    s.set(1, 2, 1);  // *
    s.set(2, 4, 2);  // +
    s.set(3, 6, 3);  // St
    return s;
}

TEST(Lifetimes, PaperExampleIi1RequiresElevenRegisters)
{
    const Ddg g = buildPaperExampleLoop();
    const LifetimeInfo info = analyzeLifetimes(g, paperFlatSchedule(1));

    // V1 = Ld's value: defined at 0, last used by '+' at 4 with
    // distance 3 => end 4 + 3*1 = 7.
    EXPECT_EQ(info.of(0).start, 0);
    EXPECT_EQ(info.of(0).end, 7);
    EXPECT_EQ(info.of(0).schedComponent, 4);
    EXPECT_EQ(info.of(0).distComponent, 3);

    // V2 = *'s value and V3 = +'s value: both 2 cycles.
    EXPECT_EQ(info.of(1).length(), 2);
    EXPECT_EQ(info.of(2).length(), 2);

    // The store produces nothing.
    EXPECT_FALSE(info.of(3).live);

    // Figure 2f: 11 simultaneously live loop variants.
    EXPECT_EQ(info.maxLive, 11);

    // Plus the invariant 'a'.
    EXPECT_EQ(info.invariantCount, 1);
    EXPECT_EQ(info.totalRegisterBound(), 12);
}

TEST(Lifetimes, PaperExampleIi2RequiresSevenRegisters)
{
    const Ddg g = buildPaperExampleLoop();
    const LifetimeInfo info = analyzeLifetimes(g, paperFlatSchedule(2));

    // Scheduling components unchanged, distance component doubles
    // (Section 3: LTDist(V1) grows from 3 to 6).
    EXPECT_EQ(info.of(0).schedComponent, 4);
    EXPECT_EQ(info.of(0).distComponent, 6);
    EXPECT_EQ(info.of(0).length(), 10);

    // Figure 3d: 7 registers for loop variants.
    EXPECT_EQ(info.maxLive, 7);
}

TEST(Lifetimes, DistanceComponentIsIiInvariantInRegisters)
{
    // A self-recurrent accumulator at distance 2 always needs 2
    // registers for the distance component, whatever the II.
    DdgBuilder b("acc");
    const NodeId ld = b.load("ld");
    const NodeId add = b.add("acc");
    const NodeId st = b.store("st");
    b.flow(ld, add);
    b.flow(add, add, 2);
    b.flow(add, st);
    const Ddg g = b.take();

    for (int ii = 2; ii <= 12; ++ii) {
        Schedule s(ii, 3);
        s.set(ld, 0, 0);
        s.set(add, 2, 0);
        s.set(st, 6, 0);
        const LifetimeInfo info = analyzeLifetimes(g, s);
        // The accumulator's lifetime is dominated by its own reuse at
        // distance 2 when 2*ii >= 4: LT = 2*ii => exactly 2 registers
        // at every row.
        EXPECT_GE(info.of(add).length(), 2 * ii) << "ii=" << ii;
        EXPECT_GE(info.maxLive, 2) << "ii=" << ii;
    }
}

TEST(Lifetimes, DeadValuesContributeNothing)
{
    DdgBuilder b("dead");
    const NodeId ld = b.load("ld");
    const NodeId st = b.store("st");
    const NodeId ld2 = b.load("dead_ld");
    b.flow(ld, st);
    (void)ld2;  // No consumers.
    const Ddg g = b.take();

    Schedule s(1, 3);
    s.set(0, 0, 0);
    s.set(1, 2, 1);
    s.set(2, 0, 1);
    const LifetimeInfo info = analyzeLifetimes(g, s);
    EXPECT_FALSE(info.of(ld2).live);
    EXPECT_EQ(info.of(ld).length(), 2);
}

TEST(Lifetimes, PressurePatternSumsToTotalLifetime)
{
    const Ddg g = buildPaperExampleLoop();
    for (int ii = 1; ii <= 4; ++ii) {
        const LifetimeInfo info = analyzeLifetimes(g,
                                                   paperFlatSchedule(ii));
        long sum = 0;
        for (int p : info.pressure)
            sum += p;
        EXPECT_EQ(sum, totalLifetime(info)) << "ii=" << ii;
    }
}

TEST(Lifetimes, MultiUseTakesTheLastConsumer)
{
    DdgBuilder b("multi");
    const NodeId ld = b.load("ld");
    const NodeId a1 = b.add("a1");
    const NodeId a2 = b.add("a2");
    const NodeId st = b.store("st");
    b.flow(ld, a1);
    b.flow(ld, a2);
    b.flow(a1, a2);
    b.flow(a2, st);
    const Ddg g = b.take();

    Schedule s(3, 4);
    s.set(ld, 0, 0);
    s.set(a1, 2, 0);
    s.set(a2, 6, 1);
    s.set(st, 10, 0);
    const LifetimeInfo info = analyzeLifetimes(g, s);
    EXPECT_EQ(info.of(ld).end, 6);
    EXPECT_EQ(info.of(ld).schedComponent, 6);
    EXPECT_EQ(info.of(ld).distComponent, 0);
}

} // namespace
} // namespace swp
