/**
 * @file
 * Spill selection and insertion tests (Sections 4.1-4.3), including the
 * paper's Figure 5 rewrite and the non-spillable/fusion guarantees.
 */

#include <gtest/gtest.h>

#include "ir/builder.hh"
#include "ir/verify.hh"
#include "liferange/lifetimes.hh"
#include "machine/machine.hh"
#include "sched/hrms.hh"
#include "spill/insert.hh"
#include "spill/select.hh"

namespace swp
{
namespace
{

Schedule
paperFlatSchedule(int ii)
{
    Schedule s(ii, 4);
    s.set(0, 0, 0);
    s.set(1, 2, 1);
    s.set(2, 4, 2);
    s.set(3, 6, 3);
    return s;
}

TEST(SpillSelect, CandidatesCoverVariantsAndInvariants)
{
    const Ddg g = buildPaperExampleLoop();
    const LifetimeInfo info = analyzeLifetimes(g, paperFlatSchedule(1));
    const auto cands = spillCandidates(g, info);

    // V1 (Ld), V2 (*), V3 (+) and the invariant 'a'.
    ASSERT_EQ(cands.size(), 4u);
    int invariants = 0;
    for (const auto &c : cands)
        invariants += c.isInvariant;
    EXPECT_EQ(invariants, 1);
}

TEST(SpillSelect, MaxLtPicksTheLongestLifetime)
{
    const Ddg g = buildPaperExampleLoop();
    const LifetimeInfo info = analyzeLifetimes(g, paperFlatSchedule(1));
    const auto cands = spillCandidates(g, info);
    const auto pick = selectOne(cands, SpillHeuristic::MaxLT);
    ASSERT_TRUE(pick.has_value());
    EXPECT_FALSE(pick->isInvariant);
    EXPECT_EQ(pick->node, 0);  // V1, lifetime 7.
    EXPECT_EQ(pick->lifetime, 7);
}

TEST(SpillSelect, CostModelMatchesSection42)
{
    const Ddg g = buildPaperExampleLoop();
    // V1's producer is a load with 2 uses: 2 reloads, no store.
    EXPECT_EQ(spillCost(g, 0), 2);
    // V2 (*) has one use and no store consumer: 1 store + 1 load.
    EXPECT_EQ(spillCost(g, 1), 2);
    // V3 (+) feeds the store St directly: the store is reusable, no
    // other uses => zero added operations... but note its lifetime is
    // tiny, so the ratio heuristic would never pick it anyway.
    EXPECT_EQ(spillCost(g, 2), 0);
}

TEST(SpillSelect, RatioHeuristicWeighsTraffic)
{
    // Two values: one slightly longer but far more expensive to spill.
    DdgBuilder b("ratio");
    const NodeId a = b.add("a");  // Will have 4 uses.
    const NodeId c = b.mul("c");  // One use.
    std::vector<NodeId> sinks;
    for (int i = 0; i < 4; ++i) {
        const NodeId m = b.mul();
        b.flow(a, m);
        const NodeId st = b.store();
        b.flow(m, st);
        sinks.push_back(m);
    }
    const NodeId st = b.store();
    b.flow(c, st);
    // Give both producers an input.
    const NodeId ld = b.load();
    b.flow(ld, a);
    b.flow(ld, c);
    const Ddg g = b.take();

    // Hand-build lifetimes: a: LT=12 cost=5; c: LT=10 cost=0 (store
    // consumer reusable).
    LifetimeInfo info;
    info.ii = 2;
    info.lifetimes.assign(std::size_t(g.numNodes()), Lifetime{});
    info.lifetimes[std::size_t(a)] =
        {a, true, 0, 12, 12, 0};
    info.lifetimes[std::size_t(c)] =
        {c, true, 0, 10, 10, 0};
    info.pressure.assign(2, 0);
    info.maxLive = 11;

    const auto cands = spillCandidates(g, info);
    const auto maxLt = selectOne(cands, SpillHeuristic::MaxLT);
    const auto ratio = selectOne(cands, SpillHeuristic::MaxLTOverTraf);
    ASSERT_TRUE(maxLt.has_value());
    ASSERT_TRUE(ratio.has_value());
    EXPECT_EQ(maxLt->node, a);   // Longest wins regardless of cost.
    EXPECT_EQ(ratio->node, c);   // Cheapest per cycle wins.
}

TEST(SpillInsert, ProducerIsLoadGetsReloadsWithoutStore)
{
    Ddg g = buildPaperExampleLoop();
    const LifetimeInfo info = analyzeLifetimes(g, paperFlatSchedule(1));
    const auto cands = spillCandidates(g, info);
    const auto pick = selectOne(cands, SpillHeuristic::MaxLT);
    ASSERT_TRUE(pick.has_value());
    ASSERT_EQ(pick->node, 0);

    const SpillEdit edit = insertSpill(g, Machine::universal("fig2", 4, 2), *pick);
    EXPECT_EQ(edit.loadsAdded, 2);
    EXPECT_EQ(edit.storesAdded, 0);

    std::string why;
    EXPECT_TRUE(verifyDdg(g, &why)) << why;

    // Figure 5c shape: Ld keeps no register uses; two spill loads feed
    // '*' and '+' through fused edges; the reload for '+' carries the
    // original distance as its stream shift.
    EXPECT_EQ(g.numValueUses(0), 0);
    EXPECT_TRUE(g.node(0).nonSpillableValue);
    int fused = 0;
    int shift3 = 0;
    for (NodeId n = 4; n < g.numNodes(); ++n) {
        const Node &node = g.node(n);
        ASSERT_EQ(node.origin, NodeOrigin::SpillLoad);
        EXPECT_EQ(node.spillRef.kind, SpillRef::Kind::ReloadStream);
        EXPECT_EQ(node.spillRef.value, 0);
        EXPECT_TRUE(node.nonSpillableValue);
        shift3 += node.spillRef.shift == 3;
        for (EdgeId e : g.outEdges(n))
            fused += g.edge(e).nonSpillable;
    }
    EXPECT_EQ(fused, 2);
    EXPECT_EQ(shift3, 1);
}

TEST(SpillInsert, GeneralVariantGetsStorePlusLoads)
{
    Ddg g = buildPaperExampleLoop();
    // Spill V2 (the multiply): one store + one load.
    SpillCandidate cand;
    cand.node = 1;
    cand.lifetime = 2;
    cand.cost = 2;
    const SpillEdit edit = insertSpill(g, Machine::universal("fig2", 4, 2), cand);
    EXPECT_EQ(edit.storesAdded, 1);
    EXPECT_EQ(edit.loadsAdded, 1);

    std::string why;
    EXPECT_TRUE(verifyDdg(g, &why)) << why;

    // The new store is fused after '*'; the new load is fused before
    // '+' and reads the store's slot; a memory edge ties them.
    const NodeId ss = 4, ls = 5;
    EXPECT_EQ(g.node(ss).origin, NodeOrigin::SpillStore);
    EXPECT_EQ(g.node(ls).origin, NodeOrigin::SpillLoad);
    EXPECT_EQ(g.node(ls).spillRef.kind, SpillRef::Kind::StoreSlot);
    EXPECT_EQ(g.node(ls).spillRef.value, ss);
    bool memEdge = false;
    for (EdgeId e : g.outEdges(ss))
        memEdge |= g.edge(e).kind == DepKind::Mem && g.edge(e).dst == ls;
    EXPECT_TRUE(memEdge);
    EXPECT_TRUE(g.node(1).nonSpillableValue);
}

TEST(SpillInsert, ReusesExistingStore)
{
    // v = add; st(v); mul(v): spilling v must reuse st, adding only the
    // reload for mul.
    DdgBuilder b("reuse");
    const NodeId ld = b.load();
    const NodeId v = b.add("v");
    b.flow(ld, v);
    const NodeId st = b.store("st");
    b.flow(v, st);
    const NodeId mul = b.mul("m");
    b.flow(v, mul, 2);
    const NodeId st2 = b.store();
    b.flow(mul, st2);
    Ddg g = b.take();

    ASSERT_EQ(spillCost(g, v), 1);
    SpillCandidate cand;
    cand.node = v;
    cand.lifetime = 10;
    cand.cost = 1;
    const SpillEdit edit = insertSpill(g, Machine::universal("fig2", 4, 2), cand);
    EXPECT_TRUE(edit.reusedStore);
    EXPECT_EQ(edit.storesAdded, 0);
    EXPECT_EQ(edit.loadsAdded, 1);

    std::string why;
    EXPECT_TRUE(verifyDdg(g, &why)) << why;

    // The reload reads st's slot at the use's distance.
    const NodeId ls = g.numNodes() - 1;
    EXPECT_EQ(g.node(ls).spillRef.kind, SpillRef::Kind::StoreSlot);
    EXPECT_EQ(g.node(ls).spillRef.value, st);
    EXPECT_EQ(g.node(ls).spillRef.shift, 2);
    // The kept producer->store edge is now fused.
    bool fusedToStore = false;
    for (EdgeId e : g.outEdges(v)) {
        if (g.edge(e).dst == st)
            fusedToStore = g.edge(e).nonSpillable;
    }
    EXPECT_TRUE(fusedToStore);
}

TEST(SpillInsert, InvariantSpillMovesStoreOutOfLoop)
{
    Ddg g = buildPaperExampleLoop();
    SpillCandidate cand;
    cand.isInvariant = true;
    cand.inv = 0;
    cand.lifetime = 1;
    cand.cost = 1;
    const SpillEdit edit = insertSpill(g, Machine::universal("fig2", 4, 2), cand);
    EXPECT_EQ(edit.loadsAdded, 1);
    EXPECT_EQ(edit.storesAdded, 0);
    EXPECT_TRUE(g.invariant(0).spilled);
    EXPECT_EQ(g.numLiveInvariants(), 0);
    EXPECT_TRUE(g.node(1).invariantUses.empty());

    std::string why;
    EXPECT_TRUE(verifyDdg(g, &why)) << why;
    const NodeId ls = 4;
    EXPECT_EQ(g.node(ls).spillRef.kind, SpillRef::Kind::InvariantMem);
    EXPECT_EQ(g.node(ls).spillRef.value, 0);
}

TEST(SpillInsert, SpilledArtifactsAreNeverCandidatesAgain)
{
    Ddg g = buildPaperExampleLoop();
    const LifetimeInfo before = analyzeLifetimes(g, paperFlatSchedule(1));
    const auto pick = selectOne(spillCandidates(g, before),
                                SpillHeuristic::MaxLT);
    insertSpill(g, Machine::universal("fig2", 4, 2), *pick);

    // Reschedule-free approximation: fabricate a schedule covering the
    // new nodes, then enumerate candidates again.
    const Machine m = Machine::universal("fig2", 4, 2);
    HrmsScheduler hrms;
    auto s = hrms.scheduleAt(g, m, 2);
    ASSERT_TRUE(s.has_value());
    const LifetimeInfo after = analyzeLifetimes(g, *s);
    for (const auto &cand : spillCandidates(g, after)) {
        if (!cand.isInvariant) {
            EXPECT_EQ(g.node(cand.node).origin, NodeOrigin::Original);
            EXPECT_FALSE(g.node(cand.node).nonSpillableValue);
        }
    }
}

TEST(SpillSelect, MultiSelectStopsAtOptimisticEstimate)
{
    const Ddg g = buildPaperExampleLoop();
    const LifetimeInfo info = analyzeLifetimes(g, paperFlatSchedule(1));
    // totalRegisterBound = 12 (11 + invariant). Budget 9: V1 alone
    // (ceil(7/1)=7) optimistically reaches 5 <= 9 -> exactly one pick.
    const auto picks = selectMultiple(spillCandidates(g, info),
                                      SpillHeuristic::MaxLT, info, 9);
    ASSERT_EQ(picks.size(), 1u);
    EXPECT_EQ(picks[0].node, 0);

    // Budget 2: needs more than one lifetime.
    const auto more = selectMultiple(spillCandidates(g, info),
                                     SpillHeuristic::MaxLT, info, 2);
    EXPECT_GT(more.size(), 1u);
}

TEST(SpillSelect, NoCandidateWhenEverythingNonSpillable)
{
    DdgBuilder b("ns");
    const NodeId ld = b.load();
    const NodeId st = b.store();
    b.flow(ld, st);
    Ddg g = b.take();
    g.node(ld).nonSpillableValue = true;

    Schedule s(1, 2);
    s.set(0, 0, 0);
    s.set(1, 2, 1);
    const LifetimeInfo info = analyzeLifetimes(g, s);
    EXPECT_TRUE(spillCandidates(g, info).empty());
    EXPECT_FALSE(selectOne(std::vector<SpillCandidate>{},
                           SpillHeuristic::MaxLT)
                     .has_value());
}

} // namespace
} // namespace swp
