#!/bin/sh
# Byte-identity guard for the certificate JSON stream.
#
# The --certify-out JSONL file is specified to be a pure function of the
# job list: identical at any worker-thread count, and the union of N
# sharded runs' lines (reordered by job index) must equal the unsharded
# file byte for byte. This script pins all three properties on a
# 120-loop pinned-seed suite:
#
#   1. --threads 1 vs --threads 8 produce identical JSONL bytes;
#   2. shard 0/2 + shard 1/2, merged by job index, reproduce the
#      unsharded JSONL exactly;
#   3. stdout (the CSV the fingerprint guards) is byte-identical with
#      and without --certify, so certification observes without
#      perturbing.
#
# Usage: check_certify_determinism.sh /path/to/swpipe_cli
set -eu

cli="$1"
tmp="${TMPDIR:-/tmp}/swp_certify_$$"
mkdir -p "$tmp"
trap 'rm -rf "$tmp"' EXIT

"$cli" --suite 120 --csv > "$tmp/plain.csv" 2>/dev/null

"$cli" --suite 120 --csv --threads 1 --certify-out "$tmp/t1.jsonl" \
    > "$tmp/t1.csv" 2>/dev/null
"$cli" --suite 120 --csv --threads 8 --certify-out "$tmp/t8.jsonl" \
    > /dev/null 2>/dev/null

if ! cmp -s "$tmp/plain.csv" "$tmp/t1.csv"; then
    echo "--certify changed stdout; it must only write stderr/JSONL" >&2
    exit 1
fi
if ! cmp -s "$tmp/t1.jsonl" "$tmp/t8.jsonl"; then
    echo "certificate JSONL differs between --threads 1 and 8" >&2
    exit 1
fi

"$cli" --suite 120 --csv --shard 0/2 --shard-out "$tmp/s0.bin" \
    --certify-out "$tmp/s0.jsonl" > /dev/null 2>/dev/null
"$cli" --suite 120 --csv --shard 1/2 --shard-out "$tmp/s1.bin" \
    --certify-out "$tmp/s1.jsonl" > /dev/null 2>/dev/null

# Merge the shard lines back into job order, preserving each line's
# bytes (sorted on the parsed "job" field only).
cat "$tmp/s0.jsonl" "$tmp/s1.jsonl" | python3 -c '
import json
import sys

lines = sys.stdin.readlines()
lines.sort(key=lambda line: json.loads(line)["job"])
sys.stdout.write("".join(lines))
' > "$tmp/merged.jsonl"

if ! cmp -s "$tmp/t1.jsonl" "$tmp/merged.jsonl"; then
    echo "merged shard certificate JSONL differs from unsharded run" >&2
    exit 1
fi

lines=$(wc -l < "$tmp/t1.jsonl")
if [ "$lines" -ne 120 ]; then
    echo "expected 120 certificate lines, got $lines" >&2
    exit 1
fi
echo "certify determinism OK (120 jobs; threads + shard merge identical)"
