#!/bin/sh
# Byte-identity guard for the scheduler core.
#
# The pinned commands below exercise both schedulers (HRMS, IMS), all
# three paper machines and every strategy family over the pinned-seed
# generated suite. Their concatenated CSV output is hashed and compared
# against tests/golden/suite_fingerprint.sha256, which was captured
# BEFORE the PR 5 bitset/workspace scheduler-core refactor: any change
# to a schedule, an II, a spill decision or a register count — however
# small — fails this check. The suite generator uses the repo's own
# portable PRNG and the CSV contains integers only, so the hash is
# stable across compilers and platforms.
#
# Usage: check_suite_fingerprint.sh /path/to/swpipe_cli
set -eu

cli="$1"
want=$(cat "$(dirname "$0")/suite_fingerprint.sha256")

tmp="${TMPDIR:-/tmp}/swp_fingerprint_$$.csv"
trap 'rm -f "$tmp"' EXIT

{
    "$cli" --suite 400 --csv
    "$cli" --suite 400 --csv --scheduler ims --strategy spill
    "$cli" --suite 200 --csv --machine p1l4 --strategy increase-ii
    "$cli" --suite 200 --csv --machine p2l6 --strategy ideal
} > "$tmp"

got=$(sha256sum "$tmp" | cut -d' ' -f1)
if [ "$got" != "$want" ]; then
    echo "suite output fingerprint mismatch:" >&2
    echo "  want $want" >&2
    echo "  got  $got" >&2
    echo "schedules are no longer byte-identical to the golden run" >&2
    exit 1
fi
echo "suite fingerprint OK ($got)"
