/**
 * @file
 * Modulo reservation table tests: pipelined and non-pipelined
 * occupancy, wraparound, group placement and eviction support.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <vector>

#include "ir/builder.hh"
#include "machine/machine.hh"
#include "sched/groups.hh"
#include "sched/mrt.hh"
#include "support/rng.hh"

namespace swp
{
namespace
{

/**
 * Naive reference reservation table: the pre-bitset implementation,
 * answering every query by scanning an occupant vector. The bitset Mrt
 * must agree with it on every operation, including the unit index
 * chosen (both take the lowest free unit).
 */
class RefMrt
{
  public:
    RefMrt(const Machine &m, int ii) : m_(m), ii_(ii)
    {
        int base = 0;
        for (int fu = 0; fu < numFuClasses; ++fu) {
            classBase_[fu] = base;
            const int units =
                m.isUniversal() ? (fu == 0 ? m.unitsFor(FuClass(0)) : 0)
                                : m.unitsFor(FuClass(fu));
            base += units * ii;
        }
        occupant_.assign(std::size_t(base), invalidNode);
    }

    int
    findUnit(Opcode op, int t) const
    {
        const FuClass fu = fuClassOf(op);
        const int units = m_.unitsFor(fu);
        const int occ = m_.occupancy(op);
        if (occ > ii_)
            return -1;
        for (int u = 0; u < units; ++u) {
            bool free = true;
            for (int c = 0; c < occ && free; ++c) {
                const int row = Schedule::floorMod(t + c, ii_);
                free = occupant_[std::size_t(cell(fu, u, row))] ==
                       invalidNode;
            }
            if (free)
                return u;
        }
        return -1;
    }

    int
    place(Opcode op, int t, NodeId n)
    {
        const int u = findUnit(op, t);
        if (u < 0)
            return -1;
        const int occ = m_.occupancy(op);
        for (int c = 0; c < occ; ++c) {
            const int row = Schedule::floorMod(t + c, ii_);
            occupant_[std::size_t(cell(fuClassOf(op), u, row))] = n;
        }
        return u;
    }

    void
    remove(Opcode op, int t, NodeId n, int u)
    {
        const int occ = m_.occupancy(op);
        for (int c = 0; c < occ; ++c) {
            const int row = Schedule::floorMod(t + c, ii_);
            const int idx = cell(fuClassOf(op), u, row);
            ASSERT_EQ(occupant_[std::size_t(idx)], n);
            occupant_[std::size_t(idx)] = invalidNode;
        }
    }

    std::vector<NodeId>
    conflicts(Opcode op, int t) const
    {
        const int occ = m_.occupancy(op);
        std::vector<NodeId> blockers;
        if (occ > ii_)
            return blockers;
        const FuClass fu = fuClassOf(op);
        for (int u = 0; u < m_.unitsFor(fu); ++u) {
            for (int c = 0; c < occ; ++c) {
                const int row = Schedule::floorMod(t + c, ii_);
                const NodeId n = occupant_[std::size_t(cell(fu, u, row))];
                if (n != invalidNode &&
                    std::find(blockers.begin(), blockers.end(), n) ==
                        blockers.end()) {
                    blockers.push_back(n);
                }
            }
        }
        return blockers;
    }

  private:
    int
    cell(FuClass fu, int unit, int row) const
    {
        const int fi = m_.isUniversal() ? 0 : int(fu);
        return classBase_[fi] + unit * ii_ + row;
    }

    const Machine &m_;
    int ii_;
    std::vector<NodeId> occupant_;
    int classBase_[numFuClasses];
};

/** The opcode mix of the differential test: pipelined single-row ops
    plus the non-pipelined multi-row divide and square root. */
constexpr Opcode kDiffOps[] = {Opcode::Load, Opcode::Store, Opcode::Add,
                               Opcode::Mul,  Opcode::Div,   Opcode::Sqrt,
                               Opcode::Copy};

/** Compare every query both tables answer, over a window of times. */
void
expectTablesAgree(const Mrt &mrt, const RefMrt &ref, int ii)
{
    for (const Opcode op : kDiffOps) {
        for (int t = -ii - 3; t <= 2 * ii + 3; ++t) {
            ASSERT_EQ(mrt.findUnit(op, t), ref.findUnit(op, t))
                << opcodeName(op) << " at t=" << t;
            ASSERT_EQ(mrt.conflicts(op, t), ref.conflicts(op, t))
                << opcodeName(op) << " at t=" << t;
        }
    }
}

TEST(Mrt, DifferentialAgainstNaiveReference)
{
    const Machine machines[] = {Machine::p1l4(), Machine::p2l4(),
                                Machine::universal("u3", 3, 2)};
    struct Placement
    {
        Opcode op;
        int t;
        NodeId n;
        int u;
    };

    for (const Machine &m : machines) {
        Rng rng(0x5eedu + std::uint64_t(m.totalUnits()));
        for (int trial = 0; trial < 6; ++trial) {
            // IIs from 1 (everything wraps onto one row) up past the
            // non-pipelined occupancies (Div 17, Sqrt 30 fit partially).
            const int ii = trial == 0 ? 1 : rng.range(2, 40);
            Mrt mrt(m, ii);
            RefMrt ref(m, ii);
            std::vector<Placement> live;
            NodeId nextNode = 0;

            for (int step = 0; step < 160; ++step) {
                const bool doPlace =
                    live.empty() || rng.chance(0.6);
                if (doPlace) {
                    const Opcode op = kDiffOps[std::size_t(
                        rng.range(0, int(std::size(kDiffOps)) - 1))];
                    const int t = rng.range(-30, 60);
                    const NodeId n = nextNode++;
                    const int u1 = mrt.place(op, t, n);
                    const int u2 = ref.place(op, t, n);
                    ASSERT_EQ(u1, u2)
                        << m.name() << " ii=" << ii << " place "
                        << opcodeName(op) << " t=" << t;
                    if (u1 >= 0)
                        live.push_back({op, t, n, u1});
                } else {
                    const std::size_t pick = std::size_t(
                        rng.range(0, int(live.size()) - 1));
                    const Placement p = live[pick];
                    live.erase(live.begin() + long(pick));
                    mrt.remove(p.op, p.t, p.n, p.u);
                    ref.remove(p.op, p.t, p.n, p.u);
                }
                if (step % 20 == 0)
                    expectTablesAgree(mrt, ref, ii);
            }
            expectTablesAgree(mrt, ref, ii);
        }
    }
}

TEST(Mrt, DifferentialGroupPlacement)
{
    // Fused load->add groups over one mem unit: group placement must
    // agree with placing the members one by one on the reference table,
    // including the all-or-nothing failure case.
    DdgBuilder b("grp");
    const NodeId l1 = b.load("l1");
    const NodeId a1 = b.add("a1");
    const NodeId st = b.store("st");
    b.graph().addEdge(l1, a1, DepKind::RegFlow, 0, true);
    b.flow(a1, st);
    const Ddg g = b.take();
    const Machine m = Machine::p1l4();
    const GroupSet groups(g, m);
    const ComplexGroup &grp = groups.group(groups.groupOf(l1));
    ASSERT_EQ(grp.members.size(), 2u);

    Rng rng(99);
    for (int trial = 0; trial < 8; ++trial) {
        const int ii = rng.range(1, 6);
        Mrt mrt(m, ii);
        RefMrt ref(m, ii);
        Schedule sched(ii, g.numNodes());
        bool placed = false;
        int placedT0 = 0;
        // Background noise so the group competes with singletons.
        NodeId noise = 100;
        for (int step = 0; step < 60; ++step) {
            if (rng.chance(0.3)) {
                const Opcode op = rng.chance(0.5) ? Opcode::Load
                                                  : Opcode::Add;
                const int t = rng.range(-5, 10);
                ASSERT_EQ(mrt.place(op, t, noise), ref.place(op, t, noise));
                ++noise;
            }
            if (!placed) {
                const int t0 = rng.range(-10, 20);
                // Reference: member-by-member with rollback semantics
                // (the scratch copy is only probed, never kept).
                const bool refCan = [&] {
                    RefMrt scratch(ref);
                    for (std::size_t i = 0; i < grp.members.size(); ++i) {
                        if (scratch.place(g.node(grp.members[i]).op,
                                          t0 + grp.offsets[i],
                                          grp.members[i]) < 0) {
                            return false;
                        }
                    }
                    return true;
                }();
                ASSERT_EQ(mrt.canPlaceGroup(g, grp, t0), refCan)
                    << "ii=" << ii << " t0=" << t0;
                if (refCan && rng.chance(0.7)) {
                    ASSERT_TRUE(mrt.placeGroup(g, grp, t0, sched));
                    for (std::size_t i = 0; i < grp.members.size(); ++i) {
                        ASSERT_EQ(ref.place(g.node(grp.members[i]).op,
                                            t0 + grp.offsets[i],
                                            grp.members[i]),
                                  sched.unit(grp.members[i]));
                    }
                    placed = true;
                    placedT0 = t0;
                }
            } else if (rng.chance(0.5)) {
                mrt.removeGroup(g, grp, sched);
                for (std::size_t i = 0; i < grp.members.size(); ++i) {
                    ref.remove(g.node(grp.members[i]).op,
                               placedT0 + grp.offsets[i], grp.members[i],
                               sched.unit(grp.members[i]));
                }
                placed = false;
            }
            expectTablesAgree(mrt, ref, ii);
        }
    }
}

TEST(Mrt, FillsAllUnitsOfARow)
{
    const Machine m = Machine::p2l4();
    Mrt mrt(m, 2);
    // Two loads in row 0: both units; a third must fail.
    EXPECT_GE(mrt.place(Opcode::Load, 0, 0), 0);
    EXPECT_GE(mrt.place(Opcode::Load, 2, 1), 0);  // Row 0 again (t=2).
    EXPECT_EQ(mrt.place(Opcode::Load, 4, 2), -1);
    // Row 1 still free.
    EXPECT_GE(mrt.place(Opcode::Load, 1, 3), 0);
}

TEST(Mrt, RemoveFreesTheSlot)
{
    const Machine m = Machine::p1l4();
    Mrt mrt(m, 3);
    const int u = mrt.place(Opcode::Add, 4, 7);
    ASSERT_GE(u, 0);
    EXPECT_FALSE(mrt.canPlace(Opcode::Add, 1));  // Same row (1 = 4 mod 3).
    mrt.remove(Opcode::Add, 4, 7, u);
    EXPECT_TRUE(mrt.canPlace(Opcode::Add, 1));
}

TEST(Mrt, NonPipelinedOccupiesConsecutiveRows)
{
    const Machine m = Machine::p1l4();
    Mrt mrt(m, 20);
    // A divide occupies rows 0..16 of the single div/sqrt unit.
    ASSERT_GE(mrt.place(Opcode::Div, 0, 0), 0);
    EXPECT_FALSE(mrt.canPlace(Opcode::Div, 16));
    EXPECT_FALSE(mrt.canPlace(Opcode::Sqrt, 5));
    // Occupancy 17 <= II=20 leaves rows 17..19 free, but another
    // 17-cycle divide cannot fit into 3 free rows.
    EXPECT_FALSE(mrt.canPlace(Opcode::Div, 17));
}

TEST(Mrt, OccupancyLongerThanIiIsRejected)
{
    const Machine m = Machine::p1l4();
    Mrt mrt(m, 10);
    EXPECT_EQ(mrt.findUnit(Opcode::Div, 0), -1);  // 17 > II.
}

TEST(Mrt, NegativeTimesWrapCorrectly)
{
    const Machine m = Machine::p1l4();
    Mrt mrt(m, 4);
    ASSERT_GE(mrt.place(Opcode::Add, -3, 1), 0);  // Row 1.
    EXPECT_FALSE(mrt.canPlace(Opcode::Add, 1));
    EXPECT_FALSE(mrt.canPlace(Opcode::Add, 5));
    EXPECT_TRUE(mrt.canPlace(Opcode::Add, 0));
}

TEST(Mrt, ConflictsReportsBlockers)
{
    const Machine m = Machine::p1l4();
    Mrt mrt(m, 2);
    mrt.place(Opcode::Add, 0, 11);
    const auto blockers = mrt.conflicts(Opcode::Add, 2);
    ASSERT_EQ(blockers.size(), 1u);
    EXPECT_EQ(blockers[0], 11);
    EXPECT_TRUE(mrt.conflicts(Opcode::Add, 1).empty());
}

TEST(Mrt, ConflictsEmptyWhenOccupancyExceedsIi)
{
    // Regression: conflicts() used to clamp the occupancy to II and
    // report "blockers" for an op findUnit can never place (occupancy
    // > II), sending IMS eviction after nodes whose removal cannot
    // help. It must report none, mirroring findUnit's rejection.
    const Machine m = Machine::p1l4();
    Mrt mrt(m, 20);
    // A divide (occupancy 17 <= 20) occupies the div/sqrt unit.
    ASSERT_GE(mrt.place(Opcode::Div, 0, 5), 0);
    // A sqrt (occupancy 30 > 20) can never be placed at this II...
    EXPECT_EQ(mrt.findUnit(Opcode::Sqrt, 0), -1);
    // ...so evicting the divide cannot help: no blockers.
    EXPECT_TRUE(mrt.conflicts(Opcode::Sqrt, 0).empty());
    // The divide itself still conflicts normally with another divide.
    const auto blockers = mrt.conflicts(Opcode::Div, 3);
    ASSERT_EQ(blockers.size(), 1u);
    EXPECT_EQ(blockers[0], 5);
}

TEST(Mrt, GroupPlacementIsAtomic)
{
    // Two loads fused to their consumers compete for the one mem unit.
    DdgBuilder b("grp");
    const NodeId l1 = b.load("l1");
    const NodeId a1 = b.add("a1");
    const NodeId st = b.store("st");
    b.graph().addEdge(l1, a1, DepKind::RegFlow, 0, true);
    b.flow(a1, st);
    Ddg g = b.take();
    const Machine m = Machine::p1l4();

    const GroupSet groups(g, m);
    const int gi = groups.groupOf(l1);
    ASSERT_EQ(gi, groups.groupOf(a1));
    const ComplexGroup &grp = groups.group(gi);
    ASSERT_EQ(grp.members.size(), 2u);
    EXPECT_EQ(grp.offsets[1] - grp.offsets[0], m.latency(Opcode::Load));

    Mrt mrt(m, 2);
    Schedule sched(2, g.numNodes());
    EXPECT_TRUE(mrt.placeGroup(g, grp, 0, sched));
    EXPECT_EQ(sched.time(a1) - sched.time(l1), 2);

    // The adder row is now busy; a second identical group at the same
    // anchor parity must fail atomically and leave no residue.
    Mrt copy(mrt);
    EXPECT_FALSE(copy.canPlaceGroup(g, grp, 2));
    // Removing restores the table.
    mrt.removeGroup(g, grp, sched);
    EXPECT_TRUE(mrt.canPlaceGroup(g, grp, 0));
}

TEST(Mrt, GroupSelfCompetitionDetected)
{
    // A fused pair whose members need the same unit class in the same
    // row: two loads at offsets 0 and II on one mem unit.
    DdgBuilder b("self");
    const NodeId l1 = b.load("l1");
    const NodeId c1 = b.copy("c1");
    const NodeId l2 = b.load("l2");
    const NodeId st = b.store("st");
    b.graph().addEdge(l1, c1, DepKind::RegFlow, 0, true);
    b.flow(c1, st);
    b.flow(l2, st);
    Ddg g = b.take();

    // Universal machine with one unit at II=2: l1 sits at offset 0 and
    // c1 at offset latency(ld)=2, i.e. the same kernel row — the group
    // conflicts with itself and per-member checks would miss it.
    const Machine m = Machine::universal("u1", 1, 2);
    const GroupSet groups(g, m);
    Mrt mrt(m, 2);
    Schedule sched(2, g.numNodes());
    (void)l2;
    const ComplexGroup &grp = groups.group(groups.groupOf(l1));
    EXPECT_FALSE(mrt.canPlaceGroup(g, grp, 0));
    EXPECT_FALSE(mrt.placeGroup(g, grp, 0, sched));
    // Failure must roll back completely: the row is still free.
    EXPECT_TRUE(mrt.canPlace(Opcode::Add, 0));
    EXPECT_TRUE(mrt.canPlace(Opcode::Add, 1));
}

} // namespace
} // namespace swp
