/**
 * @file
 * Modulo reservation table tests: pipelined and non-pipelined
 * occupancy, wraparound, group placement and eviction support.
 */

#include <gtest/gtest.h>

#include "ir/builder.hh"
#include "machine/machine.hh"
#include "sched/groups.hh"
#include "sched/mrt.hh"

namespace swp
{
namespace
{

TEST(Mrt, FillsAllUnitsOfARow)
{
    const Machine m = Machine::p2l4();
    Mrt mrt(m, 2);
    // Two loads in row 0: both units; a third must fail.
    EXPECT_GE(mrt.place(Opcode::Load, 0, 0), 0);
    EXPECT_GE(mrt.place(Opcode::Load, 2, 1), 0);  // Row 0 again (t=2).
    EXPECT_EQ(mrt.place(Opcode::Load, 4, 2), -1);
    // Row 1 still free.
    EXPECT_GE(mrt.place(Opcode::Load, 1, 3), 0);
}

TEST(Mrt, RemoveFreesTheSlot)
{
    const Machine m = Machine::p1l4();
    Mrt mrt(m, 3);
    const int u = mrt.place(Opcode::Add, 4, 7);
    ASSERT_GE(u, 0);
    EXPECT_FALSE(mrt.canPlace(Opcode::Add, 1));  // Same row (1 = 4 mod 3).
    mrt.remove(Opcode::Add, 4, 7, u);
    EXPECT_TRUE(mrt.canPlace(Opcode::Add, 1));
}

TEST(Mrt, NonPipelinedOccupiesConsecutiveRows)
{
    const Machine m = Machine::p1l4();
    Mrt mrt(m, 20);
    // A divide occupies rows 0..16 of the single div/sqrt unit.
    ASSERT_GE(mrt.place(Opcode::Div, 0, 0), 0);
    EXPECT_FALSE(mrt.canPlace(Opcode::Div, 16));
    EXPECT_FALSE(mrt.canPlace(Opcode::Sqrt, 5));
    // Occupancy 17 <= II=20 leaves rows 17..19 free, but another
    // 17-cycle divide cannot fit into 3 free rows.
    EXPECT_FALSE(mrt.canPlace(Opcode::Div, 17));
}

TEST(Mrt, OccupancyLongerThanIiIsRejected)
{
    const Machine m = Machine::p1l4();
    Mrt mrt(m, 10);
    EXPECT_EQ(mrt.findUnit(Opcode::Div, 0), -1);  // 17 > II.
}

TEST(Mrt, NegativeTimesWrapCorrectly)
{
    const Machine m = Machine::p1l4();
    Mrt mrt(m, 4);
    ASSERT_GE(mrt.place(Opcode::Add, -3, 1), 0);  // Row 1.
    EXPECT_FALSE(mrt.canPlace(Opcode::Add, 1));
    EXPECT_FALSE(mrt.canPlace(Opcode::Add, 5));
    EXPECT_TRUE(mrt.canPlace(Opcode::Add, 0));
}

TEST(Mrt, ConflictsReportsBlockers)
{
    const Machine m = Machine::p1l4();
    Mrt mrt(m, 2);
    mrt.place(Opcode::Add, 0, 11);
    const auto blockers = mrt.conflicts(Opcode::Add, 2);
    ASSERT_EQ(blockers.size(), 1u);
    EXPECT_EQ(blockers[0], 11);
    EXPECT_TRUE(mrt.conflicts(Opcode::Add, 1).empty());
}

TEST(Mrt, ConflictsEmptyWhenOccupancyExceedsIi)
{
    // Regression: conflicts() used to clamp the occupancy to II and
    // report "blockers" for an op findUnit can never place (occupancy
    // > II), sending IMS eviction after nodes whose removal cannot
    // help. It must report none, mirroring findUnit's rejection.
    const Machine m = Machine::p1l4();
    Mrt mrt(m, 20);
    // A divide (occupancy 17 <= 20) occupies the div/sqrt unit.
    ASSERT_GE(mrt.place(Opcode::Div, 0, 5), 0);
    // A sqrt (occupancy 30 > 20) can never be placed at this II...
    EXPECT_EQ(mrt.findUnit(Opcode::Sqrt, 0), -1);
    // ...so evicting the divide cannot help: no blockers.
    EXPECT_TRUE(mrt.conflicts(Opcode::Sqrt, 0).empty());
    // The divide itself still conflicts normally with another divide.
    const auto blockers = mrt.conflicts(Opcode::Div, 3);
    ASSERT_EQ(blockers.size(), 1u);
    EXPECT_EQ(blockers[0], 5);
}

TEST(Mrt, GroupPlacementIsAtomic)
{
    // Two loads fused to their consumers compete for the one mem unit.
    DdgBuilder b("grp");
    const NodeId l1 = b.load("l1");
    const NodeId a1 = b.add("a1");
    const NodeId st = b.store("st");
    b.graph().addEdge(l1, a1, DepKind::RegFlow, 0, true);
    b.flow(a1, st);
    Ddg g = b.take();
    const Machine m = Machine::p1l4();

    const GroupSet groups(g, m);
    const int gi = groups.groupOf(l1);
    ASSERT_EQ(gi, groups.groupOf(a1));
    const ComplexGroup &grp = groups.group(gi);
    ASSERT_EQ(grp.members.size(), 2u);
    EXPECT_EQ(grp.offsets[1] - grp.offsets[0], m.latency(Opcode::Load));

    Mrt mrt(m, 2);
    Schedule sched(2, g.numNodes());
    EXPECT_TRUE(mrt.placeGroup(g, grp, 0, sched));
    EXPECT_EQ(sched.time(a1) - sched.time(l1), 2);

    // The adder row is now busy; a second identical group at the same
    // anchor parity must fail atomically and leave no residue.
    Mrt copy(mrt);
    EXPECT_FALSE(copy.canPlaceGroup(g, grp, 2));
    // Removing restores the table.
    mrt.removeGroup(g, grp, sched);
    EXPECT_TRUE(mrt.canPlaceGroup(g, grp, 0));
}

TEST(Mrt, GroupSelfCompetitionDetected)
{
    // A fused pair whose members need the same unit class in the same
    // row: two loads at offsets 0 and II on one mem unit.
    DdgBuilder b("self");
    const NodeId l1 = b.load("l1");
    const NodeId c1 = b.copy("c1");
    const NodeId l2 = b.load("l2");
    const NodeId st = b.store("st");
    b.graph().addEdge(l1, c1, DepKind::RegFlow, 0, true);
    b.flow(c1, st);
    b.flow(l2, st);
    Ddg g = b.take();

    // Universal machine with one unit at II=2: l1 sits at offset 0 and
    // c1 at offset latency(ld)=2, i.e. the same kernel row — the group
    // conflicts with itself and per-member checks would miss it.
    const Machine m = Machine::universal("u1", 1, 2);
    const GroupSet groups(g, m);
    Mrt mrt(m, 2);
    Schedule sched(2, g.numNodes());
    (void)l2;
    const ComplexGroup &grp = groups.group(groups.groupOf(l1));
    EXPECT_FALSE(mrt.canPlaceGroup(g, grp, 0));
    EXPECT_FALSE(mrt.placeGroup(g, grp, 0, sched));
    // Failure must roll back completely: the row is still free.
    EXPECT_TRUE(mrt.canPlace(Opcode::Add, 0));
    EXPECT_TRUE(mrt.canPlace(Opcode::Add, 1));
}

} // namespace
} // namespace swp
