/**
 * @file
 * Parameterized property sweeps beyond the paper's configurations:
 *
 *  - allocator fuzz: random lifetime populations must always pack
 *    conflict-free, never below MaxLive, under every strategy/ordering;
 *  - machine sweep: the full register-constrained pipeline must stay
 *    sound (valid schedules, budget respected, sequential equivalence)
 *    on machine shapes the paper never evaluated, including
 *    non-pipelined multipliers and long-latency memory.
 */

#include <gtest/gtest.h>

#include "pipeliner/pipeliner.hh"
#include "regalloc/mvealloc.hh"
#include "regalloc/rotalloc.hh"
#include "sim/vliw.hh"
#include "support/rng.hh"
#include "workload/suitegen.hh"

namespace swp
{
namespace
{

/** Build a LifetimeInfo directly from synthetic (start, length) pairs. */
LifetimeInfo
makeInfo(int ii, const std::vector<std::pair<int, int>> &ranges)
{
    LifetimeInfo info;
    info.ii = ii;
    info.pressure.assign(std::size_t(ii), 0);
    for (std::size_t i = 0; i < ranges.size(); ++i) {
        Lifetime lt;
        lt.producer = NodeId(i);
        lt.live = true;
        lt.start = ranges[i].first;
        lt.end = ranges[i].first + ranges[i].second;
        info.lifetimes.push_back(lt);

        const int len = ranges[i].second;
        for (int r = 0; r < ii; ++r)
            info.pressure[std::size_t(r)] += len / ii;
        const int startRow = Schedule::floorMod(lt.start, ii);
        for (int k = 0; k < len % ii; ++k)
            info.pressure[std::size_t((startRow + k) % ii)] += 1;
    }
    info.maxLive = 0;
    for (int p : info.pressure)
        info.maxLive = std::max(info.maxLive, p);
    return info;
}

class AllocFuzz : public ::testing::TestWithParam<int>
{};

TEST_P(AllocFuzz, RandomLifetimesAlwaysPackSoundly)
{
    Rng rng(std::uint64_t(GetParam()) * 7919 + 13);
    const int ii = rng.range(2, 12);
    const int numValues = rng.range(3, 40);
    std::vector<std::pair<int, int>> ranges;
    for (int i = 0; i < numValues; ++i) {
        ranges.emplace_back(rng.range(0, 4 * ii),
                            rng.range(1, 6 * ii));
    }
    const LifetimeInfo info = makeInfo(ii, ranges);

    for (const FitStrategy fit :
         {FitStrategy::EndFit, FitStrategy::FirstFit,
          FitStrategy::BestFit}) {
        for (const AllocOrder order :
             {AllocOrder::Adjacency, AllocOrder::DescendingLength}) {
            const int regs = minRotatingRegs(info, fit, order, 512);
            ASSERT_LE(regs, 512) << fitStrategyName(fit);
            EXPECT_GE(regs, info.maxLive) << fitStrategyName(fit);
            const RotAllocResult alloc =
                allocateRotating(info, regs, fit, order);
            ASSERT_TRUE(alloc.ok) << fitStrategyName(fit);
            std::string why;
            EXPECT_TRUE(allocationConflictFree(info, alloc, &why))
                << fitStrategyName(fit) << ": " << why;
            // One fewer register must fail, or regs was not minimal.
            if (regs > std::max(1, info.maxLive)) {
                EXPECT_FALSE(
                    allocateRotating(info, regs - 1, fit, order).ok)
                    << fitStrategyName(fit);
            }
        }
    }

    // MVE allocation on the same population: valid periods, at least
    // MaxLive registers.
    const MveAllocResult mve = allocateMve(info);
    EXPECT_GE(mve.registers, info.maxLive);
    for (std::size_t i = 0; i < ranges.size(); ++i) {
        const int p = mve.period[i];
        ASSERT_GT(p, 0);
        EXPECT_EQ(mve.unroll % p, 0);
        EXPECT_GE(long(p) * ii, long(ranges[i].second));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocFuzz, ::testing::Range(0, 40));

/** Exotic machine shapes (name + machine + budget). */
struct MachineCase
{
    const char *label;
    int memUnits, adders, mults, divsqrt, addMulLat;
    bool pipelinedMult;
    int loadLatency;
    int registers;
};

class MachineSweep : public ::testing::TestWithParam<MachineCase>
{
  protected:
    static Machine
    build(const MachineCase &c)
    {
        Machine m("custom", c.memUnits, c.adders, c.mults, c.divsqrt,
                  c.addMulLat);
        if (!c.pipelinedMult)
            m.setPipelined(FuClass::Mult, false);
        m.setLatency(Opcode::Load, c.loadLatency);
        return m;
    }
};

TEST_P(MachineSweep, ConstrainedPipelineStaysSound)
{
    const MachineCase c = GetParam();
    const Machine m = build(c);

    SuiteParams params;
    params.numLoops = 12;
    for (const SuiteLoop &loop : generateSuite(params)) {
        PipelinerOptions opts;
        opts.registers = c.registers;
        opts.multiSelect = true;
        opts.reuseLastIi = true;
        const PipelineResult r =
            pipelineLoop(loop.graph, m, Strategy::Spill, opts);

        std::string why;
        ASSERT_TRUE(validateSchedule(r.graph(), m, r.sched, &why))
            << c.label << " " << loop.graph.name() << ": " << why;
        if (!r.success)
            continue;
        EXPECT_LE(r.alloc.regsRequired, c.registers)
            << c.label << " " << loop.graph.name();
        ASSERT_TRUE(equivalentToSequential(loop.graph, r.graph(), m,
                                           r.sched, r.alloc.rotAlloc, 8,
                                           &why))
            << c.label << " " << loop.graph.name() << ": " << why;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MachineSweep,
    ::testing::Values(
        MachineCase{"wide_short", 4, 4, 4, 2, 2, true, 2, 24},
        MachineCase{"narrow_long", 1, 1, 1, 1, 8, true, 6, 16},
        MachineCase{"unpipelined_mult", 2, 2, 1, 1, 4, false, 2, 24},
        MachineCase{"slow_memory", 2, 2, 2, 1, 4, true, 12, 32},
        MachineCase{"tiny_file", 2, 2, 2, 1, 4, true, 2, 10}),
    [](const ::testing::TestParamInfo<MachineCase> &info) {
        return info.param.label;
    });

} // namespace
} // namespace swp
