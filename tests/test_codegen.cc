/**
 * @file
 * Kernel generation tests: folding, stage tags, prologue/epilogue
 * structure and modulo variable expansion.
 */

#include <gtest/gtest.h>

#include "codegen/kernel.hh"
#include "codegen/visualize.hh"
#include "ir/builder.hh"
#include "pipeliner/pipeliner.hh"
#include "workload/paper_loops.hh"

namespace swp
{
namespace
{

Schedule
paperFlatSchedule(int ii)
{
    Schedule s(ii, 4);
    s.set(0, 0, 0);
    s.set(1, 2, 1);
    s.set(2, 4, 2);
    s.set(3, 6, 3);
    return s;
}

TEST(Kernel, FoldsEveryOpExactlyOnce)
{
    const Ddg g = buildPaperExampleLoop();
    const Schedule s = paperFlatSchedule(2);
    const KernelCode k = buildKernel(g, s);
    EXPECT_EQ(k.ii, 2);
    EXPECT_EQ(k.stageCount, 4);  // Cycles 0..6 at II=2: stages 0..3.
    EXPECT_EQ(k.numOps(), 4);
    ASSERT_EQ(k.rows.size(), 2u);
    // All four ops land in row 0 (times 0,2,4,6 are all even).
    EXPECT_EQ(k.rows[0].size(), 4u);
    EXPECT_TRUE(k.rows[1].empty());
    // Stage tags 0..3 in order.
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(k.rows[0][std::size_t(i)].stage, i);
}

TEST(Kernel, PaperExampleKernelAtIiOneHasSevenStages)
{
    // Figure 2e: the II=1 kernel holds all 4 ops with stages 0,2,4,6.
    const Ddg g = buildPaperExampleLoop();
    const KernelCode k = buildKernel(g, paperFlatSchedule(1));
    EXPECT_EQ(k.stageCount, 7);
    ASSERT_EQ(k.rows.size(), 1u);
    EXPECT_EQ(k.rows[0].size(), 4u);
}

TEST(Kernel, MveUnrollFactorIsMaxCeilLtOverIi)
{
    const Ddg g = buildPaperExampleLoop();
    // II=1: V1 lives 7 cycles -> 7 names; II=2: LT 10 -> 5 names.
    EXPECT_EQ(mveUnrollFactor(
                  analyzeLifetimes(g, paperFlatSchedule(1))), 7);
    EXPECT_EQ(mveUnrollFactor(
                  analyzeLifetimes(g, paperFlatSchedule(2))), 5);
}

TEST(Kernel, ListingShowsPrologueKernelEpilogue)
{
    const Ddg g = buildPaperExampleLoop();
    const Machine m = Machine::universal("fig2", 4, 2);
    const PipelineResult r = pipelineIdeal(g, m);
    const std::string text =
        formatKernelListing(r.graph(), m, r.sched, r.alloc.rotAlloc);
    EXPECT_NE(text.find("prologue_stage_0"), std::string::npos);
    EXPECT_NE(text.find("kernel:"), std::string::npos);
    EXPECT_NE(text.find("epilogue_stage_0"), std::string::npos);
    EXPECT_NE(text.find("rot["), std::string::npos);
    EXPECT_NE(text.find("s0"), std::string::npos);  // Invariant operand.
}

TEST(Kernel, MveListingRenamesAcrossCopies)
{
    const Ddg g = buildPaperExampleLoop();
    const Schedule s = paperFlatSchedule(2);
    const LifetimeInfo info = analyzeLifetimes(g, s);
    const std::string text = formatMveKernel(g, s, info);
    EXPECT_NE(text.find("unroll=5"), std::string::npos);
    EXPECT_NE(text.find("copy_0"), std::string::npos);
    EXPECT_NE(text.find("copy_4"), std::string::npos);
    // Ld (node 0) definitions must use several distinct name banks.
    int banks = 0;
    for (int bk = 0; bk < 5; ++bk) {
        if (text.find("v0_" + std::to_string(bk) + " =") !=
            std::string::npos) {
            ++banks;
        }
    }
    EXPECT_EQ(banks, 5);
}

TEST(Visualize, LifetimeChartShowsDefsAndUses)
{
    const Ddg g = buildPaperExampleLoop();
    const Schedule s = paperFlatSchedule(2);
    const std::string chart = formatLifetimeChart(g, s, 2);
    // Column headers name the live values.
    EXPECT_NE(chart.find("Ld"), std::string::npos);
    // Definition and last-use markers appear.
    EXPECT_NE(chart.find('o'), std::string::npos);
    EXPECT_NE(chart.find('+'), std::string::npos);
}

TEST(Visualize, PressureChartMatchesMaxLive)
{
    const Ddg g = buildPaperExampleLoop();
    const std::string chart =
        formatPressureChart(g, paperFlatSchedule(1));
    EXPECT_NE(chart.find("MaxLive=11"), std::string::npos);
    EXPECT_NE(chart.find(std::string(11, '#')), std::string::npos);
}

TEST(Kernel, SpilledLoopListingIncludesSpillOps)
{
    const Ddg g = buildPaperExampleLoop();
    const Machine m = Machine::universal("fig2", 4, 2);
    PipelinerOptions opts;
    opts.registers = 6;
    const PipelineResult r = pipelineLoop(g, m, Strategy::Spill, opts);
    ASSERT_TRUE(r.success);
    const std::string text =
        formatKernelListing(r.graph(), m, r.sched, r.alloc.rotAlloc);
    EXPECT_NE(text.find("Ls_"), std::string::npos);
}

} // namespace
} // namespace swp
