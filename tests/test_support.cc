/**
 * @file
 * Tests for the support layer: deterministic RNG, string utilities,
 * tables and diagnostics.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include "support/arena.hh"
#include "support/bitmatrix.hh"
#include "support/diag.hh"
#include "support/rng.hh"
#include "support/singleflight.hh"
#include "support/stats.hh"
#include "support/strutil.hh"
#include "support/table.hh"

namespace swp
{
namespace
{

TEST(Rng, DeterministicForEqualSeeds)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, RangeIsInclusiveAndCoversEndpoints)
{
    Rng rng(7);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 2000; ++i) {
        const int v = rng.range(3, 6);
        ASSERT_GE(v, 3);
        ASSERT_LE(v, 6);
        sawLo |= v == 3;
        sawHi |= v == 6;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0;
    for (int i = 0; i < 4000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 4000.0, 0.5, 0.03);
}

TEST(Rng, PickWeightedRespectsZeroWeights)
{
    Rng rng(3);
    const int weights[3] = {0, 5, 0};
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(rng.pickWeighted(weights, 3), 1);
}

TEST(Strutil, TrimStripsBothEnds)
{
    EXPECT_EQ(trim("  a b  "), "a b");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim(" \t\n "), "");
}

TEST(Strutil, SplitKeepsEmptyFields)
{
    const auto parts = split("a,,b", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[1], "");
}

TEST(Strutil, SplitWsDropsEmptyFields)
{
    const auto parts = splitWs("  ld   x1\t x2 ");
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "ld");
    EXPECT_EQ(parts[2], "x2");
}

TEST(Strutil, ParseLongRejectsGarbage)
{
    EXPECT_EQ(parseLong("42"), 42);
    EXPECT_EQ(parseLong(" -7 "), -7);
    EXPECT_THROW(parseLong("x"), FatalError);
    EXPECT_THROW(parseLong("12x"), FatalError);
    EXPECT_THROW(parseLong(""), FatalError);
}

TEST(Strutil, Strprintf)
{
    EXPECT_EQ(strprintf("%d-%s", 3, "a"), "3-a");
    EXPECT_EQ(strprintf("%.2f", 1.5), "1.50");
}

TEST(Strutil, ParseInt64InRangeCheckedParsing)
{
    long long v = -1;
    EXPECT_TRUE(parseInt64InRange("42", 1, 100, v));
    EXPECT_EQ(v, 42);
    EXPECT_TRUE(parseInt64InRange("1000000000000", 1, 1000000000000LL, v));
    EXPECT_EQ(v, 1000000000000LL);

    // Rejections never touch the output.
    v = 7;
    for (const char *bad : {"", "x", "12x", "x12", "1 2", " 12", "12 ",
                            "0", "-3", "101", "9223372036854775808",
                            "12.5", "+"}) {
        EXPECT_FALSE(parseInt64InRange(bad, 1, 100, v)) << bad;
        EXPECT_EQ(v, 7) << bad;
    }
}

TEST(Strutil, StrCatConcatenatesMixedTypes)
{
    EXPECT_EQ(strCat("a", 1, "/", 2), "a1/2");
    EXPECT_EQ(strCat(), "");
    EXPECT_EQ(strCat(std::string("x"), 'y'), "xy");
}

TEST(Table, AlignsColumnsAndCountsRows)
{
    Table t({"name", "value"});
    t.row().add("a").add(1);
    t.row().add("bb").add(22);
    EXPECT_EQ(t.numRows(), 2u);
    std::ostringstream os;
    t.print(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("name"), std::string::npos);
    EXPECT_NE(text.find("bb"), std::string::npos);
}

TEST(Table, CsvOutput)
{
    Table t({"a", "b"});
    t.row().add(1).add(2.5, 1);
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2.5\n");
}

TEST(Diag, FatalAndPanicThrowDistinctTypes)
{
    EXPECT_THROW(SWP_FATAL("user error ", 1), FatalError);
    EXPECT_THROW(SWP_PANIC("bug ", 2), PanicError);
    EXPECT_NO_THROW(SWP_ASSERT(true, "fine"));
    EXPECT_THROW(SWP_ASSERT(1 == 2, "broken"), PanicError);
}

TEST(Stats, AccumulatorTracksMoments)
{
    Accumulator acc;
    acc.sample(1.0);
    acc.sample(3.0);
    EXPECT_EQ(acc.count(), 2u);
    EXPECT_DOUBLE_EQ(acc.mean(), 2.0);
    EXPECT_DOUBLE_EQ(acc.min(), 1.0);
    EXPECT_DOUBLE_EQ(acc.max(), 3.0);
}

TEST(Stats, StopwatchAdvances)
{
    Stopwatch sw;
    volatile long x = 0;
    for (long i = 0; i < 100000; ++i)
        x = x + i;
    EXPECT_GT(sw.seconds(), 0.0);
}

namespace
{

/** getOrCompute with a counting compute and a no-op hit hook. */
int
cachedSquare(SingleFlightCache<int, int> &cache, int key, int &computes)
{
    return cache.getOrCompute(
        key,
        [&]() {
            ++computes;
            return key * key;
        },
        [](const int &) {});
}

} // namespace

TEST(SingleFlight, UnboundedCacheNeverEvicts)
{
    SingleFlightCache<int, int> cache;
    int computes = 0;
    for (int round = 0; round < 3; ++round) {
        for (int k = 0; k < 50; ++k)
            EXPECT_EQ(cachedSquare(cache, k, computes), k * k);
    }
    EXPECT_EQ(computes, 50);
    const SingleFlightStats s = cache.stats();
    EXPECT_EQ(s.requests, 150);
    EXPECT_EQ(s.computes, 50);
    EXPECT_EQ(s.entries, 50);
    EXPECT_EQ(s.evictions, 0);
}

TEST(SingleFlight, CapacityEvictsLeastRecentlyUsed)
{
    SingleFlightCache<int, int> cache(2);
    int computes = 0;
    cachedSquare(cache, 1, computes);
    cachedSquare(cache, 2, computes);
    cachedSquare(cache, 1, computes);  // Touch 1: now 2 is coldest.
    cachedSquare(cache, 3, computes);  // Evicts 2.
    EXPECT_EQ(computes, 3);
    EXPECT_EQ(cache.stats().entries, 2);
    EXPECT_EQ(cache.stats().evictions, 1);

    // 1 survived (served from cache), 2 was evicted (recomputed).
    cachedSquare(cache, 1, computes);
    EXPECT_EQ(computes, 3);
    EXPECT_EQ(cachedSquare(cache, 2, computes), 4);
    EXPECT_EQ(computes, 4);
}

TEST(SingleFlight, EvictedKeysRecomputeTheSameValue)
{
    SingleFlightCache<int, int> cache(4);
    int computes = 0;
    for (int k = 0; k < 64; ++k)
        EXPECT_EQ(cachedSquare(cache, k, computes), k * k);
    for (int k = 0; k < 64; ++k)
        EXPECT_EQ(cachedSquare(cache, k, computes), k * k);
    const SingleFlightStats s = cache.stats();
    EXPECT_LE(s.entries, 4);
    EXPECT_GT(s.evictions, 0);
    // Single-flight accounting survives eviction: every computation
    // either still sits in the map or was evicted — nothing was
    // computed twice while resident.
    EXPECT_EQ(s.computes, s.entries + s.evictions);
}

TEST(SingleFlight, FailedComputationsRetryAndDoNotPoison)
{
    SingleFlightCache<int, int> cache(2);
    int calls = 0;
    const auto failing = [&]() -> int {
        ++calls;
        throw std::runtime_error("boom");
    };
    EXPECT_THROW(cache.getOrCompute(7, failing, [](const int &) {}),
                 std::runtime_error);
    int computes = 0;
    EXPECT_EQ(cachedSquare(cache, 7, computes), 49);
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(computes, 1);
}

namespace
{

/** cachedSquare for the striped cache. */
int
stripedSquare(StripedSingleFlightCache<int, int> &cache, int key,
              int &computes)
{
    return cache.getOrCompute(
        key,
        [&]() {
            ++computes;
            return key * key;
        },
        [](const int &) {});
}

} // namespace

TEST(StripedSingleFlight, StripeCountTracksThreadsHint)
{
    using Cache = StripedSingleFlightCache<int, int>;
    // next-pow2(2 x hint), clamped to [1, 256]; uncapped caches never
    // clamp to the capacity, and a degenerate hint acts like 1 thread.
    EXPECT_EQ(Cache(0, 0).stripeCount(), 2u);
    EXPECT_EQ(Cache(0, -3).stripeCount(), 2u);
    EXPECT_EQ(Cache(0, 1).stripeCount(), 2u);
    EXPECT_EQ(Cache(0, 3).stripeCount(), 8u);
    EXPECT_EQ(Cache(0, 8).stripeCount(), 16u);
    EXPECT_EQ(Cache(0, 200).stripeCount(), 256u);
}

TEST(StripedSingleFlight, CapSplitsAcrossStripesAndSumsToBudget)
{
    // cap 8, hint 3 -> 8 stripes of cap 1 (the budget is never
    // exceeded in aggregate because per-stripe caps sum to it).
    StripedSingleFlightCache<int, int> even(8, 3);
    EXPECT_EQ(even.stripeCount(), 8u);
    std::size_t sum = 0;
    for (std::size_t s = 0; s < even.stripeCount(); ++s) {
        EXPECT_EQ(even.stripeCapacity(s), 1u);
        sum += even.stripeCapacity(s);
    }
    EXPECT_EQ(sum, even.capacity());

    // cap 5, hint 4: the stripe count clamps down to 4 (the largest
    // power of two <= 5) so no stripe gets cap 0 and becomes
    // accidentally unbounded; the remainder goes to the low stripes.
    StripedSingleFlightCache<int, int> uneven(5, 4);
    EXPECT_EQ(uneven.stripeCount(), 4u);
    EXPECT_EQ(uneven.stripeCapacity(0), 2u);
    EXPECT_EQ(uneven.stripeCapacity(1), 1u);
    EXPECT_EQ(uneven.stripeCapacity(2), 1u);
    EXPECT_EQ(uneven.stripeCapacity(3), 1u);

    // A tiny cap degenerates to the flat cache.
    using Cache = StripedSingleFlightCache<int, int>;
    EXPECT_EQ(Cache(1, 8).stripeCount(), 1u);
}

TEST(StripedSingleFlight, PerStripeLruKeepsEveryStripeWithinItsShare)
{
    StripedSingleFlightCache<int, int> cache(8, 3);
    int computes = 0;
    for (int round = 0; round < 2; ++round) {
        for (int k = 0; k < 64; ++k)
            EXPECT_EQ(stripedSquare(cache, k, computes), k * k);
    }
    long entries = 0;
    for (std::size_t s = 0; s < cache.stripeCount(); ++s) {
        const SingleFlightStats ss = cache.stripeStats(s);
        EXPECT_LE(std::size_t(ss.entries), cache.stripeCapacity(s));
        EXPECT_EQ(ss.computes, ss.entries + ss.evictions);
        entries += ss.entries;
    }
    const SingleFlightStats s = cache.stats();
    EXPECT_EQ(s.entries, entries);
    EXPECT_LE(std::size_t(s.entries), cache.capacity());
    EXPECT_GT(s.evictions, 0);
    EXPECT_EQ(s.requests, 128);
    // The flat cache's single-flight accounting invariant holds for
    // the aggregated stripe counters too.
    EXPECT_EQ(s.computes, s.entries + s.evictions);
}

TEST(StripedSingleFlight, UnboundedStripesNeverEvict)
{
    StripedSingleFlightCache<int, int> cache(0, 4);
    int computes = 0;
    for (int round = 0; round < 3; ++round) {
        for (int k = 0; k < 50; ++k)
            EXPECT_EQ(stripedSquare(cache, k, computes), k * k);
    }
    EXPECT_EQ(computes, 50);
    const SingleFlightStats s = cache.stats();
    EXPECT_EQ(s.requests, 150);
    EXPECT_EQ(s.computes, 50);
    EXPECT_EQ(s.entries, 50);
    EXPECT_EQ(s.evictions, 0);
}

TEST(StripedSingleFlight, FailedComputationsRetryAndDoNotPoison)
{
    StripedSingleFlightCache<int, int> cache(8, 2);
    int calls = 0;
    const auto failing = [&]() -> int {
        ++calls;
        throw std::runtime_error("boom");
    };
    EXPECT_THROW(cache.getOrCompute(7, failing, [](const int &) {}),
                 std::runtime_error);
    int computes = 0;
    EXPECT_EQ(stripedSquare(cache, 7, computes), 49);
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(computes, 1);
}

TEST(StripedSingleFlight, StatsSnapshotIsConsistentUnderLoad)
{
    // The satellite fix this guards: stats() takes every stripe lock
    // in one acquisition, so a mid-run snapshot is a consistent cut,
    // not a torn per-stripe read. Under TSan this test also exercises
    // the shared-lock hit path against concurrent stats()/clear().
    //
    // Mid-run a cut may see computes < entries + evictions (an
    // in-flight entry exists before its compute counter lands), never
    // the reverse, and never computes > requests.
    StripedSingleFlightCache<int, int> cache(32, 4);
    std::atomic<bool> stop{false};
    std::vector<std::thread> workers;
    for (int w = 0; w < 4; ++w) {
        workers.emplace_back([&cache, &stop, w] {
            int computes = 0;
            int k = w * 17;
            while (!stop.load(std::memory_order_relaxed)) {
                stripedSquare(cache, k % 96, computes);
                ++k;
            }
        });
    }
    long totalRequests = 0;
    for (int i = 0; i < 200; ++i) {
        const SingleFlightStats s = cache.stats();
        EXPECT_GE(s.requests, totalRequests); // Monotone across cuts.
        totalRequests = s.requests;
        EXPECT_LE(s.computes, s.requests);
        EXPECT_LE(s.computes, s.entries + s.evictions);
        // Eviction skips in-flight slots, so a cut can overshoot the
        // cap by at most the number of concurrent computes.
        EXPECT_LE(std::size_t(s.entries), cache.capacity() + 4u);
    }
    stop.store(true);
    for (std::thread &t : workers)
        t.join();
    const SingleFlightStats s = cache.stats();
    EXPECT_EQ(s.computes, s.entries + s.evictions); // Exact at rest.
    EXPECT_LE(std::size_t(s.entries), cache.capacity());
}

TEST(Arena, ResetRetainsBlocksAndStopsAllocating)
{
    Arena arena(256);
    for (int job = 0; job < 5; ++job) {
        arena.reset();
        for (int i = 0; i < 8; ++i)
            arena.allocate(64);
    }
    const Arena::Stats s = arena.stats();
    // Every job needs 512 bytes -> two 256-byte blocks, sized by the
    // first job and reused (not re-allocated) by the rest.
    EXPECT_EQ(s.blocks, 2u);
    EXPECT_EQ(s.blockBytes, 512u);
    EXPECT_EQ(s.bytesInUse, 512u);
    EXPECT_EQ(s.highWaterBytes, 512u);
    EXPECT_EQ(s.allocations, 40u);
    EXPECT_EQ(s.resets, 5u);
}

TEST(Arena, HighWaterSurvivesResetAndTracksTheLargestJob)
{
    Arena arena(128);
    arena.allocate(100);
    arena.reset();
    EXPECT_EQ(arena.stats().bytesInUse, 0u);
    EXPECT_EQ(arena.stats().highWaterBytes, 100u);
    arena.allocate(300); // Oversized: gets a dedicated block.
    EXPECT_EQ(arena.stats().highWaterBytes, 300u);
    arena.reset();
    arena.allocate(40);
    EXPECT_EQ(arena.stats().highWaterBytes, 300u);
}

TEST(Arena, AllocationsAreAligned)
{
    Arena arena(256);
    arena.allocate(1, 1); // Skew the bump cursor.
    void *p8 = arena.allocate(8, 8);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p8) % 8, 0u);
    double *d = arena.allocate<double>(3);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d) % alignof(double), 0u);
    d[0] = 1.5;
    d[2] = -2.5; // Writable across the whole span.
    EXPECT_EQ(d[0], 1.5);
    EXPECT_EQ(d[2], -2.5);
}

TEST(Arena, ArenaVectorGrowsAndSurvivesReuse)
{
    Arena arena;
    ArenaVector<int> v{ArenaAllocator<int>(arena)};
    for (int i = 0; i < 1000; ++i)
        v.push_back(i * 3);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(v[i], i * 3);
    // Growth leaks superseded buffers into the arena by design
    // (deallocate is a no-op); clear + refill reuses the final buffer.
    v.clear();
    for (int i = 0; i < 500; ++i)
        v.push_back(i);
    EXPECT_EQ(v.back(), 499);
    EXPECT_GT(arena.stats().highWaterBytes, 1000u * sizeof(int));

    ArenaVector<int> w{ArenaAllocator<int>(arena)};
    EXPECT_TRUE(v.get_allocator() == w.get_allocator());
    Arena other;
    ArenaVector<int> x{ArenaAllocator<int>(other)};
    EXPECT_TRUE(v.get_allocator() != x.get_allocator());
}

TEST(Strutil, JsonQuoteEscapes)
{
    EXPECT_EQ(jsonQuote("plain"), "\"plain\"");
    EXPECT_EQ(jsonQuote("a\"b\\c"), "\"a\\\"b\\\\c\"");
    EXPECT_EQ(jsonQuote("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
    EXPECT_EQ(jsonQuote(std::string("\x01", 1)), "\"\\u0001\"");
}

TEST(BitMatrix, WordHelpers)
{
    EXPECT_EQ(countTrailingZeros(1), 0);
    EXPECT_EQ(countTrailingZeros(0b1000), 3);
    EXPECT_EQ(countTrailingZeros(std::uint64_t(1) << 63), 63);
    EXPECT_EQ(lowBitsMask(0), 0u);
    EXPECT_EQ(lowBitsMask(1), 1u);
    EXPECT_EQ(lowBitsMask(5), 0b11111u);
    EXPECT_EQ(lowBitsMask(64), ~std::uint64_t(0));
}

TEST(BitMatrix, SetTestAndCrossWordColumns)
{
    // 70 columns spans two words per row: bits on both sides of the
    // word boundary must be independent.
    BitMatrix m(3, 70);
    EXPECT_EQ(m.wordsPerRow(), 2);
    EXPECT_FALSE(m.test(1, 63));
    m.set(1, 63);
    m.set(1, 64);
    m.set(2, 69);
    EXPECT_TRUE(m.test(1, 63));
    EXPECT_TRUE(m.test(1, 64));
    EXPECT_TRUE(m.test(2, 69));
    EXPECT_FALSE(m.test(0, 63));
    EXPECT_FALSE(m.test(1, 62));
    EXPECT_FALSE(m.test(1, 65));
}

TEST(BitMatrix, ResetClearsAndReusesAcrossShapes)
{
    BitMatrix m(2, 10);
    m.set(0, 3);
    m.set(1, 9);
    m.reset(4, 5);
    EXPECT_EQ(m.rows(), 4);
    EXPECT_EQ(m.cols(), 5);
    for (int r = 0; r < 4; ++r) {
        for (int c = 0; c < 5; ++c)
            EXPECT_FALSE(m.test(r, c));
    }
    // Growing again after shrinking also starts clear.
    m.reset(1, 130);
    for (int c = 0; c < 130; ++c)
        EXPECT_FALSE(m.test(0, c));
}

TEST(BitMatrix, IntersectsAndOrRowInto)
{
    BitMatrix m(2, 130);
    m.set(0, 5);
    m.set(0, 129);
    m.set(1, 64);

    BitRow mask;
    mask.reset(130);
    EXPECT_FALSE(m.intersects(0, mask.words()));
    mask.set(129);
    EXPECT_TRUE(m.intersects(0, mask.words()));
    EXPECT_FALSE(m.intersects(1, mask.words()));
    mask.clear(129);
    mask.set(64);
    EXPECT_TRUE(m.intersects(1, mask.words()));
    EXPECT_FALSE(m.intersects(0, mask.words()));

    // orRowInto unions a row into an external word buffer.
    BitRow acc;
    acc.reset(130);
    m.orRowInto(0, acc.words());
    m.orRowInto(1, acc.words());
    EXPECT_TRUE(acc.test(5));
    EXPECT_TRUE(acc.test(64));
    EXPECT_TRUE(acc.test(129));
    EXPECT_FALSE(acc.test(6));
}

TEST(BitRow, SetClearAndReuse)
{
    BitRow r;
    r.reset(70);
    EXPECT_EQ(r.size(), 70);
    r.set(0);
    r.set(69);
    EXPECT_TRUE(r.test(0));
    EXPECT_TRUE(r.test(69));
    r.clear(69);
    EXPECT_FALSE(r.test(69));
    r.reset(3);
    EXPECT_FALSE(r.test(0));
}

} // namespace
} // namespace swp
