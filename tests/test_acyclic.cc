/**
 * @file
 * Acyclic (local scheduling) fallback tests.
 */

#include <gtest/gtest.h>

#include "ir/builder.hh"
#include "liferange/lifetimes.hh"
#include "machine/machine.hh"
#include "sched/acyclic.hh"

namespace swp
{
namespace
{

TEST(Acyclic, SingleStageScheduleOfThePaperExample)
{
    const Ddg g = buildPaperExampleLoop();
    const Machine m = Machine::universal("fig2", 4, 2);
    const Schedule s = scheduleAcyclic(g, m);
    EXPECT_TRUE(s.complete());
    EXPECT_EQ(s.stageCount(), 1);
    std::string why;
    EXPECT_TRUE(validateSchedule(g, m, s, &why)) << why;
    // Serial chain Ld(2) -> *(2) -> +(2) -> St: makespan 8 wait... the
    // chain issues at 0,2,4,6 and the store completes at 7, so II >= 7.
    EXPECT_GE(s.ii(), 7);
}

TEST(Acyclic, NoOverlapMeansLowPressure)
{
    const Ddg g = buildPaperExampleLoop();
    const Machine m = Machine::universal("fig2", 4, 2);
    const Schedule s = scheduleAcyclic(g, m);
    const LifetimeInfo info = analyzeLifetimes(g, s);
    // Within one iteration at most 2 loop variants are live at once;
    // the carried use of Ld at distance 3 keeps ~1 extra register per
    // pending iteration.
    EXPECT_LE(info.maxLive, 5);
}

TEST(Acyclic, RespectsResourceLimits)
{
    DdgBuilder b("wide");
    for (int i = 0; i < 6; ++i) {
        const NodeId ld = b.load();
        const NodeId st = b.store();
        b.flow(ld, st);
    }
    const Ddg g = b.take();
    const Machine m = Machine::p1l4();  // One mem unit: serialized.
    const Schedule s = scheduleAcyclic(g, m);
    std::string why;
    EXPECT_TRUE(validateSchedule(g, m, s, &why)) << why;
    EXPECT_GE(s.ii(), 12);
}

TEST(Acyclic, HandlesRecurrencesTrivially)
{
    DdgBuilder b("rec");
    const NodeId a = b.add("a");
    b.flow(a, a, 1);
    const NodeId st = b.store();
    b.flow(a, st);
    const Ddg g = b.take();
    const Machine m = Machine::p2l6();
    const Schedule s = scheduleAcyclic(g, m);
    std::string why;
    EXPECT_TRUE(validateSchedule(g, m, s, &why)) << why;
    EXPECT_EQ(s.stageCount(), 1);
}

TEST(Acyclic, NonPipelinedOccupancyCounted)
{
    DdgBuilder b("dv");
    const NodeId ld = b.load();
    const NodeId dv = b.div();
    const NodeId st = b.store();
    b.flow(ld, dv);
    b.flow(dv, st);
    const Ddg g = b.take();
    const Machine m = Machine::p1l4();
    const Schedule s = scheduleAcyclic(g, m);
    std::string why;
    EXPECT_TRUE(validateSchedule(g, m, s, &why)) << why;
    EXPECT_GE(s.ii(), 19);  // ld(2) + div(17) at least.
}

} // namespace
} // namespace swp
